// Package psi is a from-scratch Go implementation of the Ψ-framework from
// "Subgraph Querying with Parallel Use of Query Rewritings and Alternative
// Algorithms" (Katsarou, Ntarmos, Triantafillou — EDBT 2017), together with
// every subsystem the paper builds on: the VF2, QuickSI, GraphQL and sPath
// subgraph-isomorphism algorithms, the Grapes and GGSX filter-then-verify
// indexes, the paper's five query rewritings (ILF, IND, DND, ILF+IND,
// ILF+DND), dataset generators standing in for the paper's datasets, and
// the straggler-aware measurement methodology (WLA/QLA, max/min, speedup*).
//
// # The idea
//
// Subgraph isomorphism solvers suffer from straggler queries: inputs whose
// running time is orders of magnitude above the median. Two cheap levers
// move a straggler back into the fast regime: renumbering the query's
// vertices (an isomorphic rewriting that steers the solver's tie-breaking
// heuristics) and switching algorithms (stragglers are algorithm-specific).
// The Ψ-framework exploits both at once — it races several goroutines, each
// matching a different (algorithm, rewriting) pair, takes the first answer,
// and cancels the rest.
//
// # Quick start
//
//	g := psi.MustNewGraph("store",
//		[]psi.Label{0, 1, 0, 2},
//		[][2]int{{0, 1}, {1, 2}, {2, 3}})
//	q := psi.MustNewGraph("query", []psi.Label{0, 1}, [][2]int{{0, 1}})
//
//	m := psi.NewPortfolioMatcher(g,
//		[]psi.Algorithm{psi.GraphQL, psi.SPath},
//		[]psi.Rewriting{psi.Orig, psi.DND})
//	embs, err := m.Match(context.Background(), q, 1000)
//
// See examples/ for runnable programs and cmd/psibench for the experiment
// harness that regenerates every table and figure of the paper.
package psi
