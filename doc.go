// Package psi is a from-scratch Go implementation of the Ψ-framework from
// "Subgraph Querying with Parallel Use of Query Rewritings and Alternative
// Algorithms" (Katsarou, Ntarmos, Triantafillou — EDBT 2017), together with
// every subsystem the paper builds on: the VF2, QuickSI, GraphQL and sPath
// subgraph-isomorphism algorithms, the Grapes and GGSX filter-then-verify
// indexes, the paper's five query rewritings (ILF, IND, DND, ILF+IND,
// ILF+DND), dataset generators standing in for the paper's datasets, and
// the straggler-aware measurement methodology (WLA/QLA, max/min, speedup*).
//
// # The idea
//
// Subgraph isomorphism solvers suffer from straggler queries: inputs whose
// running time is orders of magnitude above the median. Two cheap levers
// move a straggler back into the fast regime: renumbering the query's
// vertices (an isomorphic rewriting that steers the solver's tie-breaking
// heuristics) and switching algorithms (stragglers are algorithm-specific).
// The Ψ-framework exploits both at once — it races several goroutines, each
// matching a different (algorithm, rewriting) pair, takes the first answer,
// and cancels the rest.
//
// # Quick start
//
//	g := psi.MustNewGraph("store",
//		[]psi.Label{0, 1, 0, 2},
//		[][2]int{{0, 1}, {1, 2}, {2, 3}})
//	q := psi.MustNewGraph("query", []psi.Label{0, 1}, [][2]int{{0, 1}})
//
//	m := psi.NewPortfolioMatcher(g,
//		[]psi.Algorithm{psi.GraphQL, psi.SPath},
//		[]psi.Rewriting{psi.Orig, psi.DND})
//	embs, err := m.Match(context.Background(), q, 1000)
//
// # Concurrency architecture
//
// All parallelism flows through one shared bounded execution layer
// (internal/exec): a pool of persistent workers, one per CPU by default,
// used by both the Ψ races and the filter-then-verify pipeline. The pool
// offers two submission modes matched to the two shapes of parallel work:
//
// Fan-out (hard-bounded). Independent candidate-graph verifications —
// FTVAnswerParallel, the cached wrapper from NewCachedFTVParallel, and the
// candidate loop of FTVRacer.Answer — queue onto the workers, so at most
// pool-size candidates are in flight regardless of how many the filter
// returns. A query with hundreds of candidates no longer multiplies
// goroutines by rewritings: in-flight work is bounded by
// pool size × rewritings instead of candidates × rewritings.
//
// Races (guaranteed concurrency). The attempts inside one race (Racer.Race,
// FTVRacer.Verify) reuse idle pool workers but are never queued behind a
// saturated pool: a race's semantics require every attempt to run
// concurrently, because the first finisher cancels the rest and a straggler
// attempt may only terminate when cancelled. When workers are busy, attempts
// run on transient goroutines whose count is bounded by the small, fixed
// attempt count of the race.
//
// Determinism: parallel answers are assembled positionally from the
// filter's ascending candidate order, so FTVAnswerParallel returns IDs
// byte-identical to FTVAnswer, and cached statistics are unchanged. Racing
// itself is inherently nondeterministic in *which* attempt wins, never in
// the answer. Panics inside attempts or verifications are recovered and
// surfaced as errors rather than crashing the process.
//
// # Engine and streaming architecture
//
// The result path is streaming end to end. Every matcher implements
// StreamMatcher: MatchStream emits each embedding into a Sink the moment
// the backtracking search finds it, and the sink returning false stops the
// search; Match is merely the collecting wrapper. On top of that contract,
// Racer.RaceStream changes the race's adoption rule from first-to-finish
// to first-to-emit — the first embedding anyone finds claims the output
// stream for its attempt and cancels every other contender — so
// first-result latency is the fastest attempt's time-to-first-embedding,
// not its time-to-full-enumeration (on the recorded baseline, a four-order-
// of-magnitude difference for enumeration-heavy queries; BENCH_engine.json).
// The FTV side streams too: FTVRacer.AnswerStream surfaces each containing
// graph ID as soon as its raced verification and all earlier candidates
// settle, preserving the ascending answer order incrementally.
//
// Engine is the serving facade over all of it: a long-lived object owning
// the stored graph or dataset, the prebuilt matcher portfolio, label
// frequencies, the FTV index with its iGQ-style result cache, the shared
// execution pool and the prediction policy. Query processing splits into
// Plan — attempt-portfolio selection per the engine's Mode: a full race
// (ModeRace), the model's predicted single attempt with race fallback
// (ModePredict), or a fixed single attempt (ModeSingle) — and Execute,
// which runs the plan under the engine's per-query deadline (the paper's
// kill cap, enforced through metrics.Budget; killed queries come back
// classified Hard with their time clamped to the cap, exactly as the
// paper's methodology records them):
//
//	eng, _ := psi.NewEngine(g, psi.EngineOptions{Timeout: 10 * time.Minute})
//	defer eng.Close()
//	res, _ := eng.Query(ctx, q, 1000)                  // plan + execute
//	eng.QueryStream(ctx, q, 1000,                      // streaming form
//		psi.SinkFunc(func(e psi.Embedding) bool { return consume(e) }))
//
// # Filtering-index architecture
//
// Dataset (multi-graph) queries go through a filtering index, and the
// module ships three alternatives behind one contract (FilterIndex): the
// flat path-based FTV baseline (a hash map from packed label sequences to
// per-graph counts), Grapes (a path trie with location information and
// component-restricted verification) and GGSX (a path suffix trie verified
// against whole graphs). The contract is the narrow FTVIndex core —
// Name/Dataset/Filter/Verify — plus FilterStream, which emits surviving
// candidates incrementally in ascending order, and Stats, which reports
// build provenance. All three share one presence/frequency pruning
// implementation and one build path: feature extraction fans out across the
// execution pool and the per-graph results fold into each structure in
// graph-ID order, so a build is byte-identical at any worker count,
// and cancelling the build's context aborts it even mid-graph (dense
// graphs hold billions of bounded simple paths). Construct through
// NewPathIndex, NewGrapes, NewGGSX, or BuildIndex("ftv"|"grapes"|"ggsx").
//
// Candidate emission is streaming-first: the decision pipeline overlaps
// filtering with verification, starting a candidate's (rewriting-raced)
// verification the moment the filter surfaces it, while containing graph
// IDs still reach the caller incrementally in exact ascending order.
//
// On top of the contract sits index racing — the paper's parallel use of
// alternative algorithms applied to the filtering stage itself. A dataset
// Engine built with an index portfolio (EngineOptions.Indexes) under the
// race policy runs every index's full streaming pipeline concurrently per
// query; the first index to emit a verified candidate adopts the output
// stream and the losers are cancelled through their contexts (an index that
// completes an empty answer first wins an empty race — every index is
// exact, so all pipelines agree). Each index attempt races on a dedicated
// verification pool: a straggling index must not be able to occupy the
// shared workers and starve the eventual winner. Per-index attempt metrics
// (winner, cancelled, emissions, elapsed) surface in
// QueryResult.IndexAttempts, alongside the matcher-level Winner:
//
//	eng, _ := psi.NewDatasetEngine(ds, psi.EngineOptions{
//		Indexes: []string{"ftv", "grapes", "ggsx"}, // IndexRace by default
//	})
//	defer eng.Close()
//	res, _ := eng.Query(ctx, q, 0)
//	for _, a := range res.IndexAttempts { report(a.Name, a.Winner, a.Elapsed) }
//
// With a single index (the default) the engine keeps the fixed policy:
// filter → raced verification behind the iGQ-style result cache, unchanged.
// Plan.IndexPolicy records which policy a planned query will run.
//
// # Sharding architecture
//
// Sharding adds a data-parallel axis under the portfolio axis: instead of
// one index per kind over the whole dataset, EngineOptions.Shards = K
// partitions the dataset round-robin over graph IDs (global ID g lives in
// shard g mod K, at position g div K within it — stable, deterministic,
// balanced to within one graph) and builds every index in the portfolio as
// K per-shard sub-indexes behind the index.Sharded wrapper.
//
// Queries fan the filter→verify pipeline across shards: every shard scans
// its sub-index concurrently, the per-shard candidate streams merge in
// ascending global-ID order, and verification routes each candidate back
// to the shard that owns it while fanning out across the execution pool.
//
// The parity guarantee is absolute: sharded answers are byte-identical to
// the monolithic engine's at any K and any worker count. Filtering is a
// per-graph decision (a graph survives iff it contains every query feature
// at least as often as the query does), so partitioning cannot change the
// candidate set; the ordered merge restores the global ascending order; and
// verification is per-graph. The property is fuzzed across kinds, shard
// counts and pool sizes by the internal/index tests and enforced end to end
// by cmd/psibench -shardsweep, which refuses to emit a benchmark document
// whose answers diverge from K=1.
//
// Because Sharded implements the same Index contract as the monolithic
// kinds, it composes with everything above it unchanged: FTVRacer races
// rewritings inside sharded verification, and core.IndexRacer races whole
// sharded pipelines against each other ("Grapes/1×4" vs "GGSX×4"). On this
// repo's 1-CPU reference box K>1 buys no wall-clock (the shard scans time-
// slice one core; expect parity, not speedup — BENCH_shard.json records
// exactly that); on multicore, shard scans and builds spread across cores,
// and the per-shard balance is observable via Engine.ShardBalance and the
// serving layer's /stats (shard_balance) and /metrics
// (psi_engine_shard_answers_total).
//
//	eng, _ := psi.NewDatasetEngine(ds, psi.EngineOptions{
//		Indexes: psi.IndexKinds(),
//		Shards:  4, // answers byte-identical to Shards: 1
//	})
//
// # Adaptive planning architecture
//
// Racing buys latency with work: every query pays for all the attempts
// that lose. The auto policy keeps the race's tail protection while
// recovering most of that work on repetitive traffic. A per-query-class
// bandit (internal/predict.Bandit) buckets queries by size — log2 buckets
// of vertex count, edge count and distinct labels — and keeps per-arm
// evidence for each class: race wins, solo runs, budget kills and mean
// latency, where an arm is one matcher attempt (ModeAuto on a stored
// graph) or one filtering-index pipeline (IndexPolicy IndexAuto on a
// dataset).
//
// The decision rule is race-until-confident, then solo-with-audits. A
// class races while it has fewer than AutoMinSamples successful
// observations (warmup), every AutoRaceEvery-th decision thereafter
// (staleness audits: the race re-measures every arm, so a drifting
// workload re-elects its winner), and immediately after a solo run was
// killed by the per-query budget (escalation). Otherwise it runs the arm
// with the best kill-penalized mean latency alone. Correctness never
// depends on the choice: every arm is exact, so a solo answer is
// byte-identical to the race's — the policy moves only cost and latency,
// and a budget-killed collecting solo falls back to the full race within
// the same query. The evidence rules are deliberately asymmetric: a
// budget kill counts against the arm and escalates the class, while a
// caller cancellation (client disconnect, server drain) is recorded
// nowhere — disconnect storms carry no information about arm quality and
// must not poison the learned statistics.
//
//	eng, _ := psi.NewDatasetEngine(ds, psi.EngineOptions{
//		Indexes:     []string{"ftv", "grapes", "ggsx"},
//		IndexPolicy: psi.IndexAuto, // learned solo, race escalation
//	})
//	res, _ := eng.Query(ctx, q, 0)
//	res.Policy            // the decision this query ran under
//	eng.PolicyStats()     // per-arm evidence snapshot (also in /stats)
//
// Plan.Decision and QueryResult.Policy expose each query's verdict (class,
// solo vs race, reason); Counters adds policy_solo / policy_races /
// policy_escalations; PolicyStats snapshots the per-arm evidence. The
// serving layer coalesces concurrent identical queries (one execution,
// every overlapping client gets the complete answer — see below), and
// cmd/psibench -policysweep measures the three policies side by side under
// uniform and skewed mixes, asserting answer parity before measuring
// (BENCH_policy.json).
//
// # Serving architecture
//
// The serving subsystem (internal/server, fronted by cmd/psiserve) turns
// one long-lived Engine into a concurrent HTTP query service. A request's
// life is admission → plan → race → stream → drain:
//
// Admission. Every query claims a slot from a bounded limiter before any
// work starts; at capacity the request is rejected immediately with HTTP
// 429 rather than queued, so overload degrades into fast refusals instead
// of goroutine-per-request pileups. The execution pool below remains the
// only place CPU work queues.
//
// Plan and race. Admitted queries run through the Engine exactly as
// library callers do — Plan picks the attempt or index portfolio, Execute
// races it — with the request's context (client disconnect, the server's
// request timeout, an explicit ?timeout_ms) flowing into the per-query
// budget, so a deadline hit surfaces as the paper's kill (killed:true with
// whatever already streamed), not as an opaque error.
//
// Stream. ?stream=1 responses are NDJSON — one line per embedding (NFV) or
// containing graph ID (FTV), flushed as the race emits it, then a summary
// line with winner provenance — so the first-to-emit latency the race wins
// reaches the wire. Collected responses are single JSON objects. Complete,
// unkilled answers land in a shared LRU result cache keyed by the
// canonical query bytes (CanonicalQueryKey); repeat queries replay from
// memory in either response mode, marked cached:true. Concurrent identical
// queries that miss the cache coalesce onto one in-flight execution: the
// first request leads, overlapping duplicates park until it finishes and
// replay its complete answer marked coalesced:true. Only complete unkilled
// answers are shared — a killed or failed leader sends each follower to
// its own execution, and a follower disconnecting never cancels the
// leader. Engine.Counters and Engine.WinCounts feed the /stats and
// /metrics endpoints, alongside the coalescing counters and the learned
// policy's per-arm statistics.
//
// Drain. Shutdown stops admission (new queries get 503, /healthz flips),
// waits for in-flight queries, and past the caller's deadline cancels
// stragglers through their request contexts — every admitted request still
// receives its terminal line, so a drain drops no in-flight responses.
//
//	eng, _ := psi.NewDatasetEngine(ds, psi.EngineOptions{Indexes: psi.IndexKinds()})
//	srv := server.New(eng, server.Options{MaxInFlight: 64})
//	http.ListenAndServe(addr, srv) // POST /query, GET /stats, /metrics, /healthz
//
// See examples/serve for the full lifecycle against an in-process
// listener, and cmd/psibench -serve for the closed-loop load generator
// behind BENCH_serve.json.
//
// # Mutation architecture
//
// A dataset engine built with EngineOptions.Mutable accepts online
// mutations — AddGraph, RemoveGraph, ReplaceGraph — while queries are in
// flight, with one non-negotiable invariant: after any mutation sequence,
// answers are byte-identical to a from-scratch engine over the final
// dataset. The machinery lives in internal/live and hangs on four ideas:
//
// Slots. Every graph ever added occupies a permanent global slot; the
// round-robin sharding law (slot s lives in shard s mod K) then localizes
// any mutation to exactly one shard, and because slot assignment is
// monotone, an AddGraph always appends to its shard's tail — which the
// flat path index absorbs copy-on-write (index.Inserter: the new sub-index
// shares every untouched posting map with its predecessor and clones only
// the maps the new graph's features touch). Kinds without incremental
// insert fall back to rebuilding that one shard, never the dataset.
//
// Tombstones. RemoveGraph replaces the slot's graph with a zero-vertex
// placeholder — O(1) on the index side, since a placeholder matches no
// feature — and once a shard accumulates CompactEvery of them it compacts
// with a shard-local rebuild that sheds the dead features. Queries never
// see slots: the index.Masked view renumbers live slots to the dense
// 0..n-1 answer IDs (rank order, so ascending emission survives) and
// routes verification back through the slot space.
//
// Epochs. Every mutation publishes a fresh immutable snapshot — dense
// dataset, masked index per kind, rewired racer and result cache — under a
// bumped epoch number. Queries acquire the current snapshot with a
// lock-free load-ref-recheck and hold it to completion: a query planned at
// epoch 5 answers epoch 5 even if ten mutations land mid-flight, and
// Plan.Epoch / QueryResult.Epoch record which dataset version an answer
// describes. Mutations serialize among themselves; the query path takes no
// lock.
//
// Refcounts. Sub-indexes are shared across snapshot generations (a
// mutation to shard 2 reuses every other shard's sub-indexes), so each
// snapshot holds a reference on the sub-indexes it spans and the last
// release — not the mutation — closes what dropped out, letting in-flight
// queries drain on dead epochs safely.
//
// Handles, not IDs, are the public identity: AddGraph returns a stable
// GraphHandle that survives every compaction, while dense answer IDs shift
// as earlier graphs are deleted (Engine.Handles maps between them at the
// current epoch). The serving layer exposes the whole lifecycle — POST
// /graphs, DELETE /graphs/{handle}, PUT /graphs/{handle} — keys its result
// cache and in-flight coalescing by epoch so a mutation implicitly
// invalidates every remembered answer, and reports the epoch in /healthz,
// /stats and /metrics. cmd/psibench -churn measures the payoff and
// enforces the invariant end to end (BENCH_mutate.json: one incremental
// mutation lands ~50x faster than the full rebuild it replaces, with
// parity asserted against that rebuild).
//
//	eng, _ := psi.NewDatasetEngine(ds, psi.EngineOptions{
//		Indexes: []string{"ftv"},
//		Shards:  4,
//		Mutable: true,
//	})
//	h, _ := eng.AddGraph(ctx, g)     // visible to the next planned query
//	res, _ := eng.Query(ctx, q, 0)   // res.Epoch: the version it answered
//	_, _ = eng.RemoveGraph(ctx, h)   // tombstone; compaction when due
//
// # Persistence architecture
//
// Building a filtering index is the expensive part of engine construction —
// path enumeration over every dataset graph dominates start-up by orders of
// magnitude — and it is pure recomputation: the same dataset always yields
// the same arrays. Engine.SaveSnapshot therefore persists the full engine
// state to one file, and EngineOptions.Snapshot reconstructs an engine from
// that file alone (nil dataset — the snapshot carries it) that answers
// every query byte-identically to the freshly built one:
//
//	eng.SaveSnapshot("ds.psisnap")
//	cold, _ := psi.NewDatasetEngine(nil, psi.EngineOptions{Snapshot: "ds.psisnap"})
//
// The file (internal/snapshot) is a versioned, checksummed container: a
// section table of named, CRC-32C-guarded byte runs holding the dataset's
// CSR arrays, each index kind's features and postings as flat arrays in
// canonical order, and — for mutable engines — the live store's slot,
// tombstone, handle and epoch state, so mutation history and cache-keying
// epochs survive a restart and a churned-then-saved engine resumes exactly
// where it stopped. Writes are atomic (temp file + rename); loads validate
// every checksum and every structural invariant before constructing
// anything, so a corrupt or truncated file fails closed with an error
// rather than serving from damaged state. Options given alongside Snapshot
// must agree with the file (mutability, shard count, index kinds) — a
// mismatch is an error, never a silent rebuild. Every array is a single
// contiguous length-prefixed section, which keeps the format mmap-forward:
// a later loader can map the file and page sections in lazily without a
// format change (the contract is spelled out in internal/snapshot's doc).
//
// The serving layer completes the loop: psiserve -snapshot cold-starts from
// the file when it exists (milliseconds instead of the full index build),
// saves it after a fresh build when it does not, and re-saves on demand via
// POST /snapshot. cmd/psibench -coldstart measures the payoff and enforces
// the invariant end to end (BENCH_snapshot.json: the load beats the rebuild
// by well over the 10x floor, with parity asserted query by query).
//
// See examples/ for runnable programs and cmd/psibench for the experiment
// harness that regenerates every table and figure of the paper (psibench
// -engine benchmarks the Engine facade, including the index race).
package psi
