package psi_test

// Mutable-engine tests: the tentpole parity property (after any mutation
// sequence the engine answers byte-identically to a from-scratch engine
// over the final dataset), snapshot isolation with queries concurrently in
// flight under -race, the epoch plumbing through Plan and QueryResult, the
// engine-internal result cache's behavior across mutations, and the
// mutation counters — with a goroutine-leak harness around the churn.

import (
	"context"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"testing"
	"time"

	psi "github.com/psi-graph/psi"
)

// mutablePool is a seeded supply of small graphs to ingest.
func mutablePool(seed int64, n int) []*psi.Graph {
	var out []*psi.Graph
	for i := 0; i < n; i += 4 {
		out = append(out, psi.GeneratePPI(psi.Tiny, seed+int64(i))...)
	}
	return out[:n]
}

// freshAnswers answers every query on a throwaway from-scratch monolithic
// engine over ds — the canonical baseline all mutable configurations must
// match byte for byte.
func freshAnswers(t *testing.T, ds []*psi.Graph, kinds []string, queries []*psi.Graph) [][]int {
	t.Helper()
	fresh, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Indexes: kinds[:1]})
	if err != nil {
		t.Fatalf("fresh engine: %v", err)
	}
	defer fresh.Close()
	out := make([][]int, len(queries))
	for i, q := range queries {
		res, err := fresh.Query(context.Background(), q, 0)
		if err != nil {
			t.Fatalf("fresh query: %v", err)
		}
		out[i] = res.GraphIDs
	}
	return out
}

// TestMutableEngineParityFuzz drives random interleavings of AddGraph /
// RemoveGraph / ReplaceGraph across index-kind portfolios × shard counts ×
// worker counts, checking after every mutation that collected and streamed
// answers are byte-identical to a from-scratch rebuild of the live dataset.
func TestMutableEngineParityFuzz(t *testing.T) {
	configs := []struct {
		name    string
		indexes []string
		shards  int
		workers int
	}{
		{"ftv-k1", []string{"ftv"}, 1, 0},
		{"ftv-k3", []string{"ftv"}, 3, 0},
		{"ftv-k2-w2", []string{"ftv"}, 2, 2},
		{"race-k2", []string{"ftv", "grapes"}, 2, 0},
	}
	for ci, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(40 + ci)))
			ds := psi.GeneratePPI(psi.Tiny, 2)
			eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
				Indexes:      cfg.indexes,
				Shards:       cfg.shards,
				Workers:      cfg.workers,
				Mutable:      true,
				CompactEvery: 2,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			if !eng.Mutable() {
				t.Fatal("Mutable() = false on a mutable engine")
			}
			if eng.Epoch() != 1 {
				t.Fatalf("initial Epoch() = %d, want 1", eng.Epoch())
			}
			supply := mutablePool(int64(90+ci), 8)
			steps := 8
			if ci > 0 {
				// One config sweeps the full-length sequence; the rest keep
				// the matrix breadth at a CI-affordable depth under -race.
				steps = 5
			}
			for step := 0; step < steps; step++ {
				handles := eng.Handles()
				epochBefore := eng.Epoch()
				op := r.Intn(3)
				if len(handles) < 3 {
					op = 0 // keep the dataset big enough to query
				}
				switch op {
				case 0:
					if _, err := eng.AddGraph(context.Background(), supply[step%len(supply)]); err != nil {
						t.Fatalf("step %d: AddGraph: %v", step, err)
					}
				case 1:
					if _, err := eng.RemoveGraph(context.Background(), handles[r.Intn(len(handles))]); err != nil {
						t.Fatalf("step %d: RemoveGraph: %v", step, err)
					}
				case 2:
					h := handles[r.Intn(len(handles))]
					if err := eng.ReplaceGraph(context.Background(), h, supply[(step+3)%len(supply)]); err != nil {
						t.Fatalf("step %d: ReplaceGraph: %v", step, err)
					}
				}
				if eng.Epoch() != epochBefore+1 {
					t.Fatalf("step %d: epoch %d after %d", step, eng.Epoch(), epochBefore)
				}
				cur := eng.Dataset()
				if got := eng.Handles(); len(got) != len(cur) {
					t.Fatalf("step %d: %d handles for %d graphs", step, len(got), len(cur))
				}
				var queries []*psi.Graph
				for qi := 0; qi < 2 && qi < len(cur); qi++ {
					queries = append(queries, psi.ExtractQuery(cur[(step+qi)%len(cur)], 3+qi, int64(step*7+qi)))
				}
				want := freshAnswers(t, cur, cfg.indexes, queries)
				for qi, q := range queries {
					res, err := eng.Query(context.Background(), q, 0)
					if err != nil {
						t.Fatalf("step %d q%d: %v", step, qi, err)
					}
					if !slices.Equal(res.GraphIDs, want[qi]) {
						t.Errorf("step %d q%d: mutable answer %v, from-scratch %v", step, qi, res.GraphIDs, want[qi])
					}
					if res.Epoch != eng.Epoch() {
						t.Errorf("step %d q%d: result epoch %d, engine epoch %d", step, qi, res.Epoch, eng.Epoch())
					}
					var streamed []int
					sres, err := eng.AnswerStreamResult(context.Background(), q, func(id int) bool {
						streamed = append(streamed, id)
						return true
					})
					if err != nil {
						t.Fatalf("step %d q%d stream: %v", step, qi, err)
					}
					if !slices.Equal(streamed, want[qi]) {
						t.Errorf("step %d q%d: streamed answer %v, from-scratch %v", step, qi, streamed, want[qi])
					}
					if sres.Epoch != res.Epoch {
						t.Errorf("step %d q%d: stream epoch %d, collected epoch %d", step, qi, sres.Epoch, res.Epoch)
					}
				}
			}
			snap := eng.Counters()
			if snap.GraphsAdded+snap.GraphsRemoved+snap.GraphsReplaced != int64(steps) {
				t.Errorf("mutation counters sum %d+%d+%d, want %d",
					snap.GraphsAdded, snap.GraphsRemoved, snap.GraphsReplaced, steps)
			}
		})
	}
}

// TestMutableEngineConcurrentChurn mutates while queries race in flight:
// readers hammer a fixed query and assert that the answer they get is
// exactly the recorded answer of the epoch their result reports — snapshot
// isolation, end to end, under -race — then checks for leaked goroutines.
func TestMutableEngineConcurrentChurn(t *testing.T) {
	before := runtime.NumGoroutine()
	ds := psi.GeneratePPI(psi.Tiny, 2)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Indexes:      []string{"ftv"},
		Shards:       2,
		Mutable:      true,
		CompactEvery: 2,
		CacheSize:    -1, // answer live: the churn must hit the index, not a cache
	})
	if err != nil {
		t.Fatal(err)
	}
	q := psi.ExtractQuery(ds[0], 3, 77)

	// expected[epoch] is the answer of a from-scratch build at that epoch,
	// recorded synchronously after each mutation (and before for epoch 1).
	var expMu sync.RWMutex
	expected := map[uint64][]int{}
	record := func() {
		res, err := eng.Query(context.Background(), q, 0)
		if err != nil {
			t.Errorf("record: %v", err)
			return
		}
		want := freshAnswers(t, eng.Dataset(), []string{"ftv"}, []*psi.Graph{q})[0]
		if !slices.Equal(res.GraphIDs, want) {
			t.Errorf("epoch %d: engine answer %v, from-scratch %v", res.Epoch, res.GraphIDs, want)
		}
		expMu.Lock()
		expected[res.Epoch] = want
		expMu.Unlock()
	}
	record()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := eng.Query(context.Background(), q, 0)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				// Yield between queries so the single-CPU race build's
				// mutator is not starved by three spinning readers.
				time.Sleep(time.Millisecond)
				expMu.RLock()
				want, ok := expected[res.Epoch]
				expMu.RUnlock()
				if ok && !slices.Equal(res.GraphIDs, want) {
					t.Errorf("epoch %d: reader got %v, epoch's answer is %v", res.Epoch, res.GraphIDs, want)
					return
				}
			}
		}()
	}
	r := rand.New(rand.NewSource(13))
	supply := mutablePool(55, 8)
	for step := 0; step < 10; step++ {
		handles := eng.Handles()
		if len(handles) > 3 && r.Intn(2) == 0 {
			if _, err := eng.RemoveGraph(context.Background(), handles[r.Intn(len(handles))]); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := eng.AddGraph(context.Background(), supply[step%len(supply)]); err != nil {
				t.Fatal(err)
			}
		}
		record()
	}
	close(stop)
	wg.Wait()
	eng.Close()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines leaked: %d before churn, %d after", before, n)
	}
}

// TestMutableEngineCacheFreshness pins the engine-internal iGQ cache's
// correctness across mutations: a cached answer must never replay after the
// dataset changes, because each epoch gets a fresh cache.
func TestMutableEngineCacheFreshness(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 2)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Indexes: []string{"ftv"},
		Mutable: true,
		// CacheSize 0 = default-sized cache, fixed policy: the config where
		// staleness would bite.
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	donor := ds[1]
	q := psi.ExtractQuery(donor, 3, 9)
	first, err := eng.Query(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Re-query to warm the cache, then ingest a copy of the donor graph:
	// the query must now also match the newcomer.
	if _, err := eng.Query(context.Background(), q, 0); err != nil {
		t.Fatal(err)
	}
	h, err := eng.AddGraph(context.Background(), donor)
	if err != nil {
		t.Fatal(err)
	}
	after, err := eng.Query(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	newID := len(eng.Dataset()) - 1
	if !slices.Contains(after.GraphIDs, newID) {
		t.Fatalf("after ingest: answer %v misses the new graph %d (stale cache?); before was %v",
			after.GraphIDs, newID, first.GraphIDs)
	}
	// And after removing it the answer must shrink back.
	if _, err := eng.RemoveGraph(context.Background(), h); err != nil {
		t.Fatal(err)
	}
	final, err := eng.Query(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(final.GraphIDs, first.GraphIDs) {
		t.Fatalf("after remove: answer %v, want the original %v", final.GraphIDs, first.GraphIDs)
	}
}

// TestMutableEngineAPI covers the mutation API's contract edges: static
// engines reject mutations, unknown handles error, plans carry the epoch,
// and compaction is reported and counted.
func TestMutableEngineAPI(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 2)
	static, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Indexes: []string{"ftv"}})
	if err != nil {
		t.Fatal(err)
	}
	defer static.Close()
	if static.Mutable() {
		t.Error("static engine reports Mutable")
	}
	if static.Epoch() != 0 {
		t.Errorf("static engine Epoch() = %d, want 0", static.Epoch())
	}
	if static.Handles() != nil {
		t.Error("static engine has handles")
	}
	if _, err := static.AddGraph(context.Background(), ds[0]); err == nil {
		t.Error("AddGraph on a static engine did not error")
	}
	if _, err := static.RemoveGraph(context.Background(), 1); err == nil {
		t.Error("RemoveGraph on a static engine did not error")
	}
	if err := static.ReplaceGraph(context.Background(), 1, ds[0]); err == nil {
		t.Error("ReplaceGraph on a static engine did not error")
	}

	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Indexes: []string{"ftv"}, Mutable: true, CompactEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.RemoveGraph(context.Background(), 999); err == nil {
		t.Error("RemoveGraph(unknown) did not error")
	}
	if err := eng.ReplaceGraph(context.Background(), 999, ds[0]); err == nil {
		t.Error("ReplaceGraph(unknown) did not error")
	}
	p, err := eng.Plan(psi.ExtractQuery(ds[0], 3, 4))
	if err != nil {
		t.Fatal(err)
	}
	if p.Epoch != 1 {
		t.Errorf("plan epoch = %d, want 1", p.Epoch)
	}
	// CompactEvery=1: the very first removal must compact.
	compacted, err := eng.RemoveGraph(context.Background(), eng.Handles()[0])
	if err != nil {
		t.Fatal(err)
	}
	if !compacted {
		t.Error("CompactEvery=1 removal did not compact")
	}
	snap := eng.Counters()
	if snap.GraphsRemoved != 1 || snap.Compactions != 1 {
		t.Errorf("counters removed=%d compactions=%d, want 1/1", snap.GraphsRemoved, snap.Compactions)
	}
}
