package psi_test

// Concurrency audit for the Engine as a shared serving object: many
// goroutines mixing Plan, Execute, ExecuteStream, stats accessors and the
// prediction/caching state on one Engine. These tests exist to run under
// the race detector (scripts/check.sh runs the suite with -race): the
// serving subsystem in internal/server admits queries concurrently, so any
// shared-state race here is a server bug waiting for traffic.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	psi "github.com/psi-graph/psi"
)

// TestEngineConcurrentNFVCallers hammers an NFV engine in predict mode —
// the mode with the most shared mutable state (warmup counter, observation
// log, model scale) — and checks every answer matches the sequential
// baseline.
func TestEngineConcurrentNFVCallers(t *testing.T) {
	g, q := engineFixture(t)
	eng, err := psi.NewEngine(g, psi.EngineOptions{
		Mode:        psi.ModePredict,
		WarmupRaces: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	baseline, err := eng.Query(context.Background(), q, 100000)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, iters = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (gi + i) % 4 {
				case 0: // plan + execute
					p, err := eng.Plan(q)
					if err != nil {
						errs <- err
						return
					}
					res, err := eng.Execute(context.Background(), p, 100000)
					if err != nil {
						errs <- err
						return
					}
					if res.Found != baseline.Found && !res.FellBack {
						errs <- fmt.Errorf("concurrent result found %d, baseline %d", res.Found, baseline.Found)
					}
				case 1: // streaming
					n := 0
					if _, err := eng.QueryStream(context.Background(), q, 100000,
						psi.SinkFunc(func(psi.Embedding) bool { n++; return true })); err != nil {
						errs <- err
						return
					}
					if n != baseline.Found {
						errs <- fmt.Errorf("concurrent stream emitted %d, baseline %d", n, baseline.Found)
					}
				case 2: // convenience path
					if _, err := eng.Query(context.Background(), q, 100000); err != nil {
						errs <- err
						return
					}
				default: // stats readers racing the writers
					_ = eng.Counters()
					_ = eng.WinCounts()
					_ = eng.Attempts()
					_, _ = eng.CacheStats()
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if c := eng.Counters(); c.Queries == 0 || c.RaceAttempts == 0 {
		t.Errorf("counters did not accumulate: %+v", c)
	}
}

// TestEngineConcurrentDatasetCallers exercises the two dataset shapes at
// once per engine: the fixed pipeline behind the iGQ-style result cache
// (shared cache entries, shared stats) and the index-racing portfolio
// (per-query attempt pools), each mixing collected queries, streamed
// answers and stats snapshots from many goroutines.
func TestEngineConcurrentDatasetCallers(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 1)
	configs := []psi.EngineOptions{
		{Index: "ftv"},                     // fixed policy + result cache
		{Indexes: []string{"ftv", "ggsx"}}, // index race, no cache
	}
	for ci, opts := range configs {
		eng, err := psi.NewDatasetEngine(ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		queries := make([]*psi.Graph, 4)
		for i := range queries {
			queries[i] = psi.ExtractQuery(ds[i%len(ds)], 4, int64(7+i))
		}
		baseline := make([][]int, len(queries))
		for i, q := range queries {
			res, err := eng.Query(context.Background(), q, 0)
			if err != nil {
				t.Fatal(err)
			}
			baseline[i] = res.GraphIDs
		}

		const goroutines, iters = 6, 5
		var wg sync.WaitGroup
		errs := make(chan error, goroutines*iters)
		for gi := 0; gi < goroutines; gi++ {
			wg.Add(1)
			go func(gi int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					qi := (gi + i) % len(queries)
					q := queries[qi]
					switch (gi + i) % 3 {
					case 0:
						res, err := eng.Query(context.Background(), q, 0)
						if err != nil {
							errs <- err
							return
						}
						if fmt.Sprint(res.GraphIDs) != fmt.Sprint(baseline[qi]) {
							errs <- fmt.Errorf("config %d: concurrent answer %v, baseline %v", ci, res.GraphIDs, baseline[qi])
						}
					case 1:
						var ids []int
						if err := eng.AnswerStream(context.Background(), q, func(id int) bool {
							ids = append(ids, id)
							return true
						}); err != nil {
							errs <- err
							return
						}
						if fmt.Sprint(ids) != fmt.Sprint(baseline[qi]) {
							errs <- fmt.Errorf("config %d: streamed answer %v, baseline %v", ci, ids, baseline[qi])
						}
					default:
						_ = eng.IndexStats()
						_ = eng.IndexPolicy()
						_, _ = eng.CacheStats()
						_ = eng.Counters()
						_ = eng.WinCounts()
					}
				}
			}(gi)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Error(err)
		}
		eng.Close()
	}
}
