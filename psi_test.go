package psi_test

import (
	"context"
	"testing"

	psi "github.com/psi-graph/psi"
)

func storedGraph() *psi.Graph {
	// two triangles joined by a bridge, mixed labels
	return psi.MustNewGraph("store",
		[]psi.Label{0, 1, 2, 0, 1, 2},
		[][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}})
}

func TestNewMatcherAllAlgorithms(t *testing.T) {
	g := storedGraph()
	q := psi.MustNewGraph("q", []psi.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	for _, algo := range []psi.Algorithm{psi.VF2, psi.QuickSI, psi.GraphQL, psi.SPath} {
		m, err := psi.NewMatcher(algo, g)
		if err != nil {
			t.Fatal(err)
		}
		embs, err := m.Match(context.Background(), q, 100)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		// two labeled triangles, each with 3 rotations... labels fix the
		// assignment up to rotation: exactly 1 embedding per triangle.
		if len(embs) != 2 {
			t.Errorf("%s: got %d embeddings, want 2", algo, len(embs))
		}
		for _, e := range embs {
			if err := psi.VerifyEmbedding(q, g, e); err != nil {
				t.Errorf("%s: %v", algo, err)
			}
		}
	}
}

func TestNewMatcherUnknown(t *testing.T) {
	if _, err := psi.NewMatcher("NOPE", storedGraph()); err == nil {
		t.Error("expected error")
	}
}

func TestPortfolioMatcher(t *testing.T) {
	g := storedGraph()
	m := psi.NewPortfolioMatcher(g,
		[]psi.Algorithm{psi.GraphQL, psi.SPath},
		[]psi.Rewriting{psi.Orig, psi.DND})
	if m.Name() != "Ψ(GQL/SPA)" {
		t.Errorf("Name = %q", m.Name())
	}
	q := psi.MustNewGraph("q", []psi.Label{1, 2}, [][2]int{{0, 1}})
	embs, err := m.Match(context.Background(), q, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(embs) == 0 {
		t.Fatal("expected embeddings")
	}
	for _, e := range embs {
		if err := psi.VerifyEmbedding(q, g, e); err != nil {
			t.Error(err)
		}
	}
}

func TestRaceAPI(t *testing.T) {
	g := storedGraph()
	attempts := psi.Portfolio(
		[]psi.Matcher{psi.MustNewMatcher(psi.VF2, g), psi.MustNewMatcher(psi.GraphQL, g)},
		[]psi.Rewriting{psi.Orig, psi.ILF})
	if len(attempts) != 4 {
		t.Fatalf("attempts = %d", len(attempts))
	}
	q := psi.MustNewGraph("q", []psi.Label{0, 1}, [][2]int{{0, 1}})
	res, err := psi.Race(context.Background(), g, q, 10, attempts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contained() {
		t.Error("query should be contained")
	}
	if res.Attempts != 4 {
		t.Errorf("Attempts = %d", res.Attempts)
	}
}

func TestApplyRewritingRoundTrip(t *testing.T) {
	g := storedGraph()
	q := psi.MustNewGraph("q", []psi.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	q2, perm := psi.ApplyRewriting(q, g, psi.ILFDND)
	if q2.N() != q.N() || q2.M() != q.M() {
		t.Fatal("rewriting changed the graph size")
	}
	m := psi.MustNewMatcher(psi.VF2, g)
	embs, err := m.Match(context.Background(), q2, 1)
	if err != nil || len(embs) == 0 {
		t.Fatalf("rewritten query should match: %v %v", embs, err)
	}
	back := psi.MapEmbeddingBack(embs[0], perm)
	if err := psi.VerifyEmbedding(q, g, back); err != nil {
		t.Error(err)
	}
}

func TestStructuredRewritingsCopy(t *testing.T) {
	a := psi.StructuredRewritings()
	if len(a) != 5 {
		t.Fatalf("got %d rewritings", len(a))
	}
	a[0] = psi.Orig
	if psi.StructuredRewritings()[0] == psi.Orig {
		t.Error("StructuredRewritings must return a copy")
	}
}

func TestFTVPipelineAPI(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 7)
	x := psi.NewGrapes(ds, 2)
	q := psi.ExtractQuery(ds[0], 5, 99)
	ids, err := psi.FTVAnswer(context.Background(), x, q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range ids {
		if id == 0 {
			found = true
		}
	}
	if !found {
		t.Error("source graph must contain the extracted query")
	}
	// raced variant returns the same answer
	racer := psi.NewFTVRacer(x, []psi.Rewriting{psi.Orig, psi.ILF, psi.DND})
	ids2, err := racer.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(ids2) {
		t.Errorf("raced answer %v != plain answer %v", ids2, ids)
	}
	// GGSX agrees too
	x2 := psi.NewGGSX(ds)
	ids3, err := psi.FTVAnswer(context.Background(), x2, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids3) != len(ids) {
		t.Errorf("GGSX answer %v != Grapes answer %v", ids3, ids)
	}
}

func TestGeneratorsAndStats(t *testing.T) {
	y := psi.GenerateYeastLike(psi.Tiny, 1)
	h := psi.GenerateHumanLike(psi.Tiny, 1)
	w := psi.GenerateWordnetLike(psi.Tiny, 1)
	if psi.ComputeStats(h).AvgDegree <= psi.ComputeStats(y).AvgDegree {
		t.Error("human-like should be denser than yeast-like")
	}
	if psi.ComputeStats(w).Labels > 5 {
		t.Error("wordnet-like should have at most 5 labels")
	}
	syn := psi.GenerateSynthetic(psi.Tiny, 1)
	st := psi.ComputeDatasetStats("syn", syn)
	if st.NumGraphs != len(syn) {
		t.Error("dataset stats")
	}
}

func TestExtractQueryDeterministic(t *testing.T) {
	g := psi.GenerateYeastLike(psi.Tiny, 2)
	a := psi.ExtractQuery(g, 8, 5)
	b := psi.ExtractQuery(g, 8, 5)
	if !a.Equal(b) {
		t.Error("same seed must reproduce the query")
	}
	if a.M() != 8 {
		t.Errorf("query has %d edges", a.M())
	}
}

func TestBuilderAPI(t *testing.T) {
	b := psi.NewBuilder("g")
	v0 := b.AddVertex(3)
	v1 := b.AddVertex(4)
	if err := b.AddEdge(v0, v1); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Error("builder result")
	}
}

func TestCachedFTVAPI(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 8)
	x := psi.NewGrapes(ds, 2)
	cached := psi.NewCachedFTV(x, 16)
	q := psi.ExtractQuery(ds[0], 5, 3)
	want, err := psi.FTVAnswer(context.Background(), x, q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // second round hits the cache
		got, err := cached.Answer(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("cached answer %v, plain answer %v", got, want)
		}
	}
	if cached.Stats().ExactHits != 1 {
		t.Errorf("stats = %+v, want one exact hit", cached.Stats())
	}
}

// TestFilterIndexFacade exercises the unified filtering-index exports: the
// registry lists all three kinds, BuildIndex constructs any of them, and
// every built index answers identically through the FTV pipeline.
func TestFilterIndexFacade(t *testing.T) {
	kinds := psi.IndexKinds()
	if len(kinds) < 3 {
		t.Fatalf("IndexKinds = %v, want ftv/grapes/ggsx", kinds)
	}
	ds := []*psi.Graph{
		psi.MustNewGraph("d0", []psi.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}, {2, 0}}),
		psi.MustNewGraph("d1", []psi.Label{0, 1, 2, 0}, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
		psi.MustNewGraph("d2", []psi.Label{1, 0, 0, 0}, [][2]int{{0, 1}, {0, 2}, {0, 3}}),
	}
	q := psi.MustNewGraph("q", []psi.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	var want []int
	for i, kind := range kinds {
		x, err := psi.BuildIndex(context.Background(), kind, ds, 1)
		if err != nil {
			t.Fatal(err)
		}
		if st := x.Stats(); st.Kind != kind || st.Graphs != len(ds) {
			t.Errorf("%s Stats = %+v", kind, st)
		}
		got, err := psi.FTVAnswer(context.Background(), x, q)
		x.Close()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s answered %v, first kind answered %v", kind, got, want)
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("%s answered %v, first kind answered %v", kind, got, want)
			}
		}
	}
	if _, err := psi.BuildIndex(context.Background(), "btree", ds, 1); err == nil {
		t.Error("BuildIndex of unknown kind must fail")
	}
	// The sharded constructor answers identically to the monolithic build
	// and reports its partitioning in Stats.
	sh, err := psi.NewShardedIndex(context.Background(), kinds[0], ds, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if st := sh.Stats(); st.ShardCount != 2 || len(st.Shards) != 2 {
		t.Errorf("sharded Stats = %+v, want ShardCount 2 with per-shard breakdown", st)
	}
	got, err := psi.FTVAnswer(context.Background(), sh, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("sharded index answered %v, monolithic %v", got, want)
	}
	for j := range got {
		if got[j] != want[j] {
			t.Fatalf("sharded index answered %v, monolithic %v", got, want)
		}
	}
	if _, err := psi.NewShardedIndex(context.Background(), "btree", ds, 2, 1); err == nil {
		t.Error("NewShardedIndex of unknown kind must fail")
	}
}
