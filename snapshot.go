package psi

// Engine persistence: SaveSnapshot serializes a dataset engine's full state
// through internal/snapshot's versioned, checksummed container, and
// EngineOptions.Snapshot constructs an engine by loading one — skipping the
// feature extraction that dominates build time, which is what makes
// `psiserve -snapshot` cold starts near-instant. A loaded engine answers
// every query byte-identically to the engine that saved it.

import (
	"errors"
	"fmt"
	"slices"

	"github.com/psi-graph/psi/internal/index"
	"github.com/psi-graph/psi/internal/live"
	"github.com/psi-graph/psi/internal/snapshot"
)

// SaveSnapshot writes the engine's dataset, index portfolio and (for
// mutable engines) mutation state to path, atomically: the file appears
// complete or not at all. Mutations are blocked for the duration on mutable
// engines — the serialized state is one consistent epoch. NFV engines have
// no dataset state and cannot be snapshotted.
func (e *Engine) SaveSnapshot(path string) error {
	if e.g != nil {
		return errors.New("psi: snapshots require a dataset engine")
	}
	if e.store != nil {
		// Hold the mutation lock across the whole save: the exported grid
		// aliases the store's live sub-indexes, and a concurrent mutation
		// could retire (and, once snapshots drain, close) one mid-read.
		e.mutMu.Lock()
		defer e.mutMu.Unlock()
		state, err := e.store.ExportState()
		if err != nil {
			return err
		}
		handles := make([]int64, len(state.Handles))
		for i, h := range state.Handles {
			handles[i] = int64(h)
		}
		tombs := make([]int32, len(state.Tombs))
		for i, tc := range state.Tombs {
			tombs[i] = int32(tc)
		}
		return snapshot.Save(path, &snapshot.Model{
			Mutable:    true,
			Shards:     state.Shards,
			Kinds:      state.Kinds,
			Epoch:      state.Epoch,
			NextHandle: int64(state.NextHandle),
			Graphs:     state.SlotGraphs,
			Alive:      state.Alive,
			Handles:    handles,
			Tombs:      tombs,
			Indexes:    state.Grid,
		})
	}
	st := e.acquireState()
	if st == nil {
		return errors.New("psi: engine closed")
	}
	defer st.unref()
	shards := 1
	grid := make(map[string][]index.Index, len(e.kinds))
	for i, kind := range e.kinds {
		if sh, ok := st.indexes[i].(*index.Sharded); ok {
			subs := sh.Subs()
			shards = len(subs) // every kind shards identically
			grid[kind] = subs
		} else {
			grid[kind] = []index.Index{st.indexes[i]}
		}
	}
	return snapshot.Save(path, &snapshot.Model{
		Shards:  shards,
		Kinds:   e.kinds,
		Graphs:  st.ds,
		Indexes: grid,
	})
}

// newSnapshotEngine is the EngineOptions.Snapshot construction path: load,
// cross-check the options against what the snapshot says it is, and wire
// the restored indexes into a serving engine without rebuilding anything.
func newSnapshotEngine(opts EngineOptions) (*Engine, error) {
	e, err := newEngineCommon(opts)
	if err != nil {
		return nil, err
	}
	m, err := snapshot.Load(opts.Snapshot, index.Options{
		Workers: opts.IndexWorkers,
		Pool:    e.pool,
	})
	if err != nil {
		e.Close()
		return nil, err
	}
	closeModel := func() {
		for _, subs := range m.Indexes {
			for _, sub := range subs {
				sub.Close()
			}
		}
	}
	fail := func(err error) (*Engine, error) {
		closeModel()
		e.Close()
		return nil, err
	}
	// The snapshot dictates dataset, portfolio, shard count and mode;
	// non-zero options must agree — a silent divergence here would serve
	// answers from a different index than the caller configured.
	if opts.Mutable != m.Mutable {
		return fail(fmt.Errorf("psi: snapshot %s is mutable=%v, options say mutable=%v", opts.Snapshot, m.Mutable, opts.Mutable))
	}
	if opts.Shards != 0 && opts.Shards != m.Shards {
		return fail(fmt.Errorf("psi: snapshot %s has %d shards, options say %d", opts.Snapshot, m.Shards, opts.Shards))
	}
	if len(opts.Indexes) > 0 || opts.Index != "" {
		want := append([]string(nil), engineKinds(opts)...)
		got := append([]string(nil), m.Kinds...)
		slices.Sort(want)
		slices.Sort(got)
		if !slices.Equal(want, got) {
			return fail(fmt.Errorf("psi: snapshot %s indexes %v, options say %v", opts.Snapshot, m.Kinds, engineKinds(opts)))
		}
	}
	if err := e.configurePortfolio(opts, m.Kinds); err != nil {
		return fail(err)
	}
	var indexes []FilterIndex
	if m.Mutable {
		handles := make([]live.Handle, len(m.Handles))
		for i, h := range m.Handles {
			handles[i] = live.Handle(h)
		}
		tombs := make([]int, len(m.Tombs))
		for i, tc := range m.Tombs {
			tombs[i] = int(tc)
		}
		store, serr := live.Restore(live.State{
			Kinds:      m.Kinds,
			Shards:     m.Shards,
			Epoch:      m.Epoch,
			NextHandle: live.Handle(m.NextHandle),
			SlotGraphs: m.Graphs,
			Alive:      m.Alive,
			Handles:    handles,
			Tombs:      tombs,
			Grid:       m.Indexes,
		}, opts.CompactEvery, index.Options{
			Workers: opts.IndexWorkers,
			Pool:    e.pool,
		})
		if serr != nil {
			return fail(serr)
		}
		e.store = store
		if store.Shards() > 1 {
			e.shardK = store.Shards()
			e.shardEmits = make([]int64, e.shardK)
		}
		snap := store.Current()
		for _, kind := range m.Kinds {
			indexes = append(indexes, snap.Index(kind))
		}
		e.installState(e.newState(snap, indexes))
	} else {
		if m.Shards > 1 {
			e.shardK = m.Shards
			e.shardEmits = make([]int64, e.shardK)
		}
		for _, kind := range m.Kinds {
			if subs := m.Indexes[kind]; len(subs) > 1 {
				indexes = append(indexes, index.NewShardedFrom(m.Graphs, kind, subs))
			} else {
				indexes = append(indexes, subs[0])
			}
		}
		st := &dsState{ds: m.Graphs, indexes: indexes}
		st.dispose = func() {
			if st.ixRacer != nil {
				st.ixRacer.Close()
			}
			for _, x := range st.indexes {
				x.Close()
			}
		}
		e.wireState(st)
		st.refs.Store(1)
		e.dsst.Store(st)
	}
	e.finishPortfolio(opts, indexes)
	return e, nil
}
