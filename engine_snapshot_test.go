package psi_test

// Snapshot round-trip property tests at the engine surface: for every index
// kind portfolio × shard count × static/mutable, an engine loaded from a
// snapshot must answer byte-identically to the engine that saved it — and a
// restored mutable engine must stay in lockstep with the original under
// further identical mutations. Plus the options-vs-snapshot mismatch
// surface and the corrupt-file fail-closed guarantee.

import (
	"context"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	psi "github.com/psi-graph/psi"
)

// snapAnswers runs every query on the engine and collects the graph IDs.
func snapAnswers(t *testing.T, e *psi.Engine, queries []*psi.Graph) [][]int {
	t.Helper()
	out := make([][]int, len(queries))
	for i, q := range queries {
		res, err := e.Query(context.Background(), q, 0)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		out[i] = res.GraphIDs
	}
	return out
}

func assertSameAnswers(t *testing.T, label string, want, got [][]int) {
	t.Helper()
	for i := range want {
		if !slices.Equal(want[i], got[i]) {
			t.Errorf("%s: query %d answered %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestEngineSnapshotRoundTripStatic: save a static engine (full index-kind
// portfolio) at several shard counts, load it with zero options, and demand
// identical answers, shard count and dataset.
func TestEngineSnapshotRoundTripStatic(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 3)
	kinds, err := psi.ParseIndexSpec("ftv,grapes,ggsx")
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]*psi.Graph, 5)
	for i := range queries {
		queries[i] = psi.ExtractQuery(ds[i%len(ds)], 3+i%3, int64(40+i))
	}
	for _, shards := range []int{1, 4} {
		path := filepath.Join(t.TempDir(), "static.psnap")
		orig, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Indexes: kinds, Shards: shards})
		if err != nil {
			t.Fatalf("K=%d: %v", shards, err)
		}
		want := snapAnswers(t, orig, queries)
		if err := orig.SaveSnapshot(path); err != nil {
			t.Fatalf("K=%d: save: %v", shards, err)
		}
		loaded, err := psi.NewDatasetEngine(nil, psi.EngineOptions{Snapshot: path})
		if err != nil {
			t.Fatalf("K=%d: load: %v", shards, err)
		}
		if loaded.Mutable() {
			t.Errorf("K=%d: loaded static engine reports mutable", shards)
		}
		if loaded.Shards() != orig.Shards() {
			t.Errorf("K=%d: loaded Shards() = %d, want %d", shards, loaded.Shards(), orig.Shards())
		}
		if len(loaded.Dataset()) != len(ds) {
			t.Errorf("K=%d: loaded dataset has %d graphs, want %d", shards, len(loaded.Dataset()), len(ds))
		}
		assertSameAnswers(t, "loaded static", want, snapAnswers(t, loaded, queries))

		// Streamed answers agree too (exercises the restored merge path).
		for i, q := range queries {
			var ids []int
			if err := loaded.AnswerStream(context.Background(), q, func(id int) bool {
				ids = append(ids, id)
				return true
			}); err != nil {
				t.Fatalf("K=%d: stream: %v", shards, err)
			}
			if !slices.Equal(ids, want[i]) {
				t.Errorf("K=%d: streamed query %d = %v, want %v", shards, i, ids, want[i])
			}
		}

		// A re-save of the loaded engine must load again (save → load →
		// save → load is closed under the codec).
		again := filepath.Join(t.TempDir(), "again.psnap")
		if err := loaded.SaveSnapshot(again); err != nil {
			t.Fatalf("K=%d: re-save: %v", shards, err)
		}
		reloaded, err := psi.NewDatasetEngine(nil, psi.EngineOptions{Snapshot: again})
		if err != nil {
			t.Fatalf("K=%d: re-load: %v", shards, err)
		}
		assertSameAnswers(t, "reloaded static", want, snapAnswers(t, reloaded, queries))
		reloaded.Close()
		loaded.Close()
		orig.Close()
	}
}

// TestEngineSnapshotRoundTripMutable: churn a mutable engine, save, load,
// and demand the restored engine not only answer identically but continue
// identically — same handles, same epochs, same compaction points — under
// further lockstep mutations.
func TestEngineSnapshotRoundTripMutable(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 4)
	pool := mutablePool(90, 16)
	kinds := []string{"ftv", "grapes"}
	queries := make([]*psi.Graph, 4)
	for i := range queries {
		queries[i] = psi.ExtractQuery(ds[i%len(ds)], 3+i%3, int64(60+i))
	}
	for _, shards := range []int{1, 4} {
		path := filepath.Join(t.TempDir(), "mutable.psnap")
		orig, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
			Indexes: kinds, Shards: shards, Mutable: true, CompactEvery: 2,
		})
		if err != nil {
			t.Fatalf("K=%d: %v", shards, err)
		}
		// Churn: adds, a removal (leaves a tombstone), a replace.
		var handles []psi.GraphHandle
		for i := 0; i < 4; i++ {
			h, err := orig.AddGraph(context.Background(), pool[i])
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		if _, err := orig.RemoveGraph(context.Background(), handles[1]); err != nil {
			t.Fatal(err)
		}
		if err := orig.ReplaceGraph(context.Background(), handles[2], pool[4]); err != nil {
			t.Fatal(err)
		}
		want := snapAnswers(t, orig, queries)
		epoch := orig.Epoch()
		if err := orig.SaveSnapshot(path); err != nil {
			t.Fatalf("K=%d: save: %v", shards, err)
		}

		loaded, err := psi.NewDatasetEngine(nil, psi.EngineOptions{
			Snapshot: path, Mutable: true, CompactEvery: 2,
		})
		if err != nil {
			t.Fatalf("K=%d: load: %v", shards, err)
		}
		if !loaded.Mutable() {
			t.Fatalf("K=%d: loaded engine is not mutable", shards)
		}
		if loaded.Epoch() != epoch {
			t.Errorf("K=%d: loaded epoch %d, want %d", shards, loaded.Epoch(), epoch)
		}
		if !slices.Equal(loaded.Handles(), orig.Handles()) {
			t.Errorf("K=%d: loaded handles %v, want %v", shards, loaded.Handles(), orig.Handles())
		}
		assertSameAnswers(t, "loaded mutable", want, snapAnswers(t, loaded, queries))

		// Lockstep continuation on BOTH engines: identical mutations must
		// issue identical handles and keep answers identical — the restored
		// engine preserved the next-handle counter and tombstone schedule.
		for i := 5; i < 9; i++ {
			h1, err := orig.AddGraph(context.Background(), pool[i])
			if err != nil {
				t.Fatal(err)
			}
			h2, err := loaded.AddGraph(context.Background(), pool[i])
			if err != nil {
				t.Fatal(err)
			}
			if h1 != h2 {
				t.Fatalf("K=%d: lockstep add %d issued handles %d vs %d", shards, i, h1, h2)
			}
			if i%2 == 1 {
				c1, err := orig.RemoveGraph(context.Background(), h1)
				if err != nil {
					t.Fatal(err)
				}
				c2, err := loaded.RemoveGraph(context.Background(), h1)
				if err != nil {
					t.Fatal(err)
				}
				if c1 != c2 {
					t.Fatalf("K=%d: lockstep remove %d compacted %v vs %v", shards, i, c1, c2)
				}
			}
			if orig.Epoch() != loaded.Epoch() {
				t.Fatalf("K=%d: epochs diverged: %d vs %d", shards, orig.Epoch(), loaded.Epoch())
			}
			assertSameAnswers(t, "lockstep", snapAnswers(t, orig, queries), snapAnswers(t, loaded, queries))
		}
		loaded.Close()
		orig.Close()
	}
}

// TestEngineSnapshotMismatch: every way the options can contradict the
// snapshot must fail closed — and a corrupted file must never produce an
// engine.
func TestEngineSnapshotMismatch(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 5)
	path := filepath.Join(t.TempDir(), "e.psnap")
	orig, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Indexes: []string{"ftv", "grapes"}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer orig.Close()
	if err := orig.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		opts    psi.EngineOptions
		wantSub string
	}{
		{"mutable mismatch", psi.EngineOptions{Snapshot: path, Mutable: true}, "mutable"},
		{"shard mismatch", psi.EngineOptions{Snapshot: path, Shards: 3}, "shards"},
		{"kind mismatch", psi.EngineOptions{Snapshot: path, Index: "ggsx"}, "indexes"},
		{"kind subset", psi.EngineOptions{Snapshot: path, Indexes: []string{"ftv"}}, "indexes"},
		{"missing file", psi.EngineOptions{Snapshot: path + ".nope"}, ""},
	}
	for _, tc := range cases {
		if _, err := psi.NewDatasetEngine(nil, tc.opts); err == nil {
			t.Errorf("%s: load succeeded", tc.name)
		} else if tc.wantSub != "" && !strings.Contains(strings.ToLower(err.Error()), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}

	// Matching non-zero options are accepted.
	ok, err := psi.NewDatasetEngine(nil, psi.EngineOptions{
		Snapshot: path, Shards: 2, Indexes: []string{"grapes", "ftv"}, // order-insensitive
	})
	if err != nil {
		t.Fatalf("matching options rejected: %v", err)
	}
	ok.Close()

	// A dataset alongside Snapshot is ambiguous, not silently resolved.
	if _, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Snapshot: path}); err == nil {
		t.Error("Snapshot with non-nil dataset succeeded")
	}

	// NFV engines have no snapshot surface.
	nfv, err := psi.NewEngine(ds[0], psi.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer nfv.Close()
	if err := nfv.SaveSnapshot(filepath.Join(t.TempDir(), "nfv.psnap")); err == nil {
		t.Error("NFV SaveSnapshot succeeded")
	}

	// Corrupt one byte mid-file: the load must fail with a checksum error,
	// never hand back a partial engine.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	bad := filepath.Join(t.TempDir(), "bad.psnap")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := psi.NewDatasetEngine(nil, psi.EngineOptions{Snapshot: bad}); err == nil {
		t.Error("corrupted snapshot loaded")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Errorf("corrupt-load error %q does not mention checksum", err)
	}
}
