package psi_test

// One benchmark per table and figure of the paper: each regenerates the
// artifact end to end (datasets, indexes, workload, measurements) at Tiny
// scale through the experiment harness. Set -timeout generously; macro
// benchmarks take seconds per iteration by design.
//
// Micro-benchmarks at the bottom measure the framework's moving parts:
// rewriting cost (§8 reports tens to hundreds of µs), matcher throughput,
// index construction, and the racing overhead ablation from DESIGN.md §7.

import (
	"context"
	"io"
	"testing"

	psi "github.com/psi-graph/psi"
	"github.com/psi-graph/psi/internal/core"
	"github.com/psi-graph/psi/internal/gen"
	"github.com/psi-graph/psi/internal/harness"
	"github.com/psi-graph/psi/internal/rewrite"
)

// benchExperiment regenerates one paper artifact per iteration.
func benchExperiment(b *testing.B, id string) {
	cfg := harness.DefaultConfig(gen.Tiny)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := harness.Run(cfg, io.Discard, id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1DatasetStats(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTable2DatasetStats(b *testing.B)   { benchExperiment(b, "table2") }
func BenchmarkFig1FTVStragglers(b *testing.B)    { benchExperiment(b, "fig1") }
func BenchmarkFig2NFVStragglers(b *testing.B)    { benchExperiment(b, "fig2") }
func BenchmarkTable3YeastBreakdown(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4HumanBreakdown(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkFig3MaxMinFTV(b *testing.B)        { benchExperiment(b, "fig3") }
func BenchmarkFig4MaxMinNFV(b *testing.B)        { benchExperiment(b, "fig4") }
func BenchmarkFig5RewritingExample(b *testing.B) { benchExperiment(b, "fig5") }
func BenchmarkFig6RewritingSweep(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig7SpeedupFTV(b *testing.B)       { benchExperiment(b, "fig7") }
func BenchmarkFig8SpeedupNFV(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig9AlgPortfolio(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkFig10PsiFTVQLA(b *testing.B)       { benchExperiment(b, "fig10") }
func BenchmarkFig11PsiFTVWLA(b *testing.B)       { benchExperiment(b, "fig11") }
func BenchmarkFig12GrapesVsPsi(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13PsiNFVRewr(b *testing.B)      { benchExperiment(b, "fig13") }
func BenchmarkFig14PsiNFVAlgQLA(b *testing.B)    { benchExperiment(b, "fig14") }
func BenchmarkFig15PsiNFVAlgWLA(b *testing.B)    { benchExperiment(b, "fig15") }
func BenchmarkTable10Killed(b *testing.B)        { benchExperiment(b, "table10") }
func BenchmarkAblationOverhead(b *testing.B)     { benchExperiment(b, "ablation1") }
func BenchmarkAblationPredictor(b *testing.B)    { benchExperiment(b, "ablation2") }

// --- micro-benchmarks -----------------------------------------------------

// BenchmarkRewritingCost measures producing one ILF+DND rewriting of a
// 24-edge query — the overhead §8 of the paper reports as "a few tens (for
// smaller query sizes) to a few hundreds ... of µsecs".
func BenchmarkRewritingCost(b *testing.B) {
	g := psi.GenerateYeastLike(psi.Tiny, 1)
	q := psi.ExtractQuery(g, 24, 42)
	freq := rewrite.FrequenciesOf(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rewrite.Apply(q, freq, rewrite.ILFDND, 0)
	}
}

// benchMatcher measures matching a planted 16-edge query (limit 1000).
func benchMatcher(b *testing.B, algo psi.Algorithm) {
	g := psi.GenerateYeastLike(psi.Tiny, 1)
	q := psi.ExtractQuery(g, 16, 7)
	m := psi.MustNewMatcher(algo, g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Match(context.Background(), q, 1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchVF2(b *testing.B)     { benchMatcher(b, psi.VF2) }
func BenchmarkMatchQuickSI(b *testing.B) { benchMatcher(b, psi.QuickSI) }
func BenchmarkMatchGraphQL(b *testing.B) { benchMatcher(b, psi.GraphQL) }
func BenchmarkMatchSPath(b *testing.B)   { benchMatcher(b, psi.SPath) }

// BenchmarkGrapesIndexBuild measures FTV index construction over the
// Tiny PPI dataset with 4 workers.
func BenchmarkGrapesIndexBuild(b *testing.B) {
	ds := psi.GeneratePPI(psi.Tiny, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		psi.NewGrapes(ds, 4).Close()
	}
}

// BenchmarkGGSXIndexBuild measures the suffix-trie construction.
func BenchmarkGGSXIndexBuild(b *testing.B) {
	ds := psi.GeneratePPI(psi.Tiny, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		psi.NewGGSX(ds).Close()
	}
}

// BenchmarkGrapesFilter measures the filtering stage alone.
func BenchmarkGrapesFilter(b *testing.B) {
	ds := psi.GeneratePPI(psi.Tiny, 1)
	x := psi.NewGrapes(ds, 4)
	q := psi.ExtractQuery(ds[0], 16, 9)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Filter(q)
	}
}

// ftvAnswerBench builds the GGSX index over the Tiny synthetic dataset and
// a workload of queries with non-trivial candidate sets — the fixture for
// the sequential-vs-parallel FTVAnswer comparison. GGSX verifies against
// whole stored graphs (no location pruning), so per-candidate verification
// carries enough work for the fan-out to pay.
func ftvAnswerBench() (psi.FTVIndex, []*psi.Graph) {
	ds := psi.GenerateSynthetic(psi.Tiny, 1)
	x := psi.NewGGSX(ds)
	var queries []*psi.Graph
	for i, g := range ds {
		queries = append(queries,
			psi.ExtractQuery(g, 8, int64(100+i)),
			psi.ExtractQuery(g, 14, int64(200+i)))
	}
	return x, queries
}

// BenchmarkFTVAnswerSequential is the baseline: candidates verified one
// after another on the caller's goroutine.
func BenchmarkFTVAnswerSequential(b *testing.B) {
	x, queries := ftvAnswerBench()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := psi.FTVAnswer(context.Background(), x, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFTVAnswerParallel fans the verification stage out across the
// shared worker pool (one worker per CPU). On a ≥4-core machine this is the
// ≥2× win the Ψ-framework's verification-stage parallelism predicts; results
// are byte-identical to the sequential pipeline (see
// TestFTVAnswerParallelMatchesSequential).
func BenchmarkFTVAnswerParallel(b *testing.B) {
	x, queries := ftvAnswerBench()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := psi.FTVAnswerParallel(context.Background(), x, q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFTVAnswerWorkers pins explicit pool sizes so the scaling curve is
// visible on any machine regardless of GOMAXPROCS.
func BenchmarkFTVAnswerWorkers(b *testing.B) {
	x, queries := ftvAnswerBench()
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(byThreads(w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, err := psi.FTVAnswerWithOptions(context.Background(), x, q,
						psi.FTVAnswerOptions{MaxWorkers: w}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkRaceOverhead is the ablation from DESIGN.md §7: racing k
// identical VF2 attempts against running one, quantifying goroutine
// instantiation + synchronization overhead (§8: "the instantiation and
// synchronization of many threads come with a non-trivial overhead").
func BenchmarkRaceOverhead(b *testing.B) {
	g := psi.GenerateYeastLike(psi.Tiny, 1)
	q := psi.ExtractQuery(g, 8, 3)
	racer := core.NewRacer(g)
	for _, k := range []int{1, 2, 4, 8} {
		attempts := make([]core.Attempt, k)
		for i := range attempts {
			attempts[i] = core.Attempt{Matcher: psi.MustNewMatcher(psi.VF2, g), Rewriting: rewrite.Orig}
		}
		b.Run(byThreads(k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := racer.Race(context.Background(), q, 1, attempts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func byThreads(k int) string {
	return map[int]string{1: "threads=1", 2: "threads=2", 4: "threads=4", 8: "threads=8"}[k]
}
