package psi_test

// First-result-latency benchmarks for the streaming Engine. The contrast
// that matters: BenchmarkEngineFirstResult stops the race at the very
// first emitted embedding (the streaming fast path the Ψ race wants),
// while BenchmarkEngineFullEnumeration pays for the complete answer — the
// only option before the streaming refactor. Recorded baselines live in
// BENCH_engine.json.

import (
	"context"
	"testing"

	psi "github.com/psi-graph/psi"
)

func benchEngine(b *testing.B) (*psi.Engine, *psi.Graph) {
	b.Helper()
	g := psi.GenerateYeastLike(psi.Small, 1)
	eng, err := psi.NewEngine(g, psi.EngineOptions{
		Algorithms: []psi.Algorithm{psi.GraphQL, psi.SPath},
		Rewritings: []psi.Rewriting{psi.Orig, psi.DND},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(eng.Close)
	return eng, psi.ExtractQuery(g, 8, 42)
}

// BenchmarkEngineFirstResult measures time-to-first-embedding: the sink
// stops the race after one emission, so losers are cancelled and the
// query never pays for full enumeration.
func BenchmarkEngineFirstResult(b *testing.B) {
	eng, q := benchEngine(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found := false
		res, err := eng.QueryStream(ctx, q, 1<<30, psi.SinkFunc(func(psi.Embedding) bool {
			found = true
			return false
		}))
		if err != nil {
			b.Fatal(err)
		}
		if !found || res.Found != 1 {
			b.Fatalf("expected exactly one streamed embedding, got %d", res.Found)
		}
	}
}

// BenchmarkEngineEnumerate10k is the slice-path contrast: the same query
// materializing 10000 embeddings before the caller sees any. (The truly
// unbounded enumeration runs for minutes on this query — the gap the
// streaming path exists to close — which is too slow for a CI smoke
// stage, so the cap keeps the benchmark bounded while still dwarfing
// time-to-first-result by three orders of magnitude.)
func BenchmarkEngineEnumerate10k(b *testing.B) {
	eng, q := benchEngine(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Query(ctx, q, 10000)
		if err != nil {
			b.Fatal(err)
		}
		if res.Found == 0 {
			b.Fatal("expected embeddings")
		}
	}
}

// BenchmarkEngineDecision is the decision-query shape (limit <= 0)
// through the plan/execute path — the FTV verification inner loop.
func BenchmarkEngineDecision(b *testing.B) {
	eng, q := benchEngine(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Query(ctx, q, 0)
		if err != nil {
			b.Fatal(err)
		}
		if res.Found != 1 {
			b.Fatalf("decision found %d", res.Found)
		}
	}
}
