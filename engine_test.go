package psi_test

// Tests for the plan/execute Engine facade: planning policies, execution
// parity with the free-function paths, streaming, deadlines and the FTV
// pipeline behind the result cache.

import (
	"context"
	"runtime"
	"testing"
	"time"

	psi "github.com/psi-graph/psi"
)

func engineFixture(t *testing.T) (*psi.Graph, *psi.Graph) {
	t.Helper()
	g := psi.GenerateYeastLike(psi.Tiny, 3)
	q := psi.ExtractQuery(g, 5, 11)
	return g, q
}

func TestEngineQueryMatchesDirectMatch(t *testing.T) {
	g, q := engineFixture(t)
	eng, err := psi.NewEngine(g, psi.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	want, err := psi.MustNewMatcher(psi.GraphQL, g).Match(context.Background(), q, 100000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(context.Background(), q, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != psi.PlanRace {
		t.Errorf("default mode should plan a race, got %v", res.Kind)
	}
	if res.Found != len(want) || len(res.Embeddings) != len(want) {
		t.Fatalf("engine found %d embeddings, direct match %d", res.Found, len(want))
	}
	for _, e := range res.Embeddings {
		if err := psi.VerifyEmbedding(q, g, e); err != nil {
			t.Fatalf("engine emitted invalid embedding: %v", err)
		}
	}
	if res.Winner == "" || res.Elapsed <= 0 {
		t.Errorf("result missing provenance: winner=%q elapsed=%v", res.Winner, res.Elapsed)
	}
}

func TestEngineQueryStreamParity(t *testing.T) {
	g, q := engineFixture(t)
	eng, err := psi.NewEngine(g, psi.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	slice, err := eng.Query(context.Background(), q, 100000)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []psi.Embedding
	res, err := eng.QueryStream(context.Background(), q, 100000, psi.SinkFunc(func(e psi.Embedding) bool {
		streamed = append(streamed, e)
		return true
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != slice.Found || res.Found != slice.Found {
		t.Fatalf("streamed %d embeddings (Found=%d), slice path found %d",
			len(streamed), res.Found, slice.Found)
	}
	if res.Embeddings != nil {
		t.Error("streaming execution must not also materialize embeddings")
	}
	for _, e := range streamed {
		if err := psi.VerifyEmbedding(q, g, e); err != nil {
			t.Fatalf("streamed embedding invalid: %v", err)
		}
	}
}

func TestEngineFirstResultStopsEarly(t *testing.T) {
	g, q := engineFixture(t)
	eng, err := psi.NewEngine(g, psi.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	emitted := 0
	res, err := eng.QueryStream(context.Background(), q, 100000, psi.SinkFunc(func(psi.Embedding) bool {
		emitted++
		return false
	}))
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 1 || res.Found != 1 {
		t.Fatalf("first-result stream emitted %d (Found=%d), want 1", emitted, res.Found)
	}
}

func TestEngineModeSinglePlansFixed(t *testing.T) {
	g, q := engineFixture(t)
	eng, err := psi.NewEngine(g, psi.EngineOptions{
		Mode:       psi.ModeSingle,
		Algorithms: []psi.Algorithm{psi.VF2, psi.GraphQL},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	p, err := eng.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != psi.PlanFixed || len(p.Attempts) != 1 {
		t.Fatalf("ModeSingle plan = %v with %d attempts, want fixed/1", p.Kind, len(p.Attempts))
	}
	res, err := eng.Execute(context.Background(), p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "VF2-Orig" {
		t.Errorf("fixed plan should run the portfolio's first attempt, winner=%q", res.Winner)
	}
}

func TestEngineModePredictWarmsUpThenPredicts(t *testing.T) {
	g, _ := engineFixture(t)
	eng, err := psi.NewEngine(g, psi.EngineOptions{
		Mode:        psi.ModePredict,
		WarmupRaces: 3,
		SoloBudget:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	sawPredicted := false
	for i := 0; i < 12; i++ {
		q := psi.ExtractQuery(g, 4, int64(100+i))
		p, err := eng.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		if i < 3 && p.Kind != psi.PlanRace {
			t.Fatalf("query %d during warmup planned %v, want race", i, p.Kind)
		}
		res, err := eng.Execute(context.Background(), p, 100)
		if err != nil {
			t.Fatal(err)
		}
		if p.Kind == psi.PlanPredicted {
			sawPredicted = true
			if p.Predicted < 0 {
				t.Fatal("predicted plan without a predicted index")
			}
		}
		// Answers stay correct in every mode.
		want, err := psi.MustNewMatcher(psi.GraphQL, g).Match(context.Background(), q, 100)
		if err != nil {
			t.Fatal(err)
		}
		if res.FellBack {
			continue // fallback re-raced: count still checked below
		}
		if res.Found != len(want) {
			t.Fatalf("query %d (%v): engine found %d, direct %d", i, p.Kind, res.Found, len(want))
		}
	}
	if !sawPredicted {
		t.Error("model never produced a predicted plan after warmup")
	}
}

func TestEngineDeadlineKillsQuery(t *testing.T) {
	// A large single-label graph with a big query: full enumeration takes
	// far longer than the 5ms cap.
	b := psi.NewBuilder("dense")
	const n = 300
	for i := 0; i < n; i++ {
		b.AddVertex(0)
	}
	for i := 1; i < n; i++ {
		if err := b.AddEdge(i-1, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n-7; i += 3 {
		if err := b.AddEdge(i, i+7); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	q := psi.ExtractQuery(g, 9, 5)
	eng, err := psi.NewEngine(g, psi.EngineOptions{Timeout: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Query(context.Background(), q, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed {
		t.Skip("enumeration finished inside the cap on this machine")
	}
	if res.Found != 0 || res.Embeddings != nil {
		t.Error("killed query must surface an empty answer")
	}
	if res.Elapsed != 5*time.Millisecond {
		t.Errorf("killed query Elapsed = %v, want clamped to the 5ms cap", res.Elapsed)
	}
}

func TestEngineDeadlineStreamingKeepsSurfacedCount(t *testing.T) {
	// Same dense fixture as the kill test, streamed: embeddings that
	// reached the sink before the kill must stay counted in Found.
	b := psi.NewBuilder("dense")
	const n = 300
	for i := 0; i < n; i++ {
		b.AddVertex(0)
	}
	for i := 1; i < n; i++ {
		if err := b.AddEdge(i-1, i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n-7; i += 3 {
		if err := b.AddEdge(i, i+7); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	q := psi.ExtractQuery(g, 9, 5)
	eng, err := psi.NewEngine(g, psi.EngineOptions{Timeout: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	streamed := 0
	res, err := eng.QueryStream(context.Background(), q, 1<<30, psi.SinkFunc(func(psi.Embedding) bool {
		streamed++
		return true
	}))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed {
		t.Skip("enumeration finished inside the cap on this machine")
	}
	if res.Found != streamed {
		t.Errorf("killed streaming run reports Found=%d, sink saw %d", res.Found, streamed)
	}
}

func TestEnginePlanDoesNotAliasPortfolio(t *testing.T) {
	g, q := engineFixture(t)
	eng, err := psi.NewEngine(g, psi.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	p, err := eng.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	p.Attempts[0] = psi.Attempt{} // caller scribbles on the plan
	if got := eng.Attempts(); got[0].Matcher == nil {
		t.Fatal("mutating a plan's attempts corrupted the engine's portfolio")
	}
	if _, err := eng.Query(context.Background(), q, 1); err != nil {
		t.Fatalf("engine broken after plan mutation: %v", err)
	}
}

func TestEnginePlanRejectsForeignAndNil(t *testing.T) {
	g, q := engineFixture(t)
	e1, err := psi.NewEngine(g, psi.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer e1.Close()
	e2, err := psi.NewEngine(g, psi.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	p, err := e1.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Execute(context.Background(), p, 1); err == nil {
		t.Error("executing another engine's plan must fail")
	}
	if _, err := e1.Execute(context.Background(), nil, 1); err == nil {
		t.Error("executing a nil plan must fail")
	}
	if _, err := e1.ExecuteStream(context.Background(), p, 1, nil); err == nil {
		t.Error("ExecuteStream without a sink must fail")
	}
}

func TestDatasetEngineMatchesFTVAnswer(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 2)
	q := psi.ExtractQuery(ds[0], 4, 9)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Rewritings: []psi.Rewriting{psi.Orig, psi.DND},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	want, err := psi.FTVAnswer(context.Background(), psi.NewGrapes(ds, 1), q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != psi.PlanFTV {
		t.Errorf("dataset engine planned %v, want ftv", res.Kind)
	}
	if len(res.GraphIDs) != len(want) {
		t.Fatalf("engine answered %v, FTVAnswer %v", res.GraphIDs, want)
	}
	for i := range want {
		if res.GraphIDs[i] != want[i] {
			t.Fatalf("engine answered %v, FTVAnswer %v", res.GraphIDs, want)
		}
	}
	// Repeat query: the result cache must serve it and stats must move.
	if _, err := eng.Query(context.Background(), q, 0); err != nil {
		t.Fatal(err)
	}
	stats, ok := eng.CacheStats()
	if !ok {
		t.Fatal("dataset engine should have a result cache by default")
	}
	if stats.ExactHits == 0 {
		t.Errorf("repeated query not served from cache: %+v", stats)
	}
}

func TestDatasetEngineAnswerStream(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 2)
	q := psi.ExtractQuery(ds[0], 3, 7)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Query(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []int
	if err := eng.AnswerStream(context.Background(), q, func(id int) bool {
		streamed = append(streamed, id)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.GraphIDs) {
		t.Fatalf("streamed %v, Query answered %v", streamed, res.GraphIDs)
	}
	for i := range streamed {
		if streamed[i] != res.GraphIDs[i] {
			t.Fatalf("streamed %v, Query answered %v", streamed, res.GraphIDs)
		}
	}
	// NFV engines must reject AnswerStream.
	g, _ := engineFixture(t)
	nfv, err := psi.NewEngine(g, psi.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer nfv.Close()
	if err := nfv.AnswerStream(context.Background(), q, func(int) bool { return true }); err == nil {
		t.Error("AnswerStream on an NFV engine must fail")
	}
}

func TestEngineOptionValidation(t *testing.T) {
	if _, err := psi.NewEngine(nil, psi.EngineOptions{}); err == nil {
		t.Error("NewEngine(nil) must fail")
	}
	if _, err := psi.NewDatasetEngine(nil, psi.EngineOptions{}); err == nil {
		t.Error("NewDatasetEngine(empty) must fail")
	}
	g := psi.MustNewGraph("g", []psi.Label{0}, nil)
	if _, err := psi.NewEngine(g, psi.EngineOptions{Mode: "warp"}); err == nil {
		t.Error("unknown mode must fail")
	}
	if _, err := psi.NewDatasetEngine([]*psi.Graph{g}, psi.EngineOptions{Index: "btree"}); err == nil {
		t.Error("unknown index must fail")
	}
	if _, err := psi.ParseMode("predict"); err != nil {
		t.Error("ParseMode must accept predict")
	}
}

func TestEngineOwnedPoolAndAccessors(t *testing.T) {
	g, q := engineFixture(t)
	eng, err := psi.NewEngine(g, psi.EngineOptions{Workers: 2, Mode: psi.ModeRace})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Mode() != psi.ModeRace || eng.Graph() != g || eng.Dataset() != nil {
		t.Error("accessors disagree with construction")
	}
	if got := eng.Attempts(); len(got) != 4 { // 2 algorithms × 2 rewritings
		t.Errorf("default portfolio has %d attempts, want 4", len(got))
	}
	if _, ok := eng.CacheStats(); ok {
		t.Error("NFV engine must not report cache stats")
	}
	if _, err := eng.Query(context.Background(), q, 5); err != nil {
		t.Fatal(err)
	}
	eng.Close() // must not panic; queries after Close degrade gracefully
	if _, err := eng.Query(context.Background(), q, 5); err != nil {
		t.Errorf("query after Close should degrade gracefully, got %v", err)
	}
}

// raceFixtureDataset is a small deterministic dataset for index-race tests:
// cheap enough to index three ways under the race detector, varied enough
// that filters disagree between queries.
func raceFixtureDataset() []*psi.Graph {
	return []*psi.Graph{
		psi.MustNewGraph("d0", []psi.Label{0, 1, 2, 0, 1, 2}, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}}),
		psi.MustNewGraph("d1", []psi.Label{0, 1, 2, 1, 0}, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}}),
		psi.MustNewGraph("d2", []psi.Label{2, 2, 1, 1, 0}, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}}),
		psi.MustNewGraph("d3", []psi.Label{1, 0, 0, 0, 1, 2}, [][2]int{{0, 1}, {0, 2}, {0, 3}, {3, 4}, {4, 5}}),
		psi.MustNewGraph("d4", []psi.Label{0, 0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}),
	}
}

func raceFixtureQueries() []*psi.Graph {
	return []*psi.Graph{
		psi.MustNewGraph("q0", []psi.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}}),
		psi.MustNewGraph("q1", []psi.Label{0, 1}, [][2]int{{0, 1}}),
		psi.MustNewGraph("q2", []psi.Label{1, 0, 0}, [][2]int{{0, 1}, {0, 2}}),
		psi.MustNewGraph("q3", []psi.Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}}),
		psi.MustNewGraph("q4", []psi.Label{9, 9}, [][2]int{{0, 1}}),
		psi.MustNewGraph("q5", []psi.Label{0}, nil),
	}
}

// TestDatasetEngineIndexRaceMatchesFixed is the engine-level acceptance
// test for index racing: a portfolio engine racing all three filtering
// indexes must plan the race policy, report per-index attempts with exactly
// one winner, and answer byte-identically to a fixed single-index engine.
func TestDatasetEngineIndexRaceMatchesFixed(t *testing.T) {
	ds := raceFixtureDataset()
	race, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Indexes: []string{"ftv", "grapes", "ggsx"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer race.Close()
	fixed, err := psi.NewDatasetEngine(ds, psi.EngineOptions{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if race.IndexPolicy() != psi.IndexRace {
		t.Fatalf("IndexPolicy = %q, want race", race.IndexPolicy())
	}
	if st := race.IndexStats(); len(st) != 3 {
		t.Fatalf("IndexStats = %+v, want 3 indexes", st)
	}
	for qi, q := range raceFixtureQueries() {
		p, err := race.Plan(q)
		if err != nil {
			t.Fatal(err)
		}
		if p.Kind != psi.PlanFTV || p.IndexPolicy != psi.IndexRace || len(p.Indexes) != 3 {
			t.Fatalf("q%d: plan = kind %v policy %q indexes %v", qi, p.Kind, p.IndexPolicy, p.Indexes)
		}
		got, err := race.Execute(context.Background(), p, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fixed.Query(context.Background(), q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.GraphIDs) != len(want.GraphIDs) {
			t.Fatalf("q%d: race answered %v, fixed %v", qi, got.GraphIDs, want.GraphIDs)
		}
		for i := range want.GraphIDs {
			if got.GraphIDs[i] != want.GraphIDs[i] {
				t.Fatalf("q%d: race answered %v, fixed %v", qi, got.GraphIDs, want.GraphIDs)
			}
		}
		if len(got.IndexAttempts) != 3 {
			t.Fatalf("q%d: IndexAttempts = %+v, want 3", qi, got.IndexAttempts)
		}
		winners := 0
		for _, a := range got.IndexAttempts {
			if a.Winner {
				winners++
				if a.Name != got.Winner {
					t.Errorf("q%d: winner attempt %q but result winner %q", qi, a.Name, got.Winner)
				}
			}
		}
		if winners != 1 {
			t.Errorf("q%d: %d winning attempts, want exactly 1 (%+v)", qi, winners, got.IndexAttempts)
		}
	}
}

// TestDatasetEngineIndexRaceAnswerStream checks the streaming path of a
// racing dataset engine agrees with the collecting path.
func TestDatasetEngineIndexRaceAnswerStream(t *testing.T) {
	ds := raceFixtureDataset()
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Indexes: []string{"grapes", "ggsx"}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for qi, q := range raceFixtureQueries() {
		res, err := eng.Query(context.Background(), q, 0)
		if err != nil {
			t.Fatal(err)
		}
		var streamed []int
		if err := eng.AnswerStream(context.Background(), q, func(id int) bool {
			streamed = append(streamed, id)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(streamed) != len(res.GraphIDs) {
			t.Fatalf("q%d: streamed %v, Query answered %v", qi, streamed, res.GraphIDs)
		}
		for i := range streamed {
			if streamed[i] != res.GraphIDs[i] {
				t.Fatalf("q%d: streamed %v, Query answered %v", qi, streamed, res.GraphIDs)
			}
		}
	}
}

// TestDatasetEngineIndexRaceReleasesGoroutines is the engine-level
// goroutine-leak regression for index racing: repeated raced queries whose
// losing indexes are cancelled must not accrete goroutines.
func TestDatasetEngineIndexRaceReleasesGoroutines(t *testing.T) {
	ds := raceFixtureDataset()
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Indexes: []string{"ftv", "grapes", "ggsx"}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	queries := raceFixtureQueries()
	// Warm up so pools and per-attempt infrastructure exist first.
	for _, q := range queries {
		if _, err := eng.Query(context.Background(), q, 0); err != nil {
			t.Fatal(err)
		}
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 30; i++ {
		for _, q := range queries {
			if _, err := eng.Query(context.Background(), q, 0); err != nil {
				t.Fatal(err)
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+4 {
		t.Errorf("goroutines grew from %d to %d over raced queries: leak", before, after)
	}
}

// TestDatasetEngineIndexPolicyOptions covers policy selection and
// validation.
func TestDatasetEngineIndexPolicyOptions(t *testing.T) {
	ds := raceFixtureDataset()
	// A single index degrades to the fixed policy even when race is asked.
	single, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Index: "ftv", IndexPolicy: psi.IndexRace})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if single.IndexPolicy() != psi.IndexFixed {
		t.Errorf("single-index policy = %q, want fixed", single.IndexPolicy())
	}
	// Fixed policy over a portfolio consults only the first index but
	// still answers correctly (and keeps the cache).
	fixed, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Indexes: []string{"ggsx", "grapes"}, IndexPolicy: psi.IndexFixed,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fixed.Close()
	if fixed.IndexPolicy() != psi.IndexFixed {
		t.Errorf("fixed policy = %q", fixed.IndexPolicy())
	}
	if _, ok := fixed.CacheStats(); !ok {
		t.Error("fixed-policy engine should keep the result cache")
	}
	race, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Indexes: []string{"ftv", "ggsx"}})
	if err != nil {
		t.Fatal(err)
	}
	defer race.Close()
	if _, ok := race.CacheStats(); ok {
		t.Error("racing engine must not report cache stats (cache is per-index)")
	}
	if _, err := psi.NewDatasetEngine(ds, psi.EngineOptions{IndexPolicy: "tournament"}); err == nil {
		t.Error("unknown index policy must fail")
	}
	if _, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Indexes: []string{"ftv", "btree"}}); err == nil {
		t.Error("unknown index kind in portfolio must fail")
	}
	if kinds, err := psi.ParseIndexSpec("race"); err != nil || len(kinds) < 3 {
		t.Errorf("ParseIndexSpec(race) = %v, %v", kinds, err)
	}
	if kinds, err := psi.ParseIndexSpec("grapes,ggsx"); err != nil || len(kinds) != 2 {
		t.Errorf("ParseIndexSpec(grapes,ggsx) = %v, %v", kinds, err)
	}
}
