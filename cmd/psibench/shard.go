package main

// Shard sweep mode: measures the sharded dataset engine across partition
// counts K=1/2/4/8 on both dataset shapes (PPI-like and GraphGen-style
// synthetic), asserting along the way that every K produces byte-identical
// answers to the monolithic K=1 engine — the sharding parity guarantee,
// checked here end to end through psi.Engine rather than at the index layer.
// The -json output is the committed BENCH_shard.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"slices"
	"time"

	psi "github.com/psi-graph/psi"
)

// shardCell is one measured (shape, K) configuration.
type shardCell struct {
	Shape        string           `json:"shape"`
	Shards       int              `json:"shards"`
	BuildNS      time.Duration    `json:"build_ns"`
	QueryTotalNS time.Duration    `json:"query_total_ns"`
	Answers      int              `json:"answers"`
	Parity       bool             `json:"parity_with_k1"`
	ShardBalance []int64          `json:"shard_balance,omitempty"`
	Wins         map[string]int64 `json:"wins"`
	Indexes      []psi.IndexStats `json:"indexes"`
}

// shardReport is the full -shardsweep output document.
type shardReport struct {
	Bench   string      `json:"bench"`
	Scale   string      `json:"scale"`
	Seed    int64       `json:"seed"`
	Queries int         `json:"queries"`
	Index   string      `json:"index_spec"`
	CPUs    int         `json:"cpus"`
	Cells   []shardCell `json:"cells"`
}

// shardSweepKs are the measured partition counts.
var shardSweepKs = []int{1, 2, 4, 8}

// runShardSweep drives the sweep and prints text or JSON.
func runShardSweep(scale psi.Scale, scaleName, indexSpec string, seed int64, queries int, cap time.Duration, asJSON bool) error {
	if seed == 0 {
		seed = 1
	}
	if queries <= 0 {
		queries = 8
	}
	kinds, err := psi.ParseIndexSpec(indexSpec)
	if err != nil {
		return err
	}
	info := os.Stdout
	if asJSON {
		info = os.Stderr
	}
	report := shardReport{
		Bench: "shard", Scale: scaleName, Seed: seed,
		Queries: queries, Index: indexSpec, CPUs: runtime.NumCPU(),
	}
	shapes := []struct {
		name string
		ds   []*psi.Graph
	}{
		{"ppi", psi.GeneratePPI(scale, seed)},
		{"synthetic", psi.GenerateSynthetic(scale, seed)},
	}
	for _, shape := range shapes {
		queryGraphs := make([]*psi.Graph, queries)
		for i := range queryGraphs {
			queryGraphs[i] = psi.ExtractQuery(shape.ds[i%len(shape.ds)], 4+(i%2)*4, seed+int64(i))
		}
		var baseline [][]int
		for _, k := range shardSweepKs {
			buildStart := time.Now()
			eng, err := psi.NewDatasetEngine(shape.ds, psi.EngineOptions{
				Indexes: kinds,
				Shards:  k,
				Timeout: cap,
			})
			if err != nil {
				return fmt.Errorf("%s K=%d: %w", shape.name, k, err)
			}
			cell := shardCell{Shape: shape.name, Shards: k, BuildNS: time.Since(buildStart), Parity: true}
			answers := make([][]int, len(queryGraphs))
			for i, q := range queryGraphs {
				res, err := eng.Query(context.Background(), q, 0)
				if err != nil {
					eng.Close()
					return fmt.Errorf("%s K=%d q%d: %w", shape.name, k, i, err)
				}
				if res.Killed {
					// A killed query surfaces an empty answer; comparing it
					// would either corrupt the K=1 baseline or falsely
					// accuse the sharding merge of divergence.
					eng.Close()
					return fmt.Errorf("%s K=%d q%d: killed under the %v cap — the parity sweep needs completed queries; raise -cap", shape.name, k, i, cap)
				}
				cell.QueryTotalNS += res.Elapsed
				cell.Answers += len(res.GraphIDs)
				answers[i] = res.GraphIDs
			}
			if baseline == nil {
				baseline = answers
			} else {
				for i := range answers {
					if !slices.Equal(answers[i], baseline[i]) {
						cell.Parity = false
					}
				}
			}
			cell.ShardBalance = eng.ShardBalance()
			cell.Wins = eng.WinCounts()
			cell.Indexes = eng.IndexStats()
			eng.Close()
			if !cell.Parity {
				return fmt.Errorf("%s K=%d: answers diverge from K=1 — sharding parity broken", shape.name, k)
			}
			report.Cells = append(report.Cells, cell)
			fmt.Fprintf(info, "%-10s K=%d build=%-10v queries=%-10v answers=%-4d balance=%v\n",
				shape.name, k, cell.BuildNS.Round(time.Microsecond),
				cell.QueryTotalNS.Round(time.Microsecond), cell.Answers, cell.ShardBalance)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}
