package main

// Coldstart mode: benchmarks the persistent-snapshot path end to end and
// measures what loading a saved snapshot buys over the alternative — running
// every index build again from the raw dataset at process start.
//
// The run builds a dataset engine from scratch (timed: that is the cost a
// snapshot avoids), answers a query set, saves a snapshot, then cold-starts
// a second engine from the file alone and re-answers the same queries.
// The non-negotiable invariant is byte-identical answers; the performance
// claim is that the load beats the rebuild by at least coldstartMinSpeedup.
// The -json output is the committed BENCH_snapshot.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"time"

	psi "github.com/psi-graph/psi"
)

// coldstartMinSpeedup is the floor on build_ns / load_ns: deserializing the
// prebuilt arrays must beat re-running feature extraction by at least this
// factor, or the snapshot machinery is not paying for itself.
const coldstartMinSpeedup = 10

// coldstartReport is the full -coldstart output document.
type coldstartReport struct {
	Bench         string        `json:"bench"`
	Scale         string        `json:"scale"`
	Seed          int64         `json:"seed"`
	Index         string        `json:"index_spec"`
	Shards        int           `json:"shards"`
	CPUs          int           `json:"cpus"`
	Graphs        int           `json:"graphs"`
	SnapshotBytes int64         `json:"snapshot_bytes"`
	BuildNS       time.Duration `json:"build_ns"`
	SaveNS        time.Duration `json:"save_ns"`
	LoadNS        time.Duration `json:"load_ns"`
	SpeedupX      float64       `json:"speedup_x"`
	QueriesRun    int           `json:"queries_run"`
	Answers       int           `json:"answers"`
	Parity        bool          `json:"parity_with_build"`
}

// runColdstartBench drives the build → save → load → parity cycle and
// prints text or JSON.
func runColdstartBench(scale psi.Scale, scaleName, indexSpec string, seed int64, queries, shards int, cap time.Duration, snapPath string, asJSON bool) error {
	if seed == 0 {
		seed = 1
	}
	if queries <= 0 {
		queries = 12
	}
	kinds, err := psi.ParseIndexSpec(indexSpec)
	if err != nil {
		return err
	}
	info := os.Stdout
	if asJSON {
		info = os.Stderr
	}
	if snapPath == "" {
		dir, err := os.MkdirTemp("", "psibench-coldstart")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		snapPath = filepath.Join(dir, "coldstart.psisnap")
	}

	// Concatenating generator runs at distinct seeds grows the dataset so
	// the index build visibly dwarfs a deserialization pass.
	const genRuns = 6
	var ds []*psi.Graph
	for i := int64(0); i < genRuns; i++ {
		ds = append(ds, psi.GeneratePPI(scale, seed+i)...)
	}

	// The build every later boot would repeat without a snapshot.
	buildStart := time.Now()
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Indexes: kinds,
		Shards:  shards,
		Timeout: cap,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	report := coldstartReport{
		Bench: "snapshot", Scale: scaleName, Seed: seed, Index: indexSpec,
		Shards: eng.Shards(), CPUs: runtime.NumCPU(),
		Graphs: len(ds), BuildNS: time.Since(buildStart),
		Parity: true,
	}
	fmt.Fprintf(info, "coldstart: %d graphs, K=%d, indexes built in %v\n",
		len(ds), eng.Shards(), report.BuildNS.Round(time.Millisecond))

	ctx := context.Background()
	queryGraphs := make([]*psi.Graph, queries)
	baseline := make([][]int, queries)
	for i := range queryGraphs {
		queryGraphs[i] = psi.ExtractQuery(ds[i%len(ds)], 4+(i%2)*4, seed+int64(i))
		res, err := eng.Query(ctx, queryGraphs[i], 0)
		if err != nil {
			return fmt.Errorf("baseline q%d: %w", i, err)
		}
		baseline[i] = res.GraphIDs
		report.Answers += len(res.GraphIDs)
	}
	report.QueriesRun = queries

	saveStart := time.Now()
	if err := eng.SaveSnapshot(snapPath); err != nil {
		return fmt.Errorf("save: %w", err)
	}
	report.SaveNS = time.Since(saveStart)
	fi, err := os.Stat(snapPath)
	if err != nil {
		return err
	}
	report.SnapshotBytes = fi.Size()
	fmt.Fprintf(info, "coldstart: snapshot saved in %v (%d bytes)\n",
		report.SaveNS.Round(time.Millisecond), report.SnapshotBytes)

	// The cold start a snapshot buys: no dataset, no feature extraction —
	// the file alone reconstructs the engine.
	loadStart := time.Now()
	cold, err := psi.NewDatasetEngine(nil, psi.EngineOptions{
		Snapshot: snapPath,
		Timeout:  cap,
	})
	if err != nil {
		return fmt.Errorf("load: %w", err)
	}
	defer cold.Close()
	report.LoadNS = time.Since(loadStart)

	for i, q := range queryGraphs {
		res, err := cold.Query(ctx, q, 0)
		if err != nil {
			return fmt.Errorf("parity q%d (cold): %w", i, err)
		}
		if !slices.Equal(res.GraphIDs, baseline[i]) {
			report.Parity = false
			return fmt.Errorf("parity q%d: cold engine answered %v, fresh build %v", i, res.GraphIDs, baseline[i])
		}
	}
	report.SpeedupX = float64(report.BuildNS) / float64(report.LoadNS)
	fmt.Fprintf(info, "coldstart: loaded in %v — %.1fx faster than the build (parity holds over %d queries)\n",
		report.LoadNS.Round(time.Millisecond), report.SpeedupX, queries)
	if report.SpeedupX < coldstartMinSpeedup {
		return fmt.Errorf("cold-start speedup %.1fx under the %dx floor — the snapshot load is not beating a rebuild", report.SpeedupX, coldstartMinSpeedup)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}
