package main

// Serve mode: a closed-loop load generator over an in-process serving
// stack (psi.Engine behind internal/server behind a real HTTP listener),
// measuring what a client of cmd/psiserve would see — throughput and
// first-result latency under concurrency, with the shared result cache on
// and off. The -json output is the committed BENCH_serve.json.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	psi "github.com/psi-graph/psi"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/server"
)

// serveCell is one measured (clients, cache) configuration.
type serveCell struct {
	Clients          int     `json:"clients"`
	Cache            bool    `json:"cache"`
	Requests         int     `json:"requests"`
	Errors           int     `json:"errors"`
	ThroughputQPS    float64 `json:"throughput_qps"`
	FirstResultP50US int64   `json:"first_result_p50_us"`
	FirstResultP99US int64   `json:"first_result_p99_us"`
	TotalP50US       int64   `json:"total_p50_us"`
	TotalP99US       int64   `json:"total_p99_us"`
	CacheHits        int64   `json:"cache_hits"`
}

// serveReport is the full -serve output document.
type serveReport struct {
	Bench         string           `json:"bench"`
	Scale         string           `json:"scale"`
	Seed          int64            `json:"seed"`
	DatasetGraphs int              `json:"dataset_graphs"`
	IndexSpec     string           `json:"index_spec"`
	IndexPolicy   string           `json:"index_policy"`
	Queries       int              `json:"distinct_queries"`
	CellMillis    int64            `json:"duration_per_cell_ms"`
	CPUs          int              `json:"cpus"`
	Cells         []serveCell      `json:"cells"`
	Indexes       []psi.IndexStats `json:"indexes"`
}

// runServeBench drives the closed loop and prints text or JSON.
func runServeBench(scale psi.Scale, scaleName, indexSpec string, seed int64, queries, shards int, cellDur time.Duration, asJSON bool) error {
	if seed == 0 {
		seed = 1
	}
	if queries <= 0 {
		queries = 12
	}
	if cellDur <= 0 {
		cellDur = 1500 * time.Millisecond
	}
	kinds, err := psi.ParseIndexSpec(indexSpec)
	if err != nil {
		return err
	}
	ds := psi.GeneratePPI(scale, seed)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Indexes: kinds, Shards: shards, CacheSize: -1})
	if err != nil {
		return err
	}
	defer eng.Close()

	info := os.Stdout
	if asJSON {
		info = os.Stderr
	}
	fmt.Fprintf(info, "serve bench: %d graphs, policy=%s, %d distinct queries, %v per cell\n",
		len(ds), eng.IndexPolicy(), queries, cellDur)

	// Pre-serialize the query pool: the load generator must not pay
	// extraction or serialization inside the measured loop.
	bodies := make([][]byte, queries)
	for i := range bodies {
		q := psi.ExtractQuery(ds[i%len(ds)], 4+(i%2)*4, seed+int64(i))
		var buf bytes.Buffer
		if err := graph.WriteGraph(&buf, q); err != nil {
			return err
		}
		bodies[i] = buf.Bytes()
	}

	report := serveReport{
		Bench:         "serve",
		Scale:         scaleName,
		Seed:          seed,
		DatasetGraphs: len(ds),
		IndexSpec:     indexSpec,
		IndexPolicy:   eng.IndexPolicy(),
		Queries:       queries,
		CellMillis:    cellDur.Milliseconds(),
		CPUs:          runtime.NumCPU(),
		Indexes:       eng.IndexStats(),
	}
	for _, cache := range []bool{false, true} {
		for _, clients := range []int{1, 4, 16} {
			cell, err := runServeCell(eng, bodies, clients, cache, cellDur)
			if err != nil {
				return err
			}
			report.Cells = append(report.Cells, cell)
			fmt.Fprintf(info, "clients=%-2d cache=%-5v %6.1f q/s  first p50=%-8v p99=%-8v  total p50=%-8v p99=%v\n",
				cell.Clients, cell.Cache, cell.ThroughputQPS,
				time.Duration(cell.FirstResultP50US)*time.Microsecond,
				time.Duration(cell.FirstResultP99US)*time.Microsecond,
				time.Duration(cell.TotalP50US)*time.Microsecond,
				time.Duration(cell.TotalP99US)*time.Microsecond)
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}

// runServeCell measures one configuration: clients closed-loop goroutines
// against a fresh Server (fresh cache) over the shared engine.
func runServeCell(eng *psi.Engine, bodies [][]byte, clients int, cache bool, d time.Duration) (serveCell, error) {
	srv := server.New(eng, server.Options{
		MaxInFlight: clients + 1, // closed loop: never rejects, still bounded
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	url := ts.URL + "/query?stream=1&cache=0"
	if cache {
		url = ts.URL + "/query?stream=1&cache=1"
	}

	type sample struct{ first, total time.Duration }
	var (
		mu      sync.Mutex
		samples []sample
		errs    int
	)
	loopStart := time.Now()
	stop := loopStart.Add(d)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for i := c; time.Now().Before(stop); i++ {
				body := bodies[i%len(bodies)]
				start := time.Now()
				resp, err := client.Post(url, "text/plain", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					errs++
					mu.Unlock()
					continue
				}
				br := bufio.NewReader(resp.Body)
				_, ferr := br.ReadString('\n')
				first := time.Since(start)
				_, derr := io.Copy(io.Discard, br)
				total := time.Since(start)
				resp.Body.Close()
				mu.Lock()
				if ferr != nil || derr != nil || resp.StatusCode != http.StatusOK {
					errs++
				} else {
					samples = append(samples, sample{first, total})
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	// Requests in flight at the stop deadline run to completion and count;
	// divide by the measured span, not the nominal one, so they do not
	// inflate the reported throughput.
	span := time.Since(loopStart)

	cell := serveCell{Clients: clients, Cache: cache, Requests: len(samples), Errors: errs}
	if st := srv.Stats(); st.ResultCache != nil {
		cell.CacheHits = st.ResultCache.Hits
	}
	if len(samples) == 0 {
		return cell, fmt.Errorf("serve cell clients=%d cache=%v completed no requests", clients, cache)
	}
	firsts := make([]time.Duration, len(samples))
	totals := make([]time.Duration, len(samples))
	for i, s := range samples {
		firsts[i], totals[i] = s.first, s.total
	}
	cell.ThroughputQPS = float64(len(samples)) / span.Seconds()
	cell.FirstResultP50US = pct(firsts, 50).Microseconds()
	cell.FirstResultP99US = pct(firsts, 99).Microseconds()
	cell.TotalP50US = pct(totals, 50).Microseconds()
	cell.TotalP99US = pct(totals, 99).Microseconds()
	return cell, nil
}

// pct returns the p-th percentile (nearest-rank) of ds.
func pct(ds []time.Duration, p int) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (len(sorted)*p + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
