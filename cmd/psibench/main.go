// Command psibench regenerates the paper's tables and figures on the
// simulated datasets.
//
// Usage:
//
//	psibench [-scale tiny|small|medium|paper] [-exp fig10,table3]
//	         [-cap 300ms] [-seed 1] [-queries 20] [-list]
//
// With no -exp flag every registered experiment runs, in order. The -cap,
// -seed and -queries flags override the scale preset. Experiment IDs match
// the paper's artifact numbers (fig1..fig15, table1..table10); see
// DESIGN.md for the index.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/psi-graph/psi/internal/gen"
	"github.com/psi-graph/psi/internal/harness"
)

func main() {
	var (
		scaleFlag   = flag.String("scale", "tiny", "dataset scale: tiny|small|medium|paper")
		expFlag     = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		capFlag     = flag.Duration("cap", 0, "override the per-query kill cap")
		seedFlag    = flag.Int64("seed", 0, "override the experiment seed")
		queriesFlag = flag.Int("queries", 0, "override queries per size")
		listFlag    = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, exp := range harness.All() {
			fmt.Printf("%-8s %s\n", exp.ID, exp.Title)
		}
		return
	}

	scale, err := gen.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	cfg := harness.DefaultConfig(scale)
	if *capFlag > 0 {
		cfg.Cap = *capFlag
	}
	if *seedFlag != 0 {
		cfg.Seed = *seedFlag
	}
	if *queriesFlag > 0 {
		cfg.QueriesPerSize = *queriesFlag
	}

	var ids []string
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	start := time.Now()
	if err := harness.Run(cfg, os.Stdout, ids...); err != nil {
		fatal(err)
	}
	fmt.Printf("total experiment time: %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psibench:", err)
	os.Exit(1)
}
