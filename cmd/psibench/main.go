// Command psibench regenerates the paper's tables and figures on the
// simulated datasets, and benchmarks the serving-shaped psi.Engine facade —
// including the filtering-index race — on generated workloads.
//
// Experiment mode (default) replays the paper's artifacts:
//
//	psibench [-scale tiny|small|medium|paper] [-exp fig10,table3]
//	         [-cap 300ms] [-seed 1] [-queries 20] [-list]
//
// With no -exp flag every registered experiment runs, in order. The -cap,
// -seed and -queries flags override the scale preset. Experiment IDs match
// the paper's artifact numbers (fig1..fig15, table1..table10); see
// DESIGN.md for the index.
//
// Engine mode (-engine) drives containment queries through psi.Engine the
// way a server would — plan, execute, per-query kill cap — over a generated
// PPI-like dataset, with the filtering-index portfolio selected by -index:
//
//	psibench -engine [-index ftv|grapes|ggsx|race] [-scale tiny] [-seed 1]
//	         [-queries 20] [-cap 300ms] [-json]
//
// -index race (the default) builds every registered index and races them
// per query: the first index to emit a verified candidate wins and the
// losers are cancelled. The summary reports per-index build statistics and
// race win counts. -shards=K partitions the dataset round-robin and builds
// every index as K per-shard sub-indexes behind an ascending-ID ordered
// merge; answers are byte-identical at any K.
//
// Shard-sweep mode (-shardsweep) measures the sharded engine at K=1/2/4/8
// on both dataset shapes (PPI-like and synthetic), asserting that every K
// answers byte-identically to the monolithic K=1 engine; its -json output
// is the committed BENCH_shard.json:
//
//	psibench -shardsweep [-index ftv|grapes|ggsx|race] [-scale tiny]
//	         [-seed 1] [-queries 8] [-json]
//
// Policy-sweep mode (-policysweep) compares the serving stack under three
// planning policies — always-race, solo-best (fixed on the calibration
// winner) and the learned auto policy — on uniform and skewed query mixes
// at 1/4/16 closed-loop clients, asserting answer parity before measuring
// throughput, first-result latency, attempts-started-per-answer, regret vs
// always-race, and in-flight coalescing; its -json output is the committed
// BENCH_policy.json:
//
//	psibench -policysweep [-index race] [-scale tiny] [-seed 1]
//	         [-queries 12] [-dur 1500ms] [-json]
//
// Churn mode (-churn) benchmarks the mutable dataset engine under a mixed
// ingest/delete/query load: it grows a base dataset from an ingest pool,
// tombstones older graphs along the way, answers queries between mutations,
// then asserts the churned engine's answers are byte-identical to a
// from-scratch rebuild of the final dataset and that applying one mutation
// incrementally beats that rebuild by at least 10x; its -json output is the
// committed BENCH_mutate.json:
//
//	psibench -churn [-index ftv] [-shards 8] [-scale tiny] [-seed 1]
//	         [-queries 6] [-json]
//
// Coldstart mode (-coldstart) benchmarks the persistent-snapshot path: it
// builds a dataset engine from scratch, saves a snapshot, cold-starts a
// second engine from the file alone, asserts the answers are byte-identical
// and that the load beats the build by at least 10x; its -json output is
// the committed BENCH_snapshot.json:
//
//	psibench -coldstart [-index race] [-shards 4] [-scale tiny] [-seed 1]
//	         [-queries 12] [-snapfile s.psisnap] [-json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	psi "github.com/psi-graph/psi"
	"github.com/psi-graph/psi/internal/gen"
	"github.com/psi-graph/psi/internal/harness"
)

func main() {
	var (
		scaleFlag   = flag.String("scale", "tiny", "dataset scale: tiny|small|medium|paper")
		expFlag     = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		capFlag     = flag.Duration("cap", 0, "override the per-query kill cap")
		seedFlag    = flag.Int64("seed", 0, "override the experiment seed")
		queriesFlag = flag.Int("queries", 0, "override queries per size")
		listFlag    = flag.Bool("list", false, "list experiments and exit")
		engineFlag  = flag.Bool("engine", false, "benchmark the psi.Engine facade instead of replaying experiments")
		serveFlag   = flag.Bool("serve", false, "benchmark the HTTP serving stack (internal/server) with a closed-loop load generator")
		durFlag     = flag.Duration("dur", 1500*time.Millisecond, "serve mode: measured duration per (clients, cache) cell")
		indexFlag   = flag.String("index", "race", "engine/serve mode: filtering indexes, ftv|grapes|ggsx, a comma list, or race (all)")
		shardsFlag  = flag.Int("shards", 1, "engine/serve mode: dataset shards per index (round-robin; answers identical at any K)")
		sweepFlag   = flag.Bool("shardsweep", false, "sweep shard counts K=1/2/4/8 over both dataset shapes, asserting answer parity with K=1")
		policyFlag  = flag.Bool("policysweep", false, "sweep planning policies (race, solo-best, auto) over uniform and skewed serving mixes, asserting answer parity")
		churnFlag   = flag.Bool("churn", false, "benchmark the mutable engine under mixed ingest/delete/query load, asserting parity with a from-scratch rebuild")
		coldFlag    = flag.Bool("coldstart", false, "benchmark snapshot save/load against a from-scratch build, asserting answer parity")
		snapFlag    = flag.String("snapfile", "", "coldstart mode: snapshot file path (default: a temp file, removed afterwards)")
		jsonFlag    = flag.Bool("json", false, "engine/serve/shardsweep mode: emit machine-readable JSON results")
	)
	flag.Parse()

	if *listFlag {
		for _, exp := range harness.All() {
			fmt.Printf("%-8s %s\n", exp.ID, exp.Title)
		}
		return
	}

	scale, err := gen.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}

	if *coldFlag {
		if err := runColdstartBench(scale, *scaleFlag, *indexFlag, *seedFlag, *queriesFlag, *shardsFlag, *capFlag, *snapFlag, *jsonFlag); err != nil {
			fatal(err)
		}
		return
	}

	if *churnFlag {
		if err := runChurnBench(scale, *scaleFlag, *indexFlag, *seedFlag, *queriesFlag, *shardsFlag, *capFlag, *jsonFlag); err != nil {
			fatal(err)
		}
		return
	}

	if *policyFlag {
		if err := runPolicySweep(scale, *scaleFlag, *indexFlag, *seedFlag, *queriesFlag, *durFlag, *jsonFlag); err != nil {
			fatal(err)
		}
		return
	}

	if *sweepFlag {
		if err := runShardSweep(scale, *scaleFlag, *indexFlag, *seedFlag, *queriesFlag, *capFlag, *jsonFlag); err != nil {
			fatal(err)
		}
		return
	}

	if *serveFlag {
		if err := runServeBench(scale, *scaleFlag, *indexFlag, *seedFlag, *queriesFlag, *shardsFlag, *durFlag, *jsonFlag); err != nil {
			fatal(err)
		}
		return
	}

	if *engineFlag {
		if err := runEngineBench(scale, *indexFlag, *seedFlag, *queriesFlag, *shardsFlag, *capFlag, *jsonFlag); err != nil {
			fatal(err)
		}
		return
	}

	cfg := harness.DefaultConfig(scale)
	if *capFlag > 0 {
		cfg.Cap = *capFlag
	}
	if *seedFlag != 0 {
		cfg.Seed = *seedFlag
	}
	if *queriesFlag > 0 {
		cfg.QueriesPerSize = *queriesFlag
	}

	var ids []string
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	start := time.Now()
	if err := harness.Run(cfg, os.Stdout, ids...); err != nil {
		fatal(err)
	}
	fmt.Printf("total experiment time: %v\n", time.Since(start).Round(time.Millisecond))
}

// runEngineBench drives dataset containment queries through the psi.Engine
// facade — the post-PR-2 serving path — rather than the direct index APIs.
func runEngineBench(scale psi.Scale, indexSpec string, seed int64, queries, shards int, cap time.Duration, asJSON bool) error {
	if seed == 0 {
		seed = 1
	}
	if queries <= 0 {
		queries = 20
	}
	kinds, err := psi.ParseIndexSpec(indexSpec)
	if err != nil {
		return err
	}
	ds := psi.GeneratePPI(scale, seed)
	buildStart := time.Now()
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Indexes: kinds,
		Shards:  shards,
		Timeout: cap,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	buildTime := time.Since(buildStart)

	// With -json, stdout carries exclusively one JSON object per query;
	// everything informational goes to stderr so the stream stays pipeable.
	info := os.Stdout
	if asJSON {
		info = os.Stderr
	}
	fmt.Fprintf(info, "engine: %d graphs, policy=%s, indexes built in %v\n",
		len(ds), eng.IndexPolicy(), buildTime.Round(time.Millisecond))
	for _, st := range eng.IndexStats() {
		fmt.Fprintf(info, "  %-10s kind=%-7s features=%-7d nodes=%-7d build=%v\n",
			st.Name, st.Kind, st.Features, st.Nodes, st.BuildTime.Round(time.Microsecond))
	}

	type record struct {
		Query    int                `json:"query"`
		Edges    int                `json:"edges"`
		Answers  int                `json:"answers"`
		Winner   string             `json:"winner"`
		Elapsed  time.Duration      `json:"elapsed_ns"`
		Killed   bool               `json:"killed"`
		Attempts []psi.IndexAttempt `json:"attempts,omitempty"`
	}
	wins := map[string]int{}
	var total time.Duration
	enc := json.NewEncoder(os.Stdout)
	for i := 0; i < queries; i++ {
		src := ds[i%len(ds)]
		q := psi.ExtractQuery(src, 4+(i%2)*4, seed+int64(i))
		res, err := eng.Query(context.Background(), q, 0)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		total += res.Elapsed
		winner := res.Winner
		for _, a := range res.IndexAttempts {
			if a.Winner {
				winner = a.Name
			}
		}
		wins[winner]++
		rec := record{
			Query: i, Edges: q.M(), Answers: len(res.GraphIDs),
			Winner: winner, Elapsed: res.Elapsed, Killed: res.Killed,
			Attempts: res.IndexAttempts,
		}
		if asJSON {
			if err := enc.Encode(rec); err != nil {
				return err
			}
		} else {
			fmt.Printf("q%-3d edges=%-2d answers=%-3d winner=%-12s %8v killed=%v\n",
				rec.Query, rec.Edges, rec.Answers, rec.Winner,
				rec.Elapsed.Round(time.Microsecond), rec.Killed)
		}
	}
	fmt.Fprintf(info, "race wins by index:")
	for name, n := range wins {
		fmt.Fprintf(info, " %s=%d", name, n)
	}
	fmt.Fprintf(info, "\ntotal query time: %v (%d queries)\n", total.Round(time.Millisecond), queries)
	if asJSON {
		// A trailing machine-readable summary record, so bench files are
		// generated end to end: per-query records, then one aggregate with
		// build provenance and the engine's operational counters.
		summary := struct {
			Summary        bool               `json:"summary"`
			Queries        int                `json:"queries"`
			TotalElapsedNS time.Duration      `json:"total_elapsed_ns"`
			BuildNS        time.Duration      `json:"build_ns"`
			Wins           map[string]int     `json:"wins"`
			Indexes        []psi.IndexStats   `json:"indexes"`
			Counters       psi.EngineCounters `json:"counters"`
		}{
			Summary: true, Queries: queries, TotalElapsedNS: total,
			BuildNS: buildTime, Wins: wins,
			Indexes: eng.IndexStats(), Counters: eng.Counters(),
		}
		if err := enc.Encode(summary); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psibench:", err)
	os.Exit(1)
}
