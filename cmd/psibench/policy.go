package main

// Policy-sweep mode: measures what the traffic-aware auto policy buys over
// the paper's always-race baseline at the serving layer. Three engines over
// the same dataset — always-race, solo-best (fixed on the index that wins
// the calibration pass), and auto (learned solo with race escalation) — are
// each driven through the HTTP stack by a closed-loop generator under a
// uniform and a skewed query mix. Before anything is measured, every
// distinct query's auto and fixed answers are asserted identical to the
// race engine's (the calibration pass doubles as the bandit's warmup).
// The -json output is the committed BENCH_policy.json.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sync"
	"time"

	psi "github.com/psi-graph/psi"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/server"
)

// policyCell is one measured (policy, mix, clients) configuration.
type policyCell struct {
	Policy            string  `json:"policy"`
	Mix               string  `json:"mix"`
	Clients           int     `json:"clients"`
	Requests          int     `json:"requests"`
	Errors            int     `json:"errors"`
	ThroughputQPS     float64 `json:"throughput_qps"`
	FirstResultP50US  int64   `json:"first_result_p50_us"`
	FirstResultP99US  int64   `json:"first_result_p99_us"`
	AttemptsPerAnswer float64 `json:"attempts_per_answer"`
	Coalesced         int64   `json:"coalesced"`
	PolicySolo        int64   `json:"policy_solo"`
	PolicyRaces       int64   `json:"policy_races"`
	// RegretP99VsRace is the relative p99 first-result latency cost of this
	// policy against the always-race cell at the same (mix, clients):
	// (p99 - p99_race) / p99_race. Negative means faster than the race.
	RegretP99VsRace float64 `json:"regret_p99_vs_race"`
	// AttemptsVsRace is this cell's attempts-per-answer divided by the
	// always-race cell's: the fraction of the race's work the policy pays.
	AttemptsVsRace float64 `json:"attempts_vs_race"`
}

// policyReport is the full -policysweep output document.
type policyReport struct {
	Bench         string              `json:"bench"`
	Scale         string              `json:"scale"`
	Seed          int64               `json:"seed"`
	DatasetGraphs int                 `json:"dataset_graphs"`
	IndexSpec     string              `json:"index_spec"`
	SoloBest      string              `json:"solo_best_index"`
	Queries       int                 `json:"distinct_queries"`
	ParityChecked int                 `json:"parity_checked"`
	CellMillis    int64               `json:"duration_per_cell_ms"`
	CPUs          int                 `json:"cpus"`
	Cells         []policyCell        `json:"cells"`
	AutoPolicy    *psi.PolicySnapshot `json:"auto_policy,omitempty"`
}

// mixIndex maps a client's i-th request onto a query-pool slot. The skewed
// mix sends 80% of the traffic to two hot queries — the repeat-heavy shape
// coalescing and the learned solo are built for; the uniform mix walks the
// whole pool round-robin.
func mixIndex(mix string, c, i, pool int) int {
	if mix != "skewed" || pool < 3 {
		return (c + i) % pool
	}
	if i%5 < 4 {
		return i % 2 // hot pair
	}
	return 2 + (c+i)%(pool-2)
}

// runPolicySweep builds the three engines, asserts answer parity, then
// measures every (policy, mix, clients) cell.
func runPolicySweep(scale psi.Scale, scaleName, indexSpec string, seed int64, queries int, cellDur time.Duration, asJSON bool) error {
	if seed == 0 {
		seed = 1
	}
	if queries <= 0 {
		queries = 12
	}
	if cellDur <= 0 {
		cellDur = 1500 * time.Millisecond
	}
	kinds, err := psi.ParseIndexSpec(indexSpec)
	if err != nil {
		return err
	}
	if len(kinds) < 2 {
		return fmt.Errorf("policy sweep needs at least 2 indexes to race, got %v", kinds)
	}
	info := os.Stdout
	if asJSON {
		info = os.Stderr
	}

	ds := psi.GeneratePPI(scale, seed)
	race, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Indexes: kinds, IndexPolicy: psi.IndexRace, CacheSize: -1})
	if err != nil {
		return err
	}
	defer race.Close()
	auto, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Indexes: kinds, IndexPolicy: psi.IndexAuto, CacheSize: -1})
	if err != nil {
		return err
	}
	defer auto.Close()

	// Query pool, pre-serialized for the load loop.
	queryGraphs := make([]*psi.Graph, queries)
	bodies := make([][]byte, queries)
	for i := range bodies {
		queryGraphs[i] = psi.ExtractQuery(ds[i%len(ds)], 4+(i%2)*4, seed+int64(i))
		var buf bytes.Buffer
		if err := graph.WriteGraph(&buf, queryGraphs[i]); err != nil {
			return err
		}
		bodies[i] = buf.Bytes()
	}

	// Calibration: every query answered by the race engine (its per-index
	// wins elect the solo-best index) and, repeatedly, by the auto engine —
	// parity is asserted on every run, and the repeats are the bandit's
	// warmup so the measured cells see the learned policy, not cold start.
	const warmupPasses = 4
	wins := map[string]int{}
	parity := 0
	var want [][]int
	for _, q := range queryGraphs {
		res, err := race.Query(context.Background(), q, 0)
		if err != nil {
			return err
		}
		for _, a := range res.IndexAttempts {
			if a.Winner {
				wins[a.Name]++
			}
		}
		want = append(want, res.GraphIDs)
	}
	for pass := 0; pass < warmupPasses; pass++ {
		for qi, q := range queryGraphs {
			res, err := auto.Query(context.Background(), q, 0)
			if err != nil {
				return err
			}
			if !equalIDs(res.GraphIDs, want[qi]) {
				return fmt.Errorf("auto policy diverged on query %d pass %d: got %v, race answered %v",
					qi, pass, res.GraphIDs, want[qi])
			}
			parity++
		}
	}
	// Attempt names are index display names; fold them back onto the
	// registered kinds to elect the solo-best index.
	nameToKind := map[string]string{}
	for _, st := range race.IndexStats() {
		nameToKind[st.Name] = st.Kind
	}
	kindWins := map[string]int{}
	for name, n := range wins {
		if kind, ok := nameToKind[name]; ok {
			kindWins[kind] += n
		}
	}
	soloBest := kinds[0]
	for kind, n := range kindWins {
		if n > kindWins[soloBest] {
			soloBest = kind
		}
	}
	fixed, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Index: soloBest, CacheSize: -1})
	if err != nil {
		return err
	}
	defer fixed.Close()
	for qi, q := range queryGraphs {
		res, err := fixed.Query(context.Background(), q, 0)
		if err != nil {
			return err
		}
		if !equalIDs(res.GraphIDs, want[qi]) {
			return fmt.Errorf("fixed index %s diverged on query %d: got %v, race answered %v",
				soloBest, qi, res.GraphIDs, want[qi])
		}
		parity++
	}
	fmt.Fprintf(info, "policy sweep: %d graphs, %d distinct queries, solo-best=%s, %d parity checks, %v per cell\n",
		len(ds), queries, soloBest, parity, cellDur)

	report := policyReport{
		Bench:         "policy",
		Scale:         scaleName,
		Seed:          seed,
		DatasetGraphs: len(ds),
		IndexSpec:     indexSpec,
		SoloBest:      soloBest,
		Queries:       queries,
		ParityChecked: parity,
		CellMillis:    cellDur.Milliseconds(),
		CPUs:          runtime.NumCPU(),
	}
	engines := []struct {
		name string
		eng  *psi.Engine
	}{
		{"race", race},
		{"fixed:" + soloBest, fixed},
		{"auto", auto},
	}
	baseline := map[string]policyCell{} // (mix, clients) -> always-race cell
	for _, mix := range []string{"uniform", "skewed"} {
		for _, clients := range []int{1, 4, 16} {
			for _, e := range engines {
				cell, err := runPolicyCell(e.eng, e.name, mix, bodies, clients, cellDur)
				if err != nil {
					return err
				}
				ref := fmt.Sprintf("%s/%d", mix, clients)
				if e.name == "race" {
					baseline[ref] = cell
				} else if base, ok := baseline[ref]; ok {
					if base.FirstResultP99US > 0 {
						cell.RegretP99VsRace = float64(cell.FirstResultP99US-base.FirstResultP99US) / float64(base.FirstResultP99US)
					}
					if base.AttemptsPerAnswer > 0 {
						cell.AttemptsVsRace = cell.AttemptsPerAnswer / base.AttemptsPerAnswer
					}
				}
				report.Cells = append(report.Cells, cell)
				fmt.Fprintf(info, "%-12s %-7s clients=%-2d %6.1f q/s  first p50=%-8v p99=%-8v  attempts/answer=%.2f coalesced=%d\n",
					cell.Policy, cell.Mix, cell.Clients, cell.ThroughputQPS,
					time.Duration(cell.FirstResultP50US)*time.Microsecond,
					time.Duration(cell.FirstResultP99US)*time.Microsecond,
					cell.AttemptsPerAnswer, cell.Coalesced)
			}
		}
	}
	if snap, ok := auto.PolicyStats(); ok {
		report.AutoPolicy = &snap
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}

// runPolicyCell measures one (engine, mix, clients) cell through a fresh
// serving stack. The server's result cache is disabled so every request
// reaches the planner or a live flight — the sweep isolates planning policy
// and coalescing, not LRU replay (BENCH_serve covers the cache).
func runPolicyCell(eng *psi.Engine, policy, mix string, bodies [][]byte, clients int, d time.Duration) (policyCell, error) {
	srv := server.New(eng, server.Options{
		MaxInFlight: clients + 1,
		CacheSize:   -1,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	url := ts.URL + "/query?stream=1"

	before := eng.Counters()
	var (
		mu     sync.Mutex
		firsts []time.Duration
		errs   int
	)
	loopStart := time.Now()
	stop := loopStart.Add(d)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; time.Now().Before(stop); i++ {
				body := bodies[mixIndex(mix, c, i, len(bodies))]
				start := time.Now()
				resp, err := client.Post(url, "text/plain", bytes.NewReader(body))
				if err != nil {
					mu.Lock()
					errs++
					mu.Unlock()
					continue
				}
				br := bufio.NewReader(resp.Body)
				_, ferr := br.ReadString('\n')
				first := time.Since(start)
				_, derr := io.Copy(io.Discard, br)
				resp.Body.Close()
				mu.Lock()
				if ferr != nil || derr != nil || resp.StatusCode != http.StatusOK {
					errs++
				} else {
					firsts = append(firsts, first)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	span := time.Since(loopStart)
	after := eng.Counters()
	st := srv.Stats()

	cell := policyCell{
		Policy:      policy,
		Mix:         mix,
		Clients:     clients,
		Requests:    len(firsts),
		Errors:      errs,
		Coalesced:   st.Coalesced,
		PolicySolo:  after.PolicySolo - before.PolicySolo,
		PolicyRaces: after.PolicyRaces - before.PolicyRaces,
	}
	if len(firsts) == 0 {
		return cell, fmt.Errorf("policy cell %s/%s/%d completed no requests", policy, mix, clients)
	}
	// Attempts-per-answer is the CPU-normalized cost of one delivered
	// answer: filtering pipelines started divided by client answers served.
	// Solo planning lowers the numerator; coalescing lowers it further by
	// answering several clients from one execution. A fixed-index engine
	// has no racer and reports no IndexAttempts — there each engine query
	// is exactly one pipeline.
	attempts := after.IndexAttempts - before.IndexAttempts
	if attempts == 0 {
		attempts = after.Queries - before.Queries
	}
	cell.AttemptsPerAnswer = float64(attempts) / float64(len(firsts))
	cell.ThroughputQPS = float64(len(firsts)) / span.Seconds()
	cell.FirstResultP50US = pct(firsts, 50).Microseconds()
	cell.FirstResultP99US = pct(firsts, 99).Microseconds()
	return cell, nil
}

// equalIDs reports whether two ascending answer-ID slices are identical.
func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
