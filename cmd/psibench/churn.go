package main

// Churn mode: benchmarks the mutable dataset engine under a mixed
// ingest/delete/query load and measures what the epoch-versioned
// incremental indexes buy over the naive alternative — tearing the engine
// down and rebuilding every index from scratch after each mutation.
//
// The run grows a base dataset by ingesting a pool of additional graphs,
// tombstoning every third ingest's worth of older graphs along the way and
// answering containment queries between mutations. Afterwards it builds a
// from-scratch engine over the final dataset twice over: once to time the
// full rebuild a mutation would otherwise cost, and once to assert the
// non-negotiable invariant — the churned engine's answers are byte-identical
// to a clean build of the dataset it converged to. The -json output is the
// committed BENCH_mutate.json; the run fails if parity breaks or the
// per-mutation speedup over a full rebuild falls under churnMinSpeedup.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"slices"
	"time"

	psi "github.com/psi-graph/psi"
)

// churnMinSpeedup is the floor on rebuild_ns / mean_mutation_ns: applying
// one mutation incrementally must beat a from-scratch rebuild of the final
// dataset by at least this factor, or the incremental machinery is not
// paying for itself.
const churnMinSpeedup = 10

// churnReport is the full -churn output document.
type churnReport struct {
	Bench          string        `json:"bench"`
	Scale          string        `json:"scale"`
	Seed           int64         `json:"seed"`
	Index          string        `json:"index_spec"`
	Shards         int           `json:"shards"`
	CPUs           int           `json:"cpus"`
	GraphsStart    int           `json:"graphs_start"`
	GraphsEnd      int           `json:"graphs_end"`
	FinalEpoch     uint64        `json:"final_epoch"`
	Adds           int64         `json:"adds"`
	Removes        int64         `json:"removes"`
	Compactions    int64         `json:"compactions"`
	InitialBuildNS time.Duration `json:"initial_build_ns"`
	MeanAddNS      time.Duration `json:"mean_add_ns"`
	MaxAddNS       time.Duration `json:"max_add_ns"`
	MeanRemoveNS   time.Duration `json:"mean_remove_ns"`
	MeanMutationNS time.Duration `json:"mean_mutation_ns"`
	QueriesRun     int           `json:"queries_run"`
	MeanQueryNS    time.Duration `json:"mean_query_ns"`
	Answers        int           `json:"answers"`
	RebuildNS      time.Duration `json:"rebuild_ns"`
	SpeedupX       float64       `json:"speedup_x"`
	Parity         bool          `json:"parity_with_rebuild"`
}

// runChurnBench drives the churn and prints text or JSON.
func runChurnBench(scale psi.Scale, scaleName, indexSpec string, seed int64, queries, shards int, cap time.Duration, asJSON bool) error {
	if seed == 0 {
		seed = 1
	}
	if queries <= 0 {
		queries = 6
	}
	kinds, err := psi.ParseIndexSpec(indexSpec)
	if err != nil {
		return err
	}
	info := os.Stdout
	if asJSON {
		info = os.Stderr
	}

	// The generator emits a handful of graphs per seed; concatenating runs
	// at distinct seeds grows a base dataset large enough that a full
	// rebuild visibly dwarfs a one-graph incremental update, plus an ingest
	// pool of the same shape to churn with.
	const genRuns = 6
	var base, pool []*psi.Graph
	for i := int64(0); i < genRuns; i++ {
		base = append(base, psi.GeneratePPI(scale, seed+i)...)
		pool = append(pool, psi.GeneratePPI(scale, seed+genRuns+i)...)
	}

	buildStart := time.Now()
	eng, err := psi.NewDatasetEngine(base, psi.EngineOptions{
		Indexes: kinds,
		Shards:  shards,
		Timeout: cap,
		Mutable: true,
	})
	if err != nil {
		return err
	}
	defer eng.Close()
	report := churnReport{
		Bench: "mutate", Scale: scaleName, Seed: seed, Index: indexSpec,
		Shards: eng.Shards(), CPUs: runtime.NumCPU(),
		GraphsStart: len(base), InitialBuildNS: time.Since(buildStart),
		Parity: true,
	}
	fmt.Fprintf(info, "churn: %d base graphs, %d-graph ingest pool, K=%d, indexes built in %v\n",
		len(base), len(pool), eng.Shards(), report.InitialBuildNS.Round(time.Millisecond))

	queryGraphs := make([]*psi.Graph, queries)
	for i := range queryGraphs {
		queryGraphs[i] = psi.ExtractQuery(base[i%len(base)], 4+(i%2)*4, seed+int64(i))
	}

	// The churn: ingest the pool one graph at a time, removing one older
	// graph after every third ingest and running one query after every
	// second mutation — queries and mutations interleave the way a serving
	// workload would, and every query runs against a consistent epoch.
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	var addNS, removeNS, queryNS time.Duration
	var mutations int
	runQuery := func() error {
		q := queryGraphs[report.QueriesRun%len(queryGraphs)]
		qStart := time.Now()
		res, err := eng.Query(ctx, q, 0)
		if err != nil {
			return fmt.Errorf("query during churn: %w", err)
		}
		queryNS += time.Since(qStart)
		report.QueriesRun++
		report.Answers += len(res.GraphIDs)
		return nil
	}
	for i, g := range pool {
		aStart := time.Now()
		if _, err := eng.AddGraph(ctx, g); err != nil {
			return fmt.Errorf("add %d: %w", i, err)
		}
		d := time.Since(aStart)
		addNS += d
		if d > report.MaxAddNS {
			report.MaxAddNS = d
		}
		report.Adds++
		mutations++
		if (i+1)%3 == 0 {
			handles := eng.Handles()
			h := handles[rng.Intn(len(handles))]
			rStart := time.Now()
			if _, err := eng.RemoveGraph(ctx, h); err != nil {
				return fmt.Errorf("remove %v: %w", h, err)
			}
			removeNS += time.Since(rStart)
			report.Removes++
			mutations++
		}
		if mutations%2 == 0 {
			if err := runQuery(); err != nil {
				return err
			}
		}
	}
	report.Compactions = eng.Counters().Compactions
	report.GraphsEnd = len(eng.Dataset())
	report.FinalEpoch = eng.Epoch()
	report.MeanAddNS = addNS / time.Duration(report.Adds)
	if report.Removes > 0 {
		report.MeanRemoveNS = removeNS / time.Duration(report.Removes)
	}
	report.MeanMutationNS = (addNS + removeNS) / time.Duration(report.Adds+report.Removes)
	if report.QueriesRun > 0 {
		report.MeanQueryNS = queryNS / time.Duration(report.QueriesRun)
	}
	fmt.Fprintf(info, "churn: %d adds (mean %v, max %v), %d removes (mean %v), %d compactions, epoch %d\n",
		report.Adds, report.MeanAddNS.Round(time.Microsecond), report.MaxAddNS.Round(time.Microsecond),
		report.Removes, report.MeanRemoveNS.Round(time.Microsecond), report.Compactions, report.FinalEpoch)

	// The alternative a mutation avoids: a from-scratch engine over the
	// dataset the churn converged to. Built once for the clock, and its
	// answers double as the parity baseline.
	rebuildStart := time.Now()
	fresh, err := psi.NewDatasetEngine(eng.Dataset(), psi.EngineOptions{
		Indexes: kinds,
		Shards:  shards,
		Timeout: cap,
	})
	if err != nil {
		return fmt.Errorf("rebuild: %w", err)
	}
	defer fresh.Close()
	report.RebuildNS = time.Since(rebuildStart)
	for i, q := range queryGraphs {
		got, err := eng.Query(ctx, q, 0)
		if err != nil {
			return fmt.Errorf("parity q%d (churned): %w", i, err)
		}
		want, err := fresh.Query(ctx, q, 0)
		if err != nil {
			return fmt.Errorf("parity q%d (rebuilt): %w", i, err)
		}
		if !slices.Equal(got.GraphIDs, want.GraphIDs) {
			report.Parity = false
			return fmt.Errorf("parity q%d: churned engine answered %v, from-scratch rebuild %v", i, got.GraphIDs, want.GraphIDs)
		}
	}
	report.SpeedupX = float64(report.RebuildNS) / float64(report.MeanMutationNS)
	fmt.Fprintf(info, "rebuild of %d graphs: %v — incremental mutation is %.1fx faster (parity holds over %d queries)\n",
		report.GraphsEnd, report.RebuildNS.Round(time.Millisecond), report.SpeedupX, len(queryGraphs))
	if report.SpeedupX < churnMinSpeedup {
		return fmt.Errorf("per-mutation speedup %.1fx under the %dx floor — incremental updates are not beating a full rebuild", report.SpeedupX, churnMinSpeedup)
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	return nil
}
