// Command psiserve is the HTTP/JSON front end over the serving subsystem:
// it builds one long-lived psi.Engine from a dataset file (or a generated
// dataset) and serves queries with admission control, per-request
// deadlines, NDJSON streaming, a shared result cache and graceful drain.
//
//	psiserve -data ppi.txt -index race -timeout 10m -addr 127.0.0.1:8080
//	psiserve -gen ppi -scale tiny -seed 1 -addr 127.0.0.1:0 -portfile port.txt
//	psiserve -gen synthetic -scale small -shards 4 -index race   # sharded dataset:
//	     every index is partitioned into 4 round-robin shards whose streams
//	     merge in ascending ID order; answers are byte-identical to -shards 1
//	psiserve -gen ppi -index race -policy auto   # traffic-aware planning:
//	     a per-query-class bandit learns which index pipeline wins and runs
//	     it solo, escalating back to the full race on unfamiliar classes,
//	     stale statistics, or a budget-killed solo; answers stay identical
//	     to -policy race. (-mode auto is the stored-graph analogue.)
//
// Concurrent identical queries are coalesced: overlapping requests for the
// same canonical query share one engine execution and every client gets the
// full answer, marked coalesced:true. Pass -no-coalesce (or per-request
// ?cache=0) to force independent executions.
//
// With -snapshot the engine's full state persists across restarts: when the
// file exists the server cold-starts from it alone (no -data/-gen, no index
// builds — the prebuilt arrays deserialize in milliseconds); when it does
// not, the engine builds as usual and saves the snapshot once ready. POST
// /snapshot re-saves the current state at any time — on a mutable server
// that includes every ingest/delete applied so far.
//
// With -mutable the dataset engine accepts online mutations: graphs can be
// ingested, removed and replaced while queries are in flight, each mutation
// bumping an epoch-versioned index snapshot whose answers stay byte-identical
// to a from-scratch rebuild. A mutable server also builds its indexes in the
// background: it listens (and writes -portfile) immediately, answering
// /healthz with status "building" (503) until the engine is ready.
//
// Endpoints:
//
//	POST /query[?limit=N&stream=1&cache=0&timeout_ms=N]  — body: one query
//	     graph in the module's text format. JSON answer, or NDJSON lines
//	     (one per embedding / containing graph ID, then a summary line)
//	     with stream=1.
//	POST /graphs           — body: one or more graphs in the module's text
//	     format; ingests each in order (requires -mutable) and returns
//	     their handles plus the new dataset epoch.
//	DELETE /graphs/{handle} — removes the graph behind an ingest handle
//	     (a tombstone; shard-local compaction after enough of them).
//	PUT  /graphs/{handle}  — body: exactly one graph; replaces the graph
//	     behind the handle in place.
//	POST /snapshot — persist the engine's current state to the -snapshot
//	     path (409 unless -snapshot was given).
//	GET  /stats    — JSON snapshot: engine counters, win tallies, index
//	     build provenance, cache effectiveness, admission state, coalescing
//	     counters, the dataset epoch and mutation counters (with -mutable),
//	     and (with -policy auto / -mode auto) the learned per-arm policy
//	     statistics.
//	GET  /metrics  — the same counters in Prometheus text format.
//	GET  /healthz  — 200 with status "ok" (and the dataset epoch) while
//	     serving, 503 with "building" until the engine is ready, 503 with
//	     "draining" once shutdown begins.
//
// SIGINT/SIGTERM starts a graceful drain: admission stops, in-flight
// queries finish (stragglers are cancelled after -drain), and the process
// exits 0 on a clean shutdown.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	psi "github.com/psi-graph/psi"
	"github.com/psi-graph/psi/internal/gen"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/rewrite"
	"github.com/psi-graph/psi/internal/server"
)

func main() {
	var (
		dataFlag     = flag.String("data", "", "stored graph / dataset file (mutually exclusive with -gen)")
		genFlag      = flag.String("gen", "", "generate the dataset: synthetic|ppi|yeast|human|wordnet")
		scaleFlag    = flag.String("scale", "tiny", "generated dataset scale: tiny|small|medium|paper")
		seedFlag     = flag.Int64("seed", 1, "generator seed")
		addrFlag     = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		portFileFlag = flag.String("portfile", "", "write the bound TCP port to this file once listening")
		algosFlag    = flag.String("algos", "GQL,SPA", "NFV algorithms: GQL,SPA,QSI,VF2")
		rewrFlag     = flag.String("rewritings", "Orig,DND", "raced rewritings: Orig,ILF,IND,DND,ILF+IND,ILF+DND")
		modeFlag     = flag.String("mode", "race", "stored-graph planning mode: race|predict|single|auto")
		indexFlag    = flag.String("index", "race", "dataset indexes: ftv|grapes|ggsx, a comma list, or race (all)")
		policyFlag   = flag.String("policy", "", "dataset index policy: race|fixed|auto (default: race with several indexes)")
		noCoalesce   = flag.Bool("no-coalesce", false, "disable in-flight coalescing of concurrent identical queries")
		mutableFlag  = flag.Bool("mutable", false, "accept online mutations (POST/DELETE/PUT /graphs); the engine builds in the background")
		compactFlag  = flag.Int("compact-every", 0, "per-shard tombstone count that triggers compaction (0: default)")
		shardsFlag   = flag.Int("shards", 1, "dataset shards per index (round-robin partition; answers identical at any K)")
		workersFlag  = flag.Int("workers", 1, "Grapes verification worker count")
		timeoutFlag  = flag.Duration("timeout", 10*time.Minute, "per-query kill cap (the engine budget)")
		reqTimeout   = flag.Duration("request-timeout", 0, "per-request deadline cap (0: engine budget only)")
		inflightFlag = flag.Int("max-inflight", 0, "admission limit (0: 4 x NumCPU)")
		cacheFlag    = flag.Int("cache", 256, "server result-cache entries (negative disables)")
		limitFlag    = flag.Int("limit", 1000, "default embedding limit per query")
		drainFlag    = flag.Duration("drain", 10*time.Second, "graceful-drain grace before stragglers are cancelled")
		snapFlag     = flag.String("snapshot", "", "snapshot file: cold-start from it when present (no -data/-gen needed), save to it after a fresh build; POST /snapshot re-saves")
	)
	flag.Parse()
	// Flags the user actually set, as opposed to defaults: the snapshot
	// carries its own shard count and index portfolio, so on a cold start
	// only explicit flags are forwarded (and must then agree with the file).
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	snapExists := false
	if *snapFlag != "" {
		if _, err := os.Stat(*snapFlag); err == nil {
			snapExists = true
		}
	}
	var ds []*graph.Graph
	if !snapExists {
		var err error
		ds, err = loadDataset(*dataFlag, *genFlag, *scaleFlag, *seedFlag)
		if err != nil {
			fatal(err)
		}
		if *mutableFlag && len(ds) < 2 {
			fatal(errors.New("-mutable requires a dataset of more than one graph"))
		}
		if *snapFlag != "" && len(ds) < 2 {
			fatal(errors.New("-snapshot requires a dataset engine (more than one graph)"))
		}
	}

	srv := server.NewBuilding(server.Options{
		MaxInFlight:    *inflightFlag,
		DefaultLimit:   *limitFlag,
		RequestTimeout: *reqTimeout,
		CacheSize:      *cacheFlag,
		NoCoalesce:     *noCoalesce,
		SnapshotPath:   *snapFlag,
	})
	defer func() {
		if eng := srv.Engine(); eng != nil {
			eng.Close()
		}
	}()
	buildErr := make(chan error, 1)
	build := func(announce bool) {
		var (
			eng *psi.Engine
			err error
		)
		if snapExists {
			start := time.Now()
			eng, err = engineFromSnapshot(*snapFlag, explicit, *indexFlag, *policyFlag, *shardsFlag, *workersFlag, *compactFlag, *timeoutFlag, *mutableFlag)
			if err == nil {
				fmt.Fprintf(os.Stderr, "psiserve: cold-started from %s in %v\n", *snapFlag, time.Since(start).Round(time.Millisecond))
			}
		} else {
			eng, err = buildEngine(ds, *algosFlag, *rewrFlag, *modeFlag, *indexFlag, *policyFlag, *shardsFlag, *workersFlag, *compactFlag, *timeoutFlag, *mutableFlag)
			if err == nil && *snapFlag != "" {
				if serr := eng.SaveSnapshot(*snapFlag); serr != nil {
					eng.Close()
					err = fmt.Errorf("saving initial snapshot: %w", serr)
				} else {
					fmt.Fprintf(os.Stderr, "psiserve: snapshot saved to %s\n", *snapFlag)
				}
			}
		}
		if err != nil {
			buildErr <- err
			return
		}
		srv.SetEngine(eng)
		if announce {
			fmt.Fprintf(os.Stderr, "psiserve: engine ready (%s)\n", describe(eng))
		}
		buildErr <- nil
	}
	if *mutableFlag {
		// A mutable server listens first and builds in the background, so
		// readiness probes see "building" instead of connection refusals.
		go build(true)
	} else {
		build(false)
		if err := <-buildErr; err != nil {
			fatal(err)
		}
		buildErr = nil
	}

	ln, err := net.Listen("tcp", *addrFlag)
	if err != nil {
		fatal(err)
	}
	if *portFileFlag != "" {
		port := ln.Addr().(*net.TCPAddr).Port
		if err := os.WriteFile(*portFileFlag, []byte(fmt.Sprintf("%d\n", port)), 0o644); err != nil {
			fatal(err)
		}
	}
	desc := "building indexes in the background"
	if eng := srv.Engine(); eng != nil {
		desc = describe(eng)
	}
	fmt.Fprintf(os.Stderr, "psiserve: listening on http://%s (%s)\n", ln.Addr(), desc)

	httpSrv := &http.Server{Handler: srv}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	for {
		select {
		case err := <-buildErr:
			if err != nil {
				fatal(err)
			}
			// Disable this case; a nil channel never fires again.
			buildErr = nil
		case sig := <-stop:
			fmt.Fprintf(os.Stderr, "psiserve: %v — draining (grace %v)\n", sig, *drainFlag)
			dctx, cancel := context.WithTimeout(context.Background(), *drainFlag)
			defer cancel()
			drainErr := srv.Shutdown(dctx)
			if err := httpSrv.Shutdown(dctx); err != nil && drainErr == nil {
				drainErr = err
			}
			if drainErr != nil {
				fmt.Fprintf(os.Stderr, "psiserve: drain cut stragglers: %v\n", drainErr)
			} else {
				fmt.Fprintln(os.Stderr, "psiserve: drained cleanly")
			}
			return
		case err := <-serveErr:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				fatal(err)
			}
			return
		}
	}
}

// loadDataset reads -data or generates -gen.
func loadDataset(path, genKind, scaleName string, seed int64) ([]*graph.Graph, error) {
	if (path == "") == (genKind == "") {
		return nil, errors.New("exactly one of -data or -gen is required")
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		ds, err := graph.ReadDataset(f)
		if err != nil {
			return nil, err
		}
		if len(ds) == 0 {
			return nil, fmt.Errorf("dataset %s is empty", path)
		}
		return ds, nil
	}
	scale, err := gen.ParseScale(scaleName)
	if err != nil {
		return nil, err
	}
	switch genKind {
	case "synthetic":
		return gen.Synthetic(gen.SyntheticAt(scale), seed), nil
	case "ppi":
		return gen.PPI(gen.PPIAt(scale), seed), nil
	case "yeast":
		return []*graph.Graph{gen.YeastLike(scale, seed)}, nil
	case "human":
		return []*graph.Graph{gen.HumanLike(scale, seed)}, nil
	case "wordnet":
		return []*graph.Graph{gen.WordnetLike(scale, seed)}, nil
	}
	return nil, fmt.Errorf("unknown -gen kind %q", genKind)
}

// engineFromSnapshot cold-starts the engine from a saved snapshot: the file
// carries the dataset, the index portfolio and the shard count, so only
// flags the user explicitly set are forwarded — the engine then insists they
// agree with the file rather than silently rebuilding.
func engineFromSnapshot(path string, explicit map[string]bool, indexSpec, policy string, shards, workers, compactEvery int, timeout time.Duration, mutable bool) (*psi.Engine, error) {
	opts := psi.EngineOptions{
		Snapshot:     path,
		Timeout:      timeout,
		IndexWorkers: workers,
		IndexPolicy:  policy,
		Mutable:      mutable,
		CompactEvery: compactEvery,
	}
	if explicit["shards"] {
		opts.Shards = shards
	}
	if explicit["index"] {
		var err error
		opts.Indexes, err = psi.ParseIndexSpec(indexSpec)
		if err != nil {
			return nil, err
		}
	}
	return psi.NewDatasetEngine(nil, opts)
}

// buildEngine constructs the NFV or FTV engine the dataset shape calls for.
func buildEngine(ds []*graph.Graph, algos, rewritings, mode, indexSpec, policy string, shards, workers, compactEvery int, timeout time.Duration, mutable bool) (*psi.Engine, error) {
	kinds, err := parseRewritings(rewritings)
	if err != nil {
		return nil, err
	}
	m, err := psi.ParseMode(mode)
	if err != nil {
		return nil, err
	}
	opts := psi.EngineOptions{
		Rewritings:   kinds,
		Mode:         m,
		Timeout:      timeout,
		IndexWorkers: workers,
		Shards:       shards,
	}
	if len(ds) > 1 {
		opts.Indexes, err = psi.ParseIndexSpec(indexSpec)
		if err != nil {
			return nil, err
		}
		opts.IndexPolicy = policy
		opts.Mutable = mutable
		opts.CompactEvery = compactEvery
		return psi.NewDatasetEngine(ds, opts)
	}
	opts.Algorithms, err = parseAlgorithms(algos)
	if err != nil {
		return nil, err
	}
	return psi.NewEngine(ds[0], opts)
}

func describe(eng *psi.Engine) string {
	if ds := eng.Dataset(); ds != nil {
		names := make([]string, 0, len(eng.IndexStats()))
		for _, st := range eng.IndexStats() {
			names = append(names, st.Name)
		}
		sharding := ""
		if k := eng.Shards(); k > 1 {
			sharding = fmt.Sprintf(", shards=%d", k)
		}
		return fmt.Sprintf("FTV: %d graphs, policy=%s%s, indexes=%s",
			len(ds), eng.IndexPolicy(), sharding, strings.Join(names, ","))
	}
	return fmt.Sprintf("NFV: %d vertices, mode=%s", eng.Graph().N(), eng.Mode())
}

func parseAlgorithms(s string) ([]psi.Algorithm, error) {
	var algos []psi.Algorithm
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "GQL":
			algos = append(algos, psi.GraphQL)
		case "SPA":
			algos = append(algos, psi.SPath)
		case "QSI":
			algos = append(algos, psi.QuickSI)
		case "VF2":
			algos = append(algos, psi.VF2)
		default:
			return nil, fmt.Errorf("unknown algorithm %q", name)
		}
	}
	return algos, nil
}

func parseRewritings(s string) ([]rewrite.Kind, error) {
	var kinds []rewrite.Kind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "Or" { // the paper's figure shorthand
			name = "Orig"
		}
		k, err := rewrite.ParseKind(name)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psiserve:", err)
	os.Exit(1)
}
