// Command psiquery runs subgraph queries from files through a psi.Engine,
// with a single algorithm, a Ψ-framework race, or the learned per-query
// prediction policy.
//
// NFV (single stored graph): match every query, report embeddings found,
// winner and time per query.
//
//	psiquery -data yeast.txt -queries q.txt -algos GQL,SPA -rewritings Or,DND
//	psiquery -data yeast.txt -queries q.txt -mode predict -json
//
// FTV (multi-graph dataset): filter-then-verify decision with the flat
// path index, Grapes or GGSX — or a race of several — with rewritings
// raced in the verification stage (behind the result cache when a single
// index is fixed).
//
//	psiquery -data ppi.txt -queries q.txt -index grapes -workers 4 -rewritings ILF,IND,DND
//	psiquery -data ppi.txt -queries q.txt -index race            # race ftv|grapes|ggsx
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	psi "github.com/psi-graph/psi"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/rewrite"
)

func main() {
	var (
		dataFlag    = flag.String("data", "", "stored graph / dataset file (required)")
		queriesFlag = flag.String("queries", "", "query file (required)")
		algosFlag   = flag.String("algos", "GQL", "comma-separated NFV algorithms: GQL,SPA,QSI,VF2")
		rewrFlag    = flag.String("rewritings", "Orig", "comma-separated rewritings: Orig,ILF,IND,DND,ILF+IND,ILF+DND")
		modeFlag    = flag.String("mode", "race", "planning policy: race|predict|single")
		jsonFlag    = flag.Bool("json", false, "emit one JSON object per query instead of text")
		indexFlag   = flag.String("index", "", "FTV indexes for multi-graph datasets: ftv|grapes|ggsx, a comma list, or race (all)")
		workersFlag = flag.Int("workers", 1, "Grapes worker count")
		limitFlag   = flag.Int("limit", 1000, "max embeddings per query (NFV)")
		capFlag     = flag.Duration("timeout", 10*time.Minute, "per-query kill cap")
	)
	flag.Parse()
	if *dataFlag == "" || *queriesFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	ds, err := readFile(*dataFlag)
	if err != nil {
		fatal(err)
	}
	queries, err := readFile(*queriesFlag)
	if err != nil {
		fatal(err)
	}
	kinds, err := parseRewritings(*rewrFlag)
	if err != nil {
		fatal(err)
	}
	mode, err := psi.ParseMode(*modeFlag)
	if err != nil {
		fatal(err)
	}
	if len(ds) == 0 {
		fatal(fmt.Errorf("dataset %s is empty", *dataFlag))
	}
	indexKinds, err := psi.ParseIndexSpec(*indexFlag)
	if err != nil {
		fatal(err)
	}
	opts := psi.EngineOptions{
		Rewritings:   kinds,
		Mode:         mode,
		Timeout:      *capFlag,
		Indexes:      indexKinds,
		IndexWorkers: *workersFlag,
	}
	if len(ds) > 1 || *indexFlag != "" {
		eng, err := psi.NewDatasetEngine(ds, opts)
		if err != nil {
			fatal(err)
		}
		defer eng.Close()
		runQueries(eng, queries, len(ds), 0, *jsonFlag)
		return
	}
	opts.Algorithms, err = parseAlgorithms(*algosFlag)
	if err != nil {
		fatal(err)
	}
	eng, err := psi.NewEngine(ds[0], opts)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	runQueries(eng, queries, 0, *limitFlag, *jsonFlag)
}

// queryReport is the -json output schema, one object per line per query.
type queryReport struct {
	Query      string          `json:"query"`
	Kind       string          `json:"kind"`
	Winner     string          `json:"winner,omitempty"`
	Found      int             `json:"found"`
	Embeddings []psi.Embedding `json:"embeddings,omitempty"`
	GraphIDs   []int           `json:"graph_ids,omitempty"`
	ElapsedUS  int64           `json:"elapsed_us"`
	Killed     bool            `json:"killed,omitempty"`
	FellBack   bool            `json:"fell_back,omitempty"`
	Error      string          `json:"error,omitempty"`
}

// runQueries plans and executes every query on the engine; datasetSize > 0
// marks the FTV formatting path.
func runQueries(eng *psi.Engine, queries []*graph.Graph, datasetSize, limit int, asJSON bool) {
	out := json.NewEncoder(os.Stdout)
	for _, q := range queries {
		res, err := eng.Query(context.Background(), q, limit)
		if asJSON {
			rep := queryReport{Query: q.Name()}
			if err != nil {
				rep.Error = err.Error()
			} else {
				rep.Kind = string(res.Kind)
				rep.Winner = res.Winner
				rep.Found = res.Found
				rep.Embeddings = res.Embeddings
				rep.GraphIDs = res.GraphIDs
				rep.ElapsedUS = res.Elapsed.Microseconds()
				rep.Killed = res.Killed
				rep.FellBack = res.FellBack
			}
			if eerr := out.Encode(rep); eerr != nil {
				fatal(eerr)
			}
			continue
		}
		switch {
		case err != nil:
			fmt.Printf("%-12s FAILED (%v)\n", q.Name(), err)
		case res.Killed:
			fmt.Printf("%-12s KILLED after %v\n", q.Name(), res.Elapsed.Round(time.Microsecond))
		case datasetSize > 0:
			fmt.Printf("%-12s contained in %d/%d graph(s) %v  %v\n",
				q.Name(), len(res.GraphIDs), datasetSize, res.GraphIDs, res.Elapsed.Round(time.Microsecond))
		default:
			note := ""
			if res.FellBack {
				note = "  (prediction fell back to race)"
			}
			fmt.Printf("%-12s %4d embedding(s)  winner=%-12s  plan=%-9s %v%s\n",
				q.Name(), res.Found, res.Winner, res.Kind, res.Elapsed.Round(time.Microsecond), note)
		}
	}
}

func parseAlgorithms(s string) ([]psi.Algorithm, error) {
	var algos []psi.Algorithm
	for _, name := range strings.Split(s, ",") {
		switch strings.TrimSpace(name) {
		case "GQL":
			algos = append(algos, psi.GraphQL)
		case "SPA":
			algos = append(algos, psi.SPath)
		case "QSI":
			algos = append(algos, psi.QuickSI)
		case "VF2":
			algos = append(algos, psi.VF2)
		default:
			return nil, fmt.Errorf("unknown algorithm %q", name)
		}
	}
	return algos, nil
}

func parseRewritings(s string) ([]rewrite.Kind, error) {
	var kinds []rewrite.Kind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "Or" { // accept the paper's figure shorthand
			name = "Orig"
		}
		k, err := rewrite.ParseKind(name)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

func readFile(path string) ([]*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadDataset(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psiquery:", err)
	os.Exit(1)
}
