// Command psiquery runs subgraph queries from files, with a single
// algorithm or a Ψ-framework race.
//
// NFV (single stored graph): match every query, report embeddings found,
// winner and time per query.
//
//	psiquery -data yeast.txt -queries q.txt -algos GQL,SPA -rewritings Or,DND
//
// FTV (multi-graph dataset): filter-then-verify decision with Grapes or
// GGSX, optionally racing rewritings in the verification stage.
//
//	psiquery -data ppi.txt -queries q.txt -index grapes -workers 4 -rewritings ILF,IND,DND
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/psi-graph/psi/internal/core"
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/ggsx"
	"github.com/psi-graph/psi/internal/gql"
	"github.com/psi-graph/psi/internal/grapes"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/quicksi"
	"github.com/psi-graph/psi/internal/rewrite"
	"github.com/psi-graph/psi/internal/spath"
	"github.com/psi-graph/psi/internal/vf2"
)

func main() {
	var (
		dataFlag    = flag.String("data", "", "stored graph / dataset file (required)")
		queriesFlag = flag.String("queries", "", "query file (required)")
		algosFlag   = flag.String("algos", "GQL", "comma-separated NFV algorithms: GQL,SPA,QSI,VF2")
		rewrFlag    = flag.String("rewritings", "Orig", "comma-separated rewritings: Orig,ILF,IND,DND,ILF+IND,ILF+DND")
		indexFlag   = flag.String("index", "", "FTV index for multi-graph datasets: grapes|ggsx")
		workersFlag = flag.Int("workers", 1, "Grapes worker count")
		limitFlag   = flag.Int("limit", 1000, "max embeddings per query (NFV)")
		capFlag     = flag.Duration("timeout", 10*time.Minute, "per-query kill cap")
	)
	flag.Parse()
	if *dataFlag == "" || *queriesFlag == "" {
		flag.Usage()
		os.Exit(2)
	}
	ds, err := readFile(*dataFlag)
	if err != nil {
		fatal(err)
	}
	queries, err := readFile(*queriesFlag)
	if err != nil {
		fatal(err)
	}
	kinds, err := parseRewritings(*rewrFlag)
	if err != nil {
		fatal(err)
	}
	if len(ds) == 0 {
		fatal(fmt.Errorf("dataset %s is empty", *dataFlag))
	}
	if len(ds) > 1 || *indexFlag != "" {
		runFTV(ds, queries, *indexFlag, *workersFlag, kinds, *capFlag)
		return
	}
	runNFV(ds[0], queries, strings.Split(*algosFlag, ","), kinds, *limitFlag, *capFlag)
}

func runNFV(g *graph.Graph, queries []*graph.Graph, algoNames []string, kinds []rewrite.Kind, limit int, cap time.Duration) {
	var matchers []match.Matcher
	for _, name := range algoNames {
		switch strings.TrimSpace(name) {
		case "GQL":
			matchers = append(matchers, gql.New(g))
		case "SPA":
			matchers = append(matchers, spath.New(g))
		case "QSI":
			matchers = append(matchers, quicksi.New(g))
		case "VF2":
			matchers = append(matchers, vf2.New(g))
		default:
			fatal(fmt.Errorf("unknown algorithm %q", name))
		}
	}
	racer := core.NewRacer(g)
	attempts := core.Portfolio(matchers, kinds)
	for _, q := range queries {
		ctx, cancel := context.WithTimeout(context.Background(), cap)
		start := time.Now()
		res, err := racer.Race(ctx, q, limit, attempts)
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			fmt.Printf("%-12s KILLED after %v (%v)\n", q.Name(), elapsed.Round(time.Microsecond), err)
			continue
		}
		fmt.Printf("%-12s %4d embedding(s)  winner=%-12s  %v\n",
			q.Name(), len(res.Embeddings), res.Winner.Label(), elapsed.Round(time.Microsecond))
	}
}

func runFTV(ds []*graph.Graph, queries []*graph.Graph, index string, workers int, kinds []rewrite.Kind, cap time.Duration) {
	var x ftv.Index
	switch index {
	case "", "grapes":
		x = grapes.Build(ds, grapes.Options{Workers: workers})
	case "ggsx":
		x = ggsx.Build(ds, ggsx.Options{})
	default:
		fatal(fmt.Errorf("unknown index %q", index))
	}
	racer := core.NewFTVRacer(x, kinds)
	for _, q := range queries {
		ctx, cancel := context.WithTimeout(context.Background(), cap)
		start := time.Now()
		answer, err := racer.Answer(ctx, q)
		elapsed := time.Since(start)
		cancel()
		if err != nil {
			fmt.Printf("%-12s KILLED after %v (%v)\n", q.Name(), elapsed.Round(time.Microsecond), err)
			continue
		}
		fmt.Printf("%-12s contained in %d/%d graph(s) %v  %v\n",
			q.Name(), len(answer), len(ds), answer, elapsed.Round(time.Microsecond))
	}
}

func parseRewritings(s string) ([]rewrite.Kind, error) {
	var kinds []rewrite.Kind
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "Or" { // accept the paper's figure shorthand
			name = "Orig"
		}
		k, err := rewrite.ParseKind(name)
		if err != nil {
			return nil, err
		}
		kinds = append(kinds, k)
	}
	return kinds, nil
}

func readFile(path string) ([]*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadDataset(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psiquery:", err)
	os.Exit(1)
}
