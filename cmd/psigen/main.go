// Command psigen generates datasets and query workloads in the module's
// text format (see internal/graph/io.go), so experiments can be re-run on
// fixed inputs or inspected by other tools.
//
// Usage:
//
//	psigen -dataset synthetic|ppi|yeast|human|wordnet [-scale tiny] [-seed 1]
//	       [-out dataset.txt] [-queries 20 -sizes 8,16 -qout queries.txt]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/psi-graph/psi/internal/gen"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/workload"
)

func main() {
	var (
		dsFlag      = flag.String("dataset", "synthetic", "dataset: synthetic|ppi|yeast|human|wordnet")
		scaleFlag   = flag.String("scale", "tiny", "dataset scale: tiny|small|medium|paper")
		seedFlag    = flag.Int64("seed", 1, "generator seed")
		outFlag     = flag.String("out", "", "output file for the dataset (default: stdout)")
		queriesFlag = flag.Int("queries", 0, "if > 0, also generate this many queries per size")
		sizesFlag   = flag.String("sizes", "8,16", "comma-separated query sizes in edges")
		qoutFlag    = flag.String("qout", "", "output file for queries (default: stdout)")
	)
	flag.Parse()

	scale, err := gen.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	var ds []*graph.Graph
	switch *dsFlag {
	case "synthetic":
		ds = gen.Synthetic(gen.SyntheticAt(scale), *seedFlag)
	case "ppi":
		ds = gen.PPI(gen.PPIAt(scale), *seedFlag)
	case "yeast":
		ds = []*graph.Graph{gen.YeastLike(scale, *seedFlag)}
	case "human":
		ds = []*graph.Graph{gen.HumanLike(scale, *seedFlag)}
	case "wordnet":
		ds = []*graph.Graph{gen.WordnetLike(scale, *seedFlag)}
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dsFlag))
	}

	if err := writeTo(*outFlag, func(w io.Writer) error {
		return graph.WriteDataset(w, ds)
	}); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "psigen: wrote %d graph(s) (%s, scale %s)\n", len(ds), *dsFlag, scale)

	if *queriesFlag > 0 {
		var sizes []int
		for _, s := range strings.Split(*sizesFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fatal(fmt.Errorf("bad size %q", s))
			}
			sizes = append(sizes, n)
		}
		qs := workload.Generate(ds, sizes, *queriesFlag, *seedFlag+1)
		graphs := make([]*graph.Graph, len(qs))
		for i, q := range qs {
			graphs[i] = q.Graph
		}
		if err := writeTo(*qoutFlag, func(w io.Writer) error {
			return graph.WriteDataset(w, graphs)
		}); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "psigen: wrote %d queries (sizes %v)\n", len(qs), sizes)
	}
}

func writeTo(path string, f func(io.Writer) error) error {
	if path == "" {
		return f(os.Stdout)
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "psigen:", err)
	os.Exit(1)
}
