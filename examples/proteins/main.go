// Proteins: the decision problem over a dataset of protein-interaction-
// style graphs (the paper's FTV setting). Builds a Grapes index, runs a
// motif workload, shows the straggler phenomenon, and then removes the
// stragglers by racing query rewritings in the verification stage.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	psi "github.com/psi-graph/psi"
)

const (
	queryEdges = 20
	numQueries = 12
	cap        = 150 * time.Millisecond
)

func main() {
	fmt.Println("generating PPI-like dataset...")
	ds := psi.GeneratePPI(psi.Tiny, 42)
	st := psi.ComputeDatasetStats("ppi-like", ds)
	fmt.Printf("  %d graphs, avg %.0f nodes, avg degree %.1f, %d labels\n\n",
		st.NumGraphs, st.AvgNodes, st.AvgDegree, st.Labels)

	fmt.Println("building Grapes index (4 workers, paths <= 4 edges)...")
	start := time.Now()
	index := psi.NewGrapes(ds, 4)
	defer index.Close()
	fmt.Printf("  built in %v\n\n", time.Since(start).Round(time.Millisecond))

	// Extract protein "motifs" as queries; each is guaranteed to occur in
	// at least its source graph.
	var queries []*psi.Graph
	for i := 0; i < numQueries; i++ {
		queries = append(queries, psi.ExtractQuery(ds[i%len(ds)], queryEdges, int64(1000+i)))
	}

	fmt.Println("plain Grapes verification (per candidate graph):")
	plain := measure(queries, func(ctx context.Context, q *psi.Graph, id int) error {
		_, err := index.Verify(ctx, q, id)
		return err
	}, index)

	fmt.Println("\nΨ-framework verification (racing ILF/IND/DND rewritings):")
	racer := psi.NewFTVRacer(index, []psi.Rewriting{psi.ILF, psi.IND, psi.DND})
	raced := measure(queries, func(ctx context.Context, q *psi.Graph, id int) error {
		_, err := racer.Verify(ctx, q, id)
		return err
	}, index)

	fmt.Printf("\ntotal verification time: plain=%v psi=%v (%.1fx)\n",
		plain.Round(time.Millisecond), raced.Round(time.Millisecond),
		float64(plain)/float64(raced))
}

// measure runs the verification of every (query, candidate) pair under the
// cap, prints a small latency profile, and returns the total time (killed
// verifications counted at the cap).
func measure(queries []*psi.Graph, verify func(context.Context, *psi.Graph, int) error, index psi.FTVIndex) time.Duration {
	var times []time.Duration
	killed := 0
	for _, q := range queries {
		for _, id := range index.Filter(q) {
			ctx, cancel := context.WithTimeout(context.Background(), cap)
			t0 := time.Now()
			err := verify(ctx, q, id)
			elapsed := time.Since(t0)
			cancel()
			if err != nil {
				elapsed = cap
				killed++
			}
			times = append(times, elapsed)
		}
	}
	if len(times) == 0 {
		log.Fatal("no candidate pairs — try another seed")
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	var total time.Duration
	for _, t := range times {
		total += t
	}
	median := times[len(times)/2]
	max := times[len(times)-1]
	fmt.Printf("  %d pairs: median=%v max=%v killed=%d total=%v\n",
		len(times), median.Round(time.Microsecond), max.Round(time.Microsecond),
		killed, total.Round(time.Millisecond))
	fmt.Printf("  straggler skew: max/median = %.0fx\n",
		float64(max)/float64(median))
	return total
}
