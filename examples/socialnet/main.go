// Socialnet: the matching problem on one large stored graph (the paper's
// NFV setting). Uses a dense human-like graph as a stand-in for a social
// network where labels are user roles, finds all occurrences of interaction
// patterns, and compares single algorithms against a Ψ-framework portfolio.
package main

import (
	"context"
	"fmt"
	"time"

	psi "github.com/psi-graph/psi"
)

const (
	patternEdges = 24
	numPatterns  = 12
	limit        = 1000
	cap          = 150 * time.Millisecond
)

func main() {
	fmt.Println("generating a human-like interaction graph...")
	g := psi.GenerateHumanLike(psi.Tiny, 7)
	st := psi.ComputeStats(g)
	fmt.Printf("  %d users, %d interactions, avg degree %.1f, %d roles\n\n",
		st.Nodes, st.Edges, st.AvgDegree, st.Labels)

	gql := psi.MustNewMatcher(psi.GraphQL, g)
	spa := psi.MustNewMatcher(psi.SPath, g)
	portfolio := psi.NewPortfolioMatcher(g,
		[]psi.Algorithm{psi.GraphQL, psi.SPath},
		[]psi.Rewriting{psi.Orig, psi.DND})

	fmt.Printf("%-10s %12s %12s %12s\n", "pattern", "GQL", "SPA", portfolio.Name())
	var tGQL, tSPA, tPsi time.Duration
	for i := 0; i < numPatterns; i++ {
		q := psi.ExtractQuery(g, patternEdges, int64(100+i))
		a := timeMatch(gql, q)
		b := timeMatch(spa, q)
		c := timeMatch(portfolio, q)
		tGQL += a
		tSPA += b
		tPsi += c
		fmt.Printf("pattern%-3d %12s %12s %12s\n", i, fmtT(a), fmtT(b), fmtT(c))
	}
	fmt.Printf("%-10s %12s %12s %12s\n", "TOTAL", fmtT(tGQL), fmtT(tSPA), fmtT(tPsi))
	fmt.Printf("\nportfolio speedup: %.1fx vs GQL, %.1fx vs SPA\n",
		float64(tGQL)/float64(tPsi), float64(tSPA)/float64(tPsi))
	fmt.Println(`
The portfolio is insurance: without knowing in advance which algorithm will
straggle on which pattern (stragglers are algorithm-specific — §7 of the
paper), racing both buys near-best-of-both at the cost of some parallelism.
Here SPA hit the kill cap on several patterns; the portfolio never did.`)
}

// timeMatch runs one matching under the cap; killed runs cost the cap.
func timeMatch(m psi.Matcher, q *psi.Graph) time.Duration {
	ctx, cancel := context.WithTimeout(context.Background(), cap)
	defer cancel()
	start := time.Now()
	if _, err := m.Match(ctx, q, limit); err != nil {
		return cap
	}
	return time.Since(start)
}

func fmtT(d time.Duration) string {
	if d >= cap {
		return "KILLED"
	}
	return d.Round(10 * time.Microsecond).String()
}
