// Stragglers: a miniature of the paper's §5 study. Takes queries against a
// yeast-like stored graph, runs six random isomorphic instances of each
// (same structure and labels, permuted node IDs), and shows how wildly the
// running time varies — then shows which structured rewriting would have
// been the right choice for each query.
package main

import (
	"context"
	"fmt"
	"time"

	psi "github.com/psi-graph/psi"
)

const (
	queryEdges   = 16
	numQueries   = 8
	isoInstances = 6
	limit        = 1000
	cap          = 150 * time.Millisecond
)

func main() {
	g := psi.GenerateYeastLike(psi.Tiny, 11)
	st := psi.ComputeStats(g)
	fmt.Printf("stored graph: %d nodes, %d edges, %d labels\n\n", st.Nodes, st.Edges, st.Labels)

	m := psi.MustNewMatcher(psi.QuickSI, g) // the most ID-sensitive algorithm

	fmt.Println("running 6 random isomorphic instances of each query (QuickSI):")
	fmt.Printf("%-8s %10s %10s %9s\n", "query", "min", "max", "max/min")
	for i := 0; i < numQueries; i++ {
		q := psi.ExtractQuery(g, queryEdges, int64(500+i))
		min, max := time.Duration(1<<62), time.Duration(0)
		for j := 0; j < isoInstances; j++ {
			// A random rewriting is just a random node-ID permutation.
			inst, _ := psi.ApplyRandomRewriting(q, int64(100*i+j))
			t := timeMatch(m, inst)
			if t < min {
				min = t
			}
			if t > max {
				max = t
			}
		}
		fmt.Printf("query%-3d %10s %10s %8.1fx\n", i,
			min.Round(time.Microsecond), fmtT(max), float64(max)/float64(min))
	}

	fmt.Println("\nper-query best structured rewriting (vs original):")
	fmt.Printf("%-8s %10s %10s  %s\n", "query", "orig", "best", "rewriting")
	for i := 0; i < numQueries; i++ {
		q := psi.ExtractQuery(g, queryEdges, int64(500+i))
		orig := timeMatch(m, q)
		best, bestKind := orig, "Orig"
		for _, k := range psi.StructuredRewritings() {
			inst, _ := psi.ApplyRewriting(q, g, k)
			if t := timeMatch(m, inst); t < best {
				best, bestKind = t, k.String()
			}
		}
		fmt.Printf("query%-3d %10s %10s  %s\n", i, fmtT(orig), fmtT(best), bestKind)
	}
	fmt.Println("\ndifferent queries prefer different rewritings — exactly why the")
	fmt.Println("Ψ-framework races several of them instead of picking one up front.")
}

func timeMatch(m psi.Matcher, q *psi.Graph) time.Duration {
	ctx, cancel := context.WithTimeout(context.Background(), cap)
	defer cancel()
	start := time.Now()
	if _, err := m.Match(ctx, q, limit); err != nil {
		return cap
	}
	return time.Since(start)
}

func fmtT(d time.Duration) string {
	if d >= cap {
		return "KILLED"
	}
	return d.Round(time.Microsecond).String()
}
