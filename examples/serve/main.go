// Serve quickstart: stand up the HTTP serving subsystem over a dataset
// engine, hit it with real HTTP requests — a streamed NDJSON query, a
// repeat query answered from the shared result cache, a stats snapshot —
// and drain it gracefully. This is the whole lifecycle of cmd/psiserve in
// one program, against an in-process listener.
package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	psi "github.com/psi-graph/psi"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/server"
)

func main() {
	// A generated protein-interaction-style dataset, indexed by the full
	// filtering-index portfolio: every query races ftv vs grapes vs ggsx.
	ds := psi.GeneratePPI(psi.Tiny, 1)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Indexes: psi.IndexKinds(),
		Timeout: time.Minute, // per-query kill cap, reported as killed:true
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// The serving layer: admission control, per-request deadlines, NDJSON
	// streaming, the shared result cache, /stats + /metrics, drain.
	srv := server.New(eng, server.Options{
		MaxInFlight: 8,
		CacheSize:   64,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Println("serving on", base)

	// A query extracted from the dataset itself, serialized in the module's
	// text format — the /query request body.
	q := psi.ExtractQuery(ds[0], 4, 7)
	var body bytes.Buffer
	if err := graph.WriteGraph(&body, q); err != nil {
		log.Fatal(err)
	}

	// 1. Streamed: one NDJSON line per containing graph ID, as the index
	// race emits them, then a summary line.
	resp, err := http.Post(base+"/query?stream=1", "text/plain", bytes.NewReader(body.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	stream, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("streamed answer:\n%s", stream)

	// 2. The same query again, collected this time: the serving layer
	// remembered the completed stream, so this is a cache hit
	// ("cached":true) that never touches the engine.
	resp, err = http.Post(base+"/query", "text/plain", bytes.NewReader(body.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	cached, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("repeat query: %s", cached)

	// 3. Operational state: engine counters, per-index build provenance,
	// win tallies, cache effectiveness.
	resp, err = http.Get(base + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	stats, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("stats: %s", stats)

	// 4. Graceful drain: stop admitting, finish in-flight work, then close
	// the listener. A production server triggers this from SIGTERM.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
