// Quickstart: build a stored graph and a query in code, then answer the
// query through the psi.Engine — the plan/execute facade over the
// Ψ-framework — four ways: a collected race, a streamed race that reports
// embeddings as they are found, a first-result decision, and an explicit
// plan inspected before execution.
package main

import (
	"context"
	"fmt"
	"log"

	psi "github.com/psi-graph/psi"
)

func main() {
	// A small "molecule": two labeled rings sharing a bridge.
	//
	//	  1(N)---2(C)            labels: C=0, N=1, O=2
	//	 /         \
	//	0(C)        3(C)---4(O)
	//	 \         /
	//	  6(O)---5(N)
	g := psi.MustNewGraph("molecule",
		[]psi.Label{0, 1, 0, 0, 2, 1, 2},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {3, 5}, {5, 6}, {6, 0}})

	// Query: a C-N-C path.
	q := psi.MustNewGraph("c-n-c", []psi.Label{0, 1, 0}, [][2]int{{0, 1}, {1, 2}})

	// One long-lived engine serves every query: it owns the matchers, the
	// label frequencies the rewritings need, and the execution pool.
	eng, err := psi.NewEngine(g, psi.EngineOptions{
		Algorithms: []psi.Algorithm{psi.GraphQL, psi.SPath},
		Rewritings: []psi.Rewriting{psi.Orig, psi.DND},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	ctx := context.Background()

	// 1. A collected race: plan and execute in one call.
	res, err := eng.Query(ctx, q, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("race: %d embeddings, winner=%s in %v\n", res.Found, res.Winner, res.Elapsed)
	for _, e := range res.Embeddings {
		fmt.Printf("  query vertices -> graph vertices: %v\n", e)
	}

	// 2. The same race, streamed: each embedding arrives the moment the
	// adopted attempt finds it — no waiting for full enumeration.
	n := 0
	if _, err = eng.QueryStream(ctx, q, 1000, psi.SinkFunc(func(e psi.Embedding) bool {
		n++
		fmt.Printf("streamed #%d: %v\n", n, e)
		return true
	})); err != nil {
		log.Fatal(err)
	}

	// 3. A decision: the sink stops the race at the first embedding, and
	// every other attempt is cancelled immediately.
	first, err := eng.QueryStream(ctx, q, 1000, psi.SinkFunc(func(psi.Embedding) bool { return false }))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first-result: contained=%v after %v\n", first.Contained(), first.Elapsed)

	// 4. Plan and execute separately, to see what the engine chose.
	plan, err := eng.Plan(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plan: kind=%s over %d attempts\n", plan.Kind, len(plan.Attempts))
	res, err = eng.Execute(ctx, plan, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed: %d embeddings, winner=%s\n", res.Found, res.Winner)
}
