// Quickstart: build a stored graph and a query in code, then answer the
// query three ways — with a single algorithm, with a Ψ-framework portfolio
// racing two algorithms and two rewritings, and with an explicit race that
// reports which attempt won.
package main

import (
	"context"
	"fmt"
	"log"

	psi "github.com/psi-graph/psi"
)

func main() {
	// A small "molecule": two labeled rings sharing a bridge.
	//
	//	  1(N)---2(C)            labels: C=0, N=1, O=2
	//	 /         \
	//	0(C)        3(C)---4(O)
	//	 \         /
	//	  6(O)---5(N)
	g := psi.MustNewGraph("molecule",
		[]psi.Label{0, 1, 0, 0, 2, 1, 2},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {3, 5}, {5, 6}, {6, 0}})

	// Query: a C-N-C path.
	q := psi.MustNewGraph("c-n-c", []psi.Label{0, 1, 0}, [][2]int{{0, 1}, {1, 2}})

	// 1. One algorithm.
	gql := psi.MustNewMatcher(psi.GraphQL, g)
	embs, err := gql.Match(context.Background(), q, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GraphQL alone: %d embeddings\n", len(embs))
	for _, e := range embs {
		fmt.Printf("  query vertices -> graph vertices: %v\n", e)
	}

	// 2. A Ψ-framework portfolio as a drop-in Matcher.
	m := psi.NewPortfolioMatcher(g,
		[]psi.Algorithm{psi.GraphQL, psi.SPath},
		[]psi.Rewriting{psi.Orig, psi.DND})
	embs2, err := m.Match(context.Background(), q, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d embeddings (same answer, first finisher wins)\n", m.Name(), len(embs2))

	// 3. An explicit race, to see who won.
	attempts := psi.Portfolio(
		[]psi.Matcher{psi.MustNewMatcher(psi.VF2, g), psi.MustNewMatcher(psi.QuickSI, g)},
		[]psi.Rewriting{psi.Orig, psi.ILF},
	)
	res, err := psi.Race(context.Background(), g, q, 1000, attempts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explicit race over %d attempts: winner=%s elapsed=%v contained=%v\n",
		res.Attempts, res.Winner.Label(), res.Elapsed, res.Contained())
}
