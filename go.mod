module github.com/psi-graph/psi

go 1.24.0
