package psi_test

// Error-path coverage for ParseIndexSpec and Engine option validation: bad
// kinds, empty portfolios and duplicate index specs must fail fast — before
// any dataset extraction is paid for — with messages naming the offender.

import (
	"strings"
	"testing"

	psi "github.com/psi-graph/psi"
)

func TestParseIndexSpec(t *testing.T) {
	cases := []struct {
		spec    string
		want    []string
		wantErr string // substring of the expected error; empty means success
	}{
		{spec: "", want: nil},
		{spec: "race", want: []string{"ftv", "ggsx", "grapes"}},
		{spec: "grapes", want: []string{"grapes"}},
		{spec: " grapes , ggsx ", want: []string{"grapes", "ggsx"}},
		{spec: ",,", wantErr: "empty index spec"},
		{spec: "   ,", wantErr: "empty index spec"},
		{spec: "grapes,grapes", wantErr: "duplicate index kind"},
		{spec: "ftv,ggsx,ftv", wantErr: "duplicate index kind"},
		{spec: "btree", wantErr: "unknown index kind"},
		{spec: "grapes,btree", wantErr: `unknown index kind "btree"`},
	}
	for _, c := range cases {
		got, err := psi.ParseIndexSpec(c.spec)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseIndexSpec(%q) err = %v, want substring %q", c.spec, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseIndexSpec(%q) failed: %v", c.spec, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseIndexSpec(%q) = %v, want %v", c.spec, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseIndexSpec(%q) = %v, want %v", c.spec, got, c.want)
				break
			}
		}
	}
}

func TestNewEngineRejectsUnknownAlgorithm(t *testing.T) {
	g := psi.MustNewGraph("g", []psi.Label{0, 1}, [][2]int{{0, 1}})
	_, err := psi.NewEngine(g, psi.EngineOptions{
		Algorithms: []psi.Algorithm{psi.GraphQL, "NOPE"},
	})
	if err == nil || !strings.Contains(err.Error(), "NOPE") {
		t.Errorf("unknown algorithm error = %v, want it to name the offender", err)
	}
}

func TestNewDatasetEngineRejectsDuplicateIndexes(t *testing.T) {
	ds := []*psi.Graph{psi.MustNewGraph("g", []psi.Label{0, 1}, [][2]int{{0, 1}})}
	_, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Indexes: []string{"ftv", "ftv"},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate index kind") {
		t.Errorf("duplicate portfolio error = %v, want duplicate-kind rejection", err)
	}
}

func TestNewDatasetEngineRejectsBadKindInPortfolio(t *testing.T) {
	ds := []*psi.Graph{psi.MustNewGraph("g", []psi.Label{0, 1}, [][2]int{{0, 1}})}
	_, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Indexes: []string{"grapes", "btree"},
	})
	if err == nil || !strings.Contains(err.Error(), "btree") {
		t.Errorf("bad portfolio kind error = %v, want it to name the offender", err)
	}
}

func TestNewDatasetEngineRejectsBadPolicyBeforeBuilding(t *testing.T) {
	ds := []*psi.Graph{psi.MustNewGraph("g", []psi.Label{0, 1}, [][2]int{{0, 1}})}
	_, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Indexes:     []string{"ftv", "grapes"},
		IndexPolicy: "roundrobin",
	})
	if err == nil || !strings.Contains(err.Error(), "roundrobin") {
		t.Errorf("bad policy error = %v, want it to name the offender", err)
	}
}

// TestAnswerStreamReportsKill pins the no-silent-truncation contract: the
// result-less AnswerStream wrapper must surface a budget kill as ErrKilled,
// never as a nil error over a truncated ID stream.
func TestAnswerStreamReportsKill(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 1)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Index:   "ftv",
		Timeout: 1, // 1ns: every query is born past its deadline
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := psi.ExtractQuery(ds[0], 4, 7)
	err = eng.AnswerStream(t.Context(), q, func(int) bool { return true })
	if err != psi.ErrKilled {
		t.Errorf("AnswerStream under an expired budget returned %v, want ErrKilled", err)
	}
	res, err := eng.AnswerStreamResult(t.Context(), q, func(int) bool { return true })
	if err != nil || !res.Killed {
		t.Errorf("AnswerStreamResult = (%+v, %v), want a killed result", res, err)
	}
}

func TestExecuteRejectsForeignPlan(t *testing.T) {
	g := psi.MustNewGraph("g", []psi.Label{0, 1}, [][2]int{{0, 1}})
	a, err := psi.NewEngine(g, psi.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := psi.NewEngine(g, psi.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	q := psi.MustNewGraph("q", []psi.Label{0}, nil)
	p, err := a.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Execute(t.Context(), p, 1); err == nil {
		t.Error("Execute must reject a plan from a different engine")
	}
	if _, err := a.Execute(t.Context(), nil, 1); err == nil {
		t.Error("Execute must reject a nil plan")
	}
}
