package psi_test

// End-to-end checks that the parallel FTV pipeline is a pure wall-clock
// optimization: answers are byte-identical to the sequential pipeline across
// indexes, worker counts, and the cached wrapper.

import (
	"context"
	"testing"

	psi "github.com/psi-graph/psi"
)

func ftvFixtures(t *testing.T) ([]*psi.Graph, []psi.FTVIndex, []*psi.Graph) {
	t.Helper()
	ds := psi.GenerateSynthetic(psi.Tiny, 1)
	indexes := []psi.FTVIndex{psi.NewGGSX(ds), psi.NewGrapes(ds, 1), psi.NewPathIndex(ds)}
	var queries []*psi.Graph
	for i, g := range ds {
		queries = append(queries,
			psi.ExtractQuery(g, 4, int64(10+i)),
			psi.ExtractQuery(g, 9, int64(50+i)))
	}
	return ds, indexes, queries
}

func TestFTVAnswerParallelMatchesSequential(t *testing.T) {
	_, indexes, queries := ftvFixtures(t)
	ctx := context.Background()
	for _, x := range indexes {
		for qi, q := range queries {
			want, err := psi.FTVAnswer(ctx, x, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := psi.FTVAnswerParallel(ctx, x, q)
			if err != nil {
				t.Fatal(err)
			}
			assertSameIDs(t, x.Name(), qi, "FTVAnswerParallel", got, want)
			for _, w := range []int{1, 2, 3, 8} {
				got, err := psi.FTVAnswerWithOptions(ctx, x, q, psi.FTVAnswerOptions{MaxWorkers: w})
				if err != nil {
					t.Fatal(err)
				}
				assertSameIDs(t, x.Name(), qi, "FTVAnswerWithOptions", got, want)
			}
		}
	}
}

func TestCachedFTVParallelMatchesSequential(t *testing.T) {
	_, indexes, queries := ftvFixtures(t)
	ctx := context.Background()
	x := indexes[0]
	seq := psi.NewCachedFTV(x, 0)
	par := psi.NewCachedFTVParallel(x, 0)
	// Run the workload twice so the second pass exercises cache hits and
	// containment pruning in both wrappers.
	for pass := 0; pass < 2; pass++ {
		for qi, q := range queries {
			want, err := seq.Answer(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := par.Answer(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			assertSameIDs(t, x.Name(), qi, "CachedFTVParallel", got, want)
		}
	}
	ss, ps := seq.Stats(), par.Stats()
	if ss != ps {
		t.Errorf("cache statistics diverged: sequential %+v, parallel %+v", ss, ps)
	}
}

func assertSameIDs(t *testing.T, index string, qi int, what string, got, want []int) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s query %d: %s = %v, want %v", index, qi, what, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s query %d: %s = %v, want %v", index, qi, what, got, want)
		}
	}
}
