package psi_test

// Tests for the traffic-aware auto policy: byte-parity with always-race at
// the dataset (IndexAuto) and stored-graph (ModeAuto) layers, the policy
// decision surface (Plan.Decision, QueryResult.Policy, counters,
// PolicyStats), and the evidence rules — a budget-killed solo counts
// against the learned arm, a client disconnect does not.

import (
	"context"
	"testing"
	"time"

	psi "github.com/psi-graph/psi"
)

// autoParityEngines builds an auto-policy engine and an always-race engine
// over the same portfolio.
func autoParityEngines(t *testing.T, ds []*psi.Graph, opts psi.EngineOptions) (auto, race *psi.Engine) {
	t.Helper()
	raceOpts := opts
	raceOpts.IndexPolicy = psi.IndexRace
	race, err := psi.NewDatasetEngine(ds, raceOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(race.Close)
	opts.IndexPolicy = psi.IndexAuto
	auto, err = psi.NewDatasetEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(auto.Close)
	return auto, race
}

// TestDatasetEngineAutoMatchesRace is the parity fuzz suite for the learned
// policy: across enough passes that the bandit warms up, goes solo, hits
// staleness re-races and keeps learning, every answer must stay
// byte-identical to the always-race engine — on both the collecting and the
// streaming path.
func TestDatasetEngineAutoMatchesRace(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 4)
	opts := psi.EngineOptions{
		Indexes:        []string{"ftv", "grapes", "ggsx"},
		AutoMinSamples: 2,
		AutoRaceEvery:  5, // exercise staleness re-races inside the run
	}
	auto, race := autoParityEngines(t, ds, opts)
	var queries []*psi.Graph
	for seed := int64(1); seed <= 8; seed++ {
		queries = append(queries, psi.ExtractQuery(ds[int(seed)%len(ds)], 3+int(seed)%3, seed))
	}
	for pass := 0; pass < 6; pass++ {
		for qi, q := range queries {
			want, err := race.Query(context.Background(), q, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, err := auto.Query(context.Background(), q, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.GraphIDs) != len(want.GraphIDs) {
				t.Fatalf("pass %d q%d: auto answered %v, race %v", pass, qi, got.GraphIDs, want.GraphIDs)
			}
			for i := range want.GraphIDs {
				if got.GraphIDs[i] != want.GraphIDs[i] {
					t.Fatalf("pass %d q%d: auto answered %v, race %v", pass, qi, got.GraphIDs, want.GraphIDs)
				}
			}
			if got.Policy == nil {
				t.Fatalf("pass %d q%d: auto result missing policy decision", pass, qi)
			}
			var streamed []int
			if err := auto.AnswerStream(context.Background(), q, func(id int) bool {
				streamed = append(streamed, id)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(streamed) != len(want.GraphIDs) {
				t.Fatalf("pass %d q%d: auto streamed %v, race %v", pass, qi, streamed, want.GraphIDs)
			}
			for i := range streamed {
				if streamed[i] != want.GraphIDs[i] {
					t.Fatalf("pass %d q%d: auto streamed %v, race %v", pass, qi, streamed, want.GraphIDs)
				}
			}
		}
	}
	c := auto.Counters()
	if c.PolicySolo == 0 {
		t.Errorf("auto engine never went solo over %d queries: %+v", c.Queries, c)
	}
	if c.PolicyRaces == 0 {
		t.Errorf("auto engine never raced (warmup must race): %+v", c)
	}
	if c.IndexAttempts >= c.Queries*3 {
		t.Errorf("auto started %d pipelines for %d queries — no cheaper than always-race", c.IndexAttempts, c.Queries)
	}
	snap, ok := auto.PolicyStats()
	if !ok || len(snap.Arms) != 3 || snap.Classes == 0 {
		t.Errorf("PolicyStats = %+v, %v", snap, ok)
	}
	if _, ok := race.PolicyStats(); ok {
		t.Error("race-policy engine must not report policy stats")
	}
}

// TestDatasetEngineAutoPolicySurface checks the decision plumbing: the plan
// carries the verdict, the policy degrades to fixed with one index, and the
// mode/policy parsers accept auto.
func TestDatasetEngineAutoPolicySurface(t *testing.T) {
	ds := raceFixtureDataset()
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Indexes: []string{"grapes", "ggsx"}, IndexPolicy: psi.IndexAuto,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.IndexPolicy() != psi.IndexAuto {
		t.Fatalf("IndexPolicy = %q, want auto", eng.IndexPolicy())
	}
	p, err := eng.Plan(raceFixtureQueries()[0])
	if err != nil {
		t.Fatal(err)
	}
	if p.Decision == nil || p.Decision.Class == "" || p.Decision.Solo {
		t.Fatalf("first plan decision = %+v, want a warmup race with a class", p.Decision)
	}
	res, err := eng.Execute(context.Background(), p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != p.Decision {
		t.Error("result must echo the plan's policy decision")
	}

	// One configured index cannot race: auto degrades to fixed, keeps the
	// cache, and plans carry no decision.
	single, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Index: "ftv", IndexPolicy: psi.IndexAuto})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Close()
	if single.IndexPolicy() != psi.IndexFixed {
		t.Errorf("single-index auto policy = %q, want fixed", single.IndexPolicy())
	}
	if _, ok := single.PolicyStats(); ok {
		t.Error("degraded engine must not report policy stats")
	}

	if m, err := psi.ParseMode("auto"); err != nil || m != psi.ModeAuto {
		t.Errorf("ParseMode(auto) = %v, %v", m, err)
	}
}

// TestEngineModeAutoMatchesRace is the NFV side of the parity suite: an
// auto-mode engine must find exactly the embeddings the racing engine finds
// (compared as counts — race winners legitimately vary in emission order).
func TestEngineModeAutoMatchesRace(t *testing.T) {
	g := psi.GenerateYeastLike(psi.Tiny, 6)
	auto, err := psi.NewEngine(g, psi.EngineOptions{
		Mode:           psi.ModeAuto,
		AutoMinSamples: 2,
		SoloBudget:     time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer auto.Close()
	ref := psi.MustNewMatcher(psi.VF2, g)
	for pass := 0; pass < 4; pass++ {
		for seed := int64(20); seed < 26; seed++ {
			q := psi.ExtractQuery(g, 4+int(seed)%3, seed)
			want, err := ref.Match(context.Background(), q, 10000)
			if err != nil {
				t.Fatal(err)
			}
			res, err := auto.Query(context.Background(), q, 10000)
			if err != nil {
				t.Fatal(err)
			}
			if res.Found != len(want) {
				t.Fatalf("pass %d seed %d: auto found %d, reference %d", pass, seed, res.Found, len(want))
			}
			for _, e := range res.Embeddings {
				if err := psi.VerifyEmbedding(q, g, e); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	c := auto.Counters()
	if c.PolicySolo == 0 || c.PredictedSolo == 0 {
		t.Errorf("ModeAuto never ran a learned solo: %+v", c)
	}
	if snap, ok := auto.PolicyStats(); !ok || len(snap.Arms) != len(auto.Attempts()) {
		t.Errorf("PolicyStats = %+v, %v", snap, ok)
	}
}

// TestDatasetEngineAutoSoloOverrunIsKillEvidence is the first half of the
// evidence regression: a solo run killed by the solo budget must fall back
// to a full race (answers intact) AND be recorded against the arm.
func TestDatasetEngineAutoSoloOverrunIsKillEvidence(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 4)
	opts := psi.EngineOptions{
		Indexes:        []string{"grapes", "ggsx"},
		AutoMinSamples: 1,
		AutoRaceEvery:  -1,
		SoloBudget:     time.Nanosecond, // every solo overruns instantly
	}
	auto, race := autoParityEngines(t, ds, opts)
	q := psi.ExtractQuery(ds[0], 3, 31)
	want, err := race.Query(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		got, err := auto.Query(context.Background(), q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.GraphIDs) != len(want.GraphIDs) {
			t.Fatalf("iteration %d: auto answered %v, race %v", i, got.GraphIDs, want.GraphIDs)
		}
	}
	c := auto.Counters()
	if c.Fallbacks == 0 {
		t.Fatalf("nanosecond solo budget never fell back: %+v", c)
	}
	snap, _ := auto.PolicyStats()
	var kills int64
	for _, a := range snap.Arms {
		kills += a.Kills
	}
	if kills == 0 {
		t.Errorf("solo overruns recorded no kill evidence: %+v", snap)
	}
}

// TestDatasetEngineAutoCancelIsNotEvidence is the second half: a caller
// cancellation (client disconnect) must leave the learned statistics — and
// the solo eligibility of the class — completely untouched.
func TestDatasetEngineAutoCancelIsNotEvidence(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 4)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Indexes:        []string{"grapes", "ggsx"},
		IndexPolicy:    psi.IndexAuto,
		AutoMinSamples: 1,
		AutoRaceEvery:  -1,
		Timeout:        time.Minute, // budgeted engine: the kill path exists but must not fire
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := psi.ExtractQuery(ds[0], 3, 37)
	// Train until the class plans solo.
	solo := false
	for i := 0; i < 8 && !solo; i++ {
		res, err := eng.Query(context.Background(), q, 0)
		if err != nil {
			t.Fatal(err)
		}
		solo = res.Policy != nil && res.Policy.Solo
	}
	if !solo {
		t.Fatal("class never became solo-eligible")
	}
	before, _ := eng.PolicyStats()

	// Disconnected clients: already-cancelled contexts on both paths.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 5; i++ {
		if _, err := eng.Query(cancelled, q, 0); err == nil {
			t.Fatal("cancelled query must error")
		}
		if err := eng.AnswerStream(cancelled, q, func(int) bool { return true }); err == nil {
			t.Fatal("cancelled stream must error")
		}
	}

	after, _ := eng.PolicyStats()
	if after.Escalated != 0 {
		t.Errorf("cancellations escalated %d classes", after.Escalated)
	}
	for i := range after.Arms {
		if after.Arms[i].Kills != before.Arms[i].Kills {
			t.Errorf("arm %q kills %d -> %d across cancellations",
				after.Arms[i].Name, before.Arms[i].Kills, after.Arms[i].Kills)
		}
	}
	// The class must still plan solo afterwards.
	res, err := eng.Query(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy == nil || !res.Policy.Solo {
		t.Errorf("post-cancellation decision = %+v, want solo", res.Policy)
	}
}
