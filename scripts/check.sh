#!/usr/bin/env bash
# check.sh — the repo's CI gate: formatting, vet, and the full test suite
# under the race detector. Run from the repository root (or anywhere; the
# script cds to its own repo). Fails fast with a non-zero exit on the first
# broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "All checks passed."
