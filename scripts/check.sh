#!/usr/bin/env bash
# check.sh — the repo's CI gate: formatting, vet, full compilation
# (including cmd/ and examples/, which have no tests and would otherwise
# only break at release time), the full test suite under the race
# detector, and a one-iteration benchmark smoke run so benchmark-only
# regressions (compile errors, panics) surface here rather than at
# measurement time. Run from the repository root (or anywhere; the script
# cds to its own repo). Fails fast with a non-zero exit on the first
# broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race -shuffle=on =="
# -shuffle=on randomizes test (and subtest-parent) execution order so
# order-dependent tests fail here instead of flaking later; the shuffle
# seed is printed on failure for reproduction.
go test -race -shuffle=on ./...

echo "== bench smoke (1 iteration) =="
go test -run='^$' -bench=. -benchtime=1x .

echo "== index build + race smoke =="
# Builds every registered filtering index over a generated dataset and
# races them per query through the Engine facade; catches registry,
# build-determinism and race-plumbing breakage that unit tests with stub
# indexes would miss.
go run ./cmd/psibench -engine -index=race -scale=tiny -queries 4

echo "== shard smoke =="
# One raced query over a K=4 sharded portfolio (exercises the ordered merge
# under the index race), then the K=1/2/4/8 sweep on both dataset shapes,
# which exits non-zero if any K's answers diverge from the monolithic K=1
# engine — the sharding parity guarantee, enforced end to end.
go run ./cmd/psibench -engine -index=race -shards=4 -scale=tiny -queries 2
go run ./cmd/psibench -shardsweep -index=ftv -scale=tiny -queries 2

echo "== policy smoke =="
# A short three-policy sweep (always-race, solo-best, auto) through the
# serving stack. The sweep asserts before measuring that every query's
# auto and solo-best answers are identical to the always-race engine's,
# and exits non-zero on any divergence — the auto-parity guarantee,
# enforced end to end.
go run ./cmd/psibench -policysweep -scale=tiny -queries 4 -dur 150ms > /dev/null

echo "== coverage gate (internal/index, internal/rewrite, internal/predict, internal/metrics, internal/live, internal/snapshot) =="
# Per-package coverage for the packages this repo's correctness arguments
# lean on hardest (the filtering/sharding contract, the rewriting
# round-trip, the learned planning policy's evidence rules, the
# operational counters, the epoch-versioned mutation store, and the
# persistent snapshot format); regressing below the floor fails the gate.
cov_out=$(go test -cover ./internal/index ./internal/rewrite ./internal/predict ./internal/metrics ./internal/live ./internal/snapshot)
echo "$cov_out"
echo "$cov_out" | awk '
    /coverage:/ {
        for (i = 1; i <= NF; i++) if ($i ~ /%$/) {
            pct = $i; gsub(/%/, "", pct)
            if (pct + 0 < 85) { print "coverage below 85% floor: " $0; bad = 1 }
        }
    }
    END { exit bad }
' || exit 1

echo "== serve smoke =="
# End-to-end over the real binary: start psiserve on a random port over a
# tiny generated dataset, issue one streamed and one cached query with
# curl, then SIGTERM and assert a graceful zero-exit drain. Catches wiring
# breakage (flags, listener, portfile, signal handling) that the
# internal/server unit tests, which drive the handler in-process, cannot.
tmpdir=$(mktemp -d)
serve_pid=""
mserve_pid=""
sserve_pid=""
# `|| true` on each clause: under set -e a failing command at the end of the
# trap's AND-list would override the script's real exit status.
trap '{ [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true; } ; { [ -n "$mserve_pid" ] && kill "$mserve_pid" 2>/dev/null || true; } ; { [ -n "$sserve_pid" ] && kill "$sserve_pid" 2>/dev/null || true; } ; rm -rf "$tmpdir" || true' EXIT
go build -o "$tmpdir/psiserve" ./cmd/psiserve
go run ./cmd/psigen -dataset ppi -scale tiny -seed 1 \
    -out "$tmpdir/ds.txt" -queries 1 -sizes 4 -qout "$tmpdir/q.txt"
"$tmpdir/psiserve" -data "$tmpdir/ds.txt" -index ftv \
    -addr 127.0.0.1:0 -portfile "$tmpdir/port" 2> "$tmpdir/serve.log" &
serve_pid=$!
for _ in $(seq 100); do [ -s "$tmpdir/port" ] && break; sleep 0.1; done
port=$(cat "$tmpdir/port")
streamed=$(curl -sf -X POST --data-binary @"$tmpdir/q.txt" \
    "http://127.0.0.1:$port/query?stream=1")
echo "$streamed" | grep -q '"done":true' || {
    echo "serve smoke: streamed query missing summary line: $streamed" >&2
    exit 1
}
cached=$(curl -sf -X POST --data-binary @"$tmpdir/q.txt" \
    "http://127.0.0.1:$port/query")
echo "$cached" | grep -q '"cached":true' || {
    echo "serve smoke: repeat query not served from cache: $cached" >&2
    exit 1
}
curl -sf "http://127.0.0.1:$port/metrics" | grep -q 'psi_server_admitted_total 2' || {
    echo "serve smoke: metrics did not count both queries" >&2
    exit 1
}
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "serve smoke: psiserve did not exit 0 on SIGTERM" >&2
    cat "$tmpdir/serve.log" >&2
    exit 1
fi
grep -q "drained cleanly" "$tmpdir/serve.log" || {
    echo "serve smoke: no clean drain recorded" >&2
    cat "$tmpdir/serve.log" >&2
    exit 1
}

echo "== snapshot smoke (save, corrupt, cold-start parity) =="
# The coldstart bench exits non-zero if the cold-started engine's answers
# diverge from the fresh build or the load is not at least 10x faster, and
# leaves the snapshot on disk for the rest of the stage. Then the fail-closed
# guarantee: flip one byte in the middle of the file and the load must be
# refused with a checksum error, never served from a corrupt state. Finally a
# clean cold-start through the real binary: psiserve -snapshot with no
# -data/-gen must come up from the file alone and answer a query.
go run ./cmd/psibench -coldstart -scale=tiny -queries 4 -snapfile "$tmpdir/cs.psisnap" > /dev/null
cp "$tmpdir/cs.psisnap" "$tmpdir/corrupt.psisnap"
size=$(wc -c < "$tmpdir/corrupt.psisnap")
printf '\xff' | dd of="$tmpdir/corrupt.psisnap" bs=1 seek=$((size / 2)) conv=notrunc 2> /dev/null
if corrupt_log=$("$tmpdir/psiserve" -snapshot "$tmpdir/corrupt.psisnap" -addr 127.0.0.1:0 2>&1); then
    echo "snapshot smoke: corrupt snapshot was accepted" >&2
    exit 1
fi
echo "$corrupt_log" | grep -qi "checksum" || {
    echo "snapshot smoke: corrupt-load error does not mention the checksum: $corrupt_log" >&2
    exit 1
}
"$tmpdir/psiserve" -snapshot "$tmpdir/cs.psisnap" \
    -addr 127.0.0.1:0 -portfile "$tmpdir/sport" 2> "$tmpdir/sserve.log" &
sserve_pid=$!
for _ in $(seq 100); do [ -s "$tmpdir/sport" ] && break; sleep 0.1; done
sport=$(cat "$tmpdir/sport")
snap_ans=$(curl -sf -X POST --data-binary @"$tmpdir/q.txt" \
    "http://127.0.0.1:$sport/query?cache=0")
echo "$snap_ans" | grep -q '"graph_ids"' || {
    echo "snapshot smoke: cold-started server gave no answer: $snap_ans" >&2
    cat "$tmpdir/sserve.log" >&2
    exit 1
}
kill -TERM "$sserve_pid"
if ! wait "$sserve_pid"; then
    echo "snapshot smoke: cold-started psiserve did not exit 0 on SIGTERM" >&2
    cat "$tmpdir/sserve.log" >&2
    exit 1
fi
sserve_pid=""

echo "== churn smoke (mutable engine, race-enabled binary) =="
# First the churn bench, which exits non-zero if the churned engine's
# answers diverge from a from-scratch rebuild or the per-mutation speedup
# falls under the 10x floor. Then mutable serving end to end over a
# race-enabled psiserve: start with -mutable (the engine builds in the
# background), poll /healthz until it flips from "building" to "ok",
# ingest the query graph itself, assert the very next answer grows, delete
# it again, and assert the answer returns byte-identically to the
# pre-ingest baseline before a clean SIGTERM drain.
go run ./cmd/psibench -churn -index=ftv -shards=4 -scale=tiny -queries 2 > /dev/null
go build -race -o "$tmpdir/psiserve_race" ./cmd/psiserve
"$tmpdir/psiserve_race" -data "$tmpdir/ds.txt" -index ftv -mutable -shards 2 \
    -addr 127.0.0.1:0 -portfile "$tmpdir/mport" 2> "$tmpdir/mserve.log" &
mserve_pid=$!
for _ in $(seq 100); do [ -s "$tmpdir/mport" ] && break; sleep 0.1; done
mport=$(cat "$tmpdir/mport")
for _ in $(seq 300); do
    curl -sf "http://127.0.0.1:$mport/healthz" > /dev/null && break
    sleep 0.2
done
curl -sf "http://127.0.0.1:$mport/healthz" | grep -q '"status":"ok"' || {
    echo "churn smoke: server never became ready" >&2
    cat "$tmpdir/mserve.log" >&2
    exit 1
}
ids() { sed -n 's/.*"graph_ids":\[\([^]]*\)\].*/\1/p'; }
base_ids=$(curl -sf -X POST --data-binary @"$tmpdir/q.txt" \
    "http://127.0.0.1:$mport/query?cache=0" | ids)
ingest=$(curl -sf -X POST --data-binary @"$tmpdir/q.txt" "http://127.0.0.1:$mport/graphs")
handle=$(echo "$ingest" | sed -n 's/.*"handles":\[\([0-9]*\)\].*/\1/p')
[ -n "$handle" ] || {
    echo "churn smoke: ingest returned no handle: $ingest" >&2
    exit 1
}
grown_ids=$(curl -sf -X POST --data-binary @"$tmpdir/q.txt" \
    "http://127.0.0.1:$mport/query?cache=0" | ids)
[ "$grown_ids" != "$base_ids" ] || {
    echo "churn smoke: ingested graph invisible to the next query ($grown_ids)" >&2
    exit 1
}
curl -sf -X DELETE "http://127.0.0.1:$mport/graphs/$handle" > /dev/null
after_ids=$(curl -sf -X POST --data-binary @"$tmpdir/q.txt" \
    "http://127.0.0.1:$mport/query?cache=0" | ids)
[ "$after_ids" = "$base_ids" ] || {
    echo "churn smoke: answer after delete ($after_ids) != pre-ingest baseline ($base_ids)" >&2
    exit 1
}
curl -sf "http://127.0.0.1:$mport/metrics" | grep -q 'psi_engine_graphs_added_total 1' || {
    echo "churn smoke: metrics did not count the ingest" >&2
    exit 1
}
kill -TERM "$mserve_pid"
if ! wait "$mserve_pid"; then
    echo "churn smoke: psiserve did not exit 0 on SIGTERM" >&2
    cat "$tmpdir/mserve.log" >&2
    exit 1
fi
mserve_pid=""
grep -q "drained cleanly" "$tmpdir/mserve.log" || {
    echo "churn smoke: no clean drain recorded" >&2
    cat "$tmpdir/mserve.log" >&2
    exit 1
}

echo "All checks passed."
