#!/usr/bin/env bash
# check.sh — the repo's CI gate: formatting, vet, full compilation
# (including cmd/ and examples/, which have no tests and would otherwise
# only break at release time), the full test suite under the race
# detector, and a one-iteration benchmark smoke run so benchmark-only
# regressions (compile errors, panics) surface here rather than at
# measurement time. Run from the repository root (or anywhere; the script
# cds to its own repo). Fails fast with a non-zero exit on the first
# broken stage.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test -race =="
go test -race ./...

echo "== bench smoke (1 iteration) =="
go test -run='^$' -bench=. -benchtime=1x .

echo "== index build + race smoke =="
# Builds every registered filtering index over a generated dataset and
# races them per query through the Engine facade; catches registry,
# build-determinism and race-plumbing breakage that unit tests with stub
# indexes would miss.
go run ./cmd/psibench -engine -index=race -scale=tiny -queries 4

echo "All checks passed."
