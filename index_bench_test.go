package psi_test

// Benchmarks for the unified filtering-index layer: per-kind build cost
// (pooled extraction), and the index race against a fixed single index on
// dataset containment queries. BENCH_index.json records the baseline
// together with filter precision and race win counts.

import (
	"context"
	"testing"

	psi "github.com/psi-graph/psi"
)

func indexBenchFixture(b *testing.B) ([]*psi.Graph, []*psi.Graph) {
	b.Helper()
	ds := psi.GeneratePPI(psi.Tiny, 1)
	var queries []*psi.Graph
	for i, g := range ds {
		queries = append(queries,
			psi.ExtractQuery(g, 4, int64(100+i)),
			psi.ExtractQuery(g, 8, int64(200+i)))
	}
	return ds, queries
}

func benchIndexBuild(b *testing.B, kind string) {
	ds, _ := indexBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x, err := psi.BuildIndex(context.Background(), kind, ds, 1)
		if err != nil {
			b.Fatal(err)
		}
		x.Close()
	}
}

func BenchmarkIndexBuildFTV(b *testing.B)    { benchIndexBuild(b, "ftv") }
func BenchmarkIndexBuildGrapes(b *testing.B) { benchIndexBuild(b, "grapes") }
func BenchmarkIndexBuildGGSX(b *testing.B)   { benchIndexBuild(b, "ggsx") }

// BenchmarkIndexRaceAnswer runs the decision workload through a dataset
// engine racing all three filtering indexes per query.
func BenchmarkIndexRaceAnswer(b *testing.B) {
	ds, queries := indexBenchFixture(b)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Indexes: []string{"ftv", "grapes", "ggsx"},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := eng.Query(context.Background(), q, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexFixedAnswer is the single-index baseline the race is
// compared against (Grapes, no result cache so every query runs live).
func BenchmarkIndexFixedAnswer(b *testing.B) {
	ds, queries := indexBenchFixture(b)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Index:     "grapes",
		CacheSize: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		if _, err := eng.Query(context.Background(), q, 0); err != nil {
			b.Fatal(err)
		}
	}
}
