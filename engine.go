package psi

// Engine is the serving-shaped facade over the Ψ-framework: a long-lived
// object that owns everything a query needs — the stored graph or dataset,
// prebuilt matchers, label frequencies, the FTV index and its iGQ-style
// result cache, the execution pool, and the prediction policy — and splits
// query processing into an explicit Plan step (attempt-portfolio selection)
// and an Execute step (running the plan under a per-query deadline).
// Free-function callers keep working; the Engine is where a server lives.

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/psi-graph/psi/internal/core"
	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/index"
	"github.com/psi-graph/psi/internal/live"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/metrics"
	"github.com/psi-graph/psi/internal/predict"
)

// Streaming types, re-exported from the internal substrate.
type (
	// Sink receives embeddings as a streaming search finds them; Emit
	// returning false stops the search.
	Sink = match.Sink
	// SinkFunc adapts a function to the Sink interface.
	SinkFunc = match.SinkFunc
	// StreamMatcher is the streaming face of a Matcher. All matchers
	// built by this module implement it.
	StreamMatcher = match.StreamMatcher
)

// MatchStream streams m's embeddings for q into sink: natively when m
// implements StreamMatcher (every matcher built by this module does),
// otherwise by materializing Match's slice and replaying it.
func MatchStream(ctx context.Context, m Matcher, q *Graph, limit int, sink Sink) error {
	return match.Stream(ctx, m, q, limit, sink)
}

// Mode selects the Engine's planning policy.
type Mode string

const (
	// ModeRace races the full attempt portfolio for every query — the
	// paper's Ψ-framework proper.
	ModeRace Mode = "race"
	// ModePredict races during a warmup phase, then plans only the
	// predicted-best attempt per query (§9 future work), falling back to a
	// full race when the prediction overruns its solo budget.
	ModePredict Mode = "predict"
	// ModeSingle always plans the portfolio's first attempt alone — the
	// fixed single-algorithm baseline the paper races against.
	ModeSingle Mode = "single"
	// ModeAuto plans with the traffic-aware bandit policy: per query class
	// it runs the learned best attempt solo and escalates to a full race
	// on unfamiliar classes, on staleness, or after a budget-killed solo.
	ModeAuto Mode = "auto"
)

// ParseMode converts a -mode flag value into a Mode.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case ModeRace, ModePredict, ModeSingle, ModeAuto:
		return Mode(s), nil
	case "":
		return ModeRace, nil
	}
	return "", fmt.Errorf("psi: unknown mode %q (want race, predict, single or auto)", s)
}

// EngineOptions configures NewEngine and NewDatasetEngine. The zero value
// is a sensible default: a race of GraphQL and sPath over Orig and DND,
// no deadline, the shared CPU-sized pool.
type EngineOptions struct {
	// Algorithms are the portfolio's matching algorithms (NFV engines);
	// empty means {GraphQL, SPath}.
	Algorithms []Algorithm
	// Rewritings are the raced query rewritings; empty means {Orig, DND}.
	Rewritings []Rewriting
	// Mode is the planning policy; empty means ModeRace.
	Mode Mode
	// Timeout is the per-query deadline enforced by Execute through
	// metrics.Budget — the paper's kill cap. 0 disables the deadline.
	Timeout time.Duration
	// Workers sizes a dedicated execution pool owned (and closed) by the
	// Engine; 0 shares the process-wide CPU-sized pool.
	Workers int
	// Validate re-checks every winner embedding before surfacing it; for
	// tests and debugging.
	Validate bool

	// WarmupRaces is how many initial queries ModePredict races in full to
	// gather training signal; 0 means 8.
	WarmupRaces int
	// SoloBudget caps a predicted (or auto-policy) attempt's solo run
	// before it falls back to a full race; 0 means 50ms.
	SoloBudget time.Duration

	// AutoMinSamples is how many successful observations a query class
	// needs before the auto policy (ModeAuto / IndexAuto) may run it solo;
	// 0 means 3.
	AutoMinSamples int
	// AutoRaceEvery forces every Nth auto-policy decision of a class to a
	// full re-race so the learned statistics cannot go stale; 0 means 16,
	// negative disables staleness races.
	AutoRaceEvery int

	// Index selects the FTV index for dataset engines: "grapes"
	// (default), "ggsx" or "ftv" (the flat path index). Ignored when
	// Indexes is set.
	Index string
	// Indexes is the filtering-index portfolio of dataset engines: each
	// entry names a registered index kind ("ftv", "grapes", "ggsx").
	// With two or more entries the engine builds every index and, under
	// the race policy, runs them against each other per query — the
	// paper's parallel use of alternative algorithms applied to the
	// filtering stage. Empty falls back to Index.
	Indexes []string
	// IndexPolicy says how a dataset engine uses its portfolio:
	// IndexRace (default with ≥ 2 indexes) races every index per query;
	// IndexFixed (default with 1) always consults the first; IndexAuto
	// learns per query class which index to run solo and races only when
	// uncertain (unfamiliar class, staleness, or a budget-killed solo).
	IndexPolicy string
	// IndexWorkers is the Grapes verification worker count (the paper's
	// Grapes/1 vs Grapes/4); 0 means 1. Other kinds ignore it.
	IndexWorkers int
	// Shards partitions the dataset of dataset engines into K round-robin
	// shards, giving every index in the portfolio one sub-index per shard
	// behind an ascending-ID ordered merge; answers are byte-identical to
	// the monolithic engine at any K. <= 1 (and NFV engines) stay
	// monolithic. The count is clamped to the dataset size.
	Shards int
	// CacheSize bounds the iGQ-style result cache of dataset engines:
	// 0 means 128 entries, negative disables the cache. The cache layers
	// over a single index's pipeline, so it only applies under the fixed
	// policy; a racing engine answers every query live.
	CacheSize int
	// Mutable turns a dataset engine into a live one: AddGraph, RemoveGraph
	// and ReplaceGraph become available, every mutation bumps the dataset
	// epoch and installs a fresh index snapshot, and in-flight queries keep
	// reading the snapshot they started on (snapshot isolation — answers
	// stay byte-identical to a from-scratch build of whichever epoch they
	// executed against). Unlike static engines the shard count is not
	// clamped to the initial dataset size, since the dataset grows.
	Mutable bool
	// CompactEvery is the per-shard tombstone threshold of a mutable
	// engine: after this many deletions a shard sheds its dead graphs'
	// features with a shard-local rebuild. 0 means live.DefaultCompactEvery
	// (8); ignored for static engines.
	CompactEvery int
	// Snapshot, when set, constructs the dataset engine by loading a
	// persisted snapshot (written by SaveSnapshot) instead of extracting
	// features from a dataset: pass a nil dataset to NewDatasetEngine. The
	// snapshot dictates the dataset, index portfolio, shard count and
	// (for mutable engines) the full mutation state; Indexes/Index, Shards
	// and Mutable must be left zero or agree with the snapshot — a
	// mismatch is an error, never a silent rebuild. Runtime knobs
	// (IndexPolicy, IndexWorkers, CacheSize, CompactEvery, Workers, mode
	// and budget options) apply as usual.
	Snapshot string
}

// Index policies for EngineOptions.IndexPolicy and Plan.IndexPolicy.
const (
	// IndexRace races every configured filtering index per query; the
	// first index to emit a verified candidate wins and the rest are
	// cancelled.
	IndexRace = "race"
	// IndexFixed always consults the portfolio's first index.
	IndexFixed = "fixed"
	// IndexAuto runs the learned best index solo per query class, racing
	// the full portfolio only when uncertain. Answers are identical to
	// IndexRace in every case: all indexes are exact, so any arm computes
	// the same ascending graph IDs.
	IndexAuto = "auto"
)

// ParseIndexSpec converts an -index flag value into an index-kind list:
// a registered kind name ("ftv", "grapes", "ggsx"), a comma-separated
// combination, or "race" for the full portfolio of all registered kinds.
// Unregistered kinds and duplicate entries are rejected here, before any
// dataset is loaded or index built, so a misspelt flag fails in
// microseconds rather than after a multi-minute extraction.
func ParseIndexSpec(s string) ([]string, error) {
	switch s {
	case "":
		return nil, nil
	case IndexRace:
		return index.Kinds(), nil
	}
	var kinds []string
	seen := map[string]bool{}
	for _, k := range strings.Split(s, ",") {
		k = strings.TrimSpace(k)
		if k == "" {
			continue
		}
		if seen[k] {
			return nil, fmt.Errorf("psi: duplicate index kind %q in spec %q", k, s)
		}
		seen[k] = true
		kinds = append(kinds, k)
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("psi: empty index spec %q", s)
	}
	registered := index.Kinds()
	for _, k := range kinds {
		if !slices.Contains(registered, k) {
			return nil, fmt.Errorf("psi: unknown index kind %q (registered: %v)", k, registered)
		}
	}
	return kinds, nil
}

// Engine is a long-lived query-serving object. Construct with NewEngine
// (single stored graph, NFV) or NewDatasetEngine (multi-graph dataset,
// FTV); both are safe for concurrent queries. Close releases the dedicated
// pool when one was requested.
type Engine struct {
	mode   Mode
	budget metrics.Budget
	pool   *exec.Pool
	owned  bool

	// Operational counters, bumped by every executed query and snapshotted
	// by Counters — the feed for a serving layer's /metrics endpoint.
	counters metrics.Counters
	winMu    sync.Mutex
	wins     map[string]int64

	// NFV state.
	g        *Graph
	matchers []Matcher
	attempts []Attempt
	racer    *core.Racer
	model    *predict.Predictor
	warmup   int64
	solo     time.Duration
	seen     atomic.Int64

	// Auto-policy state (ModeAuto / IndexAuto): the per-query-class
	// solo-vs-race bandit, nil under every other policy.
	bandit *predict.Bandit

	// FTV state. The epoch-versioned part — dataset, index portfolio,
	// racers, result cache — lives in an immutable dsState behind an atomic
	// pointer: static engines install exactly one for their lifetime, while
	// mutable engines install a fresh one per mutation so queries in flight
	// keep the state they acquired (snapshot isolation). ixPolicy, kinds
	// and the learned policy state persist across epochs.
	dsst      atomic.Pointer[dsState]
	store     *live.Store // nil for static (and NFV) engines
	mutMu     sync.Mutex  // serializes mutations and state refresh
	ixPolicy  string
	kinds     []string
	ixNames   []string // portfolio arm names, stable across epochs
	rewrites  []Rewriting
	cacheSize int

	// Sharding state: shardK is the effective partition count (0 when
	// monolithic) and shardEmits tallies, per shard, how many answer graph
	// IDs each shard contributed across the engine's lifetime — the shard
	// balance a serving layer exposes.
	shardK     int
	shardMu    sync.Mutex
	shardEmits []int64
}

// GraphHandle is the stable public identity of a dataset graph on a mutable
// engine: assigned by AddGraph (initial graphs get 1..n in dataset order),
// it survives every mutation and compaction, unlike the dense answer graph
// IDs, which shift as earlier graphs are deleted.
type GraphHandle = live.Handle

// ErrUnknownGraph reports a mutation against a GraphHandle the engine never
// issued or has already removed. Match with errors.Is.
var ErrUnknownGraph = live.ErrUnknownHandle

// dsState is one epoch of a dataset engine's query-serving state: the dense
// dataset, the index portfolio over it, the racer (or raced verifier and
// cache) wired to that portfolio, and — on mutable engines — the live
// snapshot whose release returns the underlying sub-indexes to the store's
// refcounting. It is immutable once installed; queries acquire it with a
// refcount for the duration of one execution, so a mutation installing a
// successor never tears resources out from under an in-flight query.
type dsState struct {
	epoch    uint64
	ds       []*Graph
	handles  []GraphHandle // nil on static engines
	indexes  []FilterIndex
	ixRacer  *core.IndexRacer
	ftvRacer *FTVRacer
	cache    *CachedFTV

	refs    atomic.Int64
	once    sync.Once
	dispose func()
}

// unref drops one reference; the last one disposes the state's resources
// (racer attempt pools, and the sub-indexes — directly for static engines,
// via the live snapshot's refcounts for mutable ones).
func (st *dsState) unref() {
	if st.refs.Add(-1) == 0 {
		st.once.Do(st.dispose)
	}
}

// acquireState takes a reference on the current dataset state, retrying
// around a concurrent swap exactly like live.Store.Current. Nil for NFV
// engines (and after Close).
func (e *Engine) acquireState() *dsState {
	for {
		st := e.dsst.Load()
		if st == nil {
			return nil
		}
		st.refs.Add(1)
		if e.dsst.Load() == st {
			return st
		}
		st.unref()
	}
}

// NewEngine builds an NFV engine serving subgraph-matching queries against
// one stored graph.
func NewEngine(g *Graph, opts EngineOptions) (*Engine, error) {
	if g == nil {
		return nil, errors.New("psi: NewEngine requires a stored graph")
	}
	e, err := newEngineCommon(opts)
	if err != nil {
		return nil, err
	}
	e.g = g
	algos := opts.Algorithms
	if len(algos) == 0 {
		algos = []Algorithm{GraphQL, SPath}
	}
	for _, a := range algos {
		m, err := NewMatcher(a, g)
		if err != nil {
			e.Close()
			return nil, err
		}
		e.matchers = append(e.matchers, m)
	}
	e.racer = core.NewRacer(g)
	e.racer.Pool = e.pool
	e.racer.Validate = opts.Validate
	e.attempts = core.Portfolio(e.matchers, engineRewritings(opts))
	e.model = &predict.Predictor{}
	if e.mode == ModeAuto {
		names := make([]string, len(e.attempts))
		for i, a := range e.attempts {
			names[i] = a.Label()
		}
		e.bandit = predict.NewBandit(names, banditOptions(opts))
	}
	return e, nil
}

// banditOptions maps the engine options onto the policy's knobs.
func banditOptions(opts EngineOptions) predict.BanditOptions {
	return predict.BanditOptions{
		MinSamples: opts.AutoMinSamples,
		RaceEvery:  opts.AutoRaceEvery,
	}
}

// NewDatasetEngine builds an FTV engine serving containment queries against
// a multi-graph dataset. With a single configured index the query pipeline
// is filter → raced-rewriting verification behind the iGQ-style result
// cache, exactly as before; with an index portfolio (Indexes) under the
// race policy, every query races the full streaming pipeline of each index
// and adopts the first to emit a verified candidate, cancelling the rest.
func NewDatasetEngine(ds []*Graph, opts EngineOptions) (*Engine, error) {
	if opts.Snapshot != "" {
		if ds != nil {
			return nil, errors.New("psi: EngineOptions.Snapshot requires a nil dataset (the snapshot carries it)")
		}
		return newSnapshotEngine(opts)
	}
	if len(ds) == 0 {
		return nil, errors.New("psi: NewDatasetEngine requires a non-empty dataset")
	}
	e, err := newEngineCommon(opts)
	if err != nil {
		return nil, err
	}
	if err := e.configurePortfolio(opts, engineKinds(opts)); err != nil {
		e.Close()
		return nil, err
	}
	kinds := e.kinds
	var indexes []FilterIndex
	if opts.Mutable {
		store, serr := live.NewStore(context.Background(), ds, live.Options{
			Kinds:        kinds,
			Shards:       opts.Shards,
			CompactEvery: opts.CompactEvery,
			Index: index.Options{
				Workers: opts.IndexWorkers,
				Pool:    e.pool,
			},
		})
		if serr != nil {
			e.Close()
			return nil, fmt.Errorf("psi: building FTV index: %w", serr)
		}
		e.store = store
		if store.Shards() > 1 {
			e.shardK = store.Shards()
			e.shardEmits = make([]int64, e.shardK)
		}
		snap := store.Current()
		for _, kind := range kinds {
			indexes = append(indexes, snap.Index(kind))
		}
		e.installState(e.newState(snap, indexes))
	} else {
		for _, kind := range kinds {
			x, berr := index.Build(context.Background(), kind, ds, index.Options{
				Workers: opts.IndexWorkers,
				Pool:    e.pool,
				Shards:  opts.Shards,
			})
			if berr != nil {
				for _, built := range indexes {
					built.Close()
				}
				e.Close()
				return nil, fmt.Errorf("psi: building FTV index: %w", berr)
			}
			if sh, ok := x.(*index.Sharded); ok && e.shardK == 0 && sh.Shards() > 1 {
				// Every portfolio entry shards identically; record the
				// effective (dataset-clamped) count once.
				e.shardK = sh.Shards()
				e.shardEmits = make([]int64, e.shardK)
			}
			indexes = append(indexes, x)
		}
		st := &dsState{ds: ds, indexes: indexes}
		st.dispose = func() {
			if st.ixRacer != nil {
				st.ixRacer.Close()
			}
			for _, x := range st.indexes {
				x.Close()
			}
		}
		e.wireState(st)
		st.refs.Store(1)
		e.dsst.Store(st)
	}
	e.finishPortfolio(opts, indexes)
	return e, nil
}

// engineKinds resolves the configured index-kind portfolio: Indexes, or the
// single Index, or the "grapes" default.
func engineKinds(opts EngineOptions) []string {
	if len(opts.Indexes) > 0 {
		return opts.Indexes
	}
	k := opts.Index
	if k == "" {
		k = "grapes"
	}
	return []string{k}
}

// configurePortfolio validates the index-kind portfolio and policy before
// any build or load is paid for: extracting the features of a large dataset
// several times over only to report a misspelt option would be hostile —
// including an unknown kind *after* valid ones, which must not cost the
// preceding builds first. Duplicate kinds are rejected rather than
// deduplicated: racing an index against an identical copy of itself is
// never what the caller meant.
func (e *Engine) configurePortfolio(opts EngineOptions, kinds []string) error {
	registered := index.Kinds()
	seenKind := map[string]bool{}
	for _, kind := range kinds {
		if seenKind[kind] {
			return fmt.Errorf("psi: duplicate index kind %q in portfolio %v", kind, kinds)
		}
		seenKind[kind] = true
		if !slices.Contains(registered, kind) {
			return fmt.Errorf("psi: unknown index kind %q (registered: %v)", kind, registered)
		}
	}
	switch opts.IndexPolicy {
	case "":
		if len(kinds) >= 2 {
			e.ixPolicy = IndexRace
		} else {
			e.ixPolicy = IndexFixed
		}
	case IndexRace, IndexFixed, IndexAuto:
		e.ixPolicy = opts.IndexPolicy
	default:
		return fmt.Errorf("psi: unknown index policy %q (want %q, %q or %q)", opts.IndexPolicy, IndexRace, IndexFixed, IndexAuto)
	}
	e.kinds = kinds
	e.rewrites = engineRewritings(opts)
	e.cacheSize = opts.CacheSize
	if len(kinds) < 2 && e.ixPolicy != IndexFixed {
		e.ixPolicy = IndexFixed
	}
	return nil
}

// finishPortfolio records the portfolio arm names and arms the auto-policy
// bandit once the index portfolio is live.
func (e *Engine) finishPortfolio(opts EngineOptions, indexes []FilterIndex) {
	for _, x := range indexes {
		e.ixNames = append(e.ixNames, x.Name())
	}
	if e.ixPolicy == IndexAuto && len(indexes) >= 2 {
		e.bandit = predict.NewBandit(e.ixNames, banditOptions(opts))
	}
}

// newState builds the epoch state around a live snapshot of a mutable
// engine; disposing it returns the snapshot to the store's refcounts.
func (e *Engine) newState(snap *live.Snapshot, indexes []FilterIndex) *dsState {
	st := &dsState{
		epoch:   snap.Epoch(),
		ds:      snap.Graphs(),
		handles: snap.Handles(),
		indexes: indexes,
	}
	st.dispose = func() {
		if st.ixRacer != nil {
			st.ixRacer.Close()
		}
		snap.Release()
	}
	e.wireState(st)
	st.refs.Store(1)
	return st
}

// wireState attaches the racer (portfolio policies) or the raced verifier
// plus result cache (fixed policy) to a fresh epoch state. A mutable engine
// runs this per mutation, which is what keeps the rewrite frequencies and
// the iGQ cache consistent with the current dataset: both are derived from
// the state's own index portfolio, never from a stale epoch.
func (e *Engine) wireState(st *dsState) {
	if (e.ixPolicy == IndexRace || e.ixPolicy == IndexAuto) && len(st.indexes) >= 2 {
		st.ixRacer = core.NewIndexRacer(st.indexes, e.rewrites)
		st.ixRacer.Pool = e.pool
		return
	}
	st.ftvRacer = core.NewFTVRacer(st.indexes[0], e.rewrites)
	st.ftvRacer.Pool = e.pool
	if e.cacheSize >= 0 {
		// The cache layers on the *raced* verifier, so the residual
		// verifications it cannot resolve are themselves raced across the
		// configured rewritings and fanned out over the pool.
		st.cache = ftv.NewCachedParallel(racedIndex{st.ftvRacer}, e.cacheSize, poolOrDefault(e.pool))
	}
}

// installState publishes a fresh epoch state and drops the engine's
// reference to the predecessor (which lives on until its last in-flight
// query unrefs it). Caller holds mutMu (or is NewDatasetEngine).
func (e *Engine) installState(st *dsState) {
	if old := e.dsst.Swap(st); old != nil {
		old.unref()
	}
}

func newEngineCommon(opts EngineOptions) (*Engine, error) {
	mode, err := ParseMode(string(opts.Mode))
	if err != nil {
		return nil, err
	}
	e := &Engine{
		mode:   mode,
		budget: metrics.Budget{Cap: opts.Timeout},
		warmup: int64(opts.WarmupRaces),
		solo:   opts.SoloBudget,
		wins:   map[string]int64{},
	}
	if e.warmup <= 0 {
		e.warmup = 8
	}
	if e.solo <= 0 {
		e.solo = 50 * time.Millisecond
	}
	if opts.Workers > 0 {
		e.pool = exec.New(opts.Workers)
		e.owned = true
	}
	return e, nil
}

func engineRewritings(opts EngineOptions) []Rewriting {
	if len(opts.Rewritings) == 0 {
		return []Rewriting{Orig, DND}
	}
	return append([]Rewriting(nil), opts.Rewritings...)
}

func poolOrDefault(p *exec.Pool) *exec.Pool {
	if p != nil {
		return p
	}
	return exec.Default()
}

// racedIndex adapts FTVRacer's per-candidate rewriting race to the
// ftv.Index contract so the result cache can layer on top of it.
type racedIndex struct{ f *FTVRacer }

func (r racedIndex) Name() string      { return r.f.Name() }
func (r racedIndex) Dataset() []*Graph { return r.f.Index.Dataset() }
func (r racedIndex) Filter(q *Graph) []int {
	return r.f.Index.Filter(q)
}
func (r racedIndex) Verify(ctx context.Context, q *Graph, graphID int) (bool, error) {
	res, err := r.f.Verify(ctx, q, graphID)
	return res.Contained, err
}

// Close releases the Engine's dedicated pool, if it owns one, and drops the
// engine's reference to its dataset state — index resources (e.g. Grapes'
// dedicated verification pool) are released once the last in-flight query
// finishes with them. Queries in flight degrade gracefully (pools fall back
// to transient goroutines).
func (e *Engine) Close() {
	if e.owned && e.pool != nil {
		e.pool.Close()
	}
	if st := e.dsst.Swap(nil); st != nil {
		st.unref()
	}
	if e.store != nil {
		e.store.Close()
	}
}

// Mode reports the engine's planning policy.
func (e *Engine) Mode() Mode { return e.mode }

// Graph returns the stored graph of an NFV engine (nil for dataset engines).
func (e *Engine) Graph() *Graph { return e.g }

// Dataset returns the dataset of an FTV engine (nil for NFV engines): the
// live graphs of the current epoch, in insertion order, exactly the dataset
// a from-scratch rebuild would be handed.
func (e *Engine) Dataset() []*Graph {
	if st := e.dsst.Load(); st != nil {
		return st.ds
	}
	return nil
}

// Mutable reports whether the engine supports dataset mutations.
func (e *Engine) Mutable() bool { return e.store != nil }

// Epoch reports the current dataset epoch of a mutable dataset engine:
// 1 after construction, bumped by every committed mutation. Static (and
// NFV) engines report 0 — their dataset can never change.
func (e *Engine) Epoch() uint64 {
	if e.store == nil {
		return 0
	}
	return e.store.Epoch()
}

// Handles returns the stable handle of every live graph of a mutable
// dataset engine, parallel to Dataset(): Handles()[i] identifies the graph
// answering as graph ID i at the current epoch. Nil for static engines.
func (e *Engine) Handles() []GraphHandle {
	if st := e.dsst.Load(); st != nil && st.handles != nil {
		return append([]GraphHandle(nil), st.handles...)
	}
	return nil
}

// AddGraph ingests g into a mutable dataset engine, returning its stable
// handle. The owning shard's sub-indexes absorb it incrementally where the
// kind supports it (the flat path index) and by shard-local rebuild
// otherwise; either way the epoch bumps and queries planned after the
// return see the new graph, while queries already executing finish on the
// epoch they started.
func (e *Engine) AddGraph(ctx context.Context, g *Graph) (GraphHandle, error) {
	if err := e.requireMutable(); err != nil {
		return 0, err
	}
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	h, err := e.store.Add(ctx, g)
	if err != nil {
		return 0, err
	}
	e.counters.GraphsAdded.Add(1)
	e.refreshState()
	return h, nil
}

// RemoveGraph deletes the graph behind h from a mutable dataset engine —
// O(1) on the index side (a tombstone) until the owning shard accumulates
// enough of them to trigger a shard-local compaction, which the returned
// flag reports.
func (e *Engine) RemoveGraph(ctx context.Context, h GraphHandle) (compacted bool, err error) {
	if err := e.requireMutable(); err != nil {
		return false, err
	}
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	compacted, err = e.store.Remove(ctx, h)
	if err != nil {
		return false, err
	}
	e.counters.GraphsRemoved.Add(1)
	if compacted {
		e.counters.Compactions.Add(1)
	}
	e.refreshState()
	return compacted, nil
}

// ReplaceGraph swaps the graph behind h for g in place on a mutable dataset
// engine: same handle, same shard, rebuilt shard-locally.
func (e *Engine) ReplaceGraph(ctx context.Context, h GraphHandle, g *Graph) error {
	if err := e.requireMutable(); err != nil {
		return err
	}
	e.mutMu.Lock()
	defer e.mutMu.Unlock()
	if err := e.store.Replace(ctx, h, g); err != nil {
		return err
	}
	e.counters.GraphsReplaced.Add(1)
	e.refreshState()
	return nil
}

func (e *Engine) requireMutable() error {
	if e.store == nil {
		return errors.New("psi: mutations require a dataset engine built with EngineOptions.Mutable")
	}
	return nil
}

// refreshState rebuilds the query-serving state around the store's newest
// snapshot. Caller holds mutMu.
func (e *Engine) refreshState() {
	snap := e.store.Current()
	indexes := make([]FilterIndex, 0, len(e.kinds))
	for _, kind := range e.kinds {
		indexes = append(indexes, snap.Index(kind))
	}
	e.installState(e.newState(snap, indexes))
}

// Attempts returns a copy of the engine's attempt portfolio (NFV engines).
func (e *Engine) Attempts() []Attempt {
	return append([]Attempt(nil), e.attempts...)
}

// CacheStats reports the FTV result-cache counters; ok is false for NFV
// engines and dataset engines built with a negative CacheSize.
func (e *Engine) CacheStats() (stats ftv.CacheStats, ok bool) {
	st := e.dsst.Load()
	if st == nil || st.cache == nil {
		return ftv.CacheStats{}, false
	}
	return st.cache.Stats(), true
}

// Counters returns a point-in-time snapshot of the engine's operational
// counters: queries executed, streamed, killed, failed, attempt and index
// fan-out totals. Safe to call while queries are in flight.
func (e *Engine) Counters() metrics.CountersSnapshot { return e.counters.Snapshot() }

// WinCounts returns a copy of the per-winner tally: how many queries each
// attempt label ("GQL-DND") or index configuration ("Grapes/1") answered.
// Safe to call while queries are in flight.
func (e *Engine) WinCounts() map[string]int64 {
	e.winMu.Lock()
	defer e.winMu.Unlock()
	out := make(map[string]int64, len(e.wins))
	for k, v := range e.wins {
		out[k] = v
	}
	return out
}

// recordWin tallies the winning attempt or index configuration.
func (e *Engine) recordWin(label string) {
	if label == "" {
		return
	}
	e.winMu.Lock()
	e.wins[label]++
	e.winMu.Unlock()
}

// IndexPolicy reports how a dataset engine uses its filtering indexes
// (IndexRace or IndexFixed); empty for NFV engines.
func (e *Engine) IndexPolicy() string { return e.ixPolicy }

// Shards reports the effective dataset partition count of a sharded dataset
// engine (0 for monolithic and NFV engines).
func (e *Engine) Shards() int { return e.shardK }

// ShardBalance returns a copy of the per-shard answer tally of a sharded
// dataset engine: how many containing graph IDs each shard has contributed
// across all executed queries (nil when monolithic). Every engine-executed
// query counts, including repeats and engine-cache replays — the tally
// tracks query traffic over each shard's data, mirroring how Counters
// treats replays as executed queries; only answers a serving layer replays
// from its own result cache (which never reach the engine) are absent.
// Safe to call while queries are in flight.
func (e *Engine) ShardBalance() []int64 {
	if e.shardK < 2 {
		return nil
	}
	e.shardMu.Lock()
	defer e.shardMu.Unlock()
	return append([]int64(nil), e.shardEmits...)
}

// tallyShardID attributes one emitted answer graph ID to the shard that
// owns it; a no-op for monolithic engines.
func (e *Engine) tallyShardID(graphID int) {
	if e.shardK < 2 {
		return
	}
	e.shardMu.Lock()
	e.shardEmits[index.ShardOf(graphID, e.shardK)]++
	e.shardMu.Unlock()
}

// tallyShardIDs attributes a collected answer to its shards.
func (e *Engine) tallyShardIDs(graphIDs []int) {
	if e.shardK < 2 {
		return
	}
	e.shardMu.Lock()
	for _, id := range graphIDs {
		e.shardEmits[index.ShardOf(id, e.shardK)]++
	}
	e.shardMu.Unlock()
}

// IndexStats reports the build provenance and shape of every filtering
// index in the engine's portfolio, in portfolio order (dataset engines
// only; nil for NFV engines).
func (e *Engine) IndexStats() []IndexStats {
	st := e.dsst.Load()
	if st == nil {
		return nil
	}
	out := make([]IndexStats, 0, len(st.indexes))
	for _, x := range st.indexes {
		out = append(out, x.Stats())
	}
	return out
}

// PlanKind says how Execute will run a planned query.
type PlanKind string

const (
	// PlanRace races the full attempt portfolio.
	PlanRace PlanKind = "race"
	// PlanPredicted runs only the model's predicted attempt, with a full
	// race as fallback if it overruns the solo budget.
	PlanPredicted PlanKind = "predicted"
	// PlanFixed runs a fixed single attempt with no fallback.
	PlanFixed PlanKind = "fixed"
	// PlanFTV answers a containment query through the engine's
	// filter-then-verify pipeline.
	PlanFTV PlanKind = "ftv"
)

// PolicyDecision reports how the auto policy planned one query: the
// query's traffic class, whether it runs one learned arm solo or races the
// full portfolio, and why. Carried on Plan.Decision and QueryResult.Policy
// for engines under ModeAuto / IndexAuto, nil everywhere else.
type PolicyDecision struct {
	// Class is the query's traffic class (log-bucketed size/shape key).
	Class string `json:"class"`
	// Solo is true when one arm runs alone; false means a full race.
	Solo bool `json:"solo"`
	// Arm is the portfolio position of the solo arm (valid when Solo).
	Arm int `json:"arm"`
	// ArmName labels the solo arm ("Grapes/1", "GQL-DND"); empty on races.
	ArmName string `json:"arm_name,omitempty"`
	// Reason says why: "learned" for solo; "warmup", "stale" or
	// "escalated" for races.
	Reason string `json:"reason"`

	// observed marks that the execution already fed the bandit (solo
	// completion, in-query fallback, or race win), so the post-budget kill
	// hook must not double-record.
	observed bool
}

// PolicySnapshot is a point-in-time copy of an auto-policy engine's learned
// state: observed class count, pending escalations, per-arm evidence.
type PolicySnapshot = predict.BanditSnapshot

// PolicyArmSummary is one portfolio arm's aggregated evidence inside a
// PolicySnapshot: race wins, solo runs, kills, mean first-result latency.
type PolicyArmSummary = predict.ArmSummary

// PolicyStats reports the auto policy's learned state; ok is false for
// engines not under ModeAuto / IndexAuto. Safe to call while queries are in
// flight — the feed for a serving layer's /stats endpoint.
func (e *Engine) PolicyStats() (PolicySnapshot, bool) {
	if e.bandit == nil {
		return PolicySnapshot{}, false
	}
	return e.bandit.Snapshot(), true
}

// decide runs the bandit for one query, translating the policy's verdict
// into the exported decision record. Returns nil when the engine is not
// under the auto policy.
func (e *Engine) decide(q *Graph) *PolicyDecision {
	if e.bandit == nil {
		return nil
	}
	d := e.bandit.Decide(predict.ClassKey(q))
	pd := &PolicyDecision{Class: d.Class, Solo: d.Solo, Arm: d.Arm, Reason: d.Reason}
	if d.Solo {
		if e.g != nil {
			pd.ArmName = e.attempts[d.Arm].Label()
		} else {
			pd.ArmName = e.ixNames[d.Arm]
		}
	}
	return pd
}

// Plan is an executable query plan produced by Engine.Plan. Plans are
// cheap, single-use value carriers: planning touches no stored-graph data
// beyond the O(|q|) feature vector.
type Plan struct {
	// Query is the planned query graph.
	Query *Graph
	// Kind is the selected execution strategy.
	Kind PlanKind
	// Attempts are the contenders Execute will run (NFV plans).
	Attempts []Attempt
	// Predicted is the portfolio index of the model's pick for
	// PlanPredicted plans, -1 otherwise.
	Predicted int
	// IndexPolicy records how a PlanFTV plan runs the engine's filtering
	// indexes — IndexRace or IndexFixed; empty for NFV plans.
	IndexPolicy string
	// Indexes names the filtering indexes the plan will consult, in
	// portfolio order (PlanFTV plans only).
	Indexes []string
	// Deadline is the per-query cap Execute will enforce (0: none).
	Deadline time.Duration
	// Decision is the auto policy's solo-vs-race verdict for this query
	// (ModeAuto / IndexAuto engines only, nil otherwise).
	Decision *PolicyDecision
	// Epoch is the dataset epoch current at planning time (mutable dataset
	// engines only, 0 otherwise). Execution always runs against the epoch
	// current when Execute starts — QueryResult.Epoch reports which — so a
	// mutation between Plan and Execute shows up as a differing pair.
	Epoch uint64

	features predict.Features
	engine   *Engine
}

// Plan selects the attempt portfolio for q under the engine's mode:
// a full race, the predicted single attempt (once the model has warmed
// up), a fixed single attempt, or the FTV pipeline for dataset engines.
func (e *Engine) Plan(q *Graph) (*Plan, error) {
	if q == nil {
		return nil, errors.New("psi: Plan requires a query graph")
	}
	p := &Plan{Query: q, Predicted: -1, Deadline: e.budget.Cap, engine: e}
	if e.g == nil {
		p.Kind = PlanFTV
		p.IndexPolicy = e.ixPolicy
		p.Decision = e.decide(q)
		p.Epoch = e.Epoch()
		p.Indexes = append(p.Indexes, e.ixNames...)
		return p, nil
	}
	switch e.mode {
	case ModeSingle:
		p.Kind = PlanFixed
		p.Attempts = e.attempts[:1]
	case ModeAuto:
		p.Decision = e.decide(q)
		if p.Decision.Solo {
			p.Kind = PlanPredicted
			p.Predicted = p.Decision.Arm
			p.Attempts = e.attempts[p.Predicted : p.Predicted+1]
		} else {
			p.Kind = PlanRace
			p.Attempts = e.attempts
		}
	case ModePredict:
		p.features = predict.Featurize(q, e.racer.Frequencies)
		p.Kind = PlanRace
		p.Attempts = e.attempts
		if e.seen.Load() >= e.warmup {
			if idx := e.model.Predict(p.features); idx >= 0 {
				p.Kind = PlanPredicted
				p.Predicted = idx
				p.Attempts = e.attempts[idx : idx+1]
			}
		}
	default:
		p.Kind = PlanRace
		p.Attempts = e.attempts
	}
	// The plan is a public value: never alias the engine's portfolio,
	// which a caller could then mutate under every future query.
	p.Attempts = append([]Attempt(nil), p.Attempts...)
	return p, nil
}

// QueryResult is the outcome of one executed plan.
type QueryResult struct {
	// Embeddings holds the matched embeddings (NFV, non-streaming
	// execution only; streaming sends them to the sink instead).
	Embeddings []Embedding
	// Found is the number of answers surfaced, whether collected here or
	// streamed: embeddings for NFV plans, containing graph IDs for FTV
	// plans — identical for cached replays and fresh executions alike.
	Found int
	// GraphIDs are the containing dataset graphs (FTV plans), ascending.
	GraphIDs []int
	// Winner labels the attempt (or index configuration) that produced
	// the answer, e.g. "GQL-DND".
	Winner string
	// IndexAttempts reports each filtering index's run for FTV plans
	// executed under the race policy: the adopted winner, the cancelled
	// losers and their timings — the index-level counterpart of the
	// matcher attempts behind Winner.
	IndexAttempts []IndexAttempt
	// Kind echoes the executed plan's strategy; FellBack marks a
	// predicted (or auto-solo) plan that overran its solo budget and
	// re-ran as a race.
	Kind     PlanKind
	FellBack bool
	// Policy echoes the auto policy's decision for this query (ModeAuto /
	// IndexAuto engines only, nil otherwise).
	Policy *PolicyDecision
	// Epoch is the dataset epoch the query executed against (mutable
	// dataset engines only, 0 otherwise): the answer is byte-identical to
	// a from-scratch engine over that epoch's dataset.
	Epoch uint64
	// Elapsed is the measured execution time; when the engine has a
	// deadline, Killed marks queries that hit it (Elapsed is then clamped
	// to the cap, the substitution the paper's methodology prescribes)
	// and Class buckets the timing against the paper's easy/mid/hard
	// thresholds. A killed collecting run surfaces an empty answer; a
	// killed streaming run keeps Found at the number of embeddings that
	// reached the sink before the kill.
	Elapsed time.Duration
	Killed  bool
	Class   metrics.Class
}

// Contained reports whether the query was found at all.
func (r *QueryResult) Contained() bool { return r.Found > 0 || len(r.GraphIDs) > 0 }

// Query plans and executes q in one call — the convenience path.
func (e *Engine) Query(ctx context.Context, q *Graph, limit int) (*QueryResult, error) {
	p, err := e.Plan(q)
	if err != nil {
		return nil, err
	}
	return e.Execute(ctx, p, limit)
}

// QueryStream plans and executes q, streaming embeddings into sink.
func (e *Engine) QueryStream(ctx context.Context, q *Graph, limit int, sink Sink) (*QueryResult, error) {
	p, err := e.Plan(q)
	if err != nil {
		return nil, err
	}
	return e.ExecuteStream(ctx, p, limit, sink)
}

// Execute runs a plan and collects its answer. Up to limit embeddings are
// returned for NFV plans (limit <= 0: decision, stop at the first); FTV
// plans ignore limit and return containing graph IDs. When the engine has
// a deadline, a query that hits it is not an error: the result comes back
// with Killed set, Class Hard and an empty answer.
func (e *Engine) Execute(ctx context.Context, p *Plan, limit int) (*QueryResult, error) {
	return e.execute(ctx, p, limit, nil)
}

// ExecuteStream runs a plan, emitting embeddings into sink as they are
// found; the first attempt to emit is adopted and the rest are cancelled,
// so first-result latency does not wait for full enumeration. The result's
// Found counts the embeddings handed to the sink. Dataset (FTV) plans
// stream graph IDs through Engine.AnswerStream instead.
func (e *Engine) ExecuteStream(ctx context.Context, p *Plan, limit int, sink Sink) (*QueryResult, error) {
	if sink == nil {
		return nil, errors.New("psi: ExecuteStream requires a sink")
	}
	return e.execute(ctx, p, limit, sink)
}

func (e *Engine) execute(ctx context.Context, p *Plan, limit int, sink Sink) (*QueryResult, error) {
	if p == nil || p.engine != e {
		return nil, errors.New("psi: Execute requires a plan from this engine's Plan")
	}
	if p.Kind == PlanFTV && sink != nil {
		return nil, errors.New("psi: FTV plans stream graph IDs via AnswerStream, not embeddings")
	}
	e.counters.Queries.Add(1)
	if sink != nil {
		e.counters.Streamed.Add(1)
	}
	res := &QueryResult{Kind: p.Kind, Policy: p.Decision}
	var st *dsState
	if p.Kind == PlanFTV {
		// Pin the current epoch's state for the whole execution: a
		// concurrent mutation installs its successor without disturbing
		// this query, and the result records which epoch answered.
		if st = e.acquireState(); st == nil {
			return nil, errors.New("psi: engine closed")
		}
		defer st.unref()
		res.Epoch = st.epoch
	}
	streamed := 0
	if sink != nil {
		// Count what actually reaches the caller, so a killed streaming
		// run can still report the embeddings it irrevocably surfaced.
		inner := sink
		sink = SinkFunc(func(em Embedding) bool {
			streamed++
			return inner.Emit(em)
		})
	}
	run := func(runCtx context.Context) error {
		switch p.Kind {
		case PlanFTV:
			return e.runFTV(runCtx, st, p, res)
		case PlanPredicted:
			return e.runPredicted(runCtx, p, limit, sink, res)
		default:
			return e.runRace(runCtx, p.Query, p.Attempts, limit, sink, res, p.features)
		}
	}
	if e.budget.Cap > 0 {
		t := e.budget.Run(ctx, run)
		res.Elapsed, res.Killed = t.Elapsed, t.Killed
		res.Class = e.budget.Classify(t)
		if t.Err != nil {
			e.counters.Errors.Add(1)
			return nil, t.Err
		}
		if t.Killed {
			// The deadline is engine policy, not a failure: report the
			// kill the way the paper's methodology records it. Found
			// keeps the count of embeddings already streamed — those
			// cannot be retracted from the sink.
			res.Embeddings, res.GraphIDs = nil, nil
			res.Found = streamed
			e.observeKill(res)
		}
		e.tally(res)
		return res, nil
	}
	start := time.Now()
	err := run(ctx)
	res.Elapsed = time.Since(start)
	if err != nil {
		e.counters.Errors.Add(1)
		return nil, err
	}
	e.tally(res)
	return res, nil
}

// observeKill feeds a budget-killed solo run into the bandit as evidence
// against the arm — unless the execution already recorded its own outcome
// (an in-query fallback observed the kill before re-racing). Caller
// cancellations never reach here: they surface as errors, not kills, so a
// client disconnect leaves the learned statistics untouched.
func (e *Engine) observeKill(res *QueryResult) {
	d := res.Policy
	if e.bandit == nil || d == nil || !d.Solo || d.observed {
		return
	}
	d.observed = true
	e.bandit.ObserveKill(d.Class, d.Arm)
}

// tally folds one finished (possibly killed) result into the engine's
// operational counters.
func (e *Engine) tally(res *QueryResult) {
	if res.Killed {
		e.counters.Killed.Add(1)
	}
	if e.shardK >= 2 && res.Kind == PlanFTV {
		e.counters.ShardedQueries.Add(1)
		if res.Killed {
			e.counters.ShardedKilled.Add(1)
		}
	}
	e.recordWin(res.Winner)
	// A single recorded attempt is a solo pipeline, not a race: it counts
	// toward the started-work total but not the race tally.
	if n := len(res.IndexAttempts); n > 1 {
		e.counters.IndexRaces.Add(1)
		e.counters.IndexAttempts.Add(int64(n))
	} else if n == 1 {
		e.counters.IndexAttempts.Add(1)
	}
	if res.FellBack {
		e.counters.Fallbacks.Add(1)
	}
	if d := res.Policy; d != nil {
		if d.Solo {
			e.counters.PolicySolo.Add(1)
		} else {
			e.counters.PolicyRaces.Add(1)
			if d.Reason == predict.ReasonEscalated {
				e.counters.PolicyEscalations.Add(1)
			}
		}
	}
}

// runRace executes a full (or fixed single-attempt) race, observing the
// winner into the prediction model when the engine learns.
func (e *Engine) runRace(ctx context.Context, q *Graph, attempts []Attempt, limit int, sink Sink, res *QueryResult, feats predict.Features) error {
	var (
		r   core.Result
		err error
	)
	e.counters.RaceAttempts.Add(int64(len(attempts)))
	if sink != nil {
		r, err = e.racer.RaceStream(ctx, q, limit, attempts, sink)
	} else {
		r, err = e.racer.Race(ctx, q, limit, attempts)
	}
	if err != nil {
		return err
	}
	res.Embeddings = r.Embeddings
	res.Found = r.Found
	res.Winner = r.Winner.Label()
	if len(attempts) == len(e.attempts) {
		switch {
		case e.mode == ModePredict:
			e.model.Observe(feats, r.WinnerIndex)
			e.seen.Add(1)
		case e.bandit != nil && res.Policy != nil:
			// A full auto-policy race trains the bandit with the winner's
			// first-result latency (and clears any kill escalation).
			res.Policy.observed = true
			e.bandit.ObserveRaceWin(res.Policy.Class, r.WinnerIndex, r.Elapsed)
		}
	}
	return nil
}

// runPredicted runs the model's pick alone under the solo budget, falling
// back to a full race when the prediction overruns before emitting. A
// streamed run that already surfaced embeddings is committed: a mid-stream
// budget expiry surfaces as the solo context's error rather than silently
// restarting the query.
func (e *Engine) runPredicted(ctx context.Context, p *Plan, limit int, sink Sink, res *QueryResult) error {
	soloCtx, cancel := context.WithTimeout(ctx, e.solo)
	defer cancel()
	e.counters.RaceAttempts.Add(1)
	att := e.attempts[p.Predicted : p.Predicted+1]
	var (
		r       core.Result
		err     error
		emitted int
	)
	if sink != nil {
		counting := SinkFunc(func(em Embedding) bool {
			emitted++
			return sink.Emit(em)
		})
		r, err = e.racer.RaceStream(soloCtx, p.Query, limit, att, counting)
	} else {
		r, err = e.racer.Race(soloCtx, p.Query, limit, att)
	}
	if err == nil {
		res.Embeddings = r.Embeddings
		res.Found = r.Found
		res.Winner = att[0].Label()
		e.counters.PredictedSolo.Add(1)
		if d := res.Policy; e.bandit != nil && d != nil {
			d.observed = true
			e.bandit.ObserveSolo(d.Class, d.Arm, r.Elapsed)
		} else {
			e.model.Observe(p.features, p.Predicted)
		}
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err() // the caller's context died, not the solo budget
	}
	// The solo budget expired: evidence against the learned arm.
	if d := res.Policy; e.bandit != nil && d != nil {
		d.observed = true
		e.bandit.ObserveKill(d.Class, d.Arm)
	}
	if emitted > 0 {
		return err // committed: partial output already reached the sink
	}
	res.FellBack = true
	return e.runRace(ctx, p.Query, e.attempts, limit, sink, res, p.features)
}

// runFTV answers a containment query. Under the race policy every
// configured index runs its streaming filter→verify pipeline concurrently
// and the first verified emission wins; under the auto policy a learned
// solo pipeline runs first when the bandit trusts one (falling back to the
// full race if it overruns the solo budget); under the fixed policy the
// primary index answers through the cache (when enabled) or the raced
// verifier.
func (e *Engine) runFTV(ctx context.Context, st *dsState, p *Plan, res *QueryResult) error {
	if st.ixRacer != nil {
		if d := p.Decision; d != nil && d.Solo {
			// A collected solo buffers its IDs internally, so a fallback
			// discards a partial answer no caller ever saw — always safe.
			soloCtx, cancel := context.WithTimeout(ctx, e.solo)
			r, err := st.ixRacer.AnswerArm(soloCtx, p.Query, d.Arm)
			cancel()
			if err == nil {
				d.observed = true
				e.bandit.ObserveSolo(d.Class, d.Arm, r.Elapsed)
				e.finishIndexResult(res, r)
				return nil
			}
			if ctx.Err() != nil {
				return ctx.Err() // budget kill or caller cancel, not the solo budget
			}
			d.observed = true
			e.bandit.ObserveKill(d.Class, d.Arm)
			e.counters.IndexAttempts.Add(1) // the abandoned solo still ran
			res.FellBack = true
		}
		r, err := st.ixRacer.Answer(ctx, p.Query)
		if err != nil {
			return err
		}
		if d := p.Decision; d != nil && e.bandit != nil {
			d.observed = true
			e.bandit.ObserveRaceWin(d.Class, r.WinnerIndex, r.Attempts[r.WinnerIndex].Elapsed)
		}
		e.finishIndexResult(res, r)
		return nil
	}
	var (
		ids []int
		err error
	)
	if st.cache != nil {
		ids, err = st.cache.Answer(ctx, p.Query)
		res.Winner = st.cache.Name()
	} else {
		ids, err = st.ftvRacer.Answer(ctx, p.Query)
		res.Winner = st.ftvRacer.Name()
	}
	if err != nil {
		return err
	}
	res.GraphIDs = ids
	res.Found = len(ids)
	e.tallyShardIDs(ids)
	return nil
}

// finishIndexResult copies an index race (or solo arm) outcome into the
// query result and attributes the answer to its shards.
func (e *Engine) finishIndexResult(res *QueryResult, r core.IndexRaceResult) {
	res.GraphIDs = r.GraphIDs
	res.Found = len(r.GraphIDs)
	res.Winner = r.Winner
	res.IndexAttempts = r.Attempts
	e.tallyShardIDs(res.GraphIDs)
}

// ErrKilled reports a streamed query that hit the engine's per-query kill
// cap after part of its answer had already been emitted. Result-bearing
// paths report the kill through QueryResult.Killed instead.
var ErrKilled = errors.New("psi: query killed by the per-query budget")

// AnswerStream streams a dataset engine's containment answer: each
// containing graph ID is handed to emit as soon as its verification — and
// that of every candidate before it — settles, in the same ascending order
// Query returns. emit returning false cancels the outstanding work. emit
// runs on verification goroutines under an internal lock and must not
// block (in particular, not on work that only proceeds after AnswerStream
// returns). The stream bypasses the result cache (a partial answer must
// not be remembered as complete). On an engine with a per-query budget, a
// query that hits the cap returns ErrKilled: this signature has no result
// to carry the kill marker, and a truncated ID stream must not read as a
// complete answer. Use AnswerStreamResult to observe kills as data.
func (e *Engine) AnswerStream(ctx context.Context, q *Graph, emit func(graphID int) bool) error {
	res, err := e.AnswerStreamResult(ctx, q, emit)
	if err != nil {
		return err
	}
	if res.Killed {
		return ErrKilled
	}
	return nil
}

// AnswerStreamResult is AnswerStream with the execution report a serving
// layer needs alongside the stream: the winning index configuration, the
// per-index attempts of a raced query, the measured time and — when the
// engine has a per-query deadline — the kill marker, with Found keeping the
// count of graph IDs that irrevocably reached emit before the kill. The
// result's GraphIDs stays nil; the IDs go to emit.
func (e *Engine) AnswerStreamResult(ctx context.Context, q *Graph, emit func(graphID int) bool) (*QueryResult, error) {
	if e.g != nil {
		return nil, errors.New("psi: AnswerStream requires a dataset engine")
	}
	if emit == nil {
		return nil, errors.New("psi: AnswerStream requires an emit function")
	}
	st := e.acquireState()
	if st == nil {
		return nil, errors.New("psi: AnswerStream requires an open dataset engine")
	}
	defer st.unref()
	e.counters.Queries.Add(1)
	e.counters.Streamed.Add(1)
	res := &QueryResult{Kind: PlanFTV, Policy: e.decide(q), Epoch: st.epoch}
	streamed := 0
	counting := func(id int) bool {
		streamed++
		e.tallyShardID(id)
		return emit(id)
	}
	run := func(runCtx context.Context) error {
		if st.ixRacer != nil {
			if d := res.Policy; d != nil && d.Solo {
				soloCtx, cancel := context.WithTimeout(runCtx, e.solo)
				before := streamed
				r, err := st.ixRacer.AnswerStreamArm(soloCtx, q, d.Arm, counting)
				cancel()
				if err == nil {
					d.observed = true
					e.bandit.ObserveSolo(d.Class, d.Arm, r.Elapsed)
					res.Winner = r.Winner
					res.IndexAttempts = r.Attempts
					return nil
				}
				if runCtx.Err() != nil {
					return runCtx.Err() // budget kill or caller cancel
				}
				d.observed = true
				e.bandit.ObserveKill(d.Class, d.Arm)
				if streamed > before {
					// Committed: IDs already reached the caller, and a
					// fallback race would replay the ascending stream from
					// the start. The overrun surfaces as the solo deadline
					// error — a kill on a budgeted engine.
					return err
				}
				e.counters.IndexAttempts.Add(1) // the abandoned solo still ran
				res.FellBack = true
			}
			r, err := st.ixRacer.AnswerStream(runCtx, q, counting)
			if err != nil {
				return err
			}
			if d := res.Policy; d != nil && e.bandit != nil {
				d.observed = true
				e.bandit.ObserveRaceWin(d.Class, r.WinnerIndex, r.Attempts[r.WinnerIndex].Elapsed)
			}
			res.Winner = r.Winner
			res.IndexAttempts = r.Attempts
			return nil
		}
		res.Winner = st.ftvRacer.Name()
		return st.ftvRacer.AnswerStream(runCtx, q, counting)
	}
	if e.budget.Cap > 0 {
		t := e.budget.Run(ctx, run)
		res.Elapsed, res.Killed = t.Elapsed, t.Killed
		res.Class = e.budget.Classify(t)
		if t.Err != nil {
			e.counters.Errors.Add(1)
			return nil, t.Err
		}
		if t.Killed {
			e.observeKill(res)
		}
		res.Found = streamed
		e.tally(res)
		return res, nil
	}
	start := time.Now()
	err := run(ctx)
	res.Elapsed = time.Since(start)
	if err != nil {
		e.counters.Errors.Add(1)
		return nil, err
	}
	res.Found = streamed
	e.tally(res)
	return res, nil
}
