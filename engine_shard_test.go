package psi_test

// Engine-level sharding tests: a sharded index portfolio must compose with
// the index race unchanged (whole sharded pipelines racing each other),
// answer byte-identically to the monolithic engine at every worker count,
// and feed the shard-balance and sharded-query counters a serving layer
// exposes.

import (
	"context"
	"slices"
	"testing"
	"time"

	psi "github.com/psi-graph/psi"
)

// TestShardedEngineRaceParity builds the full racing portfolio monolithic
// and sharded (K=3) at two pool sizes and asserts byte-identical collected
// and streamed answers, per-shard stats in IndexStats, and a shard balance
// that accounts for every answered graph ID.
func TestShardedEngineRaceParity(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 2)
	kinds, err := psi.ParseIndexSpec("race")
	if err != nil {
		t.Fatal(err)
	}
	mono, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Indexes: kinds})
	if err != nil {
		t.Fatal(err)
	}
	defer mono.Close()
	if mono.Shards() != 0 {
		t.Errorf("monolithic engine Shards() = %d, want 0", mono.Shards())
	}
	queries := make([]*psi.Graph, 4)
	want := make([][]int, len(queries))
	for i := range queries {
		queries[i] = psi.ExtractQuery(ds[i%len(ds)], 3+i, int64(20+i))
		res, err := mono.Query(context.Background(), queries[i], 0)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.GraphIDs
	}
	for _, workers := range []int{0, 2} {
		sh, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
			Indexes: kinds,
			Shards:  3,
			Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if sh.Shards() != 3 {
			t.Fatalf("workers=%d: Shards() = %d, want 3", workers, sh.Shards())
		}
		for _, st := range sh.IndexStats() {
			if st.ShardCount != 3 || len(st.Shards) != 3 {
				t.Errorf("workers=%d: %s ShardCount=%d Shards=%d, want 3/3",
					workers, st.Name, st.ShardCount, len(st.Shards))
			}
		}
		total := 0
		for i, q := range queries {
			res, err := sh.Query(context.Background(), q, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(res.GraphIDs, want[i]) {
				t.Errorf("workers=%d q%d: sharded answer %v, monolithic %v",
					workers, i, res.GraphIDs, want[i])
			}
			if len(res.IndexAttempts) == 0 {
				t.Errorf("workers=%d q%d: raced sharded query reported no index attempts", workers, i)
			}
			total += len(res.GraphIDs)
			var streamed []int
			if err := sh.AnswerStream(context.Background(), q, func(id int) bool {
				streamed = append(streamed, id)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(streamed, want[i]) {
				t.Errorf("workers=%d q%d: sharded stream %v, monolithic %v",
					workers, i, streamed, want[i])
			}
			total += len(streamed)
		}
		balance := sh.ShardBalance()
		if len(balance) != 3 {
			t.Fatalf("workers=%d: ShardBalance = %v, want 3 shards", workers, balance)
		}
		var sum int64
		for _, n := range balance {
			sum += n
		}
		if sum != int64(total) {
			t.Errorf("workers=%d: shard balance %v sums to %d, want %d answered IDs",
				workers, balance, sum, total)
		}
		if c := sh.Counters(); c.ShardedQueries != int64(2*len(queries)) {
			t.Errorf("workers=%d: ShardedQueries = %d, want %d", workers, c.ShardedQueries, 2*len(queries))
		}
		sh.Close()
	}
}

// TestShardedEngineCacheReplayBalance pins the documented ShardBalance
// semantics: every engine-executed query counts, including replays served
// by the engine-level result cache — the tally tracks query traffic per
// shard, not distinct answers. (Server-layer cache replays bypass the
// engine and are covered by the internal/server tests.)
func TestShardedEngineCacheReplayBalance(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 2)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Index:  "ftv",
		Shards: 2, // fixed policy with the default engine cache enabled
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := psi.ExtractQuery(ds[0], 4, 21)
	first, err := eng.Query(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.GraphIDs) == 0 {
		t.Fatal("fixture query has an empty answer; pick a different seed")
	}
	replay, err := eng.Query(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(replay.GraphIDs, first.GraphIDs) {
		t.Fatalf("cached replay answered %v, fresh %v", replay.GraphIDs, first.GraphIDs)
	}
	if cs, ok := eng.CacheStats(); !ok || cs.ExactHits == 0 {
		t.Fatalf("second query not served by the engine cache: %+v", cs)
	}
	var sum int64
	for _, n := range eng.ShardBalance() {
		sum += n
	}
	if want := int64(2 * len(first.GraphIDs)); sum != want {
		t.Errorf("shard balance sums to %d after a fresh query and a cache replay, want %d (both executions count)",
			sum, want)
	}
	if c := eng.Counters(); c.ShardedQueries != 2 {
		t.Errorf("ShardedQueries = %d, want 2 (replays are executed queries)", c.ShardedQueries)
	}
}

// TestShardedEngineKillCounter checks that a sharded query killed by the
// per-query budget is tallied under ShardedKilled (and surfaces as a killed
// result, not an error).
func TestShardedEngineKillCounter(t *testing.T) {
	ds := psi.GeneratePPI(psi.Tiny, 2)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Index:     "ftv",
		Shards:    2,
		Timeout:   time.Nanosecond,
		CacheSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	q := psi.ExtractQuery(ds[0], 4, 33)
	res, err := eng.Query(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Killed {
		t.Fatalf("query under a 1ns budget not killed: %+v", res)
	}
	c := eng.Counters()
	if c.ShardedQueries != 1 || c.ShardedKilled != 1 {
		t.Errorf("counters = queries %d / killed %d, want 1/1", c.ShardedQueries, c.ShardedKilled)
	}
}
