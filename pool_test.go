package psi

// White-box regression tests for the sized-pool cache behind
// FTVAnswerWithOptions. Before the LRU fix, a full cache made every call
// with an unseen MaxWorkers build and tear down a throwaway pool.

import "testing"

// resetSizedPools empties the cache so tests are independent of ordering.
func resetSizedPools() {
	sizedPoolsMu.Lock()
	defer sizedPoolsMu.Unlock()
	for w, p := range sizedPools {
		p.Close()
		delete(sizedPools, w)
	}
	sizedPoolLRU = nil
}

func TestSizedPoolNeverDegradesToThrowaway(t *testing.T) {
	resetSizedPools()
	defer resetSizedPools()
	// Far more distinct sizes than the cache holds: every request must
	// still be served from the cache (by evicting), never with nil.
	for workers := 2; workers < 2+3*maxCachedPoolSizes; workers++ {
		if p := sizedPool(workers); p == nil {
			t.Fatalf("sizedPool(%d) = nil: cache degraded to throwaway pools", workers)
		}
		sizedPoolsMu.Lock()
		n, lru := len(sizedPools), len(sizedPoolLRU)
		sizedPoolsMu.Unlock()
		if n > maxCachedPoolSizes {
			t.Fatalf("cache grew to %d entries, bound is %d", n, maxCachedPoolSizes)
		}
		if n != lru {
			t.Fatalf("map has %d entries but LRU order has %d", n, lru)
		}
	}
}

func TestSizedPoolReusesCachedPools(t *testing.T) {
	resetSizedPools()
	defer resetSizedPools()
	first := sizedPool(3)
	for i := 0; i < 10; i++ {
		if p := sizedPool(3); p != first {
			t.Fatal("repeated requests for one size must return the same pool")
		}
	}
}

func TestSizedPoolEvictsLeastRecentlyUsed(t *testing.T) {
	resetSizedPools()
	defer resetSizedPools()
	// Fill the cache with sizes 2..17, then touch size 2 so size 3 is the
	// least recently used.
	for workers := 2; workers < 2+maxCachedPoolSizes; workers++ {
		sizedPool(workers)
	}
	kept := sizedPool(2)
	sizedPool(100) // overflow: must evict size 3, not size 2
	sizedPoolsMu.Lock()
	_, evicted := sizedPools[3]
	survivor := sizedPools[2]
	sizedPoolsMu.Unlock()
	if evicted {
		t.Error("least-recently-used size 3 should have been evicted")
	}
	if survivor != kept {
		t.Error("recently touched size 2 must survive the eviction")
	}
}
