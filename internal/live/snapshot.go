package live

// Persistence support: ExportState captures everything the on-disk snapshot
// format needs to reconstruct the store — the slot-space dataset, liveness,
// handles, tombstone counters, epoch/handle counters and the per-kind
// per-shard sub-index grid — and Restore is its inverse over sub-indexes
// freshly rebuilt by the snapshot loader. A restored store continues exactly
// where the saved one stopped: same epoch (so epoch-keyed caches never serve
// stale answers), same handles (so clients' references stay valid), same
// tombstone counts (so compaction triggers on schedule).

import (
	"fmt"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
)

// State is the serializable shape of a Store at one epoch.
type State struct {
	// Kinds and Shards mirror the Options the store was created with.
	Kinds  []string
	Shards int
	// Epoch is the committed mutation epoch; NextHandle the next handle to
	// issue.
	Epoch      uint64
	NextHandle Handle
	// SlotGraphs is the full slot space, zero-vertex placeholders at dead
	// slots; Alive and Handles are parallel to it. Tombs is the per-shard
	// tombstone count since the last compaction.
	SlotGraphs []*graph.Graph
	Alive      []bool
	Handles    []Handle
	Tombs      []int
	// Grid maps each kind to its K per-shard sub-indexes. On export these
	// are the store's LIVE sub-indexes: the caller must finish reading them
	// (e.g. serializing their features) before the next mutation could
	// retire them — Engine.SaveSnapshot holds the engine mutation mutex
	// across the whole save for exactly this reason. On restore, ownership
	// of the sub-indexes transfers to the store.
	Grid map[string][]index.Index
}

// ExportState snapshots the mutation state under the mutation lock. It
// fails once the store is closed.
func (st *Store) ExportState() (State, error) {
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	if st.closed {
		return State{}, fmt.Errorf("live: store closed")
	}
	grid := make(map[string][]index.Index, len(st.grid))
	for kind, subs := range st.grid {
		grid[kind] = append([]index.Index(nil), subs...)
	}
	return State{
		Kinds:      append([]string(nil), st.kinds...),
		Shards:     st.k,
		Epoch:      st.epoch.Load(),
		NextHandle: st.nextHandle,
		SlotGraphs: append([]*graph.Graph(nil), st.slotGraphs...),
		Alive:      append([]bool(nil), st.alive...),
		Handles:    append([]Handle(nil), st.handleOf...),
		Tombs:      append([]int(nil), st.tombs...),
		Grid:       grid,
	}, nil
}

// Restore reconstructs a store from a deserialized State. The grid
// sub-indexes are adopted as-is (the store owns and eventually closes
// them); each must index exactly its shard's slot-space sub-dataset, the
// partition the snapshot loader rebuilds by construction. compactEvery and
// ixOpts play the roles they have in Options — runtime knobs, not persisted
// layout. The first snapshot is installed at the saved epoch.
func Restore(state State, compactEvery int, ixOpts index.Options) (*Store, error) {
	if state.Shards < 1 {
		return nil, fmt.Errorf("live: restore: shard count %d < 1", state.Shards)
	}
	if len(state.Kinds) == 0 {
		return nil, fmt.Errorf("live: restore: no index kinds")
	}
	n := len(state.SlotGraphs)
	if len(state.Alive) != n || len(state.Handles) != n {
		return nil, fmt.Errorf("live: restore: slot arrays disagree (%d graphs, %d alive, %d handles)", n, len(state.Alive), len(state.Handles))
	}
	if len(state.Tombs) != state.Shards {
		return nil, fmt.Errorf("live: restore: %d tombstone counters for %d shards", len(state.Tombs), state.Shards)
	}
	for _, kind := range state.Kinds {
		if len(state.Grid[kind]) != state.Shards {
			return nil, fmt.Errorf("live: restore: kind %q has %d sub-indexes for %d shards", kind, len(state.Grid[kind]), state.Shards)
		}
	}
	if compactEvery <= 0 {
		compactEvery = DefaultCompactEvery
	}
	ixOpts.Shards = 0
	st := &Store{
		kinds:        append([]string(nil), state.Kinds...),
		k:            state.Shards,
		compactEvery: compactEvery,
		ixOpts:       ixOpts,
		placeholder:  graph.NewBuilder("live:dead-slot").MustBuild(),
		slotGraphs:   append([]*graph.Graph(nil), state.SlotGraphs...),
		alive:        append([]bool(nil), state.Alive...),
		handleOf:     append([]Handle(nil), state.Handles...),
		byHandle:     make(map[Handle]int, n),
		local:        make([][]*graph.Graph, state.Shards),
		tombs:        append([]int(nil), state.Tombs...),
		grid:         make(map[string][]index.Index, len(state.Kinds)),
		nextHandle:   state.NextHandle,
		subRefs:      make(map[index.Index]int),
	}
	for slot := 0; slot < n; slot++ {
		st.local[slot%st.k] = append(st.local[slot%st.k], st.slotGraphs[slot])
		h := st.handleOf[slot]
		if h <= 0 {
			return nil, fmt.Errorf("live: restore: slot %d has non-positive handle %d", slot, h)
		}
		if h >= st.nextHandle {
			return nil, fmt.Errorf("live: restore: slot %d handle %d >= next handle %d (would reissue)", slot, h, st.nextHandle)
		}
		if !st.alive[slot] {
			continue
		}
		if prev, dup := st.byHandle[h]; dup {
			return nil, fmt.Errorf("live: restore: handle %d owned by slots %d and %d", h, prev, slot)
		}
		st.byHandle[h] = slot
		st.liveCount++
	}
	for _, kind := range state.Kinds {
		subs := append([]index.Index(nil), state.Grid[kind]...)
		for s, sub := range subs {
			if got, want := len(sub.Dataset()), len(st.local[s]); got != want {
				return nil, fmt.Errorf("live: restore: %s shard %d indexes %d graphs, shard holds %d", kind, s, got, want)
			}
		}
		st.grid[kind] = subs
	}
	if state.NextHandle < 1 {
		return nil, fmt.Errorf("live: restore: next handle %d < 1", state.NextHandle)
	}
	if state.Epoch < 1 {
		return nil, fmt.Errorf("live: restore: epoch %d < 1", state.Epoch)
	}
	st.installLocked(state.Epoch)
	return st, nil
}
