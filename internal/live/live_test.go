package live_test

// The mutable store's acceptance properties: (1) mutation parity — after any
// random sequence of Add/Remove/Replace, every kind's snapshot index answers
// byte-identically to a from-scratch build over the live graphs; (2)
// snapshot isolation — a pinned snapshot keeps answering exactly as it did
// while mutations churn underneath it; (3) lifecycle — sub-indexes shared
// across snapshot generations close exactly when the last referencing
// snapshot drains, never under a pinned reader. All run under -race in CI.

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	_ "github.com/psi-graph/psi/internal/ggsx"
	_ "github.com/psi-graph/psi/internal/grapes"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
	"github.com/psi-graph/psi/internal/live"
)

const testMaxPathLen = 3

func randomDataset(r *rand.Rand, numGraphs, n, labels int) []*graph.Graph {
	ds := make([]*graph.Graph, numGraphs)
	for i := range ds {
		b := graph.NewBuilder("g")
		for v := 0; v < n; v++ {
			b.AddVertex(graph.Label(r.Intn(labels)))
		}
		for v := 1; v < n; v++ {
			if err := b.AddEdge(r.Intn(v), v); err != nil {
				panic(err)
			}
		}
		ds[i] = b.MustBuild()
	}
	return ds
}

// pathQuery is a deterministic little 2-edge path query over the label
// alphabet; with 2 labels it hits most random graphs and misses some, which
// is exactly the discriminating shape a parity check wants.
func pathQuery(l0, l1, l2 graph.Label) *graph.Graph {
	return graph.MustNew("q", []graph.Label{l0, l1, l2}, [][2]int{{0, 1}, {1, 2}})
}

func testQueries() []*graph.Graph {
	return []*graph.Graph{
		pathQuery(0, 0, 1),
		pathQuery(1, 0, 1),
		graph.MustNew("edge", []graph.Label{0, 1}, [][2]int{{0, 1}}),
		graph.MustNew("edgeless", []graph.Label{0}, nil),
	}
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertParity checks that every kind's snapshot index answers exactly like
// a fresh monolithic build over the snapshot's live graphs.
func assertParity(t *testing.T, snap *live.Snapshot, kinds []string) {
	t.Helper()
	for _, kind := range kinds {
		x := snap.Index(kind)
		if x == nil {
			t.Fatalf("snapshot has no %s index", kind)
		}
		fresh, err := index.Build(context.Background(), kind, snap.Graphs(), index.Options{MaxPathLen: testMaxPathLen})
		if err != nil {
			t.Fatalf("fresh %s build: %v", kind, err)
		}
		for qi, q := range testQueries() {
			if got, want := x.Filter(q), fresh.Filter(q); !sameInts(got, want) {
				t.Errorf("epoch %d %s q%d: Filter = %v, want %v", snap.Epoch(), kind, qi, got, want)
			}
			got, err := index.Answer(context.Background(), x, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := index.Answer(context.Background(), fresh, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !sameInts(got, want) {
				t.Errorf("epoch %d %s q%d: Answer = %v, want %v", snap.Epoch(), kind, qi, got, want)
			}
		}
		fresh.Close()
	}
}

// TestMutationParityFuzz is the tentpole property: random interleavings of
// Add/Remove/Replace across every registered kind and several shard counts,
// parity-checked against a from-scratch rebuild after every mutation —
// including through compactions (CompactEvery=2 forces them early).
func TestMutationParityFuzz(t *testing.T) {
	kinds := index.Kinds()
	for _, k := range []int{1, 2, 3} {
		r := rand.New(rand.NewSource(int64(100 + k)))
		ds := randomDataset(r, 4, 8, 2)
		st, err := live.NewStore(context.Background(), ds, live.Options{
			Kinds: kinds, Shards: k, CompactEvery: 2,
			Index: index.Options{MaxPathLen: testMaxPathLen},
		})
		if err != nil {
			t.Fatalf("K=%d: %v", k, err)
		}
		if st.Shards() != k {
			t.Fatalf("K=%d: Shards() = %d", k, st.Shards())
		}
		lastEpoch := st.Epoch()
		if lastEpoch != 1 {
			t.Fatalf("initial epoch = %d, want 1", lastEpoch)
		}
		sawCompaction := false
		for step := 0; step < 10; step++ {
			snap := st.Current()
			handles := snap.Handles()
			op := r.Intn(3)
			if len(handles) == 0 {
				op = 0
			}
			switch op {
			case 0:
				if _, err := st.Add(context.Background(), randomDataset(r, 1, 8, 2)[0]); err != nil {
					t.Fatalf("K=%d step %d: Add: %v", k, step, err)
				}
			case 1:
				compacted, err := st.Remove(context.Background(), handles[r.Intn(len(handles))])
				if err != nil {
					t.Fatalf("K=%d step %d: Remove: %v", k, step, err)
				}
				sawCompaction = sawCompaction || compacted
			case 2:
				h := handles[r.Intn(len(handles))]
				if err := st.Replace(context.Background(), h, randomDataset(r, 1, 8, 2)[0]); err != nil {
					t.Fatalf("K=%d step %d: Replace: %v", k, step, err)
				}
			}
			snap.Release()
			cur := st.Current()
			if cur.Epoch() != lastEpoch+1 {
				t.Fatalf("K=%d step %d: epoch %d after %d", k, step, cur.Epoch(), lastEpoch)
			}
			lastEpoch = cur.Epoch()
			if len(cur.Handles()) != len(cur.Graphs()) {
				t.Fatalf("K=%d step %d: %d handles for %d graphs", k, step, len(cur.Handles()), len(cur.Graphs()))
			}
			assertParity(t, cur, kinds)
			cur.Release()
		}
		if !sawCompaction && k == 1 {
			t.Error("CompactEvery=2 never compacted over 10 mutations")
		}
		st.Close()
	}
}

// TestSnapshotIsolationUnderChurn pins a snapshot, records its answers, then
// hammers the store with concurrent mutations and concurrent readers of the
// moving head; the pinned snapshot must keep answering byte-identically
// throughout, and no goroutines may survive the churn.
func TestSnapshotIsolationUnderChurn(t *testing.T) {
	before := runtime.NumGoroutine()
	r := rand.New(rand.NewSource(5))
	ds := randomDataset(r, 6, 8, 2)
	st, err := live.NewStore(context.Background(), ds, live.Options{
		Kinds: []string{index.KindPath}, Shards: 2, CompactEvery: 2,
		Index: index.Options{MaxPathLen: testMaxPathLen},
	})
	if err != nil {
		t.Fatal(err)
	}
	pinned := st.Current()
	q := pathQuery(0, 0, 1)
	want, err := index.Answer(context.Background(), pinned.Index(index.KindPath), q, nil)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var failed atomic.Bool
	stop := make(chan struct{})
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := st.Current()
				if _, err := index.Answer(context.Background(), snap.Index(index.KindPath), q, nil); err != nil {
					failed.Store(true)
				}
				if len(snap.Handles()) != len(snap.Graphs()) {
					failed.Store(true)
				}
				snap.Release()
			}
		}()
	}
	mr := rand.New(rand.NewSource(17))
	var handles []live.Handle
	for _, h := range pinned.Handles() {
		handles = append(handles, h)
	}
	for step := 0; step < 30; step++ {
		if len(handles) > 2 && mr.Intn(2) == 0 {
			i := mr.Intn(len(handles))
			if _, err := st.Remove(context.Background(), handles[i]); err != nil {
				t.Fatal(err)
			}
			handles = append(handles[:i], handles[i+1:]...)
		} else {
			h, err := st.Add(context.Background(), randomDataset(mr, 1, 8, 2)[0])
			if err != nil {
				t.Fatal(err)
			}
			handles = append(handles, h)
		}
		got, err := index.Answer(context.Background(), pinned.Index(index.KindPath), q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameInts(got, want) {
			t.Fatalf("pinned snapshot drifted at step %d: %v, want %v", step, got, want)
		}
	}
	close(stop)
	wg.Wait()
	if failed.Load() {
		t.Error("concurrent reader saw an inconsistent snapshot")
	}
	pinned.Release()
	st.Close()
	// Goroutine-leak harness: everything spawned must drain.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines leaked: %d before, %d after churn", before, n)
	}
}

// closeCounting wraps the flat path index to observe Close calls. It
// deliberately does NOT forward WithGraph (no embedding), so it never
// satisfies index.Inserter: every mutation takes the rebuild path and
// generates fresh sub-indexes, which is what the lifecycle test observes.
type closeCounting struct {
	inner  *index.Path
	closes *atomic.Int64
}

func (c closeCounting) Name() string                { return c.inner.Name() }
func (c closeCounting) Dataset() []*graph.Graph     { return c.inner.Dataset() }
func (c closeCounting) Filter(q *graph.Graph) []int { return c.inner.Filter(q) }
func (c closeCounting) Stats() index.Stats          { return c.inner.Stats() }
func (c closeCounting) Close()                      { c.closes.Add(1); c.inner.Close() }
func (c closeCounting) Verify(ctx context.Context, q *graph.Graph, graphID int) (bool, error) {
	return c.inner.Verify(ctx, q, graphID)
}
func (c closeCounting) FilterStream(ctx context.Context, q *graph.Graph, emit func(graphID int) bool) error {
	return c.inner.FilterStream(ctx, q, emit)
}

var testCloses atomic.Int64

const kindCounting = "test-close-counting"

func init() {
	index.Register(kindCounting, func(ctx context.Context, ds []*graph.Graph, opts index.Options) (index.Index, error) {
		x, err := index.BuildPath(ctx, ds, opts)
		if err != nil {
			return nil, err
		}
		return closeCounting{inner: x, closes: &testCloses}, nil
	})
}

// TestSubIndexLifecycle pins the refcounting contract: a sub-index shared by
// older snapshots survives being replaced in the grid until the last
// snapshot referencing it releases, and Store.Close drains the rest.
func TestSubIndexLifecycle(t *testing.T) {
	testCloses.Store(0)
	r := rand.New(rand.NewSource(9))
	ds := randomDataset(r, 4, 6, 2) // K=2: shard 0 owns slots 0,2; shard 1 owns 1,3
	st, err := live.NewStore(context.Background(), ds, live.Options{
		Kinds: []string{kindCounting}, Shards: 2,
		Index: index.Options{MaxPathLen: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	s1 := st.Current()
	// Replace slot 0 → rebuilds shard 0 only; s1 still references the old
	// shard-0 sub-index, so nothing may close yet.
	if err := st.Replace(context.Background(), s1.Handles()[0], randomDataset(r, 1, 6, 2)[0]); err != nil {
		t.Fatal(err)
	}
	if n := testCloses.Load(); n != 0 {
		t.Fatalf("%d sub-indexes closed while a snapshot still references them", n)
	}
	// Releasing s1 drops the last reference to the replaced shard-0 sub.
	s1.Release()
	if n := testCloses.Load(); n != 1 {
		t.Fatalf("after pinned release: %d closes, want 1", n)
	}
	// Close releases the store's reference to the head snapshot: both its
	// sub-indexes (new shard 0, original shard 1) must now close.
	st.Close()
	if n := testCloses.Load(); n != 3 {
		t.Fatalf("after store close: %d closes, want 3", n)
	}
	if _, err := st.Add(context.Background(), ds[0]); err == nil {
		t.Error("Add after Close did not error")
	}
	if _, err := st.Remove(context.Background(), 1); err == nil {
		t.Error("Remove after Close did not error")
	}
	if err := st.Replace(context.Background(), 1, ds[0]); err == nil {
		t.Error("Replace after Close did not error")
	}
	st.Close() // idempotent
}

// TestStoreErrors covers the argument-validation surface.
func TestStoreErrors(t *testing.T) {
	if _, err := live.NewStore(context.Background(), nil, live.Options{}); err == nil {
		t.Error("NewStore with no kinds did not error")
	}
	if _, err := live.NewStore(context.Background(), nil, live.Options{Kinds: []string{"no-such-kind"}}); err == nil {
		t.Error("NewStore with unregistered kind did not error")
	}
	r := rand.New(rand.NewSource(1))
	ds := randomDataset(r, 2, 6, 2)
	st, err := live.NewStore(context.Background(), ds, live.Options{
		Kinds: []string{index.KindPath}, Index: index.Options{MaxPathLen: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Remove(context.Background(), 99); err == nil {
		t.Error("Remove(unknown) did not error")
	}
	if err := st.Replace(context.Background(), 99, ds[0]); err == nil {
		t.Error("Replace(unknown) did not error")
	}
	// Double-remove of the same handle must fail the second time.
	snap := st.Current()
	h := snap.Handles()[0]
	snap.Release()
	if _, err := st.Remove(context.Background(), h); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Remove(context.Background(), h); err == nil {
		t.Error("double Remove did not error")
	}
}
