// Package live is the mutable dataset layer: it turns the repo's build-once
// index portfolio into an online store supporting graph ingest, delete and
// replace while queries keep racing — ROADMAP item 1. The design leans on
// the same observation the distributed-dataflow line of work uses for
// partition-local updates: under the round-robin sharding of PR 5, one graph
// lives in exactly one shard, so one mutation touches exactly one per-shard
// sub-index per kind and leaves the other K-1 untouched.
//
// # Slots, tombstones, epochs
//
// Every graph ever added occupies a permanent "slot" in a global slot space;
// slot s lives in shard s mod K at local position s div K, so appending a
// graph always appends to the tail of its shard's local dataset (slot
// assignment is monotone), which is what lets an index kind implementing
// index.Inserter ingest copy-on-write instead of rebuilding. Deletion never
// renumbers — renumbering would move graphs across shards and globalize the
// mutation — it tombstones the slot; the sub-index keeps the dead graph's
// features until the shard's tombstone count reaches the compaction
// threshold, at which point that shard (and only that shard) is rebuilt over
// its live graphs plus zero-vertex placeholders that keep local numbering
// stable. Queries see none of this: the index.Masked view renumbers live
// slots densely and skips tombstones, so answers are byte-identical to a
// from-scratch build over the live graphs.
//
// Every committed mutation bumps a monotonically increasing epoch and
// installs a new immutable Snapshot behind an atomic pointer. Queries
// acquire a snapshot with a lock-free retry (load, ref, recheck) and keep
// reading it to completion regardless of concurrent mutations — snapshot
// isolation with no locks on the query path. Sub-indexes shared between
// snapshot generations are refcounted per snapshot and closed only when the
// last snapshot referencing them drains, so a Grapes verification pool can
// never be torn down under an in-flight query.
package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
)

// DefaultCompactEvery is the per-shard tombstone count that triggers a
// shard-local rebuild when Options.CompactEvery is unset.
const DefaultCompactEvery = 8

// Handle is the stable public identity of an added graph: it survives every
// mutation and compaction (unlike the dense query-answer IDs, which shift as
// earlier graphs are deleted) and is the argument of Remove and Replace.
type Handle int64

// ErrUnknownHandle reports a mutation against a handle the store never
// issued or has already removed. Callers match it with errors.Is.
var ErrUnknownHandle = errors.New("live: unknown handle")

// Options configures NewStore.
type Options struct {
	// Kinds lists the index kinds maintained per shard (at least one).
	Kinds []string
	// Shards is the fixed shard count K; unlike index.BuildSharded it is
	// NOT clamped to the initial dataset size, because the dataset grows.
	// <= 0 means 1.
	Shards int
	// CompactEvery is the per-shard tombstone threshold that triggers a
	// shard-local rebuild; <= 0 means DefaultCompactEvery.
	CompactEvery int
	// Index carries the per-sub-index build options (MaxPathLen, Workers,
	// Pool); its Shards field is ignored — sharding is the store's job.
	Index index.Options
}

// Snapshot is one immutable epoch of the store: the dense live dataset, its
// handles, and one dense (Masked) index per kind. Obtain with
// Store.Current, which takes a reference; callers must Release exactly once
// when done reading. All accessors are safe for concurrent use.
type Snapshot struct {
	epoch   uint64
	graphs  []*graph.Graph
	handles []Handle
	indexes map[string]index.Index

	refs    atomic.Int64
	once    sync.Once
	release func()
}

// Epoch returns the snapshot's dataset epoch (1 for the initial build).
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// Graphs returns the dense live dataset, in slot (hence insertion) order.
func (s *Snapshot) Graphs() []*graph.Graph { return s.graphs }

// Handles returns the public handle of each dense graph, parallel to
// Graphs: Handles()[i] is the handle of answer ID i at this epoch.
func (s *Snapshot) Handles() []Handle { return s.handles }

// Index returns the dense filtering index of the given kind, or nil if the
// store does not maintain that kind.
func (s *Snapshot) Index(kind string) index.Index { return s.indexes[kind] }

// Release drops the caller's reference; the last release of the last
// snapshot referencing a sub-index closes it. Releasing more than once per
// acquired reference is a bug, but the close itself is idempotent.
func (s *Snapshot) Release() {
	if s.refs.Add(-1) == 0 {
		s.once.Do(s.release)
	}
}

// Store is the mutable dataset engine. Mutations (Add, Remove, Replace) are
// serialized internally; Current and the snapshots it returns are lock-free
// and safe for any number of concurrent readers.
type Store struct {
	kinds        []string
	k            int
	compactEvery int
	ixOpts       index.Options
	placeholder  *graph.Graph

	// Mutation state, guarded by mutMu. Slices handed to snapshots are
	// never written in place after install: Remove/Replace copy before
	// writing, Add appends past every published length.
	mutMu      sync.Mutex
	slotGraphs []*graph.Graph   // slot space; placeholders at dead slots
	alive      []bool           // slot space
	handleOf   []Handle         // slot space
	byHandle   map[Handle]int   // live handles → slot
	local      [][]*graph.Graph // per-shard slot-space datasets
	tombs      []int            // per-shard tombstones since last rebuild
	grid       map[string][]index.Index
	nextHandle Handle
	liveCount  int
	closed     bool

	epoch atomic.Uint64
	cur   atomic.Pointer[Snapshot]

	refMu   sync.Mutex
	subRefs map[index.Index]int
}

// NewStore builds the initial sub-index grid over ds (epoch 1). The graphs
// get handles 1..len(ds) in dataset order.
func NewStore(ctx context.Context, ds []*graph.Graph, opts Options) (*Store, error) {
	if len(opts.Kinds) == 0 {
		return nil, fmt.Errorf("live: no index kinds")
	}
	k := opts.Shards
	if k < 1 {
		k = 1
	}
	compact := opts.CompactEvery
	if compact <= 0 {
		compact = DefaultCompactEvery
	}
	ixOpts := opts.Index
	ixOpts.Shards = 0
	st := &Store{
		kinds:        append([]string(nil), opts.Kinds...),
		k:            k,
		compactEvery: compact,
		ixOpts:       ixOpts,
		placeholder:  graph.NewBuilder("live:dead-slot").MustBuild(),
		byHandle:     make(map[Handle]int, len(ds)),
		local:        make([][]*graph.Graph, k),
		tombs:        make([]int, k),
		grid:         make(map[string][]index.Index, len(opts.Kinds)),
		nextHandle:   1,
		liveCount:    len(ds),
		subRefs:      make(map[index.Index]int),
	}
	for slot, g := range ds {
		st.slotGraphs = append(st.slotGraphs, g)
		st.alive = append(st.alive, true)
		h := st.nextHandle
		st.nextHandle++
		st.handleOf = append(st.handleOf, h)
		st.byHandle[h] = slot
		st.local[slot%k] = append(st.local[slot%k], g)
	}
	for _, kind := range st.kinds {
		subs := make([]index.Index, k)
		for s := 0; s < k; s++ {
			sub, err := index.Build(ctx, kind, st.local[s], st.ixOpts)
			if err != nil {
				for _, built := range subs[:s] {
					built.Close()
				}
				for _, prev := range st.kinds {
					for _, built := range st.grid[prev] {
						built.Close()
					}
				}
				return nil, fmt.Errorf("live: building %s shard %d/%d: %w", kind, s, k, err)
			}
			subs[s] = sub
		}
		st.grid[kind] = subs
	}
	st.installLocked(1)
	return st, nil
}

// Shards reports the fixed shard count K.
func (st *Store) Shards() int { return st.k }

// Epoch reports the current dataset epoch without acquiring a snapshot.
func (st *Store) Epoch() uint64 { return st.epoch.Load() }

// Current acquires the current snapshot; the caller must Release it. The
// load-ref-recheck retry makes acquisition lock-free: if a mutation swaps
// the snapshot between the load and the ref, the recheck fails, the stale
// ref is dropped (harmlessly — the close is once-guarded) and the reader
// retries on the fresh pointer. After Close, Current returns nil: Close
// swaps the pointer to nil BEFORE dropping the store's reference, so a
// reader can never ref-resurrect a snapshot whose release already ran
// (refs 0→1 on a disposed snapshot would pass the recheck — the pointer
// still matched — and hand out closed sub-indexes).
func (st *Store) Current() *Snapshot {
	for {
		s := st.cur.Load()
		if s == nil {
			return nil
		}
		s.refs.Add(1)
		if st.cur.Load() == s {
			return s
		}
		s.Release()
	}
}

// installLocked builds a snapshot of the present mutation state at the
// given epoch, references every sub-index it uses, and publishes it,
// dropping the store's reference to the predecessor. Caller holds mutMu
// (or is NewStore, before the store escapes).
func (st *Store) installLocked(epoch uint64) {
	dense := make([]*graph.Graph, 0, st.liveCount)
	handles := make([]Handle, 0, st.liveCount)
	for slot, ok := range st.alive {
		if ok {
			dense = append(dense, st.slotGraphs[slot])
			handles = append(handles, st.handleOf[slot])
		}
	}
	subs := make([]index.Index, 0, len(st.kinds)*st.k)
	indexes := make(map[string]index.Index, len(st.kinds))
	for _, kind := range st.kinds {
		shard := append([]index.Index(nil), st.grid[kind]...)
		subs = append(subs, shard...)
		indexes[kind] = index.NewMasked(index.NewShardedFrom(st.slotGraphs, kind, shard), dense, st.alive)
	}
	st.refMu.Lock()
	for _, sub := range subs {
		st.subRefs[sub]++
	}
	st.refMu.Unlock()
	snap := &Snapshot{epoch: epoch, graphs: dense, handles: handles, indexes: indexes}
	snap.refs.Store(1) // the store's own reference, dropped at the next install (or Close)
	snap.release = func() {
		st.refMu.Lock()
		var dead []index.Index
		for _, sub := range subs {
			if st.subRefs[sub]--; st.subRefs[sub] == 0 {
				delete(st.subRefs, sub)
				dead = append(dead, sub)
			}
		}
		st.refMu.Unlock()
		for _, sub := range dead {
			sub.Close()
		}
	}
	st.epoch.Store(epoch)
	if old := st.cur.Swap(snap); old != nil {
		old.Release()
	}
}

// Add ingests g, assigning it the next slot (hence the tail of shard
// slot mod K) and a fresh handle. Sub-indexes implementing index.Inserter
// absorb it copy-on-write; the rest rebuild shard-locally. On error the
// store is unchanged.
func (st *Store) Add(ctx context.Context, g *graph.Graph) (Handle, error) {
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	if st.closed {
		return 0, fmt.Errorf("live: store closed")
	}
	slot := len(st.slotGraphs)
	shard := slot % st.k
	newLocal := append(append([]*graph.Graph(nil), st.local[shard]...), g)
	fresh, err := st.rebuildShard(ctx, shard, newLocal, func(cur index.Index) (index.Index, error) {
		if ins, ok := cur.(index.Inserter); ok {
			return ins.WithGraph(ctx, g)
		}
		return nil, errNoInserter
	})
	if err != nil {
		return 0, err
	}
	h := st.nextHandle
	st.nextHandle++
	st.slotGraphs = append(st.slotGraphs, g)
	st.alive = append(st.alive, true)
	st.handleOf = append(st.handleOf, h)
	st.byHandle[h] = slot
	st.local[shard] = newLocal
	st.liveCount++
	st.commitShard(shard, fresh)
	st.installLocked(st.epoch.Load() + 1)
	return h, nil
}

// Remove tombstones the graph behind h — O(1) on the index side — and, once
// the owning shard accumulates CompactEvery tombstones, compacts it with a
// shard-local rebuild that sheds the dead graphs' features. Reports whether
// this call compacted. On error the store is unchanged.
func (st *Store) Remove(ctx context.Context, h Handle) (compacted bool, err error) {
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	if st.closed {
		return false, fmt.Errorf("live: store closed")
	}
	slot, ok := st.byHandle[h]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownHandle, h)
	}
	shard := slot % st.k
	newLocal := append([]*graph.Graph(nil), st.local[shard]...)
	newLocal[slot/st.k] = st.placeholder
	var fresh map[string]index.Index
	if st.tombs[shard]+1 >= st.compactEvery {
		fresh, err = st.rebuildShard(ctx, shard, newLocal, nil)
		if err != nil {
			return false, err
		}
		compacted = true
	}
	newSlots := append([]*graph.Graph(nil), st.slotGraphs...)
	newSlots[slot] = st.placeholder
	newAlive := append([]bool(nil), st.alive...)
	newAlive[slot] = false
	st.slotGraphs, st.alive = newSlots, newAlive
	delete(st.byHandle, h)
	st.local[shard] = newLocal
	st.liveCount--
	if compacted {
		st.tombs[shard] = 0
		st.commitShard(shard, fresh)
	} else {
		st.tombs[shard]++
	}
	st.installLocked(st.epoch.Load() + 1)
	return compacted, nil
}

// Replace swaps the graph behind h for g in place — same slot, same handle,
// same shard — rebuilding the owning shard's sub-indexes. On error the
// store is unchanged.
func (st *Store) Replace(ctx context.Context, h Handle, g *graph.Graph) error {
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	if st.closed {
		return fmt.Errorf("live: store closed")
	}
	slot, ok := st.byHandle[h]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownHandle, h)
	}
	shard := slot % st.k
	newLocal := append([]*graph.Graph(nil), st.local[shard]...)
	newLocal[slot/st.k] = g
	fresh, err := st.rebuildShard(ctx, shard, newLocal, nil)
	if err != nil {
		return err
	}
	newSlots := append([]*graph.Graph(nil), st.slotGraphs...)
	newSlots[slot] = g
	st.slotGraphs = newSlots
	st.local[shard] = newLocal
	st.commitShard(shard, fresh)
	st.installLocked(st.epoch.Load() + 1)
	return nil
}

// errNoInserter is the sentinel an incremental path returns to fall back to
// a full shard rebuild.
var errNoInserter = fmt.Errorf("live: kind does not support incremental insert")

// rebuildShard produces the replacement sub-index of every kind for one
// shard without touching store state, so a failure aborts the mutation
// cleanly. incremental, when non-nil, is tried first per kind and may
// return errNoInserter to fall back to the full rebuild over newLocal.
func (st *Store) rebuildShard(ctx context.Context, shard int, newLocal []*graph.Graph, incremental func(cur index.Index) (index.Index, error)) (map[string]index.Index, error) {
	fresh := make(map[string]index.Index, len(st.kinds))
	abort := func() {
		for _, sub := range fresh {
			sub.Close()
		}
	}
	for _, kind := range st.kinds {
		var sub index.Index
		var err error
		if incremental != nil {
			sub, err = incremental(st.grid[kind][shard])
			if err == errNoInserter {
				sub, err = nil, nil
			} else if err != nil {
				abort()
				return nil, fmt.Errorf("live: incremental %s update of shard %d: %w", kind, shard, err)
			}
		}
		if sub == nil {
			sub, err = index.Build(ctx, kind, newLocal, st.ixOpts)
			if err != nil {
				abort()
				return nil, fmt.Errorf("live: rebuilding %s shard %d: %w", kind, shard, err)
			}
		}
		fresh[kind] = sub
	}
	return fresh, nil
}

// commitShard swaps the freshly built sub-indexes into the grid. The
// replaced sub-indexes stay open — snapshots still referencing them own
// them via subRefs and close them as they drain.
func (st *Store) commitShard(shard int, fresh map[string]index.Index) {
	for kind, sub := range fresh {
		subs := append([]index.Index(nil), st.grid[kind]...)
		subs[shard] = sub
		st.grid[kind] = subs
	}
}

// Close drops the store's reference to the current snapshot and rejects
// further mutations; Current returns nil from then on. Snapshots already
// acquired stay valid until their holders release them; sub-indexes close
// as the last references drain. The swap-to-nil must happen before the
// release: a plain Load+Release would leave the pointer published, and a
// concurrent Current could increment refs 0→1 on the just-disposed
// snapshot, pass its recheck, and return sub-indexes that are already
// closed (the double-close itself is once-guarded, but the use-after-close
// is not).
func (st *Store) Close() {
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	if s := st.cur.Swap(nil); s != nil {
		s.Release()
	}
}
