package live_test

// Persistence-facing tests: ExportState/Restore must reproduce a store that
// is indistinguishable from the original — same epoch, same handles, same
// answers — and must keep agreeing after further identical mutations (handle
// and next-handle continuity). Plus the Current/Release/Close stress test:
// under -race, concurrent snapshot acquisition against mutations and a
// final Close must close every sub-index exactly once and never hand a
// reader a disposed snapshot.

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
	"github.com/psi-graph/psi/internal/live"
)

// roundTripGrid pushes every sub-index of the exported grid through the
// snapshot codec contract — Export to flat features, Restore into a brand
// new instance over the same shard dataset — standing in for the on-disk
// write/read the snapshot package performs. Restoring into fresh instances
// also keeps ownership disjoint: the original store keeps its subs, the
// restored store adopts the copies.
func roundTripGrid(t *testing.T, state live.State) live.State {
	t.Helper()
	locals := make([][]*graph.Graph, state.Shards)
	for slot, g := range state.SlotGraphs {
		locals[slot%state.Shards] = append(locals[slot%state.Shards], g)
	}
	grid := make(map[string][]index.Index, len(state.Grid))
	for kind, subs := range state.Grid {
		fresh := make([]index.Index, len(subs))
		for s, sub := range subs {
			feats, maxLen, err := index.Export(sub)
			if err != nil {
				t.Fatalf("export %s shard %d: %v", kind, s, err)
			}
			fresh[s], err = index.Restore(kind, locals[s], maxLen, index.Options{MaxPathLen: maxLen}, feats)
			if err != nil {
				t.Fatalf("restore %s shard %d: %v", kind, s, err)
			}
		}
		grid[kind] = fresh
	}
	state.Grid = grid
	return state
}

func sameHandles(a, b []live.Handle) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// assertStoresAgree compares the two stores' current snapshots: epoch,
// handle vector, dataset, and per-kind answers over the probe queries.
func assertStoresAgree(t *testing.T, a, b *live.Store, kinds []string) {
	t.Helper()
	sa, sb := a.Current(), b.Current()
	defer sa.Release()
	defer sb.Release()
	if sa.Epoch() != sb.Epoch() {
		t.Fatalf("epoch %d vs %d", sa.Epoch(), sb.Epoch())
	}
	if !sameHandles(sa.Handles(), sb.Handles()) {
		t.Fatalf("handles %v vs %v", sa.Handles(), sb.Handles())
	}
	ga, gb := sa.Graphs(), sb.Graphs()
	if len(ga) != len(gb) {
		t.Fatalf("%d vs %d graphs", len(ga), len(gb))
	}
	for i := range ga {
		if !ga[i].Equal(gb[i]) {
			t.Fatalf("graph %d differs after restore", i)
		}
	}
	for _, kind := range kinds {
		xa, xb := sa.Index(kind), sb.Index(kind)
		for qi, q := range testQueries() {
			wa, err := index.Answer(context.Background(), xa, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			wb, err := index.Answer(context.Background(), xb, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !sameInts(wa, wb) {
				t.Errorf("%s q%d: %v vs %v after restore", kind, qi, wa, wb)
			}
		}
	}
}

// TestExportRestoreRoundTrip churns a store, exports its state, round-trips
// every sub-index through the flat-feature codec, restores, and demands the
// restored store match the original — then keeps mutating BOTH identically
// and demands they stay in lockstep, which proves the restored store
// preserved handle identity, the next-handle counter and tombstone
// schedule, not just the visible dataset.
func TestExportRestoreRoundTrip(t *testing.T) {
	// Not index.Kinds(): that would pick up the close-counting test kinds
	// registered by this package, which have no export support.
	kinds := []string{index.KindPath, "grapes", "ggsx"}
	r := rand.New(rand.NewSource(42))
	ds := randomDataset(r, 6, 8, 2)
	st, err := live.NewStore(context.Background(), ds, live.Options{
		Kinds: kinds, Shards: 2, CompactEvery: 3,
		Index: index.Options{MaxPathLen: testMaxPathLen},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Churn: leave live slots, tombstoned slots, and a replaced slot behind.
	h, err := st.Add(context.Background(), randomDataset(r, 1, 8, 2)[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Remove(context.Background(), live.Handle(2)); err != nil {
		t.Fatal(err)
	}
	if err := st.Replace(context.Background(), h, randomDataset(r, 1, 8, 2)[0]); err != nil {
		t.Fatal(err)
	}

	state, err := st.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if state.Epoch != st.Epoch() {
		t.Fatalf("exported epoch %d, store at %d", state.Epoch, st.Epoch())
	}
	if len(state.Tombs) != state.Shards {
		t.Fatalf("%d tombstone counters for %d shards", len(state.Tombs), state.Shards)
	}

	restored, err := live.Restore(roundTripGrid(t, state), 3, index.Options{MaxPathLen: testMaxPathLen})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if restored.Shards() != st.Shards() {
		t.Fatalf("restored Shards() = %d, want %d", restored.Shards(), st.Shards())
	}
	assertStoresAgree(t, st, restored, kinds)

	// Lockstep continuation: identical mutations must yield identical
	// handles, epochs, compaction points and answers on both stores.
	for step := 0; step < 6; step++ {
		g := randomDataset(r, 1, 8, 2)[0]
		h1, err := st.Add(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		h2, err := restored.Add(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		if h1 != h2 {
			t.Fatalf("step %d: original issued handle %d, restored %d", step, h1, h2)
		}
		if step%2 == 1 {
			c1, err := st.Remove(context.Background(), h1)
			if err != nil {
				t.Fatal(err)
			}
			c2, err := restored.Remove(context.Background(), h1)
			if err != nil {
				t.Fatal(err)
			}
			if c1 != c2 {
				t.Fatalf("step %d: compaction diverged (%v vs %v)", step, c1, c2)
			}
		}
		assertStoresAgree(t, st, restored, kinds)
	}
}

// TestExportStateClosed: ExportState after Close must fail, not hand out a
// grid of closed sub-indexes.
func TestExportStateClosed(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	st, err := live.NewStore(context.Background(), randomDataset(r, 2, 6, 2), live.Options{
		Kinds: []string{index.KindPath}, Index: index.Options{MaxPathLen: testMaxPathLen},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ExportState(); err != nil {
		t.Fatalf("ExportState before close: %v", err)
	}
	st.Close()
	if st.Current() != nil {
		t.Fatal("Current() non-nil after Close")
	}
	if _, err := st.ExportState(); err == nil {
		t.Fatal("ExportState after Close succeeded")
	}
}

// TestRestoreValidation: every malformed State must be rejected before a
// store is built.
func TestRestoreValidation(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	st, err := live.NewStore(context.Background(), randomDataset(r, 4, 6, 2), live.Options{
		Kinds: []string{index.KindPath}, Shards: 2,
		Index: index.Options{MaxPathLen: testMaxPathLen},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	good, err := st.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		mutate  func(s *live.State)
		wantSub string
	}{
		{"zero shards", func(s *live.State) { s.Shards = 0 }, "shard count"},
		{"no kinds", func(s *live.State) { s.Kinds = nil }, "no index kinds"},
		{"alive length", func(s *live.State) { s.Alive = s.Alive[:1] }, "slot arrays"},
		{"handles length", func(s *live.State) { s.Handles = s.Handles[:1] }, "slot arrays"},
		{"tombs length", func(s *live.State) { s.Tombs = nil }, "tombstone counters"},
		{"grid shards", func(s *live.State) {
			s.Grid = map[string][]index.Index{index.KindPath: s.Grid[index.KindPath][:1]}
		}, "sub-indexes"},
		{"zero handle", func(s *live.State) {
			s.Handles = append([]live.Handle(nil), s.Handles...)
			s.Handles[0] = 0
		}, "non-positive handle"},
		{"reissued handle", func(s *live.State) { s.NextHandle = s.Handles[len(s.Handles)-1] }, "would reissue"},
		{"duplicate handle", func(s *live.State) {
			s.Handles = append([]live.Handle(nil), s.Handles...)
			s.Handles[1] = s.Handles[3]
		}, "owned by slots"},
		{"zero epoch", func(s *live.State) { s.Epoch = 0 }, "epoch"},
	}
	for _, tc := range cases {
		s := good
		tc.mutate(&s)
		if _, err := live.Restore(s, 0, index.Options{MaxPathLen: testMaxPathLen}); err == nil {
			t.Errorf("%s: Restore succeeded", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantSub)
		}
	}

	// Duplicate-handle on DEAD slots is legal (placeholders share nothing);
	// a dead slot only needs a historically valid handle.
	if _, err := live.Restore(good, 0, index.Options{MaxPathLen: testMaxPathLen}); err != nil {
		t.Fatalf("unmodified state failed to restore: %v", err)
	}

	// Sub-index over the wrong shard dataset size.
	bad := good
	wrong, err := index.Build(context.Background(), index.KindPath, nil, index.Options{MaxPathLen: testMaxPathLen})
	if err != nil {
		t.Fatal(err)
	}
	defer wrong.Close()
	bad.Grid = map[string][]index.Index{index.KindPath: {wrong, good.Grid[index.KindPath][1]}}
	if _, err := live.Restore(bad, 0, index.Options{MaxPathLen: testMaxPathLen}); err == nil {
		t.Error("Restore accepted sub-index with wrong dataset size")
	} else if !strings.Contains(err.Error(), "shard holds") {
		t.Errorf("wrong-size error: %v", err)
	}
}

// The stress test reuses live_test.go's closeCounting wrapper under a
// second registered kind whose builder also counts builds, so the end state
// can assert builds == closes exactly.
var (
	stressCloses atomic.Int64
	stressBuilds atomic.Int64
	stressOnce   sync.Once
)

const stressKind = "test-stress-counting"

func registerStressKind() {
	stressOnce.Do(func() {
		index.Register(stressKind, func(ctx context.Context, ds []*graph.Graph, opts index.Options) (index.Index, error) {
			x, err := index.BuildPath(ctx, ds, opts)
			if err != nil {
				return nil, err
			}
			stressBuilds.Add(1)
			return closeCounting{inner: x, closes: &stressCloses}, nil
		})
	})
}

// TestCurrentReleaseCloseStress is the satellite-3 regression test: N
// readers hammer Current/Release while a mutator churns Add/Remove and then
// Closes the store mid-flight. Under -race this exercises the
// load-ref-recheck retry and the Close swap-to-nil ordering; afterwards
// every sub-index ever built must have been closed exactly once — a
// double-close or a leak both fail the counter check.
func TestCurrentReleaseCloseStress(t *testing.T) {
	registerStressKind()
	for round := 0; round < 3; round++ {
		builds0, closes0 := stressBuilds.Load(), stressCloses.Load()
		r := rand.New(rand.NewSource(int64(round)))
		st, err := live.NewStore(context.Background(), randomDataset(r, 4, 6, 2), live.Options{
			Kinds: []string{stressKind}, Shards: 2, CompactEvery: 2,
			Index: index.Options{MaxPathLen: testMaxPathLen},
		})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		stop := make(chan struct{})
		q := pathQuery(0, 0, 1)
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					snap := st.Current()
					if snap == nil {
						// Store closed underneath us: done. Seeing nil and
						// never a disposed snapshot IS the property.
						select {
						case <-stop:
							return
						default:
							continue
						}
					}
					snap.Index(stressKind).Filter(q)
					snap.Release()
				}
			}()
		}
		var handles []live.Handle
		for step := 0; step < 30; step++ {
			if len(handles) == 0 || r.Intn(2) == 0 {
				h, err := st.Add(context.Background(), randomDataset(r, 1, 6, 2)[0])
				if err != nil {
					t.Fatal(err)
				}
				handles = append(handles, h)
			} else {
				i := r.Intn(len(handles))
				if _, err := st.Remove(context.Background(), handles[i]); err != nil {
					t.Fatal(err)
				}
				handles = append(handles[:i], handles[i+1:]...)
			}
		}
		st.Close()
		close(stop)
		wg.Wait()
		st.Close() // idempotent
		if builds, closes := stressBuilds.Load()-builds0, stressCloses.Load()-closes0; builds != closes {
			t.Fatalf("round %d: %d sub-indexes built, %d closed", round, builds, closes)
		}
	}
}
