package spath

import (
	"context"
	"testing"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
)

func TestName(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0}, nil)
	m := New(g)
	if m.Name() != "SPA" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Graph() != g {
		t.Error("Graph accessor")
	}
	if m.radius != DefaultRadius {
		t.Errorf("radius = %d", m.radius)
	}
}

func TestRadiusClamp(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0}, nil)
	if NewWithRadius(g, 0).radius != 1 {
		t.Error("radius must clamp to >= 1")
	}
}

func TestDistanceSignature(t *testing.T) {
	// path 0-1-2-3 with labels 5,6,7,8
	g := graph.MustNew("p", []graph.Label{5, 6, 7, 8}, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	sig := distanceSignature(g, 0, 3)
	if sig[0][6] != 1 || len(sig[0]) != 1 {
		t.Errorf("distance-1 sig = %v", sig[0])
	}
	if sig[1][7] != 1 || len(sig[1]) != 1 {
		t.Errorf("distance-2 sig = %v", sig[1])
	}
	if sig[2][8] != 1 || len(sig[2]) != 1 {
		t.Errorf("distance-3 sig = %v", sig[2])
	}
}

func TestSigContainsCumulative(t *testing.T) {
	// Query sees one label-7 at distance 2; candidate sees it at distance 1.
	// Cumulative containment must accept (distances shrink in embeddings).
	qSig := []map[graph.Label]int32{{}, {7: 1}}
	gSig := []map[graph.Label]int32{{7: 1}, {}}
	if !sigContains(gSig, qSig) {
		t.Error("cumulative containment should accept closer labels")
	}
	// Reverse direction must reject: query sees label at distance 1 but
	// candidate only at distance 2.
	if sigContains(qSig, gSig) == false {
		// qSig as graph sig: cum at d=1 {} lacks 7 required by gSig? gSig
		// at d=1 has 7:1 -> reject.
		t.Log("rejected as expected")
	}
	qSig2 := []map[graph.Label]int32{{7: 1}, {}}
	gSig2 := []map[graph.Label]int32{{}, {7: 1}}
	if sigContains(gSig2, qSig2) {
		t.Error("label required at distance 1 cannot be satisfied at distance 2")
	}
}

func TestDecomposeCoversAllEdges(t *testing.T) {
	g := graph.MustNew("q", []graph.Label{0, 0, 0, 0, 0},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {1, 3}})
	paths := decompose(g, 4)
	covered := make(map[[2]int32]bool)
	for _, p := range paths {
		for i := 0; i+1 < len(p); i++ {
			a, b := p[i], p[i+1]
			if a > b {
				a, b = b, a
			}
			if !g.HasEdge(int(a), int(b)) {
				t.Fatalf("path %v uses non-edge (%d,%d)", p, a, b)
			}
			covered[[2]int32{a, b}] = true
		}
	}
	if len(covered) != g.M() {
		t.Errorf("decomposition covers %d edges, query has %d", len(covered), g.M())
	}
}

func TestDecomposeRespectsMaxLen(t *testing.T) {
	// long path graph: 10 edges must be chopped into ≤4-edge segments
	labels := make([]graph.Label, 11)
	var edges [][2]int
	for i := 0; i < 10; i++ {
		edges = append(edges, [2]int{i, i + 1})
	}
	g := graph.MustNew("long", labels, edges)
	paths := decompose(g, 4)
	for _, p := range paths {
		if len(p)-1 > 4 {
			t.Errorf("path %v exceeds max length 4", p)
		}
	}
}

func TestDecomposeIsolatedVertex(t *testing.T) {
	g := graph.MustNew("iso", []graph.Label{0, 0, 0}, [][2]int{{0, 1}})
	paths := decompose(g, 4)
	seen := make(map[int32]bool)
	for _, p := range paths {
		for _, v := range p {
			seen[v] = true
		}
	}
	if !seen[2] {
		t.Error("isolated vertex 2 must appear in some path")
	}
}

func TestMatchTriangleQuery(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 0, 0, 0},
		[][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	q := graph.MustNew("q", []graph.Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	m := New(g)
	embs, err := m.Match(context.Background(), q, 100)
	if err != nil {
		t.Fatal(err)
	}
	// triangle {0,1,2}: 3! = 6 automorphic embeddings
	if len(embs) != 6 {
		t.Errorf("got %d embeddings, want 6", len(embs))
	}
	for _, e := range embs {
		if err := match.VerifyEmbedding(q, g, e); err != nil {
			t.Errorf("invalid embedding %v: %v", e, err)
		}
	}
}

func TestCandidateFilterByDistanceSignature(t *testing.T) {
	// Stored graph: two label-0 vertices; only vertex 0 has a label-9
	// vertex within distance 2.
	g := graph.MustNew("g", []graph.Label{0, 1, 9, 0, 1},
		[][2]int{{0, 1}, {1, 2}, {3, 4}})
	q := graph.MustNew("q", []graph.Label{0, 1, 9}, [][2]int{{0, 1}, {1, 2}})
	m := New(g)
	cand, err := m.candidates(q, match.NewBudget(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if cand == nil {
		t.Fatal("candidates should exist")
	}
	if !cand[0][0] {
		t.Error("vertex 0 must be a candidate for query vertex 0")
	}
	if cand[0][3] {
		t.Error("vertex 3 must be pruned: no label-9 within distance 2")
	}
}

func TestMatchDisconnectedQuery(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 1, 0, 1}, [][2]int{{0, 1}, {2, 3}})
	q := graph.MustNew("q", []graph.Label{0, 1, 0, 1}, [][2]int{{0, 1}, {2, 3}})
	embs, err := New(g).Match(context.Background(), q, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// pairs (0,1),(2,3) for first comp × remaining pair for second = 2
	if len(embs) != 2 {
		t.Errorf("got %d embeddings, want 2", len(embs))
	}
}
