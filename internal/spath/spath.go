// Package spath implements sPath (Zhao & Han, PVLDB 2010), abbreviated SPA
// in the paper's figures. Per §3.1.2 of the paper, sPath maintains for every
// stored-graph vertex a neighbourhood signature decomposed distance-wise:
// for each radius d ≤ k it records how many vertices of each label lie
// within distance d. Query processing decomposes the query into shortest
// paths that cover all query edges, selects candidate paths with good
// selectivity (minimizing the estimated result size of each join), and
// verifies the chosen paths edge by edge.
package spath

import (
	"context"
	"sort"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
)

// DefaultRadius matches the paper's setup: "a neighbourhood radius of 4 and
// maximum path length 4".
const DefaultRadius = 4

// DefaultMaxPathLen is the maximum number of edges per decomposed path.
const DefaultMaxPathLen = 4

// Matcher is an sPath instance bound to a stored graph.
type Matcher struct {
	g      *graph.Graph
	radius int
	// sig[v][d-1] maps label -> number of vertices with that label at
	// distance exactly d from v. Containment tests use cumulative sums.
	sig [][]map[graph.Label]int32
}

// New builds the sPath distance-wise signature index with DefaultRadius.
func New(g *graph.Graph) *Matcher { return NewWithRadius(g, DefaultRadius) }

// NewWithRadius builds the index with an explicit neighbourhood radius.
func NewWithRadius(g *graph.Graph, radius int) *Matcher {
	if radius < 1 {
		radius = 1
	}
	m := &Matcher{g: g, radius: radius}
	m.sig = make([][]map[graph.Label]int32, g.N())
	for v := 0; v < g.N(); v++ {
		m.sig[v] = distanceSignature(g, v, radius)
	}
	return m
}

// Name implements match.Matcher.
func (m *Matcher) Name() string { return "SPA" }

// Graph returns the stored graph.
func (m *Matcher) Graph() *graph.Graph { return m.g }

// distanceSignature computes, for each distance 1..radius, the multiset of
// labels at exactly that distance from v.
func distanceSignature(g *graph.Graph, v, radius int) []map[graph.Label]int32 {
	sig := make([]map[graph.Label]int32, radius)
	for d := range sig {
		sig[d] = make(map[graph.Label]int32)
	}
	dist := g.BFSDistances(v, radius)
	for w, d := range dist {
		if d >= 1 && d <= radius {
			sig[d-1][g.Label(w)]++
		}
	}
	return sig
}

// sigContains checks cumulative containment: for every radius d and label l,
// the query vertex must not see more l-labeled vertices within distance d
// than the candidate graph vertex does. (Embeddings can only shrink
// distances, so cumulative counts are monotone under subgraph isomorphism.)
func sigContains(gSig, qSig []map[graph.Label]int32) bool {
	cumG := make(map[graph.Label]int32)
	cumQ := make(map[graph.Label]int32)
	d := len(qSig)
	if len(gSig) < d {
		d = len(gSig)
	}
	for i := 0; i < d; i++ {
		for l, c := range gSig[i] {
			cumG[l] += c
		}
		for l, c := range qSig[i] {
			cumQ[l] += c
		}
		for l, c := range cumQ {
			if cumG[l] < c {
				return false
			}
		}
	}
	return true
}

// Match implements match.Matcher by collecting the stream into a slice.
func (m *Matcher) Match(ctx context.Context, q *graph.Graph, limit int) ([]match.Embedding, error) {
	return match.CollectMatch(ctx, m, q, limit)
}

// MatchStream implements match.StreamMatcher: embeddings are emitted into
// sink as the search discovers them.
func (m *Matcher) MatchStream(ctx context.Context, q *graph.Graph, limit int, sink match.Sink) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	col := match.NewStreamCollector(limit, sink)
	if q.N() == 0 {
		return col.FinishStream(col.Found(match.Embedding{}))
	}
	if q.N() > m.g.N() || q.M() > m.g.M() {
		return nil
	}
	budget := match.NewBudget(ctx)
	cand, err := m.candidates(q, budget)
	if err != nil || cand == nil {
		return err
	}
	paths := decompose(q, DefaultMaxPathLen)
	orderPaths(paths, cand)
	s := &searcher{
		m:      m,
		q:      q,
		cand:   cand,
		paths:  paths,
		emb:    make(match.Embedding, q.N()),
		used:   make([]bool, m.g.N()),
		col:    col,
		budget: budget,
	}
	for i := range s.emb {
		s.emb[i] = -1
	}
	return col.FinishStream(s.matchPath(0, 0))
}

// candidates computes per-query-vertex candidate sets by label, degree and
// distance-signature containment. Returns nil if any set is empty.
func (m *Matcher) candidates(q *graph.Graph, budget *match.Budget) ([]map[int32]bool, error) {
	cand := make([]map[int32]bool, q.N())
	for u := 0; u < q.N(); u++ {
		qSig := distanceSignature(q, u, m.radius)
		set := make(map[int32]bool)
		for _, v := range m.g.VerticesWithLabel(q.Label(u)) {
			if err := budget.Step(); err != nil {
				return nil, err
			}
			if m.g.Degree(int(v)) >= q.Degree(u) && sigContains(m.sig[v], qSig) {
				set[v] = true
			}
		}
		if len(set) == 0 {
			return nil, nil
		}
		cand[u] = set
	}
	return cand, nil
}

// decompose splits the query into paths of at most maxLen edges covering
// every query edge: BFS trees rooted per component give tree paths
// (root-to-leaf, chopped into maxLen segments), and every non-tree edge
// becomes a 1-edge path. Shared vertices across paths stitch the embedding
// together during the join.
func decompose(q *graph.Graph, maxLen int) [][]int32 {
	n := q.N()
	visited := make([]bool, n)
	parent := make([]int32, n)
	var paths [][]int32
	covered := make(map[[2]int32]bool, q.M())
	cover := func(a, b int32) {
		if a > b {
			a, b = b, a
		}
		covered[[2]int32{a, b}] = true
	}
	isCovered := func(a, b int32) bool {
		if a > b {
			a, b = b, a
		}
		return covered[[2]int32{a, b}]
	}
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		// BFS tree of this component.
		visited[root] = true
		parent[root] = -1
		queue := []int32{int32(root)}
		var order []int32
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, w := range q.Neighbors(int(v)) {
				if !visited[w] {
					visited[w] = true
					parent[w] = v
					queue = append(queue, w)
				}
			}
		}
		// Children counts to find leaves.
		isLeaf := make(map[int32]bool, len(order))
		for _, v := range order {
			isLeaf[v] = true
		}
		for _, v := range order {
			if parent[v] >= 0 {
				isLeaf[parent[v]] = false
			}
		}
		// Root-to-leaf tree paths, chopped into ≤ maxLen segments.
		for _, v := range order {
			if !isLeaf[v] {
				continue
			}
			var rev []int32
			for x := v; x >= 0; x = parent[x] {
				rev = append(rev, x)
				if parent[x] < 0 {
					break
				}
			}
			// reverse to root..leaf
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			for start := 0; start+1 < len(rev); start += maxLen {
				end := start + maxLen
				if end >= len(rev) {
					end = len(rev) - 1
				}
				seg := rev[start : end+1]
				cp := make([]int32, len(seg))
				copy(cp, seg)
				paths = append(paths, cp)
				for i := 0; i+1 < len(cp); i++ {
					cover(cp[i], cp[i+1])
				}
			}
		}
		// Isolated vertex: single-vertex path so it still gets matched.
		if len(order) == 1 {
			paths = append(paths, []int32{order[0]})
		}
	}
	// Non-tree edges as 1-edge paths.
	q.Edges(func(a, b int) {
		if !isCovered(int32(a), int32(b)) {
			paths = append(paths, []int32{int32(a), int32(b)})
			cover(int32(a), int32(b))
		}
	})
	return paths
}

// orderPaths sorts paths by ascending selectivity estimate — the product of
// candidate-set sizes over the path's vertices (i.e. the estimated join
// result size) — with ties broken by first-vertex ID. Joining the most
// selective path first minimizes intermediate results, as in the original
// algorithm.
func orderPaths(paths [][]int32, cand []map[int32]bool) {
	est := func(p []int32) float64 {
		e := 1.0
		for _, u := range p {
			e *= float64(len(cand[u]))
		}
		return e
	}
	sort.SliceStable(paths, func(i, j int) bool {
		ei, ej := est(paths[i]), est(paths[j])
		if ei != ej {
			return ei < ej
		}
		return paths[i][0] < paths[j][0]
	})
}

type searcher struct {
	m      *Matcher
	q      *graph.Graph
	cand   []map[int32]bool
	paths  [][]int32
	emb    match.Embedding
	used   []bool
	col    *match.Collector
	budget *match.Budget
}

// matchPath advances the edge-by-edge verification: position pos within
// path pi. Already-matched vertices are verified for adjacency only;
// unmatched ones branch over candidates.
func (s *searcher) matchPath(pi, pos int) error {
	if pi == len(s.paths) {
		return s.col.Found(s.emb)
	}
	path := s.paths[pi]
	if pos == len(path) {
		return s.matchPath(pi+1, 0)
	}
	u := path[pos]
	prevMapped := int32(-1)
	if pos > 0 {
		prevMapped = s.emb[path[pos-1]]
	}
	if v := s.emb[u]; v >= 0 {
		// Already matched by an earlier path: just verify the path edge.
		if prevMapped >= 0 &&
			!s.m.g.HasEdgeLabeled(int(prevMapped), int(v), s.q.EdgeLabel(int(path[pos-1]), int(u))) {
			return nil
		}
		return s.matchPath(pi, pos+1)
	}
	try := func(v int32) error {
		if err := s.budget.Step(); err != nil {
			return err
		}
		if s.used[v] || !s.cand[u][v] {
			return nil
		}
		// Verify all edges back into the partial embedding, so cross-path
		// edges incident to u are enforced as soon as u is placed.
		for _, w := range s.q.Neighbors(int(u)) {
			if img := s.emb[w]; img >= 0 &&
				!s.m.g.HasEdgeLabeled(int(img), int(v), s.q.EdgeLabel(int(u), int(w))) {
				return nil
			}
		}
		s.emb[u] = v
		s.used[v] = true
		if err := s.matchPath(pi, pos+1); err != nil {
			return err
		}
		s.used[v] = false
		s.emb[u] = -1
		return nil
	}
	if prevMapped >= 0 {
		for _, v := range s.m.g.Neighbors(int(prevMapped)) {
			if err := try(v); err != nil {
				return err
			}
		}
		return nil
	}
	// Path head: iterate the candidate set in ascending vertex order for
	// determinism.
	heads := make([]int32, 0, len(s.cand[u]))
	for v := range s.cand[u] {
		heads = append(heads, v)
	}
	sort.Slice(heads, func(i, j int) bool { return heads[i] < heads[j] })
	for _, v := range heads {
		if err := try(v); err != nil {
			return err
		}
	}
	return nil
}
