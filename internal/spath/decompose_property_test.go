package spath

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/psi-graph/psi/internal/graph"
)

// Property: for random queries, the shortest-path decomposition (i) covers
// every query edge, (ii) uses only real edges, (iii) respects the length
// cap, and (iv) mentions every vertex (including isolated ones).
func TestDecomposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuerySPA(r, 2+r.Intn(14), 3)
		paths := decompose(q, DefaultMaxPathLen)
		covered := make(map[[2]int32]bool)
		seenV := make(map[int32]bool)
		for _, p := range paths {
			if len(p)-1 > DefaultMaxPathLen {
				return false
			}
			for _, v := range p {
				seenV[v] = true
			}
			for i := 0; i+1 < len(p); i++ {
				a, b := p[i], p[i+1]
				if !q.HasEdge(int(a), int(b)) {
					return false
				}
				if a > b {
					a, b = b, a
				}
				covered[[2]int32{a, b}] = true
			}
		}
		if len(covered) != q.M() {
			return false
		}
		return len(seenV) == q.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: path ordering is by non-decreasing selectivity estimate
// (product of candidate-set sizes).
func TestOrderPathsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomQuerySPA(r, 3+r.Intn(10), 3)
		paths := decompose(q, DefaultMaxPathLen)
		cand := make([]map[int32]bool, q.N())
		for u := range cand {
			set := make(map[int32]bool)
			for k := 0; k < 1+r.Intn(5); k++ {
				set[int32(k)] = true
			}
			cand[u] = set
		}
		orderPaths(paths, cand)
		est := func(p []int32) float64 {
			e := 1.0
			for _, u := range p {
				e *= float64(len(cand[u]))
			}
			return e
		}
		for i := 1; i < len(paths); i++ {
			if est(paths[i]) < est(paths[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randomQuerySPA(r *rand.Rand, n, labels int) *graph.Graph {
	b := graph.NewBuilder("q")
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(r.Intn(labels)))
	}
	// possibly disconnected: random edges only
	for i := 0; i < n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !b.HasEdgePending(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return b.MustBuild()
}
