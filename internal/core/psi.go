// Package core implements the Ψ-framework (Parallel Subgraph Isomorphism
// framework), the paper's primary contribution (§8). Instead of inventing a
// new sub-iso algorithm, the framework launches several attempts at the same
// query in parallel — each attempt pairing an existing algorithm with an
// isomorphic query rewriting — and adopts the answer of the first attempt to
// finish, cancelling the rest. Stragglers for one (algorithm, rewriting)
// combination are typically fast for another, so the race removes the heavy
// right tail of query-time distributions.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/rewrite"
)

// Attempt is one contender in a race: an algorithm paired with a query
// rewriting. Seed is used only by rewrite.Random.
type Attempt struct {
	Matcher   match.Matcher
	Rewriting rewrite.Kind
	Seed      int64
}

// Label names the attempt as in the paper's figures, e.g. "GQL-ILF".
func (a Attempt) Label() string {
	return fmt.Sprintf("%s-%s", a.Matcher.Name(), a.Rewriting)
}

// Result is the outcome of a race.
type Result struct {
	// Embeddings are the winner's embeddings, already mapped back to the
	// original query's vertex numbering. Nil for RaceStream, whose
	// embeddings go to the caller's sink instead.
	Embeddings []match.Embedding
	// Found is the number of embeddings the winner produced — equal to
	// len(Embeddings) for Race, and the count streamed into the sink for
	// RaceStream.
	Found int
	// Winner is the attempt that finished first.
	Winner Attempt
	// WinnerIndex is the winner's position in the attempts slice.
	WinnerIndex int
	// Elapsed is the wall-clock time from race start to the win.
	Elapsed time.Duration
	// Attempts is the number of contenders raced.
	Attempts int
}

// Contained reports whether the query was found at all.
func (r Result) Contained() bool { return r.Found > 0 }

// Racer runs Ψ-framework races. The zero value works for rewritings that
// need no label statistics (Orig, IND, DND, Random); construct with NewRacer
// to enable ILF-style rewritings.
type Racer struct {
	// Frequencies are the stored-graph (or dataset-wide) label
	// frequencies consulted by ILF, ILF+IND and ILF+DND.
	Frequencies rewrite.Frequencies
	// Validate re-checks every winner embedding with match.VerifyEmbedding
	// before returning; a validation failure is returned as an error.
	// Meant for tests and debugging, not production races.
	Validate bool
	// Pool is the execution layer attempts are submitted through; nil
	// selects the shared default pool (sized by the CPU count). Attempts
	// reuse idle pool workers but are never queued behind a saturated
	// pool — every attempt of a race runs concurrently, as the race
	// semantics require.
	Pool *exec.Pool
}

// NewRacer returns a Racer with label frequencies taken from the stored
// graph g.
func NewRacer(g *graph.Graph) *Racer {
	return &Racer{Frequencies: rewrite.FrequenciesOf(g)}
}

// NewDatasetRacer returns a Racer with dataset-wide label frequencies (the
// FTV setting).
func NewDatasetRacer(ds []*graph.Graph) *Racer {
	return &Racer{Frequencies: rewrite.FrequenciesOfDataset(ds)}
}

// Race launches every attempt concurrently against query q — through the
// racer's execution pool, reusing idle workers instead of always spawning —
// and returns the first completed answer (which may legitimately be "no
// embeddings"), cancelling the other attempts. All attempts must be bound
// to stored graphs with identical answer semantics (normally: the same
// stored graph), otherwise the race is not meaningful. A panicking matcher
// is isolated and reported as that attempt's error rather than crashing the
// process.
//
// If every attempt fails, Race returns the parent context's error when the
// parent was cancelled, or the joined attempt errors otherwise.
func (r *Racer) Race(ctx context.Context, q *graph.Graph, limit int, attempts []Attempt) (Result, error) {
	if len(attempts) == 0 {
		return Result{}, errors.New("psi: no attempts to race")
	}
	pool := r.Pool
	if pool == nil {
		pool = exec.Default()
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		idx  int
		embs []match.Embedding
		err  error
	}
	ch := make(chan outcome, len(attempts))
	start := time.Now()
	for i, a := range attempts {
		idx, a := i, a
		pool.Go(func() {
			o := outcome{idx: idx}
			defer func() {
				if rec := recover(); rec != nil {
					o.embs, o.err = nil, fmt.Errorf("psi: attempt panic: %v", rec)
				}
				ch <- o
			}()
			q2, perm := rewrite.Apply(q, r.Frequencies, a.Rewriting, a.Seed)
			o.embs, o.err = a.Matcher.Match(raceCtx, q2, limit)
			if o.err == nil && a.Rewriting != rewrite.Orig {
				mapped := make([]match.Embedding, len(o.embs))
				for j, e := range o.embs {
					mapped[j] = rewrite.MapBack(e, perm)
				}
				o.embs = mapped
			}
		})
	}
	var errs []error
	for n := 0; n < len(attempts); n++ {
		o := <-ch
		if o.err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", attempts[o.idx].Label(), o.err))
			continue
		}
		// Winner: stop the losers and return. Remaining goroutines exit
		// into the buffered channel without leaking.
		cancel()
		if r.Validate {
			for _, e := range o.embs {
				if verr := match.VerifyEmbedding(q, attemptGraph(attempts[o.idx]), e); verr != nil {
					return Result{}, fmt.Errorf("psi: winner %s returned invalid embedding: %w",
						attempts[o.idx].Label(), verr)
				}
			}
		}
		return Result{
			Embeddings:  o.embs,
			Found:       len(o.embs),
			Winner:      attempts[o.idx],
			WinnerIndex: o.idx,
			Elapsed:     time.Since(start),
			Attempts:    len(attempts),
		}, nil
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return Result{}, errors.Join(errs...)
}

// RaceStream is the streaming form of Race: the winner's embeddings flow
// into sink as they are found, already mapped back to q's numbering,
// instead of being materialized in the Result. Where Race adopts the first
// attempt to *finish*, RaceStream adopts the first attempt to *emit*: the
// first embedding anyone finds claims the output stream for its attempt and
// cancels every other attempt immediately. For decision queries (limit <= 0)
// the race therefore ends at the very first embedding discovered by any
// contender — first-result latency is the fastest attempt's time-to-first,
// not its time-to-completion. An attempt that completes with no embeddings
// (and no error) before anyone has emitted wins an empty race, exactly as
// in Race. Returning false from the sink stops the adopted winner, ending
// the race successfully with the embeddings seen so far.
//
// The returned Result carries the winner's identity and Found (how many
// embeddings reached the sink); Result.Embeddings stays nil.
func (r *Racer) RaceStream(ctx context.Context, q *graph.Graph, limit int, attempts []Attempt, sink match.Sink) (Result, error) {
	if len(attempts) == 0 {
		return Result{}, errors.New("psi: no attempts to race")
	}
	if sink == nil {
		return Result{}, errors.New("psi: RaceStream requires a sink")
	}
	pool := r.Pool
	if pool == nil {
		pool = exec.Default()
	}
	raceCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	// Per-attempt contexts so adoption can kill every contender except the
	// adopted one while it keeps streaming.
	ctxs := make([]context.Context, len(attempts))
	cancels := make([]context.CancelFunc, len(attempts))
	for i := range attempts {
		ctxs[i], cancels[i] = context.WithCancel(raceCtx)
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	var adopted atomic.Int32
	adopted.Store(-1)
	type outcome struct {
		idx     int
		emitted int
		lost    bool // stopped because another attempt owns the stream
		err     error
	}
	ch := make(chan outcome, len(attempts))
	start := time.Now()
	for i, a := range attempts {
		idx, a := i, a
		pool.Go(func() {
			o := outcome{idx: idx}
			defer func() {
				if rec := recover(); rec != nil {
					o.err = fmt.Errorf("psi: attempt panic: %v", rec)
				}
				ch <- o
			}()
			q2, perm := rewrite.Apply(q, r.Frequencies, a.Rewriting, a.Seed)
			s := match.SinkFunc(func(e match.Embedding) bool {
				if adopted.Load() != int32(idx) {
					if !adopted.CompareAndSwap(-1, int32(idx)) {
						o.lost = true
						return false
					}
					// First emission of the whole race: this attempt now
					// owns the output; stop the others immediately.
					for j, c := range cancels {
						if j != idx {
							c()
						}
					}
				}
				if a.Rewriting != rewrite.Orig {
					e = rewrite.MapBack(e, perm)
				}
				if r.Validate {
					if verr := match.VerifyEmbedding(q, attemptGraph(a), e); verr != nil {
						o.err = fmt.Errorf("psi: winner %s emitted invalid embedding: %w", a.Label(), verr)
						return false
					}
				}
				o.emitted++
				return sink.Emit(e)
			})
			err := match.Stream(ctxs[idx], a.Matcher, q2, limit, s)
			if o.err == nil && !o.lost {
				o.err = err
			}
		})
	}
	var errs []error
	for n := 0; n < len(attempts); n++ {
		o := <-ch
		switch {
		case o.lost:
			// A loser that raced the winner to its first emission; its
			// outcome carries no information.
		case o.err != nil:
			if int(adopted.Load()) == o.idx {
				// The adopted attempt died mid-stream (cancellation from
				// the parent, or an invalid embedding under Validate). The
				// sink may hold partial output, so the race as a whole
				// fails rather than silently switching winners.
				return Result{}, fmt.Errorf("%s: %w", attempts[o.idx].Label(), o.err)
			}
			errs = append(errs, fmt.Errorf("%s: %w", attempts[o.idx].Label(), o.err))
		case int(adopted.Load()) == o.idx:
			// The adopted winner ran to completion (or the caller's sink
			// stopped it): the race is decided.
			cancelAll()
			return Result{
				Found:       o.emitted,
				Winner:      attempts[o.idx],
				WinnerIndex: o.idx,
				Elapsed:     time.Since(start),
				Attempts:    len(attempts),
			}, nil
		case adopted.CompareAndSwap(-1, int32(o.idx)):
			// Completed with zero embeddings before anyone emitted: an
			// empty answer wins the race (all attempts are isomorphic, so
			// they would all come up empty).
			cancelAll()
			return Result{
				Winner:      attempts[o.idx],
				WinnerIndex: o.idx,
				Elapsed:     time.Since(start),
				Attempts:    len(attempts),
			}, nil
		default:
			// Completed empty after another attempt was adopted; ignore.
		}
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	return Result{}, errors.Join(errs...)
}

// attemptGraph extracts the stored graph from matchers that expose it; used
// only by Validate mode.
func attemptGraph(a Attempt) *graph.Graph {
	type graphHolder interface{ Graph() *graph.Graph }
	if h, ok := a.Matcher.(graphHolder); ok {
		return h.Graph()
	}
	return nil
}

// Portfolio builds the cross product of matchers and rewritings, the
// general form of the paper's Ψ variants: Ψ([GQL/SPA]-[Or/DND]) is
// Portfolio([gql, spa], [Orig, DND]) with 4 attempts.
func Portfolio(matchers []match.Matcher, kinds []rewrite.Kind) []Attempt {
	out := make([]Attempt, 0, len(matchers)*len(kinds))
	for _, k := range kinds {
		for _, m := range matchers {
			out = append(out, Attempt{Matcher: m, Rewriting: k})
		}
	}
	return out
}

// Rewritings builds single-algorithm attempts, one per rewriting — the
// paper's Ψ(ILF/IND/DND)-style variants.
func Rewritings(m match.Matcher, kinds []rewrite.Kind) []Attempt {
	return Portfolio([]match.Matcher{m}, kinds)
}

// RacedMatcher exposes a fixed race configuration as a match.Matcher, so a
// Ψ variant can be dropped anywhere a single algorithm is expected (the
// public API and the examples use this).
type RacedMatcher struct {
	racer    *Racer
	attempts []Attempt
	name     string
}

// NewRacedMatcher builds a match.Matcher racing the given attempts.
func NewRacedMatcher(name string, racer *Racer, attempts []Attempt) *RacedMatcher {
	return &RacedMatcher{racer: racer, attempts: attempts, name: name}
}

// Name implements match.Matcher.
func (m *RacedMatcher) Name() string { return m.name }

// Match implements match.Matcher by racing the configured attempts.
func (m *RacedMatcher) Match(ctx context.Context, q *graph.Graph, limit int) ([]match.Embedding, error) {
	res, err := m.racer.Race(ctx, q, limit, m.attempts)
	if err != nil {
		return nil, err
	}
	return res.Embeddings, nil
}

// MatchStream implements match.StreamMatcher by streaming the race: the
// first attempt to emit is adopted and its embeddings flow straight into
// sink.
func (m *RacedMatcher) MatchStream(ctx context.Context, q *graph.Graph, limit int, sink match.Sink) error {
	_, err := m.racer.RaceStream(ctx, q, limit, m.attempts, sink)
	return err
}
