package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psi-graph/psi/internal/gql"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/quicksi"
	"github.com/psi-graph/psi/internal/rewrite"
	"github.com/psi-graph/psi/internal/spath"
	"github.com/psi-graph/psi/internal/vf2"
)

func randomStored(r *rand.Rand, n, extra, labels int) *graph.Graph {
	b := graph.NewBuilder("g")
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(r.Intn(labels)))
	}
	for v := 1; v < n; v++ {
		if err := b.AddEdge(r.Intn(v), v); err != nil {
			panic(err)
		}
	}
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !b.HasEdgePending(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return b.MustBuild()
}

func extractQuery(r *rand.Rand, g *graph.Graph, wantEdges int) *graph.Graph {
	start := r.Intn(g.N())
	inQ := map[int32]bool{int32(start): true}
	type edge struct{ u, v int32 }
	var qEdges []edge
	has := func(a, b int32) bool {
		for _, e := range qEdges {
			if (e.u == a && e.v == b) || (e.u == b && e.v == a) {
				return true
			}
		}
		return false
	}
	for len(qEdges) < wantEdges {
		var frontier []edge
		for v := range inQ {
			for _, w := range g.Neighbors(int(v)) {
				if !has(v, w) {
					frontier = append(frontier, edge{v, w})
				}
			}
		}
		if len(frontier) == 0 {
			break
		}
		e := frontier[r.Intn(len(frontier))]
		qEdges = append(qEdges, e)
		inQ[e.u] = true
		inQ[e.v] = true
	}
	ids := make([]int32, 0, len(inQ))
	for v := range inQ {
		ids = append(ids, v)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	old2new := make(map[int32]int, len(ids))
	b := graph.NewBuilder("q")
	for i, v := range ids {
		old2new[v] = i
		b.AddVertex(g.Label(int(v)))
	}
	for _, e := range qEdges {
		if err := b.AddEdge(old2new[e.u], old2new[e.v]); err != nil {
			panic(err)
		}
	}
	return b.MustBuild()
}

func TestRaceFindsPlantedQuery(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := randomStored(r, 40, 30, 3)
	racer := NewRacer(g)
	racer.Validate = true
	attempts := append(
		Rewritings(gql.New(g), []rewrite.Kind{rewrite.Orig, rewrite.ILF, rewrite.DND}),
		Rewritings(spath.New(g), []rewrite.Kind{rewrite.Orig})...,
	)
	for trial := 0; trial < 15; trial++ {
		q := extractQuery(r, g, 3+r.Intn(5))
		res, err := racer.Race(context.Background(), q, 1, attempts)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Contained() {
			t.Fatalf("trial %d: planted query not found by %s", trial, res.Winner.Label())
		}
		if res.Attempts != len(attempts) {
			t.Errorf("Attempts = %d", res.Attempts)
		}
		if res.WinnerIndex < 0 || res.WinnerIndex >= len(attempts) {
			t.Errorf("WinnerIndex = %d", res.WinnerIndex)
		}
	}
}

func TestRaceAgreesWithSingleAlgorithm(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := randomStored(r, 20, 12, 2)
	racer := NewRacer(g)
	racer.Validate = true
	matchers := []match.Matcher{vf2.New(g), quicksi.New(g), gql.New(g), spath.New(g)}
	attempts := Portfolio(matchers, []rewrite.Kind{rewrite.Orig, rewrite.ILFDND})
	ref := match.NewReference(g)
	for trial := 0; trial < 20; trial++ {
		q := randomStored(r, 3+r.Intn(3), 2, 2) // may or may not be contained
		want, err := ref.Match(context.Background(), q, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := racer.Race(context.Background(), q, 1, attempts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Contained() != (len(want) > 0) {
			t.Fatalf("trial %d: race says %v, reference says %v (winner %s)",
				trial, res.Contained(), len(want) > 0, res.Winner.Label())
		}
	}
}

func TestRaceEmptyAttempts(t *testing.T) {
	racer := &Racer{}
	_, err := racer.Race(context.Background(), graph.MustNew("q", nil, nil), 1, nil)
	if err == nil {
		t.Error("expected error for empty attempt list")
	}
}

// slowMatcher blocks until cancelled; used to prove the race returns as
// soon as one attempt finishes and cancels stragglers.
type slowMatcher struct {
	cancelled atomic.Bool
}

func (s *slowMatcher) Name() string { return "SLOW" }
func (s *slowMatcher) Match(ctx context.Context, q *graph.Graph, limit int) ([]match.Embedding, error) {
	<-ctx.Done()
	s.cancelled.Store(true)
	return nil, ctx.Err()
}

func TestRaceCancelsLosers(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 0}, [][2]int{{0, 1}})
	q := graph.MustNew("q", []graph.Label{0}, nil)
	slow := &slowMatcher{}
	racer := NewRacer(g)
	attempts := []Attempt{
		{Matcher: slow, Rewriting: rewrite.Orig},
		{Matcher: vf2.New(g), Rewriting: rewrite.Orig},
	}
	res, err := racer.Race(context.Background(), q, 1, attempts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner.Matcher.Name() != "VF2" {
		t.Errorf("winner = %s, want VF2", res.Winner.Matcher.Name())
	}
	// give the loser a moment to observe cancellation
	deadline := time.Now().Add(2 * time.Second)
	for !slow.cancelled.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !slow.cancelled.Load() {
		t.Error("loser was not cancelled")
	}
}

func TestRaceParentCancellation(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 0}, [][2]int{{0, 1}})
	q := graph.MustNew("q", []graph.Label{0}, nil)
	racer := NewRacer(g)
	attempts := []Attempt{{Matcher: &slowMatcher{}, Rewriting: rewrite.Orig}}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := racer.Race(ctx, q, 1, attempts)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want DeadlineExceeded", err)
	}
}

// failMatcher returns a non-context error.
type failMatcher struct{}

func (failMatcher) Name() string { return "FAIL" }
func (failMatcher) Match(context.Context, *graph.Graph, int) ([]match.Embedding, error) {
	return nil, errors.New("boom")
}

func TestRaceAllAttemptsFail(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0}, nil)
	q := graph.MustNew("q", []graph.Label{0}, nil)
	racer := NewRacer(g)
	attempts := []Attempt{
		{Matcher: failMatcher{}, Rewriting: rewrite.Orig},
		{Matcher: failMatcher{}, Rewriting: rewrite.IND},
	}
	_, err := racer.Race(context.Background(), q, 1, attempts)
	if err == nil {
		t.Fatal("expected joined error")
	}
}

func TestRaceSurvivesOneFailingAttempt(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 0}, [][2]int{{0, 1}})
	q := graph.MustNew("q", []graph.Label{0}, nil)
	racer := NewRacer(g)
	attempts := []Attempt{
		{Matcher: failMatcher{}, Rewriting: rewrite.Orig},
		{Matcher: vf2.New(g), Rewriting: rewrite.Orig},
	}
	res, err := racer.Race(context.Background(), q, 1, attempts)
	if err != nil {
		t.Fatalf("race should survive a failing attempt: %v", err)
	}
	if !res.Contained() {
		t.Error("expected containment")
	}
}

func TestRaceMapsEmbeddingsBack(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randomStored(r, 25, 15, 3)
	racer := NewRacer(g)
	racer.Validate = true // VerifyEmbedding fails if mapping is wrong
	q := extractQuery(r, g, 5)
	for _, k := range rewrite.Structured {
		attempts := []Attempt{{Matcher: vf2.New(g), Rewriting: k}}
		res, err := racer.Race(context.Background(), q, 3, attempts)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !res.Contained() {
			t.Fatalf("%v: not found", k)
		}
		for _, e := range res.Embeddings {
			if err := match.VerifyEmbedding(q, g, e); err != nil {
				t.Fatalf("%v: invalid mapped embedding: %v", k, err)
			}
		}
	}
}

func TestRaceEmbeddingCountMatchesDirectRun(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := randomStored(r, 15, 8, 2)
	q := extractQuery(r, g, 3)
	direct, err := vf2.Match(context.Background(), q, g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	racer := NewRacer(g)
	attempts := Rewritings(vf2.New(g), append([]rewrite.Kind{rewrite.Orig}, rewrite.Structured...))
	res, err := racer.Race(context.Background(), q, 1000, attempts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Embeddings) != len(direct) {
		t.Errorf("race returned %d embeddings, direct run %d", len(res.Embeddings), len(direct))
	}
}

func TestAttemptLabel(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0}, nil)
	a := Attempt{Matcher: gql.New(g), Rewriting: rewrite.ILFIND}
	if a.Label() != "GQL-ILF+IND" {
		t.Errorf("Label = %q", a.Label())
	}
}

func TestPortfolioShape(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0}, nil)
	ms := []match.Matcher{gql.New(g), spath.New(g)}
	ks := []rewrite.Kind{rewrite.Orig, rewrite.DND}
	p := Portfolio(ms, ks)
	if len(p) != 4 {
		t.Fatalf("portfolio size = %d", len(p))
	}
	// Ψ([GQL/SPA]-[Or/DND]): both algorithms appear with both rewritings
	seen := make(map[string]bool)
	for _, a := range p {
		seen[a.Label()] = true
	}
	for _, want := range []string{"GQL-Orig", "SPA-Orig", "GQL-DND", "SPA-DND"} {
		if !seen[want] {
			t.Errorf("missing attempt %s", want)
		}
	}
}

func TestRacedMatcherAdapter(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomStored(r, 20, 10, 2)
	racer := NewRacer(g)
	rm := NewRacedMatcher("Ψ(GQL/SPA)", racer,
		Portfolio([]match.Matcher{gql.New(g), spath.New(g)}, []rewrite.Kind{rewrite.Orig}))
	if rm.Name() != "Ψ(GQL/SPA)" {
		t.Errorf("Name = %q", rm.Name())
	}
	q := extractQuery(r, g, 4)
	embs, err := rm.Match(context.Background(), q, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(embs) != 1 {
		t.Errorf("got %d embeddings", len(embs))
	}
	if err := match.VerifyEmbedding(q, g, embs[0]); err != nil {
		t.Error(err)
	}
}
