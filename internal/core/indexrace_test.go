package core

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
	"github.com/psi-graph/psi/internal/rewrite"
)

// stubIndex is a controllable index.Index for race tests: a fixed candidate
// list, a pluggable verifier, and counters recording whether the index
// observed cancellation mid-verification.
type stubIndex struct {
	name      string
	ds        []*graph.Graph
	ids       []int
	verify    func(ctx context.Context, graphID int) (bool, error)
	cancelled atomic.Int64 // verifications that ended on ctx cancellation
	stats     index.Stats
}

func newStubDataset(n int) []*graph.Graph {
	ds := make([]*graph.Graph, n)
	for i := range ds {
		ds[i] = graph.MustNew("g", []graph.Label{0, 1}, [][2]int{{0, 1}})
	}
	return ds
}

func (x *stubIndex) Name() string              { return x.name }
func (x *stubIndex) Dataset() []*graph.Graph   { return x.ds }
func (x *stubIndex) Stats() index.Stats        { return x.stats }
func (x *stubIndex) Close()                    {}
func (x *stubIndex) Filter(*graph.Graph) []int { return append([]int(nil), x.ids...) }

func (x *stubIndex) FilterStream(ctx context.Context, q *graph.Graph, emit func(int) bool) error {
	for _, id := range x.ids {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !emit(id) {
			return nil
		}
	}
	return nil
}

func (x *stubIndex) Verify(ctx context.Context, q *graph.Graph, graphID int) (bool, error) {
	ok, err := x.verify(ctx, graphID)
	if err != nil && ctx.Err() != nil {
		x.cancelled.Add(1)
	}
	return ok, err
}

// blockingVerify blocks until the context dies, recording the cancellation.
func blockingVerify(ctx context.Context, graphID int) (bool, error) {
	<-ctx.Done()
	return false, ctx.Err()
}

func instantVerify(ctx context.Context, graphID int) (bool, error) { return true, nil }

var orig = []rewrite.Kind{rewrite.Orig}

// TestIndexRaceAdoptsFirstEmitterAndCancelsLoser is the core acceptance
// scenario: two indexes race, the fast one emits a verified candidate and
// wins, and the slow loser is provably cancelled — its verification
// observed ctx.Done, its attempt is marked Cancelled, and no goroutines
// outlive the race.
func TestIndexRaceAdoptsFirstEmitterAndCancelsLoser(t *testing.T) {
	ds := newStubDataset(3)
	// The fast index's first verification waits until the slow index has a
	// verification in flight, so the loser is provably mid-work when the
	// winner's emission cancels it (otherwise scheduling could finish the
	// whole race before the loser started anything).
	slowStarted := make(chan struct{}, 16)
	slow := &stubIndex{name: "slow", ds: ds, ids: []int{0, 1, 2}}
	slow.verify = func(ctx context.Context, graphID int) (bool, error) {
		select {
		case slowStarted <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return false, ctx.Err()
	}
	fast := &stubIndex{name: "fast", ds: ds, ids: []int{0, 1, 2}}
	fast.verify = func(ctx context.Context, graphID int) (bool, error) {
		if graphID == 0 {
			select {
			case <-slowStarted:
			case <-ctx.Done():
				return false, ctx.Err()
			}
		}
		return true, nil
	}
	pool := exec.New(4)
	defer pool.Close()
	r := NewIndexRacer([]index.Index{slow, fast}, orig)
	r.Pool = pool
	defer r.Close()

	// Warm up so the racer's per-attempt pools exist before the baseline,
	// then drain leftover start tokens so the measured race re-observes
	// the slow index actually starting.
	if _, err := r.Answer(context.Background(), ds[0]); err != nil {
		t.Fatal(err)
	}
	for drained := false; !drained; {
		select {
		case <-slowStarted:
		default:
			drained = true
		}
	}
	slow.cancelled.Store(0)
	before := runtime.NumGoroutine()
	res, err := r.Answer(context.Background(), ds[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "fast" || res.WinnerIndex != 1 {
		t.Fatalf("winner = %q (%d), want fast", res.Winner, res.WinnerIndex)
	}
	if len(res.GraphIDs) != 3 {
		t.Errorf("GraphIDs = %v, want [0 1 2]", res.GraphIDs)
	}
	if len(res.Attempts) != 2 {
		t.Fatalf("Attempts = %+v, want 2", res.Attempts)
	}
	if !res.Attempts[1].Winner || res.Attempts[1].Emitted != 3 {
		t.Errorf("fast attempt = %+v, want winner with 3 emissions", res.Attempts[1])
	}
	if !res.Attempts[0].Cancelled || res.Attempts[0].Winner {
		t.Errorf("slow attempt = %+v, want cancelled loser", res.Attempts[0])
	}
	if slow.cancelled.Load() == 0 {
		t.Error("losing index never observed cancellation — losers are not being cancelled")
	}
	// The race drains its losers before returning: no goroutine growth.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines grew from %d to %d across an index race: leak", before, after)
	}
}

// TestIndexRaceRepeatedNoLeak hammers the race to catch slow accretion.
func TestIndexRaceRepeatedNoLeak(t *testing.T) {
	ds := newStubDataset(2)
	fast := &stubIndex{name: "fast", ds: ds, ids: []int{0, 1}, verify: instantVerify}
	slow := &stubIndex{name: "slow", ds: ds, ids: []int{0, 1}, verify: blockingVerify}
	pool := exec.New(2)
	defer pool.Close()
	r := NewIndexRacer([]index.Index{fast, slow}, orig)
	r.Pool = pool
	defer r.Close()
	// Warm-up so transient infrastructure exists before the baseline.
	if _, err := r.Answer(context.Background(), ds[0]); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		res, err := r.Answer(context.Background(), ds[0])
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner != "fast" {
			t.Fatalf("iteration %d: winner = %q", i, res.Winner)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+4 {
		t.Errorf("goroutines grew from %d to %d over 200 index races", before, after)
	}
}

// TestIndexRaceEmptyAnswerWins: an index that completes with no candidates
// before anyone emits decides the race — the answer is empty.
func TestIndexRaceEmptyAnswerWins(t *testing.T) {
	ds := newStubDataset(2)
	empty := &stubIndex{name: "empty", ds: ds, ids: nil, verify: instantVerify}
	slow := &stubIndex{name: "slow", ds: ds, ids: []int{0, 1}, verify: blockingVerify}
	pool := exec.New(2)
	defer pool.Close()
	r := NewIndexRacer([]index.Index{slow, empty}, orig)
	defer r.Close()
	r.Pool = pool
	res, err := r.Answer(context.Background(), ds[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "empty" {
		t.Fatalf("winner = %q, want empty", res.Winner)
	}
	if len(res.GraphIDs) != 0 {
		t.Errorf("GraphIDs = %v, want none", res.GraphIDs)
	}
}

// TestIndexRaceSingleIndexDegenerates: a one-index portfolio streams
// directly, still reporting a winner attempt.
func TestIndexRaceSingleIndexDegenerates(t *testing.T) {
	ds := newStubDataset(3)
	only := &stubIndex{name: "only", ds: ds, ids: []int{0, 2}, verify: instantVerify}
	r := NewIndexRacer([]index.Index{only}, orig)
	defer r.Close()
	res, err := r.Answer(context.Background(), ds[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "only" || len(res.GraphIDs) != 2 {
		t.Fatalf("res = %+v", res)
	}
	if len(res.Attempts) != 1 || !res.Attempts[0].Winner || res.Attempts[0].Emitted != 2 {
		t.Fatalf("Attempts = %+v", res.Attempts)
	}
}

// TestIndexRaceAllFail joins every attempt's error when no one produces an
// answer.
func TestIndexRaceAllFail(t *testing.T) {
	ds := newStubDataset(1)
	boom := errors.New("boom")
	failing := func(ctx context.Context, graphID int) (bool, error) { return false, boom }
	a := &stubIndex{name: "a", ds: ds, ids: []int{0}, verify: failing}
	b := &stubIndex{name: "b", ds: ds, ids: []int{0}, verify: failing}
	r := NewIndexRacer([]index.Index{a, b}, orig)
	defer r.Close()
	_, err := r.Answer(context.Background(), ds[0])
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestIndexRaceCallerCancel: cancelling the caller's context fails the race
// with the context error instead of fabricating an answer.
func TestIndexRaceCallerCancel(t *testing.T) {
	ds := newStubDataset(2)
	s1 := &stubIndex{name: "s1", ds: ds, ids: []int{0, 1}, verify: blockingVerify}
	s2 := &stubIndex{name: "s2", ds: ds, ids: []int{0, 1}, verify: blockingVerify}
	r := NewIndexRacer([]index.Index{s1, s2}, orig)
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := r.Answer(ctx, ds[0])
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestIndexRaceEmitStop: the caller's emit returning false stops the
// adopted winner and ends the race cleanly.
func TestIndexRaceEmitStop(t *testing.T) {
	ds := newStubDataset(3)
	fast := &stubIndex{name: "fast", ds: ds, ids: []int{0, 1, 2}, verify: instantVerify}
	slow := &stubIndex{name: "slow", ds: ds, ids: []int{0, 1, 2}, verify: blockingVerify}
	r := NewIndexRacer([]index.Index{fast, slow}, orig)
	defer r.Close()
	var got []int
	res, err := r.AnswerStream(context.Background(), ds[0], func(id int) bool {
		got = append(got, id)
		return false
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("emitted %v, want [0]", got)
	}
	if res.Winner != "fast" {
		t.Errorf("winner = %q", res.Winner)
	}
}
