package core

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/rewrite"
	"github.com/psi-graph/psi/internal/vf2"
)

// gatedIndex is an ftv.Index whose verifications block until released,
// counting how many run concurrently. It lets the tests observe goroutine
// behavior mid-race instead of only before/after.
type gatedIndex struct {
	ds       []*graph.Graph
	release  chan struct{}
	inFlight atomic.Int64
	peak     atomic.Int64
}

func newGatedIndex(n int) *gatedIndex {
	ds := make([]*graph.Graph, n)
	for i := range ds {
		ds[i] = graph.MustNew("g", []graph.Label{0, 1}, [][2]int{{0, 1}})
	}
	return &gatedIndex{ds: ds, release: make(chan struct{})}
}

func (x *gatedIndex) Name() string            { return "gated" }
func (x *gatedIndex) Dataset() []*graph.Graph { return x.ds }
func (x *gatedIndex) Filter(*graph.Graph) []int {
	ids := make([]int, len(x.ds))
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func (x *gatedIndex) Verify(ctx context.Context, q *graph.Graph, id int) (bool, error) {
	n := x.inFlight.Add(1)
	for {
		p := x.peak.Load()
		if n <= p || x.peak.CompareAndSwap(p, n) {
			break
		}
	}
	defer x.inFlight.Add(-1)
	select {
	case <-x.release:
		return true, nil
	case <-ctx.Done():
		return false, ctx.Err()
	}
}

// TestFTVRacerAnswerBoundsGoroutines runs a large raced answer — 200
// candidates × 2 rewritings = 400 verification attempts — on a 4-worker
// pool and asserts that the goroutine count mid-race is governed by the
// pool size (workers × rewritings plus constant overhead), not by the
// number of attempts, and that everything is reclaimed afterwards.
func TestFTVRacerAnswerBoundsGoroutines(t *testing.T) {
	const (
		candidates = 200
		workers    = 4
	)
	kinds := []rewrite.Kind{rewrite.Orig, rewrite.DND}
	x := newGatedIndex(candidates)
	pool := exec.New(workers)
	defer pool.Close()
	f := NewFTVRacer(x, kinds)
	f.Pool = pool

	before := runtime.NumGoroutine()
	done := make(chan error, 1)
	var answer []int
	go func() {
		var err error
		answer, err = f.Answer(context.Background(), x.ds[0])
		done <- err
	}()

	// Wait until the pool's workers are all busy racing candidates.
	deadline := time.Now().Add(5 * time.Second)
	for x.inFlight.Load() < int64(workers) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	during := runtime.NumGoroutine()
	// Old behavior: one goroutine per (candidate × rewriting) = 400+.
	// New behavior: pool workers plus their per-candidate rewriting races.
	bound := before + workers*(len(kinds)+1) + 16
	if during > bound {
		t.Errorf("goroutines during race = %d (baseline %d), want <= %d — fan-out is not pool-bounded",
			during, before, bound)
	}
	if peak := x.peak.Load(); peak > int64(workers*len(kinds)) {
		t.Errorf("concurrent verifications = %d, want <= workers×rewritings = %d",
			peak, workers*len(kinds))
	}

	close(x.release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if len(answer) != candidates {
		t.Errorf("answer has %d ids, want %d", len(answer), candidates)
	}

	// After: transient goroutines drain back to (near) the baseline; the
	// pool's workers are accounted to the pool, not the race.
	deadline = time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+workers+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+workers+2 {
		t.Errorf("goroutines after race = %d, baseline %d (+%d workers): leak", after, before, workers)
	}
}

// TestRaceReleasesGoroutines is the before/after leak check for plain
// Ψ races: a thousand small races must not accrete goroutines.
func TestRaceReleasesGoroutines(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 1, 0}, [][2]int{{0, 1}, {1, 2}})
	q := graph.MustNew("q", []graph.Label{0, 1}, [][2]int{{0, 1}})
	racer := NewRacer(g)
	racer.Pool = exec.New(2)
	defer racer.Pool.Close()
	attempts := Rewritings(vf2.New(g), []rewrite.Kind{rewrite.Orig, rewrite.ILF, rewrite.DND})
	// Warm up so pool workers exist before the baseline is taken.
	if _, err := racer.Race(context.Background(), q, 1, attempts); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 1000; i++ {
		if _, err := racer.Race(context.Background(), q, 1, attempts); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+4 {
		t.Errorf("goroutines grew from %d to %d over 1000 races", before, after)
	}
}

// TestRaceStreamCancelAfterFirstEmissionNoLeak is the streaming analogue
// of TestRaceReleasesGoroutines: hundreds of races whose sink stops the
// search at the very first emission — the decision-query fast path that
// cancels every straggler attempt mid-flight — must not accrete goroutines.
func TestRaceStreamCancelAfterFirstEmissionNoLeak(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 1, 0, 1, 0}, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	q := graph.MustNew("q", []graph.Label{0, 1}, [][2]int{{0, 1}})
	racer := NewRacer(g)
	racer.Pool = exec.New(2)
	defer racer.Pool.Close()
	attempts := Rewritings(vf2.New(g), []rewrite.Kind{rewrite.Orig, rewrite.ILF, rewrite.DND})
	stopSink := match.SinkFunc(func(match.Embedding) bool { return false })
	// Warm up so pool workers exist before the baseline is taken.
	if _, err := racer.RaceStream(context.Background(), q, 1000, attempts, stopSink); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 500; i++ {
		res, err := racer.RaceStream(context.Background(), q, 1000, attempts, stopSink)
		if err != nil {
			t.Fatal(err)
		}
		if res.Found != 1 {
			t.Fatalf("iteration %d: Found = %d, want 1 (sink stopped after first emission)", i, res.Found)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+4 {
		t.Errorf("goroutines grew from %d to %d over 500 first-emission-cancelled races", before, after)
	}
}

// TestRacePanicIsolated proves a panicking matcher surfaces as an attempt
// error instead of crashing the process.
func TestRacePanicIsolated(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0}, nil)
	q := graph.MustNew("q", []graph.Label{0}, nil)
	racer := NewRacer(g)
	attempts := []Attempt{{Matcher: panicMatcher{}, Rewriting: rewrite.Orig}}
	_, err := racer.Race(context.Background(), q, 1, attempts)
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("Race = %v, want attempt-panic error", err)
	}
}

type panicMatcher struct{}

func (panicMatcher) Name() string { return "PANIC" }
func (panicMatcher) Match(context.Context, *graph.Graph, int) ([]match.Embedding, error) {
	panic("matcher bug")
}

var _ ftv.Index = (*gatedIndex)(nil)
