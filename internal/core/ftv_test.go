package core

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/ggsx"
	"github.com/psi-graph/psi/internal/grapes"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/rewrite"
	"github.com/psi-graph/psi/internal/vf2"
)

func buildDataset(r *rand.Rand, numGraphs, n, labels int) []*graph.Graph {
	ds := make([]*graph.Graph, numGraphs)
	for i := range ds {
		ds[i] = randomStored(r, n, n/2, labels)
	}
	return ds
}

func TestFTVRacerName(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	ds := buildDataset(r, 2, 10, 2)
	x := grapes.Build(ds, grapes.Options{})
	f := NewFTVRacer(x, []rewrite.Kind{rewrite.ILF, rewrite.ILFIND})
	want := "Ψ(Grapes/1: ILF/ILF+IND)"
	if f.Name() != want {
		t.Errorf("Name = %q, want %q", f.Name(), want)
	}
}

func TestFTVRacerNeedsRewritings(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ds := buildDataset(r, 1, 8, 2)
	f := NewFTVRacer(grapes.Build(ds, grapes.Options{}), nil)
	_, err := f.Verify(context.Background(), ds[0], 0)
	if err == nil {
		t.Error("expected error for empty rewriting list")
	}
}

func TestFTVRacerAnswerMatchesPlainPipeline(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ds := buildDataset(r, 6, 14, 3)
	for _, idx := range []ftv.Index{
		grapes.Build(ds, grapes.Options{MaxPathLen: 3}),
		ggsx.Build(ds, ggsx.Options{MaxPathLen: 3}),
	} {
		f := NewFTVRacer(idx, []rewrite.Kind{rewrite.Orig, rewrite.ILF, rewrite.IND, rewrite.DND})
		for trial := 0; trial < 8; trial++ {
			q := extractQuery(r, ds[r.Intn(len(ds))], 2+r.Intn(4))
			want, err := ftv.Answer(context.Background(), idx, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := f.Answer(context.Background(), q)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s trial %d: raced answer %v, plain answer %v",
					idx.Name(), trial, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s trial %d: raced answer %v, plain answer %v",
						idx.Name(), trial, got, want)
				}
			}
		}
	}
}

func TestFTVRacerAnswerMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ds := buildDataset(r, 5, 12, 3)
	x := grapes.Build(ds, grapes.Options{})
	f := NewFTVRacer(x, append([]rewrite.Kind{rewrite.Orig}, rewrite.Structured...))
	for trial := 0; trial < 6; trial++ {
		q := extractQuery(r, ds[r.Intn(len(ds))], 3)
		got, err := f.Answer(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		var want []int
		for id, g := range ds {
			embs, err := vf2.Match(context.Background(), q, g, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(embs) > 0 {
				want = append(want, id)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

func TestFTVRacerWinnerIsAConfiguredRewriting(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ds := buildDataset(r, 3, 12, 2)
	kinds := []rewrite.Kind{rewrite.ILF, rewrite.DND}
	f := NewFTVRacer(grapes.Build(ds, grapes.Options{}), kinds)
	q := extractQuery(r, ds[0], 3)
	ids := f.Index.Filter(q)
	if len(ids) == 0 {
		t.Skip("filter pruned everything (unlucky seed)")
	}
	res, err := f.Verify(context.Background(), q, ids[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != rewrite.ILF && res.Winner != rewrite.DND {
		t.Errorf("winner %v not among configured rewritings", res.Winner)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed should be positive")
	}
	if !strings.Contains(f.Name(), "Grapes") {
		t.Error("name should mention the wrapped index")
	}
}
