package core

// IndexRacer extends the Ψ-framework's race-everything architecture to the
// filtering stage itself. Where FTVRacer races query rewritings *inside* one
// index's verification, IndexRacer races entire filtering indexes — the
// paper's "alternative algorithms" (FTV, Grapes, GGSX) — against each other
// per query: every configured index runs its full streaming filter→verify
// pipeline concurrently, the first index to emit a verified candidate adopts
// the output stream, and the losers are cancelled through their contexts.
// Because every index is exact (no false negatives, verified positives), all
// pipelines compute the same ascending answer, so adopting the first emitter
// is sound — just as adopting the first matcher to emit is sound in
// Racer.RaceStream.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
	"github.com/psi-graph/psi/internal/rewrite"
)

// IndexRacer races alternative filtering indexes per query. Construct with
// NewIndexRacer; safe for concurrent queries. Close releases the
// per-attempt verification pools.
type IndexRacer struct {
	// Indexes are the raced alternatives, in portfolio order.
	Indexes []index.Index
	// Rewritings are raced per candidate inside every index attempt,
	// exactly as FTVRacer does for a single index.
	Rewritings []rewrite.Kind
	// Pool sizes the per-attempt verification pools (nil: CPU count) and
	// carries the degenerate single-index pipeline. Attempts do NOT share
	// one pool: each index races on a dedicated pool created at first
	// use, because a hung or straggling index could otherwise occupy
	// every shared worker and starve the eventual winner's verifications
	// — the race must guarantee each contender independent progress, just
	// as matcher races guarantee every attempt its own concurrency.
	Pool *exec.Pool

	racers  []*FTVRacer
	poolsMu sync.Mutex
	pools   []*exec.Pool
}

// NewIndexRacer builds a racer over the given index portfolio, with
// dataset-wide label frequencies computed once and shared by every
// per-candidate rewriting race.
func NewIndexRacer(xs []index.Index, kinds []rewrite.Kind) *IndexRacer {
	r := &IndexRacer{Indexes: xs, Rewritings: kinds}
	var freqs rewrite.Frequencies
	if len(xs) > 0 {
		freqs = rewrite.FrequenciesOfDataset(xs[0].Dataset())
	}
	for _, x := range xs {
		r.racers = append(r.racers, &FTVRacer{Index: x, Rewritings: kinds, Frequencies: freqs})
	}
	return r
}

// attemptPools lazily creates one verification pool per index attempt,
// each sized like the configured shared pool (or the CPU count).
func (r *IndexRacer) attemptPools() []*exec.Pool {
	r.poolsMu.Lock()
	defer r.poolsMu.Unlock()
	if r.pools == nil {
		w := 0
		if r.Pool != nil {
			w = r.Pool.Workers()
		}
		r.pools = make([]*exec.Pool, len(r.racers))
		for i := range r.pools {
			r.pools[i] = exec.New(w)
		}
	}
	return r.pools
}

// Close releases the per-attempt verification pools, if any were created —
// a racer that never served a race has nothing to release and Close spawns
// nothing. Races in flight degrade gracefully (pool tasks fall back to
// transient goroutines).
func (r *IndexRacer) Close() {
	r.poolsMu.Lock()
	defer r.poolsMu.Unlock()
	for _, p := range r.pools {
		p.Close()
	}
}

// Name identifies the configuration, e.g. "Ψ(FTV|Grapes/1|GGSX: Or/DND)".
func (r *IndexRacer) Name() string {
	s := "Ψ("
	for i, x := range r.Indexes {
		if i > 0 {
			s += "|"
		}
		s += x.Name()
	}
	s += ":"
	for i, k := range r.Rewritings {
		if i > 0 {
			s += "/"
		} else {
			s += " "
		}
		s += k.String()
	}
	return s + ")"
}

// IndexAttempt reports one index's run inside a race.
type IndexAttempt struct {
	// Name is the index's instance name, e.g. "Grapes/1".
	Name string `json:"name"`
	// Winner marks the attempt whose output stream was adopted.
	Winner bool `json:"winner"`
	// Cancelled marks a loser that was cut off after the winner emitted.
	Cancelled bool `json:"cancelled"`
	// Emitted is how many verified graph IDs the attempt surfaced (only
	// the winner emits into the caller's stream).
	Emitted int `json:"emitted"`
	// Elapsed is the attempt's wall-clock time from race start until it
	// finished or was cancelled.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Err records a loser's non-cancellation failure, empty otherwise.
	Err string `json:"err,omitempty"`
}

// IndexRaceResult is the outcome of one index race.
type IndexRaceResult struct {
	// GraphIDs is the winning pipeline's answer, ascending (filled by
	// Answer; AnswerStream hands IDs to the caller's emit instead).
	GraphIDs []int
	// Winner is the adopted index's name.
	Winner string
	// WinnerIndex is the adopted index's position in the portfolio.
	WinnerIndex int
	// Attempts reports every index's run, in portfolio order.
	Attempts []IndexAttempt
	// Elapsed is the wall-clock time of the whole race.
	Elapsed time.Duration
}

// Answer races the portfolio and collects the winning pipeline's ascending
// graph IDs.
func (r *IndexRacer) Answer(ctx context.Context, q *graph.Graph) (IndexRaceResult, error) {
	var out []int
	res, err := r.AnswerStream(ctx, q, func(id int) bool {
		out = append(out, id)
		return true
	})
	if err != nil {
		return IndexRaceResult{}, err
	}
	res.GraphIDs = out
	return res, nil
}

// AnswerArm runs a single portfolio arm's pipeline alone — no race, no
// adoption — and collects its ascending graph IDs. This is the execution a
// learned planning policy buys when it trusts one index for a query class:
// the answer is identical to a full race's (every index is exact) at 1/n of
// the started work.
func (r *IndexRacer) AnswerArm(ctx context.Context, q *graph.Graph, arm int) (IndexRaceResult, error) {
	var out []int
	res, err := r.AnswerStreamArm(ctx, q, arm, func(id int) bool {
		out = append(out, id)
		return true
	})
	if err != nil {
		return IndexRaceResult{}, err
	}
	res.GraphIDs = out
	return res, nil
}

// AnswerStreamArm is AnswerArm with the verified graph IDs streamed into
// emit in ascending order. The solo pipeline runs on the racer's shared
// pool: with no contending attempts there is nothing to starve.
func (r *IndexRacer) AnswerStreamArm(ctx context.Context, q *graph.Graph, arm int, emit func(graphID int) bool) (IndexRaceResult, error) {
	if arm < 0 || arm >= len(r.racers) {
		return IndexRaceResult{}, fmt.Errorf("psi: index arm %d out of range [0,%d)", arm, len(r.racers))
	}
	start := time.Now()
	fr := &FTVRacer{
		Index:       r.racers[arm].Index,
		Rewritings:  r.racers[arm].Rewritings,
		Frequencies: r.racers[arm].Frequencies,
		Pool:        r.Pool,
	}
	emitted := 0
	err := fr.AnswerStream(ctx, q, func(id int) bool {
		emitted++
		return emit(id)
	})
	if err != nil {
		return IndexRaceResult{}, err
	}
	elapsed := time.Since(start)
	return IndexRaceResult{
		Winner:      r.Indexes[arm].Name(),
		WinnerIndex: arm,
		Elapsed:     elapsed,
		Attempts: []IndexAttempt{{
			Name:    r.Indexes[arm].Name(),
			Winner:  true,
			Emitted: emitted,
			Elapsed: elapsed,
		}},
	}, nil
}

// AnswerStream races every index's streaming filter→verify pipeline and
// streams the adopted winner's verified graph IDs into emit, in ascending
// order. The first index to emit a verified candidate claims the output
// stream; the other attempts are cancelled immediately through their
// contexts and drain before AnswerStream returns, so a race leaves no
// goroutines behind (the per-attempt metrics in the result record the
// cancellations). An attempt that completes with an empty answer before
// anyone emits wins the race — all indexes are exact, so the answer is
// empty. emit must not block; returning false stops the winner and ends the
// race successfully with the IDs seen so far.
func (r *IndexRacer) AnswerStream(ctx context.Context, q *graph.Graph, emit func(graphID int) bool) (IndexRaceResult, error) {
	n := len(r.racers)
	if n == 0 {
		return IndexRaceResult{}, errors.New("psi: IndexRacer needs at least one index")
	}
	start := time.Now()
	if n == 1 {
		// A portfolio of one is a plain streaming answer, no adoption.
		fr := &FTVRacer{
			Index:       r.racers[0].Index,
			Rewritings:  r.racers[0].Rewritings,
			Frequencies: r.racers[0].Frequencies,
			Pool:        r.Pool,
		}
		emitted := 0
		err := fr.AnswerStream(ctx, q, func(id int) bool {
			emitted++
			return emit(id)
		})
		if err != nil {
			return IndexRaceResult{}, err
		}
		elapsed := time.Since(start)
		return IndexRaceResult{
			Winner:      r.Indexes[0].Name(),
			WinnerIndex: 0,
			Elapsed:     elapsed,
			Attempts: []IndexAttempt{{
				Name:    r.Indexes[0].Name(),
				Winner:  true,
				Emitted: emitted,
				Elapsed: elapsed,
			}},
		}, nil
	}
	pools := r.attemptPools()
	raceCtx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	ctxs := make([]context.Context, n)
	cancels := make([]context.CancelFunc, n)
	for i := range ctxs {
		ctxs[i], cancels[i] = context.WithCancel(raceCtx)
	}
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()
	var adopted atomic.Int32
	adopted.Store(-1)
	type outcome struct {
		idx     int
		emitted int
		lost    bool // stopped because another attempt owns the stream
		err     error
		elapsed time.Duration
	}
	ch := make(chan outcome, n)
	for i := range r.racers {
		i := i
		// Dedicated goroutine per attempt: attempts block waiting on pool
		// Groups, so running them *on* pool workers could starve a small
		// pool into deadlock. Race attempts need guaranteed concurrency.
		go func() {
			o := outcome{idx: i}
			defer func() {
				if rec := recover(); rec != nil {
					o.err = fmt.Errorf("psi: index attempt panic: %v", rec)
				}
				o.elapsed = time.Since(start)
				ch <- o
			}()
			fr := &FTVRacer{
				Index:       r.racers[i].Index,
				Rewritings:  r.racers[i].Rewritings,
				Frequencies: r.racers[i].Frequencies,
				Pool:        pools[i],
			}
			err := fr.AnswerStream(ctxs[i], q, func(id int) bool {
				if adopted.Load() != int32(i) {
					if !adopted.CompareAndSwap(-1, int32(i)) {
						// Raced the winner to its first emission and lost.
						o.lost = true
						return false
					}
					// First verified candidate of the whole race: this
					// pipeline now owns the output; cancel the rest.
					for j, c := range cancels {
						if j != i {
							c()
						}
					}
				}
				o.emitted++
				return emit(id)
			})
			if !o.lost {
				o.err = err
			}
		}()
	}
	res := IndexRaceResult{WinnerIndex: -1, Attempts: make([]IndexAttempt, n)}
	var errs []error
	failed := false
	var raceErr error
	for done := 0; done < n; done++ {
		o := <-ch
		att := &res.Attempts[o.idx]
		att.Name = r.Indexes[o.idx].Name()
		att.Emitted = o.emitted
		att.Elapsed = o.elapsed
		switch {
		case o.lost:
			att.Cancelled = true
		case o.err != nil:
			if int(adopted.Load()) == o.idx {
				// The adopted pipeline died mid-stream: partial output may
				// have reached the caller, so the race as a whole fails
				// rather than silently switching winners.
				failed = true
				raceErr = fmt.Errorf("%s: %w", att.Name, o.err)
			} else if ctxs[o.idx].Err() != nil && ctx.Err() == nil {
				// Cut off by the adoption (not by the caller): a loser.
				att.Cancelled = true
			} else {
				att.Err = o.err.Error()
				errs = append(errs, fmt.Errorf("%s: %w", att.Name, o.err))
			}
		case int(adopted.Load()) == o.idx:
			// The adopted winner ran to completion (or the caller's emit
			// stopped it): the race is decided. Keep draining the losers so
			// the race leaves nothing running.
			att.Winner = true
			res.Winner = att.Name
			res.WinnerIndex = o.idx
			cancelAll()
		case adopted.CompareAndSwap(-1, int32(o.idx)):
			// Completed with an empty answer before anyone emitted: the
			// answer is empty (every index is exact), so this attempt wins.
			att.Winner = true
			res.Winner = att.Name
			res.WinnerIndex = o.idx
			cancelAll()
		default:
			// Completed empty after another attempt was adopted.
			att.Cancelled = ctxs[o.idx].Err() != nil && ctx.Err() == nil
		}
	}
	res.Elapsed = time.Since(start)
	if failed {
		return IndexRaceResult{}, raceErr
	}
	if res.WinnerIndex < 0 {
		if err := ctx.Err(); err != nil {
			return IndexRaceResult{}, err
		}
		return IndexRaceResult{}, errors.Join(errs...)
	}
	return res, nil
}
