package core

// Tests for the streaming race path: adoption on first emission, empty
// races, sink-driven early termination and parity with the slice path.

import (
	"context"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/psi-graph/psi/internal/gql"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/rewrite"
	"github.com/psi-graph/psi/internal/spath"
	"github.com/psi-graph/psi/internal/vf2"
)

func streamTestGraph() (*graph.Graph, *graph.Graph) {
	r := rand.New(rand.NewSource(7))
	b := graph.NewBuilder("g")
	const n = 30
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(r.Intn(2)))
	}
	for v := 1; v < n; v++ {
		if err := b.AddEdge(r.Intn(v), v); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 40; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !b.HasEdgePending(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	g := b.MustBuild()
	q := graph.MustNew("q", []graph.Label{0, 1, 0}, [][2]int{{0, 1}, {1, 2}})
	return g, q
}

func streamAttempts(g *graph.Graph) []Attempt {
	return Portfolio(
		[]match.Matcher{vf2.New(g), gql.New(g), spath.New(g)},
		[]rewrite.Kind{rewrite.Orig, rewrite.DND})
}

// TestRaceStreamMatchesRaceCount: the streamed embedding count must equal
// the slice race's count (all attempts are isomorphic), and every streamed
// embedding must be valid against the original query.
func TestRaceStreamMatchesRaceCount(t *testing.T) {
	g, q := streamTestGraph()
	racer := NewRacer(g)
	attempts := streamAttempts(g)
	want, err := racer.Race(context.Background(), q, 100000, attempts)
	if err != nil {
		t.Fatal(err)
	}
	var got []match.Embedding
	res, err := racer.RaceStream(context.Background(), q, 100000, attempts,
		match.SinkFunc(func(e match.Embedding) bool {
			got = append(got, e)
			return true
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Embeddings) {
		t.Fatalf("streamed %d embeddings, slice race found %d", len(got), len(want.Embeddings))
	}
	if res.Found != len(got) {
		t.Errorf("Result.Found = %d, sink saw %d", res.Found, len(got))
	}
	if res.Embeddings != nil {
		t.Error("RaceStream must not materialize embeddings in the Result")
	}
	if !res.Contained() {
		t.Error("Contained() must be true for a non-empty stream")
	}
	for _, e := range got {
		if verr := match.VerifyEmbedding(q, g, e); verr != nil {
			t.Fatalf("streamed embedding invalid against original query: %v", verr)
		}
	}
}

// TestRaceStreamFirstEmissionStopsRace: a sink that declines after the
// first embedding ends the race with Found == 1 — the decision-query
// shape — and a sane winner.
func TestRaceStreamFirstEmissionStopsRace(t *testing.T) {
	g, q := streamTestGraph()
	racer := NewRacer(g)
	attempts := streamAttempts(g)
	emitted := 0
	res, err := racer.RaceStream(context.Background(), q, 100000, attempts,
		match.SinkFunc(func(match.Embedding) bool {
			emitted++
			return false
		}))
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 1 || res.Found != 1 {
		t.Fatalf("emitted %d / Found %d, want exactly 1", emitted, res.Found)
	}
	if res.WinnerIndex < 0 || res.WinnerIndex >= len(attempts) {
		t.Fatalf("WinnerIndex %d out of range", res.WinnerIndex)
	}
}

// TestRaceStreamEmptyAnswer: a query with no embeddings wins an empty race
// with Found == 0 and no error.
func TestRaceStreamEmptyAnswer(t *testing.T) {
	hex := graph.MustNew("hex", []graph.Label{0, 0, 0, 0, 0, 0},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	tri := graph.MustNew("tri", []graph.Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	racer := NewRacer(hex)
	res, err := racer.RaceStream(context.Background(), tri, 10, streamAttempts(hex),
		match.SinkFunc(func(match.Embedding) bool {
			t.Error("empty race must not emit")
			return false
		}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Found != 0 || res.Contained() {
		t.Fatalf("empty race reported Found=%d Contained=%v", res.Found, res.Contained())
	}
}

// TestRaceStreamDecisionLimit: limit <= 0 streams exactly one embedding.
func TestRaceStreamDecisionLimit(t *testing.T) {
	g, q := streamTestGraph()
	racer := NewRacer(g)
	emitted := 0
	res, err := racer.RaceStream(context.Background(), q, 0, streamAttempts(g),
		match.SinkFunc(func(match.Embedding) bool {
			emitted++
			return true
		}))
	if err != nil {
		t.Fatal(err)
	}
	if emitted != 1 || res.Found != 1 {
		t.Fatalf("decision stream emitted %d / Found %d, want 1", emitted, res.Found)
	}
}

// TestRaceStreamSingleEmitter: only one attempt's embeddings ever reach
// the sink, even under a wide portfolio racing concurrently.
func TestRaceStreamSingleEmitter(t *testing.T) {
	g, q := streamTestGraph()
	racer := NewRacer(g)
	attempts := streamAttempts(g)
	for i := 0; i < 50; i++ {
		var want []match.Embedding
		res, err := racer.RaceStream(context.Background(), q, 1000, attempts,
			match.SinkFunc(func(e match.Embedding) bool {
				want = append(want, e)
				return true
			}))
		if err != nil {
			t.Fatal(err)
		}
		// The winner's own slice-path enumeration must reproduce the
		// stream exactly: interleaving two attempts would break this.
		q2, perm := rewrite.Apply(q, racer.Frequencies, res.Winner.Rewriting, res.Winner.Seed)
		direct, err := res.Winner.Matcher.Match(context.Background(), q2, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(direct) != len(want) {
			t.Fatalf("iter %d: stream has %d embeddings, winner alone finds %d", i, len(want), len(direct))
		}
		for j, e := range direct {
			back := rewrite.MapBack(e, perm)
			for k := range back {
				if back[k] != want[j][k] {
					t.Fatalf("iter %d: stream diverges from winner's own order at %d", i, j)
				}
			}
		}
	}
}

// TestRaceStreamParentCancellation: cancelling the caller's context while
// the adopted attempt is mid-stream surfaces as an error.
func TestRaceStreamParentCancellation(t *testing.T) {
	g, q := streamTestGraph()
	racer := NewRacer(g)
	ctx, cancel := context.WithCancel(context.Background())
	var streamed atomic.Int64
	_, err := racer.RaceStream(ctx, q, 1000000, streamAttempts(g),
		match.SinkFunc(func(match.Embedding) bool {
			if streamed.Add(1) == 1 {
				cancel()
				// Give the cancellation time to reach the matcher's budget.
				time.Sleep(time.Millisecond)
			}
			return true
		}))
	cancel()
	if err == nil {
		// The enumeration may legitimately finish before the budget polls
		// the context; only a wrong error type is a failure.
		t.Skip("enumeration finished before cancellation propagated")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("expected a cancellation error, got %v", err)
	}
}

// TestRacedMatcherStreams: the RacedMatcher facade implements
// match.StreamMatcher and agrees with its own Match.
func TestRacedMatcherStreams(t *testing.T) {
	g, q := streamTestGraph()
	m := NewRacedMatcher("Ψ(test)", NewRacer(g), streamAttempts(g))
	var sm match.StreamMatcher = m // compile-time + runtime interface check
	want, err := m.Match(context.Background(), q, 500)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := sm.MatchStream(context.Background(), q, 500, match.SinkFunc(func(match.Embedding) bool {
		count++
		return true
	})); err != nil {
		t.Fatal(err)
	}
	if count != len(want) {
		t.Fatalf("streamed %d embeddings, Match found %d", count, len(want))
	}
}

// TestFTVRacerAnswerStreamMatchesAnswer: the streamed IDs must be exactly
// Answer's ascending IDs, and stopping early must truncate cleanly.
func TestFTVRacerAnswerStreamMatchesAnswer(t *testing.T) {
	x := newGatedIndex(20)
	close(x.release) // verifications pass immediately
	f := NewFTVRacer(x, []rewrite.Kind{rewrite.Orig, rewrite.DND})
	q := x.ds[0]
	want, err := f.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	if err := f.AnswerStream(context.Background(), q, func(id int) bool {
		got = append(got, id)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d ids, Answer returned %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("order diverges at %d: stream %v vs answer %v", i, got, want)
		}
	}
	var firstThree []int
	if err := f.AnswerStream(context.Background(), q, func(id int) bool {
		firstThree = append(firstThree, id)
		return len(firstThree) < 3
	}); err != nil {
		t.Fatal(err)
	}
	if len(firstThree) != 3 || firstThree[0] != want[0] || firstThree[2] != want[2] {
		t.Fatalf("early-stopped stream %v is not the answer prefix of %v", firstThree, want)
	}
}
