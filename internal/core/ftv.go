package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
	"github.com/psi-graph/psi/internal/rewrite"
)

// FTVRacer applies the Ψ-framework to a filter-then-verify method (§8: "In
// the FTV methods we leave intact the index construction and the filtering
// stages... In the verification stage, for every graph in the candidate
// set, we instantiate a number of threads equal to the number of the
// isomorphic-query rewritings we utilize").
type FTVRacer struct {
	// Index is the wrapped FTV method (Grapes or GGSX).
	Index ftv.Index
	// Rewritings are the raced isomorphic instances per candidate graph;
	// include rewrite.Orig to race the original query too (the paper's
	// Ψ(Or/...) variants).
	Rewritings []rewrite.Kind
	// Frequencies are dataset-wide label frequencies for ILF rewritings;
	// NewFTVRacer fills them in.
	Frequencies rewrite.Frequencies
	// Pool is the shared execution layer: Answer fans candidate graphs
	// out across its workers (hard-bounded), and each candidate's
	// rewriting race submits its attempts through the same pool. nil
	// selects the shared default pool. In-flight goroutines are therefore
	// bounded by pool size × len(Rewritings) instead of
	// #candidates × len(Rewritings).
	Pool *exec.Pool
}

// NewFTVRacer wraps an FTV index with raced rewritings.
func NewFTVRacer(x ftv.Index, kinds []rewrite.Kind) *FTVRacer {
	return &FTVRacer{
		Index:       x,
		Rewritings:  kinds,
		Frequencies: rewrite.FrequenciesOfDataset(x.Dataset()),
	}
}

// Name identifies the configuration, e.g. "Ψ(Grapes/1: ILF/IND/DND)".
func (f *FTVRacer) Name() string {
	s := "Ψ(" + f.Index.Name() + ":"
	for i, k := range f.Rewritings {
		if i > 0 {
			s += "/"
		} else {
			s += " "
		}
		s += k.String()
	}
	return s + ")"
}

// FTVResult reports one raced verification.
type FTVResult struct {
	Contained bool
	// Winner is the rewriting whose thread finished first.
	Winner rewrite.Kind
	// Elapsed is the wall-clock verification time.
	Elapsed time.Duration
}

// Verify races one verification per rewriting for a single candidate graph
// and returns the first finisher's answer. Because every rewriting yields a
// query isomorphic to the original, all threads compute the same boolean.
// Attempts go through the racer's pool (guaranteed-concurrency submit), so
// idle workers are reused but the race never serializes.
func (f *FTVRacer) Verify(ctx context.Context, q *graph.Graph, graphID int) (FTVResult, error) {
	if len(f.Rewritings) == 0 {
		return FTVResult{}, errors.New("psi: FTVRacer needs at least one rewriting")
	}
	pool := f.Pool
	if pool == nil {
		pool = exec.Default()
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		kind      rewrite.Kind
		contained bool
		err       error
	}
	ch := make(chan outcome, len(f.Rewritings))
	start := time.Now()
	for _, k := range f.Rewritings {
		k := k
		pool.Go(func() {
			o := outcome{kind: k}
			defer func() {
				if rec := recover(); rec != nil {
					o.contained, o.err = false, fmt.Errorf("psi: verification panic: %v", rec)
				}
				ch <- o
			}()
			q2, _ := rewrite.Apply(q, f.Frequencies, k, 0)
			o.contained, o.err = f.Index.Verify(raceCtx, q2, graphID)
		})
	}
	var errs []error
	for n := 0; n < len(f.Rewritings); n++ {
		o := <-ch
		if o.err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", o.kind, o.err))
			continue
		}
		cancel()
		return FTVResult{Contained: o.contained, Winner: o.kind, Elapsed: time.Since(start)}, nil
	}
	if err := ctx.Err(); err != nil {
		return FTVResult{}, err
	}
	return FTVResult{}, errors.Join(errs...)
}

// Answer runs the full decision pipeline with raced verification: filtering
// happens once on the original query (isomorphic rewritings produce the
// same filter outcome), then the candidates fan out across the pool's
// workers (at most pool-size candidates in flight), each verified by a race
// of the configured rewritings. The answer is assembled positionally, so
// the returned IDs are identical to sequential verification: ascending.
func (f *FTVRacer) Answer(ctx context.Context, q *graph.Graph) ([]int, error) {
	var out []int
	err := f.AnswerStream(ctx, q, func(id int) bool {
		out = append(out, id)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AnswerStream is the streaming form of Answer: each containing graph ID is
// handed to emit as soon as its raced verification — and that of every
// candidate before it — has settled, so the caller observes answers
// incrementally yet in the same ascending order Answer returns. When the
// wrapped index implements the unified streaming-filter contract
// (index.FilterStreamer — every index built by this module does), filtering
// and verification overlap: candidates begin their rewriting race the moment
// the filter surfaces them, before the remaining dataset has been scanned.
// emit returning false cancels the outstanding verifications and ends the
// stream with a nil error. emit is called from verification goroutines under
// an internal lock and must not block — in particular, it must not wait on
// work that only proceeds after AnswerStream returns.
func (f *FTVRacer) AnswerStream(ctx context.Context, q *graph.Graph, emit func(graphID int) bool) error {
	check := func(gctx context.Context, id int) (bool, error) {
		res, err := f.Verify(gctx, q, id)
		return res.Contained, err
	}
	if fs, ok := f.Index.(index.FilterStreamer); ok {
		return index.StreamVerified(ctx, f.Pool,
			func(fctx context.Context, femit func(int) bool) error {
				return fs.FilterStream(fctx, q, femit)
			},
			emit, check)
	}
	return ftv.StreamCandidates(ctx, f.Pool, f.Index.Filter(q), emit, check)
}
