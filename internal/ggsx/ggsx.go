// Package ggsx implements GGSX (Bonnici et al., IAPR PRIB 2010) as described
// in §3.1.1 of the paper: like Grapes it indexes simple paths up to a
// maximum length extracted in a DFS manner, but it organizes them in a
// suffix-tree structure, keeps no location information, and verifies
// candidates with VF2 against the whole stored graph — which is exactly why
// it shows more straggler queries than Grapes in the paper's Figure 1.
//
// Substitution note (see DESIGN.md): the original's generalized suffix tree
// over maximal paths is represented here as a suffix trie storing every
// path suffix with correct occurrence counts; filtering power (presence +
// frequency pruning over all ≤maxLen paths) is identical, the difference is
// constant-factor storage layout.
//
// The index implements the unified filtering-index contract of
// internal/index: construction fans feature extraction out on the shared
// execution pool (replacing the previous sequential insert loop) and folds
// the per-graph results into the suffix trie in graph-ID order, so the built
// index is identical for every worker count; filtering goes through the
// shared presence/frequency pruning, and FilterStream emits candidates
// incrementally.
package ggsx

import (
	"context"
	"fmt"
	"time"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
	"github.com/psi-graph/psi/internal/vf2"
)

// Kind is the registered index kind.
const Kind = "ggsx"

func init() {
	index.Register(Kind, func(ctx context.Context, ds []*graph.Graph, opts index.Options) (index.Index, error) {
		x, err := BuildContext(ctx, ds, Options{MaxPathLen: opts.MaxPathLen, Pool: opts.Pool})
		if err != nil {
			return nil, err
		}
		return x, nil
	})
}

// Options configures index construction.
type Options struct {
	// MaxPathLen is the maximum indexed path length in edges; defaults
	// to ftv.DefaultMaxPathLen (4), the paper's setting.
	MaxPathLen int
	// Pool is the execution pool the build's feature extraction fans out
	// on; nil selects the shared default pool. The built index is
	// identical for every pool size.
	Pool *exec.Pool
}

func (o Options) withDefaults() Options {
	if o.MaxPathLen <= 0 {
		o.MaxPathLen = ftv.DefaultMaxPathLen
	}
	return o
}

// suffixNode is one node of the suffix trie. Because every suffix of every
// enumerated path is itself an enumerated path (suffixes of simple paths
// are simple paths), counts at inner nodes are exact occurrence counts.
type suffixNode struct {
	children map[graph.Label]*suffixNode
	counts   map[int]int32 // graphID -> occurrences of the sequence
}

func newSuffixNode() *suffixNode {
	return &suffixNode{children: make(map[graph.Label]*suffixNode)}
}

// Index is a built GGSX index. Safe for concurrent use once built.
type Index struct {
	ds       []*graph.Graph
	opts     Options
	root     *suffixNode
	verifier []*vf2.Matcher // per-graph VF2 matcher with prebuilt label index
	stats    index.Stats
}

// Build constructs the suffix trie over all path features of the dataset;
// see BuildContext for the cancellable form.
func Build(ds []*graph.Graph, opts Options) *Index {
	x, err := BuildContext(context.Background(), ds, opts)
	if err != nil {
		// Unreachable: the background context never cancels and extraction
		// has no other failure mode.
		panic(err)
	}
	return x
}

// BuildContext constructs the suffix trie, extracting features from dataset
// graphs across the pool's workers and folding them into the trie in
// graph-ID order — deterministic output for every worker count. Cancelling
// ctx aborts the build and returns the context's error.
func BuildContext(ctx context.Context, ds []*graph.Graph, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	start := time.Now()
	feats, err := ftv.ExtractDatasetFeatures(ctx, opts.Pool, ds, opts.MaxPathLen, false)
	if err != nil {
		return nil, err
	}
	x := &Index{ds: ds, opts: opts, root: newSuffixNode(), verifier: make([]*vf2.Matcher, len(ds))}
	for id, fs := range feats {
		for _, f := range fs {
			x.insert(id, f.Labels, f.Count)
		}
		x.verifier[id] = vf2.New(ds[id])
	}
	x.stats = index.Stats{
		Name:         x.Name(),
		Kind:         Kind,
		Graphs:       len(ds),
		MaxPathLen:   opts.MaxPathLen,
		Features:     x.featureCount(),
		Nodes:        x.nodeCount(),
		BuildTime:    time.Since(start),
		BuildWorkers: index.PoolWorkers(opts.Pool),
	}
	return x, nil
}

func (x *Index) insert(graphID int, labels []graph.Label, count int32) {
	node := x.root
	for _, l := range labels {
		child := node.children[l]
		if child == nil {
			child = newSuffixNode()
			node.children[l] = child
		}
		node = child
	}
	if node.counts == nil {
		node.counts = make(map[int]int32)
	}
	node.counts[graphID] += count
}

// Name implements ftv.Index.
func (x *Index) Name() string { return "GGSX" }

// Dataset implements ftv.Index.
func (x *Index) Dataset() []*graph.Graph { return x.ds }

// MaxPathLen returns the indexed path length.
func (x *Index) MaxPathLen() int { return x.opts.MaxPathLen }

// Stats implements index.Index.
func (x *Index) Stats() index.Stats { return x.stats }

// Close implements index.Index; GGSX owns no resources.
func (x *Index) Close() {}

// nodeCount reports the number of suffix-trie nodes (diagnostics).
func (x *Index) nodeCount() int {
	var walk func(n *suffixNode) int
	walk = func(n *suffixNode) int {
		c := 1
		for _, ch := range n.children {
			c += walk(ch)
		}
		return c
	}
	return walk(x.root)
}

// featureCount reports the number of distinct indexed label sequences.
func (x *Index) featureCount() int {
	var walk func(n *suffixNode) int
	walk = func(n *suffixNode) int {
		c := 0
		if len(n.counts) > 0 {
			c = 1
		}
		for _, ch := range n.children {
			c += walk(ch)
		}
		return c
	}
	return walk(x.root)
}

// lookup returns per-graph occurrence counts for a label sequence, nil if
// the sequence is absent from every graph.
func (x *Index) lookup(labels []graph.Label) map[int]int32 {
	node := x.root
	for _, l := range labels {
		node = node.children[l]
		if node == nil {
			return nil
		}
	}
	return node.counts
}

// lookupPostings adapts lookup to the shared filter plumbing.
func (x *Index) lookupPostings(labels []graph.Label) (index.Postings, bool) {
	counts := x.lookup(labels)
	if counts == nil {
		return nil, false
	}
	return index.MapPostings(counts), true
}

// Filter implements ftv.Index using presence and frequency pruning over the
// query's maximal paths.
func (x *Index) Filter(q *graph.Graph) []int {
	return index.FilterByFeatures(len(x.ds), ftv.QueryFeatures(q, x.opts.MaxPathLen), x.lookupPostings)
}

// FilterStream implements index.Index: surviving graph IDs are emitted
// incrementally in ascending order.
func (x *Index) FilterStream(ctx context.Context, q *graph.Graph, emit func(graphID int) bool) error {
	return index.StreamByFeatures(ctx, len(x.ds), ftv.QueryFeatures(q, x.opts.MaxPathLen), x.lookupPostings, emit)
}

// Verify implements ftv.Index: VF2 against the whole stored graph (GGSX
// keeps no location information to narrow the search).
func (x *Index) Verify(ctx context.Context, q *graph.Graph, graphID int) (bool, error) {
	if graphID < 0 || graphID >= len(x.verifier) {
		return false, fmt.Errorf("ggsx: graph ID %d out of range [0,%d)", graphID, len(x.verifier))
	}
	return x.verifier[graphID].Contains(ctx, q)
}
