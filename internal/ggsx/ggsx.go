// Package ggsx implements GGSX (Bonnici et al., IAPR PRIB 2010) as described
// in §3.1.1 of the paper: like Grapes it indexes simple paths up to a
// maximum length extracted in a DFS manner, but it organizes them in a
// suffix-tree structure, keeps no location information, and verifies
// candidates with VF2 against the whole stored graph — which is exactly why
// it shows more straggler queries than Grapes in the paper's Figure 1.
//
// Substitution note (see DESIGN.md): the original's generalized suffix tree
// over maximal paths is represented here as a suffix trie storing every
// path suffix with correct occurrence counts; filtering power (presence +
// frequency pruning over all ≤maxLen paths) is identical, the difference is
// constant-factor storage layout.
package ggsx

import (
	"context"
	"sort"

	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/vf2"
)

// Options configures index construction.
type Options struct {
	// MaxPathLen is the maximum indexed path length in edges; defaults
	// to ftv.DefaultMaxPathLen (4), the paper's setting.
	MaxPathLen int
}

func (o Options) withDefaults() Options {
	if o.MaxPathLen <= 0 {
		o.MaxPathLen = ftv.DefaultMaxPathLen
	}
	return o
}

// suffixNode is one node of the suffix trie. Because every suffix of every
// enumerated path is itself an enumerated path (suffixes of simple paths
// are simple paths), counts at inner nodes are exact occurrence counts.
type suffixNode struct {
	children map[graph.Label]*suffixNode
	counts   map[int]int32 // graphID -> occurrences of the sequence
}

func newSuffixNode() *suffixNode {
	return &suffixNode{children: make(map[graph.Label]*suffixNode)}
}

// Index is a built GGSX index. Safe for concurrent use once built.
type Index struct {
	ds       []*graph.Graph
	opts     Options
	root     *suffixNode
	verifier []*vf2.Matcher // per-graph VF2 matcher with prebuilt label index
}

// Build constructs the suffix trie over all path features of the dataset.
func Build(ds []*graph.Graph, opts Options) *Index {
	opts = opts.withDefaults()
	x := &Index{ds: ds, opts: opts, root: newSuffixNode(), verifier: make([]*vf2.Matcher, len(ds))}
	for id, g := range ds {
		feats := ftv.ExtractFeatures(g, opts.MaxPathLen, false)
		for _, f := range feats {
			x.insert(id, f.Labels, f.Count)
		}
		x.verifier[id] = vf2.New(g)
	}
	return x
}

func (x *Index) insert(graphID int, labels []graph.Label, count int32) {
	node := x.root
	for _, l := range labels {
		child := node.children[l]
		if child == nil {
			child = newSuffixNode()
			node.children[l] = child
		}
		node = child
	}
	if node.counts == nil {
		node.counts = make(map[int]int32)
	}
	node.counts[graphID] += count
}

// Name implements ftv.Index.
func (x *Index) Name() string { return "GGSX" }

// Dataset implements ftv.Index.
func (x *Index) Dataset() []*graph.Graph { return x.ds }

// MaxPathLen returns the indexed path length.
func (x *Index) MaxPathLen() int { return x.opts.MaxPathLen }

// lookup returns per-graph occurrence counts for a label sequence, nil if
// the sequence is absent from every graph.
func (x *Index) lookup(labels []graph.Label) map[int]int32 {
	node := x.root
	for _, l := range labels {
		node = node.children[l]
		if node == nil {
			return nil
		}
	}
	return node.counts
}

// Filter implements ftv.Index using presence and frequency pruning over the
// query's maximal paths.
func (x *Index) Filter(q *graph.Graph) []int {
	feats := ftv.QueryFeatures(q, x.opts.MaxPathLen)
	if len(feats) == 0 {
		all := make([]int, len(x.ds))
		for i := range all {
			all[i] = i
		}
		return all
	}
	var surviving map[int]bool
	for _, f := range feats {
		counts := x.lookup(f.Labels)
		if counts == nil {
			return nil
		}
		next := make(map[int]bool)
		for id, c := range counts {
			if c >= f.Count && (surviving == nil || surviving[id]) {
				next[id] = true
			}
		}
		if len(next) == 0 {
			return nil
		}
		surviving = next
	}
	out := make([]int, 0, len(surviving))
	for id := range surviving {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// Verify implements ftv.Index: VF2 against the whole stored graph (GGSX
// keeps no location information to narrow the search).
func (x *Index) Verify(ctx context.Context, q *graph.Graph, graphID int) (bool, error) {
	return x.verifier[graphID].Contains(ctx, q)
}
