package ggsx

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/vf2"
)

func smallDataset() []*graph.Graph {
	return []*graph.Graph{
		graph.MustNew("g0", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}, {2, 0}}),
		graph.MustNew("g1", []graph.Label{0, 1, 2, 0}, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
		graph.MustNew("g2", []graph.Label{1, 0, 0, 0}, [][2]int{{0, 1}, {0, 2}, {0, 3}}),
	}
}

func TestBuildAndName(t *testing.T) {
	x := Build(smallDataset(), Options{})
	if x.Name() != "GGSX" {
		t.Errorf("Name = %q", x.Name())
	}
	if len(x.Dataset()) != 3 {
		t.Error("Dataset")
	}
	if x.MaxPathLen() != ftv.DefaultMaxPathLen {
		t.Errorf("MaxPathLen = %d", x.MaxPathLen())
	}
}

func TestLookupCounts(t *testing.T) {
	x := Build(smallDataset(), Options{})
	counts := x.lookup([]graph.Label{0, 1})
	// g0: edge 0(0)-1(1) one occurrence of (0,1); g1 same; g2: center label
	// 1 is vertex 0, leaves label 0: path (0,1) = leaf->center occurs 3×.
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 3 {
		t.Errorf("counts(0,1) = %v", counts)
	}
	if x.lookup([]graph.Label{42}) != nil {
		t.Error("unknown label should have no postings")
	}
}

func TestFilterPresenceAndFrequency(t *testing.T) {
	x := Build(smallDataset(), Options{})
	q := graph.MustNew("q", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	got := x.Filter(q)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Filter = %v, want [0 1]", got)
	}
	// two 0-leaves on a 1-center: needs (0,1) at least twice
	q2 := graph.MustNew("q2", []graph.Label{1, 0, 0}, [][2]int{{0, 1}, {0, 2}})
	got2 := x.Filter(q2)
	if len(got2) != 1 || got2[0] != 2 {
		t.Errorf("Filter = %v, want [2]", got2)
	}
	// edgeless query: all graphs
	q3 := graph.MustNew("q3", []graph.Label{0}, nil)
	if got3 := x.Filter(q3); len(got3) != 3 {
		t.Errorf("Filter = %v, want all", got3)
	}
	// unknown label
	q4 := graph.MustNew("q4", []graph.Label{9, 9}, [][2]int{{0, 1}})
	if got4 := x.Filter(q4); len(got4) != 0 {
		t.Errorf("Filter = %v, want empty", got4)
	}
}

func TestVerify(t *testing.T) {
	x := Build(smallDataset(), Options{})
	q := graph.MustNew("q", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	ok, err := x.Verify(context.Background(), q, 0)
	if err != nil || !ok {
		t.Errorf("Verify(g0) = %v, %v", ok, err)
	}
	ok, err = x.Verify(context.Background(), q, 2)
	if err != nil || ok {
		t.Errorf("Verify(g2) = %v, %v; q not contained", ok, err)
	}
}

func TestFilterNoFalseNegatives(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds := randomDataset(r, 5, 12, 3)
		x := Build(ds, Options{MaxPathLen: 4})
		src := r.Intn(len(ds))
		q := extractQuery(r, ds[src], 2+r.Intn(5))
		for _, id := range x.Filter(q) {
			if id == src {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAnswerMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds := randomDataset(r, 5, 10, 3)
		x := Build(ds, Options{MaxPathLen: 3})
		q := extractQuery(r, ds[r.Intn(len(ds))], 2+r.Intn(3))
		got, err := ftv.Answer(context.Background(), x, q)
		if err != nil {
			return false
		}
		var want []int
		for id, g := range ds {
			embs, err := vf2.Match(context.Background(), q, g, 1)
			if err != nil {
				return false
			}
			if len(embs) > 0 {
				want = append(want, id)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func randomDataset(r *rand.Rand, numGraphs, n, labels int) []*graph.Graph {
	ds := make([]*graph.Graph, numGraphs)
	for i := range ds {
		b := graph.NewBuilder("g")
		for v := 0; v < n; v++ {
			b.AddVertex(graph.Label(r.Intn(labels)))
		}
		for v := 1; v < n; v++ {
			if err := b.AddEdge(r.Intn(v), v); err != nil {
				panic(err)
			}
		}
		for e := 0; e < n/2; e++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !b.HasEdgePending(u, v) {
				if err := b.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
		ds[i] = b.MustBuild()
	}
	return ds
}

func extractQuery(r *rand.Rand, g *graph.Graph, wantEdges int) *graph.Graph {
	start := r.Intn(g.N())
	inQ := map[int32]bool{int32(start): true}
	type edge struct{ u, v int32 }
	var qEdges []edge
	has := func(a, b int32) bool {
		for _, e := range qEdges {
			if (e.u == a && e.v == b) || (e.u == b && e.v == a) {
				return true
			}
		}
		return false
	}
	for len(qEdges) < wantEdges {
		var frontier []edge
		for v := range inQ {
			for _, w := range g.Neighbors(int(v)) {
				if !has(v, w) {
					frontier = append(frontier, edge{v, w})
				}
			}
		}
		if len(frontier) == 0 {
			break
		}
		e := frontier[r.Intn(len(frontier))]
		qEdges = append(qEdges, e)
		inQ[e.u] = true
		inQ[e.v] = true
	}
	ids := make([]int32, 0, len(inQ))
	for v := range inQ {
		ids = append(ids, v)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	old2new := make(map[int32]int, len(ids))
	b := graph.NewBuilder("q")
	for i, v := range ids {
		old2new[v] = i
		b.AddVertex(g.Label(int(v)))
	}
	for _, e := range qEdges {
		if err := b.AddEdge(old2new[e.u], old2new[e.v]); err != nil {
			panic(err)
		}
	}
	return b.MustBuild()
}
