package ggsx

// Snapshot support: GGSX's half of the index.FeatureExporter/RegisterRestorer
// contract. Every node of the suffix trie that carries counts is itself an
// indexed feature (every prefix of an enumerated path is an enumerated
// path), and the build inserts each (feature, graph) pair exactly once — so
// exporting each counted node once and re-inserting the exact counts
// reconstructs the trie node-for-node.

import (
	"sort"
	"time"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
	"github.com/psi-graph/psi/internal/vf2"
)

func init() {
	index.RegisterRestorer(Kind, restore)
}

// ExportFeatures implements index.FeatureExporter: depth-first with children
// in ascending label order — the snapshot format's lexicographic canon.
func (x *Index) ExportFeatures(visit func(labels []graph.Label, postings []index.FeaturePosting) error) error {
	var labels []graph.Label
	var walk func(n *suffixNode) error
	walk = func(n *suffixNode) error {
		if len(n.counts) > 0 {
			ps := make([]index.FeaturePosting, 0, len(n.counts))
			for gid, c := range n.counts {
				ps = append(ps, index.FeaturePosting{GraphID: gid, Count: c})
			}
			index.SortPostings(ps)
			if err := visit(labels, ps); err != nil {
				return err
			}
		}
		kids := make([]graph.Label, 0, len(n.children))
		for l := range n.children {
			kids = append(kids, l)
		}
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for _, l := range kids {
			labels = append(labels, l)
			if err := walk(n.children[l]); err != nil {
				return err
			}
			labels = labels[:len(labels)-1]
		}
		return nil
	}
	return walk(x.root)
}

// restore rebuilds a GGSX index from exported features, plus fresh per-graph
// VF2 matchers; no path enumeration runs.
func restore(ds []*graph.Graph, maxPathLen int, opts index.Options, feats []index.ExportedFeature) (index.Index, error) {
	o := Options{MaxPathLen: maxPathLen, Pool: opts.Pool}.withDefaults()
	start := time.Now()
	x := &Index{ds: ds, opts: o, root: newSuffixNode(), verifier: make([]*vf2.Matcher, len(ds))}
	for id := range ds {
		x.verifier[id] = vf2.New(ds[id])
	}
	for _, f := range feats {
		for _, p := range f.Postings {
			x.insert(p.GraphID, f.Labels, p.Count)
		}
	}
	x.stats = index.Stats{
		Name:         x.Name(),
		Kind:         Kind,
		Graphs:       len(ds),
		MaxPathLen:   o.MaxPathLen,
		Features:     x.featureCount(),
		Nodes:        x.nodeCount(),
		BuildTime:    time.Since(start),
		BuildWorkers: index.PoolWorkers(opts.Pool),
	}
	return x, nil
}
