package server

import (
	"container/list"
	"sync"

	psi "github.com/psi-graph/psi"
)

// cachedAnswer is one remembered complete query answer. Entries are
// immutable after insertion: hits hand out the same slices, which no reader
// mutates (the HTTP layer only serializes them).
type cachedAnswer struct {
	kind       string
	winner     string
	found      int
	embeddings []psi.Embedding // NFV answers
	graphIDs   []int           // FTV answers, ascending
	ftv        bool            // which of the two answer shapes is populated
}

// resultCache is the serving layer's shared LRU result cache. It sits in
// front of Engine.Execute, keyed by the canonical query bytes plus the
// request's result limit, and remembers only complete, unkilled answers —
// so a hit is always exactly what a fresh execution of the same request
// would have been allowed to return. Safe for concurrent use.
type resultCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses int64
}

// cacheEntry is the list payload: key + answer, so eviction can unmap.
type cacheEntry struct {
	key string
	ans *cachedAnswer
}

// newResultCache returns a cache bounded to max entries (max > 0).
func newResultCache(max int) *resultCache {
	return &resultCache{
		max:     max,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached answer for key, refreshing its recency.
func (c *resultCache) get(key string) (*cachedAnswer, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).ans, true
}

// put remembers ans under key, evicting the least-recently-used entry when
// the cache is full. A concurrent duplicate insert keeps a single copy.
func (c *resultCache) put(key string, ans *cachedAnswer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).ans = ans
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, ans: ans})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// cacheCounters is a snapshot of the cache's effectiveness counters.
type cacheCounters struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int   `json:"entries"`
	Max     int   `json:"max"`
}

// counters returns a point-in-time snapshot.
func (c *resultCache) counters() cacheCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheCounters{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len(), Max: c.max}
}
