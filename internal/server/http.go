package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	psi "github.com/psi-graph/psi"
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
)

// queryRequest is the parsed request envelope around the query graph.
type queryRequest struct {
	limit   int  // embedding limit (NFV); <= 0 means decision
	stream  bool // NDJSON streaming response
	cache   bool // consult/fill the result cache
	timeout time.Duration
}

// QueryResponse is the non-streamed /query response schema. The streamed
// variant sends `{"embedding":[...]}` / `{"graph_id":N}` lines followed by
// one StreamSummary line.
type QueryResponse struct {
	Query      string          `json:"query"`
	Kind       string          `json:"kind"`
	Winner     string          `json:"winner,omitempty"`
	Found      int             `json:"found"`
	Embeddings []psi.Embedding `json:"embeddings,omitempty"`
	GraphIDs   []int           `json:"graph_ids,omitempty"`
	ElapsedUS  int64           `json:"elapsed_us"`
	Killed     bool            `json:"killed,omitempty"`
	FellBack   bool            `json:"fell_back,omitempty"`
	Cached     bool            `json:"cached,omitempty"`
	Coalesced  bool            `json:"coalesced,omitempty"`
}

// StreamSummary is the final NDJSON line of a streamed /query response.
// Exactly one of Done/Error is set: a summary with Error reports a query
// that failed after the preceding lines were already on the wire.
type StreamSummary struct {
	Done      bool   `json:"done,omitempty"`
	Found     int    `json:"found"`
	Winner    string `json:"winner,omitempty"`
	ElapsedUS int64  `json:"elapsed_us"`
	Killed    bool   `json:"killed,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	Error     string `json:"error,omitempty"`
}

// errorResponse is the JSON error envelope for rejected requests.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeJSONError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// maxLimit is the largest ?limit a request may carry: ten times the
// server's configured default (or the 1000 fallback). Anything above is a
// client error — a typo or an abuse probe, not a workload — and is rejected
// up front rather than silently clamped or allowed to size allocations.
func (s *Server) maxLimit() int {
	n := s.opts.DefaultLimit
	if n < 1000 {
		n = 1000
	}
	return 10 * n
}

// maxTimeout is the largest ?timeout_ms a request may carry: ten times the
// server's request timeout when one is configured (the client may shorten a
// deadline, so there is no reason to ask for multiples of it), otherwise an
// absolute 24h ceiling that keeps the deadline arithmetic far from
// time.Duration overflow.
func (s *Server) maxTimeout() time.Duration {
	if s.opts.RequestTimeout > 0 {
		return 10 * s.opts.RequestTimeout
	}
	return 24 * time.Hour
}

// parseQueryRequest decodes the envelope and the query graph (request body,
// module text format, exactly one graph). Out-of-range envelope values —
// negative, or absurdly past the server's configured caps — are 400s, never
// silently clamped: an int that big means the client computed it wrong, and
// honoring part of it would turn the mistake into undefined behavior
// (a limit-sized allocation, an overflowed deadline).
func (s *Server) parseQueryRequest(r *http.Request) (queryRequest, *psi.Graph, int, error) {
	req := queryRequest{limit: s.opts.DefaultLimit, cache: true}
	qp := r.URL.Query()
	if v := qp.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return req, nil, http.StatusBadRequest, fmt.Errorf("bad limit %q (want an integer in [0,%d]; 0 means decision)", v, s.maxLimit())
		}
		if n > s.maxLimit() {
			return req, nil, http.StatusBadRequest, fmt.Errorf("limit %d exceeds the maximum %d", n, s.maxLimit())
		}
		req.limit = n
	}
	req.stream = isTrue(qp.Get("stream"))
	if v := qp.Get("cache"); v != "" {
		req.cache = isTrue(v)
	}
	if v := qp.Get("timeout_ms"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			return req, nil, http.StatusBadRequest, fmt.Errorf("bad timeout_ms %q (want an integer in [0,%d])", v, s.maxTimeout().Milliseconds())
		}
		if int64(ms) > s.maxTimeout().Milliseconds() {
			return req, nil, http.StatusBadRequest, fmt.Errorf("timeout_ms %d exceeds the maximum %d", ms, s.maxTimeout().Milliseconds())
		}
		req.timeout = time.Duration(ms) * time.Millisecond
	}
	body := http.MaxBytesReader(nil, r.Body, s.opts.MaxBodyBytes)
	graphs, err := graph.ReadDataset(body)
	if err != nil {
		return req, nil, http.StatusBadRequest, fmt.Errorf("parsing query graph: %w", err)
	}
	if len(graphs) != 1 {
		return req, nil, http.StatusBadRequest, fmt.Errorf("want exactly 1 query graph in the body, got %d", len(graphs))
	}
	return req, graphs[0], 0, nil
}

func isTrue(v string) bool {
	switch v {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

// cacheKey derives the shared-cache key: the canonical query bytes plus the
// parameters that change the answer. FTV answers ignore the limit, so all
// limits share one entry; NFV limits <= 0 all mean "decision, first match"
// and collapse to one sentinel so equivalent requests hit each other.
//
// The key is prefixed with the dataset epoch (0 on immutable engines), so
// a mutation implicitly invalidates every remembered answer and concurrent
// requests only coalesce within one epoch: an answer computed before an
// AddGraph can never be replayed after it. A mutation landing between key
// derivation and execution can at worst file a fresher answer under the
// older epoch's key — an entry no future request looks up, never a stale
// answer under a fresh key.
func (s *Server) cacheKey(eng *psi.Engine, q *psi.Graph, limit int) string {
	if eng.Dataset() != nil {
		limit = 0
	} else if limit <= 0 {
		limit = -1
	}
	return fmt.Sprintf("e%d|l%d|%s", eng.Epoch(), limit, psi.CanonicalQueryKey(q))
}

// handleQuery is the /query endpoint: admission, parse, cache lookup,
// in-flight coalescing, then a collected JSON answer or an NDJSON stream.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	release, status := s.admit()
	if status != 0 {
		s.writeOverloaded(w, status)
		return
	}
	defer release()

	eng := s.engine()
	if eng == nil {
		writeJSONError(w, http.StatusServiceUnavailable, "engine is building")
		return
	}
	req, q, errStatus, err := s.parseQueryRequest(r)
	if err != nil {
		writeJSONError(w, errStatus, err.Error())
		return
	}
	if s.admittedHook != nil {
		s.admittedHook(r.Context())
	}
	ctx, cancel := s.requestContext(r, s.effectiveTimeout(req.timeout))
	defer cancel()

	// The cache and the flight group share one key: two requests coalesce
	// exactly when they would hit the same cache entry. ?cache=0 opts out
	// of both — it demands a fresh execution.
	key := ""
	coalesce := !s.opts.NoCoalesce && req.cache
	if req.cache && (s.cache != nil || coalesce) {
		key = s.cacheKey(eng, q, req.limit)
	}
	if s.cache != nil && key != "" {
		if ans, ok := s.cache.get(key); ok {
			s.replayAnswer(ctx, w, req, q, ans, replayCached)
			return
		}
	}
	if coalesce {
		fl, leader := s.flights.join(key)
		if !leader {
			select {
			case <-fl.done:
				if fl.ans != nil {
					s.coalesced.Add(1)
					s.replayAnswer(ctx, w, req, q, fl.ans, replayCoalesced)
					return
				}
				// The leader had nothing shareable (error, killed, or its
				// client vanished mid-stream): run the query ourselves.
				s.coalescedFallbacks.Add(1)
			case <-ctx.Done():
				writeQueryError(w, ctx.Err())
				return
			}
		} else {
			// Leader: the deferred finish releases followers even if the
			// execution path panics — they fall back rather than hang.
			var ans *cachedAnswer
			defer func() { s.flights.finish(key, fl, ans) }()
			if s.leaderHook != nil {
				s.leaderHook(fl)
			}
			ans = s.runQuery(ctx, w, eng, req, q, key)
			return
		}
	}
	s.runQuery(ctx, w, eng, req, q, key)
}

// runQuery executes the query in the requested response mode and returns
// the answer when it is complete and shareable (unkilled, no error, the
// client received every line), nil otherwise.
func (s *Server) runQuery(ctx context.Context, w http.ResponseWriter, eng *psi.Engine, req queryRequest, q *psi.Graph, key string) *cachedAnswer {
	if req.stream {
		return s.streamQuery(ctx, w, eng, req, q, key)
	}
	return s.collectQuery(ctx, w, eng, req, q, key)
}

// collectQuery runs the plan to completion and answers with one JSON
// object, returning the answer when it is complete and shareable.
func (s *Server) collectQuery(ctx context.Context, w http.ResponseWriter, eng *psi.Engine, req queryRequest, q *psi.Graph, key string) *cachedAnswer {
	res, err := eng.Query(ctx, q, req.limit)
	if err != nil {
		writeQueryError(w, err)
		return nil
	}
	var ans *cachedAnswer
	if !res.Killed {
		ans = answerFromResult(res)
		if s.cache != nil && key != "" {
			s.cache.put(key, ans)
		}
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Query:      q.Name(),
		Kind:       string(res.Kind),
		Winner:     res.Winner,
		Found:      res.Found,
		Embeddings: res.Embeddings,
		GraphIDs:   res.GraphIDs,
		ElapsedUS:  res.Elapsed.Microseconds(),
		Killed:     res.Killed,
		FellBack:   res.FellBack,
	})
	return ans
}

// writeQueryError maps an execution error onto an HTTP status: deadline
// overruns on engines without a budget become 504, everything else 500.
// (With a budget configured, deadline hits are killed results, not errors.)
func writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusGatewayTimeout
	}
	writeJSONError(w, status, err.Error())
}

// writeUnblockGrace is how long after its context is cancelled a streamed
// response may keep writing. Long enough for a live, reading client to
// receive its terminal summary/error line (the zero-dropped-responses
// drain contract); short enough that a client that stopped reading cannot
// pin an admission slot or stall Shutdown beyond it.
const writeUnblockGrace = time.Second

// lineWriter writes NDJSON lines, flushing each one so streamed results
// reach the client as the race emits them. A write error (client gone)
// latches: subsequent writes are dropped and failed() reports it.
//
// Writes can block indefinitely on a client that stops reading — w.Write
// does not observe context cancellation — which would pin the admission
// slot and stall a drain. newLineWriter therefore arms a near-term write
// deadline the moment ctx is cancelled (client disconnect, per-request
// timeout, or Shutdown cutting stragglers): a blocked write errors within
// writeUnblockGrace and the handler unwinds, while a live client still
// receives the terminal line its drained query owes it. Callers must
// release() when done writing.
type lineWriter struct {
	w      http.ResponseWriter
	rc     *http.ResponseController
	stop   func() bool
	broken bool
}

func newLineWriter(ctx context.Context, w http.ResponseWriter) *lineWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	lw := &lineWriter{w: w, rc: rc}
	lw.stop = context.AfterFunc(ctx, func() {
		_ = rc.SetWriteDeadline(time.Now().Add(writeUnblockGrace))
	})
	return lw
}

// release detaches the cancellation hook once the response is complete; if
// the hook already fired (the request context ended before the response
// did), the armed deadline is cleared so a keep-alive connection is not
// poisoned for its next request.
func (lw *lineWriter) release() {
	if !lw.stop() {
		_ = lw.rc.SetWriteDeadline(time.Time{})
	}
}

// writeLine sends one line (v marshals to a JSON object) and reports
// whether the client is still there.
func (lw *lineWriter) writeLine(v any) bool {
	if lw.broken {
		return false
	}
	b, err := json.Marshal(v)
	if err != nil {
		lw.broken = true
		return false
	}
	b = append(b, '\n')
	if _, err := lw.w.Write(b); err != nil {
		lw.broken = true
		return false
	}
	_ = lw.rc.Flush()
	return true
}

func (lw *lineWriter) failed() bool { return lw.broken }

// embeddingLine / graphIDLine are the two streamed result-line shapes.
type embeddingLine struct {
	Embedding psi.Embedding `json:"embedding"`
}
type graphIDLine struct {
	GraphID int `json:"graph_id"`
}

// streamQuery answers with NDJSON: result lines as the engine emits them,
// then a summary line. Complete unkilled answers fill the result cache —
// and are returned for the flight group — so repeat and concurrent
// duplicates replay from memory in either response mode. A stream whose
// client stopped reading is incomplete by definition and shared with
// no one.
func (s *Server) streamQuery(ctx context.Context, w http.ResponseWriter, eng *psi.Engine, req queryRequest, q *psi.Graph, key string) *cachedAnswer {
	lw := newLineWriter(ctx, w)
	defer lw.release()
	var (
		res *psi.QueryResult
		err error
		ans *cachedAnswer
	)
	if eng.Dataset() != nil {
		a := &cachedAnswer{ftv: true}
		res, err = eng.AnswerStreamResult(ctx, q, func(id int) bool {
			a.graphIDs = append(a.graphIDs, id)
			return lw.writeLine(graphIDLine{GraphID: id})
		})
		ans = a
	} else {
		a := &cachedAnswer{}
		res, err = eng.QueryStream(ctx, q, req.limit, psi.SinkFunc(func(e psi.Embedding) bool {
			a.embeddings = append(a.embeddings, e)
			return lw.writeLine(embeddingLine{Embedding: e})
		}))
		ans = a
	}
	if err != nil {
		lw.writeLine(StreamSummary{Error: err.Error()})
		return nil
	}
	ans.kind = string(res.Kind)
	ans.winner = res.Winner
	ans.found = res.Found
	shareable := !res.Killed && !lw.failed()
	if shareable && s.cache != nil && key != "" {
		s.cache.put(key, ans)
	}
	lw.writeLine(StreamSummary{
		Done:      true,
		Found:     res.Found,
		Winner:    res.Winner,
		ElapsedUS: res.Elapsed.Microseconds(),
		Killed:    res.Killed,
	})
	if !shareable {
		return nil
	}
	return ans
}

// replayAnswer marks where a replayed answer came from: the result cache
// or another request's in-flight execution.
type replaySource int

const (
	replayCached replaySource = iota
	replayCoalesced
)

// replayAnswer replays a remembered answer in the requested response mode,
// marked with its provenance.
func (s *Server) replayAnswer(ctx context.Context, w http.ResponseWriter, req queryRequest, q *psi.Graph, ans *cachedAnswer, src replaySource) {
	cached, coalesced := src == replayCached, src == replayCoalesced
	if req.stream {
		lw := newLineWriter(ctx, w)
		defer lw.release()
		if ans.ftv {
			for _, id := range ans.graphIDs {
				if !lw.writeLine(graphIDLine{GraphID: id}) {
					return
				}
			}
		} else {
			for _, e := range ans.embeddings {
				if !lw.writeLine(embeddingLine{Embedding: e}) {
					return
				}
			}
		}
		lw.writeLine(StreamSummary{Done: true, Found: ans.found, Winner: ans.winner, Cached: cached, Coalesced: coalesced})
		return
	}
	resp := QueryResponse{
		Query:     q.Name(),
		Kind:      ans.kind,
		Winner:    ans.winner,
		Found:     ans.found,
		Cached:    cached,
		Coalesced: coalesced,
	}
	if ans.ftv {
		resp.GraphIDs = ans.graphIDs
	} else {
		resp.Embeddings = ans.embeddings
	}
	writeJSON(w, http.StatusOK, resp)
}

// answerFromResult converts a collected execution into a cache entry.
func answerFromResult(res *psi.QueryResult) *cachedAnswer {
	a := &cachedAnswer{kind: string(res.Kind), winner: res.Winner, found: res.Found}
	if res.Kind == psi.PlanFTV {
		a.ftv = true
		a.graphIDs = res.GraphIDs
	} else {
		a.embeddings = res.Embeddings
	}
	return a
}

// StatsResponse is the /stats JSON schema: one consistent snapshot of the
// serving layer and the engine beneath it. Ready is false while the engine
// is still building, in which case only the serving-layer fields are set.
type StatsResponse struct {
	UptimeSeconds float64             `json:"uptime_seconds"`
	Ready         bool                `json:"ready"`
	Mode          string              `json:"mode,omitempty"`
	IndexPolicy   string              `json:"index_policy,omitempty"`
	DatasetGraphs int                 `json:"dataset_graphs,omitempty"`
	Shards        int                 `json:"shards,omitempty"`
	ShardBalance  []int64             `json:"shard_balance,omitempty"`
	Mutable       bool                `json:"mutable,omitempty"`
	Epoch         uint64              `json:"epoch,omitempty"`
	Draining      bool                `json:"draining"`
	InFlight      int                 `json:"in_flight"`
	Capacity      int                 `json:"capacity"`
	Admitted      int64               `json:"admitted"`
	Rejected      int64               `json:"rejected"`
	Unavailable   int64               `json:"unavailable"`
	Coalesced     int64               `json:"coalesced"`
	CoalescedFB   int64               `json:"coalesced_fallbacks"`
	Engine        psi.EngineCounters  `json:"engine"`
	Wins          map[string]int64    `json:"wins,omitempty"`
	Indexes       []psi.IndexStats    `json:"indexes,omitempty"`
	EngineCache   *ftv.CacheStats     `json:"engine_cache,omitempty"`
	ResultCache   *cacheCounters      `json:"result_cache,omitempty"`
	Policy        *psi.PolicySnapshot `json:"policy,omitempty"`
}

// Stats assembles the snapshot served at /stats.
func (s *Server) Stats() StatsResponse {
	resp := StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      s.Draining(),
		InFlight:      s.lim.InFlight(),
		Capacity:      s.lim.Cap(),
		Admitted:      s.admitted.Load(),
		Rejected:      s.rejected.Load(),
		Unavailable:   s.unavailable.Load(),
		Coalesced:     s.coalesced.Load(),
		CoalescedFB:   s.coalescedFallbacks.Load(),
	}
	if s.cache != nil {
		cc := s.cache.counters()
		resp.ResultCache = &cc
	}
	eng := s.engine()
	if eng == nil {
		return resp
	}
	resp.Ready = true
	resp.Mode = string(eng.Mode())
	resp.IndexPolicy = eng.IndexPolicy()
	resp.DatasetGraphs = len(eng.Dataset())
	resp.Shards = eng.Shards()
	resp.ShardBalance = eng.ShardBalance()
	resp.Mutable = eng.Mutable()
	resp.Epoch = eng.Epoch()
	resp.Engine = eng.Counters()
	resp.Wins = eng.WinCounts()
	resp.Indexes = eng.IndexStats()
	if cs, ok := eng.CacheStats(); ok {
		resp.EngineCache = &cs
	}
	if snap, ok := eng.PolicyStats(); ok {
		resp.Policy = &snap
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics serves the same counters in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(name string, v any) {
		fmt.Fprintf(w, "%s %v\n", name, v)
	}
	p("psi_server_uptime_seconds", st.UptimeSeconds)
	p("psi_server_in_flight", st.InFlight)
	p("psi_server_capacity", st.Capacity)
	p("psi_server_admitted_total", st.Admitted)
	p("psi_server_rejected_total", st.Rejected)
	p("psi_server_unavailable_total", st.Unavailable)
	p("psi_server_coalesced_total", st.Coalesced)
	p("psi_server_coalesced_fallbacks_total", st.CoalescedFB)
	draining := 0
	if st.Draining {
		draining = 1
	}
	p("psi_server_draining", draining)
	ready := 0
	if st.Ready {
		ready = 1
	}
	p("psi_server_ready", ready)
	if st.ResultCache != nil {
		p("psi_server_cache_hits_total", st.ResultCache.Hits)
		p("psi_server_cache_misses_total", st.ResultCache.Misses)
		p("psi_server_cache_entries", st.ResultCache.Entries)
	}
	if !st.Ready {
		return
	}
	p("psi_engine_dataset_epoch", st.Epoch)
	p("psi_engine_graphs_added_total", st.Engine.GraphsAdded)
	p("psi_engine_graphs_removed_total", st.Engine.GraphsRemoved)
	p("psi_engine_graphs_replaced_total", st.Engine.GraphsReplaced)
	p("psi_engine_compactions_total", st.Engine.Compactions)
	p("psi_engine_queries_total", st.Engine.Queries)
	p("psi_engine_streamed_total", st.Engine.Streamed)
	p("psi_engine_killed_total", st.Engine.Killed)
	p("psi_engine_errors_total", st.Engine.Errors)
	p("psi_engine_race_attempts_total", st.Engine.RaceAttempts)
	p("psi_engine_predicted_solo_total", st.Engine.PredictedSolo)
	p("psi_engine_fallbacks_total", st.Engine.Fallbacks)
	p("psi_engine_index_races_total", st.Engine.IndexRaces)
	p("psi_engine_index_attempts_total", st.Engine.IndexAttempts)
	p("psi_engine_sharded_queries_total", st.Engine.ShardedQueries)
	p("psi_engine_sharded_killed_total", st.Engine.ShardedKilled)
	p("psi_engine_policy_solo_total", st.Engine.PolicySolo)
	p("psi_engine_policy_races_total", st.Engine.PolicyRaces)
	p("psi_engine_policy_escalations_total", st.Engine.PolicyEscalations)
	if st.Policy != nil {
		p("psi_engine_policy_classes", st.Policy.Classes)
		p("psi_engine_policy_classes_escalated", st.Policy.Escalated)
		for _, arm := range st.Policy.Arms {
			fmt.Fprintf(w, "psi_engine_policy_arm_race_wins_total{arm=%q} %d\n", arm.Name, arm.RaceWins)
			fmt.Fprintf(w, "psi_engine_policy_arm_solo_runs_total{arm=%q} %d\n", arm.Name, arm.SoloRuns)
			fmt.Fprintf(w, "psi_engine_policy_arm_kills_total{arm=%q} %d\n", arm.Name, arm.Kills)
			fmt.Fprintf(w, "psi_engine_policy_arm_mean_latency_us{arm=%q} %d\n", arm.Name, arm.MeanLatencyUS)
		}
	}
	p("psi_server_shards", st.Shards)
	for shard, n := range st.ShardBalance {
		fmt.Fprintf(w, "psi_engine_shard_answers_total{shard=\"%d\"} %d\n", shard, n)
	}
	winners := make([]string, 0, len(st.Wins))
	for name := range st.Wins {
		winners = append(winners, name)
	}
	sort.Strings(winners)
	for _, name := range winners {
		fmt.Fprintf(w, "psi_engine_wins_total{winner=%q} %d\n", name, st.Wins[name])
	}
	if st.EngineCache != nil {
		p("psi_engine_cache_exact_hits_total", st.EngineCache.ExactHits)
		p("psi_engine_cache_sub_prunes_total", st.EngineCache.SubPrunes)
		p("psi_engine_cache_super_accepts_total", st.EngineCache.SuperAccepts)
		p("psi_engine_cache_verifications_total", st.EngineCache.Verifications)
		p("psi_engine_cache_misses_total", st.EngineCache.Misses)
	}
}

// healthResponse is the /healthz JSON schema. Status is "ok", "building"
// (the engine is still constructing its indexes) or "draining"; Epoch is
// the current dataset epoch once ready (0 on immutable engines).
type healthResponse struct {
	Status string `json:"status"`
	Epoch  uint64 `json:"epoch,omitempty"`
}

// handleHealthz reports readiness: 200 with status "ok" while serving, 503
// with "building" until SetEngine installs the engine, 503 with "draining"
// once Shutdown has begun.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, healthResponse{Status: "draining"})
		return
	}
	eng := s.engine()
	if eng == nil {
		writeJSON(w, http.StatusServiceUnavailable, healthResponse{Status: "building"})
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok", Epoch: eng.Epoch()})
}
