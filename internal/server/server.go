// Package server is the concurrent query-serving subsystem over psi.Engine:
// the layer that turns the single-process Ψ-framework into something that
// can answer interactive subgraph queries from many clients at once without
// falling over under load.
//
// A Server owns one long-lived Engine and adds exactly the concerns the
// Engine itself stays agnostic of:
//
//   - Admission control. Every query claims a slot from a bounded
//     exec.Limiter before any work starts; when all slots are taken the
//     request is rejected immediately (HTTP 429) instead of queueing —
//     overload degrades into fast refusals, never into goroutine-per-request
//     pileups. The pool below stays the only place where CPU work queues.
//
//   - Per-request deadlines. A request's context (client disconnect, the
//     server's request timeout, an explicit ?timeout_ms) flows into the
//     Engine's execution, where the per-query budget maps a deadline hit
//     onto the paper's kill semantics: the response reports killed=true with
//     whatever the stream already surfaced, rather than an opaque error.
//
//   - Streaming responses. ?stream=1 answers are NDJSON: one line per
//     embedding (NFV) or containing graph ID (FTV), flushed as the race
//     emits them, then one summary line — so the first-to-emit latency the
//     race wins actually reaches the wire instead of being buffered behind
//     full enumeration.
//
//   - A shared result cache. Complete, unkilled answers are remembered in
//     an LRU keyed by the canonical query bytes (psi.CanonicalQueryKey) plus
//     the result limit; repeat queries — the common shape of dataset
//     workloads — are served from memory and marked cached:true. Partial
//     answers (client stopped reading, kill cap hit) are never cached.
//
//   - In-flight coalescing. Concurrent identical queries — the cache-miss
//     stampede the LRU cannot absorb — share one engine execution: the
//     first request in becomes the leader, the rest park until it finishes
//     and replay its answer marked coalesced:true. Only complete, unkilled
//     answers are shared; when the leader fails, is killed, or loses its
//     client mid-stream, each follower falls back to its own execution. A
//     follower that disconnects while parked never cancels the leader.
//
//   - Observability. /stats is a JSON snapshot of engine counters, race win
//     tallies, index build provenance and cache effectiveness; /metrics is
//     the same in Prometheus text format. Both carry the dataset epoch and
//     the mutation counters on mutable engines.
//
//   - Online mutation. On a mutable dataset engine (EngineOptions.Mutable),
//     POST /graphs ingests graphs, DELETE /graphs/{handle} removes one and
//     PUT /graphs/{handle} replaces one in place; every response reports
//     the dataset epoch the mutation produced. The result cache and the
//     flight group are keyed by epoch, so a mutation implicitly invalidates
//     every remembered answer and coalescing never crosses a mutation.
//
//   - Readiness. A server constructed with NewBuilding (before its engine
//     finishes building indexes) answers /healthz with status "building"
//     (503) and refuses queries until SetEngine flips it to "ok"; /healthz
//     also reports the dataset epoch once ready.
//
//   - Graceful drain. Shutdown stops admission (new queries get 503), waits
//     for in-flight queries, and past the caller's deadline cancels
//     stragglers through their contexts — every admitted request still gets
//     its summary line, so a drain drops zero in-flight responses.
package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	psi "github.com/psi-graph/psi"
	"github.com/psi-graph/psi/internal/exec"
)

// Options configures a Server. The zero value serves with a 4×NumCPU
// admission limit, a 1000-embedding default result limit, no per-request
// timeout beyond the engine's own budget, and a 256-entry result cache.
type Options struct {
	// MaxInFlight bounds concurrently admitted queries; the excess is
	// rejected with HTTP 429. 0 selects 4 × NumCPU.
	MaxInFlight int
	// DefaultLimit is the embedding limit applied when a request does not
	// carry ?limit; 0 means 1000. Negative means decision (first match).
	DefaultLimit int
	// RequestTimeout caps each request's context. A client ?timeout_ms may
	// shorten it but never extend it. 0 leaves only the engine's budget.
	RequestTimeout time.Duration
	// CacheSize bounds the shared result cache: 0 means 256 entries,
	// negative disables caching entirely.
	CacheSize int
	// MaxBodyBytes bounds a request body (the query graph in the module's
	// text format); 0 means 8 MiB.
	MaxBodyBytes int64
	// NoCoalesce disables in-flight coalescing of concurrent identical
	// queries. Requests carrying ?cache=0 opt out of coalescing either
	// way: a caller that refuses a cached answer wants a fresh execution,
	// not someone else's.
	NoCoalesce bool
	// SnapshotPath, when set, arms POST /snapshot: each call persists the
	// engine's full state to this path (atomically, via the snapshot
	// package's temp-file-plus-rename). Empty disables the endpoint (409).
	SnapshotPath string
}

// Server serves queries over one long-lived Engine. Construct with New —
// or with NewBuilding plus a later SetEngine when the engine is still
// constructing its indexes, during which the server answers readiness
// probes with "building" and queries with 503. Server implements
// http.Handler. The Server does not own the Engine — closing the Engine
// remains the caller's job, after Shutdown returns.
type Server struct {
	// eng is nil while the engine is still building (NewBuilding before
	// SetEngine); handlers load it once per request and treat nil as "not
	// ready yet".
	eng     atomic.Pointer[psi.Engine]
	opts    Options
	lim     *exec.Limiter
	cache   *resultCache // nil: disabled
	flights *flightGroup
	mux     *http.ServeMux
	start   time.Time

	// base is the root of every request context; Shutdown cancels it to
	// cut stragglers loose after the drain deadline.
	base       context.Context
	cancelBase context.CancelFunc

	// mu orders admission against draining: once draining flips, no new
	// request can slip into the WaitGroup that Shutdown waits on.
	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	admitted    atomic.Int64
	rejected    atomic.Int64
	unavailable atomic.Int64

	// requestEWMA tracks a smoothed admitted-request duration in
	// nanoseconds: the observed time for an in-flight slot to drain, which
	// is what a 429's Retry-After should promise instead of a hardcoded
	// guess.
	requestEWMA atomic.Int64

	// coalesced counts requests answered from another request's in-flight
	// execution; coalescedFallbacks counts followers whose flight finished
	// with nothing shareable and who executed independently.
	coalesced          atomic.Int64
	coalescedFallbacks atomic.Int64

	// admittedHook, when non-nil, runs after a query request is admitted
	// and before it executes. Tests use it to hold admitted requests in
	// flight deterministically.
	admittedHook func(ctx context.Context)

	// leaderHook, when non-nil, runs after a request becomes a flight
	// leader and before it executes. Tests use it to hold the leader until
	// its followers have parked on the flight.
	leaderHook func(fl *flight)
}

// New returns a Server over eng. The engine must outlive the server.
func New(eng *psi.Engine, opts Options) *Server {
	s := NewBuilding(opts)
	s.SetEngine(eng)
	return s
}

// NewBuilding returns a Server with no engine yet: /healthz reports
// status "building" (503), queries and mutations are refused with 503, and
// /stats and /metrics serve the admission-layer counters only. Call
// SetEngine once the engine is ready to flip the server to "ok". This is
// how a front end serves readiness probes while a large index build runs.
func NewBuilding(opts Options) *Server {
	if opts.DefaultLimit == 0 {
		opts.DefaultLimit = 1000
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 8 << 20
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		lim:        exec.NewLimiter(opts.MaxInFlight),
		flights:    newFlightGroup(),
		base:       base,
		cancelBase: cancel,
		start:      time.Now(),
	}
	if opts.CacheSize >= 0 {
		n := opts.CacheSize
		if n == 0 {
			n = 256
		}
		s.cache = newResultCache(n)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /graphs", s.handleAddGraphs)
	s.mux.HandleFunc("DELETE /graphs/{handle}", s.handleRemoveGraph)
	s.mux.HandleFunc("PUT /graphs/{handle}", s.handleReplaceGraph)
	s.mux.HandleFunc("POST /snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	return s
}

// SetEngine installs the served engine, flipping readiness from "building"
// to "ok". The engine must outlive the server. Call at most once.
func (s *Server) SetEngine(eng *psi.Engine) { s.eng.Store(eng) }

// Engine returns the served engine, or nil while it is still building.
func (s *Server) Engine() *psi.Engine { return s.eng.Load() }

// engine is the handlers' load of the served engine; nil means building.
func (s *Server) engine() *psi.Engine { return s.eng.Load() }

// InFlight reports the number of currently admitted queries.
func (s *Server) InFlight() int { return s.lim.InFlight() }

// Capacity reports the admission limit.
func (s *Server) Capacity() int { return s.lim.Cap() }

// Draining reports whether Shutdown has stopped admission.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// admit claims an in-flight slot. It returns a release func on success, or
// an HTTP status (429 over the limit, 503 while draining) on rejection.
// Release is idempotent and must be called exactly once per admission.
func (s *Server) admit() (release func(), status int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.unavailable.Add(1)
		return nil, http.StatusServiceUnavailable
	}
	if !s.lim.TryAcquire() {
		s.rejected.Add(1)
		return nil, http.StatusTooManyRequests
	}
	s.inflight.Add(1)
	s.admitted.Add(1)
	start := time.Now()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.observeRequest(time.Since(start))
			s.lim.Release()
			s.inflight.Done()
		})
	}, 0
}

// maxRetryAfterSeconds caps the 429 Retry-After hint: past this, a client
// should be polling /healthz, not sleeping on our estimate.
const maxRetryAfterSeconds = 30

// observeRequest folds one admitted request's wall time into the drain-time
// estimate (EWMA, alpha 1/5), lock-free.
func (s *Server) observeRequest(d time.Duration) {
	for {
		old := s.requestEWMA.Load()
		nw := int64(d)
		if old != 0 {
			nw = old + (int64(d)-old)/5
		}
		if s.requestEWMA.CompareAndSwap(old, nw) {
			return
		}
	}
}

// retryAfterSeconds turns the observed drain time into the whole-second
// Retry-After a 429 carries: at capacity, a slot frees roughly one smoothed
// request duration from now. At least 1 (the header's useful floor, and the
// cold-start default before any request has completed), at most
// maxRetryAfterSeconds.
func (s *Server) retryAfterSeconds() int {
	secs := (s.requestEWMA.Load() + int64(time.Second) - 1) / int64(time.Second)
	if secs < 1 {
		return 1
	}
	if secs > maxRetryAfterSeconds {
		return maxRetryAfterSeconds
	}
	return int(secs)
}

// writeOverloaded writes the shared admission-rejection response for both
// query and mutation handlers: 429 with a derived Retry-After at capacity,
// 503 while draining.
func (s *Server) writeOverloaded(w http.ResponseWriter, status int) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeJSONError(w, status, fmt.Sprintf("server at capacity (%d in flight)", s.lim.Cap()))
		return
	}
	writeJSONError(w, status, "server is draining")
}

// Shutdown drains the server: admission stops immediately (new queries get
// 503), in-flight queries run to completion, and once ctx expires the
// stragglers are cancelled through their request contexts — which every
// execution path honors, so they finish promptly with killed/error
// summaries rather than being abandoned. Shutdown returns once every
// admitted request has released its slot; the error is ctx's when
// stragglers had to be cancelled, nil for a clean drain. Safe to call more
// than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelBase()
		<-done
		return ctx.Err()
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// requestContext derives a query's execution context: the client's request
// context, cancelled additionally by Shutdown's straggler cut and by the
// effective per-request timeout.
func (s *Server) requestContext(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(r.Context())
	stop := context.AfterFunc(s.base, cancel)
	if timeout > 0 {
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, timeout)
		inner := cancel
		cancel = func() { cancelT(); inner() }
	}
	final := cancel
	return ctx, func() { stop(); final() }
}

// effectiveTimeout folds the server's request timeout with the client's
// requested one: the client may shorten, never extend.
func (s *Server) effectiveTimeout(requested time.Duration) time.Duration {
	max := s.opts.RequestTimeout
	if requested <= 0 {
		return max
	}
	if max > 0 && requested > max {
		return max
	}
	return requested
}
