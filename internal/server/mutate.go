package server

// Online-mutation endpoints over a mutable dataset engine: POST /graphs
// ingests graphs, DELETE /graphs/{handle} removes one, PUT /graphs/{handle}
// replaces one in place. Every mutation response carries the dataset epoch
// it produced, so a client can correlate its write with the epoch reported
// by subsequent query responses, /stats and /healthz.
//
// Mutations go through the same admission gate as queries: they claim an
// in-flight slot (429 at capacity, 503 while draining) and are tracked by
// the drain WaitGroup, so Shutdown never abandons a half-applied ingest.
// The engine itself serializes mutations; concurrent queries keep answering
// on the epoch snapshot they started on.

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	psi "github.com/psi-graph/psi"
	"github.com/psi-graph/psi/internal/graph"
)

// IngestResponse is the POST /graphs response: one handle per graph in the
// request body, in body order, plus the epoch after the last insert.
type IngestResponse struct {
	Handles []psi.GraphHandle `json:"handles"`
	Epoch   uint64            `json:"epoch"`
}

// MutateResponse is the DELETE/PUT /graphs/{handle} response.
type MutateResponse struct {
	Handle    psi.GraphHandle `json:"handle"`
	Compacted bool            `json:"compacted,omitempty"`
	Epoch     uint64          `json:"epoch"`
}

// admitMutation runs the shared admission/readiness/mutability preamble.
// On success the engine and a release func are returned; otherwise the
// response has been written and eng is nil.
func (s *Server) admitMutation(w http.ResponseWriter) (eng *psi.Engine, release func()) {
	release, status := s.admit()
	if status != 0 {
		s.writeOverloaded(w, status)
		return nil, nil
	}
	eng = s.engine()
	if eng == nil {
		release()
		writeJSONError(w, http.StatusServiceUnavailable, "engine is building")
		return nil, nil
	}
	if !eng.Mutable() {
		release()
		writeJSONError(w, http.StatusConflict, "engine is not mutable (start with -mutable)")
		return nil, nil
	}
	return eng, release
}

// handleAddGraphs is POST /graphs: the body holds one or more graphs in the
// module's text format; each is ingested in order and assigned a handle.
func (s *Server) handleAddGraphs(w http.ResponseWriter, r *http.Request) {
	eng, release := s.admitMutation(w)
	if eng == nil {
		return
	}
	defer release()
	body := http.MaxBytesReader(nil, r.Body, s.opts.MaxBodyBytes)
	graphs, err := graph.ReadDataset(body)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("parsing graphs: %v", err))
		return
	}
	if len(graphs) == 0 {
		writeJSONError(w, http.StatusBadRequest, "no graphs in the request body")
		return
	}
	ctx, cancel := s.requestContext(r, s.opts.RequestTimeout)
	defer cancel()
	handles := make([]psi.GraphHandle, 0, len(graphs))
	for i, g := range graphs {
		h, err := eng.AddGraph(ctx, g)
		if err != nil {
			writeJSONError(w, http.StatusInternalServerError,
				fmt.Sprintf("ingesting graph %d/%d (%d added): %v", i+1, len(graphs), len(handles), err))
			return
		}
		handles = append(handles, h)
	}
	writeJSON(w, http.StatusOK, IngestResponse{Handles: handles, Epoch: eng.Epoch()})
}

// handleRemoveGraph is DELETE /graphs/{handle}: tombstones the graph, which
// may trigger a shard-local compaction (reported in the response).
func (s *Server) handleRemoveGraph(w http.ResponseWriter, r *http.Request) {
	eng, release := s.admitMutation(w)
	if eng == nil {
		return
	}
	defer release()
	h, ok := parseHandle(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestContext(r, s.opts.RequestTimeout)
	defer cancel()
	compacted, err := eng.RemoveGraph(ctx, h)
	if err != nil {
		writeMutationError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{Handle: h, Compacted: compacted, Epoch: eng.Epoch()})
}

// handleReplaceGraph is PUT /graphs/{handle}: the body holds exactly one
// graph that replaces the addressed one in place — same handle, same shard.
func (s *Server) handleReplaceGraph(w http.ResponseWriter, r *http.Request) {
	eng, release := s.admitMutation(w)
	if eng == nil {
		return
	}
	defer release()
	h, ok := parseHandle(w, r)
	if !ok {
		return
	}
	body := http.MaxBytesReader(nil, r.Body, s.opts.MaxBodyBytes)
	graphs, err := graph.ReadDataset(body)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("parsing graph: %v", err))
		return
	}
	if len(graphs) != 1 {
		writeJSONError(w, http.StatusBadRequest,
			fmt.Sprintf("want exactly 1 replacement graph in the body, got %d", len(graphs)))
		return
	}
	ctx, cancel := s.requestContext(r, s.opts.RequestTimeout)
	defer cancel()
	if err := eng.ReplaceGraph(ctx, h, graphs[0]); err != nil {
		writeMutationError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MutateResponse{Handle: h, Epoch: eng.Epoch()})
}

// parseHandle decodes the {handle} path segment, writing the 400 itself on
// a malformed one.
func parseHandle(w http.ResponseWriter, r *http.Request) (psi.GraphHandle, bool) {
	v := r.PathValue("handle")
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("bad graph handle %q", v))
		return 0, false
	}
	return psi.GraphHandle(n), true
}

// writeMutationError maps an engine mutation error onto an HTTP status:
// a handle the engine never issued (or already removed) is the client's
// 404; anything else is a server-side 500.
func writeMutationError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	if errors.Is(err, psi.ErrUnknownGraph) {
		status = http.StatusNotFound
	}
	writeJSONError(w, status, err.Error())
}
