package server

// Edge-case tests for the request-envelope validation, the derived
// Retry-After hint, and the POST /snapshot endpoint.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	psi "github.com/psi-graph/psi"
)

// TestQueryParamValidation table-tests the ?limit / ?timeout_ms edges: a
// negative or absurd value is a 400 up front, never a silent clamp.
func TestQueryParamValidation(t *testing.T) {
	eng, q := datasetFixture(t)
	srv := New(eng, Options{}) // maxLimit 10000, maxTimeout 24h
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := graphText(t, q)

	huge := strconv.FormatInt(1<<40, 10)
	cases := []struct {
		name  string
		query string
		want  int
	}{
		{"no params", "", http.StatusOK},
		{"limit zero means decision", "limit=0", http.StatusOK},
		{"limit at cap", "limit=10000", http.StatusOK},
		{"limit negative", "limit=-1", http.StatusBadRequest},
		{"limit just past cap", "limit=10001", http.StatusBadRequest},
		{"limit 1<<40", "limit=" + huge, http.StatusBadRequest},
		{"limit overflows int64", "limit=99999999999999999999", http.StatusBadRequest},
		{"limit not a number", "limit=ten", http.StatusBadRequest},
		{"timeout zero means server default", "timeout_ms=0", http.StatusOK},
		{"timeout in range", "timeout_ms=5000", http.StatusOK},
		{"timeout negative", "timeout_ms=-1", http.StatusBadRequest},
		{"timeout 1<<40", "timeout_ms=" + huge, http.StatusBadRequest},
		{"timeout not a number", "timeout_ms=soon", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			url := ts.URL + "/query"
			if tc.query != "" {
				url += "?" + tc.query
			}
			resp, data := postQuery(t, url, body)
			if resp.StatusCode != tc.want {
				t.Errorf("status = %d, want %d (body %.120s)", resp.StatusCode, tc.want, data)
			}
			if tc.want == http.StatusBadRequest {
				var er errorResponse
				if err := json.Unmarshal(data, &er); err != nil || er.Error == "" {
					t.Errorf("400 without a JSON error body: %q", data)
				}
			}
		})
	}
}

// TestQueryParamCapsTrackConfig verifies the caps scale with the server's
// configuration instead of being absolute constants: a raised DefaultLimit
// admits proportionally larger limits, and a configured RequestTimeout
// tightens the timeout ceiling to ten times itself.
func TestQueryParamCapsTrackConfig(t *testing.T) {
	eng, q := datasetFixture(t)
	srv := New(eng, Options{DefaultLimit: 50000, RequestTimeout: 100 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := graphText(t, q)

	cases := []struct {
		query string
		want  int
	}{
		{"limit=500000", http.StatusOK},         // 10 × DefaultLimit
		{"limit=500001", http.StatusBadRequest}, // one past
		{"timeout_ms=1000", http.StatusOK},      // 10 × RequestTimeout
		{"timeout_ms=1001", http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, data := postQuery(t, ts.URL+"/query?"+tc.query, body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status = %d, want %d (body %.120s)", tc.query, resp.StatusCode, tc.want, data)
		}
	}
}

// TestRetryAfterDerivation exercises the EWMA → Retry-After pipeline: the
// cold-start floor, tracking of observed durations, and the 30s cap.
func TestRetryAfterDerivation(t *testing.T) {
	srv := NewBuilding(Options{})
	if got := srv.retryAfterSeconds(); got != 1 {
		t.Errorf("cold retryAfterSeconds = %d, want the floor 1", got)
	}
	srv.observeRequest(5 * time.Second)
	if got := srv.retryAfterSeconds(); got != 5 {
		t.Errorf("after one 5s request, retryAfterSeconds = %d, want 5", got)
	}
	// Sub-second requests pull the estimate back down toward the floor.
	for i := 0; i < 64; i++ {
		srv.observeRequest(10 * time.Millisecond)
	}
	if got := srv.retryAfterSeconds(); got != 1 {
		t.Errorf("after fast requests, retryAfterSeconds = %d, want 1", got)
	}
	// Pathologically slow requests saturate at the cap.
	for i := 0; i < 64; i++ {
		srv.observeRequest(10 * time.Minute)
	}
	if got := srv.retryAfterSeconds(); got != maxRetryAfterSeconds {
		t.Errorf("after slow requests, retryAfterSeconds = %d, want the %d cap", got, maxRetryAfterSeconds)
	}
}

// TestRetryAfterHeaderOnCapacity verifies the 429 carries the derived value
// end to end — a parsable positive integer seconds hint on both the query
// and the mutation admission paths.
func TestRetryAfterHeaderOnCapacity(t *testing.T) {
	eng, q := datasetFixture(t)
	srv := New(eng, Options{MaxInFlight: 1})
	gate := make(chan struct{})
	srv.admittedHook = func(ctx context.Context) { <-gate }
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := graphText(t, q)

	done := make(chan struct{})
	go func() {
		defer close(done)
		postQuery(t, ts.URL+"/query", body)
	}()
	waitFor(t, func() bool { return srv.InFlight() == 1 })

	for _, target := range []string{"/query", "/graphs"} {
		resp, _ := postQuery(t, ts.URL+target, body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("POST %s at capacity: status = %d, want 429", target, resp.StatusCode)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil || ra < 1 || ra > maxRetryAfterSeconds {
			t.Errorf("POST %s Retry-After = %q, want an integer in [1,%d]",
				target, resp.Header.Get("Retry-After"), maxRetryAfterSeconds)
		}
	}
	close(gate)
	<-done
}

// TestSnapshotEndpoint covers POST /snapshot: 409 when unconfigured, 503
// while the engine is building, and on success a snapshot file a fresh
// engine cold-starts from with identical answers.
func TestSnapshotEndpoint(t *testing.T) {
	eng, q := datasetFixture(t)
	body := graphText(t, q)

	t.Run("unconfigured", func(t *testing.T) {
		srv := New(eng, Options{})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		resp, data := postQuery(t, ts.URL+"/snapshot", nil)
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("status = %d, want 409 (body %.120s)", resp.StatusCode, data)
		}
	})

	path := filepath.Join(t.TempDir(), "srv.psisnap")

	t.Run("building", func(t *testing.T) {
		srv := NewBuilding(Options{SnapshotPath: path})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		resp, data := postQuery(t, ts.URL+"/snapshot", nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503 (body %.120s)", resp.StatusCode, data)
		}
	})

	t.Run("save and cold-start", func(t *testing.T) {
		srv := New(eng, Options{SnapshotPath: path})
		ts := httptest.NewServer(srv)
		defer ts.Close()

		resp, data := postQuery(t, ts.URL+"/snapshot", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, want 200 (body %.120s)", resp.StatusCode, data)
		}
		var sr SnapshotResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		if sr.Path != path {
			t.Errorf("response path = %q, want %q", sr.Path, path)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("snapshot file missing: %v", err)
		}

		cold, err := psi.NewDatasetEngine(nil, psi.EngineOptions{Snapshot: path, CacheSize: -1})
		if err != nil {
			t.Fatalf("cold-start from server snapshot: %v", err)
		}
		defer cold.Close()
		cts := httptest.NewServer(New(cold, Options{}))
		defer cts.Close()

		_, live := postQuery(t, ts.URL+"/query?cache=0", body)
		_, restored := postQuery(t, cts.URL+"/query?cache=0", body)
		var lr, rr QueryResponse
		if err := json.Unmarshal(live, &lr); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(restored, &rr); err != nil {
			t.Fatal(err)
		}
		if lr.Found != rr.Found || len(lr.GraphIDs) != len(rr.GraphIDs) {
			t.Errorf("cold-start answer %+v != live answer %+v", rr, lr)
		}
		for i := range lr.GraphIDs {
			if lr.GraphIDs[i] != rr.GraphIDs[i] {
				t.Errorf("graph id %d: cold %d != live %d", i, rr.GraphIDs[i], lr.GraphIDs[i])
				break
			}
		}
	})
}
