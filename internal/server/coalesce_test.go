package server

// Regression tests for in-flight query coalescing, run under -race by
// scripts/check.sh: a stampede of identical queries costs one engine
// execution and every client reads a byte-identical answer; a follower
// that disconnects never cancels the leader; killed answers are never
// shared; and a drained stampede leaks no goroutines.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	psi "github.com/psi-graph/psi"
)

// coalesceFixture builds a racing FTV engine with the engine-side cache
// off and a server with the result cache off, so every answer observed in
// these tests comes from a live execution or a shared flight — never from
// a cache.
func coalesceFixture(t *testing.T, engOpts psi.EngineOptions, srvOpts Options) (*Server, *psi.Graph) {
	t.Helper()
	ds := psi.GeneratePPI(psi.Tiny, 1)
	engOpts.CacheSize = -1
	if len(engOpts.Indexes) == 0 && engOpts.Index == "" {
		engOpts.Index = "ftv"
	}
	eng, err := psi.NewDatasetEngine(ds, engOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	srvOpts.CacheSize = -1
	return New(eng, srvOpts), psi.ExtractQuery(ds[0], 4, 7)
}

// streamLines splits an NDJSON body into result lines and the parsed
// summary line.
func streamLines(t *testing.T, data []byte) ([]byte, StreamSummary) {
	t.Helper()
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("stream too short: %q", data)
	}
	var sum StreamSummary
	if err := json.Unmarshal(lines[len(lines)-2], &sum); err != nil {
		t.Fatalf("summary line: %v (%q)", err, lines[len(lines)-2])
	}
	return bytes.Join(lines[:len(lines)-2], nil), sum
}

// waitWaiters polls until the flight has n parked followers.
func waitWaiters(t *testing.T, fl *flight, n int32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for fl.waiters.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("flight gathered %d waiters, want %d", fl.waiters.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalesceCollapsesStampede is the acceptance test for the tentpole's
// coalescing half: 16 concurrent identical streamed queries execute once,
// and all 16 clients read byte-identical result lines. The leaderHook
// holds the leader until all 15 followers are parked, so the single
// execution is guaranteed, not a matter of timing.
func TestCoalesceCollapsesStampede(t *testing.T) {
	const clients = 16
	srv, q := coalesceFixture(t, psi.EngineOptions{}, Options{MaxInFlight: 2 * clients})
	srv.leaderHook = func(fl *flight) { waitWaiters(t, fl, clients-1) }
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := graphText(t, q)

	before := runtime.NumGoroutine()
	type reply struct {
		lines []byte
		sum   StreamSummary
	}
	replies := make([]reply, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postQuery(t, ts.URL+"/query?stream=1", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d body %s", i, resp.StatusCode, data)
				return
			}
			lines, sum := streamLines(t, data)
			replies[i] = reply{lines: lines, sum: sum}
		}(i)
	}
	wg.Wait()

	if n := srv.Engine().Counters().Queries; n != 1 {
		t.Errorf("%d identical queries cost %d engine executions, want 1", clients, n)
	}
	if n := srv.coalesced.Load(); n != clients-1 {
		t.Errorf("coalesced = %d, want %d", n, clients-1)
	}
	if n := srv.coalescedFallbacks.Load(); n != 0 {
		t.Errorf("coalescedFallbacks = %d, want 0", n)
	}
	if len(replies[0].lines) == 0 {
		t.Fatal("empty answer; pick a different fixture seed")
	}
	leaders, followers := 0, 0
	for i, r := range replies {
		if !bytes.Equal(r.lines, replies[0].lines) {
			t.Errorf("client %d result lines differ:\ngot  %q\nwant %q", i, r.lines, replies[0].lines)
		}
		if !r.sum.Done || r.sum.Killed || r.sum.Error != "" {
			t.Errorf("client %d summary = %+v", i, r.sum)
		}
		if r.sum.Found != replies[0].sum.Found || r.sum.Winner != replies[0].sum.Winner {
			t.Errorf("client %d summary %+v disagrees with %+v", i, r.sum, replies[0].sum)
		}
		if r.sum.Coalesced {
			followers++
		} else {
			leaders++
		}
	}
	if leaders != 1 || followers != clients-1 {
		t.Errorf("leaders = %d, coalesced followers = %d, want 1 and %d", leaders, followers, clients-1)
	}

	// Drained stampede leaves no goroutines behind (idle keep-alive
	// connections are closed first so only real leaks remain).
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, func() bool { return srv.InFlight() == 0 })
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines %d -> %d after stampede drained", before, n)
	}
}

// TestCoalesceCollectedFollower checks the non-streamed replay path: a
// collected follower shares the streamed leader's execution and is marked
// coalesced, with the same answer.
func TestCoalesceCollectedFollower(t *testing.T) {
	srv, q := coalesceFixture(t, psi.EngineOptions{}, Options{})
	release := make(chan struct{})
	var flMu sync.Mutex
	var led *flight
	srv.leaderHook = func(fl *flight) {
		flMu.Lock()
		led = fl
		flMu.Unlock()
		<-release
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := graphText(t, q)

	// The streamed request goes first and is held as leader; the collected
	// request then parks on its flight.
	var (
		wg       sync.WaitGroup
		leader   []byte
		follower QueryResponse
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, data := postQuery(t, ts.URL+"/query?stream=1", body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("leader status %d body %s", resp.StatusCode, data)
		}
		leader, _ = streamLines(t, data)
	}()
	waitFor(t, func() bool {
		flMu.Lock()
		defer flMu.Unlock()
		return led != nil
	})
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, data := postQuery(t, ts.URL+"/query", body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("follower status %d body %s", resp.StatusCode, data)
			return
		}
		if err := json.Unmarshal(data, &follower); err != nil {
			t.Errorf("follower body: %v (%q)", err, data)
		}
	}()
	flMu.Lock()
	fl := led
	flMu.Unlock()
	waitWaiters(t, fl, 1)
	close(release)
	wg.Wait()

	if n := srv.Engine().Counters().Queries; n != 1 {
		t.Errorf("engine executions = %d, want 1", n)
	}
	if !follower.Coalesced || follower.Cached {
		t.Errorf("follower response = %+v, want coalesced and not cached", follower)
	}
	var want bytes.Buffer
	for _, id := range follower.GraphIDs {
		fmt.Fprintf(&want, "{\"graph_id\":%d}\n", id)
	}
	if !bytes.Equal(leader, want.Bytes()) {
		t.Errorf("leader stream %q != follower graph_ids %v", leader, follower.GraphIDs)
	}
}

// TestCoalesceFollowerCancelDoesNotKillLeader: a parked follower whose
// client disconnects unwinds with an error while the leader — and any
// other follower — is completely unaffected.
func TestCoalesceFollowerCancelDoesNotKillLeader(t *testing.T) {
	srv, q := coalesceFixture(t, psi.EngineOptions{}, Options{})
	release := make(chan struct{})
	var flMu sync.Mutex
	var led *flight
	srv.leaderHook = func(fl *flight) {
		flMu.Lock()
		led = fl
		flMu.Unlock()
		<-release
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := graphText(t, q)

	// Leader in, held at the hook.
	var wg sync.WaitGroup
	var leaderLines []byte
	var leaderSum StreamSummary
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, data := postQuery(t, ts.URL+"/query?stream=1", body)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("leader status %d body %s", resp.StatusCode, data)
			return
		}
		leaderLines, leaderSum = streamLines(t, data)
	}()
	waitFor(t, func() bool {
		flMu.Lock()
		defer flMu.Unlock()
		return led != nil
	})

	// Follower in, parked on the flight, then its client disconnects.
	cancelCtx, cancel := context.WithCancel(context.Background())
	followerErr := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(cancelCtx, http.MethodPost, ts.URL+"/query?stream=1", bytes.NewReader(body))
		if err != nil {
			followerErr <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("cancelled follower got status %d", resp.StatusCode)
		}
		followerErr <- err
	}()
	flMu.Lock()
	fl := led
	flMu.Unlock()
	waitWaiters(t, fl, 1)
	cancel()
	if err := <-followerErr; err == nil || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled follower error = %v, want context.Canceled", err)
	}
	// Wait until the follower's handler has unwound — its admission slot is
	// back — so the leader's finish cannot race its cancellation.
	waitFor(t, func() bool { return srv.InFlight() == 1 })

	// The leader proceeds and answers in full.
	close(release)
	wg.Wait()
	if !leaderSum.Done || leaderSum.Killed || leaderSum.Error != "" || len(leaderLines) == 0 {
		t.Errorf("leader summary = %+v with %d result bytes; follower cancellation leaked into the leader",
			leaderSum, len(leaderLines))
	}
	if n := srv.Engine().Counters().Queries; n != 1 {
		t.Errorf("engine executions = %d, want 1", n)
	}
	if n := srv.coalesced.Load(); n != 0 {
		t.Errorf("coalesced = %d, want 0 (the only follower disconnected)", n)
	}
}

// TestCoalesceNeverSharesKilledAnswers: when the leader's execution is
// killed by the engine budget, its partial answer is not handed to the
// followers — each falls back to its own execution and reports its own
// kill.
func TestCoalesceNeverSharesKilledAnswers(t *testing.T) {
	const clients = 4
	srv, q := coalesceFixture(t, psi.EngineOptions{Timeout: time.Nanosecond}, Options{})
	srv.leaderHook = func(fl *flight) { waitWaiters(t, fl, clients-1) }
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := graphText(t, q)

	sums := make([]StreamSummary, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, data := postQuery(t, ts.URL+"/query?stream=1", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d body %s", i, resp.StatusCode, data)
				return
			}
			_, sums[i] = streamLines(t, data)
		}(i)
	}
	wg.Wait()

	for i, sum := range sums {
		if sum.Coalesced {
			t.Errorf("client %d received a coalesced answer from a killed execution: %+v", i, sum)
		}
		if !sum.Killed {
			t.Errorf("client %d summary = %+v, want killed", i, sum)
		}
	}
	if n := srv.Engine().Counters().Queries; n != clients {
		t.Errorf("engine executions = %d, want %d (killed answers force independent runs)", n, clients)
	}
	if n := srv.coalescedFallbacks.Load(); n != clients-1 {
		t.Errorf("coalescedFallbacks = %d, want %d", n, clients-1)
	}
	if n := srv.coalesced.Load(); n != 0 {
		t.Errorf("coalesced = %d, want 0", n)
	}
}

// TestCoalesceOptOuts: NoCoalesce servers and ?cache=0 requests never
// share executions.
func TestCoalesceOptOuts(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
		url  string
	}{
		{"no_coalesce_option", Options{NoCoalesce: true}, "/query?stream=1"},
		{"cache_zero_request", Options{}, "/query?stream=1&cache=0"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			srv, q := coalesceFixture(t, psi.EngineOptions{}, tc.opts)
			srv.leaderHook = func(fl *flight) {
				t.Error("opted-out request opened a flight")
			}
			gate := make(chan struct{})
			var admitted sync.WaitGroup
			admitted.Add(2)
			srv.admittedHook = func(ctx context.Context) {
				admitted.Done()
				<-gate
			}
			go func() {
				admitted.Wait()
				close(gate)
			}()
			ts := httptest.NewServer(srv)
			defer ts.Close()
			body := graphText(t, q)

			var wg sync.WaitGroup
			for i := 0; i < 2; i++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					resp, data := postQuery(t, ts.URL+tc.url, body)
					if resp.StatusCode != http.StatusOK {
						t.Errorf("status %d body %s", resp.StatusCode, data)
					}
				}()
			}
			wg.Wait()
			if n := srv.Engine().Counters().Queries; n != 2 {
				t.Errorf("engine executions = %d, want 2 (no sharing)", n)
			}
			if n := srv.coalesced.Load(); n != 0 {
				t.Errorf("coalesced = %d, want 0", n)
			}
		})
	}
}
