package server

// Cache × sharding interaction tests: a sharded dataset engine behind the
// serving layer must replay cached answers byte-identically to fresh ones,
// must never remember a killed (truncated) sharded answer, and must surface
// the shard balance through /stats.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	psi "github.com/psi-graph/psi"
)

// shardedFixture builds a sharded FTV engine (K=3, flat path index, no
// engine-level cache) plus a query with a non-empty answer.
func shardedFixture(t *testing.T, timeout time.Duration) (*psi.Engine, *psi.Graph) {
	t.Helper()
	ds := psi.GeneratePPI(psi.Tiny, 1)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Index:     "ftv",
		Shards:    3,
		Timeout:   timeout,
		CacheSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	q := psi.ExtractQuery(ds[0], 4, 7)
	return eng, q
}

// TestShardedCachedReplayByteParity issues the same query against a sharded
// engine twice in each response mode and asserts the cached replay is
// byte-identical to the fresh answer: same NDJSON result lines, same
// collected graph IDs — the sharding merge must not leak into cache
// semantics.
func TestShardedCachedReplayByteParity(t *testing.T) {
	eng, q := shardedFixture(t, 0)
	srv := New(eng, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := graphText(t, q)

	// Streamed: fresh, then cached.
	_, fresh := postQuery(t, ts.URL+"/query?stream=1", body)
	_, replay := postQuery(t, ts.URL+"/query?stream=1", body)
	freshLines := bytes.SplitAfter(fresh, []byte("\n"))
	replayLines := bytes.SplitAfter(replay, []byte("\n"))
	if len(freshLines) < 3 {
		t.Fatalf("fixture query answered too little to exercise the merge: %q", fresh)
	}
	if len(freshLines) != len(replayLines) {
		t.Fatalf("cached replay has %d lines, fresh %d", len(replayLines), len(freshLines))
	}
	freshResults := bytes.Join(freshLines[:len(freshLines)-2], nil)
	replayResults := bytes.Join(replayLines[:len(replayLines)-2], nil)
	if !bytes.Equal(freshResults, replayResults) {
		t.Errorf("cached replay result lines differ from fresh:\nfresh  %q\nreplay %q", freshResults, replayResults)
	}
	var freshSum, replaySum StreamSummary
	if err := json.Unmarshal(freshLines[len(freshLines)-2], &freshSum); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(replayLines[len(replayLines)-2], &replaySum); err != nil {
		t.Fatal(err)
	}
	if freshSum.Cached || !replaySum.Cached {
		t.Errorf("cached flags: fresh %v, replay %v — want false/true", freshSum.Cached, replaySum.Cached)
	}
	if replaySum.Found != freshSum.Found {
		t.Errorf("replay found %d, fresh %d", replaySum.Found, freshSum.Found)
	}

	// Collected: the cached JSON answer carries the same graph IDs.
	_, cdata := postQuery(t, ts.URL+"/query", body)
	var collected QueryResponse
	if err := json.Unmarshal(cdata, &collected); err != nil {
		t.Fatal(err)
	}
	if !collected.Cached {
		t.Error("collected repeat of a streamed query not served from the shared cache")
	}
	if collected.Found != freshSum.Found || len(collected.GraphIDs) != freshSum.Found {
		t.Errorf("collected cached answer found=%d ids=%d, fresh stream found=%d",
			collected.Found, len(collected.GraphIDs), freshSum.Found)
	}

	// The shard balance reaches /stats (answers attributed to shards once;
	// cached replays never re-count).
	resp, sdata := getStats(t, ts.URL)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/stats status %d", resp.StatusCode)
	}
	var stats StatsResponse
	if err := json.Unmarshal(sdata, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shards != 3 || len(stats.ShardBalance) != 3 {
		t.Fatalf("/stats shards=%d balance=%v, want 3 shards", stats.Shards, stats.ShardBalance)
	}
	var sum int64
	for _, n := range stats.ShardBalance {
		sum += n
	}
	if sum != int64(freshSum.Found) {
		t.Errorf("shard balance %v sums to %d, want the %d fresh answers (cached replays must not re-count)",
			stats.ShardBalance, sum, freshSum.Found)
	}
}

// TestKilledShardedQueryNeverCached runs a sharded engine whose per-query
// budget kills everything and asserts the serving layer never remembers the
// truncated answer: repeats stay fresh (and killed) in both response modes
// and the result cache stays empty.
func TestKilledShardedQueryNeverCached(t *testing.T) {
	eng, q := shardedFixture(t, time.Nanosecond)
	srv := New(eng, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	body := graphText(t, q)

	for i := 0; i < 2; i++ {
		_, data := postQuery(t, ts.URL+"/query", body)
		var resp QueryResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Killed {
			t.Fatalf("request %d under a 1ns budget not killed: %s", i, data)
		}
		if resp.Cached {
			t.Fatalf("request %d served a killed answer from cache: %s", i, data)
		}
	}
	_, sdata := postQuery(t, ts.URL+"/query?stream=1", body)
	lines := bytes.SplitAfter(sdata, []byte("\n"))
	var sum StreamSummary
	if err := json.Unmarshal(lines[len(lines)-2], &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Killed || sum.Cached {
		t.Fatalf("streamed killed query summary = %+v, want killed and uncached", sum)
	}
	if st := srv.Stats(); st.ResultCache == nil || st.ResultCache.Entries != 0 {
		t.Errorf("result cache holds %+v after killed-only traffic, want 0 entries", st.ResultCache)
	}
	if c := eng.Counters(); c.ShardedKilled == 0 {
		t.Errorf("engine counters %+v missing sharded kills", c)
	}
}

// getStats fetches /stats.
func getStats(t *testing.T, base string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}
