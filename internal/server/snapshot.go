package server

// POST /snapshot persists the served engine's full state — dataset CSR
// arrays, every index's features, and (on mutable engines) the mutation
// state — to the path configured by Options.SnapshotPath, through the
// snapshot package's atomic write. The engine serializes the save against
// mutations internally, so the file is always one consistent epoch; a
// server restarted with -snapshot on that path cold-starts near-instantly
// from it. The endpoint goes through the same admission gate as queries, so
// a drain never abandons a half-written file (the atomic rename means there
// is no such thing on disk anyway) and saves count against capacity.

import (
	"fmt"
	"net/http"
	"time"
)

// SnapshotResponse is the POST /snapshot response.
type SnapshotResponse struct {
	Path      string `json:"path"`
	Epoch     uint64 `json:"epoch"`
	ElapsedUS int64  `json:"elapsed_us"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	release, status := s.admit()
	if status != 0 {
		s.writeOverloaded(w, status)
		return
	}
	defer release()
	if s.opts.SnapshotPath == "" {
		writeJSONError(w, http.StatusConflict, "snapshots are not configured (start with -snapshot)")
		return
	}
	eng := s.engine()
	if eng == nil {
		writeJSONError(w, http.StatusServiceUnavailable, "engine is building")
		return
	}
	start := time.Now()
	if err := eng.SaveSnapshot(s.opts.SnapshotPath); err != nil {
		writeJSONError(w, http.StatusInternalServerError, fmt.Sprintf("saving snapshot: %v", err))
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{
		Path:      s.opts.SnapshotPath,
		Epoch:     eng.Epoch(),
		ElapsedUS: time.Since(start).Microseconds(),
	})
}
