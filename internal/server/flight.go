package server

import (
	"sync"
	"sync/atomic"
)

// flight is one in-progress execution of a query key. The leader — the
// request that opened the flight — runs the engine; followers park on done.
// When the leader finishes, ans holds the complete answer it is willing to
// share, or nil when there is nothing shareable (execution error, killed
// result, client gone mid-stream) and each follower must run the query
// itself.
//
// ans is written by the leader before done is closed and read by followers
// only after done is closed, so it needs no lock of its own.
type flight struct {
	done chan struct{}
	ans  *cachedAnswer
	// waiters counts the followers parked on done, for observability and
	// for tests that need to hold a leader until its followers arrive.
	waiters atomic.Int32
}

// flightGroup deduplicates concurrent identical queries: all requests for
// the same key that overlap in time share one engine execution. It is the
// serving layer's singleflight, keyed like the result cache (canonical
// query bytes + result limit), so two requests share a flight exactly when
// they would share a cache entry.
type flightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{flights: make(map[string]*flight)}
}

// join enters the flight for key, opening one if none is in progress.
// The second return reports leadership: the leader must execute the query
// and finish the flight exactly once; a follower waits on fl.done.
func (g *flightGroup) join(key string) (fl *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fl, ok := g.flights[key]; ok {
		fl.waiters.Add(1)
		return fl, false
	}
	fl = &flight{done: make(chan struct{})}
	g.flights[key] = fl
	return fl, true
}

// finish completes a flight: it publishes ans (nil when the execution
// produced nothing shareable) and releases the waiting followers. The key
// is unmapped before done is closed, so a request arriving after the
// answer was decided starts a fresh flight — it never replays a finished
// one, that replay is the result cache's job.
func (g *flightGroup) finish(key string, fl *flight, ans *cachedAnswer) {
	g.mu.Lock()
	delete(g.flights, key)
	g.mu.Unlock()
	fl.ans = ans
	close(fl.done)
}
