package server

// Tests for the online-mutation endpoints and the epoch-aware serving
// state: ingest/remove/replace over HTTP with correct status mapping,
// epoch-keyed result-cache invalidation (the regression the cache key's
// epoch prefix exists for), and the building→ready /healthz transition.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	psi "github.com/psi-graph/psi"
	"github.com/psi-graph/psi/internal/graph"
)

// mutableFixture builds a small mutable FTV engine (two shards, no engine
// cache) plus a query with a non-empty answer contained in ds[0].
func mutableFixture(t *testing.T) (*psi.Engine, *psi.Graph, []*psi.Graph) {
	t.Helper()
	ds := psi.GeneratePPI(psi.Tiny, 1)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{
		Index: "ftv", Mutable: true, Shards: 2, CacheSize: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	q := psi.ExtractQuery(ds[0], 4, 7)
	return eng, q, ds
}

func do(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data := new(bytes.Buffer)
	if _, err := data.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, data.Bytes()
}

func queryIDs(t *testing.T, ts *httptest.Server, body []byte) ([]int, QueryResponse) {
	t.Helper()
	resp, data := postQuery(t, ts.URL+"/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d, body %s", resp.StatusCode, data)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	return qr.GraphIDs, qr
}

// TestMutationEndpoints drives the full ingest/replace/remove cycle over
// HTTP and pins the status mapping, the epoch progression, and that every
// mutation is visible to the very next query.
func TestMutationEndpoints(t *testing.T) {
	eng, q, ds := mutableFixture(t)
	srv := New(eng, Options{CacheSize: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	qbody := graphText(t, q)

	resp, data := do(t, http.MethodGet, ts.URL+"/healthz", nil)
	var hz healthResponse
	if err := json.Unmarshal(data, &hz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" || hz.Epoch != 1 {
		t.Fatalf("healthz = %d %+v, want 200 ok epoch 1", resp.StatusCode, hz)
	}

	baseline, _ := queryIDs(t, ts, qbody)
	if len(baseline) == 0 {
		t.Fatal("fixture query has an empty answer; pick a different seed")
	}

	// Ingest a copy of ds[0]: q is a subgraph of it by construction, so the
	// answer must grow by exactly the new dense ID (the largest).
	resp, data = do(t, http.MethodPost, ts.URL+"/graphs", graphText(t, ds[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d, body %s", resp.StatusCode, data)
	}
	var ing IngestResponse
	if err := json.Unmarshal(data, &ing); err != nil {
		t.Fatal(err)
	}
	if len(ing.Handles) != 1 || ing.Epoch != 2 {
		t.Fatalf("ingest = %+v, want 1 handle at epoch 2", ing)
	}
	h := ing.Handles[0]
	grown, _ := queryIDs(t, ts, qbody)
	if fmt.Sprint(grown) != fmt.Sprint(append(append([]int{}, baseline...), len(ds))) {
		t.Fatalf("answer after ingest = %v, want %v + [%d]", grown, baseline, len(ds))
	}

	// Replace the copy with a single-vertex graph: the answer shrinks back.
	solo := graph.MustNew("solo", []graph.Label{0}, nil)
	resp, data = do(t, http.MethodPut, fmt.Sprintf("%s/graphs/%d", ts.URL, h), graphText(t, solo))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replace status = %d, body %s", resp.StatusCode, data)
	}
	var mut MutateResponse
	if err := json.Unmarshal(data, &mut); err != nil {
		t.Fatal(err)
	}
	if mut.Handle != h || mut.Epoch != 3 {
		t.Fatalf("replace = %+v, want handle %d at epoch 3", mut, h)
	}
	if ids, _ := queryIDs(t, ts, qbody); fmt.Sprint(ids) != fmt.Sprint(baseline) {
		t.Fatalf("answer after replace = %v, want %v", ids, baseline)
	}

	// Remove it; a second remove of the same handle is the client's 404.
	resp, data = do(t, http.MethodDelete, fmt.Sprintf("%s/graphs/%d", ts.URL, h), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove status = %d, body %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &mut); err != nil {
		t.Fatal(err)
	}
	if mut.Epoch != 4 {
		t.Fatalf("remove = %+v, want epoch 4", mut)
	}
	if ids, _ := queryIDs(t, ts, qbody); fmt.Sprint(ids) != fmt.Sprint(baseline) {
		t.Fatalf("answer after remove = %v, want %v", ids, baseline)
	}
	if resp, _ = do(t, http.MethodDelete, fmt.Sprintf("%s/graphs/%d", ts.URL, h), nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("double remove status = %d, want 404", resp.StatusCode)
	}

	// Malformed requests.
	if resp, _ = do(t, http.MethodDelete, ts.URL+"/graphs/abc", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad handle status = %d, want 400", resp.StatusCode)
	}
	if resp, _ = do(t, http.MethodPost, ts.URL+"/graphs", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty ingest status = %d, want 400", resp.StatusCode)
	}
	two := append(graphText(t, solo), graphText(t, solo)...)
	if resp, _ = do(t, http.MethodPut, fmt.Sprintf("%s/graphs/%d", ts.URL, 1), two); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("two-graph replace status = %d, want 400", resp.StatusCode)
	}

	// Observability: /stats and /metrics carry the epoch and the mutation
	// counters.
	st := srv.Stats()
	if !st.Ready || !st.Mutable || st.Epoch != 4 {
		t.Errorf("stats ready=%v mutable=%v epoch=%d, want true/true/4", st.Ready, st.Mutable, st.Epoch)
	}
	if st.Engine.GraphsAdded != 1 || st.Engine.GraphsRemoved != 1 || st.Engine.GraphsReplaced != 1 {
		t.Errorf("mutation counters = %+v, want 1/1/1", st.Engine)
	}
	_, data = do(t, http.MethodGet, ts.URL+"/metrics", nil)
	for _, want := range []string{
		"psi_server_ready 1",
		"psi_engine_dataset_epoch 4",
		"psi_engine_graphs_added_total 1",
		"psi_engine_graphs_removed_total 1",
		"psi_engine_graphs_replaced_total 1",
		"psi_engine_compactions_total 0",
	} {
		if !strings.Contains(string(data), want+"\n") {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestMutationRequiresMutableEngine pins the 409 for mutation requests
// against a server whose engine was built without EngineOptions.Mutable.
func TestMutationRequiresMutableEngine(t *testing.T) {
	eng, q := datasetFixture(t)
	srv := New(eng, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, data := do(t, http.MethodPost, ts.URL+"/graphs", graphText(t, q))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("ingest on immutable engine = %d (%s), want 409", resp.StatusCode, data)
	}
	if resp, _ := do(t, http.MethodDelete, ts.URL+"/graphs/1", nil); resp.StatusCode != http.StatusConflict {
		t.Errorf("remove on immutable engine = %d, want 409", resp.StatusCode)
	}
}

// TestEpochKeyedCache is the mutation-vs-cache regression test: a cached
// answer must never survive a mutation, because the cache key carries the
// dataset epoch. The same key feeds the flight group, so coalescing cannot
// cross a mutation either.
func TestEpochKeyedCache(t *testing.T) {
	eng, q, ds := mutableFixture(t)
	srv := New(eng, Options{CacheSize: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	qbody := graphText(t, q)

	before, first := queryIDs(t, ts, qbody)
	if first.Cached {
		t.Fatal("first query already cached")
	}
	if _, second := queryIDs(t, ts, qbody); !second.Cached {
		t.Fatal("identical repeat not served from cache")
	}

	resp, data := do(t, http.MethodPost, ts.URL+"/graphs", graphText(t, ds[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d, body %s", resp.StatusCode, data)
	}
	var ing IngestResponse
	if err := json.Unmarshal(data, &ing); err != nil {
		t.Fatal(err)
	}

	// The very next identical query must re-execute (the old entry's key
	// carries the old epoch) and see the ingested graph.
	after, third := queryIDs(t, ts, qbody)
	if third.Cached {
		t.Fatal("query after mutation served a pre-mutation cache entry")
	}
	if fmt.Sprint(after) != fmt.Sprint(append(append([]int{}, before...), len(ds))) {
		t.Fatalf("answer after ingest = %v, want %v + [%d]", after, before, len(ds))
	}
	if _, fourth := queryIDs(t, ts, qbody); !fourth.Cached {
		t.Fatal("repeat within the new epoch not served from cache")
	}

	// And the same again across a removal.
	if resp, data := do(t, http.MethodDelete, fmt.Sprintf("%s/graphs/%d", ts.URL, ing.Handles[0]), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("remove status = %d, body %s", resp.StatusCode, data)
	}
	final, fifth := queryIDs(t, ts, qbody)
	if fifth.Cached {
		t.Fatal("query after removal served a pre-removal cache entry")
	}
	if fmt.Sprint(final) != fmt.Sprint(before) {
		t.Fatalf("answer after removal = %v, want %v", final, before)
	}
}

// TestBuildingReadiness covers the NewBuilding→SetEngine lifecycle: while
// the engine is building, /healthz says so with 503, queries and mutations
// are refused, and /stats and /metrics still serve the admission layer.
func TestBuildingReadiness(t *testing.T) {
	srv := NewBuilding(Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, data := do(t, http.MethodGet, ts.URL+"/healthz", nil)
	var hz healthResponse
	if err := json.Unmarshal(data, &hz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || hz.Status != "building" {
		t.Fatalf("healthz while building = %d %+v, want 503 building", resp.StatusCode, hz)
	}
	eng, q, _ := mutableFixture(t)
	qbody := graphText(t, q)
	if resp, _ := postQuery(t, ts.URL+"/query", qbody); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("query while building = %d, want 503", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPost, ts.URL+"/graphs", qbody); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("ingest while building = %d, want 503", resp.StatusCode)
	}
	if st := srv.Stats(); st.Ready {
		t.Error("stats ready while building")
	}
	_, data = do(t, http.MethodGet, ts.URL+"/metrics", nil)
	if !strings.Contains(string(data), "psi_server_ready 0\n") {
		t.Error("metrics missing psi_server_ready 0 while building")
	}
	if strings.Contains(string(data), "psi_engine_queries_total") {
		t.Error("metrics serve engine counters while building")
	}

	srv.SetEngine(eng)
	resp, data = do(t, http.MethodGet, ts.URL+"/healthz", nil)
	if err := json.Unmarshal(data, &hz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" || hz.Epoch != 1 {
		t.Fatalf("healthz after SetEngine = %d %+v, want 200 ok epoch 1", resp.StatusCode, hz)
	}
	if ids, _ := queryIDs(t, ts, qbody); len(ids) == 0 {
		t.Error("query after SetEngine returned an empty answer")
	}
}
