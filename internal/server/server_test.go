package server

// Regression tests for the serving subsystem, run under -race by
// scripts/check.sh: admission rejection at the limit, client disconnects
// cancelling the underlying work without goroutine leaks, graceful drain
// with zero dropped in-flight responses, and NDJSON stream parity with the
// collected Engine.Execute answer.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	psi "github.com/psi-graph/psi"
	"github.com/psi-graph/psi/internal/graph"
)

// datasetFixture builds a small FTV engine (flat path index, no engine
// cache, so server-cache behavior is observable in isolation) plus a query
// with a non-empty answer.
func datasetFixture(t *testing.T) (*psi.Engine, *psi.Graph) {
	t.Helper()
	ds := psi.GeneratePPI(psi.Tiny, 1)
	eng, err := psi.NewDatasetEngine(ds, psi.EngineOptions{Index: "ftv", CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	q := psi.ExtractQuery(ds[0], 4, 7)
	return eng, q
}

// graphText serializes q in the module's text format — the /query body.
func graphText(t *testing.T, q *psi.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := graph.WriteGraph(&buf, q); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postQuery(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestStreamMatchesExecuteBytes verifies the acceptance contract: the
// streamed NDJSON answer is byte-identical to what Engine.Execute's
// collected answer serializes to, line for line.
func TestStreamMatchesExecuteBytes(t *testing.T) {
	eng, q := datasetFixture(t)
	srv := New(eng, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	direct, err := eng.Query(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.GraphIDs) == 0 {
		t.Fatal("fixture query has an empty answer; pick a different seed")
	}
	var want bytes.Buffer
	for _, id := range direct.GraphIDs {
		fmt.Fprintf(&want, "{\"graph_id\":%d}\n", id)
	}

	resp, data := postQuery(t, ts.URL+"/query?stream=1&cache=0", graphText(t, q))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d, body %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("stream too short: %q", data)
	}
	got := bytes.Join(lines[:len(lines)-2], nil) // all but the summary line
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("streamed NDJSON differs from Execute serialization:\ngot  %q\nwant %q", got, want.Bytes())
	}
	var sum StreamSummary
	if err := json.Unmarshal(lines[len(lines)-2], &sum); err != nil {
		t.Fatalf("summary line: %v (%q)", err, lines[len(lines)-2])
	}
	if !sum.Done || sum.Found != len(direct.GraphIDs) || sum.Killed || sum.Error != "" {
		t.Errorf("summary = %+v, want done with found=%d", sum, len(direct.GraphIDs))
	}
	if sum.Winner == "" {
		t.Error("summary missing winner provenance")
	}
}

// TestCollectedQueryAndCache verifies the JSON response path and that the
// second identical query is served from the shared result cache, in both
// response modes.
func TestCollectedQueryAndCache(t *testing.T) {
	eng, q := datasetFixture(t)
	srv := New(eng, Options{CacheSize: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	direct, err := eng.Query(context.Background(), q, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := graphText(t, q)
	resp, data := postQuery(t, ts.URL+"/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, data)
	}
	var first QueryResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached || fmt.Sprint(first.GraphIDs) != fmt.Sprint(direct.GraphIDs) {
		t.Fatalf("first answer = %+v, want uncached %v", first, direct.GraphIDs)
	}
	if first.Found != len(direct.GraphIDs) {
		t.Errorf("collected FTV found = %d, want %d", first.Found, len(direct.GraphIDs))
	}

	_, data = postQuery(t, ts.URL+"/query", body)
	var second QueryResponse
	if err := json.Unmarshal(data, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("second identical query was not served from cache")
	}
	if fmt.Sprint(second.GraphIDs) != fmt.Sprint(direct.GraphIDs) {
		t.Errorf("cached answer %v != direct %v", second.GraphIDs, direct.GraphIDs)
	}
	// A cache hit must be indistinguishable from a fresh execution apart
	// from the cached marker: same kind, same winner, same found.
	if second.Kind != first.Kind || second.Winner != first.Winner || second.Found != first.Found {
		t.Errorf("cached reply %+v disagrees with fresh reply %+v", second, first)
	}

	// Streamed replay from the same cache entry.
	resp, data = postQuery(t, ts.URL+"/query?stream=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cached stream status = %d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	var sum StreamSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Cached || sum.Found != len(direct.GraphIDs) || len(lines)-1 != len(direct.GraphIDs) {
		t.Errorf("cached stream: %d id lines, summary %+v; want %d cached ids", len(lines)-1, sum, len(direct.GraphIDs))
	}

	if cc := srv.cache.counters(); cc.Hits != 2 || cc.Entries != 1 {
		t.Errorf("cache counters = %+v, want 2 hits over 1 entry", cc)
	}
}

// TestAdmissionLimitRejectsOverflow holds MaxInFlight requests open and
// verifies the next one is rejected immediately with 429 — then admitted
// again once a slot frees.
func TestAdmissionLimitRejectsOverflow(t *testing.T) {
	eng, q := datasetFixture(t)
	srv := New(eng, Options{MaxInFlight: 2})
	gate := make(chan struct{})
	srv.admittedHook = func(ctx context.Context) { <-gate }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := graphText(t, q)
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := postQuery(t, ts.URL+"/query", body)
			codes[i] = resp.StatusCode
		}(i)
	}
	waitFor(t, func() bool { return srv.InFlight() == 2 })

	resp, data := postQuery(t, ts.URL+"/query", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("N+1st query status = %d (%s), want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(gate)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("held request %d finished with %d", i, c)
		}
	}
	resp, _ = postQuery(t, ts.URL+"/query", body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-release query status = %d, want 200", resp.StatusCode)
	}
}

// slowFixture builds an NFV engine whose fixture query has a combinatorial
// embedding count — enumeration takes long enough that a client disconnect
// lands mid-stream.
func slowFixture(t *testing.T) (*psi.Engine, *psi.Graph) {
	t.Helper()
	b := psi.NewBuilder("dense")
	const n = 96
	for i := 0; i < n; i++ {
		b.AddVertex(0)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < i+16 && j < n; j++ {
			if err := b.AddEdge(i, j); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := psi.NewEngine(g, psi.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(eng.Close)
	q := psi.MustNewGraph("path5", []psi.Label{0, 0, 0, 0, 0},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	return eng, q
}

// TestClientDisconnectCancelsQuery reads one streamed line, drops the
// connection, and verifies the in-flight slot is released and no goroutines
// leak — i.e. the disconnect cancelled the underlying race.
func TestClientDisconnectCancelsQuery(t *testing.T) {
	eng, q := slowFixture(t)
	srv := New(eng, Options{CacheSize: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/query?stream=1&limit=10000", bytes.NewReader(graphText(t, q)))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatalf("reading first streamed line: %v", err)
	}
	cancel() // client walks away mid-stream
	resp.Body.Close()

	waitFor(t, func() bool { return srv.InFlight() == 0 })
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines after disconnect: %d, baseline %d — race not cancelled?", n, before)
	}
}

// TestGracefulDrain verifies the shutdown contract: draining rejects new
// queries with 503 while the in-flight one still completes in full, and a
// straggler past the drain deadline is cancelled through its context yet
// still receives its summary line — zero dropped responses either way.
func TestGracefulDrain(t *testing.T) {
	eng, q := datasetFixture(t)
	srv := New(eng, Options{})
	gate := make(chan struct{})
	srv.admittedHook = func(ctx context.Context) { <-gate }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := graphText(t, q)
	type outcome struct {
		code int
		data []byte
	}
	held := make(chan outcome, 1)
	go func() {
		resp, data := postQuery(t, ts.URL+"/query?stream=1&cache=0", body)
		held <- outcome{resp.StatusCode, data}
	}()
	waitFor(t, func() bool { return srv.InFlight() == 1 })

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(context.Background()) }()
	waitFor(t, func() bool { return srv.Draining() })

	resp, _ := postQuery(t, ts.URL+"/query", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: status %d, want 503", resp.StatusCode)
	}
	hz, _ := http.Get(ts.URL + "/healthz")
	if hz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", hz.StatusCode)
	}
	hz.Body.Close()

	close(gate) // let the in-flight query finish
	if err := <-shutdownErr; err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	out := <-held
	if out.code != http.StatusOK {
		t.Fatalf("in-flight query dropped during drain: status %d", out.code)
	}
	lines := strings.Split(strings.TrimSuffix(string(out.data), "\n"), "\n")
	var sum StreamSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatalf("drained response has no summary line: %v (%q)", err, out.data)
	}
	if !sum.Done {
		t.Errorf("drained response summary = %+v, want done", sum)
	}
}

// TestDrainDeadlineCancelsStragglers verifies the forced path: a straggler
// held past the drain deadline is cancelled through its context, Shutdown
// returns the deadline error, and the straggler still gets a response.
func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	eng, q := slowFixture(t)
	srv := New(eng, Options{CacheSize: -1, DefaultLimit: 1_000_000})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	held := make(chan []byte, 1)
	go func() {
		_, data := postQuery(t, ts.URL+"/query?stream=1&cache=0&limit=1000000", graphText(t, q))
		held <- data
	}()
	waitFor(t, func() bool { return srv.InFlight() == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("forced drain returned %v, want DeadlineExceeded", err)
	}
	data := <-held
	if !bytes.Contains(data, []byte("\"error\"")) && !bytes.Contains(data, []byte("\"done\"")) {
		t.Errorf("straggler got no terminal line: %q", data)
	}
}

// TestSlowReaderCannotStallDrain opens a streamed query and never reads
// the response: once TCP buffers fill, the handler blocks inside a write
// that cannot observe context cancellation. A forced drain must still
// complete within the write-unblock grace — the armed write deadline
// errors the blocked write and frees the admission slot — instead of
// hanging Shutdown forever on a client that walked away without closing.
func TestSlowReaderCannotStallDrain(t *testing.T) {
	eng, q := slowFixture(t)
	srv := New(eng, Options{CacheSize: -1, DefaultLimit: 1_000_000})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	conn, err := net.Dial("tcp", ts.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	body := graphText(t, q)
	fmt.Fprintf(conn, "POST /query?stream=1&cache=0&limit=10000000 HTTP/1.1\r\nHost: t\r\nContent-Type: text/plain\r\nContent-Length: %d\r\n\r\n%s",
		len(body), body)
	waitFor(t, func() bool { return srv.InFlight() == 1 })
	time.Sleep(300 * time.Millisecond) // let the unread stream fill the socket buffers

	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Errorf("forced drain returned %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("drain against a non-reading client took %v", elapsed)
	}
	if srv.InFlight() != 0 {
		t.Errorf("slow reader still pins %d admission slots after drain", srv.InFlight())
	}
}

// TestRequestValidation exercises the 4xx paths.
func TestRequestValidation(t *testing.T) {
	eng, q := datasetFixture(t)
	srv := New(eng, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name, url string
		body      []byte
		want      int
	}{
		{"garbage body", ts.URL + "/query", []byte("not a graph"), http.StatusBadRequest},
		{"empty body", ts.URL + "/query", nil, http.StatusBadRequest},
		{"bad limit", ts.URL + "/query?limit=zap", graphText(t, q), http.StatusBadRequest},
		{"bad timeout", ts.URL + "/query?timeout_ms=-3", graphText(t, q), http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, data := postQuery(t, c.url, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d (%s), want %d", c.name, resp.StatusCode, data, c.want)
		}
		var e errorResponse
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error envelope missing: %q", c.name, data)
		}
	}
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d, want 405", resp.StatusCode)
	}
}

// TestStatsAndMetrics verifies the observability endpoints reflect the
// engine's counters after traffic.
func TestStatsAndMetrics(t *testing.T) {
	eng, q := datasetFixture(t)
	srv := New(eng, Options{})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	body := graphText(t, q)
	postQuery(t, ts.URL+"/query", body)
	postQuery(t, ts.URL+"/query", body) // cache hit: no engine query

	resp, data := postQuery(t, ts.URL+"/stats", nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats status = %d, want 405", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(getResp.Body)
	getResp.Body.Close()
	var st StatsResponse
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("stats decode: %v (%s)", err, data)
	}
	if st.Engine.Queries != 1 {
		t.Errorf("engine queries = %d, want 1 (second request was a cache hit)", st.Engine.Queries)
	}
	if st.Admitted != 2 || st.Capacity == 0 || st.DatasetGraphs == 0 {
		t.Errorf("stats = %+v, want 2 admitted with capacity and dataset populated", st)
	}
	if st.ResultCache == nil || st.ResultCache.Hits != 1 {
		t.Errorf("result cache stats = %+v, want 1 hit", st.ResultCache)
	}
	if len(st.Indexes) != 1 || st.Indexes[0].Kind != "ftv" {
		t.Errorf("index stats = %+v", st.Indexes)
	}

	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mData, _ := io.ReadAll(mResp.Body)
	mResp.Body.Close()
	for _, want := range []string{
		"psi_engine_queries_total 1",
		"psi_server_admitted_total 2",
		"psi_server_cache_hits_total 1",
		"psi_server_draining 0",
	} {
		if !strings.Contains(string(mData), want) {
			t.Errorf("metrics missing %q:\n%s", want, mData)
		}
	}
}

// TestPerRequestTimeoutMapsToKill verifies ?timeout_ms lands on the
// engine's budget: the response is a killed result, not an opaque error,
// and killed results are not cached.
func TestPerRequestTimeoutMapsToKill(t *testing.T) {
	eng, q := slowFixture(t)
	// A DefaultLimit this high raises the request-limit cap so the huge
	// ?limit below is admitted rather than rejected as absurd.
	srv := New(eng, Options{CacheSize: 8, DefaultLimit: 1_000_000})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The engine has no budget, so the deadline surfaces as 504 here.
	resp, data := postQuery(t, ts.URL+"/query?timeout_ms=30&limit=10000000", graphText(t, q))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 on a budget-less engine (body %.120s)", resp.StatusCode, data)
	}

	// With a budget, the same overrun is a kill: HTTP 200, killed=true.
	beng, err := psi.NewEngine(eng.Graph(), psi.EngineOptions{Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer beng.Close()
	bsrv := New(beng, Options{CacheSize: 8, DefaultLimit: 1_000_000})
	bts := httptest.NewServer(bsrv)
	defer bts.Close()
	resp, data = postQuery(t, bts.URL+"/query?limit=10000000", graphText(t, q))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budgeted status = %d, want 200 (body %.120s)", resp.StatusCode, data)
	}
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatal(err)
	}
	if !qr.Killed {
		t.Errorf("response = %+v, want killed", qr)
	}
	if got := bsrv.cache.counters().Entries; got != 0 {
		t.Errorf("killed result was cached (%d entries)", got)
	}
}

// waitFor polls cond for up to 5 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
