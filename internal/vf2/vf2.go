// Package vf2 implements the VF2 subgraph isomorphism algorithm (Cordella,
// Foggia, Sansone, Vento, IEEE TPAMI 2004) for vertex-labeled undirected
// graphs, in its non-induced variant. VF2 is the verification algorithm
// underlying both FTV methods studied in the paper (Grapes and GGSX, §3.1.1).
//
// As the paper stresses, VF2 "does not define any order in which query
// vertices are selected": this implementation, like the original, picks the
// lowest-ID unmatched query vertex adjacent to the current partial match,
// which makes running time highly sensitive to the query's node numbering —
// the property the Ψ-framework's rewritings exploit.
package vf2

import (
	"context"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
)

// Matcher is a VF2 instance bound to a stored graph. Candidate generation
// uses the graph's precomputed label→vertex-range index, so construction is
// free and repeated queries avoid O(n) scans.
type Matcher struct {
	g *graph.Graph
}

// New builds a VF2 matcher over stored graph g.
func New(g *graph.Graph) *Matcher {
	return &Matcher{g: g}
}

// Name implements match.Matcher.
func (m *Matcher) Name() string { return "VF2" }

// Graph returns the stored graph this matcher verifies against.
func (m *Matcher) Graph() *graph.Graph { return m.g }

// Match implements match.Matcher by collecting the stream into a slice.
func (m *Matcher) Match(ctx context.Context, q *graph.Graph, limit int) ([]match.Embedding, error) {
	return match.CollectMatch(ctx, m, q, limit)
}

// MatchStream implements match.StreamMatcher: embeddings are emitted into
// sink as the search discovers them.
func (m *Matcher) MatchStream(ctx context.Context, q *graph.Graph, limit int, sink match.Sink) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	col := match.NewStreamCollector(limit, sink)
	if q.N() == 0 {
		return col.FinishStream(col.Found(match.Embedding{}))
	}
	if q.N() > m.g.N() || q.M() > m.g.M() {
		return nil
	}
	order, anchor := visitPlan(q)
	s := &state{
		q:      q,
		g:      m.g,
		order:  order,
		anchor: anchor,
		coreQ:  make([]int32, q.N()),
		coreG:  make([]int32, m.g.N()),
		inG:    make([]bool, m.g.N()),
		col:    col,
		budget: match.NewBudget(ctx),
	}
	for i := range s.coreQ {
		s.coreQ[i] = -1
	}
	for i := range s.coreG {
		s.coreG[i] = -1
	}
	return col.FinishStream(s.search(0))
}

// Contains reports whether q is subgraph-isomorphic to the stored graph
// (the decision problem solved in the FTV verification stage).
func (m *Matcher) Contains(ctx context.Context, q *graph.Graph) (bool, error) {
	embs, err := m.Match(ctx, q, 1)
	if err != nil {
		return false, err
	}
	return len(embs) > 0, nil
}

// Match runs VF2 once without retaining an index; convenient for one-shot
// verification calls (e.g. against extracted components in Grapes).
func Match(ctx context.Context, q, g *graph.Graph, limit int) ([]match.Embedding, error) {
	return New(g).Match(ctx, q, limit)
}

type state struct {
	q, g   *graph.Graph
	order  []int32 // static visit order: order[depth] is the query vertex matched at depth
	anchor []int32 // anchor[depth]: earlier-placed query neighbor of order[depth], or -1
	coreQ  []int32 // query vertex -> matched graph vertex or -1
	coreG  []int32 // graph vertex -> matched query vertex or -1
	inG    []bool  // graph vertex matched
	col    *match.Collector
	budget *match.Budget
}

// visitPlan precomputes the order in which query vertices are matched,
// together with each step's anchor. Because the matched query set at depth d
// is always exactly the first d vertices of the order, the original VF2 rule
// — "lowest-ID unmatched query vertex adjacent to the matched set, else
// lowest-ID unmatched vertex" — depends only on the depth, not on which
// graph vertices were chosen, so it can be computed once per Match instead
// of rescanning all query vertices at every search node. The anchor is the
// first already-placed neighbor in adjacency order, matching the original
// runtime selection exactly (tie-breaking is load-bearing: it is what the
// paper's rewritings steer).
func visitPlan(q *graph.Graph) (order, anchor []int32) {
	n := q.N()
	order = make([]int32, 0, n)
	anchor = make([]int32, 0, n)
	placed := make([]bool, n)
	for len(order) < n {
		next, lowest := -1, -1
		for u := 0; u < n && next < 0; u++ {
			if placed[u] {
				continue
			}
			if lowest < 0 {
				lowest = u
			}
			for _, w := range q.Neighbors(u) {
				if placed[w] {
					next = u
					break
				}
			}
		}
		if next < 0 {
			next = lowest
		}
		a := int32(-1)
		for _, w := range q.Neighbors(next) {
			if placed[w] {
				a = w
				break
			}
		}
		order = append(order, int32(next))
		anchor = append(anchor, a)
		placed[next] = true
	}
	return order, anchor
}

func (s *state) search(depth int) error {
	if depth == s.q.N() {
		return s.col.Found(match.Embedding(s.coreQ))
	}
	u := int(s.order[depth])
	// Candidate generation: if u has matched neighbors, only neighbors of
	// their images qualify (pruning rule 1: candidates must be directly
	// connected to already-matched vertices of g). Otherwise all
	// label-compatible vertices are candidates.
	var candidates []int32
	if a := s.anchor[depth]; a >= 0 {
		candidates = s.g.Neighbors(int(s.coreQ[a]))
	} else {
		candidates = s.g.VerticesWithLabel(s.q.Label(u))
	}
	for _, v := range candidates {
		if err := s.budget.Step(); err != nil {
			return err
		}
		if s.inG[v] || s.g.Label(int(v)) != s.q.Label(u) {
			continue
		}
		if !s.feasible(u, v) {
			continue
		}
		s.coreQ[u] = v
		s.coreG[v] = int32(u)
		s.inG[v] = true
		if err := s.search(depth + 1); err != nil {
			return err
		}
		s.coreQ[u] = -1
		s.coreG[v] = -1
		s.inG[v] = false
	}
	return nil
}

// feasible applies the consistency rule plus VF2's two lookahead pruning
// rules, in the non-induced (subgraph isomorphism) direction: query-side
// counts must not exceed graph-side counts.
func (s *state) feasible(u int, v int32) bool {
	// Consistency: every matched neighbor of u must map to a neighbor of v
	// through an edge with the query edge's label (this subsumes pruning
	// rule 1 for multiple matched neighbors).
	for _, w := range s.q.Neighbors(u) {
		if img := s.coreQ[w]; img >= 0 &&
			!s.g.HasEdgeLabeled(int(img), int(v), s.q.EdgeLabel(u, int(w))) {
			return false
		}
	}
	// Lookahead (rules 2 and 3): classify unmatched neighbors of u and of v
	// as "terminal" (adjacent to the matched set) or "new"; the query may
	// not demand more of either class than the graph vertex offers.
	termQ, newQ := 0, 0
	for _, w := range s.q.Neighbors(u) {
		if s.coreQ[w] >= 0 {
			continue
		}
		if s.adjacentToMatchedQ(w) {
			termQ++
		} else {
			newQ++
		}
	}
	termG, newG := 0, 0
	for _, w := range s.g.Neighbors(int(v)) {
		if s.inG[w] {
			continue
		}
		if s.adjacentToMatchedG(w) {
			termG++
		} else {
			newG++
		}
	}
	// Rule 2: terminal-count feasibility.
	if termQ > termG {
		return false
	}
	// Rule 3: total remaining-degree feasibility ("less adjacent
	// matched/candidate nodes than the corresponding figure in q").
	return termQ+newQ <= termG+newG
}

func (s *state) adjacentToMatchedQ(w int32) bool {
	for _, x := range s.q.Neighbors(int(w)) {
		if s.coreQ[x] >= 0 {
			return true
		}
	}
	return false
}

func (s *state) adjacentToMatchedG(w int32) bool {
	for _, x := range s.g.Neighbors(int(w)) {
		if s.inG[x] {
			return true
		}
	}
	return false
}
