package vf2

import (
	"context"
	"testing"

	"github.com/psi-graph/psi/internal/graph"
)

func TestNameAndGraph(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0}, nil)
	m := New(g)
	if m.Name() != "VF2" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Graph() != g {
		t.Error("Graph accessor")
	}
}

func TestContains(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 1, 0}, [][2]int{{0, 1}, {1, 2}})
	m := New(g)
	yes := graph.MustNew("q1", []graph.Label{0, 1}, [][2]int{{0, 1}})
	no := graph.MustNew("q2", []graph.Label{0, 0}, [][2]int{{0, 1}})
	ok, err := m.Contains(context.Background(), yes)
	if err != nil || !ok {
		t.Errorf("Contains(yes) = %v, %v", ok, err)
	}
	ok, err = m.Contains(context.Background(), no)
	if err != nil || ok {
		t.Errorf("Contains(no) = %v, %v", ok, err)
	}
}

func TestOneShotMatch(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	q := graph.MustNew("q", []graph.Label{0, 0}, [][2]int{{0, 1}})
	embs, err := Match(context.Background(), q, g, 100)
	if err != nil {
		t.Fatal(err)
	}
	// each of the 3 undirected edges in both directions
	if len(embs) != 6 {
		t.Errorf("got %d embeddings, want 6", len(embs))
	}
}

// The lookahead rules must never prune valid embeddings: the star K1,3 into
// a wheel (hub + rim), where terminal/new classification is exercised.
func TestLookaheadSoundness(t *testing.T) {
	// wheel: hub 0 connected to rim 1,2,3,4; rim cycle 1-2-3-4-1
	g := graph.MustNew("wheel", []graph.Label{0, 0, 0, 0, 0},
		[][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {2, 3}, {3, 4}, {4, 1}})
	// K1,3 star
	q := graph.MustNew("star", []graph.Label{0, 0, 0, 0},
		[][2]int{{0, 1}, {0, 2}, {0, 3}})
	embs, err := Match(context.Background(), q, g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(embs) == 0 {
		t.Fatal("star should embed into wheel")
	}
	// hub of the star can map to graph hub (deg 4): 4*3*2 = 24 mappings,
	// plus rim vertices (deg 3): 4 rim hubs × (3*2*1) = 24. Total 48.
	if len(embs) != 48 {
		t.Errorf("star-into-wheel embeddings = %d, want 48", len(embs))
	}
}

// First-match determinism: with the ID-ordered candidate selection, the
// first embedding of the identity query is the identity mapping.
func TestFirstMatchDeterministic(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	embs, err := Match(context.Background(), g, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(embs) != 1 {
		t.Fatal("self-match must succeed")
	}
	for v, img := range embs[0] {
		if int(img) != v {
			t.Errorf("first self-embedding should be identity, got %v", embs[0])
		}
	}
}

func TestEdgeCountShortCircuit(t *testing.T) {
	// q has more edges than g: must return immediately with no embeddings.
	g := graph.MustNew("g", []graph.Label{0, 0, 0}, [][2]int{{0, 1}})
	q := graph.MustNew("q", []graph.Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}})
	embs, err := Match(context.Background(), q, g, 10)
	if err != nil || len(embs) != 0 {
		t.Errorf("got %v, %v", embs, err)
	}
}
