// Package rewrite implements the isomorphic query rewritings of §6 of the
// paper. A rewriting permutes the node IDs of a query graph — keeping
// structure and labels intact — so that the resulting graph is isomorphic to
// the original (Definition 2) but presents its vertices to an algorithm's
// tie-breaking heuristics in a different, hopefully cheaper, order.
package rewrite

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/psi-graph/psi/internal/graph"
)

// Kind identifies a rewriting strategy.
type Kind uint8

const (
	// Orig leaves the query untouched (identity permutation).
	Orig Kind = iota
	// ILF (Increasing Label Frequency) assigns low node IDs to vertices
	// whose labels are infrequent in the stored graph.
	ILF
	// IND (Increasing Node Degree) assigns low node IDs to low-degree
	// query vertices.
	IND
	// DND (Decreasing Node Degree) assigns low node IDs to high-degree
	// query vertices.
	DND
	// ILFIND is ILF with ties broken in IND manner.
	ILFIND
	// ILFDND is ILF with ties broken in DND manner.
	ILFDND
	// Random applies a uniformly random permutation (used in §5 to study
	// the runtime variance of isomorphic query instances).
	Random
)

// Structured lists the five deterministic rewritings proposed in §6, in the
// order the paper presents them.
var Structured = []Kind{ILF, IND, DND, ILFIND, ILFDND}

// String returns the paper's name for the rewriting.
func (k Kind) String() string {
	switch k {
	case Orig:
		return "Orig"
	case ILF:
		return "ILF"
	case IND:
		return "IND"
	case DND:
		return "DND"
	case ILFIND:
		return "ILF+IND"
	case ILFDND:
		return "ILF+DND"
	case Random:
		return "Random"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// ParseKind maps a paper-style name (as produced by String) back to a Kind.
func ParseKind(s string) (Kind, error) {
	for _, k := range []Kind{Orig, ILF, IND, DND, ILFIND, ILFDND, Random} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("rewrite: unknown rewriting %q", s)
}

// Frequencies maps a vertex label to its number of occurrences in the stored
// graph (or, for FTV datasets, across the whole dataset). ILF-style
// rewritings consult it; labels absent from the map count as frequency 0,
// i.e. they sort first, which is the conservative choice: a label unseen in
// the stored graph is maximally selective.
type Frequencies map[graph.Label]int

// FrequenciesOf computes label frequencies for a single stored graph.
func FrequenciesOf(g *graph.Graph) Frequencies {
	return Frequencies(g.LabelFrequencies())
}

// FrequenciesOfDataset computes label frequencies across a dataset.
func FrequenciesOfDataset(gs []*graph.Graph) Frequencies {
	f := make(Frequencies)
	for _, g := range gs {
		for l, c := range g.LabelFrequencies() {
			f[l] += c
		}
	}
	return f
}

// Compute returns the node-ID permutation (perm[old] = new) realizing the
// rewriting k of query q against a stored graph with label frequencies f.
// The seed is used only by Random. Ties beyond each rewriting's declared
// keys are broken by original node ID, making every rewriting deterministic
// (the paper breaks ties "arbitrarily"; a fixed arbitrary choice keeps runs
// reproducible).
func Compute(q *graph.Graph, f Frequencies, k Kind, seed int64) graph.Permutation {
	n := q.N()
	switch k {
	case Orig:
		return graph.Identity(n)
	case Random:
		return graph.Permutation(rand.New(rand.NewSource(seed)).Perm(n))
	}
	order := make([]int, n) // order[rank] = old vertex ID
	for i := range order {
		order[i] = i
	}
	freq := func(v int) int { return f[q.Label(v)] }
	deg := q.Degree
	less := func(a, b int) bool { return a < b }
	switch k {
	case ILF:
		less = func(a, b int) bool {
			if freq(a) != freq(b) {
				return freq(a) < freq(b)
			}
			return a < b
		}
	case IND:
		less = func(a, b int) bool {
			if deg(a) != deg(b) {
				return deg(a) < deg(b)
			}
			return a < b
		}
	case DND:
		less = func(a, b int) bool {
			if deg(a) != deg(b) {
				return deg(a) > deg(b)
			}
			return a < b
		}
	case ILFIND:
		less = func(a, b int) bool {
			if freq(a) != freq(b) {
				return freq(a) < freq(b)
			}
			if deg(a) != deg(b) {
				return deg(a) < deg(b)
			}
			return a < b
		}
	case ILFDND:
		less = func(a, b int) bool {
			if freq(a) != freq(b) {
				return freq(a) < freq(b)
			}
			if deg(a) != deg(b) {
				return deg(a) > deg(b)
			}
			return a < b
		}
	}
	sort.Slice(order, func(i, j int) bool { return less(order[i], order[j]) })
	perm := make(graph.Permutation, n)
	for rank, old := range order {
		perm[old] = rank
	}
	return perm
}

// Apply computes the rewriting and returns the rewritten (isomorphic) query
// together with the permutation used, which callers need to map embeddings
// back to the original query's vertex numbering.
func Apply(q *graph.Graph, f Frequencies, k Kind, seed int64) (*graph.Graph, graph.Permutation) {
	perm := Compute(q, f, k, seed)
	return q.MustPermute(perm), perm
}

// MapBack translates an embedding found for the rewritten query into the
// original query's numbering: if perm[old]=new and embRewritten[new]=gVertex,
// then the original query vertex old maps to the same gVertex.
func MapBack(embRewritten []int32, perm graph.Permutation) []int32 {
	out := make([]int32, len(embRewritten))
	for old, nw := range perm {
		out[old] = embRewritten[nw]
	}
	return out
}

// RandomInstances generates count isomorphic instances of q using random
// permutations seeded from baseSeed (seed, seed+1, ...), as in the §5 study
// that uses 6 random isomorphic rewritings per query. The identity instance
// is NOT included.
func RandomInstances(q *graph.Graph, count int, baseSeed int64) []*graph.Graph {
	out := make([]*graph.Graph, count)
	for i := range out {
		perm := Compute(q, nil, Random, baseSeed+int64(i))
		out[i] = q.MustPermute(perm)
	}
	return out
}
