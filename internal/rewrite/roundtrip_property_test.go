package rewrite

// End-to-end round-trip property for the rewriting machinery — the corner
// the unit tests above leave open. The framework's soundness rests on one
// identity: for any rewriting kind k, matching the rewritten query and
// mapping each embedding back through the permutation yields exactly the
// embeddings of the unrewritten query. The tests check it against a real
// matcher (VF2) over random stored graphs, queries, frequency maps and
// seeds, for every kind including arbitrary random permutations.

import (
	"context"
	"fmt"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/vf2"
)

// roundTripKinds is every rewriting the framework races.
var roundTripKinds = []Kind{Orig, ILF, IND, DND, ILFIND, ILFDND, Random}

// embeddingLimit bounds enumeration; a sample that hits it is skipped (a
// truncated set cannot be compared — different enumeration orders truncate
// at different embeddings).
const embeddingLimit = 20000

// extractConnectedQuery grows a connected query of wantEdges edges from a
// random vertex of g, relabeling vertices to a compact range.
func extractConnectedQuery(r *rand.Rand, g *graph.Graph, wantEdges int) *graph.Graph {
	start := r.Intn(g.N())
	inQ := map[int32]bool{int32(start): true}
	type edge struct{ u, v int32 }
	var qEdges []edge
	has := func(a, b int32) bool {
		for _, e := range qEdges {
			if (e.u == a && e.v == b) || (e.u == b && e.v == a) {
				return true
			}
		}
		return false
	}
	for len(qEdges) < wantEdges {
		var frontier []edge
		for v := range inQ {
			for _, w := range g.Neighbors(int(v)) {
				if !has(v, w) {
					frontier = append(frontier, edge{v, w})
				}
			}
		}
		if len(frontier) == 0 {
			break
		}
		sort.Slice(frontier, func(i, j int) bool {
			if frontier[i].u != frontier[j].u {
				return frontier[i].u < frontier[j].u
			}
			return frontier[i].v < frontier[j].v
		})
		e := frontier[r.Intn(len(frontier))]
		qEdges = append(qEdges, e)
		inQ[e.u] = true
		inQ[e.v] = true
	}
	ids := make([]int32, 0, len(inQ))
	for v := range inQ {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	old2new := make(map[int32]int, len(ids))
	b := graph.NewBuilder("q")
	for i, v := range ids {
		old2new[v] = i
		b.AddVertex(g.Label(int(v)))
	}
	for _, e := range qEdges {
		if err := b.AddEdge(old2new[e.u], old2new[e.v]); err != nil {
			panic(err)
		}
	}
	return b.MustBuild()
}

// embeddingSet canonicalizes a set of embeddings for order-insensitive
// comparison (matchers enumerate in query-vertex order, which the rewriting
// deliberately changes).
func embeddingSet(embs []match.Embedding) []string {
	out := make([]string, len(embs))
	for i, e := range embs {
		out[i] = fmt.Sprint(e)
	}
	sort.Strings(out)
	return out
}

// randomFrequencies returns an adversarial frequency map: random counts,
// with some labels deliberately missing (frequency 0, the "unseen label"
// path of the ILF comparators).
func randomFrequencies(r *rand.Rand, labels int) Frequencies {
	f := make(Frequencies)
	for l := 0; l < labels; l++ {
		if r.Intn(4) == 0 {
			continue
		}
		f[graph.Label(l)] = r.Intn(50)
	}
	return f
}

// TestRewriteRoundTripProperty is the property itself: over random stored
// graphs, queries, frequency maps and seeds, every rewriting's embeddings
// mapped back through its permutation equal the unrewritten matcher's
// embeddings — and each mapped-back embedding independently verifies
// against the original query.
func TestRewriteRoundTripProperty(t *testing.T) {
	const samples = 25
	checked := 0
	for seed := int64(1); seed <= samples; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := randomConnected(r, 8+r.Intn(8), 3)
		q := extractConnectedQuery(r, g, 3+r.Intn(4))
		m := vf2.New(g)
		want, err := m.Match(context.Background(), q, embeddingLimit)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) == 0 || len(want) >= embeddingLimit {
			continue // nothing to round-trip, or truncated (incomparable)
		}
		wantSet := embeddingSet(want)
		freqs := []Frequencies{FrequenciesOf(g), randomFrequencies(r, 3), nil}
		for _, k := range roundTripKinds {
			for fi, f := range freqs {
				q2, perm := Apply(q, f, k, seed)
				if !graph.IsIsomorphismWitness(q, q2, perm) {
					t.Fatalf("seed %d %v freq#%d: permutation is not an isomorphism witness", seed, k, fi)
				}
				got, err := m.Match(context.Background(), q2, embeddingLimit)
				if err != nil {
					t.Fatal(err)
				}
				mapped := make([]match.Embedding, len(got))
				for i, e := range got {
					mapped[i] = MapBack(e, perm)
					if verr := match.VerifyEmbedding(q, g, mapped[i]); verr != nil {
						t.Fatalf("seed %d %v freq#%d: mapped-back embedding %v invalid for the original query: %v",
							seed, k, fi, mapped[i], verr)
					}
				}
				if gotSet := embeddingSet(mapped); !slices.Equal(gotSet, wantSet) {
					t.Fatalf("seed %d %v freq#%d: mapped-back embeddings %v, want %v",
						seed, k, fi, gotSet, wantSet)
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("property vacuous: no sample produced embeddings — enlarge the generator")
	}
}

// TestRewriteRoundTripArbitraryPermutations extends the property beyond the
// named kinds: any uniformly random permutation (fresh seeds, not just the
// Random kind raced in production) must round-trip the same way.
func TestRewriteRoundTripArbitraryPermutations(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	g := randomConnected(r, 12, 3)
	q := extractConnectedQuery(r, g, 4)
	m := vf2.New(g)
	want, err := m.Match(context.Background(), q, embeddingLimit)
	if err != nil {
		t.Fatal(err)
	}
	wantSet := embeddingSet(want)
	for trial := 0; trial < 30; trial++ {
		perm := Compute(q, nil, Random, r.Int63())
		q2 := q.MustPermute(perm)
		got, err := m.Match(context.Background(), q2, embeddingLimit)
		if err != nil {
			t.Fatal(err)
		}
		mapped := make([]match.Embedding, len(got))
		for i, e := range got {
			mapped[i] = MapBack(e, perm)
		}
		if gotSet := embeddingSet(mapped); !slices.Equal(gotSet, wantSet) {
			t.Fatalf("trial %d: mapped-back embeddings %v, want %v", trial, gotSet, wantSet)
		}
	}
}

// TestMapBackIdentity pins the algebra at the boundary: mapping back
// through the identity permutation is the identity, and MapBack composed
// with the permutation's definition (perm[old] = new) recovers every
// original position.
func TestMapBackIdentity(t *testing.T) {
	emb := []int32{7, 3, 9, 1}
	id := graph.Identity(len(emb))
	back := MapBack(emb, id)
	for i := range emb {
		if back[i] != emb[i] {
			t.Fatalf("MapBack under identity moved position %d: %v -> %v", i, emb, back)
		}
	}
}
