package rewrite

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/psi-graph/psi/internal/graph"
)

// fig5Graph reconstructs the spirit of Fig. 5 of the paper: seven vertices
// with labels A A A B B C C (A=0, B=1, C=2) and stored-graph frequencies
// A=20, B=15, C=10.
func fig5Graph(t *testing.T) (*graph.Graph, Frequencies) {
	t.Helper()
	const A, B, C = 0, 1, 2
	g, err := graph.New("fig5",
		[]graph.Label{A, A, A, B, B, C, C},
		[][2]int{{0, 1}, {0, 3}, {1, 2}, {1, 4}, {2, 5}, {3, 6}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	return g, Frequencies{A: 20, B: 15, C: 10}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Orig: "Orig", ILF: "ILF", IND: "IND", DND: "DND",
		ILFIND: "ILF+IND", ILFDND: "ILF+DND", Random: "Random",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Errorf("unknown kind string = %q", Kind(99).String())
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{Orig, ILF, IND, DND, ILFIND, ILFDND, Random} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Error("expected error for unknown name")
	}
}

func TestOrigIsIdentity(t *testing.T) {
	g, f := fig5Graph(t)
	perm := Compute(g, f, Orig, 0)
	for v, nw := range perm {
		if v != nw {
			t.Fatalf("Orig permutation not identity: %v", perm)
		}
	}
}

// ILF invariant: new IDs are ordered by non-decreasing stored-graph label
// frequency. With freqs C(10) < B(15) < A(20): C-vertices get IDs {0,1},
// B-vertices {2,3}, A-vertices {4,5,6}.
func TestILFOrdersByLabelFrequency(t *testing.T) {
	g, f := fig5Graph(t)
	h, perm := Apply(g, f, ILF, 0)
	if !graph.IsIsomorphismWitness(g, h, perm) {
		t.Fatal("ILF must be an isomorphism")
	}
	wantLabelAt := []graph.Label{2, 2, 1, 1, 0, 0, 0} // C C B B A A A
	for v, want := range wantLabelAt {
		if h.Label(v) != want {
			t.Errorf("ILF: label at new ID %d = %d, want %d", v, h.Label(v), want)
		}
	}
}

func TestINDOrdersByIncreasingDegree(t *testing.T) {
	g, f := fig5Graph(t)
	h, perm := Apply(g, f, IND, 0)
	if !graph.IsIsomorphismWitness(g, h, perm) {
		t.Fatal("IND must be an isomorphism")
	}
	for v := 1; v < h.N(); v++ {
		if h.Degree(v) < h.Degree(v-1) {
			t.Fatalf("IND: degree at ID %d (%d) < degree at ID %d (%d)",
				v, h.Degree(v), v-1, h.Degree(v-1))
		}
	}
}

func TestDNDOrdersByDecreasingDegree(t *testing.T) {
	g, f := fig5Graph(t)
	h, perm := Apply(g, f, DND, 0)
	if !graph.IsIsomorphismWitness(g, h, perm) {
		t.Fatal("DND must be an isomorphism")
	}
	for v := 1; v < h.N(); v++ {
		if h.Degree(v) > h.Degree(v-1) {
			t.Fatalf("DND: degree at ID %d (%d) > degree at ID %d (%d)",
				v, h.Degree(v), v-1, h.Degree(v-1))
		}
	}
}

// ILF+IND and ILF+DND must respect label frequency first, then degree
// within equal-frequency groups. The paper notes any ILF+IND rewriting is
// also a valid ILF rewriting.
func TestILFCombosRespectBothKeys(t *testing.T) {
	g, f := fig5Graph(t)
	for _, k := range []Kind{ILFIND, ILFDND} {
		h, perm := Apply(g, f, k, 0)
		if !graph.IsIsomorphismWitness(g, h, perm) {
			t.Fatalf("%v must be an isomorphism", k)
		}
		// label-frequency blocks identical to plain ILF
		wantLabelAt := []graph.Label{2, 2, 1, 1, 0, 0, 0}
		for v, want := range wantLabelAt {
			if h.Label(v) != want {
				t.Errorf("%v: label at new ID %d = %d, want %d", k, v, h.Label(v), want)
			}
		}
		// within each block, degree monotone (increasing for ILFIND,
		// decreasing for ILFDND)
		blocks := [][2]int{{0, 2}, {2, 4}, {4, 7}}
		for _, blk := range blocks {
			for v := blk[0] + 1; v < blk[1]; v++ {
				if k == ILFIND && h.Degree(v) < h.Degree(v-1) {
					t.Errorf("ILF+IND: degrees not increasing within block at %d", v)
				}
				if k == ILFDND && h.Degree(v) > h.Degree(v-1) {
					t.Errorf("ILF+DND: degrees not decreasing within block at %d", v)
				}
			}
		}
	}
}

func TestRandomIsSeededDeterministic(t *testing.T) {
	g, _ := fig5Graph(t)
	p1 := Compute(g, nil, Random, 7)
	p2 := Compute(g, nil, Random, 7)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed must give same permutation")
		}
	}
	p3 := Compute(g, nil, Random, 8)
	same := true
	for i := range p1 {
		if p1[i] != p3[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should (overwhelmingly) give different permutations")
	}
}

func TestAllKindsProduceValidIsomorphisms(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnected(r, 3+r.Intn(15), 4)
		freq := FrequenciesOf(g)
		for _, k := range []Kind{Orig, ILF, IND, DND, ILFIND, ILFDND, Random} {
			h, perm := Apply(g, freq, k, seed)
			if !graph.IsIsomorphismWitness(g, h, perm) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	g, f := fig5Graph(t)
	for _, k := range Structured {
		p1 := Compute(g, f, k, 0)
		p2 := Compute(g, f, k, 0)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("%v not deterministic", k)
			}
		}
	}
}

func TestMapBack(t *testing.T) {
	g, f := fig5Graph(t)
	_, perm := Apply(g, f, ILF, 0)
	// fabricate an embedding of the rewritten query: new vertex i -> 100+i
	embNew := make([]int32, g.N())
	for i := range embNew {
		embNew[i] = int32(100 + i)
	}
	embOld := MapBack(embNew, perm)
	for old := range embOld {
		if embOld[old] != int32(100+perm[old]) {
			t.Fatalf("MapBack wrong at %d: got %d want %d", old, embOld[old], 100+perm[old])
		}
	}
}

func TestRandomInstances(t *testing.T) {
	g, _ := fig5Graph(t)
	insts := RandomInstances(g, 6, 42)
	if len(insts) != 6 {
		t.Fatalf("got %d instances", len(insts))
	}
	for i, h := range insts {
		if h.N() != g.N() || h.M() != g.M() {
			t.Errorf("instance %d has wrong size", i)
		}
	}
}

func TestFrequenciesOfDataset(t *testing.T) {
	g1 := graph.MustNew("a", []graph.Label{0, 0, 1}, nil)
	g2 := graph.MustNew("b", []graph.Label{1, 2}, nil)
	f := FrequenciesOfDataset([]*graph.Graph{g1, g2})
	if f[0] != 2 || f[1] != 2 || f[2] != 1 {
		t.Errorf("dataset frequencies = %v", f)
	}
}

// Missing labels in the frequency map sort first (treated as frequency 0).
func TestILFMissingLabelSortsFirst(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{5, 9}, [][2]int{{0, 1}})
	f := Frequencies{5: 10} // label 9 unknown => freq 0
	h, _ := Apply(g, f, ILF, 0)
	if h.Label(0) != 9 {
		t.Errorf("unknown label should receive ID 0, labels now %v", h.Labels())
	}
}

func randomConnected(r *rand.Rand, n, labels int) *graph.Graph {
	b := graph.NewBuilder("rc")
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(r.Intn(labels)))
	}
	// random spanning tree first, then extra edges
	for v := 1; v < n; v++ {
		u := r.Intn(v)
		if err := b.AddEdge(u, v); err != nil {
			panic(err)
		}
	}
	extra := r.Intn(n)
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !b.HasEdgePending(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return b.MustBuild()
}
