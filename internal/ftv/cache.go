package ftv

// An iGQ-style query-result cache (Wang, Ntarmos, Triantafillou, EDBT 2016
// — reference [19] of the reproduced paper, which notes it "employs caching
// on top of any proposed FTV method to improve performance"). The cache
// exploits both containment directions between a new query q and a cached
// query q′:
//
//   - q′ ⊆ q (cached query is a subgraph): every answer graph of q must
//     also contain q′, so candidates(q) shrinks to answers(q′).
//   - q ⊆ q′ (cached query is a supergraph): every answer graph of q′
//     certainly contains q, so those candidates skip verification.
//
// Both tests are sub-iso between *query-sized* graphs, orders of magnitude
// cheaper than verification against dataset graphs.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/vf2"
)

// CacheStats counts cache effectiveness.
type CacheStats struct {
	// ExactHits are answers served without any verification.
	ExactHits int
	// SubPrunes counts candidates removed via cached subgraph queries.
	SubPrunes int
	// SuperAccepts counts verifications skipped via cached supergraph
	// queries.
	SuperAccepts int
	// Verifications counts actual Verify calls performed.
	Verifications int
	// Misses counts queries answered without any cache help.
	Misses int
}

// cacheEntry is one remembered (query, answer-set) pair.
type cacheEntry struct {
	key     string
	q       *graph.Graph
	answers map[int]bool
}

// Cached wraps an FTV index with an iGQ-style result cache. Safe for
// concurrent use. The zero value is not usable; construct with NewCached.
type Cached struct {
	index      ftvIndex
	maxEntries int
	pool       *exec.Pool // nil: verify candidates sequentially

	mu      sync.Mutex
	entries []cacheEntry // FIFO eviction
	stats   CacheStats
}

// ftvIndex is the subset of Index that Cached consumes; declared locally so
// the wrapper also works with test doubles.
type ftvIndex interface {
	Name() string
	Dataset() []*graph.Graph
	Filter(q *graph.Graph) []int
	Verify(ctx context.Context, q *graph.Graph, graphID int) (bool, error)
}

// NewCached wraps x with a cache holding up to maxEntries remembered
// queries (0 means 128).
func NewCached(x Index, maxEntries int) *Cached {
	if maxEntries <= 0 {
		maxEntries = 128
	}
	return &Cached{index: x, maxEntries: maxEntries}
}

// NewCachedParallel is NewCached with the residual verifications (the
// candidates the cache could not resolve) fanned out across pool p; p == nil
// selects the shared default pool. Answers and cache statistics are
// identical to the sequential wrapper.
func NewCachedParallel(x Index, maxEntries int, p *exec.Pool) *Cached {
	c := NewCached(x, maxEntries)
	if p == nil {
		p = exec.Default()
	}
	c.pool = p
	return c
}

// Name identifies the wrapped configuration.
func (c *Cached) Name() string { return c.index.Name() + "+cache" }

// Dataset implements Index.
func (c *Cached) Dataset() []*graph.Graph { return c.index.Dataset() }

// Filter implements Index by delegation (the cache acts at Answer level).
func (c *Cached) Filter(q *graph.Graph) []int { return c.index.Filter(q) }

// Verify implements Index by delegation.
func (c *Cached) Verify(ctx context.Context, q *graph.Graph, graphID int) (bool, error) {
	return c.index.Verify(ctx, q, graphID)
}

// Stats returns a snapshot of the cache counters.
func (c *Cached) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Len reports the number of cached entries.
func (c *Cached) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Answer runs the decision pipeline with cache assistance and remembers the
// result. Answers are identical to the uncached pipeline.
func (c *Cached) Answer(ctx context.Context, q *graph.Graph) ([]int, error) {
	key := CanonicalKey(q)
	// Exact hit?
	c.mu.Lock()
	for _, e := range c.entries {
		if e.key == key {
			c.stats.ExactHits++
			out := setToSlice(e.answers)
			c.mu.Unlock()
			return out, nil
		}
	}
	// Snapshot entries for containment tests outside the lock.
	snapshot := append([]cacheEntry(nil), c.entries...)
	c.mu.Unlock()

	candidates := make(map[int]bool)
	for _, id := range c.index.Filter(q) {
		candidates[id] = true
	}
	definite := make(map[int]bool)
	var subPrunes, superAccepts int
	for _, e := range snapshot {
		// q′ ⊆ q: intersect candidates with answers(q′).
		if e.q.N() <= q.N() && e.q.M() <= q.M() {
			ok, err := containedIn(ctx, e.q, q)
			if err != nil {
				return nil, err
			}
			if ok {
				for id := range candidates {
					if !e.answers[id] {
						delete(candidates, id)
						subPrunes++
					}
				}
			}
		}
		// q ⊆ q′: answers(q′) are definite positives.
		if q.N() <= e.q.N() && q.M() <= e.q.M() {
			ok, err := containedIn(ctx, q, e.q)
			if err != nil {
				return nil, err
			}
			if ok {
				for id := range e.answers {
					if candidates[id] && !definite[id] {
						definite[id] = true
						superAccepts++
					}
				}
			}
		}
	}

	answers := make(map[int]bool, len(candidates))
	var toVerify []int
	for id := range candidates {
		if definite[id] {
			answers[id] = true
		} else {
			toVerify = append(toVerify, id)
		}
	}
	sort.Ints(toVerify)
	verifications := len(toVerify)
	if c.pool != nil {
		verified, err := VerifyCandidates(ctx, c.pool, toVerify, func(gctx context.Context, id int) (bool, error) {
			return c.index.Verify(gctx, q, id)
		})
		if err != nil {
			return nil, err
		}
		for _, id := range verified {
			answers[id] = true
		}
	} else {
		for _, id := range toVerify {
			ok, err := c.index.Verify(ctx, q, id)
			if err != nil {
				return nil, err
			}
			if ok {
				answers[id] = true
			}
		}
	}

	c.mu.Lock()
	c.stats.SubPrunes += subPrunes
	c.stats.SuperAccepts += superAccepts
	c.stats.Verifications += verifications
	if subPrunes == 0 && superAccepts == 0 {
		c.stats.Misses++
	}
	// Another goroutine may have inserted the same key meanwhile; keep a
	// single copy.
	dup := false
	for _, e := range c.entries {
		if e.key == key {
			dup = true
			break
		}
	}
	if !dup {
		c.entries = append(c.entries, cacheEntry{key: key, q: q, answers: answers})
		if len(c.entries) > c.maxEntries {
			c.entries = c.entries[1:]
		}
	}
	c.mu.Unlock()
	return setToSlice(answers), nil
}

// containedIn reports q1 ⊆ q2 (both query-sized graphs).
func containedIn(ctx context.Context, q1, q2 *graph.Graph) (bool, error) {
	embs, err := vf2.Match(ctx, q1, q2, 1)
	if err != nil {
		return false, err
	}
	return len(embs) > 0, nil
}

// CanonicalKey serializes q after a deterministic structure-driven vertex
// ordering. It is *not* a complete canonical form (graph canonization is
// GI-hard): isomorphic queries may receive different keys — a missed hit,
// never a wrong one — while unequal keys always denote unequal serialized
// structures, so exact hits are sound.
func CanonicalKey(q *graph.Graph) string {
	n := q.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sig := make([]string, n)
	for v := 0; v < n; v++ {
		nb := make([]graph.Label, 0, q.Degree(v))
		for _, w := range q.Neighbors(v) {
			nb = append(nb, q.Label(int(w)))
		}
		sort.Slice(nb, func(i, j int) bool { return nb[i] < nb[j] })
		sig[v] = fmt.Sprintf("%d|%d|%v", q.Label(v), q.Degree(v), nb)
	}
	sort.Slice(order, func(i, j int) bool {
		if sig[order[i]] != sig[order[j]] {
			return sig[order[i]] < sig[order[j]]
		}
		return order[i] < order[j]
	})
	rank := make([]int, n)
	for r, v := range order {
		rank[v] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n%d;", n)
	for _, v := range order {
		fmt.Fprintf(&b, "v%d;", q.Label(v))
	}
	edges := make([][3]int, 0, q.M())
	q.LabeledEdges(func(u, v int, l graph.Label) {
		a, z := rank[u], rank[v]
		if a > z {
			a, z = z, a
		}
		edges = append(edges, [3]int{a, z, int(l)})
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		if edges[i][1] != edges[j][1] {
			return edges[i][1] < edges[j][1]
		}
		return edges[i][2] < edges[j][2]
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "e%d,%d,%d;", e[0], e[1], e[2])
	}
	return b.String()
}

func setToSlice(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
