package ftv

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/vf2"
)

// bruteIndex is a no-filter Index over a dataset, verifying with VF2; it
// counts Verify calls so tests can prove the cache avoids work.
type bruteIndex struct {
	ds      []*graph.Graph
	mu      sync.Mutex
	verifys int
}

func (b *bruteIndex) Name() string            { return "brute" }
func (b *bruteIndex) Dataset() []*graph.Graph { return b.ds }
func (b *bruteIndex) Filter(*graph.Graph) []int {
	out := make([]int, len(b.ds))
	for i := range out {
		out[i] = i
	}
	return out
}
func (b *bruteIndex) Verify(ctx context.Context, q *graph.Graph, id int) (bool, error) {
	b.mu.Lock()
	b.verifys++
	b.mu.Unlock()
	embs, err := vf2.Match(ctx, q, b.ds[id], 1)
	return len(embs) > 0, err
}
func (b *bruteIndex) verifyCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.verifys
}

func testDataset(r *rand.Rand, numGraphs, n int) []*graph.Graph {
	ds := make([]*graph.Graph, numGraphs)
	for i := range ds {
		b := graph.NewBuilder("g")
		for v := 0; v < n; v++ {
			b.AddVertex(graph.Label(r.Intn(3)))
		}
		for v := 1; v < n; v++ {
			if err := b.AddEdge(r.Intn(v), v); err != nil {
				panic(err)
			}
		}
		for e := 0; e < n; e++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !b.HasEdgePending(u, v) {
				if err := b.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
		ds[i] = b.MustBuild()
	}
	return ds
}

func extractSub(r *rand.Rand, g *graph.Graph, k int) *graph.Graph {
	start := r.Intn(g.N())
	verts := []int32{int32(start)}
	seen := map[int32]bool{int32(start): true}
	for len(verts) < k {
		v := verts[r.Intn(len(verts))]
		nb := g.Neighbors(int(v))
		if len(nb) == 0 {
			break
		}
		w := nb[r.Intn(len(nb))]
		if !seen[w] {
			seen[w] = true
			verts = append(verts, w)
		}
	}
	sub, _ := g.InducedSubgraph("q", verts)
	return sub
}

func TestCachedAnswerMatchesUncached(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds := testDataset(r, 5, 10)
		plain := &bruteIndex{ds: ds}
		cached := NewCached(plain, 16)
		for trial := 0; trial < 6; trial++ {
			q := extractSub(r, ds[r.Intn(len(ds))], 2+r.Intn(4))
			want, err := Answer(context.Background(), plain, q)
			if err != nil {
				return false
			}
			got, err := cached.Answer(context.Background(), q)
			if err != nil {
				return false
			}
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCachedExactHitSkipsVerification(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ds := testDataset(r, 4, 10)
	idx := &bruteIndex{ds: ds}
	cached := NewCached(idx, 16)
	q := extractSub(r, ds[0], 4)
	first, err := cached.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	before := idx.verifyCount()
	second, err := cached.Answer(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if idx.verifyCount() != before {
		t.Error("exact hit must not verify anything")
	}
	if len(first) != len(second) {
		t.Error("hit answer differs")
	}
	if cached.Stats().ExactHits != 1 {
		t.Errorf("stats = %+v", cached.Stats())
	}
}

// A cached subgraph answer must prune candidates of a bigger query: after
// caching a 3-vertex query whose answer excludes some graphs, a supergraph
// query must not verify against the excluded graphs.
func TestCachedSubgraphPruning(t *testing.T) {
	// dataset: g0 contains the path A-B-C; g1 does not contain label C.
	g0 := graph.MustNew("g0", []graph.Label{0, 1, 2, 0}, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	g1 := graph.MustNew("g1", []graph.Label{0, 1, 0, 1}, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	idx := &bruteIndex{ds: []*graph.Graph{g0, g1}}
	cached := NewCached(idx, 16)
	small := graph.MustNew("s", []graph.Label{1, 2}, [][2]int{{0, 1}}) // B-C edge
	if _, err := cached.Answer(context.Background(), small); err != nil {
		t.Fatal(err)
	}
	// big query contains B-C: g1 can be pruned without verification.
	big := graph.MustNew("b", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	before := idx.verifyCount()
	ans, err := cached.Answer(context.Background(), big)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 || ans[0] != 0 {
		t.Fatalf("answer = %v, want [0]", ans)
	}
	if idx.verifyCount()-before != 1 {
		t.Errorf("expected exactly 1 verification (g1 pruned), got %d", idx.verifyCount()-before)
	}
	if cached.Stats().SubPrunes == 0 {
		t.Error("expected subgraph prunes to be counted")
	}
}

// A cached supergraph answer must mark candidates as definite positives.
func TestCachedSupergraphAccept(t *testing.T) {
	g0 := graph.MustNew("g0", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	idx := &bruteIndex{ds: []*graph.Graph{g0}}
	cached := NewCached(idx, 16)
	big := graph.MustNew("b", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	if _, err := cached.Answer(context.Background(), big); err != nil {
		t.Fatal(err)
	}
	// smaller query contained in the cached one: g0 accepted for free.
	small := graph.MustNew("s", []graph.Label{0, 1}, [][2]int{{0, 1}})
	before := idx.verifyCount()
	ans, err := cached.Answer(context.Background(), small)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 {
		t.Fatalf("answer = %v", ans)
	}
	if idx.verifyCount() != before {
		t.Error("supergraph hit should skip verification entirely")
	}
	if cached.Stats().SuperAccepts == 0 {
		t.Error("expected supergraph accepts to be counted")
	}
}

func TestCachedEviction(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ds := testDataset(r, 3, 12)
	cached := NewCached(&bruteIndex{ds: ds}, 2)
	for i := 0; i < 5; i++ {
		q := extractSub(r, ds[i%3], 2+i%3)
		if _, err := cached.Answer(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if cached.Len() > 2 {
		t.Errorf("cache holds %d entries, max 2", cached.Len())
	}
}

func TestCachedName(t *testing.T) {
	cached := NewCached(&bruteIndex{}, 0)
	if cached.Name() != "brute+cache" {
		t.Errorf("Name = %q", cached.Name())
	}
}

func TestCanonicalKeyProperties(t *testing.T) {
	// isomorphic graphs with this simple shape get the same key
	a := graph.MustNew("a", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	b := graph.MustNew("b", []graph.Label{2, 1, 0}, [][2]int{{0, 1}, {1, 2}})
	if CanonicalKey(a) != CanonicalKey(b) {
		t.Error("relabeled path should share a canonical key")
	}
	// different structure must differ
	c := graph.MustNew("c", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {0, 2}})
	if CanonicalKey(a) == CanonicalKey(c) {
		t.Error("different structures must have different keys")
	}
	// edge labels distinguish keys
	bb := graph.NewBuilder("d")
	bb.AddVertex(0)
	bb.AddVertex(1)
	if err := bb.AddLabeledEdge(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	d := bb.MustBuild()
	e := graph.MustNew("e", []graph.Label{0, 1}, [][2]int{{0, 1}})
	if CanonicalKey(d) == CanonicalKey(e) {
		t.Error("edge labels must affect the key")
	}
}

func TestCachedConcurrentAnswers(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	ds := testDataset(r, 4, 10)
	plain := &bruteIndex{ds: ds}
	cached := NewCached(plain, 32)
	queries := make([]*graph.Graph, 12)
	for i := range queries {
		queries[i] = extractSub(r, ds[i%4], 2+i%4)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(queries)*4)
	for rep := 0; rep < 4; rep++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q *graph.Graph) {
				defer wg.Done()
				got, err := cached.Answer(context.Background(), q)
				if err != nil {
					errs <- err
					return
				}
				want, err := Answer(context.Background(), plain, q)
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(want) {
					errs <- context.DeadlineExceeded // any sentinel
				}
			}(q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
