package ftv

import (
	"context"
	"fmt"
	"testing"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/graph"
)

func TestPathKeyRoundTrip(t *testing.T) {
	seqs := [][]graph.Label{
		{0}, {1, 2}, {5, 5, 5}, {1000000, 0, 3},
	}
	for _, s := range seqs {
		got := DecodePathKey(PathKey(s))
		if len(got) != len(s) {
			t.Fatalf("round trip of %v = %v", s, got)
		}
		for i := range s {
			if got[i] != s[i] {
				t.Fatalf("round trip of %v = %v", s, got)
			}
		}
	}
}

func TestPathKeyDistinguishesSequences(t *testing.T) {
	a := PathKey([]graph.Label{1, 2})
	b := PathKey([]graph.Label{2, 1})
	c := PathKey([]graph.Label{1, 2, 0})
	if a == b || a == c || b == c {
		t.Error("distinct sequences must have distinct keys")
	}
}

func TestExtractFeaturesPathGraph(t *testing.T) {
	// path 0(a)-1(b)-2(c): directed paths: a-b, b-a, b-c, c-b, a-b-c, c-b-a
	g := graph.MustNew("p", []graph.Label{10, 11, 12}, [][2]int{{0, 1}, {1, 2}})
	feats := ExtractFeatures(g, 4, true)
	if len(feats) != 6 {
		t.Fatalf("got %d features, want 6", len(feats))
	}
	f := feats[MakeKey([]graph.Label{10, 11, 12})]
	if f == nil || f.Count != 1 {
		t.Fatalf("a-b-c feature = %+v", f)
	}
	if len(f.Locations) != 3 {
		t.Errorf("a-b-c locations = %v, want all 3 vertices", f.Locations)
	}
	f2 := feats[MakeKey([]graph.Label{11, 10})]
	if f2 == nil || f2.Count != 1 {
		t.Fatalf("b-a feature = %+v", f2)
	}
	if len(f2.Locations) != 2 {
		t.Errorf("b-a locations = %v", f2.Locations)
	}
}

func TestExtractFeaturesCountsMultipleOccurrences(t *testing.T) {
	// star: center label 0, two leaves label 1: path 1-0 occurs twice
	g := graph.MustNew("s", []graph.Label{0, 1, 1}, [][2]int{{0, 1}, {0, 2}})
	feats := ExtractFeatures(g, 2, false)
	f := feats[MakeKey([]graph.Label{1, 0})]
	if f == nil || f.Count != 2 {
		t.Fatalf("leaf-center feature = %+v, want count 2", f)
	}
	if f.Locations != nil {
		t.Error("locations must be nil when not requested")
	}
	// 1-0-1 path occurs twice (both directions)
	f2 := feats[MakeKey([]graph.Label{1, 0, 1})]
	if f2 == nil || f2.Count != 2 {
		t.Fatalf("leaf-center-leaf feature = %+v, want count 2", f2)
	}
}

func TestQueryFeaturesMaximalOnly(t *testing.T) {
	// path a-b-c with maxLen 4: maximal paths (DFS from every start) are
	// a-b-c, c-b-a, plus b-a and b-c (starting mid-path, immediately
	// stuck). Prefixes of longer DFS walks, like a-b, must NOT appear.
	g := graph.MustNew("p", []graph.Label{10, 11, 12}, [][2]int{{0, 1}, {1, 2}})
	feats := QueryFeatures(g, 4)
	if len(feats) != 4 {
		t.Fatalf("got %d query features, want 4", len(feats))
	}
	if feats[MakeKey([]graph.Label{10, 11, 12})] == nil {
		t.Error("missing maximal path a-b-c")
	}
	if feats[MakeKey([]graph.Label{11, 10})] == nil {
		t.Error("missing maximal path b-a")
	}
	if feats[MakeKey([]graph.Label{10, 11})] != nil {
		t.Error("non-maximal prefix a-b must not be a query feature")
	}
}

func TestQueryFeaturesEdgelessQuery(t *testing.T) {
	g := graph.MustNew("v", []graph.Label{0}, nil)
	if len(QueryFeatures(g, 4)) != 0 {
		t.Error("edgeless query has no path features")
	}
}

// fakeIndex exercises the Answer pipeline without a real index.
type fakeIndex struct {
	ds       []*graph.Graph
	filtered []int
}

func (f *fakeIndex) Name() string            { return "fake" }
func (f *fakeIndex) Dataset() []*graph.Graph { return f.ds }
func (f *fakeIndex) Filter(*graph.Graph) []int {
	return f.filtered
}
func (f *fakeIndex) Verify(ctx context.Context, q *graph.Graph, id int) (bool, error) {
	return id%2 == 0, nil
}

func TestAnswerPipeline(t *testing.T) {
	x := &fakeIndex{filtered: []int{0, 1, 2, 3}}
	got, err := Answer(context.Background(), x, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Answer = %v, want [0 2]", got)
	}
}

func TestMakeKeyPackedRoundTrip(t *testing.T) {
	seqs := [][]graph.Label{
		{}, {0}, {0, 0}, {1, 2}, {5, 5, 5}, {4095, 0, 4095}, {1, 2, 3, 4, 5},
	}
	for _, s := range seqs {
		k := MakeKey(s)
		if k.packed == 0 {
			t.Errorf("MakeKey(%v) did not pack (str fallback %q)", s, k.str)
		}
		got := k.Labels()
		if len(got) != len(s) {
			t.Fatalf("Labels() of %v = %v", s, got)
		}
		for i := range s {
			if got[i] != s[i] {
				t.Fatalf("Labels() of %v = %v", s, got)
			}
		}
	}
}

func TestMakeKeyFallback(t *testing.T) {
	big := []graph.Label{4096, 1}           // label beyond 12 bits
	long := []graph.Label{1, 2, 3, 4, 5, 6} // more than 5 labels
	for _, s := range [][]graph.Label{big, long} {
		k := MakeKey(s)
		if k.packed != 0 || k.str == "" {
			t.Errorf("MakeKey(%v) = %+v, want string fallback", s, k)
		}
		got := k.Labels()
		for i := range s {
			if got[i] != s[i] {
				t.Fatalf("fallback Labels() of %v = %v", s, got)
			}
		}
	}
}

func TestMakeKeyDistinguishesSequences(t *testing.T) {
	seqs := [][]graph.Label{
		{}, {0}, {0, 0}, {0, 0, 0}, {1}, {1, 0}, {0, 1}, {1, 2}, {2, 1},
		{1, 2, 0}, {4095}, {4095, 4095}, {4096}, {1, 2, 3, 4, 5, 6},
	}
	seen := make(map[Key]int)
	for i, s := range seqs {
		k := MakeKey(s)
		if j, dup := seen[k]; dup {
			t.Errorf("sequences %v and %v share key %+v", seqs[j], s, k)
		}
		seen[k] = i
	}
}

// slowIndex adds artificial per-candidate work so parallel speedup and
// cancellation behavior are observable.
type slowIndex struct {
	fakeIndex
	errOn int // graph ID whose verification fails, -1 for none
}

func (s *slowIndex) Verify(ctx context.Context, q *graph.Graph, id int) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	if id == s.errOn {
		return false, fmt.Errorf("verify %d failed", id)
	}
	return id%3 != 1, nil
}

func TestParallelAnswerMatchesSequential(t *testing.T) {
	ids := make([]int, 40)
	for i := range ids {
		ids[i] = i
	}
	x := &slowIndex{fakeIndex: fakeIndex{filtered: ids}, errOn: -1}
	want, err := Answer(context.Background(), x, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		p := exec.New(workers)
		got, err := ParallelAnswer(context.Background(), x, nil, p)
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: ParallelAnswer = %v, want %v", workers, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: ParallelAnswer = %v, want %v", workers, got, want)
			}
		}
	}
}

func TestParallelAnswerPropagatesError(t *testing.T) {
	ids := make([]int, 20)
	for i := range ids {
		ids[i] = i
	}
	x := &slowIndex{fakeIndex: fakeIndex{filtered: ids}, errOn: 7}
	p := exec.New(4)
	defer p.Close()
	if _, err := ParallelAnswer(context.Background(), x, nil, p); err == nil {
		t.Fatal("expected verification error to propagate")
	}
}

func TestParallelAnswerContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ids := make([]int, 20)
	for i := range ids {
		ids[i] = i
	}
	x := &slowIndex{fakeIndex: fakeIndex{filtered: ids}, errOn: -1}
	if _, err := ParallelAnswer(ctx, x, nil, nil); err == nil {
		t.Fatal("expected context error")
	}
}

// TestExtractFeaturesContextCancel: a cancelled context aborts extraction
// mid-graph and reports the cancellation.
func TestExtractFeaturesContextCancel(t *testing.T) {
	// A clique of one label has a huge bounded-path count, so the
	// periodic context check fires long before enumeration finishes.
	b := graph.NewBuilder("clique")
	const n = 24
	for v := 0; v < n; v++ {
		b.AddVertex(0)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if err := b.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := b.MustBuild()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExtractFeaturesContext(ctx, g, 6, false); err == nil {
		t.Fatal("cancelled extraction must fail")
	}
	// The context-free wrapper still works and agrees with itself.
	feats := ExtractFeatures(g, 2, false)
	if len(feats) == 0 {
		t.Fatal("extraction produced no features")
	}
}

// TestExtractDatasetFeaturesDeterministicAcrossPools: pooled extraction is
// positional, so any worker count yields identical per-graph feature maps.
func TestExtractDatasetFeaturesDeterministicAcrossPools(t *testing.T) {
	var ds []*graph.Graph
	for i := 0; i < 6; i++ {
		ds = append(ds, graph.MustNew(fmt.Sprintf("g%d", i),
			[]graph.Label{graph.Label(i % 3), 1, 2, 0},
			[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}))
	}
	p1 := exec.New(1)
	defer p1.Close()
	p4 := exec.New(4)
	defer p4.Close()
	f1, err := ExtractDatasetFeatures(context.Background(), p1, ds, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	f4, err := ExtractDatasetFeatures(context.Background(), p4, ds, 4, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1) != len(ds) || len(f4) != len(ds) {
		t.Fatalf("positional results missing: %d, %d", len(f1), len(f4))
	}
	for i := range ds {
		if len(f1[i]) != len(f4[i]) {
			t.Fatalf("graph %d: %d features vs %d", i, len(f1[i]), len(f4[i]))
		}
		for key, a := range f1[i] {
			bf := f4[i][key]
			if bf == nil || bf.Count != a.Count || len(bf.Locations) != len(a.Locations) {
				t.Fatalf("graph %d key %v: %+v vs %+v", i, key.Labels(), a, bf)
			}
			for j := range a.Locations {
				if a.Locations[j] != bf.Locations[j] {
					t.Fatalf("graph %d key %v: locations differ", i, key.Labels())
				}
			}
		}
	}
	// And both agree with the sequential per-graph extraction.
	for i, g := range ds {
		seq := ExtractFeatures(g, 4, true)
		if len(seq) != len(f1[i]) {
			t.Fatalf("graph %d: pooled %d features vs sequential %d", i, len(f1[i]), len(seq))
		}
	}
}

// TestExtractDatasetFeaturesCancel: cancelling mid-fan-out surfaces the
// context error.
func TestExtractDatasetFeaturesCancel(t *testing.T) {
	var ds []*graph.Graph
	for i := 0; i < 4; i++ {
		ds = append(ds, graph.MustNew("g", []graph.Label{0, 1}, [][2]int{{0, 1}}))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExtractDatasetFeatures(ctx, nil, ds, 4, false); err == nil {
		t.Fatal("cancelled dataset extraction must fail")
	}
}
