// Package ftv defines the contract shared by the filter-then-verify methods
// (Grapes, GGSX) and the path-feature utilities both build on. FTV methods
// solve the decision problem over a dataset of many graphs (§2.1 of the
// paper): an index over path features prunes the dataset down to a candidate
// set, and each candidate is then verified with VF2.
package ftv

import (
	"context"
	"encoding/binary"
	"sort"

	"github.com/psi-graph/psi/internal/graph"
)

// DefaultMaxPathLen follows the paper's setup: "for GGSX and Grapes, we
// enumerated paths of up to size of 4".
const DefaultMaxPathLen = 4

// Index is the filter-then-verify contract. Implementations are safe for
// concurrent queries once built.
type Index interface {
	// Name identifies the method as in the paper's figures, e.g.
	// "Grapes/4" or "GGSX".
	Name() string

	// Dataset returns the indexed graphs; Filter results and Verify's
	// graphID refer to positions in this slice.
	Dataset() []*graph.Graph

	// Filter returns the IDs of graphs that may contain q, in ascending
	// order. It must never prune a graph that actually contains q
	// (no false negatives); false positives are resolved by Verify.
	Filter(q *graph.Graph) []int

	// Verify decides whether q is subgraph-isomorphic to dataset graph
	// graphID. This is the "pure sub-iso time" stage the paper measures.
	Verify(ctx context.Context, q *graph.Graph, graphID int) (bool, error)
}

// Answer runs the full decision pipeline — filter, then verify every
// candidate — and returns the IDs of graphs containing q.
func Answer(ctx context.Context, x Index, q *graph.Graph) ([]int, error) {
	var out []int
	for _, id := range x.Filter(q) {
		ok, err := x.Verify(ctx, q, id)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, id)
		}
	}
	return out, nil
}

// PathKey encodes a label sequence as a string usable as a map key.
func PathKey(labels []graph.Label) string {
	buf := make([]byte, 4*len(labels))
	for i, l := range labels {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(l))
	}
	return string(buf)
}

// DecodePathKey inverts PathKey; used by diagnostics and tests.
func DecodePathKey(key string) []graph.Label {
	b := []byte(key)
	out := make([]graph.Label, len(b)/4)
	for i := range out {
		out[i] = graph.Label(binary.BigEndian.Uint32(b[4*i:]))
	}
	return out
}

// PathFeature is one extracted path feature of a graph: its label sequence,
// its number of (directed) occurrences, and optionally the set of vertices
// touched by any occurrence (Grapes' location information).
type PathFeature struct {
	Labels    []graph.Label
	Count     int32
	Locations []int32 // sorted unique vertex IDs; nil when not tracked
}

// ExtractFeatures enumerates every simple path of 1..maxLen edges of g (in
// both directions, as the DFS from every start vertex naturally does) and
// aggregates them by label sequence. When withLocations is true each
// feature also records the vertices covered by its occurrences.
func ExtractFeatures(g *graph.Graph, maxLen int, withLocations bool) map[string]*PathFeature {
	feats := make(map[string]*PathFeature)
	var locSets map[string]map[int32]struct{}
	if withLocations {
		locSets = make(map[string]map[int32]struct{})
	}
	labelBuf := make([]graph.Label, 0, maxLen+1)
	g.EnumeratePaths(maxLen, func(path []int32) {
		labelBuf = labelBuf[:0]
		for _, v := range path {
			labelBuf = append(labelBuf, g.Label(int(v)))
		}
		key := PathKey(labelBuf)
		f := feats[key]
		if f == nil {
			lbls := make([]graph.Label, len(labelBuf))
			copy(lbls, labelBuf)
			f = &PathFeature{Labels: lbls}
			feats[key] = f
		}
		f.Count++
		if withLocations {
			set := locSets[key]
			if set == nil {
				set = make(map[int32]struct{})
				locSets[key] = set
			}
			for _, v := range path {
				set[v] = struct{}{}
			}
		}
	})
	if withLocations {
		for key, set := range locSets {
			locs := make([]int32, 0, len(set))
			for v := range set {
				locs = append(locs, v)
			}
			sortInt32(locs)
			feats[key].Locations = locs
		}
	}
	return feats
}

// QueryFeature is a maximal path of the query with its occurrence count —
// what Grapes/GGSX look up in their indexes at query time.
type QueryFeature struct {
	Labels []graph.Label
	Count  int32
}

// QueryFeatures extracts the query's maximal paths (up to maxLen edges) and
// groups them by label sequence with occurrence counts. Occurrence counts of
// maximal paths are a lower bound on total path occurrences in any graph
// containing the query, so frequency pruning against indexed counts is
// sound.
func QueryFeatures(q *graph.Graph, maxLen int) map[string]*QueryFeature {
	out := make(map[string]*QueryFeature)
	for _, p := range q.MaximalPaths(maxLen) {
		lbls := q.LabelPath(p)
		key := PathKey(lbls)
		f := out[key]
		if f == nil {
			f = &QueryFeature{Labels: lbls}
			out[key] = f
		}
		f.Count++
	}
	return out
}

func sortInt32(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
