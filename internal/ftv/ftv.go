// Package ftv defines the contract shared by the filter-then-verify methods
// (Grapes, GGSX) and the path-feature utilities both build on. FTV methods
// solve the decision problem over a dataset of many graphs (§2.1 of the
// paper): an index over path features prunes the dataset down to a candidate
// set, and each candidate is then verified with VF2.
package ftv

import (
	"context"
	"encoding/binary"
	"sort"
	"sync"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/graph"
)

// DefaultMaxPathLen follows the paper's setup: "for GGSX and Grapes, we
// enumerated paths of up to size of 4".
const DefaultMaxPathLen = 4

// Index is the filter-then-verify contract. Implementations are safe for
// concurrent queries once built.
type Index interface {
	// Name identifies the method as in the paper's figures, e.g.
	// "Grapes/4" or "GGSX".
	Name() string

	// Dataset returns the indexed graphs; Filter results and Verify's
	// graphID refer to positions in this slice.
	Dataset() []*graph.Graph

	// Filter returns the IDs of graphs that may contain q, in ascending
	// order. It must never prune a graph that actually contains q
	// (no false negatives); false positives are resolved by Verify.
	Filter(q *graph.Graph) []int

	// Verify decides whether q is subgraph-isomorphic to dataset graph
	// graphID. This is the "pure sub-iso time" stage the paper measures.
	Verify(ctx context.Context, q *graph.Graph, graphID int) (bool, error)
}

// Answer runs the full decision pipeline — filter, then verify every
// candidate sequentially — and returns the IDs of graphs containing q.
func Answer(ctx context.Context, x Index, q *graph.Graph) ([]int, error) {
	var out []int
	for _, id := range x.Filter(q) {
		ok, err := x.Verify(ctx, q, id)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, id)
		}
	}
	return out, nil
}

// ParallelAnswer is Answer with the verification stage fanned out across the
// pool's workers (nil selects the shared default pool). Candidates verify
// independently — the stage the paper identifies as the dominant cost — while
// the answer is assembled positionally, so the returned IDs are identical,
// byte for byte, to the sequential pipeline's ascending order. The first
// verification error cancels the remaining candidates.
func ParallelAnswer(ctx context.Context, x Index, q *graph.Graph, p *exec.Pool) ([]int, error) {
	return VerifyCandidates(ctx, p, x.Filter(q), func(gctx context.Context, id int) (bool, error) {
		return x.Verify(gctx, q, id)
	})
}

// VerifyCandidates runs check over a candidate ID list across the pool's
// workers and returns the IDs that checked out, preserving the input order.
// It is the collecting wrapper over StreamCandidates, the one
// fan-out-and-assemble shape shared by ParallelAnswer, the cached wrapper,
// and the FTV racer's candidate loop.
func VerifyCandidates(ctx context.Context, p *exec.Pool, ids []int, check func(ctx context.Context, id int) (bool, error)) ([]int, error) {
	var out []int
	err := StreamCandidates(ctx, p, ids, func(id int) bool {
		out = append(out, id)
		return true
	}, check)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// StreamCandidates is the streaming form of VerifyCandidates: check fans out
// over ids across the pool's workers (nil selects the shared default pool;
// one candidate runs on the caller's goroutine), and each ID that checks out
// is handed to emit as soon as it — and every candidate before it — has been
// decided, so emissions arrive incrementally yet in exactly the input order.
// emit returning false cancels the remaining verifications and ends the
// stream with a nil error; the first check error cancels the rest and is
// returned. emit runs under an internal lock and must not block.
func StreamCandidates(ctx context.Context, p *exec.Pool, ids []int, emit func(id int) bool, check func(ctx context.Context, id int) (bool, error)) error {
	n := len(ids)
	if n <= 1 {
		for _, id := range ids {
			ok, err := check(ctx, id)
			if err != nil {
				return err
			}
			if ok && !emit(id) {
				return nil
			}
		}
		return nil
	}
	if p == nil {
		p = exec.Default()
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	const (
		pending = uint8(iota)
		hit
		miss
	)
	var (
		mu      sync.Mutex
		state   = make([]uint8, n)
		next    int // first undecided position: everything before it is emitted or skipped
		stopped bool
	)
	grp := p.NewGroup(sctx)
	for i := range ids {
		i := i
		grp.Go(func(gctx context.Context) error {
			ok, err := check(gctx, ids[i])
			if err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			if stopped {
				return nil
			}
			if ok {
				state[i] = hit
			} else {
				state[i] = miss
			}
			// Flush the newly contiguous decided prefix in input order.
			for next < n && state[next] != pending {
				if state[next] == hit && !emit(ids[next]) {
					stopped = true
					cancel()
					return nil
				}
				next++
			}
			return nil
		})
	}
	err := grp.Wait()
	mu.Lock()
	wasStopped := stopped
	mu.Unlock()
	if wasStopped {
		return nil
	}
	return err
}

// ParallelHits evaluates check(ctx, i) for every i in [0, n) across the
// pool's workers (nil selects the shared default pool; n <= 1 runs on the
// caller's goroutine) and returns the outcomes indexed positionally. The
// first error cancels the remaining work and is returned.
func ParallelHits(ctx context.Context, p *exec.Pool, n int, check func(ctx context.Context, i int) (bool, error)) ([]bool, error) {
	hits := make([]bool, n)
	if n <= 1 {
		for i := range hits {
			ok, err := check(ctx, i)
			if err != nil {
				return nil, err
			}
			hits[i] = ok
		}
		return hits, nil
	}
	if p == nil {
		p = exec.Default()
	}
	grp := p.NewGroup(ctx)
	for i := range hits {
		i := i
		grp.Go(func(gctx context.Context) error {
			ok, err := check(gctx, i)
			if err != nil {
				return err
			}
			hits[i] = ok
			return nil
		})
	}
	if err := grp.Wait(); err != nil {
		return nil, err
	}
	return hits, nil
}

// Key is a comparable path-feature key. Label sequences of up to
// DefaultMaxPathLen edges (5 labels) whose labels all fit in 12 bits — true
// of every paper dataset, whose alphabets top out at 184 — pack into a
// single uint64 with zero allocation; longer sequences or larger labels
// fall back to the allocating string encoding of PathKey. The two forms
// never collide: packed keys are non-zero while fallback keys leave packed
// at zero.
type Key struct {
	packed uint64
	str    string
}

const (
	packedKeyLabels    = DefaultMaxPathLen + 1 // vertices on a 4-edge path
	packedKeyLabelBits = 12
	packedKeyLabelMax  = 1<<packedKeyLabelBits - 1
)

// MakeKey encodes a label sequence as a map key, packing when possible.
func MakeKey(labels []graph.Label) Key {
	if len(labels) <= packedKeyLabels {
		v := uint64(len(labels) + 1)
		for _, l := range labels {
			if uint32(l) > packedKeyLabelMax {
				return Key{str: PathKey(labels)}
			}
			v = v<<packedKeyLabelBits | uint64(l)
		}
		return Key{packed: v}
	}
	return Key{str: PathKey(labels)}
}

// Labels decodes the key back into its label sequence; used by diagnostics
// and tests.
func (k Key) Labels() []graph.Label {
	if k.packed == 0 {
		return DecodePathKey(k.str)
	}
	// The packed form is (len+1) << (12·len) | labels, so the length is
	// the unique n with packed >> (12·n) == n+1.
	for n := 0; n <= packedKeyLabels; n++ {
		if k.packed>>(packedKeyLabelBits*n) == uint64(n+1) {
			out := make([]graph.Label, n)
			v := k.packed
			for i := n - 1; i >= 0; i-- {
				out[i] = graph.Label(v & packedKeyLabelMax)
				v >>= packedKeyLabelBits
			}
			return out
		}
	}
	return nil
}

// PathKey encodes a label sequence as a string usable as a map key — the
// allocating fallback encoding behind MakeKey.
func PathKey(labels []graph.Label) string {
	buf := make([]byte, 4*len(labels))
	for i, l := range labels {
		binary.BigEndian.PutUint32(buf[4*i:], uint32(l))
	}
	return string(buf)
}

// DecodePathKey inverts PathKey; used by diagnostics and tests.
func DecodePathKey(key string) []graph.Label {
	b := []byte(key)
	out := make([]graph.Label, len(b)/4)
	for i := range out {
		out[i] = graph.Label(binary.BigEndian.Uint32(b[4*i:]))
	}
	return out
}

// PathFeature is one extracted path feature of a graph: its label sequence,
// its number of (directed) occurrences, and optionally the set of vertices
// touched by any occurrence (Grapes' location information).
type PathFeature struct {
	Labels    []graph.Label
	Count     int32
	Locations []int32 // sorted unique vertex IDs; nil when not tracked
}

// ExtractFeatures enumerates every simple path of 1..maxLen edges of g (in
// both directions, as the DFS from every start vertex naturally does) and
// aggregates them by label sequence. When withLocations is true each
// feature also records the vertices covered by its occurrences.
func ExtractFeatures(g *graph.Graph, maxLen int, withLocations bool) map[Key]*PathFeature {
	feats, _ := ExtractFeaturesContext(context.Background(), g, maxLen, withLocations)
	return feats
}

// extractCancelCheckEvery is how many enumerated paths pass between context
// checks during extraction — frequent enough that cancelling an index build
// takes effect mid-graph, rare enough to stay off the enumeration hot path.
const extractCancelCheckEvery = 1 << 12

// ExtractFeaturesContext is ExtractFeatures with cooperative cancellation:
// the enumeration checks ctx every few thousand paths and abandons the graph
// with ctx's error when it has been cancelled. Dense graphs can hold billions
// of bounded simple paths, so an uncancellable extraction would pin a worker
// long after its query or build was abandoned.
func ExtractFeaturesContext(ctx context.Context, g *graph.Graph, maxLen int, withLocations bool) (map[Key]*PathFeature, error) {
	// Upfront check so an already-cancelled build aborts even on graphs
	// too small to reach the periodic mid-enumeration check.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	feats := make(map[Key]*PathFeature)
	var locSets map[Key]map[int32]struct{}
	if withLocations {
		locSets = make(map[Key]map[int32]struct{})
	}
	labelBuf := make([]graph.Label, 0, maxLen+1)
	var (
		sinceCheck int
		cancelled  bool
	)
	g.EnumeratePathsWhile(maxLen, func(path []int32) bool {
		if sinceCheck++; sinceCheck >= extractCancelCheckEvery {
			sinceCheck = 0
			if ctx.Err() != nil {
				cancelled = true
				return false
			}
		}
		labelBuf = labelBuf[:0]
		for _, v := range path {
			labelBuf = append(labelBuf, g.Label(int(v)))
		}
		key := MakeKey(labelBuf)
		f := feats[key]
		if f == nil {
			lbls := make([]graph.Label, len(labelBuf))
			copy(lbls, labelBuf)
			f = &PathFeature{Labels: lbls}
			feats[key] = f
		}
		f.Count++
		if withLocations {
			set := locSets[key]
			if set == nil {
				set = make(map[int32]struct{})
				locSets[key] = set
			}
			for _, v := range path {
				set[v] = struct{}{}
			}
		}
		return true
	})
	if cancelled {
		return nil, ctx.Err()
	}
	if withLocations {
		for key, set := range locSets {
			locs := make([]int32, 0, len(set))
			for v := range set {
				locs = append(locs, v)
			}
			sortInt32(locs)
			feats[key].Locations = locs
		}
	}
	return feats, nil
}

// ExtractDatasetFeatures extracts the path features of every dataset graph
// across the pool's workers (nil selects the shared default pool) and returns
// them positionally: out[i] holds graph i's features. Because consumers fold
// the results in slice order, index builds are deterministic regardless of
// worker count — only the wall-clock time changes. Cancelling ctx aborts
// extraction (including mid-graph, via ExtractFeaturesContext) and returns
// the context's error.
func ExtractDatasetFeatures(ctx context.Context, p *exec.Pool, ds []*graph.Graph, maxLen int, withLocations bool) ([]map[Key]*PathFeature, error) {
	out := make([]map[Key]*PathFeature, len(ds))
	if len(ds) <= 1 {
		for i, g := range ds {
			feats, err := ExtractFeaturesContext(ctx, g, maxLen, withLocations)
			if err != nil {
				return nil, err
			}
			out[i] = feats
		}
		return out, nil
	}
	if p == nil {
		p = exec.Default()
	}
	grp := p.NewGroup(ctx)
	for i := range ds {
		i := i
		grp.Go(func(gctx context.Context) error {
			feats, err := ExtractFeaturesContext(gctx, ds[i], maxLen, withLocations)
			if err != nil {
				return err
			}
			out[i] = feats
			return nil
		})
	}
	if err := grp.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// QueryFeature is a maximal path of the query with its occurrence count —
// what Grapes/GGSX look up in their indexes at query time.
type QueryFeature struct {
	Labels []graph.Label
	Count  int32
}

// QueryFeatures extracts the query's maximal paths (up to maxLen edges) and
// groups them by label sequence with occurrence counts. Occurrence counts of
// maximal paths are a lower bound on total path occurrences in any graph
// containing the query, so frequency pruning against indexed counts is
// sound.
func QueryFeatures(q *graph.Graph, maxLen int) map[Key]*QueryFeature {
	out := make(map[Key]*QueryFeature)
	for _, p := range q.MaximalPaths(maxLen) {
		lbls := q.LabelPath(p)
		key := MakeKey(lbls)
		f := out[key]
		if f == nil {
			f = &QueryFeature{Labels: lbls}
			out[key] = f
		}
		f.Count++
	}
	return out
}

func sortInt32(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
