// Package gql implements GraphQL (He & Singh, SIGMOD 2008), abbreviated GQL
// in the paper's figures. Per §3.1.2 of the paper, the indexing phase stores
// vertex labels and neighbourhood signatures (sorted labels of neighbours);
// query processing (i) retrieves candidate vertices per query vertex by
// label, degree, and signature containment, (ii) refines candidates with an
// iterated pseudo subgraph isomorphism test up to level r, and (iii) picks a
// greedy left-deep join order driven by estimated intermediate result sizes
// before the backtracking join.
//
// Because the join order is dominated by candidate-list sizes rather than
// node IDs, GraphQL is the least sensitive of the NFV methods to query
// rewritings — reproducing the paper's observation in §6.2.
package gql

import (
	"context"
	"sort"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
)

// DefaultRefineLevel matches the paper's setup: "a refined level of
// iterations of pseudo-subgraph isomorphism r = 4".
const DefaultRefineLevel = 4

// Matcher is a GraphQL instance bound to a stored graph.
type Matcher struct {
	g      *graph.Graph
	sig    [][]graph.Label // per-vertex sorted neighbour labels
	refine int
}

// New builds the GraphQL index for g with the default refinement level.
func New(g *graph.Graph) *Matcher { return NewWithRefinement(g, DefaultRefineLevel) }

// NewWithRefinement builds the index with an explicit pseudo-iso level.
func NewWithRefinement(g *graph.Graph, refine int) *Matcher {
	m := &Matcher{g: g, refine: refine}
	m.sig = make([][]graph.Label, g.N())
	for v := 0; v < g.N(); v++ {
		m.sig[v] = signature(g, v)
	}
	return m
}

// Name implements match.Matcher.
func (m *Matcher) Name() string { return "GQL" }

// Graph returns the stored graph.
func (m *Matcher) Graph() *graph.Graph { return m.g }

// signature returns the lexicographically sorted multiset of neighbour
// labels of v — the radius-1 neighbourhood signature.
func signature(g *graph.Graph, v int) []graph.Label {
	out := make([]graph.Label, 0, g.Degree(v))
	for _, w := range g.Neighbors(v) {
		out = append(out, g.Label(int(w)))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// sigContains reports whether sorted multiset sub is contained in sorted
// multiset super (two-pointer sweep).
func sigContains(super, sub []graph.Label) bool {
	i := 0
	for _, s := range sub {
		for i < len(super) && super[i] < s {
			i++
		}
		if i >= len(super) || super[i] != s {
			return false
		}
		i++
	}
	return true
}

// Match implements match.Matcher by collecting the stream into a slice.
func (m *Matcher) Match(ctx context.Context, q *graph.Graph, limit int) ([]match.Embedding, error) {
	return match.CollectMatch(ctx, m, q, limit)
}

// MatchStream implements match.StreamMatcher: embeddings are emitted into
// sink as the search discovers them.
func (m *Matcher) MatchStream(ctx context.Context, q *graph.Graph, limit int, sink match.Sink) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	col := match.NewStreamCollector(limit, sink)
	if q.N() == 0 {
		return col.FinishStream(col.Found(match.Embedding{}))
	}
	if q.N() > m.g.N() || q.M() > m.g.M() {
		return nil
	}
	budget := match.NewBudget(ctx)
	cand, err := m.candidates(q, budget)
	if err != nil {
		return err
	}
	if cand == nil {
		return nil // some query vertex has no candidates
	}
	if err := m.refineCandidates(q, cand, budget); err != nil {
		return err
	}
	for _, c := range cand {
		if len(c) == 0 {
			return nil
		}
	}
	order := m.searchOrder(q, cand)
	candSet := make([]map[int32]bool, q.N())
	for u := range cand {
		set := make(map[int32]bool, len(cand[u]))
		for _, v := range cand[u] {
			set[v] = true
		}
		candSet[u] = set
	}
	s := &searcher{
		m:       m,
		q:       q,
		cand:    cand,
		candSet: candSet,
		order:   order,
		emb:     make(match.Embedding, q.N()),
		used:    make([]bool, m.g.N()),
		col:     col,
		budget:  budget,
	}
	for i := range s.emb {
		s.emb[i] = -1
	}
	return col.FinishStream(s.step(0))
}

// candidates builds the initial per-query-vertex candidate lists using
// label, degree, and signature-containment filters. It returns nil if any
// list is empty.
func (m *Matcher) candidates(q *graph.Graph, budget *match.Budget) ([][]int32, error) {
	qsig := make([][]graph.Label, q.N())
	for u := 0; u < q.N(); u++ {
		qsig[u] = signature(q, u)
	}
	cand := make([][]int32, q.N())
	for u := 0; u < q.N(); u++ {
		for _, v := range m.g.VerticesWithLabel(q.Label(u)) {
			if err := budget.Step(); err != nil {
				return nil, err
			}
			if m.g.Degree(int(v)) >= q.Degree(u) && sigContains(m.sig[v], qsig[u]) {
				cand[u] = append(cand[u], v)
			}
		}
		if len(cand[u]) == 0 {
			return nil, nil
		}
	}
	return cand, nil
}

// refineCandidates applies the pseudo subgraph isomorphism refinement: for
// up to m.refine iterations, a candidate v for query vertex u survives only
// if the neighbours of u can be matched to *distinct* neighbours of v, each
// within its own candidate list (a bipartite feasibility test solved with
// Kuhn's augmenting paths). The iteration stops early at a fixpoint.
func (m *Matcher) refineCandidates(q *graph.Graph, cand [][]int32, budget *match.Budget) error {
	inCand := make([]map[int32]bool, q.N())
	rebuild := func(u int) {
		set := make(map[int32]bool, len(cand[u]))
		for _, v := range cand[u] {
			set[v] = true
		}
		inCand[u] = set
	}
	for u := range cand {
		rebuild(u)
	}
	for iter := 0; iter < m.refine; iter++ {
		changed := false
		for u := 0; u < q.N(); u++ {
			kept := cand[u][:0]
			for _, v := range cand[u] {
				if err := budget.Step(); err != nil {
					return err
				}
				if m.neighborhoodFeasible(q, u, v, inCand) {
					kept = append(kept, v)
				} else {
					changed = true
				}
			}
			cand[u] = kept
			if changed {
				rebuild(u)
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

// neighborhoodFeasible runs the bipartite matching between N_q(u) and
// N_g(v): every query neighbour needs its own distinct graph neighbour that
// is one of its candidates.
func (m *Matcher) neighborhoodFeasible(q *graph.Graph, u int, v int32, inCand []map[int32]bool) bool {
	qn := q.Neighbors(u)
	gn := m.g.Neighbors(int(v))
	if len(qn) > len(gn) {
		return false
	}
	// matchTo[i] = index into qn matched to gn[i], or -1.
	matchTo := make([]int, len(gn))
	for i := range matchTo {
		matchTo[i] = -1
	}
	var try func(qi int, visited []bool) bool
	try = func(qi int, visited []bool) bool {
		uq := qn[qi]
		for gi, vg := range gn {
			if visited[gi] || !inCand[uq][vg] {
				continue
			}
			visited[gi] = true
			if matchTo[gi] < 0 || try(matchTo[gi], visited) {
				matchTo[gi] = qi
				return true
			}
		}
		return false
	}
	for qi := range qn {
		visited := make([]bool, len(gn))
		if !try(qi, visited) {
			return false
		}
	}
	return true
}

// searchOrder computes the greedy left-deep join order: start from the
// query vertex with the smallest candidate list (ties by ID); repeatedly
// append the vertex with the smallest candidate list among those adjacent
// to the prefix (falling back to any remaining vertex for disconnected
// queries). This mirrors GraphQL's left-deep plan enumeration driven by
// estimated intermediate result sizes.
func (m *Matcher) searchOrder(q *graph.Graph, cand [][]int32) []int32 {
	n := q.N()
	order := make([]int32, 0, n)
	placed := make([]bool, n)
	pick := func(connectedOnly bool) int32 {
		best := int32(-1)
		for u := 0; u < n; u++ {
			if placed[u] {
				continue
			}
			if connectedOnly {
				adj := false
				for _, w := range q.Neighbors(u) {
					if placed[w] {
						adj = true
						break
					}
				}
				if !adj {
					continue
				}
			}
			if best < 0 || len(cand[u]) < len(cand[best]) {
				best = int32(u)
			}
		}
		return best
	}
	for len(order) < n {
		u := pick(len(order) > 0)
		if u < 0 {
			u = pick(false) // next component
		}
		placed[u] = true
		order = append(order, u)
	}
	return order
}

type searcher struct {
	m       *Matcher
	q       *graph.Graph
	cand    [][]int32
	candSet []map[int32]bool
	order   []int32
	emb     match.Embedding
	used    []bool
	col     *match.Collector
	budget  *match.Budget
}

func (s *searcher) step(i int) error {
	if i == len(s.order) {
		return s.col.Found(s.emb)
	}
	u := s.order[i]
	// If u already has a matched neighbour, enumerate that neighbour's
	// image adjacency rather than the whole candidate list.
	anchor := int32(-1)
	for _, w := range s.q.Neighbors(int(u)) {
		if s.emb[w] >= 0 {
			anchor = s.emb[w]
			break
		}
	}
	check := func(v int32) error {
		if s.used[v] {
			return nil
		}
		for _, w := range s.q.Neighbors(int(u)) {
			if img := s.emb[w]; img >= 0 &&
				!s.m.g.HasEdgeLabeled(int(img), int(v), s.q.EdgeLabel(int(u), int(w))) {
				return nil
			}
		}
		s.emb[u] = v
		s.used[v] = true
		if err := s.step(i + 1); err != nil {
			return err
		}
		s.used[v] = false
		s.emb[u] = -1
		return nil
	}
	if anchor >= 0 {
		for _, v := range s.m.g.Neighbors(int(anchor)) {
			if err := s.budget.Step(); err != nil {
				return err
			}
			if !s.candSet[u][v] {
				continue
			}
			if err := check(v); err != nil {
				return err
			}
		}
		return nil
	}
	for _, v := range s.cand[u] {
		if err := s.budget.Step(); err != nil {
			return err
		}
		if err := check(v); err != nil {
			return err
		}
	}
	return nil
}
