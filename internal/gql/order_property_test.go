package gql

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/psi-graph/psi/internal/graph"
)

// Property: the greedy left-deep search order is a permutation of the
// query's vertices that starts at a minimal candidate list and keeps the
// prefix connected whenever the query itself is connected.
func TestSearchOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraphGQL(r, 15+r.Intn(10), 3)
		m := New(g)
		q := randomConnectedGQL(r, 3+r.Intn(7), 3)
		cand, err := m.candidates(q, newTestBudget())
		if err != nil {
			return false
		}
		if cand == nil {
			return true // query not matchable; no order to validate
		}
		order := m.searchOrder(q, cand)
		if len(order) != q.N() {
			return false
		}
		seen := make(map[int32]bool, len(order))
		for _, u := range order {
			if seen[u] {
				return false
			}
			seen[u] = true
		}
		// starts at a minimal candidate list
		for u := range cand {
			if len(cand[u]) < len(cand[order[0]]) {
				return false
			}
		}
		// connected prefix
		placed := map[int32]bool{order[0]: true}
		for _, u := range order[1:] {
			adj := false
			for _, w := range q.Neighbors(int(u)) {
				if placed[w] {
					adj = true
				}
			}
			if !adj {
				return false
			}
			placed[u] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: candidate refinement never removes the vertices of a real
// embedding (refinement soundness). We plant the query by extracting it
// from the stored graph, so at least one embedding exists; its image
// vertices must survive refinement.
func TestRefinementSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnectedGQL(r, 12+r.Intn(8), 2)
		m := New(g)
		// plant: take an induced connected subgraph as the query, mapping
		// new vertex i -> original vertex ids[i].
		k := 3 + r.Intn(4)
		start := r.Intn(g.N())
		ids := bfsVertices(g, start, k)
		q, new2old := g.InducedSubgraph("q", ids)
		cand, err := m.candidates(q, newTestBudget())
		if err != nil || cand == nil {
			return false // planted query must have candidates
		}
		if err := m.refineCandidates(q, cand, newTestBudget()); err != nil {
			return false
		}
		for u := 0; u < q.N(); u++ {
			found := false
			for _, v := range cand[u] {
				if v == new2old[u] {
					found = true
					break
				}
			}
			if !found {
				return false // pruned the true image: unsound
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func bfsVertices(g *graph.Graph, start, k int) []int32 {
	seen := map[int32]bool{int32(start): true}
	queue := []int32{int32(start)}
	var out []int32
	for len(queue) > 0 && len(out) < k {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		for _, w := range g.Neighbors(int(v)) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return out
}

func randomGraphGQL(r *rand.Rand, n, labels int) *graph.Graph {
	b := graph.NewBuilder("g")
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(r.Intn(labels)))
	}
	for i := 0; i < 2*n; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !b.HasEdgePending(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return b.MustBuild()
}

func randomConnectedGQL(r *rand.Rand, n, labels int) *graph.Graph {
	b := graph.NewBuilder("g")
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(r.Intn(labels)))
	}
	for v := 1; v < n; v++ {
		if err := b.AddEdge(r.Intn(v), v); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n/2; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !b.HasEdgePending(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return b.MustBuild()
}
