package gql

import (
	"context"
	"testing"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
)

func newTestBudget() *match.Budget { return match.NewBudget(context.Background()) }

func TestName(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0}, nil)
	m := New(g)
	if m.Name() != "GQL" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Graph() != g {
		t.Error("Graph accessor")
	}
	if m.refine != DefaultRefineLevel {
		t.Errorf("default refine = %d", m.refine)
	}
}

func TestSignature(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 2, 1, 2}, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	sig := signature(g, 0)
	want := []graph.Label{1, 2, 2}
	if len(sig) != 3 {
		t.Fatalf("sig = %v", sig)
	}
	for i := range want {
		if sig[i] != want[i] {
			t.Fatalf("sig = %v, want %v (sorted)", sig, want)
		}
	}
}

func TestSigContains(t *testing.T) {
	cases := []struct {
		super, sub []graph.Label
		want       bool
	}{
		{[]graph.Label{1, 2, 2, 3}, []graph.Label{2, 3}, true},
		{[]graph.Label{1, 2, 2, 3}, []graph.Label{2, 2}, true},
		{[]graph.Label{1, 2, 3}, []graph.Label{2, 2}, false},
		{[]graph.Label{1, 2, 3}, []graph.Label{4}, false},
		{[]graph.Label{1, 2, 3}, nil, true},
		{nil, []graph.Label{1}, false},
		{nil, nil, true},
	}
	for _, c := range cases {
		if got := sigContains(c.super, c.sub); got != c.want {
			t.Errorf("sigContains(%v, %v) = %v, want %v", c.super, c.sub, got, c.want)
		}
	}
}

// Refinement must kill candidates whose neighbourhood cannot host the query
// vertex's neighbourhood even when labels and degrees match.
func TestRefinementPrunes(t *testing.T) {
	// g: center 0 (label 0) with neighbors labeled 1,1 — and center 4
	// (label 0) with neighbors labeled 1,2.
	g := graph.MustNew("g", []graph.Label{0, 1, 1, 99, 0, 1, 2},
		[][2]int{{0, 1}, {0, 2}, {4, 5}, {4, 6}})
	// q: center (label 0) with neighbors 1,2 — only vertex 4 qualifies.
	q := graph.MustNew("q", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {0, 2}})
	m := New(g)
	embs, err := m.Match(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(embs) != 1 || embs[0][0] != 4 {
		t.Errorf("embeddings = %v, want center mapped to 4", embs)
	}
}

// The bipartite feasibility check must handle the case where a greedy
// assignment fails but an augmenting path succeeds: two query neighbours
// both preferring the same graph neighbour.
func TestNeighborhoodFeasibleAugmenting(t *testing.T) {
	// g: v has neighbors a (label 1) and b (label 1).
	// q: u has neighbors x (label 1), y (label 1). Feasible: both distinct.
	g := graph.MustNew("g", []graph.Label{0, 1, 1}, [][2]int{{0, 1}, {0, 2}})
	q := graph.MustNew("q", []graph.Label{0, 1, 1}, [][2]int{{0, 1}, {0, 2}})
	m := New(g)
	embs, err := m.Match(context.Background(), q, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(embs) != 2 {
		t.Errorf("got %d embeddings, want 2 (swap of the two leaves)", len(embs))
	}
}

func TestInfeasibleNeighborhood(t *testing.T) {
	// q center needs two distinct label-1 neighbours; g center has only one.
	g := graph.MustNew("g", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {0, 2}})
	q := graph.MustNew("q", []graph.Label{0, 1, 1}, [][2]int{{0, 1}, {0, 2}})
	embs, err := New(g).Match(context.Background(), q, 10)
	if err != nil || len(embs) != 0 {
		t.Errorf("infeasible query matched: %v, %v", embs, err)
	}
}

func TestSearchOrderStartsAtSmallestCandidateList(t *testing.T) {
	// Vertex with unique label (2) has the smallest candidate list.
	g := graph.MustNew("g", []graph.Label{0, 0, 0, 0, 2},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	q := graph.MustNew("q", []graph.Label{0, 0, 2}, [][2]int{{0, 1}, {1, 2}})
	m := New(g)
	cand, err := m.candidates(q, newTestBudget())
	if err != nil || cand == nil {
		t.Fatalf("candidates: %v %v", cand, err)
	}
	order := m.searchOrder(q, cand)
	for u := range cand {
		if len(cand[u]) < len(cand[order[0]]) {
			t.Errorf("search order %v does not start at a minimal candidate list (sizes %d vs %d)",
				order, len(cand[order[0]]), len(cand[u]))
		}
	}
	// order must be connected: each subsequent vertex adjacent to prefix
	placed := map[int32]bool{order[0]: true}
	for _, u := range order[1:] {
		adj := false
		for _, w := range q.Neighbors(int(u)) {
			if placed[w] {
				adj = true
			}
		}
		if !adj {
			t.Errorf("order %v breaks connectivity at %d", order, u)
		}
		placed[u] = true
	}
}

func TestRefineLevelZeroStillCorrect(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 1, 0, 1}, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	q := graph.MustNew("q", []graph.Label{0, 1}, [][2]int{{0, 1}})
	m := NewWithRefinement(g, 0)
	embs, err := m.Match(context.Background(), q, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(embs) != 3 {
		// edges (0,1),(1,2),(2,3): label-(0,1) oriented matches: (0,1),(2,1),(2,3) = 3
		t.Errorf("got %d embeddings, want 3", len(embs))
	}
}
