package match_test

// Cross-validation tests: every matcher (VF2, QuickSI, GraphQL, sPath) must
// agree with the naive reference matcher on both the decision problem and
// the number of embeddings, across randomized labeled graphs and randomized
// queries extracted from them. These tests are the safety net under the
// Ψ-framework: racing heterogeneous algorithms is only sound if they all
// compute the same answers.

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/psi-graph/psi/internal/gql"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/quicksi"
	"github.com/psi-graph/psi/internal/rewrite"
	"github.com/psi-graph/psi/internal/spath"
	"github.com/psi-graph/psi/internal/vf2"
)

func allMatchers(g *graph.Graph) []match.Matcher {
	return []match.Matcher{
		vf2.New(g),
		quicksi.New(g),
		gql.New(g),
		spath.New(g),
	}
}

// allStreamMatchers is every matcher in the module — the four algorithms
// plus the naive reference — as stream matchers. The conversion is a
// compile-time check that each implements match.StreamMatcher.
func allStreamMatchers(g *graph.Graph) []match.StreamMatcher {
	return []match.StreamMatcher{
		vf2.New(g),
		quicksi.New(g),
		gql.New(g),
		spath.New(g),
		match.NewReference(g),
	}
}

// embeddingsEqual reports byte-identical embedding slices: same length,
// same order, same vertices.
func embeddingsEqual(a, b []match.Embedding) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// collect drains MatchStream into a slice through a plain always-true sink.
func collect(t *testing.T, m match.StreamMatcher, q *graph.Graph, limit int) []match.Embedding {
	t.Helper()
	var out []match.Embedding
	err := m.MatchStream(context.Background(), q, limit, match.SinkFunc(func(e match.Embedding) bool {
		out = append(out, e)
		return true
	}))
	if err != nil {
		t.Fatalf("%s: MatchStream: %v", m.Name(), err)
	}
	return out
}

// TestStreamingParityWithSlicePath is the tentpole's safety net: for every
// matcher, the sink-collected stream must be byte-identical — same
// embeddings, same order — to the Match slice path, across random graphs,
// query shapes and limits, including the empty query.
func TestStreamingParityWithSlicePath(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		g := randomLabeledGraph(r, 10+r.Intn(15), 10, 2)
		var q *graph.Graph
		switch trial % 3 {
		case 0:
			q = extractQuery(r, g, 2+r.Intn(4))
		case 1:
			q = randomLabeledGraph(r, 3+r.Intn(3), 2, 2) // may be absent
		default:
			q = graph.MustNew("empty", nil, nil)
		}
		for _, limit := range []int{1, 7, 100000} {
			for _, m := range allStreamMatchers(g) {
				want, err := m.Match(context.Background(), q, limit)
				if err != nil {
					t.Fatalf("trial %d %s: Match: %v", trial, m.Name(), err)
				}
				got := collect(t, m, q, limit)
				if !embeddingsEqual(got, want) {
					t.Fatalf("trial %d %s limit %d: stream %v != slice %v",
						trial, m.Name(), limit, got, want)
				}
			}
		}
	}
}

// TestStreamingMidStreamCancellation stops the sink after k embeddings:
// the search must terminate with a nil error having emitted exactly k, and
// those k must be the first k of the slice path.
func TestStreamingMidStreamCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	g := randomLabeledGraph(r, 20, 30, 1) // single label: many embeddings
	q := extractQuery(r, g, 3)
	const lim = 100000
	for _, m := range allStreamMatchers(g) {
		full, err := m.Match(context.Background(), q, lim)
		if err != nil {
			t.Fatal(err)
		}
		if len(full) < 5 {
			t.Fatalf("%s: test graph too sparse (%d embeddings)", m.Name(), len(full))
		}
		for _, k := range []int{1, 3, len(full) - 1} {
			var got []match.Embedding
			err := m.MatchStream(context.Background(), q, lim, match.SinkFunc(func(e match.Embedding) bool {
				got = append(got, e)
				return len(got) < k
			}))
			if err != nil {
				t.Fatalf("%s: sink-stopped stream must return nil, got %v", m.Name(), err)
			}
			if len(got) != k {
				t.Fatalf("%s: sink stopped at %d but saw %d embeddings", m.Name(), k, len(got))
			}
			if !embeddingsEqual(got, full[:k]) {
				t.Fatalf("%s: first %d streamed embeddings diverge from slice prefix", m.Name(), k)
			}
		}
	}
}

// TestStreamingDecisionSemantics checks limit <= 0 streams exactly one
// embedding (the decision convention), for both 0 and negative limits.
func TestStreamingDecisionSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	g := randomLabeledGraph(r, 15, 10, 1)
	q := extractQuery(r, g, 2)
	for _, limit := range []int{0, -3} {
		for _, m := range allStreamMatchers(g) {
			got := collect(t, m, q, limit)
			if len(got) != 1 {
				t.Errorf("%s: limit %d must stream exactly one embedding, got %d",
					m.Name(), limit, len(got))
			}
		}
	}
}

// TestStreamingCancelledContext mirrors TestCancelledContext for the
// streaming path: a dead context must surface as an error promptly.
func TestStreamingCancelledContext(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	g := randomLabeledGraph(r, 200, 1500, 1)
	q := extractQuery(r, g, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range allStreamMatchers(g) {
		err := m.MatchStream(ctx, q, 1000000, match.SinkFunc(func(match.Embedding) bool { return true }))
		if err == nil {
			t.Errorf("%s: expected context error from streaming match", m.Name())
		}
	}
}

// TestStreamingEmbeddingsAreClones guards against the stream aliasing the
// search's scratch buffer: a retained embedding must not change as the
// search continues.
func TestStreamingEmbeddingsAreClones(t *testing.T) {
	r := rand.New(rand.NewSource(25))
	g := randomLabeledGraph(r, 15, 20, 1)
	q := extractQuery(r, g, 3)
	for _, m := range allStreamMatchers(g) {
		var kept []match.Embedding
		if err := m.MatchStream(context.Background(), q, 50, match.SinkFunc(func(e match.Embedding) bool {
			kept = append(kept, e)
			return true
		})); err != nil {
			t.Fatal(err)
		}
		want, err := m.Match(context.Background(), q, 50)
		if err != nil {
			t.Fatal(err)
		}
		if !embeddingsEqual(kept, want) {
			t.Fatalf("%s: embeddings mutated after emission — stream aliases the search buffer", m.Name())
		}
	}
}

// randomLabeledGraph builds a connected random graph.
func randomLabeledGraph(r *rand.Rand, n, extraEdges, labels int) *graph.Graph {
	b := graph.NewBuilder("g")
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(r.Intn(labels)))
	}
	for v := 1; v < n; v++ {
		if err := b.AddEdge(r.Intn(v), v); err != nil {
			panic(err)
		}
	}
	for i := 0; i < extraEdges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !b.HasEdgePending(u, v) {
			if err := b.AddEdge(u, v); err != nil {
				panic(err)
			}
		}
	}
	return b.MustBuild()
}

// extractQuery grows a connected query of wantEdges edges from a random
// start vertex of g (the paper's §3.4 workload procedure), then renumbers
// vertices 0..k-1.
func extractQuery(r *rand.Rand, g *graph.Graph, wantEdges int) *graph.Graph {
	start := r.Intn(g.N())
	inQ := map[int32]bool{int32(start): true}
	type edge struct{ u, v int32 }
	var qEdges []edge
	has := func(a, b int32) bool {
		for _, e := range qEdges {
			if (e.u == a && e.v == b) || (e.u == b && e.v == a) {
				return true
			}
		}
		return false
	}
	for len(qEdges) < wantEdges {
		// frontier: edges adjacent to current query vertices, not yet used
		var frontier []edge
		for v := range inQ {
			for _, w := range g.Neighbors(int(v)) {
				if !has(v, w) {
					frontier = append(frontier, edge{v, w})
				}
			}
		}
		if len(frontier) == 0 {
			break
		}
		e := frontier[r.Intn(len(frontier))]
		qEdges = append(qEdges, e)
		inQ[e.u] = true
		inQ[e.v] = true
	}
	ids := make([]int32, 0, len(inQ))
	for v := range inQ {
		ids = append(ids, v)
	}
	// deterministic renumbering: sort ascending
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	old2new := make(map[int32]int, len(ids))
	b := graph.NewBuilder("q")
	for i, v := range ids {
		old2new[v] = i
		b.AddVertex(g.Label(int(v)))
	}
	for _, e := range qEdges {
		if err := b.AddEdge(old2new[e.u], old2new[e.v]); err != nil {
			panic(err)
		}
	}
	return b.MustBuild()
}

func TestPlantedQueryIsFound(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := randomLabeledGraph(r, 20+r.Intn(30), 20, 3)
		q := extractQuery(r, g, 3+r.Intn(6))
		for _, m := range allMatchers(g) {
			embs, err := m.Match(context.Background(), q, 1)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, m.Name(), err)
			}
			if len(embs) == 0 {
				t.Fatalf("trial %d %s: planted query of %d edges not found", trial, m.Name(), q.M())
			}
			if err := match.VerifyEmbedding(q, g, embs[0]); err != nil {
				t.Fatalf("trial %d %s: invalid embedding: %v", trial, m.Name(), err)
			}
		}
	}
}

func TestDecisionAgreesWithReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLabeledGraph(r, 8+r.Intn(10), 6, 3)
		// random query: may or may not be present
		q := randomLabeledGraph(r, 3+r.Intn(4), 2, 3)
		ref := match.NewReference(g)
		want, err := ref.Match(context.Background(), q, 1)
		if err != nil {
			return false
		}
		for _, m := range allMatchers(g) {
			got, err := m.Match(context.Background(), q, 1)
			if err != nil {
				return false
			}
			if (len(got) > 0) != (len(want) > 0) {
				return false
			}
			if len(got) > 0 && match.VerifyEmbedding(q, g, got[0]) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEmbeddingCountAgreesWithReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomLabeledGraph(r, 7+r.Intn(6), 4, 2)
		q := extractQuery(r, g, 2+r.Intn(3))
		const lim = 100000
		ref := match.NewReference(g)
		want, err := ref.Match(context.Background(), q, lim)
		if err != nil {
			return false
		}
		for _, m := range allMatchers(g) {
			got, err := m.Match(context.Background(), q, lim)
			if err != nil {
				return false
			}
			if len(got) != len(want) {
				return false
			}
			for _, e := range got {
				if match.VerifyEmbedding(q, g, e) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Embeddings must be pairwise distinct: enumerating the same mapping twice
// would inflate counts.
func TestEmbeddingsDistinct(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := randomLabeledGraph(r, 12, 8, 2)
	q := extractQuery(r, g, 4)
	for _, m := range allMatchers(g) {
		embs, err := m.Match(context.Background(), q, 100000)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[string]bool)
		for _, e := range embs {
			key := ""
			for _, v := range e {
				key += string(rune(v)) + ","
			}
			if seen[key] {
				t.Fatalf("%s: duplicate embedding %v", m.Name(), e)
			}
			seen[key] = true
		}
	}
}

func TestLimitRespected(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := randomLabeledGraph(r, 30, 40, 1) // single label: many embeddings
	q := extractQuery(r, g, 2)
	for _, m := range allMatchers(g) {
		embs, err := m.Match(context.Background(), q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(embs) != 5 {
			t.Errorf("%s: got %d embeddings, want exactly 5 (limit)", m.Name(), len(embs))
		}
	}
}

func TestDecisionLimitZeroMeansOne(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := randomLabeledGraph(r, 15, 10, 1)
	q := extractQuery(r, g, 2)
	for _, m := range allMatchers(g) {
		embs, err := m.Match(context.Background(), q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(embs) != 1 {
			t.Errorf("%s: limit 0 should yield one embedding, got %d", m.Name(), len(embs))
		}
	}
}

func TestCancelledContext(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	// Large single-label graph: enumeration would take a long time.
	g := randomLabeledGraph(r, 200, 1500, 1)
	q := extractQuery(r, g, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range allMatchers(g) {
		start := time.Now()
		_, err := m.Match(ctx, q, 1000000)
		if err == nil {
			t.Errorf("%s: expected context error", m.Name())
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Errorf("%s: cancellation took %v", m.Name(), elapsed)
		}
	}
}

func TestDeadlineExceeded(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g := randomLabeledGraph(r, 300, 3000, 1)
	q := extractQuery(r, g, 10)
	for _, m := range allMatchers(g) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
		_, err := m.Match(ctx, q, 1<<30)
		cancel()
		if err != context.DeadlineExceeded {
			// Small chance the search finishes legitimately; only fail on
			// wrong error type.
			if err != nil {
				t.Errorf("%s: unexpected error %v", m.Name(), err)
			}
		}
	}
}

// A rewritten (isomorphic) query must produce the same embedding count, and
// MapBack must turn its embeddings into valid embeddings of the original.
func TestRewritingPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		g := randomLabeledGraph(r, 10+r.Intn(8), 6, 2)
		q := extractQuery(r, g, 3+r.Intn(3))
		freq := rewrite.FrequenciesOf(g)
		const lim = 100000
		for _, m := range allMatchers(g) {
			orig, err := m.Match(context.Background(), q, lim)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range rewrite.Structured {
				q2, perm := rewrite.Apply(q, freq, k, 0)
				got, err := m.Match(context.Background(), q2, lim)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(orig) {
					t.Fatalf("%s/%v: %d embeddings vs %d for original",
						m.Name(), k, len(got), len(orig))
				}
				if len(got) > 0 {
					back := rewrite.MapBack([]int32(got[0]), perm)
					if err := match.VerifyEmbedding(q, g, back); err != nil {
						t.Fatalf("%s/%v: MapBack invalid: %v", m.Name(), k, err)
					}
				}
			}
		}
	}
}

func TestEmptyQuery(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 1}, [][2]int{{0, 1}})
	q := graph.MustNew("q", nil, nil)
	for _, m := range allMatchers(g) {
		embs, err := m.Match(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(embs) != 1 || len(embs[0]) != 0 {
			t.Errorf("%s: empty query should yield one empty embedding", m.Name())
		}
	}
}

func TestQueryLargerThanGraph(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 0}, [][2]int{{0, 1}})
	q := graph.MustNew("q", []graph.Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}})
	for _, m := range allMatchers(g) {
		embs, err := m.Match(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(embs) != 0 {
			t.Errorf("%s: oversized query must have no embeddings", m.Name())
		}
	}
}

func TestLabelMismatchNoEmbedding(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}})
	q := graph.MustNew("q", []graph.Label{0, 7}, [][2]int{{0, 1}})
	for _, m := range allMatchers(g) {
		embs, err := m.Match(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(embs) != 0 {
			t.Errorf("%s: query with unknown label must have no embeddings", m.Name())
		}
	}
}

// Triangle query vs 6-cycle stored graph: all labels equal, query NOT
// contained (classic non-induced sub-iso check: C3 ⊄ C6).
func TestTriangleNotInHexagon(t *testing.T) {
	hex := graph.MustNew("hex", []graph.Label{0, 0, 0, 0, 0, 0},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	tri := graph.MustNew("tri", []graph.Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	for _, m := range allMatchers(hex) {
		embs, err := m.Match(context.Background(), tri, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(embs) != 0 {
			t.Errorf("%s: triangle must not embed into hexagon, got %v", m.Name(), embs)
		}
	}
}

// Non-induced semantics: a path of 3 vertices DOES embed into a triangle
// (the missing edge in the query is allowed to exist in the graph).
func TestNonInducedSemantics(t *testing.T) {
	tri := graph.MustNew("tri", []graph.Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	path := graph.MustNew("p", []graph.Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}})
	for _, m := range allMatchers(tri) {
		embs, err := m.Match(context.Background(), path, 100)
		if err != nil {
			t.Fatal(err)
		}
		// 3 choices for middle × 2 orders of endpoints = 6 embeddings
		if len(embs) != 6 {
			t.Errorf("%s: P3 into K3 should have 6 embeddings, got %d", m.Name(), len(embs))
		}
	}
}

func TestDisconnectedQuery(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 1, 0, 1}, [][2]int{{0, 1}, {2, 3}})
	q := graph.MustNew("q", []graph.Label{0, 1, 0, 1}, [][2]int{{0, 1}, {2, 3}})
	ref := match.NewReference(g)
	want, _ := ref.Match(context.Background(), q, 1000)
	for _, m := range allMatchers(g) {
		embs, err := m.Match(context.Background(), q, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(embs) != len(want) {
			t.Errorf("%s: disconnected query: %d embeddings, reference %d",
				m.Name(), len(embs), len(want))
		}
	}
}
