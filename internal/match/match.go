// Package match defines the contract shared by all subgraph-isomorphism
// algorithms in this repository (VF2, QuickSI, GraphQL, sPath and the naive
// reference matcher), plus the cooperative-cancellation budget that lets the
// Ψ-framework kill losing attempts promptly.
//
// All matchers solve non-induced subgraph isomorphism on vertex-labeled
// undirected graphs (Definition 3 of the paper): an injective mapping from
// query vertices to stored-graph vertices preserving labels and mapping
// every query edge onto a stored-graph edge.
package match

import (
	"context"
	"fmt"

	"github.com/psi-graph/psi/internal/graph"
)

// Embedding maps each query vertex (by index) to a stored-graph vertex.
type Embedding []int32

// Clone returns a copy of the embedding.
func (e Embedding) Clone() Embedding {
	c := make(Embedding, len(e))
	copy(c, e)
	return c
}

// Matcher matches query graphs against the stored graph it was constructed
// on. Implementations preprocess the stored graph at construction time (the
// "indexing phase" of the NFV methods, §3.1.2) and may be used concurrently
// by multiple goroutines once built.
type Matcher interface {
	// Name returns the algorithm's name as used in the paper's figures
	// (e.g. "GQL", "SPA", "QSI", "VF2").
	Name() string

	// Match returns up to limit embeddings of q in the stored graph.
	// limit <= 0 requests a decision: stop after the first embedding.
	// Match must poll ctx and return ctx.Err() promptly when cancelled;
	// any embeddings found before cancellation are discarded.
	Match(ctx context.Context, q *graph.Graph, limit int) ([]Embedding, error)
}

// Sink receives embeddings as a streaming search finds them. Emit is called
// once per embedding, in discovery order, with a copy the sink may retain.
// Returning false stops the search immediately (a consumer that has seen
// enough — e.g. a decision query, or a race that only needed the first
// result). Sinks are called from the searching goroutine and must not block
// on the search's own completion.
type Sink interface {
	Emit(Embedding) bool
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Embedding) bool

// Emit implements Sink.
func (f SinkFunc) Emit(e Embedding) bool { return f(e) }

// StreamMatcher is the streaming face of a matcher: embeddings are emitted
// into a sink as the search discovers them instead of being materialized in
// a slice. Every matcher in this module implements it; Match is the thin
// collecting wrapper over MatchStream.
type StreamMatcher interface {
	Matcher

	// MatchStream emits up to limit embeddings of q into sink (limit <= 0
	// requests a decision: the search stops after the first embedding).
	// The search also stops, returning nil, when the sink's Emit returns
	// false. Context cancellation surfaces as a non-nil error; embeddings
	// already emitted remain with the sink.
	MatchStream(ctx context.Context, q *graph.Graph, limit int, sink Sink) error
}

// CollectMatch drains m.MatchStream into a slice — the canonical
// implementation of Match on top of MatchStream.
func CollectMatch(ctx context.Context, m StreamMatcher, q *graph.Graph, limit int) ([]Embedding, error) {
	var out []Embedding
	err := m.MatchStream(ctx, q, limit, SinkFunc(func(e Embedding) bool {
		out = append(out, e)
		return true
	}))
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stream runs m against q in streaming fashion: natively when m implements
// StreamMatcher, otherwise by materializing Match's slice and replaying it
// into the sink. The fallback keeps third-party Matcher implementations
// usable wherever the framework streams (races, the Engine), at the cost of
// first-result latency.
func Stream(ctx context.Context, m Matcher, q *graph.Graph, limit int, sink Sink) error {
	if sm, ok := m.(StreamMatcher); ok {
		return sm.MatchStream(ctx, q, limit, sink)
	}
	embs, err := m.Match(ctx, q, limit)
	if err != nil {
		return err
	}
	for _, e := range embs {
		if !sink.Emit(e) {
			return nil
		}
	}
	return nil
}

// NormalizeLimit converts the caller's limit into the effective embedding
// cap: decisions (limit <= 0) stop at the first embedding.
func NormalizeLimit(limit int) int {
	if limit <= 0 {
		return 1
	}
	return limit
}

// pollInterval is how many search steps pass between context polls. Small
// enough that a straggler attempt dies within microseconds of cancellation,
// large enough that polling cost is negligible.
const pollInterval = 256

// Budget provides amortized context-cancellation checks to search loops.
type Budget struct {
	ctx     context.Context
	counter uint32
}

// NewBudget wraps ctx for use inside a matcher's recursion.
func NewBudget(ctx context.Context) *Budget { return &Budget{ctx: ctx} }

// Step counts one unit of search work and returns a non-nil error if the
// context has been cancelled or its deadline exceeded. It checks the
// context once every pollInterval steps.
func (b *Budget) Step() error {
	b.counter++
	if b.counter%pollInterval == 0 {
		return b.ctx.Err()
	}
	return nil
}

// Steps reports how many steps have been counted; used by tests and by the
// instrumentation in the harness.
func (b *Budget) Steps() uint32 { return b.counter }

// VerifyEmbedding checks that emb is a valid non-induced subgraph
// isomorphism of q into g: correct length, injective, label-preserving and
// edge-preserving. Matcher tests and the Ψ-framework's paranoid mode use it
// to validate winners.
func VerifyEmbedding(q, g *graph.Graph, emb Embedding) error {
	if len(emb) != q.N() {
		return fmt.Errorf("embedding has %d entries, query has %d vertices", len(emb), q.N())
	}
	seen := make(map[int32]int, len(emb))
	for u, v := range emb {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("query vertex %d mapped to out-of-range vertex %d", u, v)
		}
		if prev, dup := seen[v]; dup {
			return fmt.Errorf("vertices %d and %d both mapped to %d (not injective)", prev, u, v)
		}
		seen[v] = u
		if q.Label(u) != g.Label(int(v)) {
			return fmt.Errorf("label mismatch at query vertex %d: %d vs %d", u, q.Label(u), g.Label(int(v)))
		}
	}
	var bad error
	q.LabeledEdges(func(a, b int, l graph.Label) {
		if bad == nil && !g.HasEdgeLabeled(int(emb[a]), int(emb[b]), l) {
			bad = fmt.Errorf("query edge (%d,%d) with label %d not mapped to a same-labeled graph edge", a, b, l)
		}
	})
	return bad
}

// errStop is the internal sentinel used by backtracking searches to unwind
// once the embedding limit has been reached. It never escapes a Match call.
var errStop = fmt.Errorf("match: embedding limit reached")

// Collector bridges a backtracking search to a Sink: it hands the search a
// single Found callback, clones each embedding, enforces the limit, and
// translates both "limit reached" and "sink stopped" into errStop so the
// search unwinds.
type Collector struct {
	limit int
	n     int
	sink  Sink
}

// NewStreamCollector returns a collector forwarding up to limit embeddings
// (after NormalizeLimit) into sink.
func NewStreamCollector(limit int, sink Sink) *Collector {
	return &Collector{limit: NormalizeLimit(limit), sink: sink}
}

// Found emits a copy of emb. It returns errStop when the limit is hit or
// the sink declines further embeddings; the search must propagate the error
// upward to terminate.
func (c *Collector) Found(emb Embedding) error {
	c.n++
	if !c.sink.Emit(emb.Clone()) {
		return errStop
	}
	if c.n >= c.limit {
		return errStop
	}
	return nil
}

// Done reports whether the limit has been reached.
func (c *Collector) Done() bool { return c.n >= c.limit }

// FinishStream converts a search's terminal error into the MatchStream
// return convention: errStop (limit reached or sink stopped) is a normal
// termination, anything else propagates.
func (c *Collector) FinishStream(err error) error {
	if err != nil && err != errStop {
		return err
	}
	return nil
}

// IsStop reports whether err is the internal limit sentinel. Exposed for
// matcher implementations in sibling packages.
func IsStop(err error) bool { return err == errStop }

// Stop returns the limit sentinel for matcher implementations.
func Stop() error { return errStop }
