// Package match defines the contract shared by all subgraph-isomorphism
// algorithms in this repository (VF2, QuickSI, GraphQL, sPath and the naive
// reference matcher), plus the cooperative-cancellation budget that lets the
// Ψ-framework kill losing attempts promptly.
//
// All matchers solve non-induced subgraph isomorphism on vertex-labeled
// undirected graphs (Definition 3 of the paper): an injective mapping from
// query vertices to stored-graph vertices preserving labels and mapping
// every query edge onto a stored-graph edge.
package match

import (
	"context"
	"fmt"

	"github.com/psi-graph/psi/internal/graph"
)

// Embedding maps each query vertex (by index) to a stored-graph vertex.
type Embedding []int32

// Clone returns a copy of the embedding.
func (e Embedding) Clone() Embedding {
	c := make(Embedding, len(e))
	copy(c, e)
	return c
}

// Matcher matches query graphs against the stored graph it was constructed
// on. Implementations preprocess the stored graph at construction time (the
// "indexing phase" of the NFV methods, §3.1.2) and may be used concurrently
// by multiple goroutines once built.
type Matcher interface {
	// Name returns the algorithm's name as used in the paper's figures
	// (e.g. "GQL", "SPA", "QSI", "VF2").
	Name() string

	// Match returns up to limit embeddings of q in the stored graph.
	// limit <= 0 requests a decision: stop after the first embedding.
	// Match must poll ctx and return ctx.Err() promptly when cancelled;
	// any embeddings found before cancellation are discarded.
	Match(ctx context.Context, q *graph.Graph, limit int) ([]Embedding, error)
}

// NormalizeLimit converts the caller's limit into the effective embedding
// cap: decisions (limit <= 0) stop at the first embedding.
func NormalizeLimit(limit int) int {
	if limit <= 0 {
		return 1
	}
	return limit
}

// pollInterval is how many search steps pass between context polls. Small
// enough that a straggler attempt dies within microseconds of cancellation,
// large enough that polling cost is negligible.
const pollInterval = 256

// Budget provides amortized context-cancellation checks to search loops.
type Budget struct {
	ctx     context.Context
	counter uint32
}

// NewBudget wraps ctx for use inside a matcher's recursion.
func NewBudget(ctx context.Context) *Budget { return &Budget{ctx: ctx} }

// Step counts one unit of search work and returns a non-nil error if the
// context has been cancelled or its deadline exceeded. It checks the
// context once every pollInterval steps.
func (b *Budget) Step() error {
	b.counter++
	if b.counter%pollInterval == 0 {
		return b.ctx.Err()
	}
	return nil
}

// Steps reports how many steps have been counted; used by tests and by the
// instrumentation in the harness.
func (b *Budget) Steps() uint32 { return b.counter }

// VerifyEmbedding checks that emb is a valid non-induced subgraph
// isomorphism of q into g: correct length, injective, label-preserving and
// edge-preserving. Matcher tests and the Ψ-framework's paranoid mode use it
// to validate winners.
func VerifyEmbedding(q, g *graph.Graph, emb Embedding) error {
	if len(emb) != q.N() {
		return fmt.Errorf("embedding has %d entries, query has %d vertices", len(emb), q.N())
	}
	seen := make(map[int32]int, len(emb))
	for u, v := range emb {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("query vertex %d mapped to out-of-range vertex %d", u, v)
		}
		if prev, dup := seen[v]; dup {
			return fmt.Errorf("vertices %d and %d both mapped to %d (not injective)", prev, u, v)
		}
		seen[v] = u
		if q.Label(u) != g.Label(int(v)) {
			return fmt.Errorf("label mismatch at query vertex %d: %d vs %d", u, q.Label(u), g.Label(int(v)))
		}
	}
	var bad error
	q.LabeledEdges(func(a, b int, l graph.Label) {
		if bad == nil && !g.HasEdgeLabeled(int(emb[a]), int(emb[b]), l) {
			bad = fmt.Errorf("query edge (%d,%d) with label %d not mapped to a same-labeled graph edge", a, b, l)
		}
	})
	return bad
}

// errStop is the internal sentinel used by backtracking searches to unwind
// once the embedding limit has been reached. It never escapes a Match call.
var errStop = fmt.Errorf("match: embedding limit reached")

// Collector accumulates embeddings up to a limit, handing searches a single
// Found callback and translating "limit reached" into errStop.
type Collector struct {
	limit int
	out   []Embedding
}

// NewCollector returns a collector for up to limit embeddings (after
// NormalizeLimit).
func NewCollector(limit int) *Collector {
	return &Collector{limit: NormalizeLimit(limit)}
}

// Found records a copy of emb. It returns errStop when the limit is hit,
// which the search must propagate upward to terminate.
func (c *Collector) Found(emb Embedding) error {
	c.out = append(c.out, emb.Clone())
	if len(c.out) >= c.limit {
		return errStop
	}
	return nil
}

// Done reports whether the limit has been reached.
func (c *Collector) Done() bool { return len(c.out) >= c.limit }

// Results returns the accumulated embeddings.
func (c *Collector) Results() []Embedding { return c.out }

// Finish converts a search's terminal error into the Match return
// convention: errStop means a successful, limit-capped run.
func (c *Collector) Finish(err error) ([]Embedding, error) {
	if err != nil && err != errStop {
		return nil, err
	}
	return c.out, nil
}

// IsStop reports whether err is the internal limit sentinel. Exposed for
// matcher implementations in sibling packages.
func IsStop(err error) bool { return err == errStop }

// Stop returns the limit sentinel for matcher implementations.
func Stop() error { return errStop }
