package match

import (
	"context"
	"testing"

	"github.com/psi-graph/psi/internal/graph"
)

func TestNormalizeLimit(t *testing.T) {
	cases := map[int]int{-5: 1, 0: 1, 1: 1, 7: 7, 1000: 1000}
	for in, want := range cases {
		if got := NormalizeLimit(in); got != want {
			t.Errorf("NormalizeLimit(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestBudgetStepPollsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := NewBudget(ctx)
	for i := 0; i < 100; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("unexpected error before cancel: %v", err)
		}
	}
	cancel()
	var got error
	for i := 0; i < 1000; i++ {
		if err := b.Step(); err != nil {
			got = err
			break
		}
	}
	if got != context.Canceled {
		t.Errorf("expected context.Canceled within a poll interval, got %v", got)
	}
	if b.Steps() == 0 {
		t.Error("Steps should count")
	}
}

func TestCollectorLimit(t *testing.T) {
	var got []Embedding
	c := NewStreamCollector(2, SinkFunc(func(e Embedding) bool {
		got = append(got, e)
		return true
	}))
	if c.Done() {
		t.Error("fresh collector should not be done")
	}
	if err := c.Found(Embedding{1}); err != nil {
		t.Errorf("first Found: %v", err)
	}
	err := c.Found(Embedding{2})
	if !IsStop(err) {
		t.Errorf("second Found should hit limit, got %v", err)
	}
	if !c.Done() {
		t.Error("collector should be done")
	}
	if finishErr := c.FinishStream(err); finishErr != nil {
		t.Errorf("FinishStream should swallow the stop sentinel, got %v", finishErr)
	}
	if len(got) != 2 {
		t.Errorf("sink saw %d embeddings, want 2", len(got))
	}
}

func TestCollectorSinkStopIsStop(t *testing.T) {
	c := NewStreamCollector(10, SinkFunc(func(Embedding) bool { return false }))
	if err := c.Found(Embedding{1}); !IsStop(err) {
		t.Errorf("a declining sink must stop the search, got %v", err)
	}
}

func TestCollectorFinishStreamPropagatesRealErrors(t *testing.T) {
	c := NewStreamCollector(5, SinkFunc(func(Embedding) bool { return true }))
	if err := c.FinishStream(context.Canceled); err != context.Canceled {
		t.Errorf("FinishStream must propagate non-sentinel errors, got %v", err)
	}
}

func TestCollectorClonesEmbeddings(t *testing.T) {
	var got []Embedding
	c := NewStreamCollector(10, SinkFunc(func(e Embedding) bool {
		got = append(got, e)
		return true
	}))
	e := Embedding{1, 2, 3}
	if err := c.Found(e); err != nil {
		t.Fatal(err)
	}
	e[0] = 99
	if got[0][0] != 1 {
		t.Error("collector must emit a copy, not alias the search buffer")
	}
}

func TestVerifyEmbedding(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0, 1, 0}, [][2]int{{0, 1}, {1, 2}})
	q := graph.MustNew("q", []graph.Label{0, 1}, [][2]int{{0, 1}})
	if err := VerifyEmbedding(q, g, Embedding{0, 1}); err != nil {
		t.Errorf("valid embedding rejected: %v", err)
	}
	if err := VerifyEmbedding(q, g, Embedding{0}); err == nil {
		t.Error("wrong length accepted")
	}
	if err := VerifyEmbedding(q, g, Embedding{0, 5}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if err := VerifyEmbedding(q, g, Embedding{1, 1}); err == nil {
		t.Error("non-injective embedding accepted")
	}
	if err := VerifyEmbedding(q, g, Embedding{1, 0}); err == nil {
		t.Error("label-mismatched embedding accepted")
	}
	if err := VerifyEmbedding(q, g, Embedding{0, 2}); err == nil {
		t.Error("embedding with missing edge accepted (0-2 not an edge)")
	}
	// non-adjacent but label-correct pair 2,1: edge (2,1) exists, valid
	if err := VerifyEmbedding(q, g, Embedding{2, 1}); err != nil {
		t.Errorf("valid embedding rejected: %v", err)
	}
}

func TestEmbeddingClone(t *testing.T) {
	e := Embedding{4, 5}
	c := e.Clone()
	c[0] = 9
	if e[0] != 4 {
		t.Error("Clone must not alias")
	}
}

func TestReferenceName(t *testing.T) {
	g := graph.MustNew("g", []graph.Label{0}, nil)
	if NewReference(g).Name() != "REF" {
		t.Error("reference matcher name")
	}
}
