package match_test

// Edge-label cross-validation: with Definition 1's edge labels in play,
// every matcher must (i) agree with the reference matcher on decision and
// counts, and (ii) refuse embeddings that map a query edge onto a stored
// edge with a different label.

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/rewrite"
)

func randomEdgeLabeledGraph(r *rand.Rand, n, extra, vLabels, eLabels int) *graph.Graph {
	b := graph.NewBuilder("g")
	for i := 0; i < n; i++ {
		b.AddVertex(graph.Label(r.Intn(vLabels)))
	}
	for v := 1; v < n; v++ {
		if err := b.AddLabeledEdge(r.Intn(v), v, graph.Label(r.Intn(eLabels))); err != nil {
			panic(err)
		}
	}
	for i := 0; i < extra; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !b.HasEdgePending(u, v) {
			if err := b.AddLabeledEdge(u, v, graph.Label(r.Intn(eLabels))); err != nil {
				panic(err)
			}
		}
	}
	return b.MustBuild()
}

// extractEdgeLabeledQuery grows a connected query carrying the source
// graph's edge labels.
func extractEdgeLabeledQuery(r *rand.Rand, g *graph.Graph, wantEdges int) *graph.Graph {
	start := r.Intn(g.N())
	inQ := map[int32]bool{int32(start): true}
	ordered := []int32{int32(start)}
	type edge struct{ u, v int32 }
	var qEdges []edge
	used := map[[2]int32]bool{}
	key := func(a, b int32) [2]int32 {
		if a > b {
			a, b = b, a
		}
		return [2]int32{a, b}
	}
	for len(qEdges) < wantEdges {
		var frontier []edge
		for _, v := range ordered {
			for _, w := range g.Neighbors(int(v)) {
				if !used[key(v, w)] {
					frontier = append(frontier, edge{v, w})
				}
			}
		}
		if len(frontier) == 0 {
			break
		}
		e := frontier[r.Intn(len(frontier))]
		qEdges = append(qEdges, e)
		used[key(e.u, e.v)] = true
		for _, x := range []int32{e.u, e.v} {
			if !inQ[x] {
				inQ[x] = true
				ordered = append(ordered, x)
			}
		}
	}
	ids := append([]int32(nil), ordered...)
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	old2new := make(map[int32]int, len(ids))
	b := graph.NewBuilder("q")
	for i, v := range ids {
		old2new[v] = i
		b.AddVertex(g.Label(int(v)))
	}
	for _, e := range qEdges {
		if err := b.AddLabeledEdge(old2new[e.u], old2new[e.v], g.EdgeLabel(int(e.u), int(e.v))); err != nil {
			panic(err)
		}
	}
	return b.MustBuild()
}

func TestEdgeLabeledPlantedQueryFound(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		g := randomEdgeLabeledGraph(r, 20+r.Intn(20), 15, 3, 3)
		q := extractEdgeLabeledQuery(r, g, 3+r.Intn(5))
		for _, m := range allMatchers(g) {
			embs, err := m.Match(context.Background(), q, 1)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			if len(embs) == 0 {
				t.Fatalf("trial %d %s: edge-labeled planted query not found", trial, m.Name())
			}
			if err := match.VerifyEmbedding(q, g, embs[0]); err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
		}
	}
}

func TestEdgeLabeledCountsAgreeWithReference(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomEdgeLabeledGraph(r, 8+r.Intn(6), 5, 2, 2)
		q := extractEdgeLabeledQuery(r, g, 2+r.Intn(3))
		const lim = 100000
		want, err := match.NewReference(g).Match(context.Background(), q, lim)
		if err != nil {
			return false
		}
		for _, m := range allMatchers(g) {
			got, err := m.Match(context.Background(), q, lim)
			if err != nil || len(got) != len(want) {
				return false
			}
			for _, e := range got {
				if match.VerifyEmbedding(q, g, e) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// An edge-label mismatch alone must rule out all embeddings: same
// structure, same vertex labels, different edge label.
func TestEdgeLabelMismatchRejectsEmbedding(t *testing.T) {
	b := graph.NewBuilder("g")
	b.AddVertex(0)
	b.AddVertex(0)
	if err := b.AddLabeledEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	qb := graph.NewBuilder("q")
	qb.AddVertex(0)
	qb.AddVertex(0)
	if err := qb.AddLabeledEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	q := qb.MustBuild()
	for _, m := range allMatchers(g) {
		embs, err := m.Match(context.Background(), q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(embs) != 0 {
			t.Errorf("%s: edge-label mismatch must yield no embeddings, got %v", m.Name(), embs)
		}
	}
}

// Rewritings must preserve edge labels, so matching a rewritten
// edge-labeled query yields the same counts.
func TestEdgeLabeledRewritingPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	g := randomEdgeLabeledGraph(r, 15, 10, 2, 2)
	q := extractEdgeLabeledQuery(r, g, 4)
	freq := rewrite.FrequenciesOf(g)
	const lim = 100000
	for _, m := range allMatchers(g) {
		orig, err := m.Match(context.Background(), q, lim)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range rewrite.Structured {
			q2, perm := rewrite.Apply(q, freq, k, 0)
			got, err := m.Match(context.Background(), q2, lim)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(orig) {
				t.Fatalf("%s/%v: %d vs %d embeddings", m.Name(), k, len(got), len(orig))
			}
			if len(got) > 0 {
				back := rewrite.MapBack([]int32(got[0]), perm)
				if err := match.VerifyEmbedding(q, g, back); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestVerifyEmbeddingChecksEdgeLabels(t *testing.T) {
	b := graph.NewBuilder("g")
	b.AddVertex(0)
	b.AddVertex(0)
	if err := b.AddLabeledEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g := b.MustBuild()
	qb := graph.NewBuilder("q")
	qb.AddVertex(0)
	qb.AddVertex(0)
	if err := qb.AddLabeledEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	q := qb.MustBuild()
	if match.VerifyEmbedding(q, g, match.Embedding{0, 1}) == nil {
		t.Error("VerifyEmbedding must reject edge-label mismatches")
	}
}
