package match

import (
	"context"

	"github.com/psi-graph/psi/internal/graph"
)

// Reference is a deliberately naive backtracking matcher used as the ground
// truth in cross-validation tests: it enumerates query vertices in ID order
// and tries every label-compatible stored vertex with only adjacency and
// injectivity checks. It has no pruning beyond correctness, so it is slow
// but obviously right.
type Reference struct {
	g *graph.Graph
}

// NewReference builds a reference matcher over stored graph g.
func NewReference(g *graph.Graph) *Reference {
	return &Reference{g: g}
}

// Name implements Matcher.
func (r *Reference) Name() string { return "REF" }

// Match implements Matcher by collecting the stream into a slice.
func (r *Reference) Match(ctx context.Context, q *graph.Graph, limit int) ([]Embedding, error) {
	return CollectMatch(ctx, r, q, limit)
}

// MatchStream implements StreamMatcher by exhaustive backtracking.
func (r *Reference) MatchStream(ctx context.Context, q *graph.Graph, limit int, sink Sink) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	col := NewStreamCollector(limit, sink)
	if q.N() == 0 {
		return col.FinishStream(col.Found(Embedding{}))
	}
	if q.N() > r.g.N() {
		return nil
	}
	budget := NewBudget(ctx)
	emb := make(Embedding, q.N())
	for i := range emb {
		emb[i] = -1
	}
	used := make([]bool, r.g.N())
	var rec func(u int) error
	rec = func(u int) error {
		if u == q.N() {
			return col.Found(emb)
		}
		for _, v := range r.g.VerticesWithLabel(q.Label(u)) {
			if err := budget.Step(); err != nil {
				return err
			}
			if used[v] {
				continue
			}
			ok := true
			for _, w := range q.Neighbors(u) {
				if int(w) < u && !r.g.HasEdgeLabeled(int(emb[w]), int(v), q.EdgeLabel(u, int(w))) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			emb[u] = v
			used[v] = true
			if err := rec(u + 1); err != nil {
				return err
			}
			used[v] = false
			emb[u] = -1
		}
		return nil
	}
	return col.FinishStream(rec(0))
}
