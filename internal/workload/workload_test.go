package workload

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/psi-graph/psi/internal/gen"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/vf2"
)

func TestExtractSizeAndConnectivity(t *testing.T) {
	g := gen.YeastLike(gen.Tiny, 1)
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		size := 4 + r.Intn(12)
		q := Extract(r, g, size)
		if q.M() != size {
			t.Errorf("trial %d: extracted %d edges, want %d (graph is large enough)", trial, q.M(), size)
		}
		if !q.IsConnected() {
			t.Errorf("trial %d: extracted query must be connected", trial)
		}
	}
}

// The defining property of the §3.4 workload: extracted queries are
// contained in their source graph.
func TestExtractedQueryIsContained(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := gen.Single("g", gen.SingleConfig{Nodes: 60, Edges: 150, Labels: 4, PrefAttach: 0.3, Tree: true}, seed)
		q := Extract(r, g, 2+r.Intn(6))
		embs, err := vf2.Match(context.Background(), q, g, 1)
		return err == nil && len(embs) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExtractExhaustsSmallComponent(t *testing.T) {
	// tiny triangle: asking for 10 edges must stop at 3
	g := graph.MustNew("tri", []graph.Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	r := rand.New(rand.NewSource(1))
	q := Extract(r, g, 10)
	if q.M() != 3 {
		t.Errorf("got %d edges, want 3 (component exhausted)", q.M())
	}
}

func TestExtractEmptyGraph(t *testing.T) {
	g := graph.MustNew("empty", nil, nil)
	q := Extract(rand.New(rand.NewSource(1)), g, 5)
	if q.N() != 0 {
		t.Errorf("empty graph should yield empty query")
	}
}

func TestGenerateShape(t *testing.T) {
	ds := gen.Synthetic(gen.SyntheticAt(gen.Tiny), 1)
	sizes := []int{4, 8}
	qs := Generate(ds, sizes, 5, 42)
	if len(qs) != 10 {
		t.Fatalf("got %d queries, want 10", len(qs))
	}
	for i, q := range qs {
		wantSize := sizes[i/5]
		if q.WantEdges != wantSize {
			t.Errorf("query %d: WantEdges = %d, want %d", i, q.WantEdges, wantSize)
		}
		if q.Source < 0 || q.Source >= len(ds) {
			t.Errorf("query %d: bad source %d", i, q.Source)
		}
		if q.Graph.M() > wantSize {
			t.Errorf("query %d: %d edges exceeds requested %d", i, q.Graph.M(), wantSize)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	ds := gen.Synthetic(gen.SyntheticAt(gen.Tiny), 1)
	a := Generate(ds, []int{6}, 4, 9)
	b := Generate(ds, []int{6}, 4, 9)
	for i := range a {
		if !a[i].Graph.Equal(b[i].Graph) || a[i].Source != b[i].Source {
			t.Fatalf("query %d differs between equal-seed runs", i)
		}
	}
}

func TestGenerateSingle(t *testing.T) {
	g := gen.YeastLike(gen.Tiny, 3)
	qs := GenerateSingle(g, []int{5}, 3, 1)
	if len(qs) != 3 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.Source != 0 {
			t.Errorf("single-graph source = %d", q.Source)
		}
	}
}
