// Package workload generates query workloads exactly as §3.4 of the paper
// prescribes: "first we select a graph from the dataset uniformly and at
// random, and from that graph we select a node uniformly and at random.
// Starting from said node, we generate a query graph by incrementally
// adding edges chosen uniformly at random from the set of all edges
// adjacent to the resulting query graph, until it reaches the desired
// size." Extracted queries are therefore guaranteed to be contained in
// their source graph — any observed non-containment is against the *other*
// dataset graphs.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/psi-graph/psi/internal/graph"
)

// Query is one workload entry.
type Query struct {
	// Graph is the query graph, renumbered to dense IDs.
	Graph *graph.Graph
	// Source is the index of the dataset graph the query was extracted
	// from (always 0 for single-graph NFV datasets).
	Source int
	// WantEdges is the requested size; Graph.M() may be smaller if the
	// source component was exhausted first.
	WantEdges int
}

// Extract grows a connected query of up to wantEdges edges from a uniformly
// random start vertex of g.
func Extract(r *rand.Rand, g *graph.Graph, wantEdges int) *graph.Graph {
	if g.N() == 0 {
		return graph.MustNew("q", nil, nil)
	}
	start := r.Intn(g.N())
	inQ := map[int32]bool{int32(start): true}
	vertices := []int32{int32(start)} // insertion order: keeps iteration deterministic
	type edge struct{ u, v int32 }
	var qEdges []edge
	used := make(map[[2]int32]bool, wantEdges)
	has := func(a, b int32) bool {
		if a > b {
			a, b = b, a
		}
		return used[[2]int32{a, b}]
	}
	add := func(a, b int32) {
		if a > b {
			a, b = b, a
		}
		used[[2]int32{a, b}] = true
	}
	join := func(v int32) {
		if !inQ[v] {
			inQ[v] = true
			vertices = append(vertices, v)
		}
	}
	for len(qEdges) < wantEdges {
		var frontier []edge
		for _, v := range vertices {
			for _, w := range g.Neighbors(int(v)) {
				if !has(v, w) {
					frontier = append(frontier, edge{v, w})
				}
			}
		}
		if len(frontier) == 0 {
			break
		}
		e := frontier[r.Intn(len(frontier))]
		qEdges = append(qEdges, e)
		add(e.u, e.v)
		join(e.u)
		join(e.v)
	}
	ids := make([]int32, len(vertices))
	copy(ids, vertices)
	sortInt32(ids)
	old2new := make(map[int32]int, len(ids))
	b := graph.NewBuilder(fmt.Sprintf("q%de", len(qEdges)))
	for i, v := range ids {
		old2new[v] = i
		b.AddVertex(g.Label(int(v)))
	}
	for _, e := range qEdges {
		if err := b.AddEdge(old2new[e.u], old2new[e.v]); err != nil {
			panic(err) // unreachable: endpoints exist and edges are distinct
		}
	}
	return b.MustBuild()
}

// Generate builds count queries of each size from the dataset, drawing the
// source graph uniformly per query. Deterministic given the seed.
func Generate(ds []*graph.Graph, sizes []int, count int, seed int64) []Query {
	r := rand.New(rand.NewSource(seed))
	var out []Query
	for _, size := range sizes {
		for i := 0; i < count; i++ {
			src := r.Intn(len(ds))
			q := Extract(r, ds[src], size)
			out = append(out, Query{Graph: q, Source: src, WantEdges: size})
		}
	}
	return out
}

// GenerateSingle builds count queries of each size from one stored graph
// (the NFV setting).
func GenerateSingle(g *graph.Graph, sizes []int, count int, seed int64) []Query {
	return Generate([]*graph.Graph{g}, sizes, count, seed)
}

func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
