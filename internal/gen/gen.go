// Package gen provides the dataset generators that stand in for the paper's
// datasets (see the substitution table in DESIGN.md). Two families:
//
//   - FTV datasets (many graphs): Synthetic reproduces the parameter surface
//     of GraphGen (#graphs, average nodes, density, #labels) used for the
//     paper's synthetic dataset; PPI reproduces the shape of the paper's
//     20-network protein–protein interaction dataset (Table 1).
//
//   - NFV datasets (one large graph): Single is a configurable generator
//     combining preferential attachment (degree skew) with Zipf-distributed
//     labels (label-frequency skew); YeastLike, HumanLike and WordnetLike
//     are presets matching the Table 2 shapes at several scales.
//
// All generators are deterministic given a seed.
package gen

import (
	"fmt"
	"math/rand"

	"github.com/psi-graph/psi/internal/graph"
)

// Scale selects how large the generated datasets are. The paper's absolute
// sizes (Paper) are reproducible but slow; the smaller scales preserve the
// structural ratios (density, label skew, degree skew) while keeping test
// and benchmark runtimes sane.
type Scale int

const (
	// Tiny is for unit tests: seconds for the full pipeline.
	Tiny Scale = iota
	// Small is the default benchmark scale.
	Small
	// Medium is for longer experiment runs (cmd/psibench -scale medium).
	Medium
	// Paper matches the paper's dataset sizes (Tables 1 and 2).
	Paper
)

// ParseScale converts a CLI string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("gen: unknown scale %q (want tiny|small|medium|paper)", s)
}

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Paper:
		return "paper"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// SyntheticConfig mirrors GraphGen's parameters as described in §3.3 of the
// paper: "number of graphs, average number of nodes and density per graph,
// number of labels in the dataset".
type SyntheticConfig struct {
	NumGraphs  int
	AvgNodes   int
	NodeSpread int // uniform ± spread around AvgNodes
	Density    float64
	Labels     int
}

// SyntheticAt returns the synthetic-dataset configuration for a scale.
// At Paper scale it matches Table 1: 1000 graphs, 1100 avg nodes, density
// 0.020, 20 labels.
func SyntheticAt(scale Scale) SyntheticConfig {
	// Label alphabets shrink with graph size so per-label frequency (the
	// quantity that drives sub-iso hardness) stays in a realistic band;
	// see DESIGN.md §3.
	switch scale {
	case Tiny:
		return SyntheticConfig{NumGraphs: 8, AvgNodes: 70, NodeSpread: 20, Density: 0.10, Labels: 4}
	case Small:
		return SyntheticConfig{NumGraphs: 16, AvgNodes: 120, NodeSpread: 40, Density: 0.07, Labels: 5}
	case Medium:
		return SyntheticConfig{NumGraphs: 40, AvgNodes: 300, NodeSpread: 120, Density: 0.04, Labels: 10}
	default:
		return SyntheticConfig{NumGraphs: 1000, AvgNodes: 1100, NodeSpread: 480, Density: 0.020, Labels: 20}
	}
}

// Synthetic generates a GraphGen-style dataset: each graph is connected
// (spanning tree plus random edges up to the target density) with uniform
// labels.
func Synthetic(cfg SyntheticConfig, seed int64) []*graph.Graph {
	r := rand.New(rand.NewSource(seed))
	ds := make([]*graph.Graph, cfg.NumGraphs)
	for i := range ds {
		n := cfg.AvgNodes
		if cfg.NodeSpread > 0 {
			n += r.Intn(2*cfg.NodeSpread+1) - cfg.NodeSpread
		}
		if n < 2 {
			n = 2
		}
		m := int(cfg.Density * float64(n) * float64(n-1) / 2)
		if m < n-1 {
			m = n - 1 // keep connectivity
		}
		ds[i] = connectedRandom(r, fmt.Sprintf("synthetic-%04d", i), n, m, func() graph.Label {
			return graph.Label(r.Intn(cfg.Labels))
		})
	}
	return ds
}

// PPIConfig shapes the protein-interaction-style dataset of Table 1.
type PPIConfig struct {
	NumGraphs   int
	AvgNodes    int
	NodeSpread  int
	AvgDegree   float64
	Labels      int     // dataset-wide label alphabet
	LabelsPer   int     // distinct labels per graph (~28.5 of 46 in Table 1)
	IsolatedPct float64 // fraction of vertices left isolated => disconnected graphs
}

// PPIAt returns the PPI-dataset configuration for a scale. At Paper scale it
// matches Table 1: 20 graphs, 4942±2648 nodes, avg degree 10.87, 46 labels.
func PPIAt(scale Scale) PPIConfig {
	// Smaller scales share the whole (shrunken) label alphabet between
	// graphs so the filter passes enough candidate pairs for straggler
	// behaviour to show; Paper scale restores Table 1's 28.5-of-46
	// per-graph subsets.
	switch scale {
	case Tiny:
		return PPIConfig{NumGraphs: 4, AvgNodes: 130, NodeSpread: 30, AvgDegree: 8, Labels: 4, LabelsPer: 4, IsolatedPct: 0.02}
	case Small:
		return PPIConfig{NumGraphs: 8, AvgNodes: 220, NodeSpread: 70, AvgDegree: 8, Labels: 6, LabelsPer: 5, IsolatedPct: 0.02}
	case Medium:
		return PPIConfig{NumGraphs: 20, AvgNodes: 500, NodeSpread: 250, AvgDegree: 9, Labels: 18, LabelsPer: 12, IsolatedPct: 0.02}
	default:
		return PPIConfig{NumGraphs: 20, AvgNodes: 4942, NodeSpread: 2648, AvgDegree: 10.87, Labels: 46, LabelsPer: 28, IsolatedPct: 0.02}
	}
}

// PPI generates the protein-interaction-style dataset: sparse graphs, a
// per-graph label subset, and a small fraction of isolated vertices so the
// graphs are disconnected, as all 20 PPI networks are in Table 1.
func PPI(cfg PPIConfig, seed int64) []*graph.Graph {
	r := rand.New(rand.NewSource(seed))
	ds := make([]*graph.Graph, cfg.NumGraphs)
	for i := range ds {
		n := cfg.AvgNodes
		if cfg.NodeSpread > 0 {
			n += r.Intn(2*cfg.NodeSpread+1) - cfg.NodeSpread
		}
		if n < 4 {
			n = 4
		}
		// per-graph label subset
		perm := r.Perm(cfg.Labels)
		sub := perm[:cfg.LabelsPer]
		isolated := int(float64(n) * cfg.IsolatedPct)
		if isolated < 1 {
			isolated = 1
		}
		connected := n - isolated
		m := int(cfg.AvgDegree * float64(n) / 2)
		if m < connected-1 {
			m = connected - 1
		}
		b := graph.NewBuilder(fmt.Sprintf("ppi-%02d", i))
		for v := 0; v < n; v++ {
			b.AddVertex(graph.Label(sub[r.Intn(len(sub))]))
		}
		// spanning tree over the non-isolated prefix, then random extras
		for v := 1; v < connected; v++ {
			mustAdd(b, r.Intn(v), v)
		}
		added := connected - 1
		for tries := 0; added < m && tries < 20*m; tries++ {
			u, v := r.Intn(connected), r.Intn(connected)
			if u != v && !b.HasEdgePending(u, v) {
				mustAdd(b, u, v)
				added++
			}
		}
		ds[i] = b.MustBuild()
	}
	return ds
}

// connectedRandom builds one connected random graph with n vertices and m
// edges (m ≥ n-1), labels drawn from labelFn.
func connectedRandom(r *rand.Rand, name string, n, m int, labelFn func() graph.Label) *graph.Graph {
	b := graph.NewBuilder(name)
	for v := 0; v < n; v++ {
		b.AddVertex(labelFn())
	}
	type edge struct{ u, v int }
	seen := make(map[[2]int]bool, m)
	addEdge := func(u, v int) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			return false
		}
		seen[[2]int{u, v}] = true
		mustAdd(b, u, v)
		return true
	}
	for v := 1; v < n; v++ {
		addEdge(r.Intn(v), v)
	}
	added := n - 1
	for tries := 0; added < m && tries < 30*m; tries++ {
		if addEdge(r.Intn(n), r.Intn(n)) {
			added++
		}
	}
	return b.MustBuild()
}

func mustAdd(b *graph.Builder, u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}
