package gen

import (
	"math/rand"

	"github.com/psi-graph/psi/internal/graph"
)

// SingleConfig shapes a single large stored graph for the NFV methods,
// matching the statistics the paper reports in Table 2 and leans on in
// §6.2: node/edge counts (density), label alphabet size, label-frequency
// skew, and degree skew.
type SingleConfig struct {
	Nodes  int
	Edges  int
	Labels int
	// LabelZipfS is the Zipf exponent for label assignment; values > 1
	// concentrate frequency mass on few labels (wordnet-style). Zero or
	// negative means uniform labels.
	LabelZipfS float64
	// PrefAttach is the probability that an edge endpoint is chosen by
	// preferential attachment (proportional to current degree) rather
	// than uniformly; produces heavy-tailed degree distributions like
	// yeast's and human's (Table 2: degree stddev ≈ 1.5–2× the mean).
	PrefAttach float64
	// Tree forces a spanning tree so the graph is connected; wordnet-like
	// graphs (avg degree 2.9) are dominated by their tree edges.
	Tree bool
	// EdgeLabels > 1 assigns each edge a uniform random label from
	// [0, EdgeLabels). The paper's datasets are vertex-labeled only, so
	// every preset leaves this at 0; it exists for the edge-labeled
	// extension exercised by the tests.
	EdgeLabels int
}

// Single generates one stored graph per cfg, deterministically from seed.
func Single(name string, cfg SingleConfig, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	n := cfg.Nodes
	b := graph.NewBuilder(name)
	// Labels: uniform or Zipf-skewed over the alphabet.
	if cfg.LabelZipfS > 1 {
		z := rand.NewZipf(r, cfg.LabelZipfS, 1, uint64(cfg.Labels-1))
		for v := 0; v < n; v++ {
			b.AddVertex(graph.Label(z.Uint64()))
		}
	} else {
		for v := 0; v < n; v++ {
			b.AddVertex(graph.Label(r.Intn(cfg.Labels)))
		}
	}
	seen := make(map[[2]int]bool, cfg.Edges)
	// endpoints records every edge endpoint; picking a uniform element
	// implements preferential attachment (probability ∝ degree).
	endpoints := make([]int, 0, 2*cfg.Edges)
	addEdge := func(u, v int) bool {
		if u == v {
			return false
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			return false
		}
		seen[[2]int{u, v}] = true
		el := graph.Label(0)
		if cfg.EdgeLabels > 1 {
			el = graph.Label(r.Intn(cfg.EdgeLabels))
		}
		if err := b.AddLabeledEdge(u, v, el); err != nil {
			panic(err)
		}
		endpoints = append(endpoints, u, v)
		return true
	}
	pick := func() int {
		if cfg.PrefAttach > 0 && len(endpoints) > 0 && r.Float64() < cfg.PrefAttach {
			return endpoints[r.Intn(len(endpoints))]
		}
		return r.Intn(n)
	}
	added := 0
	if cfg.Tree {
		for v := 1; v < n; v++ {
			u := r.Intn(v)
			if cfg.PrefAttach > 0 && len(endpoints) > 0 && r.Float64() < cfg.PrefAttach {
				if c := endpoints[r.Intn(len(endpoints))]; c < v {
					u = c // preferential attachment, constrained to earlier vertices
				}
			}
			if addEdge(u, v) {
				added++
			}
		}
	}
	for tries := 0; added < cfg.Edges && tries < 40*cfg.Edges; tries++ {
		if addEdge(pick(), pick()) {
			added++
		}
	}
	return b.MustBuild()
}

// YeastLikeAt returns the yeast-shaped configuration for a scale. At Paper
// scale it matches Table 2: 3112 nodes, 12519 edges, 184 labels, moderate
// label skew (avg frequency 127, stddev 322) and heavy-tailed degrees.
func YeastLikeAt(scale Scale) SingleConfig {
	switch scale {
	case Tiny:
		return SingleConfig{Nodes: 250, Edges: 1000, Labels: 24, LabelZipfS: 1.4, PrefAttach: 0.95, Tree: true}
	case Small:
		return SingleConfig{Nodes: 700, Edges: 2800, Labels: 50, LabelZipfS: 1.4, PrefAttach: 0.95, Tree: true}
	case Medium:
		return SingleConfig{Nodes: 1500, Edges: 6000, Labels: 100, LabelZipfS: 1.4, PrefAttach: 0.95, Tree: true}
	default:
		return SingleConfig{Nodes: 3112, Edges: 12519, Labels: 184, LabelZipfS: 1.4, PrefAttach: 0.95, Tree: true}
	}
}

// HumanLikeAt returns the human-shaped configuration: much denser (avg
// degree ≈ 37 at paper scale) with a 90-label alphabet.
func HumanLikeAt(scale Scale) SingleConfig {
	switch scale {
	case Tiny:
		return SingleConfig{Nodes: 200, Edges: 3000, Labels: 16, LabelZipfS: 1.3, PrefAttach: 0.4, Tree: true}
	case Small:
		return SingleConfig{Nodes: 500, Edges: 8500, Labels: 30, LabelZipfS: 1.3, PrefAttach: 0.4, Tree: true}
	case Medium:
		return SingleConfig{Nodes: 1200, Edges: 22000, Labels: 50, LabelZipfS: 1.3, PrefAttach: 0.4, Tree: true}
	default:
		return SingleConfig{Nodes: 4674, Edges: 86282, Labels: 90, LabelZipfS: 1.3, PrefAttach: 0.4, Tree: true}
	}
}

// WordnetLikeAt returns the wordnet-shaped configuration: very sparse (avg
// degree 2.9: almost a tree), only 5 labels with extreme frequency skew —
// the regime where §6.2 observes that rewritings stop helping.
func WordnetLikeAt(scale Scale) SingleConfig {
	switch scale {
	case Tiny:
		return SingleConfig{Nodes: 600, Edges: 900, Labels: 5, LabelZipfS: 2.6, PrefAttach: 0.3, Tree: true}
	case Small:
		return SingleConfig{Nodes: 2000, Edges: 3000, Labels: 5, LabelZipfS: 2.6, PrefAttach: 0.3, Tree: true}
	case Medium:
		return SingleConfig{Nodes: 8000, Edges: 12000, Labels: 5, LabelZipfS: 2.6, PrefAttach: 0.3, Tree: true}
	default:
		return SingleConfig{Nodes: 82670, Edges: 120399, Labels: 5, LabelZipfS: 2.6, PrefAttach: 0.3, Tree: true}
	}
}

// YeastLike generates the yeast-shaped stored graph at the given scale.
func YeastLike(scale Scale, seed int64) *graph.Graph {
	return Single("yeast-like", YeastLikeAt(scale), seed)
}

// HumanLike generates the human-shaped stored graph at the given scale.
func HumanLike(scale Scale, seed int64) *graph.Graph {
	return Single("human-like", HumanLikeAt(scale), seed)
}

// WordnetLike generates the wordnet-shaped stored graph at the given scale.
func WordnetLike(scale Scale, seed int64) *graph.Graph {
	return Single("wordnet-like", WordnetLikeAt(scale), seed)
}
