package gen

import (
	"math"
	"testing"

	"github.com/psi-graph/psi/internal/graph"
)

func TestParseScale(t *testing.T) {
	for _, s := range []Scale{Tiny, Small, Medium, Paper} {
		got, err := ParseScale(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScale(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("expected error for unknown scale")
	}
	if Scale(42).String() == "" {
		t.Error("unknown scale should still stringify")
	}
}

func TestSyntheticShape(t *testing.T) {
	cfg := SyntheticAt(Tiny)
	ds := Synthetic(cfg, 1)
	if len(ds) != cfg.NumGraphs {
		t.Fatalf("got %d graphs, want %d", len(ds), cfg.NumGraphs)
	}
	st := graph.ComputeDatasetStats("synthetic", ds)
	if st.Labels > cfg.Labels {
		t.Errorf("labels = %d > %d", st.Labels, cfg.Labels)
	}
	if math.Abs(st.AvgNodes-float64(cfg.AvgNodes)) > float64(cfg.NodeSpread) {
		t.Errorf("avg nodes %.1f too far from %d", st.AvgNodes, cfg.AvgNodes)
	}
	// GraphGen graphs are connected
	if st.NumDisconnected != 0 {
		t.Errorf("%d disconnected synthetic graphs, want 0", st.NumDisconnected)
	}
	// density within a factor ~2 of target
	if st.AvgDensity < cfg.Density/2 || st.AvgDensity > cfg.Density*3 {
		t.Errorf("avg density %.4f vs target %.4f", st.AvgDensity, cfg.Density)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(SyntheticAt(Tiny), 7)
	b := Synthetic(SyntheticAt(Tiny), 7)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("graph %d differs between equal-seed runs", i)
		}
	}
	c := Synthetic(SyntheticAt(Tiny), 8)
	if a[0].Equal(c[0]) {
		t.Error("different seeds should differ")
	}
}

func TestPPIShape(t *testing.T) {
	cfg := PPIAt(Tiny)
	ds := PPI(cfg, 1)
	if len(ds) != cfg.NumGraphs {
		t.Fatalf("got %d graphs", len(ds))
	}
	st := graph.ComputeDatasetStats("ppi", ds)
	// Table 1: all PPI graphs are disconnected
	if st.NumDisconnected != cfg.NumGraphs {
		t.Errorf("%d/%d disconnected, want all (isolated vertices)", st.NumDisconnected, cfg.NumGraphs)
	}
	if st.Labels > cfg.Labels {
		t.Errorf("dataset labels %d > %d", st.Labels, cfg.Labels)
	}
	// per-graph label subset ≈ LabelsPer
	for _, g := range ds {
		if g.DistinctLabels() > cfg.LabelsPer {
			t.Errorf("graph uses %d labels > %d", g.DistinctLabels(), cfg.LabelsPer)
		}
	}
}

func TestSingleRespectsCounts(t *testing.T) {
	cfg := SingleConfig{Nodes: 300, Edges: 900, Labels: 10, LabelZipfS: 1.5, PrefAttach: 0.5, Tree: true}
	g := Single("s", cfg, 3)
	if g.N() != 300 {
		t.Errorf("n = %d", g.N())
	}
	if g.M() < 850 || g.M() > 900 {
		t.Errorf("m = %d, want ≈900", g.M())
	}
	if !g.IsConnected() {
		t.Error("Tree config must produce a connected graph")
	}
}

func TestYeastLikeShape(t *testing.T) {
	g := YeastLike(Tiny, 1)
	st := graph.ComputeStats(g)
	// degree skew: stddev should exceed the mean substantially (Table 2:
	// yeast 14.5 vs 8.04)
	if st.StdDevDegree < st.AvgDegree {
		t.Errorf("degree stddev %.2f should exceed avg %.2f (heavy tail)", st.StdDevDegree, st.AvgDegree)
	}
	// label skew: stddev of label frequency > avg (Table 2: 322 vs 127)
	if st.StdDevLblFreq < st.AvgLabelFreq {
		t.Errorf("label-freq stddev %.2f should exceed avg %.2f", st.StdDevLblFreq, st.AvgLabelFreq)
	}
}

func TestHumanLikeIsDenser(t *testing.T) {
	y := graph.ComputeStats(YeastLike(Tiny, 1))
	h := graph.ComputeStats(HumanLike(Tiny, 1))
	if h.AvgDegree <= y.AvgDegree*2 {
		t.Errorf("human avg degree %.1f should be well above yeast %.1f", h.AvgDegree, y.AvgDegree)
	}
}

func TestWordnetLikeShape(t *testing.T) {
	g := WordnetLike(Tiny, 1)
	st := graph.ComputeStats(g)
	if st.Labels > 5 {
		t.Errorf("wordnet-like labels = %d, want ≤5", st.Labels)
	}
	if st.AvgDegree > 4 {
		t.Errorf("wordnet-like avg degree %.1f, want near-tree sparsity", st.AvgDegree)
	}
	// extreme label skew: most frequent label covers the majority
	freq := g.LabelFrequencies()
	maxF := 0
	for _, c := range freq {
		if c > maxF {
			maxF = c
		}
	}
	if float64(maxF) < 0.5*float64(g.N()) {
		t.Errorf("dominant label covers %d/%d vertices, want majority", maxF, g.N())
	}
}

func TestPaperScaleConfigsMatchTable(t *testing.T) {
	s := SyntheticAt(Paper)
	if s.NumGraphs != 1000 || s.AvgNodes != 1100 || s.Labels != 20 {
		t.Errorf("synthetic paper config = %+v", s)
	}
	p := PPIAt(Paper)
	if p.NumGraphs != 20 || p.AvgNodes != 4942 || p.Labels != 46 {
		t.Errorf("ppi paper config = %+v", p)
	}
	y := YeastLikeAt(Paper)
	if y.Nodes != 3112 || y.Edges != 12519 || y.Labels != 184 {
		t.Errorf("yeast paper config = %+v", y)
	}
	h := HumanLikeAt(Paper)
	if h.Nodes != 4674 || h.Edges != 86282 || h.Labels != 90 {
		t.Errorf("human paper config = %+v", h)
	}
	w := WordnetLikeAt(Paper)
	if w.Nodes != 82670 || w.Edges != 120399 || w.Labels != 5 {
		t.Errorf("wordnet paper config = %+v", w)
	}
}

func TestSingleDeterministic(t *testing.T) {
	a := YeastLike(Tiny, 5)
	b := YeastLike(Tiny, 5)
	if !a.Equal(b) {
		t.Error("same seed must reproduce the graph")
	}
}

func TestSingleEdgeLabels(t *testing.T) {
	cfg := SingleConfig{Nodes: 100, Edges: 300, Labels: 5, EdgeLabels: 3, Tree: true}
	g := Single("el", cfg, 9)
	if !g.HasEdgeLabelsBeyondDefault() {
		t.Fatal("EdgeLabels config must produce non-default edge labels")
	}
	seen := map[graph.Label]bool{}
	g.LabeledEdges(func(u, v int, l graph.Label) {
		if l < 0 || l >= 3 {
			t.Fatalf("edge label %d out of range", l)
		}
		seen[l] = true
	})
	if len(seen) < 2 {
		t.Errorf("expected at least 2 distinct edge labels, got %v", seen)
	}
	// presets stay edge-unlabeled (paper datasets are vertex-labeled)
	if YeastLike(Tiny, 1).HasEdgeLabelsBeyondDefault() {
		t.Error("yeast preset must not have edge labels")
	}
}
