package predict

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/psi-graph/psi/internal/graph"
)

func TestClassKeyBucketsAndStability(t *testing.T) {
	path3 := graph.MustNew("p3", []graph.Label{1, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	path3b := graph.MustNew("p3b", []graph.Label{4, 4, 9}, [][2]int{{0, 1}, {1, 2}})
	big := graph.MustNew("big", make([]graph.Label, 40), [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8},
	})
	if ClassKey(path3) != ClassKey(path3) {
		t.Error("ClassKey must be deterministic")
	}
	// Same shape, different concrete labels but same distinct-label count:
	// one class.
	if ClassKey(path3) != ClassKey(path3b) {
		t.Errorf("same-shape queries split classes: %q vs %q", ClassKey(path3), ClassKey(path3b))
	}
	if ClassKey(path3) == ClassKey(big) {
		t.Error("very different sizes should land in different classes")
	}
	empty := graph.MustNew("e", nil, nil)
	if ClassKey(empty) != "n0m0l0" {
		t.Errorf("empty-graph class = %q, want n0m0l0", ClassKey(empty))
	}
}

func TestLogBucket(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1024, 11},
	} {
		if got := logBucket(tc.in); got != tc.want {
			t.Errorf("logBucket(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestBanditWarmupRaces(t *testing.T) {
	b := NewBandit([]string{"ftv", "grapes"}, BanditOptions{MinSamples: 3})
	if b.Arms() != 2 {
		t.Fatalf("Arms = %d", b.Arms())
	}
	for i := 0; i < 3; i++ {
		d := b.Decide("c")
		if d.Solo || d.Reason != ReasonWarmup {
			t.Fatalf("decision %d during warmup = %+v, want race/warmup", i, d)
		}
		if d.Class != "c" {
			t.Errorf("class echoed back = %q", d.Class)
		}
		b.ObserveRaceWin("c", 0, time.Millisecond)
	}
	d := b.Decide("c")
	if !d.Solo || d.Arm != 0 || d.Reason != ReasonLearned {
		t.Fatalf("post-warmup decision = %+v, want solo arm 0 (learned)", d)
	}
}

func TestBanditPicksFastestArm(t *testing.T) {
	b := NewBandit([]string{"slow", "fast"}, BanditOptions{MinSamples: 2, RaceEvery: -1})
	b.ObserveRaceWin("c", 0, 10*time.Millisecond)
	b.ObserveRaceWin("c", 1, time.Millisecond)
	d := b.Decide("c")
	if !d.Solo || d.Arm != 1 {
		t.Fatalf("decision = %+v, want solo arm 1 (the faster arm)", d)
	}
	// Solo completions keep refining the estimate; a run of slow solos on
	// arm 1 can flip the choice back.
	for i := 0; i < 8; i++ {
		b.ObserveSolo("c", 1, 100*time.Millisecond)
	}
	d = b.Decide("c")
	if !d.Solo || d.Arm != 0 {
		t.Fatalf("decision after slow solos = %+v, want solo arm 0", d)
	}
}

func TestBanditKillEscalatesAndPenalizesArm(t *testing.T) {
	b := NewBandit([]string{"a", "b"}, BanditOptions{MinSamples: 1, RaceEvery: -1})
	b.ObserveRaceWin("c", 0, time.Millisecond)
	b.ObserveRaceWin("c", 1, 2*time.Millisecond)
	if d := b.Decide("c"); !d.Solo || d.Arm != 0 {
		t.Fatalf("pre-kill decision = %+v, want solo arm 0", d)
	}

	b.ObserveKill("c", 0)
	d := b.Decide("c")
	if d.Solo || d.Reason != ReasonEscalated {
		t.Fatalf("post-kill decision = %+v, want race/escalated", d)
	}
	// Escalation persists until a race win clears it.
	if d := b.Decide("c"); d.Solo || d.Reason != ReasonEscalated {
		t.Fatalf("second post-kill decision = %+v, still want race/escalated", d)
	}
	b.ObserveRaceWin("c", 1, 2*time.Millisecond)
	// Arm 0's kill doubled its score (1ms × 2 > 2ms × 1 is a tie at 2ms;
	// another kill makes it strictly worse), so the class now prefers arm 1.
	b.ObserveKill("c", 0)
	b.ObserveRaceWin("c", 1, 2*time.Millisecond)
	d = b.Decide("c")
	if !d.Solo || d.Arm != 1 {
		t.Fatalf("decision after kills on arm 0 = %+v, want solo arm 1", d)
	}
}

// The satellite regression: a client disconnect (cancellation) must leave
// the learned statistics and the escalation flag completely untouched,
// unlike a budget kill.
func TestBanditCancelledIsNotEvidence(t *testing.T) {
	b := NewBandit([]string{"a"}, BanditOptions{MinSamples: 1, RaceEvery: -1})
	b.ObserveRaceWin("c", 0, time.Millisecond)
	before := b.Snapshot()

	for i := 0; i < 50; i++ {
		b.ObserveCancelled("c", 0)
	}
	after := b.Snapshot()
	if before.Arms[0] != after.Arms[0] {
		t.Fatalf("cancellations changed arm stats: %+v -> %+v", before.Arms[0], after.Arms[0])
	}
	if after.Escalated != 0 {
		t.Fatal("cancellations must not escalate the class")
	}
	if d := b.Decide("c"); !d.Solo || d.Arm != 0 {
		t.Fatalf("decision after cancellations = %+v, want solo arm 0 unchanged", d)
	}

	// And the contrast: one kill does what 50 cancellations must not.
	b.ObserveKill("c", 0)
	if d := b.Decide("c"); d.Solo {
		t.Fatalf("decision after kill = %+v, want race", d)
	}
	if got := b.Snapshot(); got.Arms[0].Kills != 1 || got.Escalated != 1 {
		t.Fatalf("snapshot after kill = %+v", got)
	}
}

func TestBanditStalenessRerace(t *testing.T) {
	b := NewBandit([]string{"a"}, BanditOptions{MinSamples: 1, RaceEvery: 4})
	b.ObserveRaceWin("c", 0, time.Millisecond) // decision counter untouched
	var stale, solo int
	for i := 0; i < 16; i++ {
		d := b.Decide("c")
		switch {
		case d.Solo:
			solo++
		case d.Reason == ReasonStale:
			stale++
		default:
			t.Fatalf("decision %d = %+v", i, d)
		}
	}
	if stale != 4 {
		t.Errorf("stale races = %d over 16 decisions with RaceEvery=4, want 4", stale)
	}
	if solo != 12 {
		t.Errorf("solo decisions = %d, want 12", solo)
	}
}

func TestBanditStalenessDisabled(t *testing.T) {
	b := NewBandit([]string{"a"}, BanditOptions{MinSamples: 1, RaceEvery: -1})
	b.ObserveRaceWin("c", 0, time.Millisecond)
	for i := 0; i < 64; i++ {
		if d := b.Decide("c"); !d.Solo {
			t.Fatalf("decision %d = %+v, want solo (staleness disabled)", i, d)
		}
	}
}

func TestBanditDefaults(t *testing.T) {
	b := NewBandit([]string{"a"}, BanditOptions{})
	// Default MinSamples is 3: two wins are not enough.
	b.ObserveRaceWin("c", 0, time.Millisecond)
	b.ObserveRaceWin("c", 0, time.Millisecond)
	if d := b.Decide("c"); d.Solo {
		t.Fatalf("decision with 2 samples = %+v, want warmup race (default MinSamples 3)", d)
	}
	b.ObserveRaceWin("c", 0, time.Millisecond)
	sawStale := false
	for i := 0; i < 32; i++ {
		if d := b.Decide("c"); d.Reason == ReasonStale {
			sawStale = true
		}
	}
	if !sawStale {
		t.Error("default RaceEvery should force a stale re-race within 32 decisions")
	}
}

func TestBanditClassesAreIndependent(t *testing.T) {
	b := NewBandit([]string{"a", "b"}, BanditOptions{MinSamples: 1, RaceEvery: -1})
	b.ObserveRaceWin("hot", 1, time.Millisecond)
	if d := b.Decide("hot"); !d.Solo || d.Arm != 1 {
		t.Fatalf("hot class decision = %+v", d)
	}
	if d := b.Decide("cold"); d.Solo || d.Reason != ReasonWarmup {
		t.Fatalf("cold class decision = %+v, want warmup race", d)
	}
	// A kill in one class must not escalate another.
	b.ObserveKill("hot", 1)
	b.ObserveRaceWin("cold", 0, time.Millisecond)
	if d := b.Decide("cold"); !d.Solo {
		t.Fatalf("cold class decision after hot kill = %+v, want solo", d)
	}
}

func TestBanditObserveOutOfRangeArm(t *testing.T) {
	b := NewBandit([]string{"a"}, BanditOptions{MinSamples: 1})
	b.ObserveRaceWin("c", -1, time.Millisecond)
	b.ObserveRaceWin("c", 5, time.Millisecond)
	b.ObserveSolo("c", 5, time.Millisecond)
	b.ObserveKill("c", -2)
	snap := b.Snapshot()
	if snap.Arms[0].RaceWins != 0 || snap.Arms[0].Kills != 0 {
		t.Fatalf("out-of-range observations were recorded: %+v", snap.Arms[0])
	}
}

func TestBanditSnapshotAggregates(t *testing.T) {
	b := NewBandit([]string{"x", "y"}, BanditOptions{MinSamples: 1})
	b.ObserveRaceWin("c1", 0, 2*time.Millisecond)
	b.ObserveSolo("c2", 0, 4*time.Millisecond)
	b.ObserveRaceWin("c2", 1, time.Millisecond)
	b.ObserveKill("c1", 1)
	snap := b.Snapshot()
	if snap.Classes != 2 {
		t.Errorf("Classes = %d, want 2", snap.Classes)
	}
	if snap.Escalated != 1 {
		t.Errorf("Escalated = %d, want 1 (c1)", snap.Escalated)
	}
	x, y := snap.Arms[0], snap.Arms[1]
	if x.Name != "x" || y.Name != "y" {
		t.Fatalf("arm names = %q, %q", x.Name, y.Name)
	}
	if x.RaceWins != 1 || x.SoloRuns != 1 || x.Kills != 0 {
		t.Errorf("arm x = %+v", x)
	}
	if x.MeanLatencyUS != 3000 { // (2ms + 4ms) / 2
		t.Errorf("arm x mean latency = %dµs, want 3000", x.MeanLatencyUS)
	}
	if y.RaceWins != 1 || y.Kills != 1 || y.MeanLatencyUS != 1000 {
		t.Errorf("arm y = %+v", y)
	}
}

func TestBanditConcurrentUse(t *testing.T) {
	b := NewBandit([]string{"a", "b", "c"}, BanditOptions{MinSamples: 2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			class := fmt.Sprintf("class-%d", w%3)
			for i := 0; i < 200; i++ {
				d := b.Decide(class)
				if d.Solo {
					if i%7 == 0 {
						b.ObserveKill(class, d.Arm)
					} else {
						b.ObserveSolo(class, d.Arm, time.Duration(i)*time.Microsecond)
					}
				} else {
					b.ObserveRaceWin(class, (w+i)%3, time.Duration(i)*time.Microsecond)
				}
				if i%50 == 0 {
					b.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := b.Snapshot()
	var total int64
	for _, a := range snap.Arms {
		total += a.RaceWins + a.SoloRuns + a.Kills
	}
	if total != 8*200 {
		t.Errorf("total observations = %d, want %d", total, 8*200)
	}
}
