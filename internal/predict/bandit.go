package predict

// Bandit is the traffic-aware planning policy: a per-query-class multi-armed
// bandit over the engine's portfolio (filtering indexes for dataset engines,
// matcher×rewriting attempts for stored-graph engines). Where the
// nearest-neighbour Predictor answers "which arm looks best for this feature
// vector", the Bandit answers the serving question underneath it: "is it safe
// to run that arm *alone*, or must this query still pay for a full race?"
//
// The policy is deliberately conservative, because racing is the correctness
// backstop the paper's framework is built on:
//
//   - Unfamiliar classes race. Until a class has MinSamples successful
//     observations, every query of that class races the full portfolio — the
//     race both answers the query and trains the arms.
//   - Stale classes re-race. Every RaceEvery-th decision of a class races
//     even when a best arm is known, so a drifting workload (or an arm whose
//     early wins were luck) keeps being re-measured.
//   - Killed arms escalate. A solo attempt killed by the engine's per-query
//     budget is strong evidence against the arm AND against soloing the
//     class at all: the kill is recorded on the arm and the class's next
//     decision is forced back to a full race.
//   - Cancellation is not evidence. A client disconnect (or server drain)
//     says nothing about the arm's quality; ObserveCancelled exists so
//     callers route that outcome explicitly to a no-op instead of silently
//     conflating it with a kill and poisoning the statistics.
//
// Safe for concurrent use; the zero value is not usable — construct with
// NewBandit.

import (
	"math/bits"
	"strconv"
	"sync"
	"time"

	"github.com/psi-graph/psi/internal/graph"
)

// ClassKey buckets a query graph into a coarse traffic class: logarithmic
// buckets of vertex count, edge count and distinct-label count. Queries in
// one class are close enough in shape that one arm choice transfers between
// them; the key is O(|q|) to compute and allocation-light, so planning can
// afford it on every query.
func ClassKey(q *graph.Graph) string {
	n, m := q.N(), q.M()
	l := len(q.LabelFrequencies())
	var b []byte
	b = append(b, 'n')
	b = strconv.AppendInt(b, int64(logBucket(n)), 10)
	b = append(b, 'm')
	b = strconv.AppendInt(b, int64(logBucket(m)), 10)
	b = append(b, 'l')
	b = strconv.AppendInt(b, int64(logBucket(l)), 10)
	return string(b)
}

// logBucket maps x to its log2 bucket (0 for x <= 0).
func logBucket(x int) int {
	if x <= 0 {
		return 0
	}
	return bits.Len(uint(x))
}

// BanditOptions tunes a Bandit. The zero value selects the defaults noted on
// each field.
type BanditOptions struct {
	// MinSamples is how many successful observations (race wins + solo
	// completions) a class needs before its queries may run solo; 0 means 3.
	MinSamples int
	// RaceEvery forces every Nth decision of a class to a full race even
	// when a best arm is known, so the statistics cannot go stale; 0 means
	// 16, negative disables staleness races entirely.
	RaceEvery int
}

// Reasons a Decide call escalates to (or stays at) a full race, surfaced so
// planners and benchmarks can report why CPU was spent.
const (
	// ReasonWarmup: the class has too few observations to trust an arm.
	ReasonWarmup = "warmup"
	// ReasonStale: a periodic re-race to refresh the class's statistics.
	ReasonStale = "stale"
	// ReasonEscalated: the class's previous solo attempt was killed by the
	// per-query budget.
	ReasonEscalated = "escalated"
	// ReasonLearned: a solo decision backed by the class's statistics.
	ReasonLearned = "learned"
)

// Decision is one planning choice for one query.
type Decision struct {
	// Class is the query's traffic class (ClassKey).
	Class string
	// Solo is true when the query should run Arm alone; false means race
	// the full portfolio.
	Solo bool
	// Arm is the portfolio position to run solo (valid only when Solo).
	Arm int
	// Reason says why: ReasonLearned for solo, ReasonWarmup / ReasonStale /
	// ReasonEscalated for races.
	Reason string
}

// armStats accumulates one arm's evidence within one class.
type armStats struct {
	wins       int64 // full races this arm won
	solos      int64 // solo runs that completed
	kills      int64 // solo runs killed by the budget
	latencySum time.Duration
}

func (a *armStats) successes() int64 { return a.wins + a.solos }

// meanLatency is the arm's average observed first-result latency.
func (a *armStats) meanLatency() time.Duration {
	n := a.successes()
	if n == 0 {
		return 0
	}
	return a.latencySum / time.Duration(n)
}

// score orders arms for solo selection: mean observed latency, inflated by
// (1 + kills) so an arm the budget has killed must out-measure the clean
// arms by a widening margin before it is trusted solo again.
func (a *armStats) score() time.Duration {
	return a.meanLatency() * time.Duration(1+a.kills)
}

// classStats is one traffic class's state.
type classStats struct {
	decisions int64 // Decide calls, for the staleness schedule
	escalated bool  // last solo was killed: next decision must race
	arms      []armStats
}

// Bandit is the policy object. Construct with NewBandit; all methods are
// safe for concurrent use.
type Bandit struct {
	names []string
	opts  BanditOptions

	mu      sync.Mutex
	classes map[string]*classStats
}

// NewBandit builds a bandit over a portfolio of len(armNames) arms. The
// names label arms in snapshots; they must match the portfolio order the
// caller plans with.
func NewBandit(armNames []string, opts BanditOptions) *Bandit {
	if opts.MinSamples <= 0 {
		opts.MinSamples = 3
	}
	if opts.RaceEvery == 0 {
		opts.RaceEvery = 16
	}
	return &Bandit{
		names:   append([]string(nil), armNames...),
		opts:    opts,
		classes: map[string]*classStats{},
	}
}

// Arms reports the portfolio size.
func (b *Bandit) Arms() int { return len(b.names) }

// class returns (creating if needed) the state of one class. Caller holds
// b.mu.
func (b *Bandit) class(key string) *classStats {
	c := b.classes[key]
	if c == nil {
		c = &classStats{arms: make([]armStats, len(b.names))}
		b.classes[key] = c
	}
	return c
}

// Decide picks solo-vs-race for one query of the given class. The decision
// order is: escalation (a prior budget kill) beats everything; then warmup
// (too few samples); then the staleness schedule; only then a learned solo.
// A class whose every observed arm has been killed keeps racing.
func (b *Bandit) Decide(class string) Decision {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.class(class)
	c.decisions++
	d := Decision{Class: class}
	if c.escalated {
		d.Reason = ReasonEscalated
		return d
	}
	var successes int64
	for i := range c.arms {
		successes += c.arms[i].successes()
	}
	if successes < int64(b.opts.MinSamples) {
		d.Reason = ReasonWarmup
		return d
	}
	if b.opts.RaceEvery > 0 && c.decisions%int64(b.opts.RaceEvery) == 0 {
		d.Reason = ReasonStale
		return d
	}
	best, bestScore := -1, time.Duration(0)
	for i := range c.arms {
		a := &c.arms[i]
		if a.successes() == 0 {
			continue // never observed succeeding: not eligible solo
		}
		if s := a.score(); best < 0 || s < bestScore {
			best, bestScore = i, s
		}
	}
	if best < 0 {
		d.Reason = ReasonWarmup
		return d
	}
	d.Solo, d.Arm, d.Reason = true, best, ReasonLearned
	return d
}

// ObserveRaceWin records a full race of the class won by arm with the given
// first-result latency. A completed race also clears the class's kill
// escalation: the portfolio just demonstrated a live arm.
func (b *Bandit) ObserveRaceWin(class string, arm int, latency time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.class(class)
	if arm < 0 || arm >= len(c.arms) {
		return
	}
	c.escalated = false
	c.arms[arm].wins++
	c.arms[arm].latencySum += latency
}

// ObserveSolo records a solo run of arm that completed within the budget.
func (b *Bandit) ObserveSolo(class string, arm int, latency time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.class(class)
	if arm < 0 || arm >= len(c.arms) {
		return
	}
	c.arms[arm].solos++
	c.arms[arm].latencySum += latency
}

// ObserveKill records a solo run of arm that the engine's per-query budget
// killed: evidence against the arm, and the class escalates — its next
// decision is a full race regardless of the statistics.
func (b *Bandit) ObserveKill(class string, arm int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.class(class)
	if arm < 0 || arm >= len(c.arms) {
		return
	}
	c.escalated = true
	c.arms[arm].kills++
}

// ObserveCancelled records a solo run that ended because the *caller* went
// away (client disconnect, server drain) rather than because the arm was
// slow. It is deliberately a no-op: cancellation carries no information
// about the arm, and routing it here — instead of to ObserveKill — is what
// keeps disconnect storms from poisoning the learned statistics.
func (b *Bandit) ObserveCancelled(class string, arm int) {}

// ArmSummary is one arm's evidence aggregated across every class.
type ArmSummary struct {
	Name          string `json:"name"`
	RaceWins      int64  `json:"race_wins"`
	SoloRuns      int64  `json:"solo_runs"`
	Kills         int64  `json:"kills"`
	MeanLatencyUS int64  `json:"mean_latency_us"`
}

// BanditSnapshot is a point-in-time copy of the bandit's learned state,
// shaped for a serving layer's /stats endpoint.
type BanditSnapshot struct {
	// Classes is how many distinct traffic classes have been observed.
	Classes int `json:"classes"`
	// Escalated is how many classes currently have a kill escalation
	// pending (their next decision races).
	Escalated int `json:"escalated"`
	// Arms summarizes each portfolio arm across all classes, in portfolio
	// order.
	Arms []ArmSummary `json:"arms"`
}

// Snapshot aggregates the per-class statistics into one per-arm view. Safe
// to call while decisions and observations are in flight.
func (b *Bandit) Snapshot() BanditSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	snap := BanditSnapshot{Classes: len(b.classes), Arms: make([]ArmSummary, len(b.names))}
	sums := make([]time.Duration, len(b.names))
	for i, name := range b.names {
		snap.Arms[i].Name = name
	}
	for _, c := range b.classes {
		if c.escalated {
			snap.Escalated++
		}
		for i := range c.arms {
			snap.Arms[i].RaceWins += c.arms[i].wins
			snap.Arms[i].SoloRuns += c.arms[i].solos
			snap.Arms[i].Kills += c.arms[i].kills
			sums[i] += c.arms[i].latencySum
		}
	}
	for i := range snap.Arms {
		if n := snap.Arms[i].RaceWins + snap.Arms[i].SoloRuns; n > 0 {
			snap.Arms[i].MeanLatencyUS = (sums[i] / time.Duration(n)).Microseconds()
		}
	}
	return snap
}
