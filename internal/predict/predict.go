// Package predict implements the paper's §9 future-work direction: "using
// machine learning models to predict which version of our framework
// (algorithms, rewritings) to employ per query". It provides a
// nearest-neighbour predictor over cheap query features and an adaptive
// matcher that first races the full Ψ portfolio to gather training signal,
// then switches to running only the predicted best attempt — falling back
// to a full race when the prediction goes over budget.
package predict

import (
	"context"
	"math"
	"sync"
	"time"

	"github.com/psi-graph/psi/internal/core"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/rewrite"
)

// FeatureCount is the dimensionality of the query feature vector.
const FeatureCount = 7

// Features is a cheap numeric summary of a query graph relative to a
// stored graph's label frequencies — the inputs a per-query model can act
// on (all computable in O(|q|)).
type Features [FeatureCount]float64

// Featurize computes the feature vector of q. freq supplies stored-graph
// label frequencies (nil is allowed; the two frequency features become 0).
func Featurize(q *graph.Graph, freq rewrite.Frequencies) Features {
	var f Features
	n, m := q.N(), q.M()
	if n == 0 {
		return f
	}
	f[0] = float64(n)
	f[1] = float64(m)
	f[2] = 2 * float64(m) / float64(n) // avg degree
	maxDeg, deg2 := 0, 0
	for v := 0; v < n; v++ {
		d := q.Degree(v)
		if d > maxDeg {
			maxDeg = d
		}
		if d <= 2 {
			deg2++
		}
	}
	f[3] = float64(maxDeg)
	f[4] = float64(deg2) / float64(n) // path-likeness (§6.2: wordnet queries)
	distinct := q.LabelFrequencies()
	f[5] = float64(len(distinct))
	if freq != nil {
		rarest := math.MaxFloat64
		for l := range distinct {
			if c := float64(freq[l]); c < rarest {
				rarest = c
			}
		}
		if rarest < math.MaxFloat64 {
			f[6] = rarest
		}
	}
	return f
}

// distance is squared Euclidean distance over per-dimension normalized
// features.
func distance(a, b, scale Features) float64 {
	var d float64
	for i := range a {
		s := scale[i]
		if s == 0 {
			s = 1
		}
		x := (a[i] - b[i]) / s
		d += x * x
	}
	return d
}

// observation is one training sample: a query's features and the attempt
// that won its race.
type observation struct {
	features Features
	winner   int // attempt index
}

// Predictor is a k-nearest-neighbour model over race outcomes. The zero
// value is usable (predicts -1 until trained). Safe for concurrent use.
type Predictor struct {
	// K is the neighbourhood size; 0 means 3.
	K int

	mu    sync.RWMutex
	obs   []observation
	scale Features // running max |value| per dimension, for normalization
}

// Observe records a training sample: the query's features and the index of
// the attempt that won.
func (p *Predictor) Observe(f Features, winner int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.obs = append(p.obs, observation{features: f, winner: winner})
	for i, v := range f {
		if a := math.Abs(v); a > p.scale[i] {
			p.scale[i] = a
		}
	}
}

// Samples reports the number of recorded observations.
func (p *Predictor) Samples() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.obs)
}

// Predict returns the attempt index most frequent among the K nearest
// observations, or -1 if the model has no data.
func (p *Predictor) Predict(f Features) int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.obs) == 0 {
		return -1
	}
	k := p.K
	if k <= 0 {
		k = 3
	}
	if k > len(p.obs) {
		k = len(p.obs)
	}
	// Selection of the k nearest by repeated scan: observation counts are
	// small (one per query seen), so O(k·n) is fine and allocation-free.
	type cand struct {
		dist   float64
		winner int
	}
	nearest := make([]cand, 0, k)
	for _, o := range p.obs {
		d := distance(f, o.features, p.scale)
		if len(nearest) < k {
			nearest = append(nearest, cand{d, o.winner})
			continue
		}
		worst, worstAt := -1.0, -1
		for i, c := range nearest {
			if c.dist > worst {
				worst, worstAt = c.dist, i
			}
		}
		if d < worst {
			nearest[worstAt] = cand{d, o.winner}
		}
	}
	votes := make(map[int]int, k)
	for _, c := range nearest {
		votes[c.winner]++
	}
	best, bestVotes := -1, -1
	for w, v := range votes {
		if v > bestVotes || (v == bestVotes && w < best) {
			best, bestVotes = w, v
		}
	}
	return best
}

// AdaptiveMatcher wraps a Ψ race configuration with a predictor: the first
// WarmupRaces queries race every attempt (gathering training data); after
// that only the predicted attempt runs, with a race fallback if it exceeds
// SoloBudget. Answers are identical to a full race in all cases.
type AdaptiveMatcher struct {
	Racer    *core.Racer
	Attempts []core.Attempt
	// WarmupRaces is how many initial queries run as full races; 0 means 8.
	WarmupRaces int
	// SoloBudget caps a predicted-attempt solo run before falling back to
	// the full race; 0 means 50ms.
	SoloBudget time.Duration
	// Model is the predictor; a zero Predictor works.
	Model Predictor

	name string
	mu   sync.Mutex
	seen int
	solo int
	fell int
}

// NewAdaptiveMatcher builds an adaptive matcher over the given attempts.
func NewAdaptiveMatcher(name string, racer *core.Racer, attempts []core.Attempt) *AdaptiveMatcher {
	return &AdaptiveMatcher{Racer: racer, Attempts: attempts, name: name}
}

// Name implements match.Matcher.
func (a *AdaptiveMatcher) Name() string { return a.name }

// Stats reports (queries seen, solo predictions run, fallbacks to racing).
func (a *AdaptiveMatcher) Stats() (seen, solo, fellBack int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.seen, a.solo, a.fell
}

// Match implements match.Matcher.
func (a *AdaptiveMatcher) Match(ctx context.Context, q *graph.Graph, limit int) ([]match.Embedding, error) {
	warmup := a.WarmupRaces
	if warmup <= 0 {
		warmup = 8
	}
	a.mu.Lock()
	a.seen++
	inWarmup := a.seen <= warmup
	a.mu.Unlock()

	feats := Featurize(q, a.Racer.Frequencies)
	if !inWarmup {
		if idx := a.Model.Predict(feats); idx >= 0 {
			if embs, ok, err := a.trySolo(ctx, q, limit, idx); ok {
				return embs, err
			}
			a.mu.Lock()
			a.fell++
			a.mu.Unlock()
		}
	}
	res, err := a.Racer.Race(ctx, q, limit, a.Attempts)
	if err != nil {
		return nil, err
	}
	a.Model.Observe(feats, res.WinnerIndex)
	return res.Embeddings, nil
}

// MatchStream implements match.StreamMatcher: the adopted attempt's
// embeddings flow into sink as they are found. A predicted solo attempt
// that exhausts its budget *before emitting anything* falls back to a full
// streaming race; once an embedding has reached the sink the run is
// committed (partial output cannot be retracted), so a mid-stream budget
// expiry surfaces as the context error instead.
func (a *AdaptiveMatcher) MatchStream(ctx context.Context, q *graph.Graph, limit int, sink match.Sink) error {
	warmup := a.WarmupRaces
	if warmup <= 0 {
		warmup = 8
	}
	a.mu.Lock()
	a.seen++
	inWarmup := a.seen <= warmup
	a.mu.Unlock()

	feats := Featurize(q, a.Racer.Frequencies)
	if !inWarmup {
		if idx := a.Model.Predict(feats); idx >= 0 {
			budget := a.SoloBudget
			if budget <= 0 {
				budget = 50 * time.Millisecond
			}
			soloCtx, cancel := context.WithTimeout(ctx, budget)
			emitted := 0
			counting := match.SinkFunc(func(e match.Embedding) bool {
				emitted++
				return sink.Emit(e)
			})
			_, err := a.Racer.RaceStream(soloCtx, q, limit, a.Attempts[idx:idx+1], counting)
			cancel()
			if err == nil {
				a.mu.Lock()
				a.solo++
				a.mu.Unlock()
				a.Model.Observe(feats, idx)
				return nil
			}
			if ctx.Err() != nil {
				return ctx.Err() // caller's context died, not the budget
			}
			if emitted > 0 {
				return err // committed: partial output already surfaced
			}
			a.mu.Lock()
			a.fell++
			a.mu.Unlock()
		}
	}
	res, err := a.Racer.RaceStream(ctx, q, limit, a.Attempts, sink)
	if err != nil {
		return err
	}
	a.Model.Observe(feats, res.WinnerIndex)
	return nil
}

// trySolo runs only the predicted attempt under SoloBudget. ok=false means
// the budget expired and the caller should fall back to the full race;
// parent-context errors are returned with ok=true (no point falling back).
func (a *AdaptiveMatcher) trySolo(ctx context.Context, q *graph.Graph, limit, idx int) ([]match.Embedding, bool, error) {
	budget := a.SoloBudget
	if budget <= 0 {
		budget = 50 * time.Millisecond
	}
	soloCtx, cancel := context.WithTimeout(ctx, budget)
	defer cancel()
	res, err := a.Racer.Race(soloCtx, q, limit, a.Attempts[idx:idx+1])
	if err != nil {
		if ctx.Err() != nil {
			return nil, true, ctx.Err() // caller's context died, not ours
		}
		return nil, false, nil // solo budget expired: fall back
	}
	a.mu.Lock()
	a.solo++
	a.mu.Unlock()
	a.Model.Observe(Featurize(q, a.Racer.Frequencies), idx)
	return res.Embeddings, true, nil
}
