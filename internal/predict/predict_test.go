package predict

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"github.com/psi-graph/psi/internal/core"
	"github.com/psi-graph/psi/internal/gen"
	"github.com/psi-graph/psi/internal/gql"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/match"
	"github.com/psi-graph/psi/internal/rewrite"
	"github.com/psi-graph/psi/internal/spath"
	"github.com/psi-graph/psi/internal/vf2"
	"github.com/psi-graph/psi/internal/workload"
)

func TestFeaturize(t *testing.T) {
	// path 0-1-2 with labels 5,5,7
	q := graph.MustNew("q", []graph.Label{5, 5, 7}, [][2]int{{0, 1}, {1, 2}})
	freq := rewrite.Frequencies{5: 100, 7: 3}
	f := Featurize(q, freq)
	if f[0] != 3 || f[1] != 2 {
		t.Errorf("n/m features = %v", f)
	}
	if f[2] != 4.0/3.0 {
		t.Errorf("avg degree = %f", f[2])
	}
	if f[3] != 2 {
		t.Errorf("max degree = %f", f[3])
	}
	if f[4] != 1 {
		t.Errorf("path-likeness = %f, want 1 (all degrees ≤ 2)", f[4])
	}
	if f[5] != 2 {
		t.Errorf("distinct labels = %f", f[5])
	}
	if f[6] != 3 {
		t.Errorf("rarest label frequency = %f, want 3", f[6])
	}
}

func TestFeaturizeEmptyAndNilFreq(t *testing.T) {
	var zero Features
	if Featurize(graph.MustNew("e", nil, nil), nil) != zero {
		t.Error("empty graph should have zero features")
	}
	q := graph.MustNew("q", []graph.Label{1}, nil)
	f := Featurize(q, nil)
	if f[6] != 0 {
		t.Error("nil frequencies => rarest-frequency feature 0")
	}
}

func TestPredictorUntrained(t *testing.T) {
	var p Predictor
	if got := p.Predict(Features{1, 2, 3}); got != -1 {
		t.Errorf("untrained Predict = %d, want -1", got)
	}
	if p.Samples() != 0 {
		t.Error("Samples")
	}
}

// The predictor must learn a simple separable rule: small queries won by
// attempt 0, large ones by attempt 1.
func TestPredictorLearnsSeparableRule(t *testing.T) {
	var p Predictor
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 40; i++ {
		n := 3 + r.Intn(4) // 3..6 vertices
		w := 0
		if i%2 == 1 {
			n = 20 + r.Intn(6) // 20..25 vertices
			w = 1
		}
		f := Features{float64(n), float64(n + 2), 2, 3, 0.5, 2, 10}
		p.Observe(f, w)
	}
	small := Features{4, 6, 2, 3, 0.5, 2, 10}
	large := Features{22, 24, 2, 3, 0.5, 2, 10}
	if got := p.Predict(small); got != 0 {
		t.Errorf("Predict(small) = %d, want 0", got)
	}
	if got := p.Predict(large); got != 1 {
		t.Errorf("Predict(large) = %d, want 1", got)
	}
}

func TestPredictorKClamped(t *testing.T) {
	p := Predictor{K: 50}
	p.Observe(Features{1}, 7)
	if got := p.Predict(Features{1}); got != 7 {
		t.Errorf("Predict with K > samples = %d, want 7", got)
	}
}

func newAdaptive(g *graph.Graph) *AdaptiveMatcher {
	racer := core.NewRacer(g)
	attempts := core.Portfolio(
		[]match.Matcher{gql.New(g), spath.New(g), vf2.New(g)},
		[]rewrite.Kind{rewrite.Orig, rewrite.DND})
	return NewAdaptiveMatcher("Ψ-adaptive", racer, attempts)
}

func TestAdaptiveMatcherCorrectness(t *testing.T) {
	g := gen.YeastLike(gen.Tiny, 3)
	a := newAdaptive(g)
	a.WarmupRaces = 4
	a.SoloBudget = 100 * time.Millisecond
	if a.Name() != "Ψ-adaptive" {
		t.Errorf("Name = %q", a.Name())
	}
	ref := vf2.New(g)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 16; i++ {
		q := workload.Extract(r, g, 4+r.Intn(6))
		want, err := ref.Match(context.Background(), q, 1000)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Match(context.Background(), q, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: adaptive found %d embeddings, reference %d", i, len(got), len(want))
		}
		for _, e := range got {
			if err := match.VerifyEmbedding(q, g, e); err != nil {
				t.Fatal(err)
			}
		}
	}
	seen, solo, fell := a.Stats()
	if seen != 16 {
		t.Errorf("seen = %d", seen)
	}
	if solo == 0 {
		t.Error("expected some solo (predicted) runs after warm-up")
	}
	if a.Model.Samples() == 0 {
		t.Error("model should have observations")
	}
	t.Logf("adaptive: seen=%d solo=%d fellback=%d", seen, solo, fell)
}

func TestAdaptiveFallsBackOnTinySoloBudget(t *testing.T) {
	g := gen.YeastLike(gen.Tiny, 4)
	a := newAdaptive(g)
	a.WarmupRaces = 1
	a.SoloBudget = time.Nanosecond // solo always expires
	r := rand.New(rand.NewSource(6))
	for i := 0; i < 5; i++ {
		q := workload.Extract(r, g, 5)
		if _, err := a.Match(context.Background(), q, 10); err != nil {
			t.Fatal(err)
		}
	}
	_, solo, fell := a.Stats()
	if solo != 0 {
		t.Errorf("solo = %d, want 0 with nanosecond budget", solo)
	}
	if fell == 0 {
		t.Error("expected fallbacks")
	}
}

func TestAdaptiveHonorsParentContext(t *testing.T) {
	g := gen.YeastLike(gen.Tiny, 5)
	a := newAdaptive(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := workload.Extract(rand.New(rand.NewSource(7)), g, 20)
	if _, err := a.Match(ctx, q, 1000); err == nil {
		t.Error("expected context error")
	}
}

// collectSink gathers streamed embeddings.
type collectSink struct{ embs []match.Embedding }

func (s *collectSink) Emit(e match.Embedding) bool {
	s.embs = append(s.embs, append(match.Embedding(nil), e...))
	return true
}

func TestAdaptiveMatchStreamCorrectness(t *testing.T) {
	g := gen.YeastLike(gen.Tiny, 8)
	a := newAdaptive(g)
	a.WarmupRaces = 3
	a.SoloBudget = 100 * time.Millisecond
	ref := vf2.New(g)
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 12; i++ {
		q := workload.Extract(r, g, 4+r.Intn(5))
		want, err := ref.Match(context.Background(), q, 500)
		if err != nil {
			t.Fatal(err)
		}
		var sink collectSink
		if err := a.MatchStream(context.Background(), q, 500, &sink); err != nil {
			t.Fatal(err)
		}
		if len(sink.embs) != len(want) {
			t.Fatalf("query %d: streamed %d embeddings, reference %d", i, len(sink.embs), len(want))
		}
		for _, e := range sink.embs {
			if err := match.VerifyEmbedding(q, g, e); err != nil {
				t.Fatal(err)
			}
		}
	}
	if a.Model.Samples() == 0 {
		t.Error("streaming runs should train the model")
	}
}

func TestAdaptiveMatchStreamFallsBackOnTinySoloBudget(t *testing.T) {
	g := gen.YeastLike(gen.Tiny, 10)
	a := newAdaptive(g)
	a.WarmupRaces = 1
	a.SoloBudget = time.Nanosecond
	r := rand.New(rand.NewSource(11))
	ref := vf2.New(g)
	for i := 0; i < 4; i++ {
		q := workload.Extract(r, g, 5)
		want, err := ref.Match(context.Background(), q, 200)
		if err != nil {
			t.Fatal(err)
		}
		var sink collectSink
		if err := a.MatchStream(context.Background(), q, 200, &sink); err != nil {
			t.Fatal(err)
		}
		if len(sink.embs) != len(want) {
			t.Fatalf("query %d: streamed %d, reference %d", i, len(sink.embs), len(want))
		}
	}
	_, solo, fell := a.Stats()
	if solo != 0 {
		t.Errorf("solo = %d, want 0 with nanosecond budget", solo)
	}
	if fell == 0 {
		t.Error("expected streaming fallbacks")
	}
}

func TestAdaptiveMatchStreamHonorsParentContext(t *testing.T) {
	g := gen.YeastLike(gen.Tiny, 12)
	a := newAdaptive(g)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := workload.Extract(rand.New(rand.NewSource(13)), g, 10)
	var sink collectSink
	if err := a.MatchStream(ctx, q, 100, &sink); err == nil {
		t.Error("expected context error")
	}
}
