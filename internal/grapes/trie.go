package grapes

import (
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
)

// posting records, for one (path, graph) pair, how many directed occurrences
// of the path the graph has, and (Grapes' distinguishing feature) which
// vertices those occurrences touch.
type posting struct {
	count     int32
	locations []int32 // sorted unique vertex IDs
}

// trieNode is one node of the label-path trie. The path from the root to a
// node spells a label sequence; postings map graph IDs to that sequence's
// occurrences in the graph.
type trieNode struct {
	children map[graph.Label]*trieNode
	postings map[int]*posting
}

func newTrieNode() *trieNode {
	return &trieNode{children: make(map[graph.Label]*trieNode)}
}

// pathTrie indexes label sequences of length 1..maxLen edges (i.e. 2..
// maxLen+1 labels).
type pathTrie struct {
	root *trieNode
}

func newPathTrie() *pathTrie { return &pathTrie{root: newTrieNode()} }

// insert merges one graph's extracted features into the trie.
func (t *pathTrie) insert(graphID int, feats map[ftv.Key]*ftv.PathFeature) {
	for _, f := range feats {
		node := t.root
		for _, l := range f.Labels {
			child := node.children[l]
			if child == nil {
				child = newTrieNode()
				node.children[l] = child
			}
			node = child
		}
		if node.postings == nil {
			node.postings = make(map[int]*posting)
		}
		node.postings[graphID] = &posting{count: f.Count, locations: f.Locations}
	}
}

// lookup returns the postings for an exact label sequence, or nil if the
// sequence is not indexed.
func (t *pathTrie) lookup(labels []graph.Label) map[int]*posting {
	node := t.root
	for _, l := range labels {
		node = node.children[l]
		if node == nil {
			return nil
		}
	}
	return node.postings
}

// nodeCount reports the number of trie nodes (diagnostics/tests).
func (t *pathTrie) nodeCount() int {
	var walk func(n *trieNode) int
	walk = func(n *trieNode) int {
		c := 1
		for _, ch := range n.children {
			c += walk(ch)
		}
		return c
	}
	return walk(t.root)
}

// featureCount reports the number of distinct indexed label sequences
// (trie nodes carrying postings).
func (t *pathTrie) featureCount() int {
	var walk func(n *trieNode) int
	walk = func(n *trieNode) int {
		c := 0
		if len(n.postings) > 0 {
			c = 1
		}
		for _, ch := range n.children {
			c += walk(ch)
		}
		return c
	}
	return walk(t.root)
}
