// Package grapes implements the Grapes indexed subgraph-query method
// (Giugno et al., PLoS One 2013) as described in §3.1.1 of the paper:
// simple paths up to a maximum length are extracted in a DFS manner from
// every dataset graph and indexed in a trie together with location
// information (which vertices each path touches). At query time the
// query's maximal paths prune the dataset by presence and frequency; the
// surviving graphs' location info yields the relevant connected components,
// each of which is verified with VF2.
//
// Grapes is a multi-threaded design: both index construction (across
// dataset graphs) and verification (across extracted components) use a
// worker pool of configurable size — "Grapes/1" and "Grapes/4" in the
// paper's figures are instances of this index with 1 and 4 workers.
package grapes

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/vf2"
)

// Options configures index construction and verification.
type Options struct {
	// MaxPathLen is the maximum path length (in edges) to index;
	// defaults to ftv.DefaultMaxPathLen (4), the paper's setting.
	MaxPathLen int
	// Workers is the degree of parallelism for both index construction
	// and per-query component verification; defaults to 1 (Grapes/1).
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxPathLen <= 0 {
		o.MaxPathLen = ftv.DefaultMaxPathLen
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// Index is a built Grapes index over a dataset. Safe for concurrent use.
type Index struct {
	ds   []*graph.Graph
	opts Options
	trie *pathTrie
}

// Build constructs the index, extracting features from dataset graphs with
// opts.Workers parallel workers.
func Build(ds []*graph.Graph, opts Options) *Index {
	opts = opts.withDefaults()
	x := &Index{ds: ds, opts: opts, trie: newPathTrie()}
	results := make([]map[ftv.Key]*ftv.PathFeature, len(ds))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opts.Workers)
	for id := range ds {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[id] = ftv.ExtractFeatures(ds[id], opts.MaxPathLen, true)
		}(id)
	}
	wg.Wait()
	for id, feats := range results {
		x.trie.insert(id, feats)
	}
	return x
}

// Name implements ftv.Index: "Grapes/<workers>".
func (x *Index) Name() string { return fmt.Sprintf("Grapes/%d", x.opts.Workers) }

// Dataset implements ftv.Index.
func (x *Index) Dataset() []*graph.Graph { return x.ds }

// MaxPathLen returns the indexed path length.
func (x *Index) MaxPathLen() int { return x.opts.MaxPathLen }

// TrieNodes reports the size of the underlying trie (diagnostics).
func (x *Index) TrieNodes() int { return x.trie.nodeCount() }

// Filter implements ftv.Index: a graph survives iff it contains every
// maximal path of the query at least as often as the query does.
func (x *Index) Filter(q *graph.Graph) []int {
	feats := ftv.QueryFeatures(q, x.opts.MaxPathLen)
	if len(feats) == 0 {
		// No path features (edgeless query): every graph is a candidate.
		all := make([]int, len(x.ds))
		for i := range all {
			all[i] = i
		}
		return all
	}
	var surviving map[int]bool
	for _, f := range feats {
		postings := x.trie.lookup(f.Labels)
		if postings == nil {
			return nil
		}
		next := make(map[int]bool)
		for id, p := range postings {
			if p.count >= f.Count && (surviving == nil || surviving[id]) {
				next[id] = true
			}
		}
		if len(next) == 0 {
			return nil
		}
		surviving = next
	}
	out := make([]int, 0, len(surviving))
	for id := range surviving {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}

// CandidateVertices returns the union of the location sets of the query's
// maximal paths within dataset graph graphID — the vertices any embedding
// of q in that graph must lie inside. The boolean is false when the graph
// fails the filter (some path missing or too rare).
func (x *Index) CandidateVertices(q *graph.Graph, graphID int) ([]int32, bool) {
	feats := ftv.QueryFeatures(q, x.opts.MaxPathLen)
	if len(feats) == 0 {
		g := x.ds[graphID]
		all := make([]int32, g.N())
		for i := range all {
			all[i] = int32(i)
		}
		return all, true
	}
	seen := make(map[int32]struct{})
	for _, f := range feats {
		postings := x.trie.lookup(f.Labels)
		if postings == nil {
			return nil, false
		}
		p := postings[graphID]
		if p == nil || p.count < f.Count {
			return nil, false
		}
		for _, v := range p.locations {
			seen[v] = struct{}{}
		}
	}
	out := make([]int32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// Verify implements ftv.Index: it extracts the relevant connected components
// of the candidate graph (via location information) and runs VF2 on each,
// in parallel across opts.Workers workers, stopping at the first match —
// matching the paper's modification of Grapes to "return after the first
// match of the query graph".
func (x *Index) Verify(ctx context.Context, q *graph.Graph, graphID int) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	g := x.ds[graphID]
	if q.N() == 0 {
		return true, nil
	}
	vertices, ok := x.CandidateVertices(q, graphID)
	if !ok {
		return false, nil
	}
	sub, _ := g.InducedSubgraph(g.Name()+"#cand", vertices)
	// Disconnected queries cannot be confined to a single component.
	if !q.IsConnected() {
		return containsQ(ctx, q, sub)
	}
	comps := sub.ConnectedComponents()
	// Components too small to host the query are skipped outright.
	var work []*graph.Graph
	for _, comp := range comps {
		if len(comp) < q.N() {
			continue
		}
		cg, _ := sub.InducedSubgraph("comp", comp)
		if cg.M() < q.M() {
			continue
		}
		work = append(work, cg)
	}
	if len(work) == 0 {
		return false, nil
	}
	if x.opts.Workers == 1 || len(work) == 1 {
		for _, cg := range work {
			found, err := containsQ(ctx, q, cg)
			if err != nil {
				return false, err
			}
			if found {
				return true, nil
			}
		}
		return false, nil
	}
	return x.verifyParallel(ctx, q, work)
}

// verifyParallel races VF2 over components with a bounded worker pool; the
// first success cancels the remaining work.
func (x *Index) verifyParallel(ctx context.Context, q *graph.Graph, work []*graph.Graph) (bool, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		found bool
		err   error
	}
	jobs := make(chan *graph.Graph)
	results := make(chan outcome, len(work))
	var wg sync.WaitGroup
	for w := 0; w < x.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cg := range jobs {
				found, err := containsQ(ctx, q, cg)
				results <- outcome{found, err}
				if found {
					cancel()
					return
				}
			}
		}()
	}
	go func() {
		defer close(jobs)
		for _, cg := range work {
			select {
			case jobs <- cg:
			case <-ctx.Done():
				return
			}
		}
	}()
	done := 0
	var firstErr error
	for done < len(work) {
		select {
		case r := <-results:
			done++
			if r.found {
				return true, nil
			}
			if r.err != nil && firstErr == nil {
				firstErr = r.err
			}
		case <-ctx.Done():
			// Workers will drain; if cancellation came from the parent
			// context this is an error, otherwise a win already returned.
			wg.Wait()
			// Collect any straggler results already queued.
			for {
				select {
				case r := <-results:
					if r.found {
						return true, nil
					}
				default:
					return false, ctx.Err()
				}
			}
		}
	}
	wg.Wait()
	if firstErr != nil {
		return false, firstErr
	}
	return false, nil
}

func containsQ(ctx context.Context, q, g *graph.Graph) (bool, error) {
	embs, err := vf2.Match(ctx, q, g, 1)
	if err != nil {
		return false, err
	}
	return len(embs) > 0, nil
}
