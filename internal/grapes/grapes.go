// Package grapes implements the Grapes indexed subgraph-query method
// (Giugno et al., PLoS One 2013) as described in §3.1.1 of the paper:
// simple paths up to a maximum length are extracted in a DFS manner from
// every dataset graph and indexed in a trie together with location
// information (which vertices each path touches). At query time the
// query's maximal paths prune the dataset by presence and frequency; the
// surviving graphs' location info yields the relevant connected components,
// each of which is verified with VF2.
//
// Grapes is a multi-threaded design: both index construction (across
// dataset graphs) and verification (across extracted components) use a
// worker pool of configurable size — "Grapes/1" and "Grapes/4" in the
// paper's figures are instances of this index with 1 and 4 workers.
//
// The index implements the unified filtering-index contract of
// internal/index: construction fans feature extraction out on the shared
// execution pool (deterministic for every pool size, cancellable through a
// context), filtering goes through the shared presence/frequency pruning,
// and FilterStream emits candidates incrementally so verification can begin
// before filtering finishes.
package grapes

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
	"github.com/psi-graph/psi/internal/vf2"
)

// Kind is the registered index kind.
const Kind = "grapes"

func init() {
	index.Register(Kind, func(ctx context.Context, ds []*graph.Graph, opts index.Options) (index.Index, error) {
		x, err := BuildContext(ctx, ds, Options{
			MaxPathLen: opts.MaxPathLen,
			Workers:    opts.Workers,
			Pool:       opts.Pool,
		})
		if err != nil {
			return nil, err
		}
		return x, nil
	})
}

// Options configures index construction and verification.
type Options struct {
	// MaxPathLen is the maximum path length (in edges) to index;
	// defaults to ftv.DefaultMaxPathLen (4), the paper's setting.
	MaxPathLen int
	// Workers is the degree of parallelism for per-query component
	// verification; defaults to 1 (Grapes/1). Workers > 1 gives the index
	// a dedicated verification pool of that size (the paper's Grapes/4),
	// released by Close.
	Workers int
	// Pool is the execution pool the build's feature extraction fans out
	// on; nil selects the shared default pool. The built index is
	// identical for every pool size.
	Pool *exec.Pool
}

func (o Options) withDefaults() Options {
	if o.MaxPathLen <= 0 {
		o.MaxPathLen = ftv.DefaultMaxPathLen
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	return o
}

// Index is a built Grapes index over a dataset. Safe for concurrent use.
type Index struct {
	ds    []*graph.Graph
	opts  Options
	trie  *pathTrie
	vpool *exec.Pool // dedicated verification pool when Workers > 1
	stats index.Stats
}

// Build constructs the index; see BuildContext for the cancellable form.
func Build(ds []*graph.Graph, opts Options) *Index {
	x, err := BuildContext(context.Background(), ds, opts)
	if err != nil {
		// Unreachable: the background context never cancels and extraction
		// has no other failure mode.
		panic(err)
	}
	return x
}

// BuildContext constructs the index, extracting features from dataset graphs
// across the pool's workers. The trie is assembled from the per-graph results
// in graph-ID order, so the built index is byte-identical regardless of the
// pool's worker count. Cancelling ctx aborts the build — including mid-graph
// on dense inputs — and returns the context's error.
func BuildContext(ctx context.Context, ds []*graph.Graph, opts Options) (*Index, error) {
	opts = opts.withDefaults()
	start := time.Now()
	feats, err := ftv.ExtractDatasetFeatures(ctx, opts.Pool, ds, opts.MaxPathLen, true)
	if err != nil {
		return nil, err
	}
	x := &Index{ds: ds, opts: opts, trie: newPathTrie()}
	for id, fs := range feats {
		x.trie.insert(id, fs)
	}
	if opts.Workers > 1 {
		x.vpool = exec.New(opts.Workers)
	}
	x.stats = index.Stats{
		Name:         x.Name(),
		Kind:         Kind,
		Graphs:       len(ds),
		MaxPathLen:   opts.MaxPathLen,
		Features:     x.trie.featureCount(),
		Nodes:        x.trie.nodeCount(),
		BuildTime:    time.Since(start),
		BuildWorkers: index.PoolWorkers(opts.Pool),
	}
	return x, nil
}

// Close releases the dedicated verification pool of a Workers>1 index.
// Queries in flight degrade gracefully to transient goroutines.
func (x *Index) Close() {
	if x.vpool != nil {
		x.vpool.Close()
	}
}

// Name implements ftv.Index: "Grapes/<workers>".
func (x *Index) Name() string { return fmt.Sprintf("Grapes/%d", x.opts.Workers) }

// Dataset implements ftv.Index.
func (x *Index) Dataset() []*graph.Graph { return x.ds }

// MaxPathLen returns the indexed path length.
func (x *Index) MaxPathLen() int { return x.opts.MaxPathLen }

// TrieNodes reports the size of the underlying trie (diagnostics).
func (x *Index) TrieNodes() int { return x.trie.nodeCount() }

// Stats implements index.Index.
func (x *Index) Stats() index.Stats { return x.stats }

// lookup adapts the trie's postings to the shared filter plumbing.
func (x *Index) lookup(labels []graph.Label) (index.Postings, bool) {
	postings := x.trie.lookup(labels)
	if postings == nil {
		return nil, false
	}
	return triePostings(postings), true
}

// triePostings adapts the trie's location-bearing postings map to
// index.Postings.
type triePostings map[int]*posting

func (m triePostings) Len() int { return len(m) }

func (m triePostings) Count(graphID int) (int32, bool) {
	p, ok := m[graphID]
	if !ok {
		return 0, false
	}
	return p.count, true
}

func (m triePostings) Range(f func(graphID int, count int32) bool) {
	for id, p := range m {
		if !f(id, p.count) {
			return
		}
	}
}

// Filter implements ftv.Index: a graph survives iff it contains every
// maximal path of the query at least as often as the query does.
func (x *Index) Filter(q *graph.Graph) []int {
	return index.FilterByFeatures(len(x.ds), ftv.QueryFeatures(q, x.opts.MaxPathLen), x.lookup)
}

// FilterStream implements index.Index: surviving graph IDs are emitted
// incrementally in ascending order.
func (x *Index) FilterStream(ctx context.Context, q *graph.Graph, emit func(graphID int) bool) error {
	return index.StreamByFeatures(ctx, len(x.ds), ftv.QueryFeatures(q, x.opts.MaxPathLen), x.lookup, emit)
}

// CandidateVertices returns the union of the location sets of the query's
// maximal paths within dataset graph graphID — the vertices any embedding
// of q in that graph must lie inside. The boolean is false when the graph
// fails the filter (some path missing or too rare).
func (x *Index) CandidateVertices(q *graph.Graph, graphID int) ([]int32, bool) {
	feats := ftv.QueryFeatures(q, x.opts.MaxPathLen)
	if len(feats) == 0 {
		g := x.ds[graphID]
		all := make([]int32, g.N())
		for i := range all {
			all[i] = int32(i)
		}
		return all, true
	}
	seen := make(map[int32]struct{})
	for _, f := range feats {
		postings := x.trie.lookup(f.Labels)
		if postings == nil {
			return nil, false
		}
		p := postings[graphID]
		if p == nil || p.count < f.Count {
			return nil, false
		}
		for _, v := range p.locations {
			seen[v] = struct{}{}
		}
	}
	out := make([]int32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, true
}

// Verify implements ftv.Index: it extracts the relevant connected components
// of the candidate graph (via location information) and runs VF2 on each,
// in parallel across opts.Workers workers, stopping at the first match —
// matching the paper's modification of Grapes to "return after the first
// match of the query graph".
func (x *Index) Verify(ctx context.Context, q *graph.Graph, graphID int) (bool, error) {
	if err := ctx.Err(); err != nil {
		return false, err
	}
	g := x.ds[graphID]
	if q.N() == 0 {
		return true, nil
	}
	vertices, ok := x.CandidateVertices(q, graphID)
	if !ok {
		return false, nil
	}
	sub, _ := g.InducedSubgraph(g.Name()+"#cand", vertices)
	// Disconnected queries cannot be confined to a single component.
	if !q.IsConnected() {
		return containsQ(ctx, q, sub)
	}
	comps := sub.ConnectedComponents()
	// Components too small to host the query are skipped outright.
	var work []*graph.Graph
	for _, comp := range comps {
		if len(comp) < q.N() {
			continue
		}
		cg, _ := sub.InducedSubgraph("comp", comp)
		if cg.M() < q.M() {
			continue
		}
		work = append(work, cg)
	}
	if len(work) == 0 {
		return false, nil
	}
	if x.vpool == nil || len(work) == 1 {
		for _, cg := range work {
			found, err := containsQ(ctx, q, cg)
			if err != nil {
				return false, err
			}
			if found {
				return true, nil
			}
		}
		return false, nil
	}
	return x.verifyParallel(ctx, q, work)
}

// errComponentFound aborts the remaining component checks once any component
// hosts the query — a sentinel, not a failure.
var errComponentFound = errors.New("grapes: component match found")

// verifyParallel fans VF2 over components across the index's dedicated
// verification pool (hard-bounded at opts.Workers in flight); the first
// success cancels the remaining work. The dedicated pool keeps this nested
// fan-out off the shared pool, where a racer already running this
// verification inside a pool task would deadlock a single-worker pool.
func (x *Index) verifyParallel(ctx context.Context, q *graph.Graph, work []*graph.Graph) (bool, error) {
	var found atomic.Bool
	grp := x.vpool.NewGroup(ctx)
	for _, cg := range work {
		cg := cg
		grp.Go(func(gctx context.Context) error {
			ok, err := containsQ(gctx, q, cg)
			if err != nil {
				return err
			}
			if ok {
				found.Store(true)
				return errComponentFound
			}
			return nil
		})
	}
	err := grp.Wait()
	if found.Load() {
		return true, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return false, cerr
	}
	if err != nil {
		return false, err
	}
	return false, nil
}

func containsQ(ctx context.Context, q, g *graph.Graph) (bool, error) {
	embs, err := vf2.Match(ctx, q, g, 1)
	if err != nil {
		return false, err
	}
	return len(embs) > 0, nil
}
