package grapes

// Snapshot support: Grapes' half of the index.FeatureExporter/RegisterRestorer
// contract. Export walks the trie depth-first with children in ascending
// label order, which emits features in exactly the lexicographic order the
// snapshot format canonicalizes on; restore re-inserts them. Both directions
// preserve the location sets, so a restored index prunes verification to the
// same candidate components as the saved one.

import (
	"sort"
	"time"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
)

func init() {
	index.RegisterRestorer(Kind, restore)
}

// ExportFeatures implements index.FeatureExporter.
func (x *Index) ExportFeatures(visit func(labels []graph.Label, postings []index.FeaturePosting) error) error {
	var labels []graph.Label
	var walk func(n *trieNode) error
	walk = func(n *trieNode) error {
		if len(n.postings) > 0 {
			ps := make([]index.FeaturePosting, 0, len(n.postings))
			for gid, p := range n.postings {
				ps = append(ps, index.FeaturePosting{GraphID: gid, Count: p.count, Locations: p.locations})
			}
			index.SortPostings(ps)
			if err := visit(labels, ps); err != nil {
				return err
			}
		}
		kids := make([]graph.Label, 0, len(n.children))
		for l := range n.children {
			kids = append(kids, l)
		}
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
		for _, l := range kids {
			labels = append(labels, l)
			if err := walk(n.children[l]); err != nil {
				return err
			}
			labels = labels[:len(labels)-1]
		}
		return nil
	}
	return walk(x.trie.root)
}

// restore rebuilds a Grapes index from exported features. Each feature was
// exported from exactly one trie node, so re-inserting every (labels,
// postings) pair reconstructs the trie node-for-node — no path enumeration.
func restore(ds []*graph.Graph, maxPathLen int, opts index.Options, feats []index.ExportedFeature) (index.Index, error) {
	o := Options{MaxPathLen: maxPathLen, Workers: opts.Workers, Pool: opts.Pool}.withDefaults()
	start := time.Now()
	x := &Index{ds: ds, opts: o, trie: newPathTrie()}
	for _, f := range feats {
		node := x.trie.root
		for _, l := range f.Labels {
			child := node.children[l]
			if child == nil {
				child = newTrieNode()
				node.children[l] = child
			}
			node = child
		}
		if node.postings == nil {
			node.postings = make(map[int]*posting, len(f.Postings))
		}
		for _, p := range f.Postings {
			node.postings[p.GraphID] = &posting{count: p.Count, locations: p.Locations}
		}
	}
	if o.Workers > 1 {
		x.vpool = exec.New(o.Workers)
	}
	x.stats = index.Stats{
		Name:         x.Name(),
		Kind:         Kind,
		Graphs:       len(ds),
		MaxPathLen:   o.MaxPathLen,
		Features:     x.trie.featureCount(),
		Nodes:        x.trie.nodeCount(),
		BuildTime:    time.Since(start),
		BuildWorkers: index.PoolWorkers(opts.Pool),
	}
	return x, nil
}
