package grapes

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/vf2"
)

func smallDataset() []*graph.Graph {
	return []*graph.Graph{
		// 0: triangle of labels 0,1,2
		graph.MustNew("g0", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}, {2, 0}}),
		// 1: path 0-1-2-3 labels 0,1,2,0
		graph.MustNew("g1", []graph.Label{0, 1, 2, 0}, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
		// 2: star center 1 with three 0-leaves
		graph.MustNew("g2", []graph.Label{1, 0, 0, 0}, [][2]int{{0, 1}, {0, 2}, {0, 3}}),
	}
}

func TestBuildAndName(t *testing.T) {
	x := Build(smallDataset(), Options{Workers: 4})
	if x.Name() != "Grapes/4" {
		t.Errorf("Name = %q", x.Name())
	}
	if len(x.Dataset()) != 3 {
		t.Error("Dataset")
	}
	if x.MaxPathLen() != ftv.DefaultMaxPathLen {
		t.Errorf("MaxPathLen = %d", x.MaxPathLen())
	}
	if x.TrieNodes() <= 1 {
		t.Error("trie should have nodes")
	}
}

func TestFilterPresence(t *testing.T) {
	x := Build(smallDataset(), Options{})
	// query edge 0-1: present in all three graphs
	q := graph.MustNew("q", []graph.Label{0, 1}, [][2]int{{0, 1}})
	got := x.Filter(q)
	if len(got) != 3 {
		t.Errorf("Filter = %v, want all graphs", got)
	}
	// query path 0-1-2... wait labels: 0,1,2 chain exists in g0 and g1 only
	q2 := graph.MustNew("q2", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	got2 := x.Filter(q2)
	if len(got2) != 2 || got2[0] != 0 || got2[1] != 1 {
		t.Errorf("Filter = %v, want [0 1]", got2)
	}
	// unknown label: no candidates
	q3 := graph.MustNew("q3", []graph.Label{9, 9}, [][2]int{{0, 1}})
	if got3 := x.Filter(q3); len(got3) != 0 {
		t.Errorf("Filter = %v, want empty", got3)
	}
}

func TestFilterFrequencyPruning(t *testing.T) {
	x := Build(smallDataset(), Options{})
	// query star with two 0-leaves on a 1-center: path 0-1 must occur at
	// least twice. g2 (three leaves) qualifies; g0/g1 have the 0-1 path
	// only once per direction.
	q := graph.MustNew("q", []graph.Label{1, 0, 0}, [][2]int{{0, 1}, {0, 2}})
	got := x.Filter(q)
	if len(got) != 1 || got[0] != 2 {
		t.Errorf("Filter = %v, want [2]", got)
	}
}

func TestFilterEdgelessQuery(t *testing.T) {
	x := Build(smallDataset(), Options{})
	q := graph.MustNew("q", []graph.Label{0}, nil)
	if got := x.Filter(q); len(got) != 3 {
		t.Errorf("edgeless query: Filter = %v, want all graphs", got)
	}
}

func TestCandidateVertices(t *testing.T) {
	x := Build(smallDataset(), Options{})
	q := graph.MustNew("q", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	verts, ok := x.CandidateVertices(q, 1)
	if !ok {
		t.Fatal("g1 must pass the filter")
	}
	// g1 = 0(0)-1(1)-2(2)-3(0): path 0,1,2 occurrence = vertices {0,1,2};
	// reverse path 2,1,0 also maximal in query => locations include {0,1,2}
	// (path 2-1-0 in g1: vertices 2,1,0) — vertex 3 appears via 3(0)-2(2)?
	// No: query maximal label paths are (0,1,2) and (2,1,0); g1 occurrence
	// of (2,1,0): vertices 2,1,0 only. But (0,1,2) also matches 3? Vertex 3
	// has label 0 and neighbor 2 has label 2, not 1 — no.
	if len(verts) != 3 {
		t.Errorf("candidate vertices = %v, want {0,1,2}", verts)
	}
	_, ok = x.CandidateVertices(q, 2)
	if ok {
		t.Error("g2 must fail the filter for the 0-1-2 chain")
	}
}

func TestVerifyDecision(t *testing.T) {
	ds := smallDataset()
	for _, workers := range []int{1, 4} {
		x := Build(ds, Options{Workers: workers})
		q := graph.MustNew("q", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
		for id, want := range []bool{true, true, false} {
			if want && !contains(x.Filter(q), id) {
				t.Fatalf("graph %d should pass filter", id)
			}
			if contains(x.Filter(q), id) {
				got, err := x.Verify(context.Background(), q, id)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Errorf("workers=%d graph %d: Verify = %v, want %v", workers, id, got, want)
				}
			}
		}
	}
}

func TestAnswerMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds := randomDataset(r, 6, 12, 3)
		x := Build(ds, Options{Workers: 2, MaxPathLen: 3})
		q := extractQuery(r, ds[r.Intn(len(ds))], 2+r.Intn(4))
		got, err := ftv.Answer(context.Background(), x, q)
		if err != nil {
			return false
		}
		want := bruteForceAnswer(ds, q)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Filter soundness: a graph that contains the query must never be pruned.
func TestFilterNoFalseNegatives(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		ds := randomDataset(r, 5, 14, 3)
		x := Build(ds, Options{MaxPathLen: 4})
		src := r.Intn(len(ds))
		q := extractQuery(r, ds[src], 2+r.Intn(5))
		return contains(x.Filter(q), src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestVerifyDisconnectedQuery(t *testing.T) {
	ds := []*graph.Graph{
		graph.MustNew("g", []graph.Label{0, 1, 0, 1}, [][2]int{{0, 1}, {2, 3}}),
	}
	x := Build(ds, Options{})
	q := graph.MustNew("q", []graph.Label{0, 1, 0, 1}, [][2]int{{0, 1}, {2, 3}})
	ok, err := x.Verify(context.Background(), q, 0)
	if err != nil || !ok {
		t.Errorf("disconnected query should verify: %v %v", ok, err)
	}
}

func TestVerifyCancelled(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ds := []*graph.Graph{randomGraphDense(r, 60, 0.3)}
	x := Build(ds, Options{MaxPathLen: 2})
	q := extractQuery(r, ds[0], 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := x.Verify(ctx, q, 0); err == nil {
		t.Error("expected context error")
	}
}

func TestParallelVerifyAgreesWithSequential(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	// dataset graph with several components
	b := graph.NewBuilder("multi")
	for c := 0; c < 4; c++ {
		base := b.N()
		for i := 0; i < 8; i++ {
			b.AddVertex(graph.Label(r.Intn(2)))
		}
		for i := 1; i < 8; i++ {
			if err := b.AddEdge(base+r.Intn(i), base+i); err != nil {
				panic(err)
			}
		}
	}
	g := b.MustBuild()
	ds := []*graph.Graph{g}
	x1 := Build(ds, Options{Workers: 1})
	x4 := Build(ds, Options{Workers: 4})
	for trial := 0; trial < 10; trial++ {
		q := extractQuery(r, g, 2+r.Intn(3))
		if !contains(x1.Filter(q), 0) {
			t.Fatal("source graph must pass filter")
		}
		a, err1 := x1.Verify(context.Background(), q, 0)
		bb, err2 := x4.Verify(context.Background(), q, 0)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != bb {
			t.Errorf("trial %d: Grapes/1 = %v, Grapes/4 = %v", trial, a, bb)
		}
		if !a {
			t.Errorf("trial %d: extracted query must be contained", trial)
		}
	}
}

func contains(ids []int, id int) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func bruteForceAnswer(ds []*graph.Graph, q *graph.Graph) []int {
	var out []int
	for id, g := range ds {
		embs, err := vf2.Match(context.Background(), q, g, 1)
		if err != nil {
			panic(err)
		}
		if len(embs) > 0 {
			out = append(out, id)
		}
	}
	return out
}

func randomDataset(r *rand.Rand, numGraphs, n, labels int) []*graph.Graph {
	ds := make([]*graph.Graph, numGraphs)
	for i := range ds {
		b := graph.NewBuilder("g")
		for v := 0; v < n; v++ {
			b.AddVertex(graph.Label(r.Intn(labels)))
		}
		for v := 1; v < n; v++ {
			if err := b.AddEdge(r.Intn(v), v); err != nil {
				panic(err)
			}
		}
		for e := 0; e < n/2; e++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !b.HasEdgePending(u, v) {
				if err := b.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
		ds[i] = b.MustBuild()
	}
	return ds
}

func randomGraphDense(r *rand.Rand, n int, p float64) *graph.Graph {
	b := graph.NewBuilder("dense")
	for v := 0; v < n; v++ {
		b.AddVertex(0)
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				if err := b.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
	}
	return b.MustBuild()
}

func extractQuery(r *rand.Rand, g *graph.Graph, wantEdges int) *graph.Graph {
	start := r.Intn(g.N())
	inQ := map[int32]bool{int32(start): true}
	type edge struct{ u, v int32 }
	var qEdges []edge
	has := func(a, b int32) bool {
		for _, e := range qEdges {
			if (e.u == a && e.v == b) || (e.u == b && e.v == a) {
				return true
			}
		}
		return false
	}
	for len(qEdges) < wantEdges {
		var frontier []edge
		for v := range inQ {
			for _, w := range g.Neighbors(int(v)) {
				if !has(v, w) {
					frontier = append(frontier, edge{v, w})
				}
			}
		}
		if len(frontier) == 0 {
			break
		}
		e := frontier[r.Intn(len(frontier))]
		qEdges = append(qEdges, e)
		inQ[e.u] = true
		inQ[e.v] = true
	}
	ids := make([]int32, 0, len(inQ))
	for v := range inQ {
		ids = append(ids, v)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	old2new := make(map[int32]int, len(ids))
	b := graph.NewBuilder("q")
	for i, v := range ids {
		old2new[v] = i
		b.AddVertex(g.Label(int(v)))
	}
	for _, e := range qEdges {
		if err := b.AddEdge(old2new[e.u], old2new[e.v]); err != nil {
			panic(err)
		}
	}
	return b.MustBuild()
}

// TestBuildContextCancellation: a cancelled context aborts the build
// instead of running feature extraction to completion (satellite fix for
// the previously uncancellable parallel build).
func TestBuildContextCancellation(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ds := randomDataset(r, 6, 30, 2) // dense-ish labels: plenty of paths
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(ctx, ds, Options{}); err == nil {
		t.Fatal("BuildContext with a cancelled context must fail")
	}
	// A live context still builds, identically to Build.
	x1, err := BuildContext(context.Background(), ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x2 := Build(ds, Options{})
	q := extractQuery(r, ds[0], 3)
	got, want := x1.Filter(q), x2.Filter(q)
	if len(got) != len(want) {
		t.Fatalf("Filter after ctx build %v vs plain build %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Filter after ctx build %v vs plain build %v", got, want)
		}
	}
}

// TestBuildContextCancelMidExtraction cancels while extraction is running
// and asserts the build returns promptly with the context error.
func TestBuildContextCancelMidExtraction(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	// A single label and high connectivity make path enumeration heavy
	// enough that cancellation lands mid-graph.
	ds := randomDataset(r, 4, 60, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := BuildContext(ctx, ds, Options{MaxPathLen: 6})
	if err == nil {
		t.Skip("build finished before the deadline; machine too fast for this fixture")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancelled build took %v — cancellation is not cooperative", elapsed)
	}
}

// TestStatsAndFilterStream sanity-checks the unified-contract additions.
func TestStatsAndFilterStream(t *testing.T) {
	ds := smallDataset()
	x := Build(ds, Options{Workers: 2})
	defer x.Close()
	st := x.Stats()
	if st.Kind != Kind || st.Graphs != 3 || st.Features == 0 || st.Nodes == 0 {
		t.Errorf("Stats = %+v", st)
	}
	q := graph.MustNew("q", []graph.Label{0, 1}, [][2]int{{0, 1}})
	want := x.Filter(q)
	var got []int
	if err := x.FilterStream(context.Background(), q, func(id int) bool {
		got = append(got, id)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("FilterStream %v vs Filter %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("FilterStream %v vs Filter %v", got, want)
		}
	}
}
