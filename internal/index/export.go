package index

// Snapshot support: the optional export capability an index kind implements
// so its feature arrays can be written to the on-disk snapshot format
// (internal/snapshot), and the restorer registry the loader dispatches on to
// rebuild a kind from those arrays without re-enumerating any paths. Export
// and restore are inverses by contract: Restore(kind, ds, Export(x)) must
// answer every query byte-identically to x.

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/vf2"
)

// FeaturePosting is one graph's entry in an exported feature's posting list.
type FeaturePosting struct {
	// GraphID is the graph's ID within the index's own dataset (local, for
	// per-shard sub-indexes).
	GraphID int
	// Count is the feature's occurrence count in the graph.
	Count int32
	// Locations holds the sorted vertex IDs the occurrences touch, for
	// kinds that keep location info (Grapes); nil otherwise.
	Locations []int32
}

// ExportedFeature is one indexed label sequence with its full posting list —
// the flat, structure-free representation every kind round-trips through the
// snapshot format.
type ExportedFeature struct {
	Labels   []graph.Label
	Postings []FeaturePosting
}

// FeatureExporter is the snapshot capability of an index kind: ExportFeatures
// visits every indexed feature exactly once, in deterministic order
// (lexicographically ascending label sequences) with postings in ascending
// graph-ID order, so the serialized bytes are identical across runs.
// MaxPathLen reports the indexed path length, persisted so the restored
// index extracts query features identically.
type FeatureExporter interface {
	ExportFeatures(visit func(labels []graph.Label, postings []FeaturePosting) error) error
	MaxPathLen() int
}

// Export collects an index's features via its FeatureExporter capability.
// It returns an error for kinds that cannot be snapshotted.
func Export(x Index) ([]ExportedFeature, int, error) {
	ex, ok := x.(FeatureExporter)
	if !ok {
		return nil, 0, fmt.Errorf("index: %s does not support feature export", x.Name())
	}
	var out []ExportedFeature
	err := ex.ExportFeatures(func(labels []graph.Label, postings []FeaturePosting) error {
		out = append(out, ExportedFeature{
			Labels:   append([]graph.Label(nil), labels...),
			Postings: append([]FeaturePosting(nil), postings...),
		})
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out, ex.MaxPathLen(), nil
}

// RestoreFunc rebuilds one kind over ds from exported features. opts carries
// the runtime knobs the restored index needs (Workers, Pool); MaxPathLen
// comes from the snapshot, not opts, so filtering stays identical to the
// saved index.
type RestoreFunc func(ds []*graph.Graph, maxPathLen int, opts Options, feats []ExportedFeature) (Index, error)

var (
	restorerMu sync.RWMutex
	restorers  = map[string]RestoreFunc{}
)

// RegisterRestorer makes a restore function available under a kind name.
// Implementations call it from init, next to Register; duplicates panic.
func RegisterRestorer(kind string, fn RestoreFunc) {
	restorerMu.Lock()
	defer restorerMu.Unlock()
	if _, dup := restorers[kind]; dup {
		panic("index: duplicate restorer for kind " + kind)
	}
	restorers[kind] = fn
}

// Restore rebuilds a monolithic index of the registered kind from exported
// features — the load half of the snapshot round trip.
func Restore(kind string, ds []*graph.Graph, maxPathLen int, opts Options, feats []ExportedFeature) (Index, error) {
	restorerMu.RLock()
	fn := restorers[kind]
	restorerMu.RUnlock()
	if fn == nil {
		return nil, fmt.Errorf("index: no restorer for kind %q", kind)
	}
	for _, f := range feats {
		for _, p := range f.Postings {
			if p.GraphID < 0 || p.GraphID >= len(ds) {
				return nil, fmt.Errorf("index: restoring %q: posting graph ID %d out of range [0,%d)", kind, p.GraphID, len(ds))
			}
		}
	}
	return fn(ds, maxPathLen, opts, feats)
}

// CompareLabelSeqs orders label sequences lexicographically (shorter prefix
// first) — the canonical feature order of the snapshot format.
func CompareLabelSeqs(a, b []graph.Label) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// SortPostings orders a posting list by ascending graph ID, in place — the
// canonical posting order of the snapshot format.
func SortPostings(ps []FeaturePosting) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].GraphID < ps[j].GraphID })
}

// Subs returns the per-shard sub-indexes in shard order — the snapshot
// layer's decomposition surface, mirroring NewShardedFrom's assembly one.
// The returned slice is a copy; the sub-indexes are not.
func (x *Sharded) Subs() []Index {
	return append([]Index(nil), x.shards...)
}

// ShardDataset returns the sub-dataset of shard s under K-way round-robin
// partitioning: every k-th graph starting at s, preserving ascending-global
// order. Exported so the snapshot loader partitions a restored dataset by
// exactly the rule BuildSharded used.
func ShardDataset(ds []*graph.Graph, s, k int) []*graph.Graph {
	return shardDataset(ds, s, k)
}

func init() {
	RegisterRestorer(KindPath, restorePath)
}

// ExportFeatures implements FeatureExporter for the flat path index.
func (x *Path) ExportFeatures(visit func(labels []graph.Label, postings []FeaturePosting) error) error {
	keys := make([][]graph.Label, 0, len(x.postings))
	byIdx := make([]ftv.Key, 0, len(x.postings))
	for key := range x.postings {
		keys = append(keys, key.Labels())
		byIdx = append(byIdx, key)
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return CompareLabelSeqs(keys[order[i]], keys[order[j]]) < 0 })
	for _, i := range order {
		m := x.postings[byIdx[i]]
		ps := make([]FeaturePosting, 0, len(m))
		for gid, c := range m {
			ps = append(ps, FeaturePosting{GraphID: gid, Count: c})
		}
		SortPostings(ps)
		if err := visit(keys[i], ps); err != nil {
			return err
		}
	}
	return nil
}

// restorePath rebuilds the flat path index: posting maps straight from the
// exported lists, fresh VF2 matchers per graph. No path enumeration runs,
// which is where the cold-start speedup comes from.
func restorePath(ds []*graph.Graph, maxPathLen int, opts Options, feats []ExportedFeature) (Index, error) {
	if maxPathLen <= 0 {
		maxPathLen = ftv.DefaultMaxPathLen
	}
	start := time.Now()
	x := &Path{
		ds:         ds,
		maxPathLen: maxPathLen,
		postings:   make(map[ftv.Key]MapPostings, len(feats)),
		verifier:   make([]*vf2.Matcher, len(ds)),
	}
	for id := range ds {
		x.verifier[id] = vf2.New(ds[id])
	}
	for _, f := range feats {
		m := make(MapPostings, len(f.Postings))
		for _, p := range f.Postings {
			m[p.GraphID] = p.Count
		}
		x.postings[ftv.MakeKey(f.Labels)] = m
	}
	x.stats = Stats{
		Name:         x.Name(),
		Kind:         KindPath,
		Graphs:       len(ds),
		MaxPathLen:   maxPathLen,
		Features:     len(x.postings),
		Nodes:        len(x.postings),
		BuildTime:    time.Since(start),
		BuildWorkers: PoolWorkers(opts.Pool),
	}
	return x, nil
}
