package index

// Masked presents a dense, tombstone-free view over an index built in "slot"
// space — the mutable dataset layer's bridge back to the repo's byte-parity
// discipline. The mutable store never renumbers on delete (renumbering would
// move graphs across shards and force a global rebuild); it tombstones the
// slot and leaves the sub-index untouched until compaction. Queries, however,
// must answer exactly as a from-scratch engine over the live graphs would:
// dense IDs 0..n-1 in ascending order, dead graphs never surfacing even
// though the underlying index still contains their features. Masked performs
// that translation: candidates streaming out of the inner index in ascending
// slot order are skipped when dead and renumbered to their rank among live
// slots otherwise — rank order preserves ascending order, so the merged
// stream is byte-identical to the dense rebuild's — and Verify routes a dense
// ID back to its owning slot.

import (
	"context"
	"fmt"

	"github.com/psi-graph/psi/internal/graph"
)

// Masked is the dense view. Construct with NewMasked; safe for concurrent
// use (all fields are immutable after construction — a mutation produces a
// new Masked over a new snapshot rather than editing this one).
type Masked struct {
	inner   Index
	ds      []*graph.Graph // dense: live graphs in slot order
	denseOf []int          // slot → dense ID, -1 for tombstoned slots
	slots   []int          // dense ID → slot
	stats   Stats
}

// NewMasked wraps inner (whose ID space is slots, including dead ones) with
// the dense view selected by alive. ds must hold exactly the live graphs, in
// slot order; len(alive) must equal the inner index's slot count. Masked does
// not take ownership of inner — Close is a no-op, because the mutable store
// refcounts sub-indexes across snapshot generations and closes them itself
// when the last snapshot referencing them drains.
func NewMasked(inner Index, ds []*graph.Graph, alive []bool) *Masked {
	m := &Masked{
		inner:   inner,
		ds:      ds,
		denseOf: make([]int, len(alive)),
		slots:   make([]int, 0, len(ds)),
	}
	for slot, ok := range alive {
		if !ok {
			m.denseOf[slot] = -1
			continue
		}
		m.denseOf[slot] = len(m.slots)
		m.slots = append(m.slots, slot)
	}
	if len(m.slots) != len(ds) {
		panic(fmt.Sprintf("index: NewMasked: %d live slots but %d dense graphs", len(m.slots), len(ds)))
	}
	m.stats = inner.Stats()
	m.stats.Graphs = len(ds)
	return m
}

// Name implements ftv.Index, delegating to the slot-space index.
func (m *Masked) Name() string { return m.inner.Name() }

// Dataset implements ftv.Index: the dense live dataset.
func (m *Masked) Dataset() []*graph.Graph { return m.ds }

// Stats implements Index: the inner build shape with Graphs counting only
// live graphs.
func (m *Masked) Stats() Stats { return m.stats }

// Close implements Index as a no-op; see NewMasked on ownership.
func (m *Masked) Close() {}

// Filter implements ftv.Index: the inner candidates with dead slots dropped
// and the rest renumbered densely. Ascending slot order maps to ascending
// dense order, so no re-sort is needed.
func (m *Masked) Filter(q *graph.Graph) []int {
	cands := m.inner.Filter(q)
	out := make([]int, 0, len(cands))
	for _, slot := range cands {
		if d := m.denseOf[slot]; d >= 0 {
			out = append(out, d)
		}
	}
	return out
}

// FilterStream implements Index, translating the inner stream on the fly.
func (m *Masked) FilterStream(ctx context.Context, q *graph.Graph, emit func(graphID int) bool) error {
	return m.inner.FilterStream(ctx, q, func(slot int) bool {
		d := m.denseOf[slot]
		if d < 0 {
			return true // tombstoned: skip, keep streaming
		}
		return emit(d)
	})
}

// Verify implements ftv.Index by routing the dense ID to its slot.
func (m *Masked) Verify(ctx context.Context, q *graph.Graph, graphID int) (bool, error) {
	if graphID < 0 || graphID >= len(m.slots) {
		return false, fmt.Errorf("index: graph ID %d out of range [0,%d)", graphID, len(m.slots))
	}
	return m.inner.Verify(ctx, q, m.slots[graphID])
}
