package index_test

// Cross-index parity: the three filtering indexes (flat path-based FTV,
// Grapes, GGSX) implement one contract over different data structures, so
// on any dataset
//
//   - every Filter result must be a superset of the true answer set (the
//     no-false-negatives guarantee verification relies on), and
//   - the full Answer pipeline must return byte-identical ascending IDs
//     for all three — and match brute-force VF2 over the whole dataset.
//
// The tests run in an external package so they can build the real Grapes
// and GGSX implementations against the contract (the implementation
// packages import internal/index; the reverse would cycle).

import (
	"context"
	"math/rand"
	"testing"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/ggsx"
	"github.com/psi-graph/psi/internal/grapes"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
	"github.com/psi-graph/psi/internal/vf2"
)

// buildAll constructs every registered index kind over ds with the given
// extraction pool.
func buildAll(t *testing.T, ds []*graph.Graph, maxLen int, pool *exec.Pool) []index.Index {
	t.Helper()
	var out []index.Index
	for _, kind := range index.Kinds() {
		x, err := index.Build(context.Background(), kind, ds, index.Options{MaxPathLen: maxLen, Pool: pool})
		if err != nil {
			t.Fatalf("build %s: %v", kind, err)
		}
		out = append(out, x)
	}
	if len(out) < 3 {
		t.Fatalf("only %d kinds registered, want ftv+grapes+ggsx", len(out))
	}
	return out
}

// trueAnswers is the brute-force ground truth: VF2 against every graph.
func trueAnswers(t *testing.T, ds []*graph.Graph, q *graph.Graph) []int {
	t.Helper()
	var want []int
	for id, g := range ds {
		embs, err := vf2.Match(context.Background(), q, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(embs) > 0 {
			want = append(want, id)
		}
	}
	return want
}

func randomDataset(r *rand.Rand, numGraphs, n, labels int) []*graph.Graph {
	ds := make([]*graph.Graph, numGraphs)
	for i := range ds {
		b := graph.NewBuilder("g")
		for v := 0; v < n; v++ {
			b.AddVertex(graph.Label(r.Intn(labels)))
		}
		for v := 1; v < n; v++ {
			if err := b.AddEdge(r.Intn(v), v); err != nil {
				panic(err)
			}
		}
		for e := 0; e < n/2; e++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v && !b.HasEdgePending(u, v) {
				if err := b.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
		ds[i] = b.MustBuild()
	}
	return ds
}

// extractQuery grows a connected query of wantEdges edges from a random
// vertex of g.
func extractQuery(r *rand.Rand, g *graph.Graph, wantEdges int) *graph.Graph {
	start := r.Intn(g.N())
	inQ := map[int32]bool{int32(start): true}
	type edge struct{ u, v int32 }
	var qEdges []edge
	has := func(a, b int32) bool {
		for _, e := range qEdges {
			if (e.u == a && e.v == b) || (e.u == b && e.v == a) {
				return true
			}
		}
		return false
	}
	for len(qEdges) < wantEdges {
		var frontier []edge
		for v := range inQ {
			for _, w := range g.Neighbors(int(v)) {
				if !has(v, w) {
					frontier = append(frontier, edge{v, w})
				}
			}
		}
		if len(frontier) == 0 {
			break
		}
		e := frontier[r.Intn(len(frontier))]
		qEdges = append(qEdges, e)
		inQ[e.u] = true
		inQ[e.v] = true
	}
	ids := make([]int32, 0, len(inQ))
	for v := range inQ {
		ids = append(ids, v)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	old2new := make(map[int32]int, len(ids))
	b := graph.NewBuilder("q")
	for i, v := range ids {
		old2new[v] = i
		b.AddVertex(g.Label(int(v)))
	}
	for _, e := range qEdges {
		if err := b.AddEdge(old2new[e.u], old2new[e.v]); err != nil {
			panic(err)
		}
	}
	return b.MustBuild()
}

func isSuperset(sup, sub []int) bool {
	set := make(map[int]bool, len(sup))
	for _, id := range sup {
		set[id] = true
	}
	for _, id := range sub {
		if !set[id] {
			return false
		}
	}
	return true
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCrossIndexParity asserts, over generated datasets and queries, that
// every index's Filter is a superset of the true answer set and that the
// Answer pipelines of all three indexes agree byte-for-byte with brute
// force.
func TestCrossIndexParity(t *testing.T) {
	pool := exec.New(2)
	defer pool.Close()
	for seed := int64(1); seed <= 12; seed++ {
		r := rand.New(rand.NewSource(seed))
		ds := randomDataset(r, 5, 10+r.Intn(5), 3)
		xs := buildAll(t, ds, 3, pool)
		for qi := 0; qi < 3; qi++ {
			q := extractQuery(r, ds[r.Intn(len(ds))], 2+r.Intn(4))
			want := trueAnswers(t, ds, q)
			for _, x := range xs {
				cands := x.Filter(q)
				if !isSuperset(cands, want) {
					t.Fatalf("seed %d q%d: %s Filter %v misses true answers %v",
						seed, qi, x.Name(), cands, want)
				}
				got, err := ftv.Answer(context.Background(), x, q)
				if err != nil {
					t.Fatal(err)
				}
				if !sameInts(got, want) {
					t.Fatalf("seed %d q%d: %s Answer = %v, want %v",
						seed, qi, x.Name(), got, want)
				}
				// The streaming pipeline must produce the identical answer.
				streamed, err := index.Answer(context.Background(), x, q, pool)
				if err != nil {
					t.Fatal(err)
				}
				if !sameInts(streamed, want) {
					t.Fatalf("seed %d q%d: %s streaming Answer = %v, want %v",
						seed, qi, x.Name(), streamed, want)
				}
			}
		}
		closeAll(xs)
	}
}

func closeAll(xs []index.Index) {
	for _, x := range xs {
		x.Close()
	}
}

// TestBuildDeterminismAcrossWorkerCounts is the acceptance check that all
// three index builds produce identical Filter output at Workers=1 vs
// Workers=N: the same dataset is indexed on a 1-worker and a 4-worker
// extraction pool and every query must filter identically (and the index
// shapes must match feature-for-feature).
func TestBuildDeterminismAcrossWorkerCounts(t *testing.T) {
	pool1 := exec.New(1)
	defer pool1.Close()
	pool4 := exec.New(4)
	defer pool4.Close()
	r := rand.New(rand.NewSource(7))
	ds := randomDataset(r, 6, 14, 3)
	xs1 := buildAll(t, ds, 4, pool1)
	xs4 := buildAll(t, ds, 4, pool4)
	defer closeAll(xs1)
	defer closeAll(xs4)
	var queries []*graph.Graph
	for qi := 0; qi < 6; qi++ {
		queries = append(queries, extractQuery(r, ds[r.Intn(len(ds))], 2+r.Intn(4)))
	}
	queries = append(queries, graph.MustNew("edgeless", []graph.Label{0}, nil))
	for i := range xs1 {
		s1, s4 := xs1[i].Stats(), xs4[i].Stats()
		if s1.Features != s4.Features || s1.Nodes != s4.Nodes {
			t.Errorf("%s: shape differs across worker counts: 1-worker %+v vs 4-worker %+v",
				xs1[i].Name(), s1, s4)
		}
		for qi, q := range queries {
			f1, f4 := xs1[i].Filter(q), xs4[i].Filter(q)
			if !sameInts(f1, f4) {
				t.Errorf("%s q%d: Filter differs across worker counts: %v vs %v",
					xs1[i].Name(), qi, f1, f4)
			}
		}
	}
	// Grapes' paper-facing worker knob must not change filtering either.
	g1 := grapes.Build(ds, grapes.Options{Workers: 1})
	g4 := grapes.Build(ds, grapes.Options{Workers: 4})
	defer g1.Close()
	defer g4.Close()
	for qi, q := range queries {
		if f1, f4 := g1.Filter(q), g4.Filter(q); !sameInts(f1, f4) {
			t.Errorf("Grapes workers 1 vs 4 q%d: Filter %v vs %v", qi, f1, f4)
		}
	}
	// GGSX built through its own constructor matches the registry build.
	gg := ggsx.Build(ds, ggsx.Options{})
	for qi, q := range queries {
		want := xs1[indexOfKind(t, ggsx.Kind)].Filter(q)
		if got := gg.Filter(q); !sameInts(got, want) {
			t.Errorf("GGSX direct vs registry q%d: %v vs %v", qi, got, want)
		}
	}
}

// indexOfKind maps a registered kind to its position in buildAll's output
// (Kinds() is sorted).
func indexOfKind(t *testing.T, kind string) int {
	t.Helper()
	for i, k := range index.Kinds() {
		if k == kind {
			return i
		}
	}
	t.Fatalf("kind %q not registered", kind)
	return -1
}
