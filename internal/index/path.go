package index

// The path-based FTV baseline: the simplest member of the portfolio. It
// stores every extracted path feature in a flat hash map keyed by the packed
// label sequence — no trie, no locations — and verifies candidates with VF2
// against the whole stored graph. Its filtering power is identical to GGSX
// (both count all ≤maxLen paths); what differs is the storage layout and
// lookup cost, which is exactly the kind of constant-factor alternative the
// racing Engine exploits: on some queries the flat map's O(1) feature lookup
// beats the tries, on others the tries' shared prefixes win.

import (
	"context"
	"fmt"
	"time"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/vf2"
)

// KindPath is the registered kind of the flat path index.
const KindPath = "ftv"

func init() {
	Register(KindPath, func(ctx context.Context, ds []*graph.Graph, opts Options) (Index, error) {
		x, err := BuildPath(ctx, ds, opts)
		if err != nil {
			return nil, err
		}
		return x, nil
	})
}

// Path is the flat path-feature index. Safe for concurrent use once built.
type Path struct {
	ds         []*graph.Graph
	maxPathLen int
	postings   map[ftv.Key]MapPostings
	verifier   []*vf2.Matcher // per-graph VF2 matcher with prebuilt label index
	stats      Stats
}

// BuildPath constructs the flat path index, extracting features across the
// pool's workers; output is identical for every pool size.
func BuildPath(ctx context.Context, ds []*graph.Graph, opts Options) (*Path, error) {
	if opts.MaxPathLen <= 0 {
		opts.MaxPathLen = ftv.DefaultMaxPathLen
	}
	start := time.Now()
	feats, err := ftv.ExtractDatasetFeatures(ctx, opts.Pool, ds, opts.MaxPathLen, false)
	if err != nil {
		return nil, err
	}
	x := &Path{
		ds:         ds,
		maxPathLen: opts.MaxPathLen,
		postings:   make(map[ftv.Key]MapPostings),
		verifier:   make([]*vf2.Matcher, len(ds)),
	}
	for id, fs := range feats {
		for key, f := range fs {
			m := x.postings[key]
			if m == nil {
				m = make(MapPostings)
				x.postings[key] = m
			}
			m[id] = f.Count
		}
		x.verifier[id] = vf2.New(ds[id])
	}
	x.stats = Stats{
		Name:         x.Name(),
		Kind:         KindPath,
		Graphs:       len(ds),
		MaxPathLen:   opts.MaxPathLen,
		Features:     len(x.postings),
		Nodes:        len(x.postings),
		BuildTime:    time.Since(start),
		BuildWorkers: PoolWorkers(opts.Pool),
	}
	return x, nil
}

// PoolWorkers reports a build pool's parallelism for Stats.BuildWorkers; 0
// marks the shared default pool (whose size is the CPU count). Shared by
// every index implementation.
func PoolWorkers(p *exec.Pool) int {
	if p == nil {
		return 0
	}
	return p.Workers()
}

// Name implements ftv.Index.
func (x *Path) Name() string { return "FTV" }

// Dataset implements ftv.Index.
func (x *Path) Dataset() []*graph.Graph { return x.ds }

// MaxPathLen returns the indexed path length.
func (x *Path) MaxPathLen() int { return x.maxPathLen }

// Stats implements Index.
func (x *Path) Stats() Stats { return x.stats }

// Close implements Index; the flat index owns no resources.
func (x *Path) Close() {}

func (x *Path) lookup(labels []graph.Label) (Postings, bool) {
	m, ok := x.postings[ftv.MakeKey(labels)]
	return m, ok
}

// Filter implements ftv.Index via the shared presence/frequency pruning.
func (x *Path) Filter(q *graph.Graph) []int {
	return FilterByFeatures(len(x.ds), ftv.QueryFeatures(q, x.maxPathLen), x.lookup)
}

// FilterStream implements Index.
func (x *Path) FilterStream(ctx context.Context, q *graph.Graph, emit func(graphID int) bool) error {
	return StreamByFeatures(ctx, len(x.ds), ftv.QueryFeatures(q, x.maxPathLen), x.lookup, emit)
}

// WithGraph implements Inserter: a copy-on-write append. Only the new
// graph's features are extracted; the posting maps of features it touches
// are cloned and extended, the rest are shared with the receiver, which is
// never mutated — queries racing against the old index keep a consistent
// view. The outer map copy is O(features), far below the path enumeration a
// rebuild pays, which is what makes single-graph ingest cheap.
func (x *Path) WithGraph(ctx context.Context, g *graph.Graph) (Index, error) {
	feats, err := ftv.ExtractFeaturesContext(ctx, g, x.maxPathLen, false)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	id := len(x.ds)
	nx := &Path{
		ds:         append(append(make([]*graph.Graph, 0, id+1), x.ds...), g),
		maxPathLen: x.maxPathLen,
		postings:   make(map[ftv.Key]MapPostings, len(x.postings)+len(feats)),
		verifier:   append(append(make([]*vf2.Matcher, 0, id+1), x.verifier...), vf2.New(g)),
	}
	for key, m := range x.postings {
		nx.postings[key] = m
	}
	for key, f := range feats {
		m := make(MapPostings, len(nx.postings[key])+1)
		for gid, c := range nx.postings[key] {
			m[gid] = c
		}
		m[id] = f.Count
		nx.postings[key] = m
	}
	nx.stats = x.stats
	nx.stats.Graphs = len(nx.ds)
	nx.stats.Features = len(nx.postings)
	nx.stats.Nodes = len(nx.postings)
	nx.stats.BuildTime = time.Since(start)
	return nx, nil
}

// Verify implements ftv.Index: VF2 against the whole stored graph.
func (x *Path) Verify(ctx context.Context, q *graph.Graph, graphID int) (bool, error) {
	if graphID < 0 || graphID >= len(x.verifier) {
		return false, fmt.Errorf("index: graph ID %d out of range [0,%d)", graphID, len(x.verifier))
	}
	return x.verifier[graphID].Contains(ctx, q)
}
