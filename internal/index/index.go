// Package index defines the single filtering-index contract shared by the
// repo's alternative filter-then-verify methods — the path-based FTV baseline
// (this package), Grapes and GGSX — and the plumbing every implementation
// used to duplicate: presence/frequency pruning over query features, pooled
// deterministic builds, and the streaming filter→verify pipeline.
//
// The contract exists so the Engine can treat filtering indexes exactly like
// matching algorithms: as interchangeable alternatives to race. The paper's
// thesis is that parallel use of alternatives beats committing to any single
// strategy; GRAPES and GGSX are precisely the "alternative algorithms" its
// portfolio drops in, so they must be swappable — and raceable — behind one
// interface.
//
// Implementations register a builder under a kind name ("ftv", "grapes",
// "ggsx") at init time; Build dispatches on the kind, so callers that import
// the implementation packages can construct any index uniformly.
package index

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
)

// Index is the unified filtering-index contract. It extends the ftv
// filter-then-verify core with streaming candidate emission (so verification
// can start before filtering finishes) and build/shape statistics (so a
// racing Engine can report per-index provenance). Implementations are safe
// for concurrent queries once built.
type Index interface {
	ftv.Index

	// FilterStream emits the IDs of graphs that may contain q, in the same
	// ascending order Filter returns, but incrementally: each candidate is
	// handed to emit as soon as it is known to survive every query feature,
	// without waiting for the remaining graphs to be checked. emit returning
	// false abandons the remaining work; a cancelled ctx ends the stream
	// with the context's error.
	FilterStream(ctx context.Context, q *graph.Graph, emit func(graphID int) bool) error

	// Stats reports the index's build provenance and shape.
	Stats() Stats

	// Close releases any resources the index owns (e.g. Grapes' dedicated
	// verification pool); a no-op for indexes that own none. Queries in
	// flight degrade gracefully.
	Close()
}

// FilterStreamer is the streaming-filter capability on its own; consumers
// holding only an ftv.Index (the pre-unification contract) type-assert to it
// to upgrade to the pipelined filter→verify path.
type FilterStreamer interface {
	FilterStream(ctx context.Context, q *graph.Graph, emit func(graphID int) bool) error
}

// Inserter is the optional incremental-maintenance capability of an index:
// WithGraph derives a NEW index over the old dataset plus one appended graph
// without re-extracting the features of the existing graphs. The receiver is
// left untouched — concurrent queries against it keep their answers — so a
// mutable dataset layer can swap the returned index in copy-on-write style.
// Kinds that cannot append cheaply (the trie-backed indexes) simply do not
// implement it and are rebuilt shard-locally instead.
type Inserter interface {
	WithGraph(ctx context.Context, g *graph.Graph) (Index, error)
}

// Stats describes a built index. The json tags fix the serialized schema
// (snake_case, durations as nanoseconds) shared by the /stats endpoint and
// the generated BENCH_*.json documents.
type Stats struct {
	// Name is the instance name as reported by Index.Name.
	Name string `json:"name"`
	// Kind is the registered builder kind ("ftv", "grapes", "ggsx").
	Kind string `json:"kind"`
	// Graphs is the number of indexed dataset graphs.
	Graphs int `json:"graphs"`
	// MaxPathLen is the maximum indexed path length in edges.
	MaxPathLen int `json:"max_path_len"`
	// Features is the number of distinct indexed path features.
	Features int `json:"features"`
	// Nodes is the size of the backing structure (trie/suffix-trie nodes,
	// or hash-map entries for the flat path index).
	Nodes int `json:"nodes"`
	// BuildTime is the wall-clock construction time.
	BuildTime time.Duration `json:"build_ns"`
	// BuildWorkers is the extraction parallelism the build ran with.
	BuildWorkers int `json:"build_workers"`
	// ShardCount is the partition count of a Sharded index (0 for
	// monolithic indexes).
	ShardCount int `json:"shard_count,omitempty"`
	// Shards holds the per-shard build statistics of a Sharded index, in
	// shard order — the shard-balance breakdown a /stats endpoint exposes.
	Shards []Stats `json:"shards,omitempty"`
}

// Options configures Build.
type Options struct {
	// MaxPathLen is the maximum indexed path length in edges; 0 means
	// ftv.DefaultMaxPathLen (4), the paper's setting.
	MaxPathLen int
	// Workers is the per-index verification parallelism knob (the paper's
	// Grapes/1 vs Grapes/4); indexes without internal verification
	// parallelism ignore it. 0 means 1.
	Workers int
	// Pool is the execution pool feature extraction fans out on during the
	// build; nil selects the shared default pool. Build output is identical
	// for every pool size.
	Pool *exec.Pool
	// Shards partitions the dataset round-robin over graph IDs and builds
	// one index of the requested kind per shard, merged behind the Sharded
	// wrapper; answers are byte-identical to the monolithic build at any
	// shard count. <= 1 builds the plain monolithic index.
	Shards int
}

// BuildFunc constructs an Index of one kind over a dataset.
type BuildFunc func(ctx context.Context, ds []*graph.Graph, opts Options) (Index, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]BuildFunc{}
)

// Register makes a builder available under a kind name. Implementations call
// it from init; registering a duplicate kind panics.
func Register(kind string, b BuildFunc) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic("index: duplicate kind " + kind)
	}
	registry[kind] = b
}

// Kinds lists the registered kinds, sorted.
func Kinds() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Build constructs an index of the registered kind. The build is cancellable
// through ctx and deterministic for any opts.Pool size. With opts.Shards >= 2
// the dataset is partitioned and the result is a Sharded index of that kind;
// its answers are byte-identical to the monolithic build.
func Build(ctx context.Context, kind string, ds []*graph.Graph, opts Options) (Index, error) {
	if opts.Shards >= 2 {
		return BuildSharded(ctx, kind, ds, opts)
	}
	registryMu.RLock()
	b := registry[kind]
	registryMu.RUnlock()
	if b == nil {
		return nil, fmt.Errorf("index: unknown kind %q (registered: %v)", kind, Kinds())
	}
	return b(ctx, ds, opts)
}

// Postings is one path feature's per-graph occurrence counts — the common
// shape the shared filter logic consumes regardless of whether the backing
// structure is a trie (Grapes), a suffix trie (GGSX) or a flat map (FTV).
type Postings interface {
	// Len is the number of graphs the feature occurs in.
	Len() int
	// Count returns the feature's occurrence count in graphID; ok is false
	// when the feature does not occur there.
	Count(graphID int) (int32, bool)
	// Range visits every (graph, count) pair until f returns false.
	Range(f func(graphID int, count int32) bool)
}

// MapPostings adapts the plain map representation to Postings.
type MapPostings map[int]int32

// Len implements Postings.
func (m MapPostings) Len() int { return len(m) }

// Count implements Postings.
func (m MapPostings) Count(graphID int) (int32, bool) {
	c, ok := m[graphID]
	return c, ok
}

// Range implements Postings.
func (m MapPostings) Range(f func(graphID int, count int32) bool) {
	for id, c := range m {
		if !f(id, c) {
			return
		}
	}
}

// LookupFunc resolves one query feature's postings; ok is false when the
// label sequence is absent from every indexed graph.
type LookupFunc func(labels []graph.Label) (Postings, bool)

// FilterByFeatures is the presence-and-frequency pruning every path index
// shares: a graph survives iff it contains each query feature at least as
// often as the query does. Results are ascending graph IDs; an empty feature
// set (edgeless query) keeps every graph. It is the collecting form of
// StreamByFeatures.
func FilterByFeatures(nGraphs int, feats map[ftv.Key]*ftv.QueryFeature, lookup LookupFunc) []int {
	var out []int
	// The background context never cancels, so the error is always nil.
	_ = StreamByFeatures(context.Background(), nGraphs, feats, lookup, func(id int) bool {
		out = append(out, id)
		return true
	})
	return out
}

// StreamByFeatures is the streaming form of FilterByFeatures: surviving
// graph IDs are emitted in ascending order as soon as each graph has been
// checked against every feature, driven by the rarest feature's postings so
// per-graph work is bounded by the feature count. emit returning false
// abandons the scan; ctx cancellation ends it with the context's error.
func StreamByFeatures(ctx context.Context, nGraphs int, feats map[ftv.Key]*ftv.QueryFeature, lookup LookupFunc, emit func(graphID int) bool) error {
	if len(feats) == 0 {
		// No path features (edgeless query): every graph is a candidate.
		for id := 0; id < nGraphs; id++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if !emit(id) {
				return nil
			}
		}
		return nil
	}
	type need struct {
		p   Postings
		min int32
	}
	needs := make([]need, 0, len(feats))
	for _, f := range feats {
		p, ok := lookup(f.Labels)
		if !ok || p.Len() == 0 {
			return nil // feature absent everywhere: no candidates
		}
		needs = append(needs, need{p: p, min: f.Count})
	}
	// Drive the scan with the rarest feature; the others are point lookups.
	driver := 0
	for i, n := range needs {
		if n.p.Len() < needs[driver].p.Len() {
			driver = i
		}
	}
	candidates := make([]int, 0, needs[driver].p.Len())
	needs[driver].p.Range(func(id int, c int32) bool {
		if c >= needs[driver].min {
			candidates = append(candidates, id)
		}
		return true
	})
	sort.Ints(candidates)
	for _, id := range candidates {
		if err := ctx.Err(); err != nil {
			return err
		}
		ok := true
		for i, n := range needs {
			if i == driver {
				continue
			}
			c, present := n.p.Count(id)
			if !present || c < n.min {
				ok = false
				break
			}
		}
		if ok && !emit(id) {
			return nil
		}
	}
	return nil
}

// StreamVerified pipelines filtering into verification: every candidate the
// filter emits starts verifying on a pool worker immediately, while the
// filter keeps scanning — the streaming-first shape of the match pipeline
// applied to the FTV decision problem. Verified IDs are handed to emit in
// filter order (ascending for contract-conforming filters) as soon as each
// ID and every candidate before it has been decided. emit returning false
// cancels the outstanding work and ends the stream with a nil error; the
// first verification error cancels the rest and is returned; a ctx
// cancellation that cut the filter short is returned as the context's error,
// never silently surfaced as a complete (empty) answer.
//
// The filter runs on the caller's goroutine, with the pool providing
// backpressure; callers must not invoke StreamVerified from inside a task
// running on p itself (the racer layers above never do).
func StreamVerified(ctx context.Context, p *exec.Pool, filter func(ctx context.Context, emit func(graphID int) bool) error, emit func(graphID int) bool, check func(ctx context.Context, graphID int) (bool, error)) error {
	if p == nil {
		p = exec.Default()
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	const (
		pending = uint8(iota)
		hit
		miss
	)
	var (
		mu        sync.Mutex
		ids       []int
		state     []uint8
		next      int // first undecided position: everything before is settled
		stopped   bool
		truncated bool
	)
	grp := p.NewGroup(sctx)
	ferr := filter(sctx, func(id int) bool {
		if grp.Context().Err() != nil {
			// Cancelled (caller ctx, emit stop, or a verification error):
			// stop scanning; Wait sorts out which it was.
			truncated = true
			return false
		}
		mu.Lock()
		pos := len(ids)
		ids = append(ids, id)
		state = append(state, pending)
		mu.Unlock()
		grp.Go(func(gctx context.Context) error {
			ok, err := check(gctx, id)
			if err != nil {
				return err
			}
			mu.Lock()
			defer mu.Unlock()
			if stopped {
				return nil
			}
			if ok {
				state[pos] = hit
			} else {
				state[pos] = miss
			}
			// Flush the newly contiguous decided prefix in filter order.
			for next < len(ids) && state[next] != pending {
				if state[next] == hit && !emit(ids[next]) {
					stopped = true
					cancel()
					return nil
				}
				next++
			}
			return nil
		})
		return true
	})
	werr := grp.Wait()
	mu.Lock()
	wasStopped := stopped
	mu.Unlock()
	if wasStopped {
		return nil
	}
	if werr != nil {
		return werr
	}
	if ferr != nil {
		return ferr
	}
	if truncated {
		// The filter was cut short by cancellation without reporting it
		// (its emit just returned false); a truncated scan must not read
		// as a completed empty one.
		return ctx.Err()
	}
	return nil
}

// AnswerStream runs the streaming decision pipeline over one index: filter
// and verification overlap through StreamVerified, and each containing graph
// ID reaches emit incrementally in ascending order. p sizes the verification
// fan-out (nil: shared default pool).
func AnswerStream(ctx context.Context, x Index, q *graph.Graph, p *exec.Pool, emit func(graphID int) bool) error {
	return StreamVerified(ctx, p,
		func(fctx context.Context, femit func(int) bool) error {
			return x.FilterStream(fctx, q, femit)
		},
		emit,
		func(gctx context.Context, id int) (bool, error) {
			return x.Verify(gctx, q, id)
		})
}

// Answer is the collecting form of AnswerStream: ascending IDs of dataset
// graphs containing q, identical to ftv.Answer over the same index.
func Answer(ctx context.Context, x Index, q *graph.Graph, p *exec.Pool) ([]int, error) {
	var out []int
	err := AnswerStream(ctx, x, q, p, func(id int) bool {
		out = append(out, id)
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
