package index

// Sharded partitions a dataset into K shards and gives every shard its own
// filtering index of any registered kind — the data-parallel axis the
// distributed-dataflow line of work adds on top of the paper's portfolio
// axis. The partitioning rule is round-robin over graph IDs (shard of global
// ID g is g mod K, its ID within the shard is g div K): stable, deterministic,
// and balanced to within one graph regardless of dataset order.
//
// Sharded implements the same Index contract as the monolithic kinds, so
// everything layered above — the streaming filter→verify pipeline, FTVRacer's
// per-candidate rewriting races, core.IndexRacer's whole-pipeline races —
// composes with it unchanged. Query answers are byte-identical to the
// monolithic index at any K and any worker count: filtering decisions are
// per-graph (a graph survives iff it contains every query feature often
// enough, which no amount of partitioning changes), FilterStream performs an
// ascending-ID ordered merge of the per-shard streams, and verification
// routes each global ID back to the shard that owns it.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/psi-graph/psi/internal/graph"
)

// shardStreamBuf is the per-shard channel buffer of the ordered merge: deep
// enough that a shard scanning a candidate-dense region does not stall on a
// merger draining a sparse one, small enough that cancellation never leaves
// much wasted scan work behind.
const shardStreamBuf = 64

// Sharded is a dataset index partitioned into K per-shard sub-indexes.
// Construct with BuildSharded (or index.Build with Options.Shards set); safe
// for concurrent queries once built.
type Sharded struct {
	ds     []*graph.Graph
	shards []Index
	k      int
	stats  Stats
}

// ShardOf returns the shard owning global graph ID g under K-way round-robin
// partitioning; the ID's position within that shard is g / k.
func ShardOf(g, k int) int { return g % k }

// shardDataset returns the sub-dataset of shard s: every k-th graph starting
// at s, preserving relative (hence ascending-global) order.
func shardDataset(ds []*graph.Graph, s, k int) []*graph.Graph {
	sub := make([]*graph.Graph, 0, (len(ds)-s+k-1)/k)
	for g := s; g < len(ds); g += k {
		sub = append(sub, ds[g])
	}
	return sub
}

// BuildSharded partitions ds into opts.Shards round-robin shards and builds
// one index of the registered kind per shard, each through the shared exec
// pool (opts.Pool), so builds remain deterministic at any worker count. The
// shard count is clamped to len(ds) — a shard with no graphs would be dead
// weight — and to at least 1.
func BuildSharded(ctx context.Context, kind string, ds []*graph.Graph, opts Options) (*Sharded, error) {
	k := opts.Shards
	if k < 1 {
		k = 1
	}
	if k > len(ds) {
		k = len(ds)
	}
	subOpts := opts
	subOpts.Shards = 0 // sub-builds are monolithic: no recursive sharding
	start := time.Now()
	x := &Sharded{ds: ds, k: k, shards: make([]Index, k)}
	for s := 0; s < k; s++ {
		sub, err := Build(ctx, kind, shardDataset(ds, s, k), subOpts)
		if err != nil {
			for _, built := range x.shards[:s] {
				built.Close()
			}
			return nil, fmt.Errorf("index: building shard %d/%d: %w", s, k, err)
		}
		x.shards[s] = sub
	}
	x.stats = Stats{
		Name:         x.Name(),
		Kind:         kind,
		Graphs:       len(ds),
		ShardCount:   k,
		BuildTime:    time.Since(start),
		BuildWorkers: PoolWorkers(opts.Pool),
	}
	for _, sub := range x.shards {
		st := sub.Stats()
		x.stats.MaxPathLen = st.MaxPathLen
		x.stats.Features += st.Features
		x.stats.Nodes += st.Nodes
		x.stats.Shards = append(x.stats.Shards, st)
	}
	return x, nil
}

// NewShardedFrom assembles a Sharded view over pre-built per-shard
// sub-indexes — the mutable dataset layer's entry point, which maintains the
// sub-indexes itself (copy-on-write inserts, shard-local rebuilds) and needs
// the shard count to stay fixed across mutations. Unlike BuildSharded the
// shard count is NOT clamped to len(ds): a shard may legitimately be empty
// after deletions or before its first ingest. subs[s] must index exactly
// shardDataset(ds, s, len(subs)); ownership of the sub-indexes stays with the
// caller (Close on the result closes them, as with BuildSharded).
func NewShardedFrom(ds []*graph.Graph, kind string, subs []Index) *Sharded {
	k := len(subs)
	x := &Sharded{ds: ds, k: k, shards: subs}
	x.stats = Stats{
		Name:       x.Name(),
		Kind:       kind,
		Graphs:     len(ds),
		ShardCount: k,
	}
	for _, sub := range subs {
		st := sub.Stats()
		x.stats.MaxPathLen = st.MaxPathLen
		x.stats.Features += st.Features
		x.stats.Nodes += st.Nodes
		x.stats.BuildTime += st.BuildTime
		x.stats.Shards = append(x.stats.Shards, st)
	}
	return x
}

// Name identifies the configuration, e.g. "Grapes/1×4" for four shards.
func (x *Sharded) Name() string {
	if x.k == 1 {
		return x.shards[0].Name()
	}
	return fmt.Sprintf("%s×%d", x.shards[0].Name(), x.k)
}

// Dataset implements ftv.Index: the full dataset, in global ID order.
func (x *Sharded) Dataset() []*graph.Graph { return x.ds }

// Shards reports the partition count.
func (x *Sharded) Shards() int { return x.k }

// Stats implements Index: the aggregate build shape, with the per-shard
// breakdown in Stats.Shards (the shard-balance feed for /stats).
func (x *Sharded) Stats() Stats { return x.stats }

// Close implements Index, releasing every shard's resources.
func (x *Sharded) Close() {
	for _, sub := range x.shards {
		sub.Close()
	}
}

// Verify implements ftv.Index by routing the global ID to its owning shard.
func (x *Sharded) Verify(ctx context.Context, q *graph.Graph, graphID int) (bool, error) {
	if graphID < 0 || graphID >= len(x.ds) {
		return false, fmt.Errorf("index: graph ID %d out of range [0,%d)", graphID, len(x.ds))
	}
	return x.shards[ShardOf(graphID, x.k)].Verify(ctx, q, graphID/x.k)
}

// Filter implements ftv.Index: per-shard filters translated to global IDs
// and merged ascending — the same candidate set as the monolithic index,
// because presence/frequency pruning is a per-graph decision.
func (x *Sharded) Filter(q *graph.Graph) []int {
	if x.k == 1 {
		return x.shards[0].Filter(q)
	}
	var out []int
	for s, sub := range x.shards {
		for _, local := range sub.Filter(q) {
			out = append(out, s+local*x.k)
		}
	}
	sort.Ints(out)
	return out
}

// FilterStream implements Index with an ascending-ID ordered merge: every
// shard scans concurrently on its own goroutine, candidates flow through
// per-shard channels, and the merger emits the minimum pending global ID —
// so the emission order is byte-identical to the monolithic index's
// regardless of K, scheduling, or channel timing. emit returning false (or a
// cancelled ctx) cancels the remaining shard scans; FilterStream returns
// only after every shard goroutine has drained, so a query leaves nothing
// behind.
func (x *Sharded) FilterStream(ctx context.Context, q *graph.Graph, emit func(graphID int) bool) error {
	if x.k == 1 {
		return x.shards[0].FilterStream(ctx, q, emit)
	}
	mctx, cancel := context.WithCancel(ctx)
	defer cancel()
	chans := make([]chan int, x.k)
	errs := make([]error, x.k) // written before the shard's channel close, read after
	var wg sync.WaitGroup
	for s := range x.shards {
		chans[s] = make(chan int, shardStreamBuf)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			defer close(chans[s])
			errs[s] = x.shards[s].FilterStream(mctx, q, func(local int) bool {
				select {
				case chans[s] <- s + local*x.k:
					return true
				case <-mctx.Done():
					return false
				}
			})
		}(s)
	}
	// The merge itself: hold one pending head per live shard, repeatedly
	// emit the minimum. A closing shard hands over its error; the first
	// shard failure cancels the rest rather than emitting past it.
	var (
		heads   = make([]int, x.k)
		live    = make([]bool, x.k)
		stopped bool
		ferr    error
	)
	pull := func(s int) bool {
		id, open := <-chans[s]
		if !open {
			live[s] = false
			if errs[s] != nil && ferr == nil {
				ferr = errs[s]
			}
			return false
		}
		heads[s], live[s] = id, true
		return true
	}
	for s := range chans {
		pull(s)
	}
	for ferr == nil {
		min := -1
		for s, ok := range live {
			if ok && (min < 0 || heads[s] < heads[min]) {
				min = s
			}
		}
		if min < 0 {
			break
		}
		if !emit(heads[min]) {
			stopped = true
			break
		}
		pull(min)
	}
	cancel()
	// Unblock shards parked on a full channel, then wait them out; without
	// the drain a shard could write to a channel nobody reads again.
	for s := range chans {
		go func(s int) {
			for range chans[s] {
			}
		}(s)
	}
	wg.Wait()
	switch {
	case stopped:
		return nil
	case ferr != nil && ctx.Err() == nil:
		return ferr
	case ctx.Err() != nil:
		// A truncated scan must not read as a completed empty one.
		return ctx.Err()
	default:
		return nil
	}
}
