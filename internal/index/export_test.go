package index_test

// Export/restore contract tests: for every registered kind, the exported
// feature arrays must be deterministic, and an index restored from them must
// answer byte-identically to the original — the correctness core of the
// on-disk snapshot format (internal/snapshot), exercised here without any
// file I/O in between.

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	_ "github.com/psi-graph/psi/internal/ggsx"
	_ "github.com/psi-graph/psi/internal/grapes"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
)

func TestExportRestoreParityAllKinds(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ds := randomDataset(r, 12, 9, 3)
	queries := make([]*graph.Graph, 6)
	for i := range queries {
		queries[i] = extractQuery(r, ds[r.Intn(len(ds))], 2+r.Intn(4))
	}
	for _, kind := range index.Kinds() {
		t.Run(kind, func(t *testing.T) {
			x, err := index.Build(context.Background(), kind, ds, index.Options{MaxPathLen: 3, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer x.Close()
			feats, maxLen, err := index.Export(x)
			if err != nil {
				t.Fatalf("export %s: %v", kind, err)
			}
			if maxLen != 3 {
				t.Fatalf("exported MaxPathLen = %d, want 3", maxLen)
			}
			// Determinism: a second export yields the same features in the
			// same order.
			again, _, err := index.Export(x)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(feats, again) {
				t.Fatalf("%s export is not deterministic", kind)
			}
			for i := 1; i < len(feats); i++ {
				if index.CompareLabelSeqs(feats[i-1].Labels, feats[i].Labels) >= 0 {
					t.Fatalf("%s export not in canonical order at %d", kind, i)
				}
			}
			y, err := index.Restore(kind, ds, maxLen, index.Options{Workers: 2}, feats)
			if err != nil {
				t.Fatalf("restore %s: %v", kind, err)
			}
			defer y.Close()
			if y.Stats().Features != x.Stats().Features || y.Stats().Nodes != x.Stats().Nodes {
				t.Fatalf("%s restored shape %+v != built %+v", kind, y.Stats(), x.Stats())
			}
			for qi, q := range queries {
				want, err := index.Answer(context.Background(), x, q, nil)
				if err != nil {
					t.Fatal(err)
				}
				got, err := index.Answer(context.Background(), y, q, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s query %d: restored answers %v != built %v", kind, qi, got, want)
				}
			}
		})
	}
}

func TestExportUnsupportedKind(t *testing.T) {
	ds := randomDataset(rand.New(rand.NewSource(1)), 4, 6, 2)
	x, err := index.BuildSharded(context.Background(), index.KindPath, ds, index.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	// The Sharded wrapper is decomposed shard-by-shard by the snapshot
	// layer, never exported whole.
	if _, _, err := index.Export(x); err == nil {
		t.Fatal("exporting a Sharded wrapper should fail")
	}
	if _, err := index.Restore("no-such-kind", ds, 3, index.Options{}, nil); err == nil {
		t.Fatal("restoring an unregistered kind should fail")
	}
	bad := []index.ExportedFeature{{
		Labels:   []graph.Label{1},
		Postings: []index.FeaturePosting{{GraphID: 99, Count: 1}},
	}}
	if _, err := index.Restore(index.KindPath, ds, 3, index.Options{}, bad); err == nil {
		t.Fatal("restoring an out-of-range posting should fail")
	}
}

func TestShardedSubsAndShardDataset(t *testing.T) {
	ds := randomDataset(rand.New(rand.NewSource(2)), 7, 6, 2)
	x, err := index.BuildSharded(context.Background(), index.KindPath, ds, index.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	subs := x.Subs()
	if len(subs) != 3 {
		t.Fatalf("Subs() = %d shards, want 3", len(subs))
	}
	for s, sub := range subs {
		want := index.ShardDataset(ds, s, 3)
		if !reflect.DeepEqual(sub.Dataset(), want) {
			t.Fatalf("shard %d dataset mismatch", s)
		}
		for i, g := range want {
			if ds[s+i*3] != g {
				t.Fatalf("ShardDataset order broken at shard %d pos %d", s, i)
			}
		}
	}
}

func TestCompareLabelSeqs(t *testing.T) {
	cases := []struct {
		a, b []graph.Label
		want int
	}{
		{nil, nil, 0},
		{[]graph.Label{1}, nil, 1},
		{nil, []graph.Label{1}, -1},
		{[]graph.Label{1, 2}, []graph.Label{1, 2}, 0},
		{[]graph.Label{1, 2}, []graph.Label{1, 3}, -1},
		{[]graph.Label{2}, []graph.Label{1, 9}, 1},
		{[]graph.Label{1}, []graph.Label{1, 0}, -1},
	}
	for _, tc := range cases {
		if got := index.CompareLabelSeqs(tc.a, tc.b); got != tc.want {
			t.Fatalf("CompareLabelSeqs(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestExportKeyFallback forces the string-key fallback of ftv.MakeKey (labels
// beyond the 12-bit packing range) through the export path, so the decode in
// Path.ExportFeatures is covered for both key forms.
func TestExportKeyFallback(t *testing.T) {
	big := graph.Label(1 << 13) // exceeds the packed-key label width
	g := graph.MustNew("big", []graph.Label{big, big + 1}, [][2]int{{0, 1}})
	ds := []*graph.Graph{g}
	x, err := index.Build(context.Background(), index.KindPath, ds, index.Options{MaxPathLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	feats, maxLen, err := index.Export(x)
	if err != nil {
		t.Fatal(err)
	}
	y, err := index.Restore(index.KindPath, ds, maxLen, index.Options{}, feats)
	if err != nil {
		t.Fatal(err)
	}
	want, err := index.Answer(context.Background(), x, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := index.Answer(context.Background(), y, g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("fallback-key restore diverged: %v != %v", got, want)
	}
}
