package index_test

// Sharded-index tests: the byte-parity property fuzz the sharding design
// hangs on (sharded answers identical to monolithic for every K, worker
// count and index kind), build-shape/clamping unit checks, mid-stream
// cancellation truncation-safety, and goroutine-leak regression.

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/gen"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
)

// fuzzMaxPathLen keeps extraction cheap enough to afford the full
// kind × K × workers matrix under -race; filtering power is unaffected in
// kind (only in degree), so parity is exercised just as hard.
const fuzzMaxPathLen = 3

// fuzzDatasets are the seeded random datasets the parity fuzz sweeps: the
// two generated shapes (disconnected PPI-like, denser GraphGen-style) plus a
// small adversarial random dataset with heavy label collisions.
func fuzzDatasets(r *rand.Rand) map[string][]*graph.Graph {
	return map[string][]*graph.Graph{
		"ppi":       gen.PPI(gen.PPIAt(gen.Tiny), 7),
		"synthetic": gen.Synthetic(gen.SyntheticAt(gen.Tiny), 7),
		"random":    randomDataset(r, 5, 12, 2),
	}
}

// TestShardedParityFuzz is the acceptance property: for random seeded
// datasets and queries, every index kind sharded at K∈{1,2,3,8} and built
// and queried at Workers∈{1,N} produces Filter candidates and full
// streaming-pipeline answers byte-identical to the monolithic index.
func TestShardedParityFuzz(t *testing.T) {
	pool1 := exec.New(1)
	defer pool1.Close()
	poolN := exec.New(4)
	defer poolN.Close()
	r := rand.New(rand.NewSource(42))
	for shape, ds := range fuzzDatasets(r) {
		var queries []*graph.Graph
		for qi := 0; qi < 4; qi++ {
			queries = append(queries, extractQuery(r, ds[r.Intn(len(ds))], 2+r.Intn(5)))
		}
		queries = append(queries, graph.MustNew("edgeless", []graph.Label{0}, nil))
		for _, kind := range index.Kinds() {
			mono, err := index.Build(context.Background(), kind, ds, index.Options{
				MaxPathLen: fuzzMaxPathLen, Pool: poolN,
			})
			if err != nil {
				t.Fatalf("%s/%s monolithic build: %v", shape, kind, err)
			}
			wantFilter := make([][]int, len(queries))
			wantAnswer := make([][]int, len(queries))
			for qi, q := range queries {
				wantFilter[qi] = mono.Filter(q)
				if wantAnswer[qi], err = index.Answer(context.Background(), mono, q, poolN); err != nil {
					t.Fatalf("%s/%s monolithic answer: %v", shape, kind, err)
				}
			}
			mono.Close()
			for _, k := range []int{1, 2, 3, 8} {
				for _, pool := range []*exec.Pool{pool1, poolN} {
					sh, err := index.BuildSharded(context.Background(), kind, ds, index.Options{
						MaxPathLen: fuzzMaxPathLen, Pool: pool, Shards: k,
					})
					if err != nil {
						t.Fatalf("%s/%s K=%d: %v", shape, kind, k, err)
					}
					for qi, q := range queries {
						if got := sh.Filter(q); !sameInts(got, wantFilter[qi]) {
							t.Errorf("%s/%s K=%d workers=%d q%d: Filter = %v, want %v",
								shape, kind, k, pool.Workers(), qi, got, wantFilter[qi])
						}
						got, err := index.Answer(context.Background(), sh, q, pool)
						if err != nil {
							t.Fatalf("%s/%s K=%d q%d: %v", shape, kind, k, qi, err)
						}
						if !sameInts(got, wantAnswer[qi]) {
							t.Errorf("%s/%s K=%d workers=%d q%d: Answer = %v, want %v",
								shape, kind, k, pool.Workers(), qi, got, wantAnswer[qi])
						}
					}
					sh.Close()
				}
			}
		}
	}
}

// TestShardedBuildShape checks the partitioning rule and the aggregate
// stats: round-robin shard datasets, clamping of oversized K, per-shard
// breakdown, and the ×K name.
func TestShardedBuildShape(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	ds := randomDataset(r, 5, 8, 2)
	sh, err := index.BuildSharded(context.Background(), index.KindPath, ds, index.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	st := sh.Stats()
	if st.ShardCount != 2 || len(st.Shards) != 2 {
		t.Fatalf("ShardCount = %d, Shards = %d entries, want 2", st.ShardCount, len(st.Shards))
	}
	if st.Graphs != len(ds) {
		t.Errorf("Graphs = %d, want %d", st.Graphs, len(ds))
	}
	// Round-robin over 5 graphs: shard 0 owns {0,2,4}, shard 1 owns {1,3}.
	if st.Shards[0].Graphs != 3 || st.Shards[1].Graphs != 2 {
		t.Errorf("shard balance = %d/%d, want 3/2", st.Shards[0].Graphs, st.Shards[1].Graphs)
	}
	if want := "FTV×2"; sh.Name() != want {
		t.Errorf("Name = %q, want %q", sh.Name(), want)
	}
	if sum := st.Shards[0].Features + st.Shards[1].Features; sum != st.Features {
		t.Errorf("aggregate Features = %d, want per-shard sum %d", st.Features, sum)
	}

	// Oversized K clamps to the dataset size; every shard owns one graph.
	big, err := index.BuildSharded(context.Background(), index.KindPath, ds, index.Options{Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()
	if big.Shards() != len(ds) {
		t.Errorf("Shards() = %d after clamping, want %d", big.Shards(), len(ds))
	}

	// Verify routes out-of-range IDs to an error, not a panic.
	q := extractQuery(r, ds[0], 2)
	if _, err := sh.Verify(context.Background(), q, len(ds)); err == nil {
		t.Error("Verify(out of range) = nil error")
	}
	if _, err := sh.Verify(context.Background(), q, -1); err == nil {
		t.Error("Verify(-1) = nil error")
	}
}

// TestShardedBuildThroughRegistry checks that index.Build with
// Options.Shards set produces the sharded wrapper for every registered kind
// and that Shards <= 1 stays monolithic.
func TestShardedBuildThroughRegistry(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ds := randomDataset(r, 4, 8, 2)
	for _, kind := range index.Kinds() {
		x, err := index.Build(context.Background(), kind, ds, index.Options{MaxPathLen: 2, Shards: 2})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if _, ok := x.(*index.Sharded); !ok {
			t.Errorf("%s: Build with Shards=2 returned %T, want *index.Sharded", kind, x)
		}
		if x.Stats().Kind != kind {
			t.Errorf("%s: sharded Stats.Kind = %q", kind, x.Stats().Kind)
		}
		x.Close()
		mono, err := index.Build(context.Background(), kind, ds, index.Options{MaxPathLen: 2, Shards: 1})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if _, ok := mono.(*index.Sharded); ok {
			t.Errorf("%s: Build with Shards=1 returned a sharded wrapper", kind)
		}
		mono.Close()
	}
	if _, err := index.BuildSharded(context.Background(), "nope", ds, index.Options{Shards: 2}); err == nil {
		t.Error("BuildSharded with unknown kind = nil error")
	}
}

// TestShardedStreamTruncationSafety is the cancellation half of the parity
// property: a sharded stream cut short — by the consumer returning false or
// by context cancellation — must emit a strict prefix of the full answer,
// and a context-cancelled run must report the context's error rather than
// posing as a completed (empty or truncated) answer.
func TestShardedStreamTruncationSafety(t *testing.T) {
	pool := exec.New(2)
	defer pool.Close()
	r := rand.New(rand.NewSource(11))
	ds := gen.Synthetic(gen.SyntheticAt(gen.Tiny), 7)
	sh, err := index.BuildSharded(context.Background(), index.KindPath, ds, index.Options{
		MaxPathLen: fuzzMaxPathLen, Pool: pool, Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	var q *graph.Graph
	var full []int
	for try := 0; try < 20; try++ {
		q = extractQuery(r, ds[r.Intn(len(ds))], 2+r.Intn(3))
		if full, err = index.Answer(context.Background(), sh, q, pool); err != nil {
			t.Fatal(err)
		}
		if len(full) >= 2 {
			break
		}
	}
	if len(full) < 2 {
		t.Fatalf("could not find a query with >= 2 answers (got %v)", full)
	}

	// Consumer stops after the first ID: nil error, 1-element prefix.
	var stopped []int
	err = index.AnswerStream(context.Background(), sh, q, pool, func(id int) bool {
		stopped = append(stopped, id)
		return false
	})
	if err != nil {
		t.Fatalf("stopped stream: %v", err)
	}
	if len(stopped) != 1 || stopped[0] != full[0] {
		t.Fatalf("stopped stream emitted %v, want prefix [%d]", stopped, full[0])
	}

	// Context cancelled after the first ID: the emitted IDs must be a
	// prefix of the full answer and the error must surface — unless the
	// pipeline raced cancellation to a genuine completion, in which case
	// the answer must be the whole thing.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var truncated []int
	err = index.AnswerStream(ctx, sh, q, pool, func(id int) bool {
		truncated = append(truncated, id)
		cancel()
		return true
	})
	if !sameInts(truncated, full[:len(truncated)]) {
		t.Fatalf("cancelled stream emitted %v, not a prefix of %v", truncated, full)
	}
	if err == nil && !sameInts(truncated, full) {
		t.Fatalf("cancelled stream returned nil error for truncated answer %v of %v", truncated, full)
	}

	// FilterStream cut mid-scan by cancellation reports the context error.
	fctx, fcancel := context.WithCancel(context.Background())
	ferr := sh.FilterStream(fctx, q, func(int) bool {
		fcancel()
		return true
	})
	fcancel()
	if cands := sh.Filter(q); len(cands) > 1 && ferr == nil {
		t.Fatalf("FilterStream cancelled mid-scan (candidates=%d) returned nil error", len(cands))
	}
}

// TestShardedStreamNoGoroutineLeak hammers the three early-exit paths —
// consumer stop, context cancellation, and normal completion — across many
// iterations and asserts the goroutine count returns to (near) baseline:
// the ordered merge must always drain its per-shard scan goroutines.
func TestShardedStreamNoGoroutineLeak(t *testing.T) {
	pool := exec.New(2)
	defer pool.Close()
	r := rand.New(rand.NewSource(13))
	ds := randomDataset(r, 9, 10, 2)
	sh, err := index.BuildSharded(context.Background(), index.KindPath, ds, index.Options{
		MaxPathLen: 2, Pool: pool, Shards: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	q := extractQuery(r, ds[0], 2)
	// Warm up so pool workers exist before the baseline is taken.
	if _, err := index.Answer(context.Background(), sh, q, pool); err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		switch i % 3 {
		case 0: // normal completion
			if _, err := index.Answer(context.Background(), sh, q, pool); err != nil {
				t.Fatal(err)
			}
		case 1: // consumer stops at first emission
			err := index.AnswerStream(context.Background(), sh, q, pool, func(int) bool { return false })
			if err != nil {
				t.Fatal(err)
			}
		default: // context cancelled mid-stream
			ctx, cancel := context.WithCancel(context.Background())
			_ = index.AnswerStream(ctx, sh, q, pool, func(int) bool {
				cancel()
				return true
			})
			cancel()
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+4 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+4 {
		t.Errorf("goroutines grew from %d to %d over 200 sharded streams: merge leaks scanners", before, after)
	}
}
