package index

import (
	"context"
	"errors"
	"sync"
	"testing"

	"github.com/psi-graph/psi/internal/exec"
	"github.com/psi-graph/psi/internal/ftv"
	"github.com/psi-graph/psi/internal/graph"
)

func smallDataset() []*graph.Graph {
	return []*graph.Graph{
		graph.MustNew("g0", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}, {2, 0}}),
		graph.MustNew("g1", []graph.Label{0, 1, 2, 0}, [][2]int{{0, 1}, {1, 2}, {2, 3}}),
		graph.MustNew("g2", []graph.Label{1, 0, 0, 0}, [][2]int{{0, 1}, {0, 2}, {0, 3}}),
	}
}

func TestRegistryHasAllKinds(t *testing.T) {
	kinds := Kinds()
	if len(kinds) == 0 || kinds[0] != KindPath {
		t.Fatalf("Kinds() = %v, want at least %q", kinds, KindPath)
	}
	if _, err := Build(context.Background(), "btree", smallDataset(), Options{}); err == nil {
		t.Error("Build of unknown kind should fail")
	}
}

func TestPathIndexFilterAndVerify(t *testing.T) {
	x, err := BuildPath(context.Background(), smallDataset(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if x.Name() != "FTV" {
		t.Errorf("Name = %q", x.Name())
	}
	q := graph.MustNew("q", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
	got := x.Filter(q)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("Filter = %v, want [0 1]", got)
	}
	// Frequency pruning: two 0-leaves on a 1-center needs (0,1) twice.
	q2 := graph.MustNew("q2", []graph.Label{1, 0, 0}, [][2]int{{0, 1}, {0, 2}})
	if got2 := x.Filter(q2); len(got2) != 1 || got2[0] != 2 {
		t.Errorf("Filter = %v, want [2]", got2)
	}
	// Edgeless query: all graphs.
	q3 := graph.MustNew("q3", []graph.Label{0}, nil)
	if got3 := x.Filter(q3); len(got3) != 3 {
		t.Errorf("Filter = %v, want all", got3)
	}
	// Unknown label: no candidates.
	q4 := graph.MustNew("q4", []graph.Label{9, 9}, [][2]int{{0, 1}})
	if got4 := x.Filter(q4); len(got4) != 0 {
		t.Errorf("Filter = %v, want empty", got4)
	}
	ok, err := x.Verify(context.Background(), q, 0)
	if err != nil || !ok {
		t.Errorf("Verify(g0) = %v, %v", ok, err)
	}
	ok, err = x.Verify(context.Background(), q, 2)
	if err != nil || ok {
		t.Errorf("Verify(g2) = %v, %v; q not contained", ok, err)
	}
	if _, err := x.Verify(context.Background(), q, 99); err == nil {
		t.Error("Verify out of range should fail")
	}
	st := x.Stats()
	if st.Kind != KindPath || st.Graphs != 3 || st.Features == 0 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestFilterStreamMatchesFilter(t *testing.T) {
	x, err := BuildPath(context.Background(), smallDataset(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	queries := []*graph.Graph{
		graph.MustNew("q", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}}),
		graph.MustNew("q", []graph.Label{0, 1}, [][2]int{{0, 1}}),
		graph.MustNew("q", []graph.Label{0}, nil),
	}
	for qi, q := range queries {
		want := x.Filter(q)
		var got []int
		if err := x.FilterStream(context.Background(), q, func(id int) bool {
			got = append(got, id)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: stream %v vs filter %v", qi, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: stream %v vs filter %v", qi, got, want)
			}
		}
	}
}

func TestFilterStreamEarlyStopAndCancel(t *testing.T) {
	x, err := BuildPath(context.Background(), smallDataset(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := graph.MustNew("q", []graph.Label{0, 1}, [][2]int{{0, 1}})
	var got []int
	if err := x.FilterStream(context.Background(), q, func(id int) bool {
		got = append(got, id)
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Errorf("early stop emitted %v, want one ID", got)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := x.FilterStream(ctx, q, func(int) bool { return true }); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled FilterStream = %v, want context.Canceled", err)
	}
}

// TestStreamVerifiedOrderingAndOverlap drives StreamVerified with a filter
// that emits slowly and asserts verified IDs still arrive in filter order,
// with verification having started before the filter finished.
func TestStreamVerifiedOrderingAndOverlap(t *testing.T) {
	pool := exec.New(2)
	defer pool.Close()
	var (
		mu            sync.Mutex
		verifyStarted bool
		overlapped    bool
	)
	filter := func(ctx context.Context, emit func(int) bool) error {
		for id := 0; id < 8; id++ {
			mu.Lock()
			if verifyStarted {
				overlapped = true // a check ran while we were still scanning
			}
			mu.Unlock()
			if !emit(id) {
				return nil
			}
		}
		return nil
	}
	check := func(ctx context.Context, id int) (bool, error) {
		mu.Lock()
		verifyStarted = true
		mu.Unlock()
		return id%2 == 0, nil
	}
	var got []int
	err := StreamVerified(context.Background(), pool, filter, func(id int) bool {
		got = append(got, id)
		return true
	}, check)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 2, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("emitted %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("emitted %v, want %v (order must match the filter)", got, want)
		}
	}
	if !overlapped {
		t.Error("verification never overlapped filtering — pipeline is not streaming-first")
	}
}

func TestStreamVerifiedEmitStop(t *testing.T) {
	pool := exec.New(2)
	defer pool.Close()
	filter := func(ctx context.Context, emit func(int) bool) error {
		for id := 0; id < 100; id++ {
			if !emit(id) {
				return nil
			}
		}
		return nil
	}
	check := func(ctx context.Context, id int) (bool, error) { return true, nil }
	count := 0
	err := StreamVerified(context.Background(), pool, filter, func(id int) bool {
		count++
		return count < 3
	}, check)
	if err != nil {
		t.Fatalf("emit-stop stream = %v, want nil", err)
	}
	if count != 3 {
		t.Errorf("emitted %d, want 3", count)
	}
}

func TestStreamVerifiedErrorPropagates(t *testing.T) {
	pool := exec.New(2)
	defer pool.Close()
	boom := errors.New("boom")
	filter := func(ctx context.Context, emit func(int) bool) error {
		for id := 0; id < 50; id++ {
			if !emit(id) {
				return nil
			}
		}
		return nil
	}
	check := func(ctx context.Context, id int) (bool, error) {
		if id == 5 {
			return false, boom
		}
		return false, nil
	}
	err := StreamVerified(context.Background(), pool, filter, func(int) bool { return true }, check)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestStreamVerifiedCancelNotSilentlyEmpty proves a cancelled pipeline
// reports the cancellation instead of a complete-looking empty answer.
func TestStreamVerifiedCancelNotSilentlyEmpty(t *testing.T) {
	pool := exec.New(2)
	defer pool.Close()
	ctx, cancel := context.WithCancel(context.Background())
	filter := func(fctx context.Context, emit func(int) bool) error {
		for id := 0; id < 100; id++ {
			if id == 3 {
				cancel() // caller goes away mid-scan
			}
			if !emit(id) {
				return nil
			}
		}
		return nil
	}
	check := func(gctx context.Context, id int) (bool, error) {
		if err := gctx.Err(); err != nil {
			return false, err
		}
		return false, nil
	}
	err := StreamVerified(ctx, pool, filter, func(int) bool { return true }, check)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pipeline = %v, want context.Canceled", err)
	}
}

func TestAnswerMatchesFTVAnswer(t *testing.T) {
	ds := smallDataset()
	x, err := BuildPath(context.Background(), ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.New(2)
	defer pool.Close()
	queries := []*graph.Graph{
		graph.MustNew("q", []graph.Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}}),
		graph.MustNew("q", []graph.Label{0, 1}, [][2]int{{0, 1}}),
		graph.MustNew("q", []graph.Label{9, 9}, [][2]int{{0, 1}}),
	}
	for qi, q := range queries {
		want, err := ftv.Answer(context.Background(), x, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Answer(context.Background(), x, q, pool)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: Answer %v vs ftv.Answer %v", qi, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: Answer %v vs ftv.Answer %v", qi, got, want)
			}
		}
	}
}
