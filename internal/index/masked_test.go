package index_test

// Tests for the mutable-dataset index primitives: Path.WithGraph
// (copy-on-write append), NewShardedFrom (assembling a Sharded from
// pre-built sub-indexes without clamping), and Masked (the tombstone-aware
// dense view). The property each hangs on is the same byte-parity the rest
// of the index layer enforces: derived views answer exactly like a
// from-scratch build over the equivalent dataset.

import (
	"context"
	"math/rand"
	"testing"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
)

// TestPathWithGraphParity appends graphs one at a time via WithGraph and
// checks, at every prefix, that the derived index answers exactly like
// BuildPath over the same prefix — and that the receiver is untouched.
func TestPathWithGraphParity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	ds := randomDataset(r, 6, 10, 2)
	base, err := index.BuildPath(context.Background(), ds[:2], index.Options{MaxPathLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	queries := []*graph.Graph{
		extractQuery(r, ds[3], 3),
		extractQuery(r, ds[4], 2),
		graph.MustNew("edgeless", []graph.Label{0}, nil),
	}
	baseAnswers := make([][]int, len(queries))
	for qi, q := range queries {
		if baseAnswers[qi], err = index.Answer(context.Background(), base, q, nil); err != nil {
			t.Fatal(err)
		}
	}
	var cur index.Index = base
	for n := 3; n <= len(ds); n++ {
		next, err := cur.(index.Inserter).WithGraph(context.Background(), ds[n-1])
		if err != nil {
			t.Fatalf("WithGraph(#%d): %v", n-1, err)
		}
		want, err := index.BuildPath(context.Background(), ds[:n], index.Options{MaxPathLen: 3})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			if got, expect := next.Filter(q), want.Filter(q); !sameInts(got, expect) {
				t.Errorf("n=%d q%d: Filter = %v, want %v", n, qi, got, expect)
			}
			got, err := index.Answer(context.Background(), next, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			expect, err := index.Answer(context.Background(), want, q, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !sameInts(got, expect) {
				t.Errorf("n=%d q%d: Answer = %v, want %v", n, qi, got, expect)
			}
		}
		if st := next.Stats(); st.Graphs != n || st.Features != want.Stats().Features {
			t.Errorf("n=%d: stats graphs=%d features=%d, want %d/%d",
				n, st.Graphs, st.Features, n, want.Stats().Features)
		}
		cur = next
	}
	// The original two-graph index must still answer as before the appends.
	for qi, q := range queries {
		got, err := index.Answer(context.Background(), base, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameInts(got, baseAnswers[qi]) {
			t.Errorf("receiver mutated: q%d = %v, want %v", qi, got, baseAnswers[qi])
		}
	}
}

// TestMaskedParity tombstones a random subset of slots (replacing them with
// a zero-vertex placeholder, as the live store does) and checks that the
// masked sharded view answers byte-identically to a fresh monolithic build
// over just the live graphs — for several shard counts, including K greater
// than the dataset (empty shards).
func TestMaskedParity(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	slots := randomDataset(r, 7, 10, 2)
	dead := map[int]bool{1: true, 4: true, 5: true}
	placeholder := graph.NewBuilder("dead").MustBuild()
	alive := make([]bool, len(slots))
	var dense []*graph.Graph
	slotDS := make([]*graph.Graph, len(slots))
	for s, g := range slots {
		if dead[s] {
			slotDS[s] = placeholder
			continue
		}
		alive[s] = true
		slotDS[s] = g
		dense = append(dense, g)
	}
	queries := []*graph.Graph{
		extractQuery(r, slots[0], 3),
		extractQuery(r, slots[4], 3), // extracted from a dead graph: may hit others
		graph.MustNew("edgeless", []graph.Label{0}, nil),
	}
	for _, kind := range index.Kinds() {
		want, err := index.Build(context.Background(), kind, dense, index.Options{MaxPathLen: 3})
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 3, 11} {
			subs := make([]index.Index, k)
			for s := 0; s < k; s++ {
				var sub []*graph.Graph
				for g := s; g < len(slotDS); g += k {
					sub = append(sub, slotDS[g])
				}
				if subs[s], err = index.Build(context.Background(), kind, sub, index.Options{MaxPathLen: 3}); err != nil {
					t.Fatalf("%s K=%d shard %d: %v", kind, k, s, err)
				}
			}
			sharded := index.NewShardedFrom(slotDS, kind, subs)
			if st := sharded.Stats(); st.ShardCount != k || st.Graphs != len(slotDS) {
				t.Errorf("%s K=%d: ShardedFrom stats = %d shards/%d graphs", kind, k, st.ShardCount, st.Graphs)
			}
			m := index.NewMasked(sharded, dense, alive)
			if got := len(m.Dataset()); got != len(dense) {
				t.Fatalf("%s K=%d: masked dataset = %d graphs, want %d", kind, k, got, len(dense))
			}
			if st := m.Stats(); st.Graphs != len(dense) {
				t.Errorf("%s K=%d: masked stats graphs = %d, want %d", kind, k, st.Graphs, len(dense))
			}
			for qi, q := range queries {
				if got, expect := m.Filter(q), want.Filter(q); !sameInts(got, expect) {
					t.Errorf("%s K=%d q%d: Filter = %v, want %v", kind, k, qi, got, expect)
				}
				got, err := index.Answer(context.Background(), m, q, nil)
				if err != nil {
					t.Fatal(err)
				}
				expect, err := index.Answer(context.Background(), want, q, nil)
				if err != nil {
					t.Fatal(err)
				}
				if !sameInts(got, expect) {
					t.Errorf("%s K=%d q%d: Answer = %v, want %v", kind, k, qi, got, expect)
				}
			}
			if _, err := m.Verify(context.Background(), queries[0], -1); err == nil {
				t.Error("Verify(-1) did not error")
			}
			if _, err := m.Verify(context.Background(), queries[0], len(dense)); err == nil {
				t.Error("Verify(len) did not error")
			}
			m.Close() // no-op by contract; sub-indexes stay usable
			if _, err := m.Verify(context.Background(), queries[0], 0); err != nil {
				t.Errorf("Verify after Close: %v", err)
			}
			sharded.Close()
		}
		want.Close()
	}
}

// TestMaskedMismatchPanics pins the constructor's consistency check: a dense
// dataset that disagrees with the alive mask is a caller bug, not a state to
// limp along in.
func TestMaskedMismatchPanics(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	ds := randomDataset(r, 3, 6, 2)
	x, err := index.BuildPath(context.Background(), ds, index.Options{MaxPathLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("NewMasked with mismatched mask did not panic")
		}
	}()
	index.NewMasked(x, ds, []bool{true, false, true})
}
