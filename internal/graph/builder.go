package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates vertices and edges and produces an immutable Graph.
// The zero value is usable; NewBuilder additionally sets a name.
type Builder struct {
	name      string
	labels    []Label
	edges     [][2]int32
	edgeLabel []Label // parallel to edges
}

// NewBuilder returns a Builder for a graph with the given name.
func NewBuilder(name string) *Builder { return &Builder{name: name} }

// SetName sets the name of the graph under construction.
func (b *Builder) SetName(name string) { b.name = name }

// AddVertex appends a vertex with label l and returns its ID.
func (b *Builder) AddVertex(l Label) int {
	b.labels = append(b.labels, l)
	return len(b.labels) - 1
}

// AddVertices appends n vertices all carrying label l and returns the ID of
// the first one.
func (b *Builder) AddVertices(l Label, n int) int {
	first := len(b.labels)
	for i := 0; i < n; i++ {
		b.labels = append(b.labels, l)
	}
	return first
}

// N returns the number of vertices added so far.
func (b *Builder) N() int { return len(b.labels) }

// AddEdge records the undirected edge {u, v} with the default edge label 0.
// Endpoints must already exist and be distinct. Duplicate edges are
// detected at Build time.
func (b *Builder) AddEdge(u, v int) error { return b.AddLabeledEdge(u, v, 0) }

// AddLabeledEdge records the undirected edge {u, v} carrying label l.
func (b *Builder) AddLabeledEdge(u, v int, l Label) error {
	if u == v {
		return fmt.Errorf("graph %q: self-loop on vertex %d", b.name, u)
	}
	if u < 0 || u >= len(b.labels) || v < 0 || v >= len(b.labels) {
		return fmt.Errorf("graph %q: edge (%d,%d) out of range [0,%d)", b.name, u, v, len(b.labels))
	}
	if l < 0 {
		return fmt.Errorf("graph %q: negative edge label %d on (%d,%d)", b.name, l, u, v)
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
	b.edgeLabel = append(b.edgeLabel, l)
	return nil
}

// HasEdgePending reports whether the edge {u,v} has already been added to
// the builder. It is O(#edges) and intended for generators that must avoid
// duplicates without building intermediate graphs.
func (b *Builder) HasEdgePending(u, v int) bool {
	if u > v {
		u, v = v, u
	}
	for _, e := range b.edges {
		if e[0] == int32(u) && e[1] == int32(v) {
			return true
		}
	}
	return false
}

// Build validates the accumulated structure and returns the immutable graph.
// It rejects duplicate edges so that the result is a simple graph.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.labels)
	deg := make([]int, n)
	order := make([]int, len(b.edges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		ei, ej := b.edges[order[i]], b.edges[order[j]]
		if ei[0] != ej[0] {
			return ei[0] < ej[0]
		}
		return ei[1] < ej[1]
	})
	for i := 1; i < len(order); i++ {
		if b.edges[order[i]] == b.edges[order[i-1]] {
			e := b.edges[order[i]]
			return nil, fmt.Errorf("graph %q: duplicate edge (%d,%d)", b.name, e[0], e[1])
		}
	}
	for _, e := range b.edges {
		deg[e[0]]++
		deg[e[1]]++
	}
	// CSR layout: offsets by prefix sum over degrees, then fill each
	// vertex's range through a moving cursor.
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + int32(deg[v])
	}
	nbrs := make([]int32, 2*len(b.edges))
	elabs := make([]Label, 2*len(b.edges))
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for _, idx := range order {
		e, l := b.edges[idx], b.edgeLabel[idx]
		nbrs[cursor[e[0]]], elabs[cursor[e[0]]] = e[1], l
		cursor[e[0]]++
		nbrs[cursor[e[1]]], elabs[cursor[e[1]]] = e[0], l
		cursor[e[1]]++
	}
	// Appending edges in (u,v)-sorted order leaves each vertex range with
	// its lower neighbors (added as e[1] endpoints, ascending in e[0])
	// before its higher neighbors (added as e[0] endpoints, ascending in
	// e[1]), i.e. already sorted — but only per half; merge-fix with a
	// stable insertion pass that carries labels along.
	for v := 0; v < n; v++ {
		a := nbrs[offsets[v]:offsets[v+1]]
		l := elabs[offsets[v]:offsets[v+1]]
		for i := 1; i < len(a); i++ {
			for j := i; j > 0 && a[j] < a[j-1]; j-- {
				a[j], a[j-1] = a[j-1], a[j]
				l[j], l[j-1] = l[j-1], l[j]
			}
		}
	}
	maxLbl := Label(-1)
	for _, l := range b.labels {
		if l < 0 {
			return nil, fmt.Errorf("graph %q: negative label %d", b.name, l)
		}
		if l > maxLbl {
			maxLbl = l
		}
	}
	labels := make([]Label, n)
	copy(labels, b.labels)
	g := &Graph{name: b.name, labels: labels, offsets: offsets, nbrs: nbrs, elabs: elabs, m: len(b.edges), maxLbl: maxLbl}
	g.buildLabelIndex()
	return g, nil
}

// MustBuild is Build but panics on error; for fixtures built from literals.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
