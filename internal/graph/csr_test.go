package graph

import (
	"strings"
	"testing"
)

// TestCSRRoundTrip rebuilds a graph from its own CSR arrays and asserts
// full equality, including the derived label index (via VerticesWithLabel).
func TestCSRRoundTrip(t *testing.T) {
	g := MustNew("rt", []Label{2, 0, 1, 0, 2}, [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 4}})
	labels, offsets, nbrs, elabs := g.CSR()
	h, err := FromCSR("rt", labels, offsets, nbrs, elabs)
	if err != nil {
		t.Fatalf("FromCSR: %v", err)
	}
	if !g.Equal(h) {
		t.Fatalf("round-tripped graph not equal:\n%v\n%v", g, h)
	}
	if h.Name() != "rt" || h.M() != g.M() || h.MaxLabel() != g.MaxLabel() {
		t.Fatalf("metadata mismatch: %v vs %v", h, g)
	}
	for l := Label(0); l <= g.MaxLabel(); l++ {
		a, b := g.VerticesWithLabel(l), h.VerticesWithLabel(l)
		if len(a) != len(b) {
			t.Fatalf("label index mismatch for label %d", l)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("label index mismatch for label %d at %d", l, i)
			}
		}
	}
}

func TestCSRRoundTripLabeledEdges(t *testing.T) {
	b := NewBuilder("el")
	b.AddVertices(1, 4)
	for _, e := range [][3]int{{0, 1, 7}, {1, 2, 3}, {2, 3, 7}} {
		if err := b.AddLabeledEdge(e[0], e[1], Label(e[2])); err != nil {
			t.Fatal(err)
		}
	}
	g := b.MustBuild()
	labels, offsets, nbrs, elabs := g.CSR()
	h, err := FromCSR("el", labels, offsets, nbrs, elabs)
	if err != nil {
		t.Fatalf("FromCSR: %v", err)
	}
	if !g.Equal(h) {
		t.Fatal("labeled-edge round trip not equal")
	}
}

func TestCSRRoundTripEmpty(t *testing.T) {
	g := NewBuilder("empty").MustBuild()
	labels, offsets, nbrs, elabs := g.CSR()
	h, err := FromCSR("empty", labels, offsets, nbrs, elabs)
	if err != nil {
		t.Fatalf("FromCSR empty: %v", err)
	}
	if h.N() != 0 || h.M() != 0 || h.MaxLabel() != -1 {
		t.Fatalf("empty graph mangled: %v", h)
	}
}

// TestFromCSRRejectsCorruption feeds FromCSR every class of structural
// damage the snapshot loader must fail closed on.
func TestFromCSRRejectsCorruption(t *testing.T) {
	mk := func() ([]Label, []int32, []int32, []Label) {
		g := MustNew("c", []Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}})
		labels, offsets, nbrs, elabs := g.CSR()
		return append([]Label(nil), labels...), append([]int32(nil), offsets...),
			append([]int32(nil), nbrs...), append([]Label(nil), elabs...)
	}
	cases := []struct {
		name    string
		corrupt func(labels []Label, offsets, nbrs []int32, elabs []Label) ([]Label, []int32, []int32, []Label)
		want    string
	}{
		{"short offsets", func(l []Label, o, n []int32, e []Label) ([]Label, []int32, []int32, []Label) {
			return l, o[:len(o)-1], n, e
		}, "offsets"},
		{"bad anchor", func(l []Label, o, n []int32, e []Label) ([]Label, []int32, []int32, []Label) {
			o[0] = 1
			return l, o, n, e
		}, "offsets[0]"},
		{"non-monotone", func(l []Label, o, n []int32, e []Label) ([]Label, []int32, []int32, []Label) {
			o[1] = o[2] + 1
			return l, o, n, e
		}, "not monotone"},
		{"nbrs length", func(l []Label, o, n []int32, e []Label) ([]Label, []int32, []int32, []Label) {
			return l, o, n[:len(n)-1], e
		}, "neighbor entries"},
		{"elabs length", func(l []Label, o, n []int32, e []Label) ([]Label, []int32, []int32, []Label) {
			return l, o, n, e[:len(e)-1]
		}, "edge labels"},
		{"negative label", func(l []Label, o, n []int32, e []Label) ([]Label, []int32, []int32, []Label) {
			l[0] = -5
			return l, o, n, e
		}, "negative label"},
		{"neighbor out of range", func(l []Label, o, n []int32, e []Label) ([]Label, []int32, []int32, []Label) {
			n[0] = 99
			return l, o, n, e
		}, "out of range"},
		{"self loop", func(l []Label, o, n []int32, e []Label) ([]Label, []int32, []int32, []Label) {
			n[0] = 0
			return l, o, n, e
		}, "self-loop"},
		{"negative edge label", func(l []Label, o, n []int32, e []Label) ([]Label, []int32, []int32, []Label) {
			e[0] = -1
			return l, o, n, e
		}, "negative edge label"},
		{"asymmetric", func(l []Label, o, n []int32, e []Label) ([]Label, []int32, []int32, []Label) {
			// Vertex 0's only neighbor becomes 2, but 2's list holds only 1.
			n[0] = 2
			return l, o, n, e
		}, "mirror"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			labels, offsets, nbrs, elabs := tc.corrupt(mk())
			_, err := FromCSR("c", labels, offsets, nbrs, elabs)
			if err == nil {
				t.Fatal("corrupt CSR accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	// Unsorted-neighbors case needs a vertex with two neighbors.
	g := MustNew("u", []Label{0, 0, 0}, [][2]int{{0, 1}, {0, 2}})
	labels, offsets, nbrs, elabs := g.CSR()
	n2 := append([]int32(nil), nbrs...)
	n2[0], n2[1] = n2[1], n2[0]
	if _, err := FromCSR("u", labels, offsets, n2, elabs); err == nil || !strings.Contains(err.Error(), "ascending") {
		t.Fatalf("unsorted neighbors accepted or wrong error: %v", err)
	}
}
