package graph

import "testing"

// TestEnumeratePathsWhileMatchesEnumeratePaths: the stoppable enumerator
// visits exactly the same paths in the same order when never stopped.
func TestEnumeratePathsWhileMatchesEnumeratePaths(t *testing.T) {
	g := MustNew("g", []Label{0, 1, 2, 1}, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	var plain [][]int32
	g.EnumeratePaths(3, func(p []int32) {
		plain = append(plain, append([]int32(nil), p...))
	})
	var while [][]int32
	g.EnumeratePathsWhile(3, func(p []int32) bool {
		while = append(while, append([]int32(nil), p...))
		return true
	})
	if len(plain) != len(while) {
		t.Fatalf("EnumeratePaths saw %d paths, EnumeratePathsWhile %d", len(plain), len(while))
	}
	for i := range plain {
		if len(plain[i]) != len(while[i]) {
			t.Fatalf("path %d differs: %v vs %v", i, plain[i], while[i])
		}
		for j := range plain[i] {
			if plain[i][j] != while[i][j] {
				t.Fatalf("path %d differs: %v vs %v", i, plain[i], while[i])
			}
		}
	}
}

// TestEnumeratePathsWhileStops: returning false abandons the enumeration
// immediately — no further visits anywhere, including other start vertices.
func TestEnumeratePathsWhileStops(t *testing.T) {
	g := MustNew("g", []Label{0, 1, 2, 1}, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	total := 0
	g.EnumeratePaths(3, func([]int32) { total++ })
	if total < 10 {
		t.Fatalf("fixture too small: %d paths", total)
	}
	for stopAt := 1; stopAt <= 3; stopAt++ {
		visits := 0
		g.EnumeratePathsWhile(3, func([]int32) bool {
			visits++
			return visits < stopAt
		})
		if visits != stopAt {
			t.Errorf("stopAt=%d: visited %d paths after stop", stopAt, visits)
		}
	}
}
