package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// triangle with a pendant: 0-1, 1-2, 2-0, 2-3
func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := New("t", []Label{0, 1, 2, 1}, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestBasicAccessors(t *testing.T) {
	g := testGraph(t)
	if g.N() != 4 {
		t.Errorf("N = %d, want 4", g.N())
	}
	if g.M() != 4 {
		t.Errorf("M = %d, want 4", g.M())
	}
	if g.Label(3) != 1 {
		t.Errorf("Label(3) = %d, want 1", g.Label(3))
	}
	if g.MaxLabel() != 2 {
		t.Errorf("MaxLabel = %d, want 2", g.MaxLabel())
	}
	if g.Degree(2) != 3 {
		t.Errorf("Degree(2) = %d, want 3", g.Degree(2))
	}
	if g.Degree(3) != 1 {
		t.Errorf("Degree(3) = %d, want 1", g.Degree(3))
	}
}

func TestHasEdgeSymmetric(t *testing.T) {
	g := testGraph(t)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}} {
		if !g.HasEdge(e[0], e[1]) || !g.HasEdge(e[1], e[0]) {
			t.Errorf("edge %v should exist in both directions", e)
		}
	}
	if g.HasEdge(0, 3) || g.HasEdge(3, 0) {
		t.Error("edge (0,3) should not exist")
	}
	if g.HasEdge(1, 3) {
		t.Error("edge (1,3) should not exist")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := testGraph(t)
	nb := g.Neighbors(2)
	want := []int32{0, 1, 3}
	if len(nb) != len(want) {
		t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
	}
	for i := range nb {
		if nb[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v", nb, want)
		}
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := testGraph(t)
	got := g.EdgeList()
	want := [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("EdgeList = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("EdgeList = %v, want %v", got, want)
		}
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder("x")
	b.AddVertex(0)
	if err := b.AddEdge(0, 0); err == nil {
		t.Error("expected error for self-loop")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder("x")
	b.AddVertex(0)
	if err := b.AddEdge(0, 1); err == nil {
		t.Error("expected error for out-of-range endpoint")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Error("expected error for negative endpoint")
	}
}

func TestBuilderRejectsDuplicateEdges(t *testing.T) {
	b := NewBuilder("x")
	b.AddVertex(0)
	b.AddVertex(1)
	if err := b.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Error("expected duplicate-edge error (same edge in both orientations)")
	}
}

func TestBuilderRejectsNegativeLabel(t *testing.T) {
	b := NewBuilder("x")
	b.AddVertex(-1)
	if _, err := b.Build(); err == nil {
		t.Error("expected error for negative label")
	}
}

func TestDegreeSumInvariant(t *testing.T) {
	g := randomGraph(rand.New(rand.NewSource(7)), 40, 0.1, 5)
	sum := 0
	for v := 0; v < g.N(); v++ {
		sum += g.Degree(v)
	}
	if sum != 2*g.M() {
		t.Errorf("degree sum %d != 2*M %d", sum, 2*g.M())
	}
}

func TestLabelFrequencies(t *testing.T) {
	g := testGraph(t)
	f := g.LabelFrequencies()
	if f[0] != 1 || f[1] != 2 || f[2] != 1 {
		t.Errorf("frequencies = %v", f)
	}
	if g.DistinctLabels() != 3 {
		t.Errorf("DistinctLabels = %d, want 3", g.DistinctLabels())
	}
}

func TestVerticesByLabel(t *testing.T) {
	g := testGraph(t)
	idx := g.VerticesByLabel()
	if len(idx[1]) != 2 || idx[1][0] != 1 || idx[1][1] != 3 {
		t.Errorf("VerticesByLabel()[1] = %v, want [1 3]", idx[1])
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := testGraph(t)
	h := g.Clone("copy")
	if !g.Equal(h) {
		t.Error("clone should be Equal to original")
	}
	if h.Name() != "copy" {
		t.Errorf("clone name = %q", h.Name())
	}
	g2 := MustNew("t", []Label{0, 1, 2, 2}, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	if g.Equal(g2) {
		t.Error("graphs with different labels must not be Equal")
	}
}

func TestPermuteIsIsomorphism(t *testing.T) {
	g := testGraph(t)
	perm := Permutation{2, 0, 3, 1}
	h, err := g.Permute(perm)
	if err != nil {
		t.Fatal(err)
	}
	if !IsIsomorphismWitness(g, h, perm) {
		t.Error("permutation must be an isomorphism witness")
	}
	// label moved with vertex
	if h.Label(2) != g.Label(0) {
		t.Errorf("label of image vertex: got %d want %d", h.Label(2), g.Label(0))
	}
}

func TestPermuteRejectsBadPermutations(t *testing.T) {
	g := testGraph(t)
	if _, err := g.Permute(Permutation{0, 1, 2}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := g.Permute(Permutation{0, 1, 2, 2}); err == nil {
		t.Error("expected non-bijection error")
	}
	if _, err := g.Permute(Permutation{0, 1, 2, 9}); err == nil {
		t.Error("expected out-of-range error")
	}
}

func TestPermutationInverseCompose(t *testing.T) {
	p := Permutation{2, 0, 3, 1}
	inv := p.Inverse()
	id := p.Compose(inv)
	for v := range id {
		if id[v] != v {
			t.Fatalf("p∘p⁻¹ not identity: %v", id)
		}
	}
}

func TestIdentityPermutation(t *testing.T) {
	g := testGraph(t)
	h := g.MustPermute(Identity(g.N()))
	if !g.Equal(h) {
		t.Error("identity permutation must produce an Equal graph")
	}
}

// Property: a random permutation always yields an isomorphism witness, and
// permuting back with the inverse recovers the original graph exactly.
func TestPermuteRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r, 3+r.Intn(20), 0.3, 4)
		perm := Permutation(r.Perm(g.N()))
		h := g.MustPermute(perm)
		if !IsIsomorphismWitness(g, h, perm) {
			return false
		}
		back := h.MustPermute(perm.Inverse())
		return g.Equal(back)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBFSDistances(t *testing.T) {
	// path 0-1-2-3 plus isolated 4
	g := MustNew("p", []Label{0, 0, 0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	d := g.BFSDistances(0, -1)
	want := []int{0, 1, 2, 3, -1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("BFSDistances = %v, want %v", d, want)
		}
	}
	d2 := g.BFSDistances(0, 2)
	if d2[3] != -1 {
		t.Errorf("depth-capped BFS should not reach vertex 3: %v", d2)
	}
	if d2[2] != 2 {
		t.Errorf("depth-capped BFS should reach vertex 2 at distance 2: %v", d2)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := MustNew("c", []Label{0, 0, 0, 0, 0}, [][2]int{{0, 1}, {3, 4}})
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3 components", comps)
	}
	if g.IsConnected() {
		t.Error("graph is not connected")
	}
	if !testGraph(t).IsConnected() {
		t.Error("test graph is connected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := testGraph(t)
	sub, new2old := g.InducedSubgraph("sub", []int32{0, 1, 2})
	if sub.N() != 3 || sub.M() != 3 {
		t.Fatalf("induced triangle: n=%d m=%d", sub.N(), sub.M())
	}
	for nw, old := range new2old {
		if sub.Label(nw) != g.Label(int(old)) {
			t.Errorf("label mismatch at new vertex %d", nw)
		}
	}
	sub2, _ := g.InducedSubgraph("sub2", []int32{0, 3})
	if sub2.M() != 0 {
		t.Errorf("induced {0,3} should have no edges, got %d", sub2.M())
	}
}

func TestEnumeratePathsCountsOnPathGraph(t *testing.T) {
	// path 0-1-2: directed simple paths of >=1 edge:
	// len1: 0-1,1-0,1-2,2-1 (4); len2: 0-1-2, 2-1-0 (2) => 6
	g := MustNew("p3", []Label{0, 0, 0}, [][2]int{{0, 1}, {1, 2}})
	count := 0
	g.EnumeratePaths(4, func(p []int32) { count++ })
	if count != 6 {
		t.Errorf("path count = %d, want 6", count)
	}
}

func TestEnumeratePathsRespectsMaxLen(t *testing.T) {
	g := MustNew("p4", []Label{0, 0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	maxSeen := 0
	g.EnumeratePaths(2, func(p []int32) {
		if len(p)-1 > maxSeen {
			maxSeen = len(p) - 1
		}
	})
	if maxSeen != 2 {
		t.Errorf("max path edges = %d, want 2", maxSeen)
	}
}

func TestMaximalPaths(t *testing.T) {
	// triangle: from each vertex DFS yields maximal paths covering all 3
	// vertices (cannot extend past 3 since all visited).
	g := MustNew("tri", []Label{0, 1, 2}, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	paths := g.MaximalPaths(4)
	if len(paths) == 0 {
		t.Fatal("expected maximal paths")
	}
	for _, p := range paths {
		if len(p) != 3 {
			t.Errorf("maximal path %v should span the whole triangle", p)
		}
	}
}

func TestLabelPath(t *testing.T) {
	g := testGraph(t)
	lp := g.LabelPath([]int32{0, 1, 2})
	if len(lp) != 3 || lp[0] != 0 || lp[1] != 1 || lp[2] != 2 {
		t.Errorf("LabelPath = %v", lp)
	}
}

func TestStats(t *testing.T) {
	g := testGraph(t)
	s := ComputeStats(g)
	if s.Nodes != 4 || s.Edges != 4 {
		t.Errorf("stats nodes/edges = %d/%d", s.Nodes, s.Edges)
	}
	if s.AvgDegree != 2.0 {
		t.Errorf("avg degree = %f, want 2.0", s.AvgDegree)
	}
	wantDensity := 2.0 * 4 / (4 * 3)
	if s.Density != wantDensity {
		t.Errorf("density = %f, want %f", s.Density, wantDensity)
	}
	if !s.Connected {
		t.Error("test graph is connected")
	}
	if s.Labels != 3 {
		t.Errorf("labels = %d, want 3", s.Labels)
	}
	if s.String() == "" {
		t.Error("Stats.String should be non-empty")
	}
}

func TestDatasetStats(t *testing.T) {
	g1 := testGraph(t)
	g2 := MustNew("d", []Label{5, 5}, nil) // disconnected, new label
	ds := ComputeDatasetStats("mini", []*Graph{g1, g2})
	if ds.NumGraphs != 2 {
		t.Errorf("NumGraphs = %d", ds.NumGraphs)
	}
	if ds.NumDisconnected != 1 {
		t.Errorf("NumDisconnected = %d, want 1", ds.NumDisconnected)
	}
	if ds.Labels != 4 {
		t.Errorf("dataset labels = %d, want 4", ds.Labels)
	}
	if ds.AvgNodes != 3 {
		t.Errorf("avg nodes = %f, want 3", ds.AvgNodes)
	}
	if !strings.Contains(ds.String(), "#graphs") {
		t.Error("DatasetStats.String should mention #graphs")
	}
}

func TestIOWriteReadRoundTrip(t *testing.T) {
	g1 := testGraph(t)
	g2 := MustNew("second graph", []Label{3, 4}, [][2]int{{0, 1}})
	var buf bytes.Buffer
	if err := WriteDataset(&buf, []*Graph{g1, g2}); err != nil {
		t.Fatal(err)
	}
	back, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("read %d graphs, want 2", len(back))
	}
	if !back[0].Equal(g1) || !back[1].Equal(g2) {
		t.Error("round-tripped graphs differ")
	}
	if back[1].Name() != "second graph" {
		t.Errorf("name = %q", back[1].Name())
	}
}

func TestIORoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var gs []*Graph
		for i := 0; i < 1+r.Intn(3); i++ {
			gs = append(gs, randomGraph(r, 1+r.Intn(15), 0.3, 4))
		}
		var buf bytes.Buffer
		if err := WriteDataset(&buf, gs); err != nil {
			return false
		}
		back, err := ReadDataset(&buf)
		if err != nil || len(back) != len(gs) {
			return false
		}
		for i := range gs {
			if !gs[i].Equal(back[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReadDatasetErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no header", "3\n"},
		{"bad vertex count", "#g\nxyz\n"},
		{"missing labels", "#g\n2\n0\n"},
		{"bad label", "#g\n1\n-5\n0\n"},
		{"bad edge count", "#g\n1\n0\nnope\n"},
		{"bad edge line", "#g\n2\n0\n0\n1\n0 1 2 3\n"},
		{"bad edge label", "#g\n2\n0\n0\n1\n0 1 x\n"},
		{"negative edge label", "#g\n2\n0\n0\n1\n0 1 -2\n"},
		{"edge out of range", "#g\n2\n0\n0\n1\n0 5\n"},
		{"duplicate edge", "#g\n2\n0\n0\n2\n0 1\n1 0\n"},
	}
	for _, c := range cases {
		if _, err := ReadDataset(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestReadDatasetEmpty(t *testing.T) {
	gs, err := ReadDataset(strings.NewReader("\n \n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(gs) != 0 {
		t.Errorf("expected no graphs, got %d", len(gs))
	}
}

// randomGraph builds a G(n,p)-style labeled graph for tests.
func randomGraph(r *rand.Rand, n int, p float64, labels int) *Graph {
	b := NewBuilder("rand")
	for i := 0; i < n; i++ {
		b.AddVertex(Label(r.Intn(labels)))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				if err := b.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
	}
	return b.MustBuild()
}
