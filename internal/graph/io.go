package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a line-oriented dialect of the .gfu format used by the
// Grapes/GGSX distributions:
//
//	#<graph name>
//	<number of vertices n>
//	<label of vertex 0>
//	...
//	<label of vertex n-1>
//	<number of edges m>
//	<u> <v> [<edge label>]   (m lines, 0-based vertex IDs)
//
// The edge label defaults to 0 when omitted, and is omitted on output for
// label-0 edges, so edge-unlabeled files round-trip byte-identically.
// A dataset file is simply a concatenation of graphs.

// WriteGraph serializes g in the text format.
func WriteGraph(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "#%s\n%d\n", g.Name(), g.N())
	for v := 0; v < g.N(); v++ {
		fmt.Fprintf(bw, "%d\n", g.Label(v))
	}
	fmt.Fprintf(bw, "%d\n", g.M())
	var err error
	g.LabeledEdges(func(u, v int, l Label) {
		if err != nil {
			return
		}
		if l == 0 {
			_, err = fmt.Fprintf(bw, "%d %d\n", u, v)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d %d\n", u, v, l)
		}
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// WriteDataset serializes each graph in order.
func WriteDataset(w io.Writer, graphs []*Graph) error {
	for _, g := range graphs {
		if err := WriteGraph(w, g); err != nil {
			return err
		}
	}
	return nil
}

// ReadDataset parses a concatenation of graphs in the text format.
func ReadDataset(r io.Reader) ([]*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var graphs []*Graph
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			t := strings.TrimSpace(sc.Text())
			if t != "" {
				return t, true
			}
		}
		return "", false
	}
	for {
		hdr, ok := next()
		if !ok {
			break
		}
		if !strings.HasPrefix(hdr, "#") {
			return nil, fmt.Errorf("line %d: expected graph header starting with '#', got %q", line, hdr)
		}
		name := strings.TrimPrefix(hdr, "#")
		nStr, ok := next()
		if !ok {
			return nil, fmt.Errorf("line %d: missing vertex count for graph %q", line, name)
		}
		n, err := strconv.Atoi(nStr)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("line %d: bad vertex count %q", line, nStr)
		}
		b := NewBuilder(name)
		for i := 0; i < n; i++ {
			lStr, ok := next()
			if !ok {
				return nil, fmt.Errorf("line %d: missing label %d/%d for graph %q", line, i, n, name)
			}
			l, err := strconv.Atoi(lStr)
			if err != nil || l < 0 {
				return nil, fmt.Errorf("line %d: bad label %q", line, lStr)
			}
			b.AddVertex(Label(l))
		}
		mStr, ok := next()
		if !ok {
			return nil, fmt.Errorf("line %d: missing edge count for graph %q", line, name)
		}
		m, err := strconv.Atoi(mStr)
		if err != nil || m < 0 {
			return nil, fmt.Errorf("line %d: bad edge count %q", line, mStr)
		}
		for i := 0; i < m; i++ {
			eStr, ok := next()
			if !ok {
				return nil, fmt.Errorf("line %d: missing edge %d/%d for graph %q", line, i, m, name)
			}
			fields := strings.Fields(eStr)
			if len(fields) != 2 && len(fields) != 3 {
				return nil, fmt.Errorf("line %d: bad edge line %q", line, eStr)
			}
			u, err1 := strconv.Atoi(fields[0])
			v, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("line %d: bad edge endpoints %q", line, eStr)
			}
			el := 0
			if len(fields) == 3 {
				parsed, perr := strconv.Atoi(fields[2])
				if perr != nil || parsed < 0 {
					return nil, fmt.Errorf("line %d: bad edge label %q", line, fields[2])
				}
				el = parsed
			}
			if err := b.AddLabeledEdge(u, v, Label(el)); err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
		}
		g, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("graph %q ending at line %d: %w", name, line, err)
		}
		graphs = append(graphs, g)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return graphs, nil
}
