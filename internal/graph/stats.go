package graph

import (
	"fmt"
	"math"
	"strings"
)

// Stats summarizes a single graph, mirroring the rows of Tables 1 and 2 of
// the paper (node/edge counts, density, degree and label statistics).
type Stats struct {
	Name          string
	Nodes         int
	Edges         int
	AvgDegree     float64
	StdDevDegree  float64
	Density       float64 // 2m / (n(n-1))
	Labels        int     // distinct labels
	AvgLabelFreq  float64
	StdDevLblFreq float64
	Connected     bool
}

// ComputeStats derives Stats for g.
func ComputeStats(g *Graph) Stats {
	n := g.N()
	s := Stats{Name: g.Name(), Nodes: n, Edges: g.M(), Connected: g.IsConnected()}
	if n > 0 {
		degs := make([]float64, n)
		for v := 0; v < n; v++ {
			degs[v] = float64(g.Degree(v))
		}
		s.AvgDegree, s.StdDevDegree = meanStd(degs)
	}
	if n > 1 {
		s.Density = 2 * float64(g.M()) / (float64(n) * float64(n-1))
	}
	freq := g.LabelFrequencies()
	s.Labels = len(freq)
	if len(freq) > 0 {
		fs := make([]float64, 0, len(freq))
		for _, c := range freq {
			fs = append(fs, float64(c))
		}
		s.AvgLabelFreq, s.StdDevLblFreq = meanStd(fs)
	}
	return s
}

// DatasetStats summarizes a multi-graph dataset, mirroring Table 1.
type DatasetStats struct {
	Name            string
	NumGraphs       int
	NumDisconnected int
	Labels          int // distinct labels across the dataset
	AvgNodes        float64
	StdDevNodes     float64
	AvgEdges        float64
	AvgDensity      float64
	AvgDegree       float64
	AvgLabels       float64 // avg distinct labels per graph
}

// ComputeDatasetStats derives DatasetStats for a dataset of graphs.
func ComputeDatasetStats(name string, graphs []*Graph) DatasetStats {
	ds := DatasetStats{Name: name, NumGraphs: len(graphs)}
	all := make(map[Label]struct{})
	var nodes, edges, density, degree, labels []float64
	for _, g := range graphs {
		st := ComputeStats(g)
		if !st.Connected {
			ds.NumDisconnected++
		}
		nodes = append(nodes, float64(st.Nodes))
		edges = append(edges, float64(st.Edges))
		density = append(density, st.Density)
		degree = append(degree, st.AvgDegree)
		labels = append(labels, float64(st.Labels))
		for l := range g.LabelFrequencies() {
			all[l] = struct{}{}
		}
	}
	ds.Labels = len(all)
	ds.AvgNodes, ds.StdDevNodes = meanStd(nodes)
	ds.AvgEdges, _ = meanStd(edges)
	ds.AvgDensity, _ = meanStd(density)
	ds.AvgDegree, _ = meanStd(degree)
	ds.AvgLabels, _ = meanStd(labels)
	return ds
}

// String renders the dataset statistics as a small table in the spirit of
// Table 1 of the paper.
func (ds DatasetStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataset %s\n", ds.Name)
	fmt.Fprintf(&b, "  #graphs              %d\n", ds.NumGraphs)
	fmt.Fprintf(&b, "  #disconnected graphs %d\n", ds.NumDisconnected)
	fmt.Fprintf(&b, "  #labels              %d\n", ds.Labels)
	fmt.Fprintf(&b, "  avg #nodes           %.1f\n", ds.AvgNodes)
	fmt.Fprintf(&b, "  stddev #nodes        %.1f\n", ds.StdDevNodes)
	fmt.Fprintf(&b, "  avg #edges           %.1f\n", ds.AvgEdges)
	fmt.Fprintf(&b, "  avg density          %.4f\n", ds.AvgDensity)
	fmt.Fprintf(&b, "  avg degree           %.2f\n", ds.AvgDegree)
	fmt.Fprintf(&b, "  avg #labels          %.1f", ds.AvgLabels)
	return b.String()
}

// String renders single-graph statistics as the Table 2 rows.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s\n", s.Name)
	fmt.Fprintf(&b, "  #nodes                 %d\n", s.Nodes)
	fmt.Fprintf(&b, "  #edges                 %d\n", s.Edges)
	fmt.Fprintf(&b, "  avg degree             %.2f\n", s.AvgDegree)
	fmt.Fprintf(&b, "  stddev degree          %.2f\n", s.StdDevDegree)
	fmt.Fprintf(&b, "  density                %.6f\n", s.Density)
	fmt.Fprintf(&b, "  #labels                %d\n", s.Labels)
	fmt.Fprintf(&b, "  avg frequency labels   %.1f\n", s.AvgLabelFreq)
	fmt.Fprintf(&b, "  stddev frequency labels %.1f", s.StdDevLblFreq)
	return b.String()
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) == 1 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(len(xs)))
}
