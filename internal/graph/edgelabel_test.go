package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// edge-labeled fixture: triangle with distinct edge labels plus a pendant.
func edgeLabeledGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("el")
	for _, l := range []Label{0, 1, 2, 1} {
		b.AddVertex(l)
	}
	for _, e := range []struct {
		u, v int
		l    Label
	}{{0, 1, 5}, {1, 2, 6}, {2, 0, 7}, {2, 3, 0}} {
		if err := b.AddLabeledEdge(e.u, e.v, e.l); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

func TestEdgeLabelLookup(t *testing.T) {
	g := edgeLabeledGraph(t)
	cases := []struct {
		u, v int
		want Label
	}{{0, 1, 5}, {1, 0, 5}, {1, 2, 6}, {0, 2, 7}, {2, 3, 0}, {0, 3, -1}}
	for _, c := range cases {
		if got := g.EdgeLabel(c.u, c.v); got != c.want {
			t.Errorf("EdgeLabel(%d,%d) = %d, want %d", c.u, c.v, got, c.want)
		}
	}
	if !g.HasEdgeLabeled(0, 1, 5) || g.HasEdgeLabeled(0, 1, 6) {
		t.Error("HasEdgeLabeled")
	}
	if g.HasEdgeLabeled(0, 3, 0) {
		t.Error("HasEdgeLabeled on a non-edge")
	}
}

func TestEdgeLabelsAlignedWithNeighbors(t *testing.T) {
	g := edgeLabeledGraph(t)
	for v := 0; v < g.N(); v++ {
		nb, el := g.Neighbors(v), g.EdgeLabels(v)
		if len(nb) != len(el) {
			t.Fatalf("vertex %d: %d neighbors vs %d edge labels", v, len(nb), len(el))
		}
		for i, w := range nb {
			if g.EdgeLabel(v, int(w)) != el[i] {
				t.Errorf("vertex %d: edge label misaligned at neighbor %d", v, w)
			}
		}
	}
}

func TestHasEdgeLabelsBeyondDefault(t *testing.T) {
	if !edgeLabeledGraph(t).HasEdgeLabelsBeyondDefault() {
		t.Error("edge-labeled graph should report non-default labels")
	}
	plain := MustNew("p", []Label{0, 0}, [][2]int{{0, 1}})
	if plain.HasEdgeLabelsBeyondDefault() {
		t.Error("default-labeled graph should report false")
	}
}

func TestLabeledEdgesIteration(t *testing.T) {
	g := edgeLabeledGraph(t)
	got := map[[2]int]Label{}
	g.LabeledEdges(func(u, v int, l Label) { got[[2]int{u, v}] = l })
	want := map[[2]int]Label{{0, 1}: 5, {0, 2}: 7, {1, 2}: 6, {2, 3}: 0}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for k, l := range want {
		if got[k] != l {
			t.Errorf("edge %v label = %d, want %d", k, got[k], l)
		}
	}
}

func TestBuilderRejectsNegativeEdgeLabel(t *testing.T) {
	b := NewBuilder("x")
	b.AddVertex(0)
	b.AddVertex(0)
	if err := b.AddLabeledEdge(0, 1, -1); err == nil {
		t.Error("expected error for negative edge label")
	}
}

func TestPermutePreservesEdgeLabels(t *testing.T) {
	g := edgeLabeledGraph(t)
	perm := Permutation{2, 0, 3, 1}
	h := g.MustPermute(perm)
	if !IsIsomorphismWitness(g, h, perm) {
		t.Fatal("permutation must be a label-preserving isomorphism")
	}
	if h.EdgeLabel(perm[0], perm[1]) != 5 || h.EdgeLabel(perm[1], perm[2]) != 6 {
		t.Error("edge labels must move with the permutation")
	}
	// A graph with a *different* edge label is not isomorphic under perm.
	b := NewBuilder("el2")
	for _, l := range []Label{0, 1, 2, 1} {
		b.AddVertex(l)
	}
	mustLabeled(t, b, 0, 1, 9) // changed from 5
	mustLabeled(t, b, 1, 2, 6)
	mustLabeled(t, b, 2, 0, 7)
	mustLabeled(t, b, 2, 3, 0)
	g2 := b.MustBuild()
	if IsIsomorphismWitness(g2, h, perm) {
		t.Error("witness must reject mismatched edge labels")
	}
}

func TestInducedSubgraphPreservesEdgeLabels(t *testing.T) {
	g := edgeLabeledGraph(t)
	sub, new2old := g.InducedSubgraph("sub", []int32{0, 1, 2})
	sub.LabeledEdges(func(u, v int, l Label) {
		if g.EdgeLabel(int(new2old[u]), int(new2old[v])) != l {
			t.Errorf("edge (%d,%d) label %d differs from original", u, v, l)
		}
	})
	if sub.M() != 3 {
		t.Errorf("induced edge count = %d", sub.M())
	}
}

func TestCloneEqualWithEdgeLabels(t *testing.T) {
	g := edgeLabeledGraph(t)
	h := g.Clone("c")
	if !g.Equal(h) {
		t.Error("clone must be Equal")
	}
	// differing only in one edge label => not Equal
	b := NewBuilder("el")
	for _, l := range []Label{0, 1, 2, 1} {
		b.AddVertex(l)
	}
	mustLabeled(t, b, 0, 1, 5)
	mustLabeled(t, b, 1, 2, 6)
	mustLabeled(t, b, 2, 0, 7)
	mustLabeled(t, b, 2, 3, 4) // was 0
	if g.Equal(b.MustBuild()) {
		t.Error("Equal must compare edge labels")
	}
}

func TestIOEdgeLabelsRoundTrip(t *testing.T) {
	g := edgeLabeledGraph(t)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	// label-0 edges are written without the third field
	if !bytes.Contains(buf.Bytes(), []byte("0 1 5")) {
		t.Errorf("labeled edge not serialized:\n%s", buf.String())
	}
	back, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || !back[0].Equal(g) {
		t.Error("edge-labeled graph failed to round-trip")
	}
}

func TestIOEdgeLabelRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomEdgeLabeled(r, 2+r.Intn(12), 3, 4)
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			return false
		}
		back, err := ReadDataset(&buf)
		return err == nil && len(back) == 1 && back[0].Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPermuteEdgeLabelProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomEdgeLabeled(r, 3+r.Intn(12), 3, 4)
		perm := Permutation(r.Perm(g.N()))
		h := g.MustPermute(perm)
		return IsIsomorphismWitness(g, h, perm) && g.Equal(h.MustPermute(perm.Inverse()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func mustLabeled(t *testing.T, b *Builder, u, v int, l Label) {
	t.Helper()
	if err := b.AddLabeledEdge(u, v, l); err != nil {
		t.Fatal(err)
	}
}

// randomEdgeLabeled builds a connected random graph with random vertex and
// edge labels.
func randomEdgeLabeled(r *rand.Rand, n, vLabels, eLabels int) *Graph {
	b := NewBuilder("rel")
	for i := 0; i < n; i++ {
		b.AddVertex(Label(r.Intn(vLabels)))
	}
	for v := 1; v < n; v++ {
		if err := b.AddLabeledEdge(r.Intn(v), v, Label(r.Intn(eLabels))); err != nil {
			panic(err)
		}
	}
	for i := 0; i < n/2; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v && !b.HasEdgePending(u, v) {
			if err := b.AddLabeledEdge(u, v, Label(r.Intn(eLabels))); err != nil {
				panic(err)
			}
		}
	}
	return b.MustBuild()
}
