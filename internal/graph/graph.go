// Package graph provides the labeled-graph substrate shared by every
// component of the Ψ-framework reproduction: an immutable, vertex-labeled,
// undirected graph with sorted adjacency lists, plus construction,
// permutation, traversal, component, statistics, and serialization helpers.
//
// Vertices are identified by dense integer IDs in [0, N). Following the
// paper (Katsarou et al., EDBT 2017), node IDs are semantically meaningful:
// the query rewritings of §6 are pure node-ID permutations, and the matching
// algorithms break ties by node ID, which is exactly why isomorphic queries
// exhibit different running times.
package graph

import (
	"fmt"
	"sort"
)

// Label is a vertex label. The paper's datasets use small label alphabets
// (5–184 distinct labels), so a 32-bit integer is ample.
type Label int32

// Graph is an immutable labeled undirected simple graph. Both vertices and
// edges carry labels (Definition 1 of the paper); edge labels default to 0,
// which makes edge-unlabeled graphs a special case with zero overhead in
// the matching algorithms.
//
// The zero value is an empty graph. Construct non-trivial graphs with a
// Builder or with New. All accessors are safe for concurrent use because
// the structure is never mutated after construction.
type Graph struct {
	name   string
	labels []Label
	adj    [][]int32 // sorted neighbor lists
	elab   [][]Label // elab[v][i] labels the edge {v, adj[v][i]}
	m      int       // number of undirected edges
	maxLbl Label     // largest vertex label present, -1 if none
}

// New constructs a graph directly from a label slice and an edge list.
// It is a convenience wrapper around Builder for tests and examples.
// Duplicate edges are rejected; self-loops are rejected.
func New(name string, labels []Label, edges [][2]int) (*Graph, error) {
	b := NewBuilder(name)
	for _, l := range labels {
		b.AddVertex(l)
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// MustNew is New but panics on error; intended for tests and package-level
// example fixtures where the input is a literal.
func MustNew(name string, labels []Label, edges [][2]int) *Graph {
	g, err := New(name, labels, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Name returns the graph's identifier (dataset-graph name or query id).
func (g *Graph) Name() string { return g.name }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.labels) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Label returns the label of vertex v.
func (g *Graph) Label(v int) Label { return g.labels[v] }

// Labels returns the underlying label slice. Callers must not modify it.
func (g *Graph) Labels() []Label { return g.labels }

// MaxLabel returns the largest label value present, or -1 for an unlabeled
// (empty) graph. Useful for sizing frequency tables.
func (g *Graph) MaxLabel() Label { return g.maxLbl }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Neighbors returns the sorted neighbor list of v. Callers must not modify
// the returned slice; it aliases the graph's internal storage.
func (g *Graph) Neighbors(v int) []int32 { return g.adj[v] }

// HasEdge reports whether the undirected edge {u, v} is present.
// It runs in O(log deg(u)) via binary search on the sorted adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// EdgeLabel returns the label of edge {u, v}, or -1 if the edge is absent.
func (g *Graph) EdgeLabel(u, v int) Label {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	if i < len(a) && a[i] == int32(v) {
		return g.elab[u][i]
	}
	return -1
}

// HasEdgeLabeled reports whether edge {u, v} exists with label l — the
// compatibility check matchers use when mapping a query edge onto a stored
// edge (Definition 3 requires L(e) to be preserved).
func (g *Graph) HasEdgeLabeled(u, v int, l Label) bool {
	a := g.adj[u]
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v) && g.elab[u][i] == l
}

// EdgeLabels reports the neighbor-aligned edge labels of v: entry i labels
// the edge to Neighbors(v)[i]. Callers must not modify the slice.
func (g *Graph) EdgeLabels(v int) []Label { return g.elab[v] }

// HasEdgeLabelsBeyondDefault reports whether any edge carries a non-zero
// label; indexes use it to decide whether edge-label pruning can pay off.
func (g *Graph) HasEdgeLabelsBeyondDefault() bool {
	for _, ls := range g.elab {
		for _, l := range ls {
			if l != 0 {
				return true
			}
		}
	}
	return false
}

// Edges calls fn once per undirected edge with u < v. Iteration order is
// deterministic (ascending u, then ascending v).
func (g *Graph) Edges(fn func(u, v int)) {
	for u := range g.adj {
		for _, w := range g.adj[u] {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// LabeledEdges calls fn once per undirected edge with u < v and the edge's
// label.
func (g *Graph) LabeledEdges(fn func(u, v int, l Label)) {
	for u := range g.adj {
		for i, w := range g.adj[u] {
			if int(w) > u {
				fn(u, int(w), g.elab[u][i])
			}
		}
	}
}

// EdgeList materializes the edge list with u < v in deterministic order.
func (g *Graph) EdgeList() [][2]int {
	out := make([][2]int, 0, g.m)
	g.Edges(func(u, v int) { out = append(out, [2]int{u, v}) })
	return out
}

// LabelFrequencies returns a map from label to the number of vertices
// carrying it.
func (g *Graph) LabelFrequencies() map[Label]int {
	f := make(map[Label]int)
	for _, l := range g.labels {
		f[l]++
	}
	return f
}

// DistinctLabels returns the number of distinct vertex labels.
func (g *Graph) DistinctLabels() int { return len(g.LabelFrequencies()) }

// VerticesByLabel returns, for each label, the ascending list of vertices
// carrying it. This is the basic inverted index every NFV method starts from.
func (g *Graph) VerticesByLabel() map[Label][]int32 {
	idx := make(map[Label][]int32)
	for v, l := range g.labels {
		idx[l] = append(idx[l], int32(v))
	}
	return idx
}

// String implements fmt.Stringer with a compact one-line summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph %q: n=%d m=%d labels=%d", g.name, g.N(), g.M(), g.DistinctLabels())
}

// Clone returns a deep copy with the given name. Cloning is rarely needed
// (graphs are immutable) but supports renaming dataset entries.
func (g *Graph) Clone(name string) *Graph {
	labels := make([]Label, len(g.labels))
	copy(labels, g.labels)
	adj := make([][]int32, len(g.adj))
	elab := make([][]Label, len(g.elab))
	for i, a := range g.adj {
		adj[i] = make([]int32, len(a))
		copy(adj[i], a)
		elab[i] = make([]Label, len(g.elab[i]))
		copy(elab[i], g.elab[i])
	}
	return &Graph{name: name, labels: labels, adj: adj, elab: elab, m: g.m, maxLbl: g.maxLbl}
}

// Equal reports whether g and h are identical as labeled graphs on the same
// vertex numbering (not mere isomorphism), including edge labels.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for v := range g.labels {
		if g.labels[v] != h.labels[v] {
			return false
		}
		if len(g.adj[v]) != len(h.adj[v]) {
			return false
		}
		for i := range g.adj[v] {
			if g.adj[v][i] != h.adj[v][i] || g.elab[v][i] != h.elab[v][i] {
				return false
			}
		}
	}
	return true
}
