// Package graph provides the labeled-graph substrate shared by every
// component of the Ψ-framework reproduction: an immutable, vertex-labeled,
// undirected graph with sorted adjacency lists, plus construction,
// permutation, traversal, component, statistics, and serialization helpers.
//
// Vertices are identified by dense integer IDs in [0, N). Following the
// paper (Katsarou et al., EDBT 2017), node IDs are semantically meaningful:
// the query rewritings of §6 are pure node-ID permutations, and the matching
// algorithms break ties by node ID, which is exactly why isomorphic queries
// exhibit different running times.
package graph

import (
	"fmt"
	"sort"
)

// Label is a vertex label. The paper's datasets use small label alphabets
// (5–184 distinct labels), so a 32-bit integer is ample.
type Label int32

// Graph is an immutable labeled undirected simple graph. Both vertices and
// edges carry labels (Definition 1 of the paper); edge labels default to 0,
// which makes edge-unlabeled graphs a special case with zero overhead in
// the matching algorithms.
//
// Adjacency is stored in CSR (compressed sparse row) form: one flat
// neighbors array indexed by a per-vertex offsets array, with a parallel
// flat edge-label array. Vertex v's sorted neighbor list is
// neighbors[offsets[v]:offsets[v+1]]. The flat layout keeps each traversal
// within one contiguous allocation, which is what makes shared-memory
// subgraph matching cache-friendly.
//
// A precomputed label index (vertices sorted by (label, ID), with one range
// per distinct label) replaces the per-matcher map[Label][]int32 the
// algorithms used to build.
//
// The zero value is an empty graph. Construct non-trivial graphs with a
// Builder or with New. All accessors are safe for concurrent use because
// the structure is never mutated after construction.
type Graph struct {
	name    string
	labels  []Label
	offsets []int32 // len N()+1; offsets[v]..offsets[v+1] index neighbors/elabs
	nbrs    []int32 // flat sorted neighbor lists, len 2*M()
	elabs   []Label // elabs[i] labels the edge {v, nbrs[i]} for i in v's range
	m       int     // number of undirected edges
	maxLbl  Label   // largest vertex label present, -1 if none

	// Label index: lblOrder holds all vertices sorted by (label, ID);
	// lblVals lists the distinct labels ascending and lblStart[i] is the
	// start of lblVals[i]'s range in lblOrder (len(lblVals)+1 entries).
	lblOrder []int32
	lblVals  []Label
	lblStart []int32
}

// New constructs a graph directly from a label slice and an edge list.
// It is a convenience wrapper around Builder for tests and examples.
// Duplicate edges are rejected; self-loops are rejected.
func New(name string, labels []Label, edges [][2]int) (*Graph, error) {
	b := NewBuilder(name)
	for _, l := range labels {
		b.AddVertex(l)
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// MustNew is New but panics on error; intended for tests and package-level
// example fixtures where the input is a literal.
func MustNew(name string, labels []Label, edges [][2]int) *Graph {
	g, err := New(name, labels, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// Name returns the graph's identifier (dataset-graph name or query id).
func (g *Graph) Name() string { return g.name }

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.labels) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.m }

// Label returns the label of vertex v.
func (g *Graph) Label(v int) Label { return g.labels[v] }

// Labels returns the underlying label slice. Callers must not modify it.
func (g *Graph) Labels() []Label { return g.labels }

// MaxLabel returns the largest label value present, or -1 for an unlabeled
// (empty) graph. Useful for sizing frequency tables.
func (g *Graph) MaxLabel() Label { return g.maxLbl }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v int) int { return int(g.offsets[v+1] - g.offsets[v]) }

// Neighbors returns the sorted neighbor list of v. Callers must not modify
// the returned slice; it aliases the graph's internal storage.
func (g *Graph) Neighbors(v int) []int32 { return g.nbrs[g.offsets[v]:g.offsets[v+1]] }

// HasEdge reports whether the undirected edge {u, v} is present.
// It runs in O(log deg(u)) via binary search on the sorted adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	a := g.Neighbors(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v)
}

// EdgeLabel returns the label of edge {u, v}, or -1 if the edge is absent.
func (g *Graph) EdgeLabel(u, v int) Label {
	a := g.Neighbors(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	if i < len(a) && a[i] == int32(v) {
		return g.elabs[g.offsets[u]+int32(i)]
	}
	return -1
}

// HasEdgeLabeled reports whether edge {u, v} exists with label l — the
// compatibility check matchers use when mapping a query edge onto a stored
// edge (Definition 3 requires L(e) to be preserved).
func (g *Graph) HasEdgeLabeled(u, v int, l Label) bool {
	a := g.Neighbors(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= int32(v) })
	return i < len(a) && a[i] == int32(v) && g.elabs[g.offsets[u]+int32(i)] == l
}

// EdgeLabels reports the neighbor-aligned edge labels of v: entry i labels
// the edge to Neighbors(v)[i]. Callers must not modify the slice.
func (g *Graph) EdgeLabels(v int) []Label { return g.elabs[g.offsets[v]:g.offsets[v+1]] }

// HasEdgeLabelsBeyondDefault reports whether any edge carries a non-zero
// label; indexes use it to decide whether edge-label pruning can pay off.
func (g *Graph) HasEdgeLabelsBeyondDefault() bool {
	for _, l := range g.elabs {
		if l != 0 {
			return true
		}
	}
	return false
}

// Edges calls fn once per undirected edge with u < v. Iteration order is
// deterministic (ascending u, then ascending v).
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.N(); u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// LabeledEdges calls fn once per undirected edge with u < v and the edge's
// label.
func (g *Graph) LabeledEdges(fn func(u, v int, l Label)) {
	for u := 0; u < g.N(); u++ {
		base := g.offsets[u]
		for i, w := range g.Neighbors(u) {
			if int(w) > u {
				fn(u, int(w), g.elabs[base+int32(i)])
			}
		}
	}
}

// EdgeList materializes the edge list with u < v in deterministic order.
func (g *Graph) EdgeList() [][2]int {
	out := make([][2]int, 0, g.m)
	g.Edges(func(u, v int) { out = append(out, [2]int{u, v}) })
	return out
}

// LabelFrequencies returns a map from label to the number of vertices
// carrying it.
func (g *Graph) LabelFrequencies() map[Label]int {
	f := make(map[Label]int, len(g.lblVals))
	for i, l := range g.lblVals {
		f[l] = int(g.lblStart[i+1] - g.lblStart[i])
	}
	return f
}

// DistinctLabels returns the number of distinct vertex labels.
func (g *Graph) DistinctLabels() int { return len(g.lblVals) }

// VerticesWithLabel returns the ascending list of vertices carrying label l
// (empty if none), as a subslice of the graph's precomputed label index.
// Callers must not modify the returned slice. This is the O(log L) range
// lookup the matching algorithms use for candidate generation.
func (g *Graph) VerticesWithLabel(l Label) []int32 {
	i := sort.Search(len(g.lblVals), func(i int) bool { return g.lblVals[i] >= l })
	if i == len(g.lblVals) || g.lblVals[i] != l {
		return nil
	}
	return g.lblOrder[g.lblStart[i]:g.lblStart[i+1]]
}

// VerticesByLabel returns, for each label, the ascending list of vertices
// carrying it. The returned lists alias the graph's label index; callers
// must not modify them. Prefer VerticesWithLabel for single-label lookups —
// it avoids materializing the map.
func (g *Graph) VerticesByLabel() map[Label][]int32 {
	idx := make(map[Label][]int32, len(g.lblVals))
	for i, l := range g.lblVals {
		idx[l] = g.lblOrder[g.lblStart[i]:g.lblStart[i+1]]
	}
	return idx
}

// buildLabelIndex populates lblOrder/lblVals/lblStart from labels. Vertices
// are sorted by (label, ID), so each label's range is ascending by ID.
func (g *Graph) buildLabelIndex() {
	n := len(g.labels)
	g.lblOrder = make([]int32, n)
	for i := range g.lblOrder {
		g.lblOrder[i] = int32(i)
	}
	sort.SliceStable(g.lblOrder, func(i, j int) bool {
		return g.labels[g.lblOrder[i]] < g.labels[g.lblOrder[j]]
	})
	g.lblVals = g.lblVals[:0]
	g.lblStart = g.lblStart[:0]
	for i, v := range g.lblOrder {
		l := g.labels[v]
		if len(g.lblVals) == 0 || g.lblVals[len(g.lblVals)-1] != l {
			g.lblVals = append(g.lblVals, l)
			g.lblStart = append(g.lblStart, int32(i))
		}
	}
	g.lblStart = append(g.lblStart, int32(n))
}

// String implements fmt.Stringer with a compact one-line summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph %q: n=%d m=%d labels=%d", g.name, g.N(), g.M(), g.DistinctLabels())
}

// Clone returns a deep copy with the given name. Cloning is rarely needed
// (graphs are immutable) but supports renaming dataset entries.
func (g *Graph) Clone(name string) *Graph {
	h := &Graph{
		name:     name,
		labels:   append([]Label(nil), g.labels...),
		offsets:  append([]int32(nil), g.offsets...),
		nbrs:     append([]int32(nil), g.nbrs...),
		elabs:    append([]Label(nil), g.elabs...),
		m:        g.m,
		maxLbl:   g.maxLbl,
		lblOrder: append([]int32(nil), g.lblOrder...),
		lblVals:  append([]Label(nil), g.lblVals...),
		lblStart: append([]int32(nil), g.lblStart...),
	}
	return h
}

// Equal reports whether g and h are identical as labeled graphs on the same
// vertex numbering (not mere isomorphism), including edge labels.
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() || g.M() != h.M() {
		return false
	}
	for v := range g.labels {
		if g.labels[v] != h.labels[v] {
			return false
		}
		ga, ha := g.Neighbors(v), h.Neighbors(v)
		if len(ga) != len(ha) {
			return false
		}
		gl, hl := g.EdgeLabels(v), h.EdgeLabels(v)
		for i := range ga {
			if ga[i] != ha[i] || gl[i] != hl[i] {
				return false
			}
		}
	}
	return true
}
