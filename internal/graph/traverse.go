package graph

import "sort"

// BFSDistances returns the shortest-path distance (in edges) from src to
// every vertex, with -1 for unreachable vertices. maxDepth < 0 means
// unbounded; otherwise exploration stops after maxDepth levels.
func (g *Graph) BFSDistances(src, maxDepth int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if maxDepth >= 0 && dist[v] >= maxDepth {
			continue
		}
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// ConnectedComponents returns the vertex sets of the connected components,
// each sorted ascending, in order of their smallest vertex.
func (g *Graph) ConnectedComponents() [][]int32 {
	seen := make([]bool, g.N())
	var comps [][]int32
	for s := 0; s < g.N(); s++ {
		if seen[s] {
			continue
		}
		var comp []int32
		stack := []int32{int32(s)}
		seen[s] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range g.Neighbors(int(v)) {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sortInt32(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the graph has exactly one connected component
// (the empty graph counts as connected).
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	return len(g.ConnectedComponents()) == 1
}

// InducedSubgraph returns the subgraph induced by the given vertices along
// with the mapping from new vertex IDs to the original IDs. The vertex list
// may be unsorted; duplicates are rejected implicitly by the builder
// producing duplicate edges only if input has duplicates, so callers should
// pass distinct vertices.
func (g *Graph) InducedSubgraph(name string, vertices []int32) (*Graph, []int32) {
	old2new := make(map[int32]int32, len(vertices))
	new2old := make([]int32, len(vertices))
	b := NewBuilder(name)
	for i, v := range vertices {
		old2new[v] = int32(i)
		new2old[i] = v
		b.AddVertex(g.labels[v])
	}
	for _, v := range vertices {
		els := g.EdgeLabels(int(v))
		for i, w := range g.Neighbors(int(v)) {
			if nw, ok := old2new[w]; ok && w > v {
				// Safe: endpoints exist and are distinct by construction.
				_ = b.AddLabeledEdge(int(old2new[v]), int(nw), els[i])
			}
		}
	}
	sub := b.MustBuild()
	return sub, new2old
}

// EnumeratePaths performs a DFS from every vertex and invokes visit once per
// simple path of 1..maxEdges edges, passing the vertex sequence. The slice
// passed to visit is reused across calls; callers must copy it if retained.
// This is the feature-extraction primitive of Grapes and GGSX (§3.1.1: paths
// are searched in a DFS manner up to a maximum length).
func (g *Graph) EnumeratePaths(maxEdges int, visit func(path []int32)) {
	g.EnumeratePathsWhile(maxEdges, func(path []int32) bool {
		visit(path)
		return true
	})
}

// EnumeratePathsWhile is EnumeratePaths with early termination: visit
// returning false abandons the enumeration immediately. It is the primitive
// behind cancellable feature extraction — an index build that has been
// cancelled can stop mid-graph instead of finishing a potentially huge DFS.
func (g *Graph) EnumeratePathsWhile(maxEdges int, visit func(path []int32) bool) {
	onPath := make([]bool, g.N())
	path := make([]int32, 0, maxEdges+1)
	var dfs func(v int32) bool
	dfs = func(v int32) bool {
		onPath[v] = true
		path = append(path, v)
		more := true
		if len(path) > 1 {
			more = visit(path)
		}
		if more && len(path) <= maxEdges {
			for _, w := range g.Neighbors(int(v)) {
				if !onPath[w] {
					if !dfs(w) {
						more = false
						break
					}
				}
			}
		}
		path = path[:len(path)-1]
		onPath[v] = false
		return more
	}
	for v := 0; v < g.N(); v++ {
		if !dfs(int32(v)) {
			return
		}
	}
}

// MaximalPaths returns the label sequences of DFS paths that are maximal,
// i.e. paths that cannot be extended (either every neighbor of the last
// vertex is already on the path, or the path has reached maxEdges edges).
// Grapes/GGSX query processing extracts exactly these from the query graph.
// The returned slices are freshly allocated vertex sequences.
func (g *Graph) MaximalPaths(maxEdges int) [][]int32 {
	var out [][]int32
	onPath := make([]bool, g.N())
	path := make([]int32, 0, maxEdges+1)
	var dfs func(v int32)
	dfs = func(v int32) {
		onPath[v] = true
		path = append(path, v)
		extended := false
		if len(path) <= maxEdges {
			for _, w := range g.Neighbors(int(v)) {
				if !onPath[w] {
					extended = true
					dfs(w)
				}
			}
		}
		if !extended && len(path) > 1 {
			cp := make([]int32, len(path))
			copy(cp, path)
			out = append(out, cp)
		}
		path = path[:len(path)-1]
		onPath[v] = false
	}
	for v := 0; v < g.N(); v++ {
		dfs(int32(v))
	}
	return out
}

// LabelPath converts a vertex path into its label sequence.
func (g *Graph) LabelPath(path []int32) []Label {
	out := make([]Label, len(path))
	for i, v := range path {
		out[i] = g.labels[v]
	}
	return out
}

func sortInt32(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
