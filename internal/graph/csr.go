package graph

import "fmt"

// CSR exposes the graph's raw flat arrays — vertex labels, the CSR offsets
// array (len N()+1), the flat sorted neighbor lists (len 2*M()) and the
// parallel flat edge-label array. This is the serialization surface for the
// snapshot format: the four slices are exactly the contiguous arrays an
// mmap-backed loader would want to page in sequentially. The returned slices
// alias the graph's internal storage; callers must not modify them.
func (g *Graph) CSR() (labels []Label, offsets []int32, nbrs []int32, elabs []Label) {
	return g.labels, g.offsets, g.nbrs, g.elabs
}

// FromCSR reconstructs a graph from raw CSR arrays, e.g. read back from a
// snapshot. It validates the full structural invariant the Builder
// establishes — offsets monotone and anchored, neighbor lists sorted,
// duplicate- and self-loop-free, symmetric with matching edge labels,
// labels non-negative — so corrupt or hand-rolled input can never produce
// a graph that violates what the matchers and indexes assume. On success
// the result is Equal to the graph whose CSR() produced the arrays (the
// derived label index is rebuilt deterministically from labels). The input
// slices are retained, not copied; callers must not modify them afterward.
func FromCSR(name string, labels []Label, offsets []int32, nbrs []int32, elabs []Label) (*Graph, error) {
	n := len(labels)
	if len(offsets) != n+1 {
		return nil, fmt.Errorf("graph %q: csr: %d offsets for %d vertices (want n+1)", name, len(offsets), n)
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph %q: csr: offsets[0] = %d, want 0", name, offsets[0])
	}
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return nil, fmt.Errorf("graph %q: csr: offsets not monotone at vertex %d (%d > %d)", name, v, offsets[v], offsets[v+1])
		}
	}
	total := int(offsets[n])
	if len(nbrs) != total {
		return nil, fmt.Errorf("graph %q: csr: %d neighbor entries, offsets claim %d", name, len(nbrs), total)
	}
	if len(elabs) != total {
		return nil, fmt.Errorf("graph %q: csr: %d edge labels for %d neighbor entries", name, len(elabs), total)
	}
	if total%2 != 0 {
		return nil, fmt.Errorf("graph %q: csr: odd half-edge count %d", name, total)
	}
	maxLbl := Label(-1)
	for v, l := range labels {
		if l < 0 {
			return nil, fmt.Errorf("graph %q: csr: negative label %d on vertex %d", name, l, v)
		}
		if l > maxLbl {
			maxLbl = l
		}
	}
	for v := 0; v < n; v++ {
		prev := int32(-1)
		for i := offsets[v]; i < offsets[v+1]; i++ {
			w := nbrs[i]
			if w < 0 || int(w) >= n {
				return nil, fmt.Errorf("graph %q: csr: neighbor %d of vertex %d out of range [0,%d)", name, w, v, n)
			}
			if int(w) == v {
				return nil, fmt.Errorf("graph %q: csr: self-loop on vertex %d", name, v)
			}
			if w <= prev {
				return nil, fmt.Errorf("graph %q: csr: neighbor list of vertex %d not strictly ascending at %d", name, v, w)
			}
			prev = w
			if elabs[i] < 0 {
				return nil, fmt.Errorf("graph %q: csr: negative edge label %d on (%d,%d)", name, elabs[i], v, w)
			}
		}
	}
	g := &Graph{name: name, labels: labels, offsets: offsets, nbrs: nbrs, elabs: elabs, m: total / 2, maxLbl: maxLbl}
	// Symmetry: every half-edge (v,w) must have its mirror (w,v) with the
	// same label. Checked after construction so the binary-search accessors
	// can do the lookups; any failure discards g before it escapes.
	for v := 0; v < n; v++ {
		base := g.offsets[v]
		for i, w := range g.Neighbors(v) {
			if !g.HasEdgeLabeled(int(w), v, g.elabs[base+int32(i)]) {
				return nil, fmt.Errorf("graph %q: csr: edge (%d,%d) has no matching mirror half-edge", name, v, w)
			}
		}
	}
	g.buildLabelIndex()
	return g, nil
}
