package graph

import "fmt"

// Permutation maps old vertex IDs to new vertex IDs: perm[old] = new.
// A valid permutation of a graph with n vertices is a bijection on [0, n).
type Permutation []int

// Identity returns the identity permutation on n vertices.
func Identity(n int) Permutation {
	p := make(Permutation, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Validate reports an error unless p is a bijection on [0, len(p)).
func (p Permutation) Validate() error {
	seen := make([]bool, len(p))
	for old, nw := range p {
		if nw < 0 || nw >= len(p) {
			return fmt.Errorf("permutation: image %d of %d out of range [0,%d)", nw, old, len(p))
		}
		if seen[nw] {
			return fmt.Errorf("permutation: image %d repeated", nw)
		}
		seen[nw] = true
	}
	return nil
}

// Inverse returns q with q[p[v]] = v.
func (p Permutation) Inverse() Permutation {
	q := make(Permutation, len(p))
	for old, nw := range p {
		q[nw] = old
	}
	return q
}

// Compose returns the permutation r = q∘p, i.e. r[v] = q[p[v]].
func (p Permutation) Compose(q Permutation) Permutation {
	r := make(Permutation, len(p))
	for v := range p {
		r[v] = q[p[v]]
	}
	return r
}

// Permute returns a new graph isomorphic to g in which vertex v of g has
// become vertex perm[v]. Labels and adjacency move with the vertices, so the
// result is isomorphic to g by construction (Definition 2 of the paper: an
// isomorphic graph is produced by permuting node IDs).
func (g *Graph) Permute(perm Permutation) (*Graph, error) {
	if len(perm) != g.N() {
		return nil, fmt.Errorf("permute %q: permutation has %d entries, graph has %d vertices", g.name, len(perm), g.N())
	}
	if err := perm.Validate(); err != nil {
		return nil, fmt.Errorf("permute %q: %w", g.name, err)
	}
	b := NewBuilder(g.name)
	labels := make([]Label, g.N())
	for old, nw := range perm {
		labels[nw] = g.labels[old]
	}
	for _, l := range labels {
		b.AddVertex(l)
	}
	var err error
	g.LabeledEdges(func(u, v int, l Label) {
		if err == nil {
			err = b.AddLabeledEdge(perm[u], perm[v], l)
		}
	})
	if err != nil {
		return nil, err
	}
	return b.Build()
}

// MustPermute is Permute but panics on error; for use with permutations that
// are valid by construction (e.g. produced by the rewrite package).
func (g *Graph) MustPermute(perm Permutation) *Graph {
	h, err := g.Permute(perm)
	if err != nil {
		panic(err)
	}
	return h
}

// IsIsomorphismWitness reports whether perm is an isomorphism witness from g
// to h: vertex and edge labels preserved, edges mapped exactly onto edges.
func IsIsomorphismWitness(g, h *Graph, perm Permutation) bool {
	if g.N() != h.N() || g.M() != h.M() || len(perm) != g.N() {
		return false
	}
	if perm.Validate() != nil {
		return false
	}
	for v := 0; v < g.N(); v++ {
		if g.Label(v) != h.Label(perm[v]) {
			return false
		}
	}
	ok := true
	g.LabeledEdges(func(u, v int, l Label) {
		if !h.HasEdgeLabeled(perm[u], perm[v], l) {
			ok = false
		}
	})
	return ok
}
