// Package metrics implements the paper's measurement methodology (§3.5):
// per-query execution timing under a kill cap, the easy / 2″–600″ / hard
// classification, the (max/min) and speedup* metrics, and the two
// aggregation disciplines — Workload-Level Aggregation (WLA) and Query-Level
// Average (QLA) — whose distinction the paper argues is essential in the
// presence of straggler queries.
package metrics

import (
	"context"
	"errors"
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Class buckets a query by execution time. The paper's absolute thresholds
// (2 seconds / 600 seconds) are a 1:300 ratio that Budget preserves at any
// cap.
type Class int

const (
	// Easy queries finish below Cap × EasyFraction ("under 2 seconds").
	Easy Class = iota
	// Mid queries finish between the easy threshold and the cap (the
	// paper's 2″–600″ band).
	Mid
	// Hard queries hit the cap and are killed.
	Hard
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Easy:
		return "easy"
	case Mid:
		return "2''-600''"
	case Hard:
		return "hard"
	default:
		return "unknown"
	}
}

// Timing is one measured execution.
type Timing struct {
	Elapsed time.Duration
	// Killed marks executions that hit the cap; their Elapsed is clamped
	// to the cap, the value the paper substitutes for killed queries.
	Killed bool
	// Err records non-deadline failures (nil in normal operation).
	Err error
}

// Seconds returns the elapsed time in seconds (the unit used in FTV plots).
func (t Timing) Seconds() float64 { return t.Elapsed.Seconds() }

// Budget is the query-time accounting regime.
type Budget struct {
	// Cap is the kill limit (the paper's 10 minutes).
	Cap time.Duration
	// EasyFraction positions the easy threshold relative to Cap;
	// defaults to 1/300, the paper's 2″/600″ ratio.
	EasyFraction float64
}

// easyThreshold returns the easy/mid boundary.
func (b Budget) easyThreshold() time.Duration {
	f := b.EasyFraction
	if f <= 0 {
		f = 1.0 / 300.0
	}
	return time.Duration(float64(b.Cap) * f)
}

// Classify assigns a timing to its class.
func (b Budget) Classify(t Timing) Class {
	if t.Killed {
		return Hard
	}
	if t.Elapsed < b.easyThreshold() {
		return Easy
	}
	return Mid
}

// Run executes fn under the cap: fn receives a context that expires at the
// cap and must return promptly after expiry (all matchers in this module
// do). The returned timing has Killed set and Elapsed clamped to the cap
// when the deadline was hit.
func (b Budget) Run(ctx context.Context, fn func(ctx context.Context) error) Timing {
	runCtx, cancel := context.WithTimeout(ctx, b.Cap)
	defer cancel()
	start := time.Now()
	err := fn(runCtx)
	elapsed := time.Since(start)
	if err != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(runCtx.Err(), context.DeadlineExceeded)) {
		return Timing{Elapsed: b.Cap, Killed: true}
	}
	if elapsed > b.Cap {
		elapsed = b.Cap
	}
	return Timing{Elapsed: elapsed, Err: err}
}

// Counters is the set of monotonic execution counters a long-lived query
// engine accumulates across its lifetime — the operational face of the
// paper's per-query measurements. Every field is updated atomically, so one
// Counters value may be bumped from any number of concurrently executing
// queries and snapshotted at any time (a serving layer's /metrics endpoint
// reads it while queries are in flight). The zero value is ready to use.
type Counters struct {
	// Queries counts executed queries (collected and streamed alike).
	Queries atomic.Int64
	// Streamed counts the subset of Queries that ran in streaming mode.
	Streamed atomic.Int64
	// Killed counts queries that hit the per-query kill cap.
	Killed atomic.Int64
	// Errors counts queries that failed with a non-deadline error.
	Errors atomic.Int64
	// RaceAttempts counts matcher attempts started inside Ψ races (the
	// per-query attempt portfolio size, summed over queries).
	RaceAttempts atomic.Int64
	// PredictedSolo counts predicted single-attempt runs that completed
	// within their solo budget.
	PredictedSolo atomic.Int64
	// Fallbacks counts predicted runs that overran the solo budget and
	// fell back to a full race.
	Fallbacks atomic.Int64
	// IndexRaces counts dataset queries answered by racing the full
	// filtering-index portfolio.
	IndexRaces atomic.Int64
	// IndexAttempts counts filtering-index pipelines started (portfolio
	// size summed over raced queries, one per solo run) — the
	// CPU-normalized work behind every answer.
	IndexAttempts atomic.Int64
	// PolicySolo counts auto-policy queries planned as a single learned
	// arm instead of a full race.
	PolicySolo atomic.Int64
	// PolicyRaces counts auto-policy queries that raced the full portfolio
	// (warmup, staleness or kill escalation).
	PolicyRaces atomic.Int64
	// PolicyEscalations counts the subset of PolicyRaces forced by a prior
	// budget-killed solo attempt of the same query class.
	PolicyEscalations atomic.Int64
	// ShardedQueries counts dataset queries answered through a sharded
	// (partitioned) index portfolio.
	ShardedQueries atomic.Int64
	// ShardedKilled counts the subset of ShardedQueries that hit the
	// per-query kill cap.
	ShardedKilled atomic.Int64
	// GraphsAdded counts graphs ingested into a mutable dataset engine.
	GraphsAdded atomic.Int64
	// GraphsRemoved counts graphs deleted from a mutable dataset engine.
	GraphsRemoved atomic.Int64
	// GraphsReplaced counts in-place graph replacements on a mutable
	// dataset engine.
	GraphsReplaced atomic.Int64
	// Compactions counts shard-local rebuilds triggered by the tombstone
	// threshold of a mutable dataset engine.
	Compactions atomic.Int64
}

// CountersSnapshot is a plain-value copy of Counters, safe to serialize.
type CountersSnapshot struct {
	Queries           int64 `json:"queries"`
	Streamed          int64 `json:"streamed"`
	Killed            int64 `json:"killed"`
	Errors            int64 `json:"errors"`
	RaceAttempts      int64 `json:"race_attempts"`
	PredictedSolo     int64 `json:"predicted_solo"`
	Fallbacks         int64 `json:"fallbacks"`
	IndexRaces        int64 `json:"index_races"`
	IndexAttempts     int64 `json:"index_attempts"`
	PolicySolo        int64 `json:"policy_solo"`
	PolicyRaces       int64 `json:"policy_races"`
	PolicyEscalations int64 `json:"policy_escalations"`
	ShardedQueries    int64 `json:"sharded_queries"`
	ShardedKilled     int64 `json:"sharded_killed"`
	GraphsAdded       int64 `json:"graphs_added"`
	GraphsRemoved     int64 `json:"graphs_removed"`
	GraphsReplaced    int64 `json:"graphs_replaced"`
	Compactions       int64 `json:"compactions"`
}

// Snapshot returns a point-in-time copy of every counter. Counters keep
// moving while the snapshot is taken; each field is individually exact.
func (c *Counters) Snapshot() CountersSnapshot {
	return CountersSnapshot{
		Queries:           c.Queries.Load(),
		Streamed:          c.Streamed.Load(),
		Killed:            c.Killed.Load(),
		Errors:            c.Errors.Load(),
		RaceAttempts:      c.RaceAttempts.Load(),
		PredictedSolo:     c.PredictedSolo.Load(),
		Fallbacks:         c.Fallbacks.Load(),
		IndexRaces:        c.IndexRaces.Load(),
		IndexAttempts:     c.IndexAttempts.Load(),
		PolicySolo:        c.PolicySolo.Load(),
		PolicyRaces:       c.PolicyRaces.Load(),
		PolicyEscalations: c.PolicyEscalations.Load(),
		ShardedQueries:    c.ShardedQueries.Load(),
		ShardedKilled:     c.ShardedKilled.Load(),
		GraphsAdded:       c.GraphsAdded.Load(),
		GraphsRemoved:     c.GraphsRemoved.Load(),
		GraphsReplaced:    c.GraphsReplaced.Load(),
		Compactions:       c.Compactions.Load(),
	}
}

// Summary holds the descriptive statistics the paper tabulates for its
// metrics (Tables 5–9): mean, standard deviation, min, max, median.
type Summary struct {
	Mean, StdDev, Min, Max, Median float64
	N                              int
}

// Summarize computes a Summary over xs; an empty input yields zeros.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Mean += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.StdDev = math.Sqrt(ss / float64(len(xs)))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// WLARatio is the Workload-Level Aggregation of two paired sample sets:
// avg(B) / avg(A) — "the improvement in the overall average execution
// time", the system-centric metric.
func WLARatio(a, b []float64) float64 {
	ma, mb := Mean(a), Mean(b)
	if mb == 0 {
		return 0
	}
	return ma / mb
}

// QLARatio is the Query-Level Average of per-query ratios:
// avg_i(A_i / B_i) — the user-centric metric. Pairs with B_i = 0 are
// skipped.
func QLARatio(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("metrics: QLARatio requires paired samples")
	}
	var sum float64
	n := 0
	for i := range a {
		if b[i] == 0 {
			continue
		}
		sum += a[i] / b[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxMin is the paper's (max/min) metric over the execution times of a
// query's isomorphic instances: max_j(t_j) / min_j(t_j), minimum value 1.
func MaxMin(ts []float64) float64 {
	if len(ts) == 0 {
		return 0
	}
	lo, hi := ts[0], ts[0]
	for _, t := range ts {
		if t < lo {
			lo = t
		}
		if t > hi {
			hi = t
		}
	}
	if lo == 0 {
		return 0
	}
	return hi / lo
}

// Speedup is the paper's speedup* metric: t_M / T where T is the best
// alternative's time — "what we lose in performance if we choose the
// original method over the various alternatives". Minimum value 1 when the
// original is among the alternatives.
func Speedup(original, best float64) float64 {
	if best == 0 {
		return 0
	}
	return original / best
}

// ClassCounts tallies classified timings.
type ClassCounts struct {
	Easy, Mid, Hard int
}

// Total returns the number of classified executions.
func (c ClassCounts) Total() int { return c.Easy + c.Mid + c.Hard }

// Pct returns the percentage of the given class (0 if no samples).
func (c ClassCounts) Pct(cl Class) float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	switch cl {
	case Easy:
		return 100 * float64(c.Easy) / float64(t)
	case Mid:
		return 100 * float64(c.Mid) / float64(t)
	default:
		return 100 * float64(c.Hard) / float64(t)
	}
}

// Workload accumulates classified timings for one (method, dataset) cell of
// a Figure-1/2-style experiment.
type Workload struct {
	Budget  Budget
	Counts  ClassCounts
	easySum time.Duration
	midSum  time.Duration
}

// Add classifies and accumulates one timing, returning its class.
func (w *Workload) Add(t Timing) Class {
	c := w.Budget.Classify(t)
	switch c {
	case Easy:
		w.Counts.Easy++
		w.easySum += t.Elapsed
	case Mid:
		w.Counts.Mid++
		w.midSum += t.Elapsed
	default:
		w.Counts.Hard++
	}
	return c
}

// AvgEasy returns the WLA average execution time of easy queries.
func (w *Workload) AvgEasy() time.Duration {
	if w.Counts.Easy == 0 {
		return 0
	}
	return w.easySum / time.Duration(w.Counts.Easy)
}

// AvgMid returns the WLA average execution time of 2″–600″ queries.
func (w *Workload) AvgMid() time.Duration {
	if w.Counts.Mid == 0 {
		return 0
	}
	return w.midSum / time.Duration(w.Counts.Mid)
}

// AvgCompleted returns the WLA average over all completed (easy + mid)
// queries — the quantity whose domination by stragglers motivates the
// paper's Observation 1.
func (w *Workload) AvgCompleted() time.Duration {
	n := w.Counts.Easy + w.Counts.Mid
	if n == 0 {
		return 0
	}
	return (w.easySum + w.midSum) / time.Duration(n)
}
