package metrics

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestClassify(t *testing.T) {
	b := Budget{Cap: 300 * time.Millisecond} // easy threshold = 1ms
	cases := []struct {
		timing Timing
		want   Class
	}{
		{Timing{Elapsed: 100 * time.Microsecond}, Easy},
		{Timing{Elapsed: 999 * time.Microsecond}, Easy},
		{Timing{Elapsed: time.Millisecond}, Mid},
		{Timing{Elapsed: 299 * time.Millisecond}, Mid},
		{Timing{Elapsed: 300 * time.Millisecond, Killed: true}, Hard},
	}
	for _, c := range cases {
		if got := b.Classify(c.timing); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.timing, got, c.want)
		}
	}
}

func TestClassifyPreservesPaperRatio(t *testing.T) {
	// 600s cap with default fraction => 2s easy threshold
	b := Budget{Cap: 600 * time.Second}
	if got := b.easyThreshold(); got != 2*time.Second {
		t.Errorf("easy threshold = %v, want 2s", got)
	}
}

func TestClassString(t *testing.T) {
	if Easy.String() != "easy" || Mid.String() != "2''-600''" || Hard.String() != "hard" {
		t.Error("class strings")
	}
	if Class(9).String() != "unknown" {
		t.Error("unknown class string")
	}
}

func TestRunFastFunction(t *testing.T) {
	b := Budget{Cap: time.Second}
	tm := b.Run(context.Background(), func(ctx context.Context) error { return nil })
	if tm.Killed || tm.Err != nil {
		t.Errorf("timing = %+v", tm)
	}
	if tm.Elapsed <= 0 || tm.Elapsed > 100*time.Millisecond {
		t.Errorf("elapsed = %v", tm.Elapsed)
	}
}

func TestRunKillsAtCap(t *testing.T) {
	b := Budget{Cap: 30 * time.Millisecond}
	tm := b.Run(context.Background(), func(ctx context.Context) error {
		<-ctx.Done()
		return ctx.Err()
	})
	if !tm.Killed {
		t.Fatal("expected Killed")
	}
	if tm.Elapsed != b.Cap {
		t.Errorf("killed timing must clamp to cap, got %v", tm.Elapsed)
	}
}

func TestRunPropagatesRealError(t *testing.T) {
	b := Budget{Cap: time.Second}
	boom := errors.New("boom")
	tm := b.Run(context.Background(), func(ctx context.Context) error { return boom })
	if tm.Killed || !errors.Is(tm.Err, boom) {
		t.Errorf("timing = %+v", tm)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Min != 1 || s.Max != 100 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Mean-22) > 1e-9 {
		t.Errorf("mean = %f", s.Mean)
	}
	if s.StdDev <= 0 {
		t.Error("stddev must be positive")
	}
	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Errorf("even median = %f", even.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
	single := Summarize([]float64{7})
	if single.StdDev != 0 || single.Median != 7 {
		t.Errorf("single summary = %+v", single)
	}
}

func TestWLAvsQLADiverge(t *testing.T) {
	// The paper's core argument: one straggler improvement dominates WLA
	// but is averaged away in QLA.
	orig := []float64{1, 1, 1, 600}
	best := []float64{1, 1, 1, 1}
	wla := WLARatio(orig, best)
	qla := QLARatio(orig, best)
	if math.Abs(wla-150.75) > 1e-9 {
		t.Errorf("WLA = %f, want 150.75", wla)
	}
	if math.Abs(qla-150.75) > 1e-9 {
		t.Errorf("QLA = %f, want 150.75", qla)
	}
	// Now the straggler improves only 2× while an easy query improves 10×:
	orig2 := []float64{10, 600}
	best2 := []float64{1, 300}
	if w := WLARatio(orig2, best2); math.Abs(w-610.0/301.0) > 1e-9 {
		t.Errorf("WLA = %f", w)
	}
	if q := QLARatio(orig2, best2); math.Abs(q-6) > 1e-9 {
		t.Errorf("QLA = %f, want 6", q)
	}
}

func TestQLARatioSkipsZeroDenominator(t *testing.T) {
	if q := QLARatio([]float64{4, 8}, []float64{2, 0}); q != 2 {
		t.Errorf("QLA = %f, want 2", q)
	}
	if q := QLARatio(nil, nil); q != 0 {
		t.Errorf("QLA(empty) = %f", q)
	}
}

func TestQLARatioPanicsOnUnpaired(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	QLARatio([]float64{1}, []float64{1, 2})
}

func TestMaxMin(t *testing.T) {
	if m := MaxMin([]float64{2, 8, 4}); m != 4 {
		t.Errorf("MaxMin = %f, want 4", m)
	}
	if m := MaxMin([]float64{5}); m != 1 {
		t.Errorf("MaxMin single = %f, want 1", m)
	}
	if m := MaxMin(nil); m != 0 {
		t.Errorf("MaxMin empty = %f", m)
	}
	if m := MaxMin([]float64{0, 3}); m != 0 {
		t.Errorf("MaxMin with zero min = %f", m)
	}
}

func TestMaxMinAtLeastOneProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		return MaxMin(clean) >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(10, 2); s != 5 {
		t.Errorf("Speedup = %f", s)
	}
	if s := Speedup(10, 0); s != 0 {
		t.Errorf("Speedup zero best = %f", s)
	}
}

func TestClassCounts(t *testing.T) {
	c := ClassCounts{Easy: 90, Mid: 8, Hard: 2}
	if c.Total() != 100 {
		t.Errorf("total = %d", c.Total())
	}
	if c.Pct(Easy) != 90 || c.Pct(Mid) != 8 || c.Pct(Hard) != 2 {
		t.Errorf("pcts = %f %f %f", c.Pct(Easy), c.Pct(Mid), c.Pct(Hard))
	}
	var empty ClassCounts
	if empty.Pct(Easy) != 0 {
		t.Error("empty pct")
	}
}

func TestWorkloadAccumulation(t *testing.T) {
	w := Workload{Budget: Budget{Cap: 300 * time.Millisecond}}
	w.Add(Timing{Elapsed: 100 * time.Microsecond}) // easy
	w.Add(Timing{Elapsed: 300 * time.Microsecond}) // easy
	w.Add(Timing{Elapsed: 10 * time.Millisecond})  // mid
	w.Add(Timing{Elapsed: 300 * time.Millisecond, Killed: true})
	if w.Counts.Easy != 2 || w.Counts.Mid != 1 || w.Counts.Hard != 1 {
		t.Fatalf("counts = %+v", w.Counts)
	}
	if w.AvgEasy() != 200*time.Microsecond {
		t.Errorf("avg easy = %v", w.AvgEasy())
	}
	if w.AvgMid() != 10*time.Millisecond {
		t.Errorf("avg mid = %v", w.AvgMid())
	}
	// completed = (0.1 + 0.3 + 10) / 3 ms
	want := (100*time.Microsecond + 300*time.Microsecond + 10*time.Millisecond) / 3
	if w.AvgCompleted() != want {
		t.Errorf("avg completed = %v, want %v", w.AvgCompleted(), want)
	}
	// the straggler dominates: completed avg is pulled far above easy avg
	if w.AvgCompleted() < 10*w.AvgEasy() {
		t.Error("straggler should dominate the completed average")
	}
}

func TestWorkloadEmptyAverages(t *testing.T) {
	w := Workload{Budget: Budget{Cap: time.Second}}
	if w.AvgEasy() != 0 || w.AvgMid() != 0 || w.AvgCompleted() != 0 {
		t.Error("empty workload averages must be zero")
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil)")
	}
	if WLARatio(nil, nil) != 0 {
		t.Error("WLARatio(empty)")
	}
}

func TestTimingSeconds(t *testing.T) {
	tm := Timing{Elapsed: 1500 * time.Millisecond}
	if tm.Seconds() != 1.5 {
		t.Errorf("Seconds = %f", tm.Seconds())
	}
}

// TestCountersSnapshot verifies concurrent bumps are all accounted and the
// snapshot is a plain copy.
func TestCountersSnapshot(t *testing.T) {
	var c Counters
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				c.Queries.Add(1)
				c.RaceAttempts.Add(2)
				if i%5 == 0 {
					c.Killed.Add(1)
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	s := c.Snapshot()
	if s.Queries != 8*500 {
		t.Errorf("Queries = %d, want %d", s.Queries, 8*500)
	}
	if s.RaceAttempts != 8*1000 {
		t.Errorf("RaceAttempts = %d, want %d", s.RaceAttempts, 8*1000)
	}
	if s.Killed != 8*100 {
		t.Errorf("Killed = %d, want %d", s.Killed, 8*100)
	}
	if s.Streamed != 0 || s.Errors != 0 || s.Fallbacks != 0 {
		t.Error("untouched counters must snapshot to zero")
	}
}

// TestMutationCountersSnapshot pins the mutation counters added for the
// mutable dataset engine: each bumps independently and lands in its own
// snapshot field.
func TestMutationCountersSnapshot(t *testing.T) {
	var c Counters
	c.GraphsAdded.Add(3)
	c.GraphsRemoved.Add(2)
	c.GraphsReplaced.Add(1)
	c.Compactions.Add(4)
	s := c.Snapshot()
	if s.GraphsAdded != 3 || s.GraphsRemoved != 2 || s.GraphsReplaced != 1 || s.Compactions != 4 {
		t.Errorf("mutation counters = %d/%d/%d/%d, want 3/2/1/4",
			s.GraphsAdded, s.GraphsRemoved, s.GraphsReplaced, s.Compactions)
	}
	if s.Queries != 0 {
		t.Error("mutation bumps must not touch query counters")
	}
}
