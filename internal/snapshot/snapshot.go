package snapshot

import (
	"fmt"

	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
)

// Model is the serialized shape of a dataset engine: everything needed to
// reconstruct the graphs, the per-kind/per-shard index grid and (for mutable
// engines) the live store's slot/tombstone/epoch state, with no path
// enumeration on the load side.
type Model struct {
	// Mutable records whether the snapshot came from a live store; a load
	// must run in the same mode, because the graph arrays are slot-space
	// (placeholders included) for mutable snapshots and dense for static.
	Mutable bool
	// Shards is the effective shard count K (>= 1). Indexes[kind] holds
	// exactly K sub-indexes; sub-index s covers every K-th graph from s.
	Shards int
	// Kinds lists the index kinds in portfolio order.
	Kinds []string
	// MaxPathLen is the indexed path length per kind, persisted so restored
	// indexes extract query features identically to the saved ones.
	MaxPathLen map[string]int
	// Epoch and NextHandle are the live store's counters (mutable only;
	// zero otherwise).
	Epoch      uint64
	NextHandle int64
	// Graphs is the dataset: dense for static snapshots, slot-space with
	// placeholders at dead slots for mutable ones.
	Graphs []*graph.Graph
	// Alive, Handles and Tombs are the live store's slot-space liveness
	// bitmap, per-slot public handles and per-shard tombstone counters
	// (mutable only; nil otherwise).
	Alive   []bool
	Handles []int64
	Tombs   []int32
	// Indexes is the per-kind grid of per-shard sub-indexes. On Save each
	// sub-index must implement index.FeatureExporter; on Load each is a
	// freshly restored index over its shard's sub-dataset.
	Indexes map[string][]index.Index
}

// Save serializes the model to path atomically (temp file + rename): a crash
// mid-save leaves any previous snapshot at path intact. The serialized bytes
// are deterministic for a given model — features are written in canonical
// (lexicographic) order with ascending-ID postings.
func Save(path string, m *Model) error {
	if m.Shards < 1 {
		return fmt.Errorf("snapshot: shard count %d < 1", m.Shards)
	}
	if len(m.Kinds) == 0 {
		return fmt.Errorf("snapshot: no index kinds")
	}
	if m.Mutable {
		if len(m.Alive) != len(m.Graphs) || len(m.Handles) != len(m.Graphs) {
			return fmt.Errorf("snapshot: slot arrays disagree: %d graphs, %d alive, %d handles", len(m.Graphs), len(m.Alive), len(m.Handles))
		}
		if len(m.Tombs) != m.Shards {
			return fmt.Errorf("snapshot: %d tombstone counters for %d shards", len(m.Tombs), m.Shards)
		}
	}

	// Export every sub-index first: the per-kind MaxPathLen lands in the
	// meta section, which is written ahead of the feature arrays.
	maxLen := make(map[string]int, len(m.Kinds))
	type block struct {
		prefix string
		feats  []index.ExportedFeature
	}
	var blocks []block
	for _, kind := range m.Kinds {
		subs := m.Indexes[kind]
		if len(subs) != m.Shards {
			return fmt.Errorf("snapshot: kind %q has %d sub-indexes for %d shards", kind, len(subs), m.Shards)
		}
		for s, sub := range subs {
			feats, ml, err := index.Export(sub)
			if err != nil {
				return fmt.Errorf("snapshot: exporting %s shard %d: %w", kind, s, err)
			}
			if prev, ok := maxLen[kind]; ok && prev != ml {
				return fmt.Errorf("snapshot: kind %q shards disagree on MaxPathLen (%d vs %d)", kind, prev, ml)
			}
			maxLen[kind] = ml
			blocks = append(blocks, block{prefix: ixPrefix(kind, s), feats: feats})
		}
	}

	w := &writer{}
	var meta buf
	meta.bool(m.Mutable)
	meta.u32(uint32(m.Shards))
	meta.u64(m.Epoch)
	meta.u64(uint64(m.NextHandle))
	meta.u32(uint32(len(m.Kinds)))
	for _, kind := range m.Kinds {
		meta.str(kind)
		meta.u32(uint32(maxLen[kind]))
	}
	w.add("meta", meta.b)
	addDataset(w, m.Graphs)
	if m.Mutable {
		var alive, handles, tombs buf
		alive.bools(m.Alive)
		handles.i64s(m.Handles)
		tombs.i32s(m.Tombs)
		w.add("live/alive", alive.b)
		w.add("live/handles", handles.b)
		w.add("live/tombs", tombs.b)
	}
	for _, blk := range blocks {
		addFeatures(w, blk.prefix, blk.feats)
	}
	return w.writeFile(path)
}

// Load validates and deserializes a snapshot, restoring every graph (through
// graph.FromCSR's full structural validation) and every per-shard sub-index.
// ixOpts carries the runtime knobs of the restored indexes (Workers, Pool);
// layout-affecting parameters (MaxPathLen, shard count) come from the file.
// Any failure — checksum, shape, structural — returns before any state
// escapes, and already-restored indexes are closed: never a partial engine.
func Load(path string, ixOpts index.Options) (m *Model, err error) {
	r, err := open(path)
	if err != nil {
		return nil, err
	}
	metaB, err := r.section("meta")
	if err != nil {
		return nil, err
	}
	d := &dec{b: metaB}
	m = &Model{
		Mutable:    d.bool(),
		Shards:     int(d.u32()),
		Epoch:      d.u64(),
		MaxPathLen: map[string]int{},
		Indexes:    map[string][]index.Index{},
	}
	m.NextHandle = int64(d.u64())
	nKinds := int(d.u32())
	if d.err == nil && nKinds > maxSections {
		return nil, fmt.Errorf("snapshot: absurd kind count %d", nKinds)
	}
	for i := 0; i < nKinds && d.err == nil; i++ {
		kind := d.str()
		m.Kinds = append(m.Kinds, kind)
		m.MaxPathLen[kind] = int(d.u32())
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("snapshot: meta: %w", err)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("snapshot: shard count %d < 1", m.Shards)
	}
	if len(m.Kinds) == 0 {
		return nil, fmt.Errorf("snapshot: no index kinds")
	}
	if m.Graphs, err = decodeDataset(r); err != nil {
		return nil, err
	}
	if m.Mutable {
		aliveB, err := r.section("live/alive")
		if err != nil {
			return nil, err
		}
		if m.Alive, err = decBools(aliveB, "live/alive"); err != nil {
			return nil, err
		}
		handlesB, err := r.section("live/handles")
		if err != nil {
			return nil, err
		}
		if m.Handles, err = decInt64s(handlesB, "live/handles"); err != nil {
			return nil, err
		}
		tombsB, err := r.section("live/tombs")
		if err != nil {
			return nil, err
		}
		if m.Tombs, err = decInt32s(tombsB, "live/tombs"); err != nil {
			return nil, err
		}
		if len(m.Alive) != len(m.Graphs) || len(m.Handles) != len(m.Graphs) {
			return nil, fmt.Errorf("snapshot: slot arrays disagree: %d graphs, %d alive, %d handles", len(m.Graphs), len(m.Alive), len(m.Handles))
		}
		if len(m.Tombs) != m.Shards {
			return nil, fmt.Errorf("snapshot: %d tombstone counters for %d shards", len(m.Tombs), m.Shards)
		}
	}
	var restored []index.Index
	defer func() {
		if err != nil {
			for _, sub := range restored {
				sub.Close()
			}
		}
	}()
	for _, kind := range m.Kinds {
		subs := make([]index.Index, m.Shards)
		for s := 0; s < m.Shards; s++ {
			feats, err := decodeFeatures(r, ixPrefix(kind, s))
			if err != nil {
				return nil, err
			}
			subDS := index.ShardDataset(m.Graphs, s, m.Shards)
			var localAlive []bool
			if m.Mutable {
				localAlive = make([]bool, 0, len(subDS))
				for slot := s; slot < len(m.Alive); slot += m.Shards {
					localAlive = append(localAlive, m.Alive[slot])
				}
			}
			if err := checkLocations(feats, subDS, localAlive, kind, s); err != nil {
				return nil, err
			}
			sub, err := index.Restore(kind, subDS, m.MaxPathLen[kind], ixOpts, feats)
			if err != nil {
				return nil, fmt.Errorf("snapshot: restoring %s shard %d: %w", kind, s, err)
			}
			subs[s] = sub
			restored = append(restored, sub)
		}
		m.Indexes[kind] = subs
	}
	return m, nil
}

// ixPrefix names the section group of one (kind, shard) sub-index.
func ixPrefix(kind string, shard int) string {
	return fmt.Sprintf("ix/%s/%d/", kind, shard)
}

// addDataset writes the dataset as six flat sections: per-graph names and
// vertex counts, then the concatenation of every graph's CSR arrays. Each is
// one contiguous length-prefixed array — the mmap-forward contract.
func addDataset(w *writer, ds []*graph.Graph) {
	var names, nverts, labels, offsets, nbrs, elabs buf
	names.u64(uint64(len(ds)))
	var nv []int32
	var flatLabels, flatOffsets, flatNbrs, flatElabs []int32
	for _, g := range ds {
		names.str(g.Name())
		gl, goffs, gn, ge := g.CSR()
		nv = append(nv, int32(len(gl)))
		for _, l := range gl {
			flatLabels = append(flatLabels, int32(l))
		}
		flatOffsets = append(flatOffsets, goffs...)
		flatNbrs = append(flatNbrs, gn...)
		for _, l := range ge {
			flatElabs = append(flatElabs, int32(l))
		}
	}
	nverts.i32s(nv)
	labels.i32s(flatLabels)
	offsets.i32s(flatOffsets)
	nbrs.i32s(flatNbrs)
	elabs.i32s(flatElabs)
	w.add("ds/names", names.b)
	w.add("ds/nverts", nverts.b)
	w.add("ds/labels", labels.b)
	w.add("ds/offsets", offsets.b)
	w.add("ds/nbrs", nbrs.b)
	w.add("ds/elabs", elabs.b)
}

// decodeDataset is the inverse of addDataset; every graph goes through
// graph.FromCSR, which re-validates the full structural invariant.
func decodeDataset(r *reader) ([]*graph.Graph, error) {
	namesB, err := r.section("ds/names")
	if err != nil {
		return nil, err
	}
	d := &dec{b: namesB}
	n := d.u64()
	if d.err == nil && n > uint64(len(namesB)) {
		return nil, fmt.Errorf("snapshot: ds/names: absurd graph count %d", n)
	}
	names := make([]string, 0, n)
	for i := uint64(0); i < n && d.err == nil; i++ {
		names = append(names, d.str())
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("snapshot: ds/names: %w", err)
	}
	arr := func(name string) ([]int32, error) {
		b, err := r.section(name)
		if err != nil {
			return nil, err
		}
		return decInt32s(b, name)
	}
	nverts, err := arr("ds/nverts")
	if err != nil {
		return nil, err
	}
	if len(nverts) != len(names) {
		return nil, fmt.Errorf("snapshot: %d vertex counts for %d graphs", len(nverts), len(names))
	}
	flatLabels, err := arr("ds/labels")
	if err != nil {
		return nil, err
	}
	flatOffsets, err := arr("ds/offsets")
	if err != nil {
		return nil, err
	}
	flatNbrs, err := arr("ds/nbrs")
	if err != nil {
		return nil, err
	}
	flatElabs, err := arr("ds/elabs")
	if err != nil {
		return nil, err
	}
	ds := make([]*graph.Graph, 0, len(names))
	var lOff, oOff, eOff int
	for i, name := range names {
		nv := int(nverts[i])
		if nv < 0 || lOff+nv > len(flatLabels) || oOff+nv+1 > len(flatOffsets) {
			return nil, fmt.Errorf("snapshot: graph %d (%q): vertex count %d exceeds flat arrays", i, name, nv)
		}
		offs := flatOffsets[oOff : oOff+nv+1]
		half := int(offs[nv])
		if half < 0 || eOff+half > len(flatNbrs) || eOff+half > len(flatElabs) {
			return nil, fmt.Errorf("snapshot: graph %d (%q): half-edge count %d exceeds flat arrays", i, name, half)
		}
		labels := make([]graph.Label, nv)
		for j, l := range flatLabels[lOff : lOff+nv] {
			labels[j] = graph.Label(l)
		}
		elabs := make([]graph.Label, half)
		for j, l := range flatElabs[eOff : eOff+half] {
			elabs[j] = graph.Label(l)
		}
		g, err := graph.FromCSR(name, labels, offs, flatNbrs[eOff:eOff+half], elabs)
		if err != nil {
			return nil, fmt.Errorf("snapshot: graph %d: %w", i, err)
		}
		ds = append(ds, g)
		lOff += nv
		oOff += nv + 1
		eOff += half
	}
	if lOff != len(flatLabels) || oOff != len(flatOffsets) || eOff != len(flatNbrs) || eOff != len(flatElabs) {
		return nil, fmt.Errorf("snapshot: trailing dataset array bytes (labels %d/%d, offsets %d/%d, edges %d/%d)", lOff, len(flatLabels), oOff, len(flatOffsets), eOff, len(flatNbrs))
	}
	return ds, nil
}

// addFeatures writes one sub-index's exported features as seven flat
// sections under prefix: per-feature label counts, the flat label sequence
// concatenation, per-feature posting counts, then the flat graph-ID / count
// / location-count / location arrays.
func addFeatures(w *writer, prefix string, feats []index.ExportedFeature) {
	var featlens, featlabels, postlens, postgids, postcnts, loclens, locs []int32
	for _, f := range feats {
		featlens = append(featlens, int32(len(f.Labels)))
		for _, l := range f.Labels {
			featlabels = append(featlabels, int32(l))
		}
		postlens = append(postlens, int32(len(f.Postings)))
		for _, p := range f.Postings {
			postgids = append(postgids, int32(p.GraphID))
			postcnts = append(postcnts, p.Count)
			loclens = append(loclens, int32(len(p.Locations)))
			locs = append(locs, p.Locations...)
		}
	}
	for _, s := range []struct {
		name string
		vals []int32
	}{
		{"featlens", featlens}, {"featlabels", featlabels},
		{"postlens", postlens}, {"postgids", postgids},
		{"postcnts", postcnts}, {"loclens", loclens}, {"locs", locs},
	} {
		var b buf
		b.i32s(s.vals)
		w.add(prefix+s.name, b.b)
	}
}

// decodeFeatures is the inverse of addFeatures, with full cross-array shape
// validation before any feature escapes.
func decodeFeatures(r *reader, prefix string) ([]index.ExportedFeature, error) {
	arr := func(name string) ([]int32, error) {
		b, err := r.section(prefix + name)
		if err != nil {
			return nil, err
		}
		return decInt32s(b, prefix+name)
	}
	featlens, err := arr("featlens")
	if err != nil {
		return nil, err
	}
	featlabels, err := arr("featlabels")
	if err != nil {
		return nil, err
	}
	postlens, err := arr("postlens")
	if err != nil {
		return nil, err
	}
	postgids, err := arr("postgids")
	if err != nil {
		return nil, err
	}
	postcnts, err := arr("postcnts")
	if err != nil {
		return nil, err
	}
	loclens, err := arr("loclens")
	if err != nil {
		return nil, err
	}
	locs, err := arr("locs")
	if err != nil {
		return nil, err
	}
	if len(postlens) != len(featlens) {
		return nil, fmt.Errorf("snapshot: %s: %d posting counts for %d features", prefix, len(postlens), len(featlens))
	}
	if len(postcnts) != len(postgids) || len(loclens) != len(postgids) {
		return nil, fmt.Errorf("snapshot: %s: posting arrays disagree (%d gids, %d counts, %d loclens)", prefix, len(postgids), len(postcnts), len(loclens))
	}
	feats := make([]index.ExportedFeature, 0, len(featlens))
	var labOff, postOff, locOff int
	for i, fl := range featlens {
		if fl < 0 || labOff+int(fl) > len(featlabels) {
			return nil, fmt.Errorf("snapshot: %s: feature %d label length %d exceeds flat array", prefix, i, fl)
		}
		labels := make([]graph.Label, fl)
		for j, l := range featlabels[labOff : labOff+int(fl)] {
			labels[j] = graph.Label(l)
		}
		labOff += int(fl)
		pl := int(postlens[i])
		if pl < 0 || postOff+pl > len(postgids) {
			return nil, fmt.Errorf("snapshot: %s: feature %d posting length %d exceeds flat array", prefix, i, pl)
		}
		postings := make([]index.FeaturePosting, pl)
		for j := 0; j < pl; j++ {
			ll := int(loclens[postOff+j])
			if ll < 0 || locOff+ll > len(locs) {
				return nil, fmt.Errorf("snapshot: %s: posting %d location length %d exceeds flat array", prefix, postOff+j, ll)
			}
			var pLocs []int32
			if ll > 0 {
				pLocs = locs[locOff : locOff+ll : locOff+ll]
			}
			locOff += ll
			postings[j] = index.FeaturePosting{
				GraphID:   int(postgids[postOff+j]),
				Count:     postcnts[postOff+j],
				Locations: pLocs,
			}
		}
		postOff += pl
		feats = append(feats, index.ExportedFeature{Labels: labels, Postings: postings})
	}
	if labOff != len(featlabels) || postOff != len(postgids) || locOff != len(locs) {
		return nil, fmt.Errorf("snapshot: %s: trailing feature array entries", prefix)
	}
	return feats, nil
}

// checkLocations bounds-checks every posting's graph ID and location set
// against the shard's dataset before the kind-specific restorer runs.
// localAlive, when non-nil, is the shard's slice of the liveness bitmap:
// a tombstoned slot's sub-index legitimately still carries the dead graph's
// features until compaction, but the slot-space graph array already holds a
// zero-vertex placeholder there, so those locations are checked only for
// non-negativity — queries can never reach them (the masked view skips dead
// slots) and the next compaction sheds them.
func checkLocations(feats []index.ExportedFeature, subDS []*graph.Graph, localAlive []bool, kind string, shard int) error {
	for _, f := range feats {
		for _, p := range f.Postings {
			if p.GraphID < 0 || p.GraphID >= len(subDS) {
				return fmt.Errorf("snapshot: %s shard %d: posting graph ID %d out of range [0,%d)", kind, shard, p.GraphID, len(subDS))
			}
			n := subDS[p.GraphID].N()
			dead := localAlive != nil && !localAlive[p.GraphID]
			for _, v := range p.Locations {
				if v < 0 || (!dead && int(v) >= n) {
					return fmt.Errorf("snapshot: %s shard %d: location %d out of range for graph %d (n=%d)", kind, shard, v, p.GraphID, n)
				}
			}
		}
	}
	return nil
}
