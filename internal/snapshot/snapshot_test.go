package snapshot

// White-box tests of the container format and the model codec: round trips
// must be byte-identical in answers, and every corruption — any single
// flipped byte, any missing or shape-inconsistent section — must fail
// closed before an index or graph escapes.

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	_ "github.com/psi-graph/psi/internal/ggsx"
	_ "github.com/psi-graph/psi/internal/grapes"
	"github.com/psi-graph/psi/internal/graph"
	"github.com/psi-graph/psi/internal/index"
)

func testDataset(t *testing.T, n int) []*graph.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(11))
	ds := make([]*graph.Graph, n)
	for i := range ds {
		b := graph.NewBuilder("g")
		nv := 5 + r.Intn(5)
		for v := 0; v < nv; v++ {
			b.AddVertex(graph.Label(r.Intn(3)))
		}
		for v := 1; v < nv; v++ {
			if err := b.AddLabeledEdge(r.Intn(v), v, graph.Label(r.Intn(2))); err != nil {
				t.Fatal(err)
			}
		}
		ds[i] = b.MustBuild()
	}
	return ds
}

func buildModel(t *testing.T, ds []*graph.Graph, kinds []string, k int) *Model {
	t.Helper()
	m := &Model{Shards: k, Kinds: kinds, MaxPathLen: map[string]int{}, Indexes: map[string][]index.Index{}}
	for _, kind := range kinds {
		subs := make([]index.Index, k)
		for s := 0; s < k; s++ {
			sub, err := index.Build(context.Background(), kind, index.ShardDataset(ds, s, k), index.Options{MaxPathLen: 3})
			if err != nil {
				t.Fatal(err)
			}
			subs[s] = sub
		}
		m.Indexes[kind] = subs
		m.MaxPathLen[kind] = 3
	}
	m.Graphs = ds
	return m
}

func answers(t *testing.T, ds []*graph.Graph, kind string, subs []index.Index, queries []*graph.Graph) [][]int {
	t.Helper()
	x := index.NewShardedFrom(ds, kind, subs)
	out := make([][]int, len(queries))
	for i, q := range queries {
		ids, err := index.Answer(context.Background(), x, q, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ids
	}
	return out
}

func TestSaveLoadRoundTrip(t *testing.T) {
	ds := testDataset(t, 9)
	kinds := index.Kinds()
	queries := ds[:4]
	for _, k := range []int{1, 3} {
		m := buildModel(t, ds, kinds, k)
		path := filepath.Join(t.TempDir(), "snap.psi")
		if err := Save(path, m); err != nil {
			t.Fatalf("Save k=%d: %v", k, err)
		}
		got, err := Load(path, index.Options{})
		if err != nil {
			t.Fatalf("Load k=%d: %v", k, err)
		}
		if got.Mutable || got.Shards != k || !reflect.DeepEqual(got.Kinds, kinds) {
			t.Fatalf("meta mismatch: %+v", got)
		}
		if len(got.Graphs) != len(ds) {
			t.Fatalf("got %d graphs, want %d", len(got.Graphs), len(ds))
		}
		for i := range ds {
			if !ds[i].Equal(got.Graphs[i]) || ds[i].Name() != got.Graphs[i].Name() {
				t.Fatalf("graph %d not reconstructed identically", i)
			}
		}
		for _, kind := range kinds {
			want := answers(t, ds, kind, m.Indexes[kind], queries)
			have := answers(t, got.Graphs, kind, got.Indexes[kind], queries)
			if !reflect.DeepEqual(want, have) {
				t.Fatalf("k=%d kind=%s: restored answers %v != built %v", k, kind, have, want)
			}
		}
	}
}

func TestSaveLoadDeterministicBytes(t *testing.T) {
	ds := testDataset(t, 6)
	m := buildModel(t, ds, []string{index.KindPath}, 2)
	dir := t.TempDir()
	p1, p2 := filepath.Join(dir, "a"), filepath.Join(dir, "b")
	if err := Save(p1, m); err != nil {
		t.Fatal(err)
	}
	if err := Save(p2, m); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if !reflect.DeepEqual(b1, b2) {
		t.Fatal("two saves of the same model produced different bytes")
	}
}

func TestMutableModelRoundTrip(t *testing.T) {
	ds := testDataset(t, 5)
	// Slot space: slot 2 is a dead placeholder, shard count 2 (so shard 0
	// holds slots 0,2,4 — including the placeholder — and shard 1 slots 1,3).
	placeholder := graph.NewBuilder("live:dead-slot").MustBuild()
	slots := []*graph.Graph{ds[0], ds[1], placeholder, ds[3], ds[4]}
	m := buildModel(t, slots, []string{index.KindPath, "ggsx"}, 2)
	m.Mutable = true
	m.Epoch = 7
	m.NextHandle = 9
	m.Alive = []bool{true, true, false, true, true}
	m.Handles = []int64{1, 2, 3, 4, 5}
	m.Tombs = []int32{1, 0}
	path := filepath.Join(t.TempDir(), "snap.psi")
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, index.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Mutable || got.Epoch != 7 || got.NextHandle != 9 {
		t.Fatalf("live counters mangled: %+v", got)
	}
	if !reflect.DeepEqual(got.Alive, m.Alive) || !reflect.DeepEqual(got.Handles, m.Handles) || !reflect.DeepEqual(got.Tombs, m.Tombs) {
		t.Fatalf("live arrays mangled: %+v", got)
	}
	if got.Graphs[2].N() != 0 || got.Graphs[2].Name() != "live:dead-slot" {
		t.Fatal("placeholder slot not reconstructed")
	}
	want := answers(t, slots, index.KindPath, m.Indexes[index.KindPath], slots[:2])
	have := answers(t, got.Graphs, index.KindPath, got.Indexes[index.KindPath], slots[:2])
	if !reflect.DeepEqual(want, have) {
		t.Fatalf("mutable restored answers diverged: %v != %v", have, want)
	}
}

// TestEveryByteCorruptionFailsClosed flips every single byte of a small
// snapshot in turn; each variant must fail to load — the corruption either
// hits the magic, the version, the section table, or exactly one
// checksummed payload.
func TestEveryByteCorruptionFailsClosed(t *testing.T) {
	ds := testDataset(t, 3)
	m := buildModel(t, ds, []string{index.KindPath}, 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.psi")
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.psi")
	checksumErrs := 0
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xFF
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bad, index.Options{}); err == nil {
			t.Fatalf("flipping byte %d of %d still loaded", i, len(data))
		} else if strings.Contains(err.Error(), "checksum") {
			checksumErrs++
		}
	}
	if checksumErrs == 0 {
		t.Fatal("no corruption surfaced as a checksum error")
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "absent"), index.Options{}); err == nil {
		t.Fatal("loading a missing file succeeded")
	}
	short := filepath.Join(dir, "short")
	os.WriteFile(short, []byte("PSIS"), 0o644)
	if _, err := Load(short, index.Options{}); err == nil || !strings.Contains(err.Error(), "too short") {
		t.Fatalf("short file: %v", err)
	}
	notSnap := filepath.Join(dir, "notsnap")
	os.WriteFile(notSnap, []byte("definitely not a snapshot file"), 0o644)
	if _, err := Load(notSnap, index.Options{}); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: %v", err)
	}
	// Wrong version: take a valid header and bump the version field.
	w := &writer{}
	w.add("meta", []byte{1, 2, 3})
	vpath := filepath.Join(dir, "version")
	if err := w.writeFile(vpath); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(vpath)
	data[8] = 99 // version byte — invalidates the table CRC too, but version is checked first
	os.WriteFile(vpath, data, 0o644)
	if _, err := Load(vpath, index.Options{}); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("bad version: %v", err)
	}
}

// corruptContainer writes a structurally valid container with the given
// sections and expects Load to fail mentioning want.
func expectLoadError(t *testing.T, name string, sections map[string][]byte, want string) {
	t.Helper()
	w := &writer{}
	order := []string{"meta", "ds/names", "ds/nverts", "ds/labels", "ds/offsets", "ds/nbrs", "ds/elabs",
		"live/alive", "live/handles", "live/tombs"}
	seen := map[string]bool{}
	for _, n := range order {
		if b, ok := sections[n]; ok {
			w.add(n, b)
			seen[n] = true
		}
	}
	for n, b := range sections {
		if !seen[n] {
			w.add(n, b)
		}
	}
	path := filepath.Join(t.TempDir(), "c.psi")
	if err := w.writeFile(path); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path, index.Options{})
	if err == nil {
		t.Fatalf("%s: corrupt container loaded", name)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("%s: error %q does not mention %q", name, err, want)
	}
}

func encMeta(mutable bool, shards int, kinds []string, maxLen int) []byte {
	var b buf
	b.bool(mutable)
	b.u32(uint32(shards))
	b.u64(1) // epoch
	b.u64(1) // next handle
	b.u32(uint32(len(kinds)))
	for _, k := range kinds {
		b.str(k)
		b.u32(uint32(maxLen))
	}
	return b.b
}

func encI32s(v []int32) []byte {
	var b buf
	b.i32s(v)
	return b.b
}

func emptyDataset() map[string][]byte {
	var names buf
	names.u64(0)
	return map[string][]byte{
		"ds/names": names.b, "ds/nverts": encI32s(nil), "ds/labels": encI32s(nil),
		"ds/offsets": encI32s(nil), "ds/nbrs": encI32s(nil), "ds/elabs": encI32s(nil),
	}
}

func emptyFeatures(prefix string) map[string][]byte {
	out := map[string][]byte{}
	for _, n := range []string{"featlens", "featlabels", "postlens", "postgids", "postcnts", "loclens", "locs"} {
		out[prefix+n] = encI32s(nil)
	}
	return out
}

func TestLoadShapeValidation(t *testing.T) {
	base := func() map[string][]byte {
		s := emptyDataset()
		s["meta"] = encMeta(false, 1, []string{index.KindPath}, 3)
		for k, v := range emptyFeatures("ix/ftv/0/") {
			s[k] = v
		}
		return s
	}

	s := base()
	delete(s, "ds/nbrs")
	expectLoadError(t, "missing section", s, "missing section")

	s = base()
	s["meta"] = encMeta(false, 0, []string{index.KindPath}, 3)
	expectLoadError(t, "zero shards", s, "shard count")

	s = base()
	s["meta"] = encMeta(false, 1, nil, 3)
	expectLoadError(t, "no kinds", s, "no index kinds")

	s = base()
	s["meta"] = []byte{0, 1}
	expectLoadError(t, "truncated meta", s, "meta")

	s = base()
	s["meta"] = encMeta(false, 1, []string{"no-such-kind"}, 3)
	for k, v := range emptyFeatures("ix/no-such-kind/0/") {
		s[k] = v
	}
	expectLoadError(t, "unknown kind", s, "no restorer")

	s = base()
	s["ds/nverts"] = encI32s([]int32{4}) // one count, zero names
	expectLoadError(t, "count mismatch", s, "vertex counts")

	s = base()
	s["ix/ftv/0/postlens"] = encI32s([]int32{1}) // 1 posting count, 0 featlens
	expectLoadError(t, "posting/feature mismatch", s, "posting counts")

	s = base()
	s["ix/ftv/0/featlens"] = encI32s([]int32{2})
	s["ix/ftv/0/postlens"] = encI32s([]int32{0})
	expectLoadError(t, "label overflow", s, "label length")

	s = base()
	s["ix/ftv/0/featlens"] = encI32s([]int32{0})
	s["ix/ftv/0/postlens"] = encI32s([]int32{3})
	expectLoadError(t, "posting overflow", s, "posting length")

	// Mutable meta with disagreeing slot arrays.
	s = base()
	s["meta"] = encMeta(true, 1, []string{index.KindPath}, 3)
	var alive, handles buf
	alive.bools([]bool{true})
	handles.i64s(nil)
	var tombs buf
	tombs.i32s([]int32{0})
	s["live/alive"], s["live/handles"], s["live/tombs"] = alive.b, handles.b, tombs.b
	expectLoadError(t, "slot arrays", s, "slot arrays disagree")

	// Posting graph ID beyond the (empty) shard dataset.
	s = base()
	s["ix/ftv/0/featlens"] = encI32s([]int32{1})
	s["ix/ftv/0/featlabels"] = encI32s([]int32{1})
	s["ix/ftv/0/postlens"] = encI32s([]int32{1})
	s["ix/ftv/0/postgids"] = encI32s([]int32{5})
	s["ix/ftv/0/postcnts"] = encI32s([]int32{1})
	s["ix/ftv/0/loclens"] = encI32s([]int32{0})
	expectLoadError(t, "gid range", s, "out of range")

	// Location beyond the graph's vertex count.
	s = base()
	var names buf
	names.u64(1)
	names.str("g")
	s["ds/names"] = names.b
	s["ds/nverts"] = encI32s([]int32{2})
	s["ds/labels"] = encI32s([]int32{0, 0})
	s["ds/offsets"] = encI32s([]int32{0, 1, 2})
	s["ds/nbrs"] = encI32s([]int32{1, 0})
	s["ds/elabs"] = encI32s([]int32{0, 0})
	s["ix/ftv/0/featlens"] = encI32s([]int32{1})
	s["ix/ftv/0/featlabels"] = encI32s([]int32{0})
	s["ix/ftv/0/postlens"] = encI32s([]int32{1})
	s["ix/ftv/0/postgids"] = encI32s([]int32{0})
	s["ix/ftv/0/postcnts"] = encI32s([]int32{1})
	s["ix/ftv/0/loclens"] = encI32s([]int32{1})
	s["ix/ftv/0/locs"] = encI32s([]int32{7})
	expectLoadError(t, "location range", s, "location")

	// A structurally broken graph must be caught by FromCSR.
	s = base()
	names = buf{}
	names.u64(1)
	names.str("g")
	s["ds/names"] = names.b
	s["ds/nverts"] = encI32s([]int32{2})
	s["ds/labels"] = encI32s([]int32{0, 0})
	s["ds/offsets"] = encI32s([]int32{0, 2, 2}) // vertex 0 lists two nbrs, vertex 1 none
	s["ds/nbrs"] = encI32s([]int32{1, 1})
	s["ds/elabs"] = encI32s([]int32{0, 0})
	expectLoadError(t, "asymmetric graph", s, "graph")
}

func TestSaveValidation(t *testing.T) {
	ds := testDataset(t, 3)
	if err := Save("x", &Model{Shards: 0, Kinds: []string{"ftv"}}); err == nil {
		t.Fatal("zero shards accepted")
	}
	if err := Save("x", &Model{Shards: 1}); err == nil {
		t.Fatal("no kinds accepted")
	}
	m := buildModel(t, ds, []string{index.KindPath}, 1)
	m.Shards = 2 // grid has 1 sub-index
	if err := Save("x", m); err == nil || !strings.Contains(err.Error(), "sub-indexes") {
		t.Fatalf("grid/shard mismatch: %v", err)
	}
	m = buildModel(t, ds, []string{index.KindPath}, 1)
	m.Mutable = true
	m.Alive = []bool{true} // wrong length
	if err := Save("x", m); err == nil || !strings.Contains(err.Error(), "slot arrays") {
		t.Fatalf("slot array mismatch: %v", err)
	}
	// A kind whose index cannot export (Sharded wrapper) must fail Save.
	sharded, err := index.BuildSharded(context.Background(), index.KindPath, ds, index.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	m = &Model{Shards: 1, Kinds: []string{"wrapped"}, Graphs: ds,
		Indexes: map[string][]index.Index{"wrapped": {sharded}}}
	if err := Save("x", m); err == nil || !strings.Contains(err.Error(), "export") {
		t.Fatalf("unexportable kind: %v", err)
	}
}

func TestSaveAtomicReplace(t *testing.T) {
	ds := testDataset(t, 3)
	m := buildModel(t, ds, []string{index.KindPath}, 1)
	path := filepath.Join(t.TempDir(), "snap.psi")
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	// Saving over an existing snapshot must replace it whole.
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, index.Options{}); err != nil {
		t.Fatalf("re-saved snapshot unreadable: %v", err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover files after save: %v", entries)
	}
}
