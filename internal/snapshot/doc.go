// Package snapshot is the persistence layer of the engine: a versioned,
// checksummed binary format that serializes the dataset's CSR arrays
// (internal/graph), every registered index kind's flat feature/posting
// arrays (internal/index — the path/FTV map, the Grapes trie with
// locations, the GGSX suffix trie), and the live store's slot, tombstone
// and epoch state (internal/live). A loaded snapshot reconstructs an engine
// that answers every query byte-identically to the freshly built one, with
// none of the path enumeration that dominates build time — which is what
// makes `psiserve -snapshot` cold starts near-instant.
//
// # Container layout
//
// A snapshot file is a magic string ("PSISNAP1"), a format version, and a
// table of named sections, each a (name, offset, length, CRC-32C) entry;
// the table itself carries its own CRC. See format.go for the exact byte
// layout. The reader validates the magic, the version, the table checksum
// and every section checksum before constructing anything, so a corrupt
// file fails closed with a checksum error — never a partial engine. The
// model layer then re-validates shape (array lengths must agree across
// sections) and structure (every graph passes graph.FromCSR's full
// invariant check, every posting's graph ID and location set is
// bounds-checked) before any index is restored.
//
// # The mmap-forward contract
//
// Every array in the file is a single contiguous length-prefixed section:
// one flat run of fixed-width little-endian elements, preceded by a uint64
// element count, located by one section-table entry. Nothing is interleaved,
// chunked, or compressed. This is deliberate: a follow-up can replace the
// read-everything loader with mmap plus per-section slices — the offsets in
// the section table already point at page-in-order runs (dataset CSR arrays
// first, then each index's features in shard order), matching the
// sequential access pattern the I/O-complexity analysis of enumeration on
// massive graphs calls for. Under that mode only the section table and meta
// need eager reading; array sections page in lazily as shards are touched,
// which is the precondition for datasets larger than RAM. This package
// designs for that layout but does not implement paging.
//
// # What is persisted per layer
//
//   - Dataset: per-graph names and vertex counts, plus the concatenation of
//     every graph's CSR arrays (labels, offsets, neighbors, edge labels).
//     The derived label index is rebuilt deterministically on load.
//   - Indexes: per (kind, shard), the features in canonical lexicographic
//     order — per-feature label-sequence lengths, flat labels, per-feature
//     posting counts, flat graph IDs / occurrence counts / location
//     lengths / locations. Kind-specific structure (hash map, trie, suffix
//     trie) is rebuilt by the kind's registered index.RestoreFunc; VF2
//     verifier state is recomputed (it is derived, cheap, and
//     deterministic).
//   - Live store (mutable engines only): the slot-space liveness bitmap,
//     per-slot public handles, per-shard tombstone counters, and the epoch
//     and next-handle counters, so mutation history, handle identity and
//     cache-keying epochs all survive a restart.
//
// Static and mutable snapshots share the dataset and index codecs; a
// mutable snapshot's graph array is slot space (zero-vertex placeholders at
// dead slots) where a static one's is dense, so a snapshot loads only in
// the mode that wrote it.
package snapshot
