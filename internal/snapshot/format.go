package snapshot

// The container format: a magic string, a format version, and a checksummed
// table of named sections, each an independently CRC-verified byte range.
//
//	offset 0  magic "PSISNAP1" (8 bytes)
//	offset 8  format version (uint32 LE)
//	offset 12 section count  (uint32 LE)
//	          per section: name length (uint32), name bytes,
//	                       payload offset (uint64), payload length (uint64),
//	                       payload CRC-32C (uint32)
//	          table CRC-32C (uint32) over bytes [8, table end)
//	          section payloads, in table order, back to back
//
// Every multi-byte integer is little-endian. CRCs use the Castagnoli
// polynomial (the hardware-accelerated one). The reader validates the magic,
// the version, the table CRC and every section CRC before handing out a
// single byte, so a corrupt file can never produce a partial engine; any
// flipped byte lands in the magic, the version, the table or exactly one
// payload, each of which is covered by a check.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

const (
	magic = "PSISNAP1"
	// FormatVersion is the on-disk format revision; readers reject files
	// written by a different revision rather than guessing at layouts.
	FormatVersion = 1

	// maxSections bounds the table a reader will parse — far above any real
	// snapshot, low enough that a corrupt count cannot drive allocation.
	maxSections = 1 << 20
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// writer accumulates named sections and assembles the container. Sections
// are laid out in add order.
type writer struct {
	names    []string
	payloads [][]byte
}

func (w *writer) add(name string, payload []byte) {
	w.names = append(w.names, name)
	w.payloads = append(w.payloads, payload)
}

// writeFile assembles the container and writes it atomically: the bytes go
// to a temp file in the destination directory, are synced, and are renamed
// over path — a crash mid-save leaves the previous snapshot intact.
func (w *writer) writeFile(path string) error {
	tableSize := 8 // version + count
	for _, name := range w.names {
		tableSize += 4 + len(name) + 8 + 8 + 4
	}
	tableSize += 4 // table CRC
	off := uint64(len(magic) + tableSize)

	var b buf
	b.raw([]byte(magic))
	b.u32(FormatVersion)
	b.u32(uint32(len(w.names)))
	for i, name := range w.names {
		b.u32(uint32(len(name)))
		b.raw([]byte(name))
		b.u64(off)
		b.u64(uint64(len(w.payloads[i])))
		b.u32(crc32.Checksum(w.payloads[i], castagnoli))
		off += uint64(len(w.payloads[i]))
	}
	b.u32(crc32.Checksum(b.b[8:], castagnoli))
	for _, p := range w.payloads {
		b.raw(p)
	}

	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(b.b); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: writing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: syncing %s: %w", tmp.Name(), err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: closing %s: %w", tmp.Name(), err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// reader is a fully validated open container: every checksum has already
// been verified when open returns.
type reader struct {
	sections map[string][]byte
}

// open reads and validates a container file. Every failure mode — short
// file, wrong magic, wrong version, table damage, payload damage — returns
// an error mentioning what failed; checksum failures say "checksum".
func open(path string) (*reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if len(data) < len(magic)+12 {
		return nil, fmt.Errorf("snapshot: %s: file too short (%d bytes)", path, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("snapshot: %s: bad magic (not a snapshot file?)", path)
	}
	d := &dec{b: data, off: len(magic)}
	if v := d.u32(); v != FormatVersion {
		return nil, fmt.Errorf("snapshot: %s: format version %d, this build reads %d", path, v, FormatVersion)
	}
	count := d.u32()
	if count > maxSections {
		return nil, fmt.Errorf("snapshot: %s: absurd section count %d (corrupt table?)", path, count)
	}
	type entry struct {
		name     string
		off, n   uint64
		checksum uint32
	}
	entries := make([]entry, 0, count)
	for i := uint32(0); i < count && d.err == nil; i++ {
		e := entry{name: d.str()}
		e.off, e.n, e.checksum = d.u64(), d.u64(), d.u32()
		entries = append(entries, e)
	}
	tableEnd := d.off
	wantTableCRC := d.u32()
	if d.err != nil {
		return nil, fmt.Errorf("snapshot: %s: truncated section table", path)
	}
	if got := crc32.Checksum(data[8:tableEnd], castagnoli); got != wantTableCRC {
		return nil, fmt.Errorf("snapshot: %s: section table checksum mismatch (got %08x, want %08x)", path, got, wantTableCRC)
	}
	r := &reader{sections: make(map[string][]byte, len(entries))}
	for _, e := range entries {
		if e.off > uint64(len(data)) || e.n > uint64(len(data))-e.off {
			return nil, fmt.Errorf("snapshot: %s: section %q [%d,+%d) outside file of %d bytes", path, e.name, e.off, e.n, len(data))
		}
		payload := data[e.off : e.off+e.n]
		if got := crc32.Checksum(payload, castagnoli); got != e.checksum {
			return nil, fmt.Errorf("snapshot: %s: section %q checksum mismatch (got %08x, want %08x)", path, e.name, got, e.checksum)
		}
		if _, dup := r.sections[e.name]; dup {
			return nil, fmt.Errorf("snapshot: %s: duplicate section %q", path, e.name)
		}
		r.sections[e.name] = payload
	}
	return r, nil
}

// section returns a named payload; missing sections are an error (the model
// layer knows exactly which sections a valid snapshot has).
func (r *reader) section(name string) ([]byte, error) {
	p, ok := r.sections[name]
	if !ok {
		return nil, fmt.Errorf("snapshot: missing section %q", name)
	}
	return p, nil
}

// buf is a minimal little-endian byte assembler.
type buf struct{ b []byte }

func (b *buf) raw(p []byte) { b.b = append(b.b, p...) }
func (b *buf) u8(v byte)    { b.b = append(b.b, v) }
func (b *buf) u32(v uint32) { b.b = binary.LittleEndian.AppendUint32(b.b, v) }
func (b *buf) u64(v uint64) { b.b = binary.LittleEndian.AppendUint64(b.b, v) }
func (b *buf) str(s string) { b.u32(uint32(len(s))); b.raw([]byte(s)) }
func (b *buf) bool(v bool) {
	if v {
		b.u8(1)
	} else {
		b.u8(0)
	}
}
func (b *buf) i32s(v []int32) {
	b.u64(uint64(len(v)))
	for _, x := range v {
		b.u32(uint32(x))
	}
}
func (b *buf) i64s(v []int64) {
	b.u64(uint64(len(v)))
	for _, x := range v {
		b.u64(uint64(x))
	}
}
func (b *buf) bools(v []bool) {
	b.u64(uint64(len(v)))
	for _, x := range v {
		b.bool(x)
	}
}

// dec is the mirror decoder; the first out-of-bounds read latches err and
// every later read returns zero values, so call sites check err once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("snapshot: truncated data at offset %d", d.off)
	}
}

func (d *dec) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) str() string {
	n := d.u32()
	if d.err != nil || d.off+int(n) > len(d.b) || int(n) < 0 {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *dec) bool() bool { return d.u8() != 0 }

// done reports a latched error or unconsumed trailing bytes — both decode
// failures for fixed-layout payloads.
func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.b) {
		return fmt.Errorf("snapshot: %d trailing bytes after decode", len(d.b)-d.off)
	}
	return nil
}

// decInt32s decodes one length-prefixed int32 array section.
func decInt32s(payload []byte, what string) ([]int32, error) {
	d := &dec{b: payload}
	n := d.u64()
	if d.err == nil && uint64(len(payload)-d.off) != 4*n {
		return nil, fmt.Errorf("snapshot: %s: %d bytes for %d int32s", what, len(payload)-d.off, n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.u32())
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", what, err)
	}
	return out, nil
}

// decInt64s decodes one length-prefixed int64 array section.
func decInt64s(payload []byte, what string) ([]int64, error) {
	d := &dec{b: payload}
	n := d.u64()
	if d.err == nil && uint64(len(payload)-d.off) != 8*n {
		return nil, fmt.Errorf("snapshot: %s: %d bytes for %d int64s", what, len(payload)-d.off, n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(d.u64())
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", what, err)
	}
	return out, nil
}

// decBools decodes one length-prefixed bool array section.
func decBools(payload []byte, what string) ([]bool, error) {
	d := &dec{b: payload}
	n := d.u64()
	if d.err == nil && uint64(len(payload)-d.off) != n {
		return nil, fmt.Errorf("snapshot: %s: %d bytes for %d bools", what, len(payload)-d.off, n)
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = d.bool()
	}
	if err := d.done(); err != nil {
		return nil, fmt.Errorf("snapshot: %s: %w", what, err)
	}
	return out, nil
}
