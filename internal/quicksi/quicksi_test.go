package quicksi

import (
	"context"
	"testing"

	"github.com/psi-graph/psi/internal/graph"
)

func storedGraph() *graph.Graph {
	// labels: 0 appears 4×, 1 appears 2×, 2 appears 1×
	return graph.MustNew("g", []graph.Label{0, 0, 0, 0, 1, 1, 2},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 0}, {1, 4}})
}

func TestName(t *testing.T) {
	m := New(storedGraph())
	if m.Name() != "QSI" {
		t.Errorf("Name = %q", m.Name())
	}
	if m.Graph() == nil {
		t.Error("Graph accessor")
	}
}

func TestIndexFrequencies(t *testing.T) {
	m := New(storedGraph())
	if m.lblFreq[0] != 4 || m.lblFreq[1] != 2 || m.lblFreq[2] != 1 {
		t.Errorf("label frequencies = %v", m.lblFreq)
	}
	// edge (5,6) has labels (1,2); edge (6,0) labels (0,2)
	if m.edgeFreq[edgeKey(1, 2, 0)] != 1 {
		t.Errorf("edgeFreq(1,2) = %d", m.edgeFreq[edgeKey(1, 2, 0)])
	}
	if m.edgeFreq[edgeKey(0, 0, 0)] != 3 {
		// edges (0,1),(1,2),(2,3) all have label pair (0,0)
		t.Errorf("edgeFreq(0,0) = %d", m.edgeFreq[edgeKey(0, 0, 0)])
	}
}

func TestEdgeKeyCanonical(t *testing.T) {
	if edgeKey(3, 1, 5) != edgeKey(1, 3, 5) {
		t.Error("edgeKey must be endpoint-order-insensitive")
	}
	if edgeKey(1, 3, 5) == edgeKey(1, 3, 6) {
		t.Error("edgeKey must distinguish edge labels")
	}
}

// plan invariants: every query vertex appears exactly once; the root(s) have
// parent -1; each non-root's parent appears earlier; extra edges point
// backwards; #tree edges + #extra edges (summed) = q.M() for connected q.
func TestPlanInvariants(t *testing.T) {
	m := New(storedGraph())
	q := graph.MustNew("q", []graph.Label{0, 0, 1, 2},
		[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}})
	seq := m.plan(q)
	if len(seq) != q.N() {
		t.Fatalf("plan has %d entries, want %d", len(seq), q.N())
	}
	pos := make(map[int32]int)
	for i, e := range seq {
		if _, dup := pos[e.u]; dup {
			t.Fatalf("vertex %d appears twice in plan", e.u)
		}
		pos[e.u] = i
		if e.parent >= 0 {
			p, ok := pos[e.parent]
			if !ok || p >= i {
				t.Fatalf("entry %d: parent %d not placed earlier", i, e.parent)
			}
			if !q.HasEdge(int(e.u), int(e.parent)) {
				t.Fatalf("tree edge (%d,%d) not in query", e.u, e.parent)
			}
		}
		for _, x := range e.extra {
			p, ok := pos[x]
			if !ok || p >= i {
				t.Fatalf("entry %d: extra vertex %d not placed earlier", i, x)
			}
			if !q.HasEdge(int(e.u), int(x)) {
				t.Fatalf("extra edge (%d,%d) not in query", e.u, x)
			}
		}
	}
	edges := 0
	for _, e := range seq {
		if e.parent >= 0 {
			edges++
		}
		edges += len(e.extra)
	}
	if edges != q.M() {
		t.Errorf("plan covers %d edges, query has %d", edges, q.M())
	}
	// root must be the rarest-label vertex: label 2 (freq 1) is vertex 3
	if seq[0].u != 3 || seq[0].parent != -1 {
		t.Errorf("root = %+v, want vertex 3 (rarest label)", seq[0])
	}
}

func TestPlanHandlesDisconnectedQuery(t *testing.T) {
	m := New(storedGraph())
	q := graph.MustNew("q", []graph.Label{0, 0, 1, 1},
		[][2]int{{0, 1}, {2, 3}})
	seq := m.plan(q)
	if len(seq) != 4 {
		t.Fatalf("plan entries = %d", len(seq))
	}
	roots := 0
	for _, e := range seq {
		if e.parent < 0 {
			roots++
		}
	}
	if roots != 2 {
		t.Errorf("expected 2 roots for 2 components, got %d", roots)
	}
}

func TestMatchSimple(t *testing.T) {
	g := storedGraph()
	m := New(g)
	q := graph.MustNew("q", []graph.Label{1, 2}, [][2]int{{0, 1}})
	embs, err := m.Match(context.Background(), q, 100)
	if err != nil {
		t.Fatal(err)
	}
	// only edge (5,6) matches labels (1,2): one orientation valid
	if len(embs) != 1 {
		t.Fatalf("got %d embeddings, want 1: %v", len(embs), embs)
	}
	if embs[0][0] != 5 || embs[0][1] != 6 {
		t.Errorf("embedding = %v, want [5 6]", embs[0])
	}
}

func TestMatchDegreeFilter(t *testing.T) {
	// query vertex with degree 3 cannot map into a path graph
	g := graph.MustNew("path", []graph.Label{0, 0, 0, 0}, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	q := graph.MustNew("star", []graph.Label{0, 0, 0, 0}, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	embs, err := New(g).Match(context.Background(), q, 10)
	if err != nil || len(embs) != 0 {
		t.Errorf("star should not embed in path: %v, %v", embs, err)
	}
}
